
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/arch_state.cpp" "src/isa/CMakeFiles/sfi_isa.dir/arch_state.cpp.o" "gcc" "src/isa/CMakeFiles/sfi_isa.dir/arch_state.cpp.o.d"
  "/root/repo/src/isa/assembler.cpp" "src/isa/CMakeFiles/sfi_isa.dir/assembler.cpp.o" "gcc" "src/isa/CMakeFiles/sfi_isa.dir/assembler.cpp.o.d"
  "/root/repo/src/isa/decode.cpp" "src/isa/CMakeFiles/sfi_isa.dir/decode.cpp.o" "gcc" "src/isa/CMakeFiles/sfi_isa.dir/decode.cpp.o.d"
  "/root/repo/src/isa/exec.cpp" "src/isa/CMakeFiles/sfi_isa.dir/exec.cpp.o" "gcc" "src/isa/CMakeFiles/sfi_isa.dir/exec.cpp.o.d"
  "/root/repo/src/isa/golden.cpp" "src/isa/CMakeFiles/sfi_isa.dir/golden.cpp.o" "gcc" "src/isa/CMakeFiles/sfi_isa.dir/golden.cpp.o.d"
  "/root/repo/src/isa/memory.cpp" "src/isa/CMakeFiles/sfi_isa.dir/memory.cpp.o" "gcc" "src/isa/CMakeFiles/sfi_isa.dir/memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sfi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
