# Empty dependencies file for sfi_isa.
# This may be replaced when dependencies are built.
