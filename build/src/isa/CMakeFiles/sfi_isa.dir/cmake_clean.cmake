file(REMOVE_RECURSE
  "CMakeFiles/sfi_isa.dir/arch_state.cpp.o"
  "CMakeFiles/sfi_isa.dir/arch_state.cpp.o.d"
  "CMakeFiles/sfi_isa.dir/assembler.cpp.o"
  "CMakeFiles/sfi_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/sfi_isa.dir/decode.cpp.o"
  "CMakeFiles/sfi_isa.dir/decode.cpp.o.d"
  "CMakeFiles/sfi_isa.dir/exec.cpp.o"
  "CMakeFiles/sfi_isa.dir/exec.cpp.o.d"
  "CMakeFiles/sfi_isa.dir/golden.cpp.o"
  "CMakeFiles/sfi_isa.dir/golden.cpp.o.d"
  "CMakeFiles/sfi_isa.dir/memory.cpp.o"
  "CMakeFiles/sfi_isa.dir/memory.cpp.o.d"
  "libsfi_isa.a"
  "libsfi_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfi_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
