file(REMOVE_RECURSE
  "libsfi_isa.a"
)
