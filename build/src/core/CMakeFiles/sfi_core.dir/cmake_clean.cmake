file(REMOVE_RECURSE
  "CMakeFiles/sfi_core.dir/core_model.cpp.o"
  "CMakeFiles/sfi_core.dir/core_model.cpp.o.d"
  "CMakeFiles/sfi_core.dir/dcache.cpp.o"
  "CMakeFiles/sfi_core.dir/dcache.cpp.o.d"
  "CMakeFiles/sfi_core.dir/fpu.cpp.o"
  "CMakeFiles/sfi_core.dir/fpu.cpp.o.d"
  "CMakeFiles/sfi_core.dir/fxu.cpp.o"
  "CMakeFiles/sfi_core.dir/fxu.cpp.o.d"
  "CMakeFiles/sfi_core.dir/icache.cpp.o"
  "CMakeFiles/sfi_core.dir/icache.cpp.o.d"
  "CMakeFiles/sfi_core.dir/idu.cpp.o"
  "CMakeFiles/sfi_core.dir/idu.cpp.o.d"
  "CMakeFiles/sfi_core.dir/ifu.cpp.o"
  "CMakeFiles/sfi_core.dir/ifu.cpp.o.d"
  "CMakeFiles/sfi_core.dir/lsu.cpp.o"
  "CMakeFiles/sfi_core.dir/lsu.cpp.o.d"
  "CMakeFiles/sfi_core.dir/mode_ring.cpp.o"
  "CMakeFiles/sfi_core.dir/mode_ring.cpp.o.d"
  "CMakeFiles/sfi_core.dir/pervasive.cpp.o"
  "CMakeFiles/sfi_core.dir/pervasive.cpp.o.d"
  "CMakeFiles/sfi_core.dir/regfile.cpp.o"
  "CMakeFiles/sfi_core.dir/regfile.cpp.o.d"
  "CMakeFiles/sfi_core.dir/rut.cpp.o"
  "CMakeFiles/sfi_core.dir/rut.cpp.o.d"
  "libsfi_core.a"
  "libsfi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
