
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/core_model.cpp" "src/core/CMakeFiles/sfi_core.dir/core_model.cpp.o" "gcc" "src/core/CMakeFiles/sfi_core.dir/core_model.cpp.o.d"
  "/root/repo/src/core/dcache.cpp" "src/core/CMakeFiles/sfi_core.dir/dcache.cpp.o" "gcc" "src/core/CMakeFiles/sfi_core.dir/dcache.cpp.o.d"
  "/root/repo/src/core/fpu.cpp" "src/core/CMakeFiles/sfi_core.dir/fpu.cpp.o" "gcc" "src/core/CMakeFiles/sfi_core.dir/fpu.cpp.o.d"
  "/root/repo/src/core/fxu.cpp" "src/core/CMakeFiles/sfi_core.dir/fxu.cpp.o" "gcc" "src/core/CMakeFiles/sfi_core.dir/fxu.cpp.o.d"
  "/root/repo/src/core/icache.cpp" "src/core/CMakeFiles/sfi_core.dir/icache.cpp.o" "gcc" "src/core/CMakeFiles/sfi_core.dir/icache.cpp.o.d"
  "/root/repo/src/core/idu.cpp" "src/core/CMakeFiles/sfi_core.dir/idu.cpp.o" "gcc" "src/core/CMakeFiles/sfi_core.dir/idu.cpp.o.d"
  "/root/repo/src/core/ifu.cpp" "src/core/CMakeFiles/sfi_core.dir/ifu.cpp.o" "gcc" "src/core/CMakeFiles/sfi_core.dir/ifu.cpp.o.d"
  "/root/repo/src/core/lsu.cpp" "src/core/CMakeFiles/sfi_core.dir/lsu.cpp.o" "gcc" "src/core/CMakeFiles/sfi_core.dir/lsu.cpp.o.d"
  "/root/repo/src/core/mode_ring.cpp" "src/core/CMakeFiles/sfi_core.dir/mode_ring.cpp.o" "gcc" "src/core/CMakeFiles/sfi_core.dir/mode_ring.cpp.o.d"
  "/root/repo/src/core/pervasive.cpp" "src/core/CMakeFiles/sfi_core.dir/pervasive.cpp.o" "gcc" "src/core/CMakeFiles/sfi_core.dir/pervasive.cpp.o.d"
  "/root/repo/src/core/regfile.cpp" "src/core/CMakeFiles/sfi_core.dir/regfile.cpp.o" "gcc" "src/core/CMakeFiles/sfi_core.dir/regfile.cpp.o.d"
  "/root/repo/src/core/rut.cpp" "src/core/CMakeFiles/sfi_core.dir/rut.cpp.o" "gcc" "src/core/CMakeFiles/sfi_core.dir/rut.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sfi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sfi_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/sfi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/sfi_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sfi_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
