file(REMOVE_RECURSE
  "libsfi_core.a"
)
