# Empty dependencies file for sfi_core.
# This may be replaced when dependencies are built.
