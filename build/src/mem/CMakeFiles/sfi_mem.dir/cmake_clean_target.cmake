file(REMOVE_RECURSE
  "libsfi_mem.a"
)
