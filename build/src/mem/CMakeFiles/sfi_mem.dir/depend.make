# Empty dependencies file for sfi_mem.
# This may be replaced when dependencies are built.
