file(REMOVE_RECURSE
  "CMakeFiles/sfi_mem.dir/ecc_memory.cpp.o"
  "CMakeFiles/sfi_mem.dir/ecc_memory.cpp.o.d"
  "libsfi_mem.a"
  "libsfi_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfi_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
