file(REMOVE_RECURSE
  "CMakeFiles/sfi_report.dir/table.cpp.o"
  "CMakeFiles/sfi_report.dir/table.cpp.o.d"
  "libsfi_report.a"
  "libsfi_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfi_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
