# Empty compiler generated dependencies file for sfi_report.
# This may be replaced when dependencies are built.
