file(REMOVE_RECURSE
  "libsfi_report.a"
)
