file(REMOVE_RECURSE
  "libsfi_workload.a"
)
