file(REMOVE_RECURSE
  "CMakeFiles/sfi_workload.dir/spec_profiles.cpp.o"
  "CMakeFiles/sfi_workload.dir/spec_profiles.cpp.o.d"
  "libsfi_workload.a"
  "libsfi_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfi_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
