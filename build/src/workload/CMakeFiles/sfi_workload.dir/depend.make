# Empty dependencies file for sfi_workload.
# This may be replaced when dependencies are built.
