# Empty compiler generated dependencies file for sfi_common.
# This may be replaced when dependencies are built.
