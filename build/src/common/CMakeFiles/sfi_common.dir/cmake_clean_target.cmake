file(REMOVE_RECURSE
  "libsfi_common.a"
)
