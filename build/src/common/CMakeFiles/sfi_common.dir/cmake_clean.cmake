file(REMOVE_RECURSE
  "CMakeFiles/sfi_common.dir/bits.cpp.o"
  "CMakeFiles/sfi_common.dir/bits.cpp.o.d"
  "libsfi_common.a"
  "libsfi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
