# Empty compiler generated dependencies file for sfi_emu.
# This may be replaced when dependencies are built.
