file(REMOVE_RECURSE
  "CMakeFiles/sfi_emu.dir/emulator.cpp.o"
  "CMakeFiles/sfi_emu.dir/emulator.cpp.o.d"
  "CMakeFiles/sfi_emu.dir/golden_trace.cpp.o"
  "CMakeFiles/sfi_emu.dir/golden_trace.cpp.o.d"
  "libsfi_emu.a"
  "libsfi_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfi_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
