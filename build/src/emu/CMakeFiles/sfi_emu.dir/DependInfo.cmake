
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emu/emulator.cpp" "src/emu/CMakeFiles/sfi_emu.dir/emulator.cpp.o" "gcc" "src/emu/CMakeFiles/sfi_emu.dir/emulator.cpp.o.d"
  "/root/repo/src/emu/golden_trace.cpp" "src/emu/CMakeFiles/sfi_emu.dir/golden_trace.cpp.o" "gcc" "src/emu/CMakeFiles/sfi_emu.dir/golden_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sfi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sfi_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/sfi_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
