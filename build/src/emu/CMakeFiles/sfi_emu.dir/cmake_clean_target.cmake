file(REMOVE_RECURSE
  "libsfi_emu.a"
)
