file(REMOVE_RECURSE
  "libsfi_stats.a"
)
