# Empty compiler generated dependencies file for sfi_stats.
# This may be replaced when dependencies are built.
