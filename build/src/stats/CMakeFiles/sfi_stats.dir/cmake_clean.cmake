file(REMOVE_RECURSE
  "CMakeFiles/sfi_stats.dir/descriptive.cpp.o"
  "CMakeFiles/sfi_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/sfi_stats.dir/intervals.cpp.o"
  "CMakeFiles/sfi_stats.dir/intervals.cpp.o.d"
  "CMakeFiles/sfi_stats.dir/sampling.cpp.o"
  "CMakeFiles/sfi_stats.dir/sampling.cpp.o.d"
  "libsfi_stats.a"
  "libsfi_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfi_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
