file(REMOVE_RECURSE
  "libsfi_avp.a"
)
