# Empty compiler generated dependencies file for sfi_avp.
# This may be replaced when dependencies are built.
