file(REMOVE_RECURSE
  "CMakeFiles/sfi_avp.dir/runner.cpp.o"
  "CMakeFiles/sfi_avp.dir/runner.cpp.o.d"
  "CMakeFiles/sfi_avp.dir/testgen.cpp.o"
  "CMakeFiles/sfi_avp.dir/testgen.cpp.o.d"
  "libsfi_avp.a"
  "libsfi_avp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfi_avp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
