file(REMOVE_RECURSE
  "CMakeFiles/sfi_netlist.dir/array.cpp.o"
  "CMakeFiles/sfi_netlist.dir/array.cpp.o.d"
  "CMakeFiles/sfi_netlist.dir/ecc.cpp.o"
  "CMakeFiles/sfi_netlist.dir/ecc.cpp.o.d"
  "CMakeFiles/sfi_netlist.dir/registry.cpp.o"
  "CMakeFiles/sfi_netlist.dir/registry.cpp.o.d"
  "CMakeFiles/sfi_netlist.dir/state_vector.cpp.o"
  "CMakeFiles/sfi_netlist.dir/state_vector.cpp.o.d"
  "libsfi_netlist.a"
  "libsfi_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfi_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
