# Empty compiler generated dependencies file for sfi_netlist.
# This may be replaced when dependencies are built.
