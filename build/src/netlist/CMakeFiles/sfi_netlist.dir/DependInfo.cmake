
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/array.cpp" "src/netlist/CMakeFiles/sfi_netlist.dir/array.cpp.o" "gcc" "src/netlist/CMakeFiles/sfi_netlist.dir/array.cpp.o.d"
  "/root/repo/src/netlist/ecc.cpp" "src/netlist/CMakeFiles/sfi_netlist.dir/ecc.cpp.o" "gcc" "src/netlist/CMakeFiles/sfi_netlist.dir/ecc.cpp.o.d"
  "/root/repo/src/netlist/registry.cpp" "src/netlist/CMakeFiles/sfi_netlist.dir/registry.cpp.o" "gcc" "src/netlist/CMakeFiles/sfi_netlist.dir/registry.cpp.o.d"
  "/root/repo/src/netlist/state_vector.cpp" "src/netlist/CMakeFiles/sfi_netlist.dir/state_vector.cpp.o" "gcc" "src/netlist/CMakeFiles/sfi_netlist.dir/state_vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sfi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
