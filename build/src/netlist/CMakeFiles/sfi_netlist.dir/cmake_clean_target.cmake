file(REMOVE_RECURSE
  "libsfi_netlist.a"
)
