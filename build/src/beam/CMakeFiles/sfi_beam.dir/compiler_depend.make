# Empty compiler generated dependencies file for sfi_beam.
# This may be replaced when dependencies are built.
