file(REMOVE_RECURSE
  "libsfi_beam.a"
)
