file(REMOVE_RECURSE
  "CMakeFiles/sfi_beam.dir/beam.cpp.o"
  "CMakeFiles/sfi_beam.dir/beam.cpp.o.d"
  "libsfi_beam.a"
  "libsfi_beam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfi_beam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
