# Empty compiler generated dependencies file for sfi_sfi.
# This may be replaced when dependencies are built.
