file(REMOVE_RECURSE
  "CMakeFiles/sfi_sfi.dir/campaign.cpp.o"
  "CMakeFiles/sfi_sfi.dir/campaign.cpp.o.d"
  "CMakeFiles/sfi_sfi.dir/derating.cpp.o"
  "CMakeFiles/sfi_sfi.dir/derating.cpp.o.d"
  "CMakeFiles/sfi_sfi.dir/outcome.cpp.o"
  "CMakeFiles/sfi_sfi.dir/outcome.cpp.o.d"
  "CMakeFiles/sfi_sfi.dir/runner.cpp.o"
  "CMakeFiles/sfi_sfi.dir/runner.cpp.o.d"
  "CMakeFiles/sfi_sfi.dir/sample_size.cpp.o"
  "CMakeFiles/sfi_sfi.dir/sample_size.cpp.o.d"
  "CMakeFiles/sfi_sfi.dir/sampler.cpp.o"
  "CMakeFiles/sfi_sfi.dir/sampler.cpp.o.d"
  "CMakeFiles/sfi_sfi.dir/tracer.cpp.o"
  "CMakeFiles/sfi_sfi.dir/tracer.cpp.o.d"
  "libsfi_sfi.a"
  "libsfi_sfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfi_sfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
