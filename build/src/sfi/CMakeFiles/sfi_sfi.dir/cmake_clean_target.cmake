file(REMOVE_RECURSE
  "libsfi_sfi.a"
)
