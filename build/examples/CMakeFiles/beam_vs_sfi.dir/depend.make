# Empty dependencies file for beam_vs_sfi.
# This may be replaced when dependencies are built.
