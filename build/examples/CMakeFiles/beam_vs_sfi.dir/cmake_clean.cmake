file(REMOVE_RECURSE
  "CMakeFiles/beam_vs_sfi.dir/beam_vs_sfi.cpp.o"
  "CMakeFiles/beam_vs_sfi.dir/beam_vs_sfi.cpp.o.d"
  "beam_vs_sfi"
  "beam_vs_sfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beam_vs_sfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
