# Empty compiler generated dependencies file for unit_resilience.
# This may be replaced when dependencies are built.
