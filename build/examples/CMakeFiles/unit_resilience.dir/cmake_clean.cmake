file(REMOVE_RECURSE
  "CMakeFiles/unit_resilience.dir/unit_resilience.cpp.o"
  "CMakeFiles/unit_resilience.dir/unit_resilience.cpp.o.d"
  "unit_resilience"
  "unit_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
