# Empty dependencies file for latch_hardening.
# This may be replaced when dependencies are built.
