file(REMOVE_RECURSE
  "CMakeFiles/latch_hardening.dir/latch_hardening.cpp.o"
  "CMakeFiles/latch_hardening.dir/latch_hardening.cpp.o.d"
  "latch_hardening"
  "latch_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latch_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
