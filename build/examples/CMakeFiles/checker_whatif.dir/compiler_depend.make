# Empty compiler generated dependencies file for checker_whatif.
# This may be replaced when dependencies are built.
