file(REMOVE_RECURSE
  "CMakeFiles/checker_whatif.dir/checker_whatif.cpp.o"
  "CMakeFiles/checker_whatif.dir/checker_whatif.cpp.o.d"
  "checker_whatif"
  "checker_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
