# Empty compiler generated dependencies file for sfi.
# This may be replaced when dependencies are built.
