file(REMOVE_RECURSE
  "CMakeFiles/sfi.dir/sfi_cli.cpp.o"
  "CMakeFiles/sfi.dir/sfi_cli.cpp.o.d"
  "sfi"
  "sfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
