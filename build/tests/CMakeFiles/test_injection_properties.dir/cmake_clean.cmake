file(REMOVE_RECURSE
  "CMakeFiles/test_injection_properties.dir/test_injection_properties.cpp.o"
  "CMakeFiles/test_injection_properties.dir/test_injection_properties.cpp.o.d"
  "test_injection_properties"
  "test_injection_properties.pdb"
  "test_injection_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_injection_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
