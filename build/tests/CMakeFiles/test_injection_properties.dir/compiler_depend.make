# Empty compiler generated dependencies file for test_injection_properties.
# This may be replaced when dependencies are built.
