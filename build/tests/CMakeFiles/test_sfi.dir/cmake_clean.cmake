file(REMOVE_RECURSE
  "CMakeFiles/test_sfi.dir/test_sfi.cpp.o"
  "CMakeFiles/test_sfi.dir/test_sfi.cpp.o.d"
  "test_sfi"
  "test_sfi.pdb"
  "test_sfi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
