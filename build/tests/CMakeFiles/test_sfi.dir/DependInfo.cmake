
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sfi.cpp" "tests/CMakeFiles/test_sfi.dir/test_sfi.cpp.o" "gcc" "tests/CMakeFiles/test_sfi.dir/test_sfi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sfi/CMakeFiles/sfi_sfi.dir/DependInfo.cmake"
  "/root/repo/build/src/avp/CMakeFiles/sfi_avp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sfi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sfi_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/sfi_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sfi_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/sfi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sfi_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sfi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
