# Empty dependencies file for test_pervasive.
# This may be replaced when dependencies are built.
