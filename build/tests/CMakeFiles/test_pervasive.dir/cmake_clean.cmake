file(REMOVE_RECURSE
  "CMakeFiles/test_pervasive.dir/test_pervasive.cpp.o"
  "CMakeFiles/test_pervasive.dir/test_pervasive.cpp.o.d"
  "test_pervasive"
  "test_pervasive.pdb"
  "test_pervasive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pervasive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
