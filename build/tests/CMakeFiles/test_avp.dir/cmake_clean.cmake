file(REMOVE_RECURSE
  "CMakeFiles/test_avp.dir/test_avp.cpp.o"
  "CMakeFiles/test_avp.dir/test_avp.cpp.o.d"
  "test_avp"
  "test_avp.pdb"
  "test_avp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_avp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
