# Empty dependencies file for test_avp.
# This may be replaced when dependencies are built.
