# Empty compiler generated dependencies file for test_derating.
# This may be replaced when dependencies are built.
