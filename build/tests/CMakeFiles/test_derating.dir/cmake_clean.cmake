file(REMOVE_RECURSE
  "CMakeFiles/test_derating.dir/test_derating.cpp.o"
  "CMakeFiles/test_derating.dir/test_derating.cpp.o.d"
  "test_derating"
  "test_derating.pdb"
  "test_derating[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_derating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
