file(REMOVE_RECURSE
  "CMakeFiles/test_beam.dir/test_beam.cpp.o"
  "CMakeFiles/test_beam.dir/test_beam.cpp.o.d"
  "test_beam"
  "test_beam.pdb"
  "test_beam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
