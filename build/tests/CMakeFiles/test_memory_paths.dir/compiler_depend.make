# Empty compiler generated dependencies file for test_memory_paths.
# This may be replaced when dependencies are built.
