file(REMOVE_RECURSE
  "CMakeFiles/test_memory_paths.dir/test_memory_paths.cpp.o"
  "CMakeFiles/test_memory_paths.dir/test_memory_paths.cpp.o.d"
  "test_memory_paths"
  "test_memory_paths.pdb"
  "test_memory_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
