file(REMOVE_RECURSE
  "CMakeFiles/test_statistics_validation.dir/test_statistics_validation.cpp.o"
  "CMakeFiles/test_statistics_validation.dir/test_statistics_validation.cpp.o.d"
  "test_statistics_validation"
  "test_statistics_validation.pdb"
  "test_statistics_validation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_statistics_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
