# Empty dependencies file for test_statistics_validation.
# This may be replaced when dependencies are built.
