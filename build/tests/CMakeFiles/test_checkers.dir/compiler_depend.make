# Empty compiler generated dependencies file for test_checkers.
# This may be replaced when dependencies are built.
