file(REMOVE_RECURSE
  "CMakeFiles/test_isa.dir/test_assembler.cpp.o"
  "CMakeFiles/test_isa.dir/test_assembler.cpp.o.d"
  "CMakeFiles/test_isa.dir/test_golden.cpp.o"
  "CMakeFiles/test_isa.dir/test_golden.cpp.o.d"
  "CMakeFiles/test_isa.dir/test_isa.cpp.o"
  "CMakeFiles/test_isa.dir/test_isa.cpp.o.d"
  "CMakeFiles/test_isa.dir/test_isa_property.cpp.o"
  "CMakeFiles/test_isa.dir/test_isa_property.cpp.o.d"
  "test_isa"
  "test_isa.pdb"
  "test_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
