# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_core_random[1]_include.cmake")
include("/root/repo/build/tests/test_checkers[1]_include.cmake")
include("/root/repo/build/tests/test_avp[1]_include.cmake")
include("/root/repo/build/tests/test_sfi[1]_include.cmake")
include("/root/repo/build/tests/test_beam[1]_include.cmake")
include("/root/repo/build/tests/test_emu[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_memory_paths[1]_include.cmake")
include("/root/repo/build/tests/test_injection_properties[1]_include.cmake")
include("/root/repo/build/tests/test_derating[1]_include.cmake")
include("/root/repo/build/tests/test_pervasive[1]_include.cmake")
include("/root/repo/build/tests/test_statistics_validation[1]_include.cmake")
