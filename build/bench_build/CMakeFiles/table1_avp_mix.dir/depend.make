# Empty dependencies file for table1_avp_mix.
# This may be replaced when dependencies are built.
