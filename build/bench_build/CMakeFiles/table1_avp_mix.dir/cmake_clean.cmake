file(REMOVE_RECURSE
  "../bench/table1_avp_mix"
  "../bench/table1_avp_mix.pdb"
  "CMakeFiles/table1_avp_mix.dir/table1_avp_mix.cpp.o"
  "CMakeFiles/table1_avp_mix.dir/table1_avp_mix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_avp_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
