# Empty compiler generated dependencies file for ext_memory_subsystem.
# This may be replaced when dependencies are built.
