file(REMOVE_RECURSE
  "../bench/ext_memory_subsystem"
  "../bench/ext_memory_subsystem.pdb"
  "CMakeFiles/ext_memory_subsystem.dir/ext_memory_subsystem.cpp.o"
  "CMakeFiles/ext_memory_subsystem.dir/ext_memory_subsystem.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_memory_subsystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
