file(REMOVE_RECURSE
  "../bench/table3_checkers"
  "../bench/table3_checkers.pdb"
  "CMakeFiles/table3_checkers.dir/table3_checkers.cpp.o"
  "CMakeFiles/table3_checkers.dir/table3_checkers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_checkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
