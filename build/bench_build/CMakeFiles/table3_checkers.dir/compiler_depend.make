# Empty compiler generated dependencies file for table3_checkers.
# This may be replaced when dependencies are built.
