file(REMOVE_RECURSE
  "../bench/ablation_horizon"
  "../bench/ablation_horizon.pdb"
  "CMakeFiles/ablation_horizon.dir/ablation_horizon.cpp.o"
  "CMakeFiles/ablation_horizon.dir/ablation_horizon.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
