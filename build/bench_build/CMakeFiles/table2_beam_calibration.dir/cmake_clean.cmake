file(REMOVE_RECURSE
  "../bench/table2_beam_calibration"
  "../bench/table2_beam_calibration.pdb"
  "CMakeFiles/table2_beam_calibration.dir/table2_beam_calibration.cpp.o"
  "CMakeFiles/table2_beam_calibration.dir/table2_beam_calibration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_beam_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
