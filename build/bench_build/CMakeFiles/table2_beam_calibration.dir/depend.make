# Empty dependencies file for table2_beam_calibration.
# This may be replaced when dependencies are built.
