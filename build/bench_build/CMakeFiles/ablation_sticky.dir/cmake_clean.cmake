file(REMOVE_RECURSE
  "../bench/ablation_sticky"
  "../bench/ablation_sticky.pdb"
  "CMakeFiles/ablation_sticky.dir/ablation_sticky.cpp.o"
  "CMakeFiles/ablation_sticky.dir/ablation_sticky.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sticky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
