# Empty compiler generated dependencies file for ablation_sticky.
# This may be replaced when dependencies are built.
