file(REMOVE_RECURSE
  "../bench/fig3_unit_ser"
  "../bench/fig3_unit_ser.pdb"
  "CMakeFiles/fig3_unit_ser.dir/fig3_unit_ser.cpp.o"
  "CMakeFiles/fig3_unit_ser.dir/fig3_unit_ser.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_unit_ser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
