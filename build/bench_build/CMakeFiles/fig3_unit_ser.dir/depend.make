# Empty dependencies file for fig3_unit_ser.
# This may be replaced when dependencies are built.
