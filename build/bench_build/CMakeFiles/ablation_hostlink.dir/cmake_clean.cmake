file(REMOVE_RECURSE
  "../bench/ablation_hostlink"
  "../bench/ablation_hostlink.pdb"
  "CMakeFiles/ablation_hostlink.dir/ablation_hostlink.cpp.o"
  "CMakeFiles/ablation_hostlink.dir/ablation_hostlink.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hostlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
