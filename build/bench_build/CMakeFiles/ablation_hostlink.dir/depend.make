# Empty dependencies file for ablation_hostlink.
# This may be replaced when dependencies are built.
