# Empty compiler generated dependencies file for fig5_latch_types.
# This may be replaced when dependencies are built.
