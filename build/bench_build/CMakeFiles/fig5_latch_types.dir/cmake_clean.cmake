file(REMOVE_RECURSE
  "../bench/fig5_latch_types"
  "../bench/fig5_latch_types.pdb"
  "CMakeFiles/fig5_latch_types.dir/fig5_latch_types.cpp.o"
  "CMakeFiles/fig5_latch_types.dir/fig5_latch_types.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_latch_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
