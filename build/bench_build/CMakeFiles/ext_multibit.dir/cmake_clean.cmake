file(REMOVE_RECURSE
  "../bench/ext_multibit"
  "../bench/ext_multibit.pdb"
  "CMakeFiles/ext_multibit.dir/ext_multibit.cpp.o"
  "CMakeFiles/ext_multibit.dir/ext_multibit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multibit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
