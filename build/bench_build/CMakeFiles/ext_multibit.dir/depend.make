# Empty dependencies file for ext_multibit.
# This may be replaced when dependencies are built.
