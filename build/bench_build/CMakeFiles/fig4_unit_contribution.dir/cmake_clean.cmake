file(REMOVE_RECURSE
  "../bench/fig4_unit_contribution"
  "../bench/fig4_unit_contribution.pdb"
  "CMakeFiles/fig4_unit_contribution.dir/fig4_unit_contribution.cpp.o"
  "CMakeFiles/fig4_unit_contribution.dir/fig4_unit_contribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_unit_contribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
