# Empty compiler generated dependencies file for fig4_unit_contribution.
# This may be replaced when dependencies are built.
