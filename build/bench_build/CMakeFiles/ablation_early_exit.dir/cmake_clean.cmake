file(REMOVE_RECURSE
  "../bench/ablation_early_exit"
  "../bench/ablation_early_exit.pdb"
  "CMakeFiles/ablation_early_exit.dir/ablation_early_exit.cpp.o"
  "CMakeFiles/ablation_early_exit.dir/ablation_early_exit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_early_exit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
