file(REMOVE_RECURSE
  "../bench/fig2_sample_size"
  "../bench/fig2_sample_size.pdb"
  "CMakeFiles/fig2_sample_size.dir/fig2_sample_size.cpp.o"
  "CMakeFiles/fig2_sample_size.dir/fig2_sample_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_sample_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
