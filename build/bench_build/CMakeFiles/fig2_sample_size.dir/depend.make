# Empty dependencies file for fig2_sample_size.
# This may be replaced when dependencies are built.
