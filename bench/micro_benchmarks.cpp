// google-benchmark microbenchmarks: the primitive rates that determine
// campaign throughput — state-vector ops, hashing, ECC, core cycle
// evaluation, golden-model execution, checkpoint reload, and end-to-end
// injections per second.
#include <benchmark/benchmark.h>

#include "avp/runner.hpp"
#include "avp/testgen.hpp"
#include "common/hash.hpp"
#include "core/core_model.hpp"
#include "emu/checkpoint_store.hpp"
#include "emu/emulator.hpp"
#include "netlist/ecc.hpp"
#include "sfi/runner.hpp"
#include "sfi/telemetry.hpp"
#include "stats/rng.hpp"
#include "telemetry/metrics.hpp"

namespace {

using namespace sfi;

void BM_StateVectorFlip(benchmark::State& state) {
  netlist::StateVector sv(16384);
  u32 i = 7;
  for (auto _ : state) {
    sv.flip_bit(i);
    i = (i * 2654435761u) % 16384;
    benchmark::DoNotOptimize(sv);
  }
}
BENCHMARK(BM_StateVectorFlip);

void BM_MaskedHash(benchmark::State& state) {
  core::Pearl6Model model;
  netlist::StateVector sv(model.registry().total_bits());
  const auto& masks = model.registry().hash_masks();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sv.masked_hash(masks));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(masks.size() * 8));
}
BENCHMARK(BM_MaskedHash);

void BM_EccEncodeDecode(benchmark::State& state) {
  stats::Xoshiro256 rng(1);
  for (auto _ : state) {
    const u64 v = rng.next();
    const u8 c = netlist::ecc_encode(v);
    benchmark::DoNotOptimize(netlist::ecc_decode(v ^ 1, c));
  }
}
BENCHMARK(BM_EccEncodeDecode);

void BM_CoreCycle(benchmark::State& state) {
  const avp::Testcase tc = [&] {
    avp::TestcaseConfig cfg;
    cfg.seed = 3;
    cfg.num_instructions = 4000;  // long enough to not finish mid-benchmark
    return avp::generate_testcase(cfg);
  }();
  core::Pearl6Model model;
  model.load_workload(tc.program, tc.init);
  emu::Emulator emu(model);
  emu.reset();
  for (auto _ : state) {
    emu.step();
    if (model.ras_status(emu.state()).test_finished) emu.reset();
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_CoreCycle);

void BM_GoldenModelInstruction(benchmark::State& state) {
  const avp::Testcase tc = [&] {
    avp::TestcaseConfig cfg;
    cfg.seed = 4;
    cfg.num_instructions = 4000;
    return avp::generate_testcase(cfg);
  }();
  isa::GoldenModel gm(1u << 16);
  gm.reset(tc.program, tc.init);
  for (auto _ : state) {
    if (gm.step() != isa::GoldenModel::Status::Running) {
      gm.reset(tc.program, tc.init);
    }
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_GoldenModelInstruction);

void BM_CheckpointReload(benchmark::State& state) {
  const avp::Testcase tc = [&] {
    avp::TestcaseConfig cfg;
    cfg.seed = 5;
    return avp::generate_testcase(cfg);
  }();
  core::Pearl6Model model;
  model.load_workload(tc.program, tc.init);
  emu::Emulator emu(model);
  emu.reset();
  const emu::Checkpoint cp = emu.save_checkpoint();
  for (auto _ : state) {
    emu.restore_checkpoint(cp);
    benchmark::DoNotOptimize(emu.cycle());
  }
}
BENCHMARK(BM_CheckpointReload);

void BM_CheckpointSave(benchmark::State& state) {
  const avp::Testcase tc = [&] {
    avp::TestcaseConfig cfg;
    cfg.seed = 5;
    return avp::generate_testcase(cfg);
  }();
  core::Pearl6Model model;
  model.load_workload(tc.program, tc.init);
  emu::Emulator emu(model);
  emu.reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(emu.save_checkpoint());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_CheckpointSave);

void BM_CheckpointStoreReconstruct(benchmark::State& state) {
  // Worst-case materialization: rotate through every record, so each call
  // replays a full-snapshot base plus its delta chain (up to full_every-1
  // XOR applications) — no same-index caching.
  const avp::Testcase tc = [&] {
    avp::TestcaseConfig cfg;
    cfg.seed = 5;
    cfg.num_instructions = 160;
    return avp::generate_testcase(cfg);
  }();
  core::Pearl6Model model;
  emu::Emulator emu(model);
  const emu::GoldenTrace trace = avp::run_reference(model, emu, tc);
  emu::CheckpointStoreConfig cfg;
  cfg.interval = 4;
  const emu::CheckpointStore store = emu::build_checkpoint_store(
      emu, trace.completion_cycle - 1, cfg, &trace);
  emu::Checkpoint cp;
  std::size_t i = 0;
  for (auto _ : state) {
    store.materialize(i, cp);
    benchmark::DoNotOptimize(cp.cycle);
    i = (i + 1) % store.size();
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_CheckpointStoreReconstruct);

void BM_InjectionRun(benchmark::State& state) {
  const avp::Testcase tc = [&] {
    avp::TestcaseConfig cfg;
    cfg.seed = 6;
    cfg.num_instructions = 160;
    return avp::generate_testcase(cfg);
  }();
  const avp::GoldenResult golden = avp::run_golden(tc);
  core::Pearl6Model model;
  emu::Emulator emu(model);
  const emu::GoldenTrace trace = avp::run_reference(model, emu, tc);
  emu.reset();
  const emu::Checkpoint cp = emu.save_checkpoint();
  inject::InjectionRunner runner(model, emu, cp, trace, golden, {});

  stats::Xoshiro256 rng(9);
  const u32 latches = model.registry().num_latches();
  for (auto _ : state) {
    inject::FaultSpec f;
    f.index = static_cast<u32>(rng.below(latches));
    f.cycle = 1 + rng.below(trace.completion_cycle - 1);
    benchmark::DoNotOptimize(runner.run(f));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_InjectionRun);

void BM_InjectionRunWarmStart(benchmark::State& state) {
  // Same fault stream as BM_InjectionRun, but warm-started from an
  // interval checkpoint store — the ratio of the two is the campaign
  // speedup the checkpointing buys per injection.
  const avp::Testcase tc = [&] {
    avp::TestcaseConfig cfg;
    cfg.seed = 6;
    cfg.num_instructions = 160;
    return avp::generate_testcase(cfg);
  }();
  const avp::GoldenResult golden = avp::run_golden(tc);
  core::Pearl6Model model;
  emu::Emulator emu(model);
  const emu::GoldenTrace trace = avp::run_reference(model, emu, tc);
  const emu::CheckpointStore store = emu::build_checkpoint_store(
      emu, trace.completion_cycle - 1, {}, &trace);
  emu.reset();
  const emu::Checkpoint cp = emu.save_checkpoint();
  inject::InjectionRunner runner(model, emu, cp, trace, golden, {}, &store);

  stats::Xoshiro256 rng(9);
  const u32 latches = model.registry().num_latches();
  for (auto _ : state) {
    inject::FaultSpec f;
    f.index = static_cast<u32>(rng.below(latches));
    f.cycle = 1 + rng.below(trace.completion_cycle - 1);
    benchmark::DoNotOptimize(runner.run(f));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_InjectionRunWarmStart);

void BM_TelemetryCounterAdd(benchmark::State& state) {
  // The hot-path instrumentation primitive: one unsharded, unlocked add
  // into a worker's private shard. Budget: a handful of cycles.
  telemetry::MetricsRegistry reg;
  const auto c = reg.counter("hits");
  telemetry::MetricsShard shard = reg.make_shard();
  for (auto _ : state) {
    shard.add(c);
    benchmark::DoNotOptimize(shard);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_TelemetryCounterAdd);

void BM_TelemetryHistogramObserve(benchmark::State& state) {
  // Per-injection phase timing lands here: a lower_bound over ~22
  // exponential bounds plus two adds, per observation.
  telemetry::MetricsRegistry reg;
  const auto h =
      reg.histogram("seconds", telemetry::exp_buckets(1e-6, 10.0, 3));
  telemetry::MetricsShard shard = reg.make_shard();
  stats::Xoshiro256 rng(11);
  for (auto _ : state) {
    shard.observe(h, rng.uniform() * 0.01);
    benchmark::DoNotOptimize(shard);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_TelemetryHistogramObserve);

void BM_TelemetryRegistryMerge(benchmark::State& state) {
  // Folding a worker shard into the registry (once per flush/finish, not
  // per injection) across a campaign-sized instrument set.
  telemetry::MetricsRegistry reg;
  std::vector<telemetry::CounterId> counters;
  std::vector<telemetry::HistogramId> hists;
  for (int i = 0; i < 16; ++i) {
    counters.push_back(reg.counter("c" + std::to_string(i)));
  }
  for (int i = 0; i < 16; ++i) {
    hists.push_back(reg.histogram("h" + std::to_string(i),
                                  telemetry::exp_buckets(1e-6, 10.0, 3)));
  }
  telemetry::MetricsShard shard = reg.make_shard();
  stats::Xoshiro256 rng(12);
  for (auto _ : state) {
    state.PauseTiming();
    for (const auto c : counters) shard.add(c, 3);
    for (const auto h : hists) shard.observe(h, rng.uniform());
    state.ResumeTiming();
    reg.merge(shard);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_TelemetryRegistryMerge);

void BM_InjectionRunTelemetry(benchmark::State& state) {
  // BM_InjectionRunWarmStart with the phase-timer out-param attached: the
  // delta between the two is the whole per-injection telemetry overhead
  // (clock reads at phase boundaries; the acceptance budget is <5%).
  const avp::Testcase tc = [&] {
    avp::TestcaseConfig cfg;
    cfg.seed = 6;
    cfg.num_instructions = 160;
    return avp::generate_testcase(cfg);
  }();
  const avp::GoldenResult golden = avp::run_golden(tc);
  core::Pearl6Model model;
  emu::Emulator emu(model);
  const emu::GoldenTrace trace = avp::run_reference(model, emu, tc);
  const emu::CheckpointStore store = emu::build_checkpoint_store(
      emu, trace.completion_cycle - 1, {}, &trace);
  emu.reset();
  const emu::Checkpoint cp = emu.save_checkpoint();
  inject::InjectionRunner runner(model, emu, cp, trace, golden, {}, &store);

  inject::RunPhaseTimes phases;
  stats::Xoshiro256 rng(9);
  const u32 latches = model.registry().num_latches();
  for (auto _ : state) {
    inject::FaultSpec f;
    f.index = static_cast<u32>(rng.below(latches));
    f.cycle = 1 + rng.below(trace.completion_cycle - 1);
    benchmark::DoNotOptimize(runner.run(f, &phases));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_InjectionRunTelemetry);

}  // namespace

BENCHMARK_MAIN();
