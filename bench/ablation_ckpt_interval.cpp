// Ablation — reference-run checkpoint interval K: warm-starting injections
// from the nearest interval snapshot replaces the ~W/2-cycle replay to the
// fault cycle with an expected K/2-cycle fast-forward (the paper's AWAN
// checkpoint-reload step, §2/Figure 1). Sweeps K and verifies that the
// interval changes wall-clock and memory only — never a single outcome.
#include <iostream>

#include "bench/common.hpp"
#include "emu/checkpoint_store.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const bench::Options opt = bench::parse_options(argc, argv);
  const u32 n = opt.full ? 10000 : 1500;
  bench::print_scale_note(opt, "1500 injections per interval",
                          "10000 injections per interval");

  const avp::Testcase tc = bench::standard_testcase();

  inject::CampaignConfig base;
  base.seed = opt.seed;
  base.num_injections = n;
  base.threads = 1;  // isolate per-run cost from scheduling effects

  // Baseline: no checkpoints, every injection replays from cycle 0.
  inject::CampaignConfig off = base;
  off.ckpt_interval = 0;
  const inject::CampaignResult ref = inject::run_campaign(tc, off);

  std::cout << report::section(
      "Ablation: checkpoint interval K (warm-start vs cycle-0 replay)");
  report::Table t({"interval", "wall s", "inj/s", "cycles eval",
                   "fast-fwd", "ckpts", "resident KiB", "speedup"});
  const auto row = [&](const std::string& label,
                       const inject::CampaignResult& r) {
    t.add_row({label, report::Table::num(r.wall_seconds),
               report::Table::num(r.injections_per_second(), 0),
               report::Table::count(r.cycles_evaluated),
               report::Table::count(r.cycles_fast_forwarded),
               report::Table::count(r.checkpoints),
               report::Table::num(
                   static_cast<double>(r.checkpoint_bytes) / 1024.0, 1),
               report::Table::num(ref.wall_seconds /
                                      std::max(1e-9, r.wall_seconds),
                                  2) +
                   "x"});
  };
  row("off", ref);

  bool identical = true;
  const Cycle intervals[] = {1, 4, 16, 64, 256, emu::kCkptAuto};
  for (const Cycle k : intervals) {
    inject::CampaignConfig cfg = base;
    cfg.ckpt_interval = k;
    const inject::CampaignResult r = inject::run_campaign(tc, cfg);
    row(k == emu::kCkptAuto ? "auto" : std::to_string(k), r);
    for (std::size_t i = 0; i < r.records.size(); ++i) {
      if (r.records[i].outcome != ref.records[i].outcome ||
          r.records[i].end_cycle != ref.records[i].end_cycle) {
        identical = false;
        std::cout << "MISMATCH at injection " << i << " (interval "
                  << (k == emu::kCkptAuto ? std::string("auto")
                                          : std::to_string(k))
                  << ")\n";
      }
    }
  }
  std::cout << t.to_string();
  std::cout << "\noutcomes identical at every interval: "
            << (identical ? "yes" : "NO") << "\n";
  return identical ? 0 : 1;
}
