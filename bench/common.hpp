// Shared scaffolding for the paper-reproduction benches.
//
// Every bench runs at a scaled-down default (these run on a laptop-class
// single core in seconds) and accepts --full for paper-scale numbers, plus
// --seed N. The workload is the standard AVP testcase unless the bench
// says otherwise.
#pragma once

#include <cstring>
#include <iostream>
#include <string>

#include "avp/testgen.hpp"
#include "report/table.hpp"
#include "sfi/campaign.hpp"

namespace sfi::bench {

struct Options {
  bool full = false;
  u64 seed = 42;
};

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      opt.full = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: " << argv[0] << " [--full] [--seed N]\n"
                << "  --full  paper-scale sample sizes (slower)\n";
      std::exit(0);
    }
  }
  return opt;
}

/// The standard AVP workload used across benches.
inline avp::Testcase standard_testcase(u64 seed = 2026) {
  avp::TestcaseConfig cfg;
  cfg.seed = seed;
  cfg.num_instructions = 160;
  return avp::generate_testcase(cfg);
}

inline void print_scale_note(const Options& opt, const std::string& deflt,
                             const std::string& full) {
  std::cout << (opt.full ? "[--full: " + full + "]\n"
                         : "[scaled default: " + deflt +
                               "; run with --full for paper scale]\n");
}

/// Outcome row formatting shared by several benches.
inline std::vector<std::string> outcome_row(
    const std::string& label, const inject::OutcomeCounts& c) {
  return {label,
          report::Table::count(c.total()),
          report::Table::pct(c.fraction(inject::Outcome::Vanished)),
          report::Table::pct(c.fraction(inject::Outcome::Corrected)),
          report::Table::pct(c.fraction(inject::Outcome::Hang)),
          report::Table::pct(c.fraction(inject::Outcome::Checkstop)),
          report::Table::pct(c.fraction(inject::Outcome::BadArchState))};
}

inline std::vector<std::string> outcome_headers(const std::string& first) {
  return {first,   "flips",     "vanished", "corrected",
          "hangs", "checkstop", "SDC"};
}

}  // namespace sfi::bench
