// Figure 5 — "SER of different types of latches": targeted injection per
// latch type (scan-only MODE and GPTR vs read-write REGFILE and FUNC). The
// paper's finding: scan-only latches have a larger system-level impact
// because their values persist for the whole run — motivation for hardening
// them first.
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const bench::Options opt = bench::parse_options(argc, argv);
  const u32 per_type = opt.full ? 3000 : 450;
  bench::print_scale_note(opt, "450 flips per latch type",
                          "3000 flips per latch type");

  const avp::Testcase tc = bench::standard_testcase();

  std::cout << report::section(
      "Figure 5: outcome distribution per latch type");
  report::Table t(bench::outcome_headers("latch type"));

  double scan_vanish = 0.0;
  double rw_vanish = 0.0;
  for (const auto type :
       {netlist::LatchType::Mode, netlist::LatchType::Gptr,
        netlist::LatchType::RegFile, netlist::LatchType::Func}) {
    inject::CampaignConfig cfg;
    cfg.seed = opt.seed + static_cast<u64>(type) * 31;
    cfg.num_injections = per_type;
    cfg.filter = [type](const netlist::LatchMeta& m) {
      return m.type == type;
    };
    const inject::CampaignResult r = inject::run_campaign(tc, cfg);
    t.add_row(bench::outcome_row(std::string(to_string(type)), r.counts()));
    const double v = r.counts().fraction(inject::Outcome::Vanished);
    if (netlist::is_scan_only(type)) {
      scan_vanish += v / 2.0;
    } else {
      rw_vanish += v / 2.0;
    }
  }
  std::cout << t.to_string();
  std::cout << "\nscan-only (MODE/GPTR) mean vanish "
            << report::Table::pct(scan_vanish) << " vs read-write "
            << report::Table::pct(rw_vanish)
            << " — the paper motivates hardening scan-only latches because "
               "their flips persist through the run\n";
  return 0;
}
