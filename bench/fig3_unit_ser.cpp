// Figure 3 — "SER of different micro-architecture units": targeted
// injection into each unit (IFU, IDU, FXU, FPU, LSU, RUT, Core pervasive),
// outcome distribution per unit. The beam cannot focus on units; SFI can —
// this is the paper's headline targeted capability.
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const bench::Options opt = bench::parse_options(argc, argv);
  const u32 per_unit = opt.full ? 3000 : 450;
  bench::print_scale_note(opt, "450 flips per unit",
                          "3000 flips per unit (~the paper's 20k total)");

  const avp::Testcase tc = bench::standard_testcase();

  std::cout << report::section(
      "Figure 3: outcome distribution per micro-architectural unit");
  report::Table t(bench::outcome_headers("unit"));

  double min_vanish = 1.0;
  netlist::Unit min_unit = netlist::Unit::IFU;
  for (const auto unit : netlist::kAllUnits) {
    inject::CampaignConfig cfg;
    cfg.seed = opt.seed + static_cast<u64>(unit);
    cfg.num_injections = per_unit;
    cfg.filter = [unit](const netlist::LatchMeta& m) {
      return m.unit == unit;
    };
    const inject::CampaignResult r = inject::run_campaign(tc, cfg);
    t.add_row(bench::outcome_row(std::string(to_string(unit)), r.counts()));
    const double v = r.counts().fraction(inject::Outcome::Vanished);
    if (v < min_vanish) {
      min_vanish = v;
      min_unit = unit;
    }
  }
  std::cout << t.to_string();
  std::cout << "\nlowest-derating unit: " << to_string(min_unit) << " ("
            << report::Table::pct(min_vanish)
            << " vanished) — the paper finds the RUT lowest (~92%) because "
               "its control state is unprotected-by-construction\n";
  return 0;
}
