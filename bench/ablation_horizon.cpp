// Ablation — post-injection horizon: the paper clocks 500,000 cycles after
// each injection "to ensure that all possible effects of the fault ...
// have been identified and serviced". This bench shows where outcome
// classifications saturate for Pearl6 (justifying the scaled default).
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const bench::Options opt = bench::parse_options(argc, argv);
  const u32 n = opt.full ? 3000 : 500;
  bench::print_scale_note(opt, "500 flips per horizon",
                          "3000 flips per horizon");

  const avp::Testcase tc = bench::standard_testcase();

  std::cout << report::section(
      "Ablation: classification vs post-injection horizon (hang margin)");
  report::Table t(bench::outcome_headers("margin (cycles)"));

  std::array<u64, inject::kNumOutcomes> prev{};
  bool saturated = false;
  for (const Cycle margin : {Cycle{100}, Cycle{400}, Cycle{1600},
                             Cycle{6400}, Cycle{25600}}) {
    inject::CampaignConfig cfg;
    cfg.seed = opt.seed;  // identical fault list at every horizon
    cfg.num_injections = n;
    cfg.run.hang_margin = margin;
    cfg.run.horizon = margin + 100000;
    const inject::CampaignResult r = inject::run_campaign(tc, cfg);
    t.add_row(bench::outcome_row(report::Table::count(margin), r.counts()));
    if (r.counts().counts == prev) saturated = true;
    prev = r.counts().counts;
  }
  std::cout << t.to_string();
  std::cout << "\nclassifications saturate once the margin covers a full "
               "recovery (flush + 51-cycle restore + refetch): "
            << (saturated ? "confirmed" : "still moving at the largest margin")
            << ".\nThe paper's 500k-cycle horizon is the same guarantee at "
               "POWER6's recovery latency scale.\n";
  return 0;
}
