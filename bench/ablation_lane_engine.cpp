// Ablation — lane-batched injection engine: N in-flight injections as
// sparse XOR diffs over one shared reference replay. Like the early-exit
// ablation, this knob must change wall-clock only, never a single record:
// every lane-count row is checked record-for-record (outcome AND end_cycle)
// against the scalar baseline, and the bench exits nonzero on any mismatch.
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const bench::Options opt = bench::parse_options(argc, argv);
  const u32 n = opt.full ? 10000 : 1500;
  bench::print_scale_note(opt, "1500 flips per row", "10000 flips per row");

  const avp::Testcase tc = bench::standard_testcase();

  inject::CampaignConfig base;
  base.seed = opt.seed;
  base.num_injections = n;
  base.threads = 1;  // isolate engine throughput from thread scaling
  const inject::CampaignResult scalar = inject::run_campaign(tc, base);

  std::cout << report::section(
      "Ablation: lane engine (in-flight lanes vs scalar baseline)");
  report::Table t({"engine", "lanes", "inj/s", "cycles evaluated", "wall s",
                   "speedup", "records"});
  t.add_row({"scalar", "-", report::Table::num(scalar.injections_per_second(), 0),
             report::Table::count(scalar.cycles_evaluated),
             report::Table::num(scalar.wall_seconds), "1.0x", "baseline"});

  bool identical = true;
  double best = 0.0;
  u32 best_lanes = 0;
  for (const u32 lanes : {16u, 64u, 256u, 512u, 1024u}) {
    inject::CampaignConfig cfg = base;
    cfg.engine = inject::EngineKind::Lanes;
    cfg.lanes = lanes;
    const inject::CampaignResult r = inject::run_campaign(tc, cfg);

    u64 mismatches = 0;
    for (std::size_t i = 0; i < scalar.records.size(); ++i) {
      const auto& a = scalar.records[i];
      const auto& b = r.records[i];
      if (a.outcome != b.outcome || a.end_cycle != b.end_cycle ||
          a.early_exited != b.early_exited || a.recoveries != b.recoveries) {
        ++mismatches;
        if (mismatches <= 3) std::cout << "MISMATCH at injection " << i << "\n";
      }
    }
    if (mismatches != 0) identical = false;

    const double speedup = scalar.wall_seconds / std::max(1e-9, r.wall_seconds);
    if (speedup > best) {
      best = speedup;
      best_lanes = lanes;
    }
    t.add_row({"lanes", report::Table::count(lanes),
               report::Table::num(r.injections_per_second(), 0),
               report::Table::count(r.cycles_evaluated),
               report::Table::num(r.wall_seconds),
               report::Table::num(speedup, 1) + "x",
               mismatches == 0 ? "identical"
                               : report::Table::count(mismatches) + " diffs"});
  }
  std::cout << t.to_string();

  // Amdahl decomposition from the scalar records: recovery tails re-execute
  // from a checkpoint carrying RAS state the fault-free reference never
  // holds, so most of their exec span (injection -> settle) is divergent
  // simulation no amount of lane sharing can absorb. Everything else can in
  // principle amortize onto the shared reference replay, so total/divergent
  // approximates the cycle-reduction ceiling at infinite lanes. The span
  // includes some sharable pre-recovery cycles, so this slightly overcounts
  // divergence — measured speedups can edge past the printed figure — but
  // it lands within ~20% of the observed plateau and explains why the
  // curve flattens near 3x instead of scaling with the lane count.
  u64 divergent_cycles = 0;
  u64 divergent_records = 0;
  for (const auto& rec : scalar.records) {
    if (rec.recoveries == 0) continue;
    ++divergent_records;
    divergent_cycles += rec.end_cycle - rec.fault.cycle;
  }
  const double ceiling =
      static_cast<double>(scalar.cycles_evaluated) /
      static_cast<double>(std::max<u64>(1, divergent_cycles));

  std::cout << "\nrecords identical across every lane count: "
            << (identical ? "yes" : "NO") << "\n"
            << "best: " << report::Table::num(best, 1) << "x at " << best_lanes
            << " lanes\n"
            << "amdahl: " << report::Table::count(divergent_records)
            << " recovery tails pin " << report::Table::count(divergent_cycles)
            << " of " << report::Table::count(scalar.cycles_evaluated)
            << " scalar cycles as divergent simulation -> cycle-reduction"
            << " ceiling ~" << report::Table::num(ceiling, 1)
            << "x at infinite lanes\n";
  return identical ? 0 : 1;
}
