// Table 1 — "Comparison of the AVP to SPECInt 2000": instruction mix
// (top classes) and CPI for 11 SPECInt-like components (Low/High/Average)
// and for the AVP, all measured on the Pearl6 core.
#include <iostream>

#include "avp/runner.hpp"
#include "bench/common.hpp"
#include "workload/spec_profiles.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const bench::Options opt = bench::parse_options(argc, argv);
  const u32 instrs = opt.full ? 800 : 220;
  bench::print_scale_note(opt, "220-instruction testcases",
                          "800-instruction testcases");

  std::cout << report::section(
      "Table 1: instruction mix & CPI — AVP vs SPECInt-2000-like components");

  const workload::MixEnvelope env =
      workload::measure_envelope(opt.seed, instrs);

  avp::TestcaseConfig avp_cfg;
  avp_cfg.seed = opt.seed;
  avp_cfg.num_instructions = instrs;
  const avp::MixReport avp_rep =
      avp::measure_mix(avp::generate_testcase(avp_cfg));

  const auto cls = [](isa::InstrClass c) { return static_cast<std::size_t>(c); };
  report::Table t({"class", "Low", "High", "Average", "AVP"});
  const std::pair<const char*, isa::InstrClass> rows[] = {
      {"Load", isa::InstrClass::Load},
      {"Store", isa::InstrClass::Store},
      {"Fixed Point", isa::InstrClass::FixedPoint},
      {"Floating Point", isa::InstrClass::FloatingPoint},
      {"Comparison", isa::InstrClass::Comparison},
      {"Branch", isa::InstrClass::Branch},
  };
  for (const auto& [name, c] : rows) {
    t.add_row({name, report::Table::pct(env.low[cls(c)], 1),
               report::Table::pct(env.high[cls(c)], 1),
               report::Table::pct(env.average[cls(c)], 1),
               report::Table::pct(avp_rep.fractions[cls(c)], 1)});
  }
  t.add_row({"CPI", report::Table::num(env.cpi_low),
             report::Table::num(env.cpi_high),
             report::Table::num(env.cpi_average),
             report::Table::num(avp_rep.cpi)});
  std::cout << t.to_string();

  // The paper's claim: the AVP sits inside the SPECInt envelope.
  bool inside = avp_rep.cpi >= env.cpi_low * 0.9 &&
                avp_rep.cpi <= env.cpi_high * 1.1;
  for (const auto& [name, c] : rows) {
    const double f = avp_rep.fractions[cls(c)];
    if (f < env.low[cls(c)] - 0.05 || f > env.high[cls(c)] + 0.05) {
      inside = false;
    }
  }
  std::cout << "\nAVP within the measured SPECInt envelope (±5% slack): "
            << (inside ? "yes" : "NO") << "\n";
  return 0;
}
