// Extension — periphery injection into the memory subsystem.
//
// The paper closes with "current and future work involves fault injections
// in the periphery of the core, such as the I/O subsystem, memory subsystem
// and so on". This bench performs that experiment against the SEC-DED
// protected main store: single-bit strikes into DRAM data/check bits across
// the exposure window, classified with full-machine observability, plus a
// small double-bit (uncorrectable) sweep.
#include <iostream>

#include "bench/common.hpp"
#include "sfi/runner.hpp"
#include "stats/rng.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const bench::Options opt = bench::parse_options(argc, argv);
  const u32 singles = opt.full ? 3000 : 400;
  const u32 doubles = opt.full ? 300 : 60;
  bench::print_scale_note(opt, "400 single + 60 double strikes",
                          "3000 single + 300 double strikes");

  const avp::Testcase tc = bench::standard_testcase();
  const avp::GoldenResult golden = avp::run_golden(tc);
  core::Pearl6Model model;
  emu::Emulator emu(model);
  const emu::GoldenTrace trace = avp::run_reference(model, emu, tc);
  emu.reset();
  const emu::Checkpoint cp = emu.save_checkpoint();

  inject::RunConfig rc;
  rc.early_exit = false;  // DRAM is outside the latch hash
  inject::InjectionRunner runner(model, emu, cp, trace, golden, rc);

  const u64 bits = model.memory().storage_bits();
  stats::Xoshiro256 rng(opt.seed);

  const auto strike_run = [&](u32 nbits) {
    // Reload, clock to a random point, strike nbits random bits of one
    // random word, then let the runner's classification loop finish.
    const Cycle at = 1 + rng.below(trace.completion_cycle - 1);
    emu.restore_checkpoint(cp);
    emu.run(at);
    const u64 word = rng.below(bits / 72);
    for (u32 k = 0; k < nbits; ++k) {
      model.memory().flip_storage_bit(word * 72 + rng.below(72));
    }
    // Classify manually (mirrors InjectionRunner::run after injection).
    while (true) {
      emu.step();
      const emu::RasStatus ras = model.ras_status(emu.state());
      if (ras.checkstop || ras.hang_detected) {
        return runner.classify_now(false, false);
      }
      if (ras.test_finished) return runner.classify_now(true, false);
      if (emu.cycle() >= trace.completion_cycle + rc.hang_margin) {
        return runner.classify_now(false, false);
      }
    }
  };

  inject::OutcomeCounts single_counts;
  for (u32 i = 0; i < singles; ++i) single_counts.add(strike_run(1).outcome);
  inject::OutcomeCounts double_counts;
  for (u32 i = 0; i < doubles; ++i) double_counts.add(strike_run(2).outcome);

  std::cout << report::section(
      "Extension: fault injection into the main-store periphery");
  report::Table t(bench::outcome_headers("strike type"));
  t.add_row(bench::outcome_row("single-bit", single_counts));
  t.add_row(bench::outcome_row("double-bit (same word)", double_counts));
  std::cout << t.to_string();
  std::cout
      << "\nexpected: single-bit strikes are fully absorbed — corrected on "
         "access, by the patrol scrub, or at the end-of-test readout; "
         "double-bit strikes checkstop via the controller's uncorrectable "
         "report the moment the word is touched\n";
  std::cout << "SDC from single-bit main-store strikes: "
            << report::Table::count(
                   single_counts.of(inject::Outcome::BadArchState))
            << " (must be 0)\n";
  return single_counts.of(inject::Outcome::BadArchState) == 0 ? 0 : 1;
}
