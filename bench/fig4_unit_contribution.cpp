// Figure 4 — "Contribution of each unit to the total recoveries, hangs and
// checkstops": Figure 3's per-unit rates reweighted by each unit's latch
// population (the per-unit *rate* times the chance a uniform flip lands in
// that unit). The paper's reading: the LSU dominates recoveries because it
// has the most latches; RUT + pervasive dominate checkstops/hangs.
#include <array>
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const bench::Options opt = bench::parse_options(argc, argv);
  const u32 per_unit = opt.full ? 3000 : 450;
  bench::print_scale_note(opt, "450 flips per unit", "3000 flips per unit");

  const avp::Testcase tc = bench::standard_testcase();

  // Latch counts weight the per-unit rates.
  core::Pearl6Model model;
  const auto latch_counts = model.registry().latch_count_by_unit();

  struct UnitShare {
    double recoveries = 0.0;
    double hangs = 0.0;
    double checkstops = 0.0;
  };
  std::array<UnitShare, netlist::kNumUnits> shares{};
  UnitShare total;

  for (const auto unit : netlist::kAllUnits) {
    inject::CampaignConfig cfg;
    cfg.seed = opt.seed + static_cast<u64>(unit);
    cfg.num_injections = per_unit;
    cfg.filter = [unit](const netlist::LatchMeta& m) {
      return m.unit == unit;
    };
    const inject::CampaignResult r = inject::run_campaign(tc, cfg);
    const auto idx = static_cast<std::size_t>(unit);
    const double weight = static_cast<double>(latch_counts[idx]);
    shares[idx].recoveries =
        r.counts().fraction(inject::Outcome::Corrected) * weight;
    shares[idx].hangs = r.counts().fraction(inject::Outcome::Hang) * weight;
    shares[idx].checkstops =
        r.counts().fraction(inject::Outcome::Checkstop) * weight;
    total.recoveries += shares[idx].recoveries;
    total.hangs += shares[idx].hangs;
    total.checkstops += shares[idx].checkstops;
  }

  std::cout << report::section(
      "Figure 4: per-unit contribution to total recoveries / hangs / "
      "checkstops (latch-count weighted)");
  report::Table t({"unit", "latches", "recoveries", "hangs", "checkstops"});
  for (const auto unit : netlist::kAllUnits) {
    const auto idx = static_cast<std::size_t>(unit);
    const auto share = [&](double x, double tot) {
      return tot > 0.0 ? report::Table::pct(x / tot, 1) : std::string("-");
    };
    t.add_row({std::string(to_string(unit)),
               report::Table::count(latch_counts[idx]),
               share(shares[idx].recoveries, total.recoveries),
               share(shares[idx].hangs, total.hangs),
               share(shares[idx].checkstops, total.checkstops)});
  }
  std::cout << t.to_string();
  std::cout << "\npaper shape: LSU (largest latch population) contributes the "
               "most recoveries; RUT and Core pervasive dominate "
               "checkstops/hangs\n";
  return 0;
}
