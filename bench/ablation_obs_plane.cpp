// Ablation — observability-plane overhead and read-only gate: a farm
// campaign with the full plane enabled (campaign telemetry, per-worker 'M'
// metrics frames, a concurrent Prometheus-rendering scrape thread, the
// crash flight recorder) must produce a byte-identical merged store to a
// plane-off run of the same plan, at <5% wall-clock overhead.
//
// Both invariants gate CI (nonzero exit on violation). Arms are interleaved
// off/on/off/on... and compared min-vs-min so one noisy neighbour on a CI
// runner doesn't fail the build; byte identity is checked on every pair.
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "farm/farm.hpp"
#include "sfi/telemetry.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/prometheus.hpp"

namespace {

std::vector<sfi::u8> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sfi;
  const bench::Options opt = bench::parse_options(argc, argv);
  const u32 n = opt.full ? 10000 : 2000;
  const u32 reps = opt.full ? 2 : 3;
  bench::print_scale_note(opt, "2000 flips x 3 reps/arm",
                          "10000 flips x 2 reps/arm");

  const avp::Testcase tc = bench::standard_testcase();
  inject::CampaignConfig base;
  base.seed = opt.seed;
  base.num_injections = n;

  const auto dir = std::filesystem::temp_directory_path();
  const std::string out_off = (dir / "sfi_obs_plane_off.sfr").string();
  const std::string out_on = (dir / "sfi_obs_plane_on.sfr").string();
  const std::string postmortem = (dir / "sfi_obs_plane.postmortem").string();

  // The plane's process-wide half: the crash flight recorder ring that the
  // event-emission path tees into on every line.
  telemetry::FlightRecorder::global().enable(2048);

  farm::FarmConfig farm_base;
  farm_base.workers = 2;
  farm_base.shard_size = 64;

  const auto run_off = [&] {
    std::filesystem::remove(out_off);
    inject::CampaignConfig cfg = base;
    return farm::run_farm_campaign(tc, cfg, out_off, farm_base);
  };

  u64 scrapes = 0;
  u64 scrape_bytes = 0;
  const auto run_on = [&] {
    std::filesystem::remove(out_on);
    inject::CampaignTelemetry tel;
    tel.set_stop_target(0.95, 0.02);
    inject::CampaignConfig cfg = base;
    cfg.telemetry = &tel;
    farm::FarmConfig fc = farm_base;
    fc.metrics_every = 32;      // workers stream cumulative 'M' frames
    fc.postmortem_path = postmortem;

    // A /metrics scrape once a second, rendered exactly the way the serve
    // daemon renders it: fleet snapshot (with quantile gauges) under the
    // campaign labels, concurrent with the running coordinator.
    std::atomic<bool> running{true};
    std::thread scraper([&] {
      const std::vector<telemetry::PromLabel> labels = {
          {"campaign", "1"}, {"tenant", "bench"}, {"engine", "farm"}};
      while (running.load(std::memory_order_relaxed)) {
        telemetry::PrometheusWriter pw;
        pw.add_gauge("campaign.injections_total", labels, n);
        pw.add_gauge("campaign.fleet_workers", labels,
                     static_cast<double>(tel.fleet_workers()));
        pw.add_snapshot(tel.fleet_snapshot(), labels);
        scrape_bytes += pw.str().size();
        ++scrapes;
        for (int i = 0; i < 20 && running.load(); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
      }
    });
    const farm::FarmResult r = farm::run_farm_campaign(tc, cfg, out_on, fc);
    running.store(false);
    scraper.join();
    return r;
  };

  std::cout << report::section(
      "Ablation: observability plane overhead + read-only gate");
  report::Table t({"rep", "plane", "executed", "wall (s)", "inj/s"});
  double best_off = -1.0;
  double best_on = -1.0;
  bool identical = true;
  for (u32 rep = 0; rep < reps; ++rep) {
    const farm::FarmResult off = run_off();
    const farm::FarmResult on = run_on();
    if (!off.complete || !on.complete) {
      std::cout << "ERROR: farm run incomplete\n";
      return 1;
    }
    if (slurp(out_off) != slurp(out_on)) identical = false;
    if (best_off < 0.0 || off.wall_seconds < best_off) {
      best_off = off.wall_seconds;
    }
    if (best_on < 0.0 || on.wall_seconds < best_on) {
      best_on = on.wall_seconds;
    }
    t.add_row({report::Table::count(rep), "off",
               report::Table::count(off.executed),
               report::Table::num(off.wall_seconds, 2),
               report::Table::count(
                   static_cast<u64>(off.injections_per_second()))});
    t.add_row({report::Table::count(rep), "ON",
               report::Table::count(on.executed),
               report::Table::num(on.wall_seconds, 2),
               report::Table::count(
                   static_cast<u64>(on.injections_per_second()))});
  }
  std::cout << t.to_string();

  const double overhead = best_off > 0.0 ? best_on / best_off - 1.0 : 0.0;
  std::cout << "\nscrapes: " << scrapes << " (" << scrape_bytes
            << " bytes of exposition text)\n";
  std::cout << "min wall: off " << report::Table::num(best_off, 3) << "s, on "
            << report::Table::num(best_on, 3) << "s -> overhead "
            << report::Table::pct(overhead) << " (budget 5%)\n";
  std::cout << "merged store byte-identical plane-on vs plane-off: "
            << (identical ? "yes" : "NO") << "\n";

  std::filesystem::remove(out_off);
  std::filesystem::remove(out_on);
  std::filesystem::remove(postmortem);

  if (!identical) {
    std::cout << "VIOLATION: observability plane changed store bytes\n";
    return 1;
  }
  if (overhead >= 0.05) {
    std::cout << "VIOLATION: plane overhead above the 5% budget\n";
    return 1;
  }
  return 0;
}
