// Ablation — propagation-forensics sampling policy: what infection tracing
// costs, and why exponential sampling is the default.
//
// Three configurations over the same campaign: forensics off (baseline),
// exponential sampling (the production default), and every-cycle sampling
// (maximum-resolution footprints). Outcomes must be identical in all three —
// the tracker re-runs injections on the side and never touches records. The
// interesting numbers are the overhead columns (the default must stay under
// the ~10% budget) and the per-footprint diff work the policies trade away.
//
// Two overhead figures are reported because they answer different questions:
//   wall  — min-of-N interleaved repetitions; the min discards scheduler
//           noise, interleaving discards machine drift between modes.
//   cycle — extra simulated cycles / baseline simulated cycles. Fully
//           deterministic, so it is the number the <10% budget is pinned to;
//           re-run cycles are leaner than primary cycles (no convergence
//           bookkeeping, no classification), so wall reads at or below it.
#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "sfi/propagation.hpp"

namespace {

using namespace sfi;

struct Mode {
  const char* label;
  bool enabled;
  inject::FootprintSampling sampling;
};

u64 total_samples(const inject::CampaignResult& r) {
  u64 n = 0;
  for (const auto& p : r.footprints) n += p.samples.size();
  return n;
}

u64 total_rerun_cycles(const inject::CampaignResult& r) {
  u64 n = 0;
  for (const auto& p : r.footprints) n += p.rerun_cycles;
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  const u32 n = opt.full ? 10000 : 1000;
  constexpr int kReps = 5;
  bench::print_scale_note(opt, "1000 flips per mode", "10000 flips per mode");

  const avp::Testcase tc = bench::standard_testcase();

  const Mode modes[] = {
      {"forensics OFF", false, inject::FootprintSampling::Exponential},
      {"exponential (default)", true,
       inject::FootprintSampling::Exponential},
      {"every cycle", true, inject::FootprintSampling::EveryCycle},
  };
  constexpr std::size_t kNumModes = std::size(modes);

  // Round-robin repetitions: mode 0, 1, 2, 0, 1, 2, ... so slow machine
  // phases hit every mode equally; keep the best (minimum) wall per mode.
  std::array<double, kNumModes> best_wall;
  best_wall.fill(0.0);
  std::array<inject::CampaignResult, kNumModes> results;
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t m = 0; m < kNumModes; ++m) {
      inject::CampaignConfig cfg;
      cfg.seed = opt.seed;
      cfg.num_injections = n;
      cfg.footprint.enabled = modes[m].enabled;
      cfg.footprint.sampling = modes[m].sampling;
      inject::CampaignResult r = inject::run_campaign(tc, cfg);
      if (rep == 0 || r.wall_seconds < best_wall[m]) {
        best_wall[m] = r.wall_seconds;
      }
      if (rep == 0) results[m] = std::move(r);
    }
  }

  std::cout << report::section(
      "Ablation: footprint sampling policy (forensics cost)");
  report::Table t({"config", "inj/s", "wall s", "wall ovh", "cycle ovh",
                   "footprints", "diff samples", "rerun cycles"});

  const double base_wall = best_wall[0];
  const double base_cycles =
      static_cast<double>(results[0].cycles_evaluated);
  for (std::size_t m = 0; m < kNumModes; ++m) {
    const inject::CampaignResult& r = results[m];
    const double wall_ovh = (best_wall[m] - base_wall) / base_wall;
    const double cycle_ovh =
        static_cast<double>(total_rerun_cycles(r)) / base_cycles;
    t.add_row({modes[m].label, report::Table::num(n / best_wall[m], 0),
               report::Table::num(best_wall[m]),
               modes[m].enabled ? report::Table::pct(wall_ovh, 1) : "--",
               modes[m].enabled ? report::Table::pct(cycle_ovh, 1) : "--",
               report::Table::count(r.footprints.size()),
               report::Table::count(total_samples(r)),
               report::Table::count(total_rerun_cycles(r))});
  }
  std::cout << t.to_string();

  // Forensics must be pure observation: outcome-for-outcome identical.
  bool identical = true;
  for (std::size_t m = 1; m < kNumModes; ++m) {
    for (std::size_t i = 0; i < results[0].records.size(); ++i) {
      if (results[0].records[i].outcome != results[m].records[i].outcome) {
        identical = false;
        std::cout << "MISMATCH: mode " << modes[m].label << " injection " << i
                  << "\n";
      }
    }
  }
  std::cout << "\noutcomes identical across all modes: "
            << (identical ? "yes" : "NO") << "\n";
  const double exp_cycle_ovh =
      static_cast<double>(total_rerun_cycles(results[1])) / base_cycles;
  std::cout << "default-policy overhead: wall "
            << report::Table::pct((best_wall[1] - base_wall) / base_wall, 1)
            << ", cycles " << report::Table::pct(exp_cycle_ovh, 1)
            << " (budget: <10%)\n";
  return identical ? 0 : 1;
}
