// Ablation — toggle vs sticky fault mode (paper §2: "the fault may exist
// for the duration of a cycle (toggle mode) or for a larger number of
// cycles (sticky mode)"). Sticky faults model stuck-ats / latent upsets:
// recovery restores state, the fault re-corrupts it, and the recovery
// threshold escalates — so sticky campaigns shift mass from Corrected to
// Checkstop.
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const bench::Options opt = bench::parse_options(argc, argv);
  const u32 n = opt.full ? 3000 : 500;
  bench::print_scale_note(opt, "500 flips per mode", "3000 flips per mode");

  const avp::Testcase tc = bench::standard_testcase();

  std::cout << report::section("Ablation: toggle vs sticky fault mode");
  report::Table t(bench::outcome_headers("fault mode"));

  inject::CampaignConfig cfg;
  cfg.seed = opt.seed;
  cfg.num_injections = n;
  const inject::CampaignResult toggle = inject::run_campaign(tc, cfg);
  t.add_row(bench::outcome_row("toggle (1 cycle)", toggle.counts()));

  for (const Cycle dur : {Cycle{16}, Cycle{256}}) {
    inject::CampaignConfig scfg = cfg;
    scfg.mode = inject::FaultMode::Sticky;
    scfg.sticky_duration = dur;
    const inject::CampaignResult sticky = inject::run_campaign(tc, scfg);
    t.add_row(bench::outcome_row(
        "sticky " + std::to_string(dur) + " cycles", sticky.counts()));
  }
  std::cout << t.to_string();
  std::cout << "\nexpected shift: longer stuck faults escalate from "
               "Vanished/Corrected toward Checkstop (recovery livelock "
               "breaker) and Hang\n";
  return 0;
}
