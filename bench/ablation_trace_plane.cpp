// Ablation — span-plane overhead and read-only gate: a farm campaign with
// the distributed tracing plane enabled (worker 'S' frames with exemplar
// phase slices, coordinator dispatch spans, trace sidecar tee, post-run
// stitch) must produce a byte-identical merged store to a plane-off run of
// the same plan, at <5% wall-clock overhead.
//
// Both invariants gate CI (nonzero exit on violation). Arms are interleaved
// off/on/off/on... and the overhead estimate is the MEDIAN of the per-pair
// on/off ratios: each pair runs back to back under the same ambient load,
// so pairing cancels runner drift, and the median discards the one pair a
// noisy neighbour landed on (min-vs-min compares arms that may have gotten
// lucky at different times, which flips sign run to run on a busy box).
// Byte identity is checked on every pair. The stitch runs inside the ON
// arm's wall time: "trace on" means paying for both recording and
// reassembly.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "farm/farm.hpp"
#include "sfi/telemetry.hpp"
#include "store/trace_stitch.hpp"

namespace {

std::vector<sfi::u8> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sfi;
  const bench::Options opt = bench::parse_options(argc, argv);
  // Quick mode still runs ~1.5s arms: shorter farm runs are dominated by
  // supervision-poll jitter and the min-vs-min overhead estimate turns into
  // a coin flip against a 5% budget (the plane's true cost is ~2-3%).
  const u32 n = opt.full ? 10000 : 5000;
  const u32 reps = opt.full ? 3 : 5;
  bench::print_scale_note(opt, "5000 flips x 5 reps/arm",
                          "10000 flips x 3 reps/arm");

  const avp::Testcase tc = bench::standard_testcase();
  inject::CampaignConfig base;
  base.seed = opt.seed;
  base.num_injections = n;

  const auto dir = std::filesystem::temp_directory_path();
  const std::string out_off = (dir / "sfi_trace_plane_off.sfr").string();
  const std::string out_on = (dir / "sfi_trace_plane_on.sfr").string();
  const std::string sidecar = (dir / "sfi_trace_plane_on.trace.sfr").string();

  farm::FarmConfig farm_base;
  farm_base.workers = 2;
  farm_base.shard_size = 64;

  const auto run_off = [&] {
    std::filesystem::remove(out_off);
    inject::CampaignConfig cfg = base;
    return farm::run_farm_campaign(tc, cfg, out_off, farm_base);
  };

  std::size_t stitched_spans = 0;
  std::size_t stitched_processes = 0;
  std::size_t trace_json_bytes = 0;
  const auto run_on = [&] {
    std::filesystem::remove(out_on);
    std::filesystem::remove(sidecar);
    inject::CampaignTelemetry tel;
    inject::CampaignConfig cfg = base;
    cfg.telemetry = &tel;
    farm::FarmConfig fc = farm_base;
    fc.trace_spans = true;
    farm::FarmResult r = farm::run_farm_campaign(tc, cfg, out_on, fc);
    // The stitch is part of what "tracing on" costs: fold it into the arm.
    const auto t0 = std::chrono::steady_clock::now();
    const store::StitchResult st = store::stitch_trace(out_on);
    r.wall_seconds += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    stitched_spans = st.spans;
    stitched_processes = st.processes;
    trace_json_bytes = st.json.size();
    return r;
  };

  std::cout << report::section(
      "Ablation: span-plane overhead + read-only gate");
  report::Table t({"rep", "spans", "executed", "wall (s)", "inj/s"});
  std::vector<double> ratios;
  bool identical = true;
  for (u32 rep = 0; rep < reps; ++rep) {
    const farm::FarmResult off = run_off();
    const farm::FarmResult on = run_on();
    if (!off.complete || !on.complete) {
      std::cout << "ERROR: farm run incomplete\n";
      return 1;
    }
    if (slurp(out_off) != slurp(out_on)) identical = false;
    if (off.wall_seconds > 0.0) {
      ratios.push_back(on.wall_seconds / off.wall_seconds);
    }
    t.add_row({report::Table::count(rep), "off",
               report::Table::count(off.executed),
               report::Table::num(off.wall_seconds, 2),
               report::Table::count(
                   static_cast<u64>(off.injections_per_second()))});
    t.add_row({report::Table::count(rep), "ON",
               report::Table::count(on.executed),
               report::Table::num(on.wall_seconds, 2),
               report::Table::count(
                   static_cast<u64>(on.injections_per_second()))});
  }
  std::cout << t.to_string();

  std::sort(ratios.begin(), ratios.end());
  const double overhead =
      ratios.empty() ? 0.0 : ratios[ratios.size() / 2] - 1.0;
  std::cout << "\nstitched: " << stitched_spans << " spans across "
            << stitched_processes << " processes ("
            << trace_json_bytes << " bytes of trace JSON)\n";
  std::cout << "per-pair on/off ratios:";
  for (const double r : ratios) {
    std::cout << ' ' << report::Table::num(r, 3);
  }
  std::cout << "\nmedian overhead " << report::Table::pct(overhead)
            << " (budget 5%)\n";
  std::cout << "merged store byte-identical plane-on vs plane-off: "
            << (identical ? "yes" : "NO") << "\n";

  std::filesystem::remove(out_off);
  std::filesystem::remove(out_on);
  std::filesystem::remove(sidecar);

  if (!identical) {
    std::cout << "VIOLATION: span plane changed store bytes\n";
    return 1;
  }
  if (stitched_spans == 0 || stitched_processes < 2) {
    std::cout << "VIOLATION: trace stitched empty (plane not recording?)\n";
    return 1;
  }
  if (overhead >= 0.05) {
    // A farm arm is 3 processes (coordinator + 2 workers); on a machine
    // with fewer cores than that they time-slice one another and wall
    // clock measures scheduler contention, not the plane. The overhead
    // gate is only meaningful — and only enforced — where the arms can
    // actually run unserialized (CI runners have 4 cores).
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores != 0 && cores < 3) {
      std::cout << "WARNING: overhead above the 5% budget, but this machine "
                   "has "
                << cores
                << " core(s) for a 3-process farm — measurement is "
                   "contention-dominated, not gating\n";
      return 0;
    }
    std::cout << "VIOLATION: span-plane overhead above the 5% budget\n";
    return 1;
  }
  return 0;
}
