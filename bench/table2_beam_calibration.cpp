// Table 2 — "Error state proportions for SFI and Proton Beam experiments":
// the calibration that validates SFI. The same model and workload are
// exposed to (a) a latch-targeted SFI campaign and (b) a simulated proton
// beam (Poisson strikes over latches AND protected arrays, beam-grade
// observability only); the outcome proportions must match.
#include <iostream>

#include "beam/beam.hpp"
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const bench::Options opt = bench::parse_options(argc, argv);
  const u32 sfi_n = opt.full ? 10000 : 1500;
  const u32 beam_n = opt.full ? 4000 : 700;
  bench::print_scale_note(opt, "1500 SFI flips / 700 beam events",
                          "10000 SFI flips / 4000 beam events");

  const avp::Testcase tc = bench::standard_testcase();

  inject::CampaignConfig sfi_cfg;
  sfi_cfg.seed = opt.seed;
  sfi_cfg.num_injections = sfi_n;
  const inject::CampaignResult sfi_res = inject::run_campaign(tc, sfi_cfg);

  beam::BeamConfig beam_cfg;
  beam_cfg.seed = opt.seed + 17;
  beam_cfg.num_events = beam_n;
  const beam::BeamResult beam_res = beam::run_beam_experiment(tc, beam_cfg);

  // The paper's Table 2 compares like-for-like populations (SFI injects
  // latches only, and the published beam proportions are dominated by the
  // logic region). Separate the beam's latch strikes from its array strikes
  // to make the same comparison, then show the full-exposure row as well.
  const inject::OutcomeCounts beam_latch =
      inject::aggregate_records(beam_res.records,
                                [](const inject::InjectionRecord& rec) {
                                  return rec.fault.target ==
                                         inject::FaultTarget::Latch;
                                })
          .counts;
  const inject::OutcomeCounts beam_array =
      inject::aggregate_records(beam_res.records,
                                [](const inject::InjectionRecord& rec) {
                                  return rec.fault.target ==
                                         inject::FaultTarget::ArrayCell;
                                })
          .counts;

  std::cout << report::section(
      "Table 2: error state proportions — SFI vs (simulated) proton beam");
  report::Table t(bench::outcome_headers("experiment"));
  t.add_row(bench::outcome_row("SFI (latches)", sfi_res.counts()));
  t.add_row(bench::outcome_row("Beam, latch strikes", beam_latch));
  t.add_row(bench::outcome_row("Beam, array strikes", beam_array));
  t.add_row(bench::outcome_row("Beam, all", beam_res.counts()));
  std::cout << t.to_string();

  std::cout << "\nbeam events: " << beam_res.latch_events << " latch strikes, "
            << beam_res.array_events
            << " array strikes (array upsets are ECC/parity absorbed — the "
               "paper's '5600+ fully recovered events including SRAM array "
               "events')\n";

  const double dv = sfi_res.counts().fraction(inject::Outcome::Vanished) -
                    beam_latch.fraction(inject::Outcome::Vanished);
  std::cout << "calibration delta on vanished (like-for-like latch rows): "
            << report::Table::pct(dv < 0 ? -dv : dv)
            << " (paper: 0.41% between SFI 95.48% and beam 95.89%)\n";
  return 0;
}
