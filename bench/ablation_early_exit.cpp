// Ablation — golden-trace hash early exit: the software substitute for
// AWAN's raw speed. Must change wall-clock only, never a single outcome.
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const bench::Options opt = bench::parse_options(argc, argv);
  const u32 n = opt.full ? 4000 : 600;
  bench::print_scale_note(opt, "600 flips per mode", "4000 flips per mode");

  const avp::Testcase tc = bench::standard_testcase();

  inject::CampaignConfig fast;
  fast.seed = opt.seed;
  fast.num_injections = n;
  const inject::CampaignResult with_exit = inject::run_campaign(tc, fast);

  inject::CampaignConfig slow = fast;
  slow.run.early_exit = false;
  const inject::CampaignResult without_exit = inject::run_campaign(tc, slow);

  std::cout << report::section(
      "Ablation: golden-trace early exit (speed vs fidelity)");
  report::Table t({"config", "inj/s", "cycles evaluated", "wall s"});
  t.add_row({"early-exit ON",
             report::Table::num(with_exit.injections_per_second(), 0),
             report::Table::count(with_exit.cycles_evaluated),
             report::Table::num(with_exit.wall_seconds)});
  t.add_row({"early-exit OFF",
             report::Table::num(without_exit.injections_per_second(), 0),
             report::Table::count(without_exit.cycles_evaluated),
             report::Table::num(without_exit.wall_seconds)});
  std::cout << t.to_string();

  bool identical = true;
  for (std::size_t i = 0; i < with_exit.records.size(); ++i) {
    if (with_exit.records[i].outcome != without_exit.records[i].outcome) {
      identical = false;
      std::cout << "MISMATCH at injection " << i << "\n";
    }
  }
  std::cout << "\noutcomes identical injection-for-injection: "
            << (identical ? "yes" : "NO") << "\n";
  std::cout << "speedup: "
            << report::Table::num(without_exit.wall_seconds /
                                      std::max(1e-9, with_exit.wall_seconds),
                                  1)
            << "x (cycles evaluated: "
            << report::Table::num(
                   static_cast<double>(without_exit.cycles_evaluated) /
                       std::max<u64>(1, with_exit.cycles_evaluated),
                   1)
            << "x fewer)\n";
  return identical ? 0 : 1;
}
