// Figure 2 — "Accuracy of SFI with increasing number of flips":
// σ/µ of each outcome category versus the number of bit flips X, with 10
// random samples of size X per point (paper §2.1).
#include <iostream>

#include "bench/common.hpp"
#include "sfi/sample_size.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const bench::Options opt = bench::parse_options(argc, argv);

  // One large uniform campaign provides the record pool; Figure 2 then
  // resamples subsets — statistically identical to re-running campaigns of
  // every size, at a fraction of the cost.
  const u32 pool_size = opt.full ? 24000 : 3600;
  std::vector<std::size_t> flips;
  if (opt.full) {
    for (std::size_t x = 2000; x <= 20000; x += 2000) flips.push_back(x);
  } else {
    for (std::size_t x = 200; x <= 2000; x += 200) flips.push_back(x);
  }
  bench::print_scale_note(
      opt, "pool 3600 flips, X = 200..2000",
      "pool 24000 flips, X = 2k..20k (the paper's axis)");

  const avp::Testcase tc = bench::standard_testcase();
  inject::CampaignConfig cfg;
  cfg.seed = opt.seed;
  cfg.num_injections = pool_size;
  const inject::CampaignResult pool = inject::run_campaign(tc, cfg);

  std::cout << report::section(
      "Figure 2: stddev/mean of each category vs number of flips");
  std::cout << "pool: " << pool.records.size() << " injections over "
            << pool.population_size << " latches ("
            << report::Table::num(pool.injections_per_second(), 0)
            << " inj/s)\n\n";

  inject::SampleSizeConfig scfg;
  scfg.seed = opt.seed + 1;
  scfg.samples_per_point = 10;  // the paper's choice
  scfg.flip_counts = flips;
  const auto pts = inject::sample_size_study(pool.records, scfg);

  report::Table t({"flips", "vanished", "recovered", "hangs", "checkstops",
                   "SDC"});
  for (const auto& pt : pts) {
    t.add_row({report::Table::count(pt.flips),
               report::Table::num(
                   pt.stddev_over_mean[static_cast<std::size_t>(
                       inject::Outcome::Vanished)], 4),
               report::Table::num(
                   pt.stddev_over_mean[static_cast<std::size_t>(
                       inject::Outcome::Corrected)], 4),
               report::Table::num(
                   pt.stddev_over_mean[static_cast<std::size_t>(
                       inject::Outcome::Hang)], 4),
               report::Table::num(
                   pt.stddev_over_mean[static_cast<std::size_t>(
                       inject::Outcome::Checkstop)], 4),
               report::Table::num(
                   pt.stddev_over_mean[static_cast<std::size_t>(
                       inject::Outcome::BadArchState)], 4)});
  }
  std::cout << t.to_string();

  const auto corrected = static_cast<std::size_t>(inject::Outcome::Corrected);
  std::cout << "\nshape check (paper: error falls steeply with sample size): "
            << "sigma/mu[corrected] " <<
      report::Table::num(pts.front().stddev_over_mean[corrected], 4)
            << " @" << pts.front().flips << " -> "
            << report::Table::num(pts.back().stddev_over_mean[corrected], 4)
            << " @" << pts.back().flips << "\n";

  // Analytic cross-check: the Wilson-interval sample size needed for a
  // ±0.5% estimate of the corrected proportion.
  const double p = pool.counts().fraction(inject::Outcome::Corrected);
  std::cout << "Wilson sample size for +/-0.5% on the corrected rate (p="
            << report::Table::pct(p) << "): "
            << stats::required_sample_size(p, 0.005) << " flips\n";
  return 0;
}
