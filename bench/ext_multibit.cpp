// Extension — multi-bit upsets (MBU).
//
// The paper models single-event single-bit flips (the dominant mechanism at
// its technology node); later nodes made *adjacent multi-bit* upsets a
// first-order concern. This bench injects adjacent-double upsets and shows
// the coverage cliff the protection codes predict:
//   - latches: two adjacent latch bits usually belong to different parity
//     domains → detection mostly survives,
//   - parity arrays (caches): an adjacent double inside one entry has even
//     parity → the checker is BLIND to it (the classic argument for
//     interleaving or ECC on dense SRAM),
//   - SEC-DED arrays (RUT checkpoint): detected-uncorrectable → checkstop
//     rather than corruption.
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const bench::Options opt = bench::parse_options(argc, argv);
  const u32 n = opt.full ? 3000 : 500;
  bench::print_scale_note(opt, "500 strikes per experiment",
                          "3000 strikes per experiment");

  const avp::Testcase tc = bench::standard_testcase();

  std::cout << report::section("Extension: adjacent multi-bit upsets");
  report::Table t(bench::outcome_headers("experiment"));

  // Latch campaigns: single vs adjacent-double.
  for (const u8 width : {u8{1}, u8{2}}) {
    inject::CampaignConfig cfg;
    cfg.seed = opt.seed;
    cfg.num_injections = n;
    // The campaign engine samples single-bit specs; widen them here by
    // post-processing is not exposed, so run via the generic filter +
    // adjacent width support below (sampler patch): emulate by running a
    // manual loop for width 2.
    if (width == 1) {
      const auto r = inject::run_campaign(tc, cfg);
      t.add_row(bench::outcome_row("latches, single-bit", r.counts()));
      continue;
    }
    // Width-2 latch strikes: manual loop over pre-sampled specs.
    const avp::GoldenResult golden = avp::run_golden(tc);
    core::Pearl6Model model;
    emu::Emulator emu(model);
    const emu::GoldenTrace trace = avp::run_reference(model, emu, tc);
    emu.reset();
    const emu::Checkpoint cp = emu.save_checkpoint();
    inject::InjectionRunner runner(model, emu, cp, trace, golden, {});
    inject::OutcomeCounts counts;
    for (u32 i = 0; i < n; ++i) {
      stats::Xoshiro256 rng(stats::derive_seed(cfg.seed, i));
      inject::FaultSpec f;
      f.index = static_cast<u32>(rng.below(model.registry().num_latches()));
      f.cycle = 1 + rng.below(trace.completion_cycle - 1);
      f.adjacent_bits = 2;
      counts.add(runner.run(f).outcome);
    }
    t.add_row(bench::outcome_row("latches, adjacent-double", counts));
  }

  // Array strikes: single vs adjacent-double, per protection flavour.
  {
    const avp::GoldenResult golden = avp::run_golden(tc);
    core::Pearl6Model model;
    emu::Emulator emu(model);
    const emu::GoldenTrace trace = avp::run_reference(model, emu, tc);
    emu.reset();
    const emu::Checkpoint cp = emu.save_checkpoint();
    inject::RunConfig rc;
    rc.early_exit = false;
    inject::InjectionRunner runner(model, emu, cp, trace, golden, rc);

    // Array layout: [icache data (parity), dcache data (parity), rut ckpt
    // (SEC-DED)]. Partition the global bit space accordingly.
    const u64 icache_bits = model.ifu().icache().data_array().storage_bits();
    const u64 dcache_bits = model.lsu().dcache().data_array().storage_bits();
    const u64 parity_bits = icache_bits + dcache_bits;
    const u64 total_bits = model.arrays().total_storage_bits();

    const auto run_strikes = [&](const char* label, u64 base, u64 span,
                                 u8 width) {
      inject::OutcomeCounts counts;
      for (u32 i = 0; i < n; ++i) {
        stats::Xoshiro256 rng(stats::derive_seed(opt.seed + width, i));
        inject::FaultSpec f;
        f.target = inject::FaultTarget::ArrayCell;
        f.array_bit = base + rng.below(span - 1);
        f.cycle = 1 + rng.below(trace.completion_cycle - 1);
        f.adjacent_bits = width;
        counts.add(runner.run(f).outcome);
      }
      t.add_row(bench::outcome_row(label, counts));
      return counts;
    };

    run_strikes("parity arrays, single-bit", 0, parity_bits, 1);
    const auto parity_double =
        run_strikes("parity arrays, adjacent-double", 0, parity_bits, 2);
    run_strikes("SEC-DED array, single-bit", parity_bits,
                total_bits - parity_bits, 1);
    run_strikes("SEC-DED array, adjacent-double", parity_bits,
                total_bits - parity_bits, 2);

    std::cout << t.to_string();
    std::cout << "\nthe coverage cliff: adjacent doubles inside one "
                 "parity-protected entry have even parity — undetectable "
                 "(SDC "
              << report::Table::pct(
                     parity_double.fraction(inject::Outcome::BadArchState))
              << " above), while SEC-DED converts them into detected "
                 "uncorrectable stops. This is the standard argument for "
                 "bit interleaving or ECC on dense SRAM.\n";
  }
  return 0;
}
