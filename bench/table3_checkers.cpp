// Table 3 — "Understanding the effect of checkers": the same latch
// campaign with all low-level hardware checkers masked ("Raw") and enabled
// ("Check"). With checkers on, silent/hang outcomes convert into
// recoveries and checkstops — the detection coverage the checkers buy.
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const bench::Options opt = bench::parse_options(argc, argv);
  const u32 n = opt.full ? 8000 : 1200;
  bench::print_scale_note(opt, "1200 flips per configuration",
                          "8000 flips per configuration");

  const avp::Testcase tc = bench::standard_testcase();

  inject::CampaignConfig raw;
  raw.seed = opt.seed;
  raw.num_injections = n;
  raw.core.checkers_enabled = false;
  const inject::CampaignResult raw_res = inject::run_campaign(tc, raw);

  inject::CampaignConfig chk;
  chk.seed = opt.seed;  // identical faults: a paired experiment
  chk.num_injections = n;
  const inject::CampaignResult chk_res = inject::run_campaign(tc, chk);

  std::cout << report::section(
      "Table 3: effect of low-level hardware checkers (Raw vs Check)");
  report::Table t(bench::outcome_headers("config"));
  t.add_row(bench::outcome_row("Raw   (masked)", raw_res.counts()));
  t.add_row(bench::outcome_row("Check (enabled)", chk_res.counts()));
  std::cout << t.to_string();

  std::cout << "\npaper shape: Raw has no recoveries/checkstops (errors pass "
               "silently or hang); Check converts them into detected, "
               "recovered or checkstopped outcomes\n";
  std::cout << "detected coverage gained: "
            << report::Table::pct(
                   chk_res.counts().fraction(inject::Outcome::Corrected) +
                   chk_res.counts().fraction(inject::Outcome::Checkstop))
            << " of flips; silent corruption reduced from "
            << report::Table::pct(
                   raw_res.counts().fraction(inject::Outcome::BadArchState))
            << " to "
            << report::Table::pct(
                   chk_res.counts().fraction(inject::Outcome::BadArchState))
            << "\n";
  return 0;
}
