// Ablation — host↔engine communication interval (paper §2: "the fault
// injection methodology attempts to minimize the communication overhead in
// order to increase the overall simulation performance").
//
// The emulated engine evaluates cycles; the host polls the fault isolation
// registers every K cycles. Each interaction costs host latency; the bench
// models the throughput/interval trade-off the paper describes, plus the
// detection-latency penalty of coarse polling.
#include <chrono>
#include <iostream>

#include "bench/common.hpp"
#include "core/core_model.hpp"
#include "emu/emulator.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const bench::Options opt = bench::parse_options(argc, argv);
  const Cycle run_cycles = opt.full ? 2000000 : 200000;
  bench::print_scale_note(opt, "200k emulated cycles per interval",
                          "2M emulated cycles per interval");

  const avp::Testcase tc = bench::standard_testcase();
  core::Pearl6Model model;
  model.load_workload(tc.program, tc.init);
  emu::Emulator emu(model);

  // Cost model for "hardware-accelerated" operation: the engine itself runs
  // at 1 cycle per tick; each host interaction stalls the engine for
  // kHostCostCycles ticks (representative of a PCIe/scan round trip).
  constexpr double kHostCostCycles = 2000.0;

  std::cout << report::section(
      "Ablation: host-link polling interval vs emulation throughput");
  report::Table t({"poll interval", "host reads", "effective cycles/tick",
                   "max detection lag", "wall s"});

  for (const Cycle interval : {Cycle{1}, Cycle{8}, Cycle{64}, Cycle{512},
                               Cycle{4096}}) {
    emu.reset();
    const u64 reads0 = emu.hostlink().status_reads;
    const auto t0 = std::chrono::steady_clock::now();
    emu.run_polled(run_cycles, interval, [](const emu::Emulator& e) {
      // Re-arm the workload so the engine always has work.
      return e.model().ras_status(e.state()).checkstop;
    });
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const u64 reads = emu.hostlink().status_reads - reads0;
    const double effective =
        static_cast<double>(run_cycles) /
        (static_cast<double>(run_cycles) +
         static_cast<double>(reads) * kHostCostCycles);
    t.add_row({report::Table::count(interval), report::Table::count(reads),
               report::Table::num(effective, 4),
               report::Table::count(interval),
               report::Table::num(wall, 2)});
  }
  std::cout << t.to_string();
  std::cout << "\nper-cycle polling wastes the engine (paper's motivation "
               "for pre-specified monitoring intervals); coarse polling "
               "trades detection latency for throughput\n";
  return 0;
}
