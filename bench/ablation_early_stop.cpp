// Ablation — sequential early stop vs fixed-N: how many injections the
// serve daemon's online Wilson-interval stop saves over picking N up front.
//
// One fixed-N campaign runs once; its records are then replayed in dispatch
// order against the real serve::target_met decision for a sweep of
// (confidence, half-width) targets. n_stop is the first prefix whose every
// stratum interval is at or under the target — exactly where the daemon
// would have stopped dispatching. Exits nonzero if any met stop's widest
// half-width exceeds its target (the stop decision would be lying).
#include <iostream>

#include "bench/common.hpp"
#include "serve/stop.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const bench::Options opt = bench::parse_options(argc, argv);
  const u32 n = opt.full ? 10000 : 2000;
  bench::print_scale_note(opt, "2000 flips", "10000 flips");

  const avp::Testcase tc = bench::standard_testcase();
  inject::CampaignConfig cfg;
  cfg.seed = opt.seed;
  cfg.num_injections = n;
  const inject::CampaignResult fixed = inject::run_campaign(tc, cfg);
  inject::CampaignAggregate full;
  for (const inject::InjectionRecord& rec : fixed.records) full.add(rec);

  struct Sweep {
    double confidence;
    double half_width;
  };
  const Sweep sweeps[] = {{0.95, 0.05}, {0.95, 0.02}, {0.95, 0.01},
                          {0.95, 0.005}, {0.99, 0.05}, {0.99, 0.02}};

  std::cout << report::section(
      "Ablation: sequential early stop vs fixed-N sample size");
  report::Table t({"confidence", "target hw", "n_stop", "fixed N", "saved",
                   "hw @ stop", "hw @ N"});
  bool sound = true;
  for (const Sweep& s : sweeps) {
    serve::StopTarget target;
    target.confidence = s.confidence;
    target.half_width = s.half_width;

    inject::CampaignAggregate agg;
    u64 n_stop = 0;
    double hw_at_stop = -1.0;
    for (const inject::InjectionRecord& rec : fixed.records) {
      agg.add(rec);
      if (serve::target_met(agg, target)) {
        n_stop = agg.total();
        hw_at_stop = serve::widest_half_width(agg, target);
        break;
      }
    }
    const double hw_at_n = serve::widest_half_width(full, target);
    const bool met = n_stop > 0;
    if (met && hw_at_stop > target.half_width) {
      std::cout << "VIOLATION: stop at " << n_stop << " has half-width "
                << hw_at_stop << " > target " << target.half_width << "\n";
      sound = false;
    }
    const double saved =
        met ? 1.0 - static_cast<double>(n_stop) / static_cast<double>(n)
            : 0.0;
    t.add_row({report::Table::pct(s.confidence),
               report::Table::num(s.half_width, 3),
               met ? report::Table::count(n_stop) : "never",
               report::Table::count(n),
               report::Table::pct(saved),
               met ? report::Table::num(hw_at_stop, 4) : "-",
               report::Table::num(hw_at_n, 4)});
  }
  std::cout << t.to_string();
  std::cout << "\nevery met stop is at or under its target half-width: "
            << (sound ? "yes" : "NO") << "\n";
  return sound ? 0 : 1;
}
