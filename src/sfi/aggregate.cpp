#include "sfi/aggregate.hpp"

namespace sfi::inject {

void CampaignAggregate::add(const InjectionRecord& rec) {
  counts.add(rec.outcome);
  by_unit[static_cast<std::size_t>(rec.unit)].add(rec.outcome);
  by_type[static_cast<std::size_t>(rec.type)].add(rec.outcome);
}

void CampaignAggregate::merge(const CampaignAggregate& other) {
  counts.merge(other.counts);
  for (std::size_t u = 0; u < by_unit.size(); ++u) {
    by_unit[u].merge(other.by_unit[u]);
  }
  for (std::size_t t = 0; t < by_type.size(); ++t) {
    by_type[t].merge(other.by_type[t]);
  }
}

CampaignAggregate aggregate_records(
    std::span<const InjectionRecord> records) {
  CampaignAggregate agg;
  for (const InjectionRecord& rec : records) agg.add(rec);
  return agg;
}

CampaignAggregate aggregate_records(
    std::span<const InjectionRecord> records,
    const std::function<bool(const InjectionRecord&)>& pred) {
  CampaignAggregate agg;
  for (const InjectionRecord& rec : records) {
    if (pred(rec)) agg.add(rec);
  }
  return agg;
}

}  // namespace sfi::inject
