// Propagation forensics: watch an injected fault spread through the latch
// state instead of only observing its endpoint.
//
// The paper's evaluation is outcome *distributions*; it can only speculate
// about *why* a flip vanished or escaped. The InfectionTracker answers that
// by re-running an injection deterministically (same (seed, i) fault, same
// reference) and diffing the faulty state vector against the recorded golden
// trace at exponentially-spaced cycles after the flip. The result is an
// infection footprint over time: corrupted-latch count per unit per sample,
// first-corruption cycle per unit, time-to-mask or time-to-detection,
// whether corruption reached architected (REGFILE) state or memory, and
// which checker fired first.
//
// Cost model: the tracker never re-seeks — the primary run snapshots the
// fault-free pre-injection state (InjectionRunner::run's `prefault`
// out-param) and the re-run restores it in place. Per re-run cycle the only
// extra work over a normal run is a word-compare (time-to-mask detection);
// the per-unit group diff runs only at sample points (~log2(window) times).
// Non-Vanished outcomes are always traced; Vanished ones are sampled.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "avp/runner.hpp"
#include "core/core_model.hpp"
#include "emu/emulator.hpp"
#include "emu/golden_trace.hpp"
#include "netlist/latch.hpp"
#include "sfi/fault.hpp"
#include "sfi/outcome.hpp"
#include "sfi/runner.hpp"

namespace sfi::inject {

/// When the tracker diffs the full per-unit footprint.
enum class FootprintSampling : u8 {
  Exponential,  ///< offsets 1, 2, 4, 8, ... after the flip (default)
  EveryCycle,   ///< every post-flip cycle (bench/ablation only)
};

struct FootprintConfig {
  bool enabled = false;
  /// Trace every Nth Vanished injection (0: never trace Vanished). Outcomes
  /// other than Vanished are always traced.
  u32 vanished_sample = 32;
  /// Trace-window cap for the bulk outcome classes (Vanished, Corrected); a
  /// footprint still alive at the cap is recorded as truncated. These two
  /// classes are ~99% of injections, so their window is what the <10%
  /// overhead budget prices: at 512 cycles ~4% of Corrected traces truncate
  /// (p90 time-to-recovery is ~340 cycles on the standard workload).
  Cycle max_trace_cycles = 512;
  /// Trace-window cap for the escape classes (Hang, Checkstop,
  /// BadArchState). They are rare (<1% of injections) but carry the most
  /// forensic value, so they get a window long enough to watch the infection
  /// all the way to the hang limit or end of test for almost nothing.
  Cycle escape_trace_cycles = 4096;
  FootprintSampling sampling = FootprintSampling::Exponential;
};

/// One timed slice of the infection: how many latch bits differ from the
/// fault-free reference, per unit, `offset` cycles after the flip.
struct FootprintSample {
  u32 offset = 0;      ///< cycles after the injection cycle
  u32 total_bits = 0;  ///< corrupted hashable latch bits, all units
  std::array<u32, netlist::kNumUnits> unit_bits{};
};

/// Sentinel for "this unit was never observed corrupted".
inline constexpr u32 kNeverCorrupted = 0xFFFFFFFFu;

/// The durable forensic record of one traced injection ('P' frames in the
/// campaign store). Self-describing: origin + outcome are denormalized so
/// `sfi explain` can aggregate P frames without joining against R frames.
struct PropagationRecord {
  u32 index = 0;  ///< campaign injection index (joins with InjectionRecord)
  netlist::Unit unit = netlist::Unit::Core;        ///< origin unit
  netlist::LatchType type = netlist::LatchType::Func;  ///< origin latch type
  Outcome outcome = Outcome::Vanished;             ///< primary-run outcome
  Cycle fault_cycle = 0;

  /// Footprint returned to zero in-window: the corruption either washed out
  /// naturally or was scrubbed by a rollback recovery (masked_at is then the
  /// offset at which recovery engaged — tracing past a rollback would
  /// measure replay skew, not infection).
  bool masked = false;
  bool detected = false;       ///< primary run saw a RAS reaction
  bool reached_arch = false;   ///< corruption touched REGFILE latches
  bool reached_memory = false; ///< end-of-test memory image differed
  bool truncated = false;      ///< window ended while still infected
  bool checker_fired = false;  ///< a low-level checker fired during re-run
  bool checker_fatal = false;
  core::CheckerId checker{};   ///< first checker that fired (valid iff
                               ///< checker_fired)

  Cycle masked_at = 0;    ///< offset post-flip when footprint hit zero
  Cycle detected_at = 0;  ///< offset post-flip of first RAS reaction
  u32 peak_bits = 0;      ///< max total_bits over all samples
  u32 rerun_cycles = 0;   ///< cycles simulated for this footprint (cost)

  /// First offset each unit was observed corrupted (kNeverCorrupted: never).
  /// Resolution follows the sampling policy — exponential sampling bounds
  /// the first-corruption offset, it does not pinpoint it.
  std::array<u32, netlist::kNumUnits> first_corrupt{};

  std::vector<FootprintSample> samples;

  /// Units (other than the origin) the infection ever crossed into.
  [[nodiscard]] u32 units_crossed() const;
};

/// Deterministic trace decision shared by worker and tests: non-Vanished
/// outcomes are always traced, Vanished every `vanished_sample`th index.
[[nodiscard]] bool footprint_should_trace(const FootprintConfig& cfg,
                                          u32 index, Outcome outcome);

/// Re-runs injections on the worker's own model/emulator and measures their
/// infection footprint. Not thread-safe; one per CampaignWorker. Requires a
/// golden trace with recorded per-cycle states (trace.has_states()); the
/// tracker reports itself unusable otherwise.
class InfectionTracker {
 public:
  /// All references must outlive the tracker; `runner` must wrap the same
  /// model/emulator pair.
  InfectionTracker(core::Pearl6Model& model, emu::Emulator& emu,
                   InjectionRunner& runner, const emu::GoldenTrace& trace,
                   const avp::GoldenResult& golden, FootprintConfig cfg);

  /// False when tracing is disabled or the trace lacks recorded states.
  [[nodiscard]] bool usable() const { return usable_; }
  [[nodiscard]] const FootprintConfig& config() const { return cfg_; }

  [[nodiscard]] bool should_trace(u32 index, Outcome outcome) const {
    return usable_ && footprint_should_trace(cfg_, index, outcome);
  }

  /// Pre-fault snapshot storage for InjectionRunner::run(&..., &prefault()).
  [[nodiscard]] emu::Checkpoint& prefault() { return prefault_; }

  /// Deferred re-run of `fault` (the injection at campaign index `index`,
  /// whose primary run produced `primary`): restores the pre-fault snapshot,
  /// re-applies the fault, and samples the infection footprint. The machine
  /// is left at the end of the traced window; the next primary run's seek
  /// restores it, so records stay byte-identical with tracing on.
  [[nodiscard]] PropagationRecord trace(u32 index, const FaultSpec& fault,
                                        const RunResult& primary);

 private:
  core::Pearl6Model& model_;
  emu::Emulator& emu_;
  InjectionRunner& runner_;
  const emu::GoldenTrace& trace_;
  const avp::GoldenResult& golden_;
  FootprintConfig cfg_;
  bool usable_ = false;
  emu::Checkpoint prefault_;
  /// Group masks for one masked_diff_groups pass: 7 units then 4 latch
  /// types, flattened group-major over the state words.
  std::vector<u64> group_masks_;
  std::array<u32, netlist::kNumUnits + netlist::kNumLatchTypes> group_bits_{};
};

}  // namespace sfi::inject
