// Outcome taxonomy: the paper's bit-flip destinies.
#pragma once

#include <array>
#include <string_view>

#include "common/types.hpp"
#include "stats/intervals.hpp"

namespace sfi::inject {

/// What became of one injected bit flip (paper Figure 1's arrows, plus the
/// hang category of Figures 2–4).
enum class Outcome : u8 {
  Vanished,      ///< no architectural or reported effect
  Corrected,     ///< detected and recovered / ECC-corrected
  Hang,          ///< loss of forward progress (watchdog or harness)
  Checkstop,     ///< machine stopped itself (unrecoverable detected error)
  BadArchState,  ///< run "succeeded" with wrong architected state (SDC)
  /// The injection reproducibly killed or wedged the harness process itself
  /// (not just the modeled core). Assigned by the farm supervisor after K
  /// strikes — the paper's AWAN farm had the same failure class: a flip that
  /// takes down the emulator board rather than producing a result.
  HarnessFatal,
};
inline constexpr std::size_t kNumOutcomes = 6;

[[nodiscard]] constexpr std::string_view to_string(Outcome o) {
  constexpr std::array<std::string_view, kNumOutcomes> names = {
      "Vanished", "Corrected",    "Hang",
      "Checkstop", "BadArchState", "HarnessFatal"};
  return names[static_cast<std::size_t>(o)];
}

inline constexpr std::array<Outcome, kNumOutcomes> kAllOutcomes = {
    Outcome::Vanished,  Outcome::Corrected,    Outcome::Hang,
    Outcome::Checkstop, Outcome::BadArchState, Outcome::HarnessFatal};

/// Histogram over outcomes with proportion/confidence helpers.
struct OutcomeCounts {
  std::array<u64, kNumOutcomes> counts{};

  void add(Outcome o) { ++counts[static_cast<std::size_t>(o)]; }
  void merge(const OutcomeCounts& other);

  [[nodiscard]] u64 total() const;
  [[nodiscard]] u64 of(Outcome o) const {
    return counts[static_cast<std::size_t>(o)];
  }
  /// Fraction of all injections with this outcome (0 when empty).
  [[nodiscard]] double fraction(Outcome o) const;
  /// Wilson interval on the proportion at the default (95%) confidence.
  [[nodiscard]] stats::Interval interval(Outcome o) const;
  /// Wilson interval at an explicit normal quantile z
  /// (stats::z_for_confidence turns a confidence level into one).
  [[nodiscard]] stats::Interval interval(Outcome o, double z) const;
};

}  // namespace sfi::inject
