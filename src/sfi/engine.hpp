// InjectionEngine: the backend-neutral execution engine behind a campaign.
//
// An engine turns a stream of planned fault indices into a stream of
// (record, forensics) pairs. The contract is deliberately narrow so every
// dispatcher (in-memory campaign, store scheduler, farm worker, serve
// daemon) drives any engine the same way:
//
//   - the engine *pulls* injection indices via `next` until it returns
//     nullopt (claiming stays with the caller: --max-new caps, SIGINT stop
//     flags, and early-stop decisions all live in `next`),
//   - every claimed index is finished and reported exactly once via `emit`,
//     in arbitrary order (records carry their (seed, i) identity; canonical
//     merge sorts and resume scans are order-independent),
//   - records are field-identical across engines for the same plan: the
//     engine choice is a speed knob, never a result knob (gated by the
//     engine A/B CI job), and is excluded from the campaign fingerprint.
//
// Two implementations:
//   ScalarEngine — the classic one-injection-at-a-time InjectionRunner.
//   LaneEngine   — N in-flight injections as sparse XOR-diff lanes against
//                  one shared reference replay (see engine.cpp).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string_view>

#include "avp/testgen.hpp"
#include "sfi/campaign.hpp"

namespace sfi::inject {

class InjectionEngine {
 public:
  /// Claim stream: the next injection index to run, nullopt to finish.
  using Next = std::function<std::optional<u32>()>;
  /// Result stream: one call per claimed index, any order.
  using Emit = std::function<void(u32 index, const InjectionRecord& rec,
                                 std::optional<PropagationRecord> footprint)>;

  virtual ~InjectionEngine() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Run every index `next` yields and emit its record (plus footprint when
  /// the campaign's forensics select it). `telemetry` is an optional
  /// observability sink; results are identical with or without it.
  virtual void run(const Next& next, const Emit& emit,
                   WorkerTelemetry* telemetry) = 0;

  // Host-cost accounting across the engine's private emulators (summed into
  // CampaignResult / scheduler stats exactly like a worker's).
  [[nodiscard]] virtual u64 cycles_evaluated() const = 0;
  [[nodiscard]] virtual u64 cycles_fast_forwarded() const = 0;
  [[nodiscard]] virtual u64 checkpoint_ops() const = 0;
};

/// One engine instance per worker thread (engines are not thread-safe).
[[nodiscard]] std::unique_ptr<InjectionEngine> make_engine(
    const avp::Testcase& testcase, const CampaignConfig& config,
    const CampaignPlan& plan);

[[nodiscard]] const char* engine_name(EngineKind kind);
[[nodiscard]] std::optional<EngineKind> parse_engine(std::string_view name);

}  // namespace sfi::inject
