#include "sfi/sampler.hpp"

#include "common/check.hpp"

namespace sfi::inject {

LatchPopulation LatchPopulation::all(const netlist::LatchRegistry& reg) {
  return filtered(reg, [](const netlist::LatchMeta&) { return true; });
}

LatchPopulation LatchPopulation::unit(const netlist::LatchRegistry& reg,
                                      netlist::Unit unit) {
  return filtered(reg,
                  [unit](const netlist::LatchMeta& m) { return m.unit == unit; });
}

LatchPopulation LatchPopulation::latch_type(const netlist::LatchRegistry& reg,
                                            netlist::LatchType type) {
  return filtered(reg,
                  [type](const netlist::LatchMeta& m) { return m.type == type; });
}

LatchPopulation LatchPopulation::scan_ring(const netlist::LatchRegistry& reg,
                                           u8 ring) {
  return filtered(reg, [ring](const netlist::LatchMeta& m) {
    return m.scan_ring == ring;
  });
}

LatchPopulation LatchPopulation::filtered(
    const netlist::LatchRegistry& reg,
    const std::function<bool(const netlist::LatchMeta&)>& pred) {
  LatchPopulation p;
  p.ordinals_ = reg.collect_ordinals(pred);
  require(!p.ordinals_.empty(), "latch population is empty");
  return p;
}

u32 LatchPopulation::pick(stats::Xoshiro256& rng) const {
  return ordinals_[rng.below(ordinals_.size())];
}

FaultSpec FaultSampler::sample(stats::Xoshiro256& rng) const {
  require(population != nullptr, "FaultSampler needs a population");
  require(window_end > window_begin, "FaultSampler window is empty");
  FaultSpec f;
  f.target = FaultTarget::Latch;
  f.index = population->pick(rng);
  f.cycle = window_begin + rng.below(window_end - window_begin);
  f.mode = mode;
  f.sticky_duration = sticky_duration;
  f.sticky_value = rng.chance(0.5);
  return f;
}

}  // namespace sfi::inject
