#include "sfi/campaign.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "common/check.hpp"

namespace sfi::inject {

namespace {

/// Everything one worker thread owns privately.
struct Worker {
  std::unique_ptr<core::Pearl6Model> model;
  std::unique_ptr<emu::Emulator> emu;
  emu::Checkpoint reset_cp;
  std::unique_ptr<InjectionRunner> runner;

  Worker(const avp::Testcase& tc, const CampaignConfig& cfg,
         const emu::GoldenTrace& trace, const avp::GoldenResult& golden) {
    model = std::make_unique<core::Pearl6Model>(cfg.core);
    model->load_workload(tc.program, tc.init);
    emu = std::make_unique<emu::Emulator>(*model);
    emu->reset();
    reset_cp = emu->save_checkpoint();
    runner = std::make_unique<InjectionRunner>(*model, *emu, reset_cp, trace,
                                               golden, cfg.run);
  }
};

}  // namespace

CampaignResult run_campaign(const avp::Testcase& tc,
                            const CampaignConfig& cfg) {
  require(cfg.num_injections > 0, "campaign needs injections");
  const auto t0 = std::chrono::steady_clock::now();

  // Reference executions (shared, read-only).
  const avp::GoldenResult golden = avp::run_golden(tc);

  core::Pearl6Model ref_model(cfg.core);
  emu::Emulator ref_emu(ref_model);
  const emu::GoldenTrace trace = avp::run_reference(ref_model, ref_emu, tc);

  // Population & sampler (identical across workers).
  const LatchPopulation population =
      cfg.filter ? LatchPopulation::filtered(ref_model.registry(), cfg.filter)
                 : LatchPopulation::all(ref_model.registry());
  FaultSampler sampler;
  sampler.population = &population;
  sampler.window_begin = cfg.window_begin;
  sampler.window_end =
      cfg.window_end != 0 ? cfg.window_end : trace.completion_cycle;
  require(sampler.window_end > sampler.window_begin,
          "injection window is empty (workload too short?)");
  sampler.mode = cfg.mode;
  sampler.sticky_duration = cfg.sticky_duration;

  // Pre-generate every fault spec so results are thread-count independent.
  std::vector<FaultSpec> faults(cfg.num_injections);
  for (u32 i = 0; i < cfg.num_injections; ++i) {
    stats::Xoshiro256 rng(stats::derive_seed(cfg.seed, i));
    faults[i] = sampler.sample(rng);
  }

  const u32 threads =
      cfg.threads != 0
          ? cfg.threads
          : std::max(1u, std::thread::hardware_concurrency());

  std::vector<InjectionRecord> records(cfg.num_injections);
  std::atomic<u32> next{0};
  std::atomic<u64> cycles_evaluated{0};

  const auto work = [&](Worker& w) {
    while (true) {
      const u32 i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cfg.num_injections) break;
      const RunResult rr = w.runner->run(faults[i]);
      const netlist::LatchMeta& meta =
          w.model->registry().meta_of_ordinal(faults[i].index);
      InjectionRecord rec;
      rec.fault = faults[i];
      rec.outcome = rr.outcome;
      rec.unit = meta.unit;
      rec.type = meta.type;
      rec.end_cycle = rr.end_cycle;
      rec.early_exited = rr.early_exited;
      rec.recoveries = rr.recoveries;
      records[i] = rec;
    }
    cycles_evaluated.fetch_add(w.emu->cycles_evaluated(),
                               std::memory_order_relaxed);
  };

  if (threads <= 1) {
    Worker w(tc, cfg, trace, golden);
    work(w);
  } else {
    std::vector<std::unique_ptr<Worker>> workers;
    workers.reserve(threads);
    for (u32 t = 0; t < threads; ++t) {
      workers.push_back(std::make_unique<Worker>(tc, cfg, trace, golden));
    }
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (u32 t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] { work(*workers[t]); });
    }
    for (auto& th : pool) th.join();
  }

  CampaignResult result;
  result.records = std::move(records);
  result.population_size = population.size();
  result.workload_cycles = trace.completion_cycle;
  result.workload_instructions = golden.instructions;
  result.cycles_evaluated = cycles_evaluated.load();
  for (const InjectionRecord& rec : result.records) {
    result.counts.add(rec.outcome);
    result.by_unit[static_cast<std::size_t>(rec.unit)].add(rec.outcome);
    result.by_type[static_cast<std::size_t>(rec.type)].add(rec.outcome);
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace sfi::inject
