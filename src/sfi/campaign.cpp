#include "sfi/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "common/check.hpp"
#include "sfi/engine.hpp"

namespace sfi::inject {

CampaignPlan plan_campaign(const avp::Testcase& tc,
                           const CampaignConfig& cfg) {
  require(cfg.num_injections > 0, "campaign needs injections");

  CampaignPlan plan;

  // Reference executions (shared, read-only).
  plan.golden = avp::run_golden(tc);

  core::Pearl6Model ref_model(cfg.core);
  emu::Emulator ref_emu(ref_model);
  // Masked per-cycle states make the runner's convergence poll an exact
  // early-out compare instead of a full-state hash — worth the memory for a
  // many-injection campaign.
  plan.trace = avp::run_reference(ref_model, ref_emu, tc,
                                  /*max_cycles=*/200000,
                                  /*record_states=*/true);

  // Population & sampler (identical across workers and across resumes).
  plan.population =
      cfg.filter ? LatchPopulation::filtered(ref_model.registry(), cfg.filter)
                 : LatchPopulation::all(ref_model.registry());
  FaultSampler sampler;
  sampler.population = &plan.population;
  sampler.window_begin = cfg.window_begin;
  sampler.window_end =
      cfg.window_end != 0 ? cfg.window_end : plan.trace.completion_cycle;
  require(sampler.window_end > sampler.window_begin,
          "injection window is empty (workload too short?)");
  sampler.mode = cfg.mode;
  sampler.sticky_duration = cfg.sticky_duration;
  plan.window_begin = sampler.window_begin;
  plan.window_end = sampler.window_end;

  // Pre-generate every fault spec so results are thread-count independent
  // and so any subset of indices can be (re-)executed independently.
  plan.faults.resize(cfg.num_injections);
  for (u32 i = 0; i < cfg.num_injections; ++i) {
    stats::Xoshiro256 rng(stats::derive_seed(cfg.seed, i));
    plan.faults[i] = sampler.sample(rng);
  }

  // Interval checkpoints of the reference run (one extra fault-free replay,
  // amortized over every injection). The last useful snapshot cycle is the
  // latest possible fault cycle, window_end - 1.
  if (cfg.ckpt_interval != 0) {
    const auto t0 = std::chrono::steady_clock::now();
    emu::CheckpointStoreConfig cc;
    cc.interval =
        cfg.ckpt_interval == emu::kCkptAuto ? 0 : cfg.ckpt_interval;
    cc.memory_budget_bytes = cfg.ckpt_memory_budget;
    plan.ckpts = emu::build_checkpoint_store(ref_emu, sampler.window_end - 1,
                                             cc, &plan.trace);
    if (cfg.telemetry != nullptr) {
      std::vector<Cycle> cycles(plan.ckpts.size());
      for (std::size_t i = 0; i < plan.ckpts.size(); ++i) {
        cycles[i] = plan.ckpts.cycle_at(i);
      }
      cfg.telemetry->checkpoint_store_built(
          plan.ckpts.size(), plan.ckpts.resident_bytes(),
          plan.ckpts.interval(),
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count(),
          cycles);
    }
  }
  return plan;
}

std::vector<u32> CampaignPlan::cycle_sorted_indices() const {
  std::vector<u32> order(faults.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](u32 a, u32 b) {
    return faults[a].cycle != faults[b].cycle ? faults[a].cycle < faults[b].cycle
                                              : a < b;
  });
  return order;
}

CampaignWorker::CampaignWorker(const avp::Testcase& tc,
                               const CampaignConfig& cfg,
                               const CampaignPlan& plan) {
  model_ = std::make_unique<core::Pearl6Model>(cfg.core);
  model_->load_workload(tc.program, tc.init);
  emu_ = std::make_unique<emu::Emulator>(*model_);
  emu_->reset();
  reset_cp_ = emu_->save_checkpoint();
  runner_ = std::make_unique<InjectionRunner>(
      *model_, *emu_, reset_cp_, plan.trace, plan.golden, cfg.run,
      plan.ckpts.empty() ? nullptr : &plan.ckpts);
  if (cfg.footprint.enabled) {
    tracker_ = std::make_unique<InfectionTracker>(
        *model_, *emu_, *runner_, plan.trace, plan.golden, cfg.footprint);
    if (!tracker_->usable()) tracker_.reset();
  }
}

CampaignWorker::~CampaignWorker() = default;
CampaignWorker::CampaignWorker(CampaignWorker&&) noexcept = default;
CampaignWorker& CampaignWorker::operator=(CampaignWorker&&) noexcept =
    default;

InjectionRecord CampaignWorker::run(const FaultSpec& fault) {
  return run(fault, nullptr, 0, nullptr);
}

InjectionRecord CampaignWorker::run(const FaultSpec& fault,
                                    WorkerTelemetry* telemetry, u32 index) {
  return run(fault, telemetry, index, nullptr);
}

InjectionRecord make_record(const netlist::LatchRegistry& reg,
                            const FaultSpec& fault, const RunResult& rr) {
  const netlist::LatchMeta& meta = reg.meta_of_ordinal(fault.index);
  InjectionRecord rec;
  rec.fault = fault;
  rec.outcome = rr.outcome;
  rec.unit = meta.unit;
  rec.type = meta.type;
  rec.end_cycle = rr.end_cycle;
  rec.early_exited = rr.early_exited;
  rec.recoveries = rr.recoveries;
  return rec;
}

InjectionRecord CampaignWorker::run(
    const FaultSpec& fault, WorkerTelemetry* telemetry, u32 index,
    std::optional<PropagationRecord>* footprint) {
  // The pre-fault snapshot only exists so the tracker's deferred re-run can
  // skip the seek; the primary run never reads it back.
  emu::Checkpoint* prefault =
      tracker_ != nullptr ? &tracker_->prefault() : nullptr;
  const RunResult rr = runner_->run(
      fault, telemetry != nullptr ? telemetry->phase_scratch() : nullptr,
      prefault);
  InjectionRecord rec = make_record(model_->registry(), fault, rr);
  if (telemetry != nullptr) {
    std::optional<Cycle> latency;
    if (rr.detected_cycle) latency = *rr.detected_cycle - fault.cycle;
    telemetry->record_injection(index, rec, latency);
  }
  if (tracker_ != nullptr && tracker_->should_trace(index, rr.outcome)) {
    const auto t0 = std::chrono::steady_clock::now();
    PropagationRecord prec = tracker_->trace(index, fault, rr);
    if (telemetry != nullptr) {
      telemetry->record_footprint(
          index, prec,
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
    }
    if (footprint != nullptr) *footprint = std::move(prec);
  }
  return rec;
}

u64 CampaignWorker::cycles_evaluated() const {
  return emu_->cycles_evaluated();
}

u64 CampaignWorker::cycles_fast_forwarded() const {
  return emu_->cycles_fast_forwarded();
}

u64 CampaignWorker::checkpoint_ops() const {
  return emu_->hostlink().checkpoint_ops;
}

CampaignResult run_campaign(const avp::Testcase& tc,
                            const CampaignConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();

  CampaignTelemetry* tel = cfg.telemetry;
  if (tel != nullptr) {
    tel->campaign_start("campaign", cfg.seed, cfg.num_injections,
                        /*resumed=*/0);
  }

  const CampaignPlan plan = plan_campaign(tc, cfg);

  const u32 threads =
      cfg.threads != 0
          ? cfg.threads
          : std::max(1u, std::thread::hardware_concurrency());

  std::vector<InjectionRecord> records(cfg.num_injections);
  // Dispatch cycle-sorted so consecutive runs on a worker share a hot
  // checkpoint; records land at their original index, so results stay
  // identical to index-ordered dispatch.
  const std::vector<u32> order = plan.cycle_sorted_indices();
  std::atomic<u32> next{0};
  std::atomic<u64> cycles_evaluated{0};
  std::atomic<u64> cycles_fast_forwarded{0};
  std::atomic<u64> checkpoint_ops{0};

  if (tel != nullptr) tel->prepare_workers(threads);

  std::vector<std::vector<PropagationRecord>> worker_footprints(
      std::max(1u, threads));

  const auto work = [&](InjectionEngine& eng, u32 tid) {
    WorkerTelemetry* wt = tel != nullptr ? &tel->worker(tid) : nullptr;
    std::vector<PropagationRecord>& fps = worker_footprints[tid];
    eng.run(
        [&]() -> std::optional<u32> {
          const u32 k = next.fetch_add(1, std::memory_order_relaxed);
          if (k >= cfg.num_injections) return std::nullopt;
          return order[k];
        },
        [&](u32 i, const InjectionRecord& rec,
            std::optional<PropagationRecord> fp) {
          records[i] = rec;
          if (fp) fps.push_back(std::move(*fp));
        },
        wt);
    cycles_evaluated.fetch_add(eng.cycles_evaluated(),
                               std::memory_order_relaxed);
    cycles_fast_forwarded.fetch_add(eng.cycles_fast_forwarded(),
                                    std::memory_order_relaxed);
    checkpoint_ops.fetch_add(eng.checkpoint_ops(),
                             std::memory_order_relaxed);
  };

  if (threads <= 1) {
    const auto eng = make_engine(tc, cfg, plan);
    work(*eng, 0);
  } else {
    std::vector<std::unique_ptr<InjectionEngine>> engines;
    engines.reserve(threads);
    for (u32 t = 0; t < threads; ++t) {
      engines.push_back(make_engine(tc, cfg, plan));
    }
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (u32 t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] { work(*engines[t], t); });
    }
    for (auto& th : pool) th.join();
  }

  CampaignResult result;
  result.records = std::move(records);
  for (auto& fps : worker_footprints) {
    result.footprints.insert(result.footprints.end(),
                             std::make_move_iterator(fps.begin()),
                             std::make_move_iterator(fps.end()));
  }
  std::sort(result.footprints.begin(), result.footprints.end(),
            [](const PropagationRecord& a, const PropagationRecord& b) {
              return a.index < b.index;
            });
  result.population_size = plan.population.size();
  result.workload_cycles = plan.trace.completion_cycle;
  result.workload_instructions = plan.golden.instructions;
  result.cycles_evaluated = cycles_evaluated.load();
  result.cycles_fast_forwarded = cycles_fast_forwarded.load();
  result.checkpoint_ops = checkpoint_ops.load();
  result.checkpoints = plan.ckpts.size();
  result.checkpoint_bytes = plan.ckpts.resident_bytes();
  result.agg = aggregate_records(result.records);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (tel != nullptr) {
    tel->campaign_finish(result.agg, result.records.size(),
                         result.wall_seconds);
  }
  return result;
}

}  // namespace sfi::inject
