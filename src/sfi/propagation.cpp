#include "sfi/propagation.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sfi::inject {

u32 PropagationRecord::units_crossed() const {
  u32 n = 0;
  for (std::size_t u = 0; u < netlist::kNumUnits; ++u) {
    if (u == static_cast<std::size_t>(unit)) continue;
    if (first_corrupt[u] != kNeverCorrupted) ++n;
  }
  return n;
}

bool footprint_should_trace(const FootprintConfig& cfg, u32 index,
                            Outcome outcome) {
  if (!cfg.enabled) return false;
  if (outcome != Outcome::Vanished) return true;
  return cfg.vanished_sample != 0 && index % cfg.vanished_sample == 0;
}

InfectionTracker::InfectionTracker(core::Pearl6Model& model,
                                   emu::Emulator& emu,
                                   InjectionRunner& runner,
                                   const emu::GoldenTrace& trace,
                                   const avp::GoldenResult& golden,
                                   FootprintConfig cfg)
    : model_(model),
      emu_(emu),
      runner_(runner),
      trace_(trace),
      golden_(golden),
      cfg_(cfg) {
  // Footprint diffing needs the recorded per-cycle reference states, not
  // just their hashes (a hash can say "different" but not *where*).
  usable_ = cfg_.enabled && trace_.has_states();
  if (!usable_) return;
  const auto& um = model_.registry().unit_masks();
  const auto& tm = model_.registry().type_masks();
  group_masks_.reserve(um.size() + tm.size());
  group_masks_.insert(group_masks_.end(), um.begin(), um.end());
  group_masks_.insert(group_masks_.end(), tm.begin(), tm.end());
}

PropagationRecord InfectionTracker::trace(u32 index, const FaultSpec& fault,
                                          const RunResult& primary) {
  require(usable_, "InfectionTracker::trace while not usable");
  require(prefault_.cycle == fault.cycle,
          "pre-fault snapshot does not match the fault cycle");

  PropagationRecord rec;
  rec.index = index;
  rec.outcome = primary.outcome;
  rec.fault_cycle = fault.cycle;
  rec.first_corrupt.fill(kNeverCorrupted);
  if (fault.target == FaultTarget::Latch) {
    const netlist::LatchMeta& meta =
        model_.registry().meta_of_ordinal(fault.index);
    rec.unit = meta.unit;
    rec.type = meta.type;
  } else {
    // An array cell is not a latch; the footprint shows its latch fallout.
    rec.unit = model_.arrays().locate(fault.array_bit).array->unit();
    rec.type = netlist::LatchType::Func;
  }
  rec.detected = primary.detected_cycle.has_value();
  if (rec.detected) rec.detected_at = *primary.detected_cycle - fault.cycle;

  // Deterministic replay: restore the fault-free pre-injection snapshot the
  // primary run captured (no re-seek) and re-apply the identical fault.
  emu_.restore_checkpoint(prefault_);
  runner_.apply_fault(fault);

  bool saw_checker = false;
  model_.set_cycle_observer(
      [&](const core::Signals& sig, const core::Controls&) {
        if (saw_checker || sig.events.empty()) return;
        const core::CheckerEvent& e = sig.events.front();
        saw_checker = true;
        rec.checker_fired = true;
        rec.checker = e.id;
        rec.checker_fatal = e.fatal;
      });

  const auto& masks = model_.registry().hash_masks();
  constexpr std::size_t kNumGroups =
      netlist::kNumUnits + netlist::kNumLatchTypes;
  constexpr std::size_t kRegFileGroup =
      netlist::kNumUnits + static_cast<std::size_t>(netlist::LatchType::RegFile);
  const bool sticky = fault.mode == FaultMode::Sticky;
  const bool escape = primary.outcome == Outcome::Hang ||
                      primary.outcome == Outcome::Checkstop ||
                      primary.outcome == Outcome::BadArchState;
  const Cycle window =
      escape ? cfg_.escape_trace_cycles : cfg_.max_trace_cycles;

  const auto take_sample = [&](u32 offset, const u64* ref) {
    const u32 total = emu_.state().masked_diff_groups(
        masks, ref, group_masks_, kNumGroups, group_bits_);
    FootprintSample s;
    s.offset = offset;
    s.total_bits = total;
    for (std::size_t u = 0; u < netlist::kNumUnits; ++u) {
      s.unit_bits[u] = group_bits_[u];
      if (group_bits_[u] > 0 && rec.first_corrupt[u] == kNeverCorrupted) {
        rec.first_corrupt[u] = offset;
      }
    }
    if (group_bits_[kRegFileGroup] > 0) rec.reached_arch = true;
    rec.peak_bits = std::max(rec.peak_bits, total);
    rec.samples.push_back(s);
  };

  // Offset 0: the seed footprint right after the flip (a toggle shows its
  // single bit; a multi-bit upset its cluster; an array strike zero).
  if (fault.cycle >= 1 && trace_.has_cycle(fault.cycle - 1)) {
    take_sample(0, trace_.masked_state(fault.cycle - 1));
  }

  Cycle next_sample = 1;
  bool finished_run = false;
  while (true) {
    emu_.step();
    ++rec.rerun_cycles;
    const Cycle now = emu_.cycle();
    const u32 offset = static_cast<u32>(now - fault.cycle);
    const emu::RasStatus ras = model_.ras_status(emu_.state());

    if (ras.checkstop || ras.hang_detected || ras.test_finished) {
      if (trace_.has_cycle(now - 1)) {
        take_sample(offset, trace_.masked_state(now - 1));
      }
      finished_run = ras.test_finished;
      break;
    }
    if (!trace_.has_cycle(now - 1)) {
      // The reference states end at workload completion; past that there is
      // nothing to diff against. We never saw the footprint return to zero.
      rec.truncated = true;
      break;
    }
    if (ras.recovery_active || ras.recovery_count > 0) {
      // A rollback recovery restores a clean pre-fault checkpoint: the
      // infection is scrubbed the moment it engages, and every later diff
      // against the reference would measure replay skew (the machine
      // re-executing behind the reference timeline), not corruption. End the
      // footprint here — this is also what keeps tracing Corrected outcomes
      // cheap (the post-recovery replay tail costs hundreds of cycles in the
      // primary run and would double with forensics on).
      rec.masked = true;
      rec.masked_at = offset;
      FootprintSample zero;
      zero.offset = offset;
      rec.samples.push_back(zero);
      break;
    }
    const u64* ref = trace_.masked_state(now - 1);

    // Cheap per-cycle mask detection (exact early-out word compare, same
    // soundness condition as the runner's convergence poll: invalid while a
    // sticky force is armed; recovery skew is handled by the break above).
    if (!(sticky && now <= fault.cycle + fault.sticky_duration) &&
        emu_.state().masked_equals(masks, ref)) {
      rec.masked = true;
      rec.masked_at = offset;
      FootprintSample zero;  // terminal sample: the series returns to zero
      zero.offset = offset;
      rec.samples.push_back(zero);
      break;
    }

    if (cfg_.sampling == FootprintSampling::EveryCycle ||
        offset >= next_sample) {
      take_sample(offset, ref);
      while (next_sample <= offset) next_sample *= 2;
    }

    if (offset >= window) {
      rec.truncated = true;
      break;
    }
  }
  model_.clear_cycle_observer();

  if (finished_run) {
    // The traced run reached end-of-test: read out architected state and
    // memory against the golden result to see whether corruption escaped
    // the core. Drain the readout's ECC side channels so nothing leaks into
    // the next primary run (its seek restores a checkpoint anyway).
    const avp::Verdict v =
        avp::check_against_golden(model_, emu_.state(), golden_);
    (void)model_.memory().take_corrected();
    (void)model_.memory().take_fatal();
    (void)model_.rut().checkpoint_readout_ras();
    if (!v.state_matches) rec.reached_arch = true;
    if (!v.memory_matches) rec.reached_memory = true;
  }
  return rec;
}

}  // namespace sfi::inject
