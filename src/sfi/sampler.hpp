// Fault-spec samplers: "randomly choose latches from all latches in the
// design" (paper Figure 1), plus the targeted variants used for the
// per-unit (Figure 3/4), per-latch-type (Figure 5) and per-scan-ring
// experiments.
#pragma once

#include <functional>
#include <vector>

#include "netlist/registry.hpp"
#include "sfi/fault.hpp"
#include "stats/rng.hpp"

namespace sfi::inject {

/// The population a campaign samples from.
class LatchPopulation {
 public:
  /// Entire design.
  static LatchPopulation all(const netlist::LatchRegistry& reg);
  /// One microarchitectural unit.
  static LatchPopulation unit(const netlist::LatchRegistry& reg,
                              netlist::Unit unit);
  /// One latch type (MODE/GPTR/REGFILE/FUNC).
  static LatchPopulation latch_type(const netlist::LatchRegistry& reg,
                                    netlist::LatchType type);
  /// One scan ring.
  static LatchPopulation scan_ring(const netlist::LatchRegistry& reg,
                                   u8 ring);
  /// Arbitrary predicate over latch metadata.
  static LatchPopulation filtered(
      const netlist::LatchRegistry& reg,
      const std::function<bool(const netlist::LatchMeta&)>& pred);

  [[nodiscard]] std::size_t size() const { return ordinals_.size(); }
  [[nodiscard]] const std::vector<u32>& ordinals() const { return ordinals_; }

  /// Uniform draw of one ordinal.
  [[nodiscard]] u32 pick(stats::Xoshiro256& rng) const;

 private:
  std::vector<u32> ordinals_;
};

/// Sampler producing complete fault specs: ordinal uniform over the
/// population, injection cycle uniform over the workload's execution window.
struct FaultSampler {
  const LatchPopulation* population = nullptr;
  Cycle window_begin = 1;
  Cycle window_end = 0;  ///< exclusive; typically the completion cycle
  FaultMode mode = FaultMode::Toggle;
  Cycle sticky_duration = 0;

  [[nodiscard]] FaultSpec sample(stats::Xoshiro256& rng) const;
};

}  // namespace sfi::inject
