#include "sfi/runner.hpp"

#include <chrono>

#include "common/check.hpp"
#include "sfi/telemetry.hpp"

namespace sfi::inject {

namespace {

using Tick = std::chrono::steady_clock::time_point;

inline Tick tick(const RunPhaseTimes* tel) {
  return tel != nullptr ? std::chrono::steady_clock::now() : Tick{};
}

inline double seconds_between(Tick a, Tick b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

InjectionRunner::InjectionRunner(core::Pearl6Model& model, emu::Emulator& emu,
                                 const emu::Checkpoint& reset_checkpoint,
                                 const emu::GoldenTrace& trace,
                                 const avp::GoldenResult& golden,
                                 RunConfig cfg,
                                 const emu::CheckpointStore* checkpoints)
    : model_(model),
      emu_(emu),
      reset_cp_(reset_checkpoint),
      trace_(trace),
      golden_(golden),
      cfg_(cfg),
      ckpts_(checkpoints != nullptr && !checkpoints->empty() ? checkpoints
                                                             : nullptr) {
  require(trace.completed, "InjectionRunner needs a completed golden trace");
}

void InjectionRunner::seek_to(Cycle target, RunPhaseTimes* tel) {
  const Tick t0 = tick(tel);
  if (ckpts_ != nullptr) {
    if (const auto idx = ckpts_->index_at_or_before(target)) {
      if (*idx != warm_idx_) {
        ckpts_->materialize(*idx, warm_cp_);
        warm_idx_ = *idx;
        if (tel != nullptr) tel->new_checkpoint = true;
      }
      emu_.restore_checkpoint(warm_cp_);
#ifndef NDEBUG
      // Warm-start safety: the restored state must equal the replayed state
      // at the same cycle (the reference execution is deterministic).
      if (warm_cp_.cycle >= 1 && trace_.has_cycle(warm_cp_.cycle - 1)) {
        ensure(emu_.state().masked_hash(model_.registry().hash_masks()) ==
                   trace_.hashes[warm_cp_.cycle - 1],
               "restored checkpoint diverges from the golden trace");
      }
#endif
      if (tel != nullptr) {
        const Tick t1 = tick(tel);
        tel->seconds[static_cast<std::size_t>(RunPhase::Restore)] =
            seconds_between(t0, t1);
        tel->warm_restore = true;
        tel->restore_cycle = warm_cp_.cycle;
        tel->ff_cycles = target - warm_cp_.cycle;
        emu_.run(target - warm_cp_.cycle);
        tel->seconds[static_cast<std::size_t>(RunPhase::FastForward)] =
            seconds_between(t1, tick(tel));
      } else {
        emu_.run(target - warm_cp_.cycle);
      }
      return;
    }
  }
  emu_.restore_checkpoint(reset_cp_);
  ensure(emu_.cycle() == 0, "reset checkpoint must be at cycle 0");
  if (tel != nullptr) {
    const Tick t1 = tick(tel);
    tel->seconds[static_cast<std::size_t>(RunPhase::Restore)] =
        seconds_between(t0, t1);
    tel->restore_cycle = 0;
    tel->ff_cycles = target;
    emu_.run(target);
    tel->seconds[static_cast<std::size_t>(RunPhase::FastForward)] =
        seconds_between(t1, tick(tel));
  } else {
    emu_.run(target);
  }
}

RunResult InjectionRunner::classify_now(bool finished,
                                        bool early_exited) const {
  const emu::RasStatus ras = model_.ras_status(emu_.state());
  RunResult r;
  r.end_cycle = emu_.cycle();
  r.early_exited = early_exited;
  r.recoveries = ras.recovery_count;
  r.corrected = ras.corrected_count;

  if (ras.checkstop) {
    r.outcome = Outcome::Checkstop;
    return r;
  }
  if (ras.hang_detected || !finished) {
    r.outcome = Outcome::Hang;
    return r;
  }
  if (early_exited) {
    // Converged back onto the fault-free execution with a clean RAS window:
    // the remaining run is provably identical to the reference.
    r.outcome = ras.recovery_count > 0 || ras.corrected_count > 0
                    ? Outcome::Corrected
                    : Outcome::Vanished;
    return r;
  }
  const avp::Verdict v =
      avp::check_against_golden(model_, emu_.state(), golden_);
  // The end-of-test readout goes through the memory controller: latent
  // main-store upsets surface here. A correctable one is a (late) corrected
  // event; an uncorrectable one stops the machine the moment software
  // touches the word — a checkstop, never silent corruption.
  u32 late_corrected = model_.memory().take_corrected();
  bool readout_fatal = model_.memory().take_fatal();
  // Same for the RUT's architected checkpoint: the compare above read it
  // through its ECC.
  const core::Rut::ReadoutRas ckpt =
      model_.rut().checkpoint_readout_ras();
  late_corrected += ckpt.corrected;
  readout_fatal = readout_fatal || ckpt.fatal;
  if (readout_fatal) {
    r.outcome = Outcome::Checkstop;
    return r;
  }
  r.corrected += late_corrected;
  if (!v.state_matches || !v.memory_matches) {
    r.outcome = Outcome::BadArchState;
    r.first_diff = v.first_diff;
    return r;
  }
  r.outcome = ras.recovery_count > 0 || r.corrected > 0
                  ? Outcome::Corrected
                  : Outcome::Vanished;
  return r;
}

void InjectionRunner::apply_fault(const FaultSpec& fault) {
  // Inject (adjacent_bits > 1 models a multi-bit upset from one strike).
  const u32 width = std::max<u32>(1, fault.adjacent_bits);
  switch (fault.target) {
    case FaultTarget::Latch: {
      for (u32 k = 0; k < width; ++k) {
        const u32 ordinal = fault.index + k;
        if (ordinal >= model_.registry().num_latches()) break;
        const BitIndex bit = model_.registry().bit_of_ordinal(ordinal);
        if (fault.mode == FaultMode::Toggle) {
          emu_.flip_latch(bit);
        } else {
          emu_.force_latch(bit, fault.sticky_value,
                           std::max<Cycle>(1, fault.sticky_duration));
        }
      }
      break;
    }
    case FaultTarget::ArrayCell: {
      for (u32 k = 0; k < width; ++k) {
        const u64 gbit = fault.array_bit + k;
        if (gbit >= model_.arrays().total_storage_bits()) break;
        const auto target = model_.arrays().locate(gbit);
        target.array->flip_storage_bit(target.local_bit);
      }
      break;
    }
  }
}

RunResult InjectionRunner::run(const FaultSpec& fault, RunPhaseTimes* tel,
                               emu::Checkpoint* prefault) {
  if (tel != nullptr) *tel = RunPhaseTimes{};

  // Bring the machine fault-free to the injection point (warm-started from
  // the checkpoint store when one is attached).
  seek_to(fault.cycle, tel);

  if (prefault != nullptr) emu_.save_checkpoint(*prefault);

  apply_fault(fault);

  return continue_run(fault, tel);
}

RunResult InjectionRunner::continue_run(const FaultSpec& fault,
                                        RunPhaseTimes* tel,
                                        const std::function<bool()>* eject,
                                        bool* ejected) {
  const auto& masks = model_.registry().hash_masks();
  const Cycle deadline = trace_.completion_cycle + cfg_.hang_margin;
  const Cycle hard_stop = fault.cycle + cfg_.horizon;
  const bool sticky = fault.mode == FaultMode::Sticky;
  // Array contents are not part of the latch-state hash, so convergence
  // proves nothing about a struck array cell (it may be corrected — and
  // reported — much later by a scrub). Run those to completion.
  const bool early_exit =
      cfg_.early_exit && fault.target == FaultTarget::Latch;

  // Detection latency bookkeeping (plain compares on the RAS status already
  // in hand — never alters simulation) and the post-fault phase timers.
  std::optional<Cycle> detect;
  const Tick t_loop = tick(tel);
  // Poll timing is sampled (1 in 16) and scaled to the poll count: two
  // clock reads around every compare would cost more than the compare
  // itself on short workloads.
  constexpr u64 kPollSampleMask = 15;
  double sampled_poll_seconds = 0.0;
  u64 sampled_polls = 0;
  u64 polls = 0;

  // Terminal path shared by every exit: classification is its own timed
  // phase; the loop's wall time minus the poll aggregate is post-fault sim.
  const auto finish = [&](bool finished, bool early) {
    const Tick t_cl = tick(tel);
    RunResult r = classify_now(finished, early);
    if (tel != nullptr) {
      const double poll_seconds =
          sampled_polls == 0
              ? 0.0
              : sampled_poll_seconds * static_cast<double>(polls) /
                    static_cast<double>(sampled_polls);
      tel->seconds[static_cast<std::size_t>(RunPhase::PostFaultSim)] =
          seconds_between(t_loop, t_cl) - poll_seconds;
      tel->seconds[static_cast<std::size_t>(RunPhase::ConvergencePoll)] =
          poll_seconds;
      tel->seconds[static_cast<std::size_t>(RunPhase::Classify)] =
          seconds_between(t_cl, tick(tel));
      tel->polls = polls;
    }
    r.detected_cycle = detect;
    if (!r.detected_cycle &&
        (r.outcome == Outcome::Checkstop || r.outcome == Outcome::Hang ||
         r.recoveries > 0 || r.corrected > 0)) {
      // Only the end-of-test readout surfaced the fault (late correction or
      // uncorrectable word): detection happened at classification time.
      r.detected_cycle = r.end_cycle;
    }
    return r;
  };

  while (true) {
    emu_.step();
    const Cycle now = emu_.cycle();

    // Probation poll: one chance, right after the first step, before this
    // cycle's checks run. See the declaration for the contract.
    if (eject != nullptr) [[unlikely]] {
      const bool out = (*eject)();
      eject = nullptr;
      if (out) {
        *ejected = true;
        return {};
      }
    }

    const emu::RasStatus ras = model_.ras_status(emu_.state());
    if (!detect && (ras.checkstop || ras.hang_detected ||
                    ras.recovery_active || ras.recovery_count > 0 ||
                    ras.corrected_count > 0)) {
      detect = now;
    }
    if (ras.checkstop || ras.hang_detected) {
      return finish(/*finished=*/false, /*early=*/false);
    }
    if (ras.test_finished) {
      return finish(/*finished=*/true, /*early=*/false);
    }

    // Golden convergence check (invalid while a sticky force remains armed
    // or a recovery is rebuilding state). With recorded reference states
    // this is an exact early-out word compare; otherwise a hash compare.
    if (early_exit && !ras.recovery_active && trace_.has_cycle(now - 1) &&
        !(sticky && now <= fault.cycle + fault.sticky_duration)) {
      const bool time_this_poll =
          tel != nullptr && (polls & kPollSampleMask) == 0;
      const Tick t_poll =
          time_this_poll ? std::chrono::steady_clock::now() : Tick{};
      const bool converged =
          trace_.has_states()
              ? emu_.state().masked_equals(masks, trace_.masked_state(now - 1))
              : emu_.state().masked_hash(masks) == trace_.hashes[now - 1];
      if (time_this_poll) {
        sampled_poll_seconds +=
            seconds_between(t_poll, std::chrono::steady_clock::now());
        ++sampled_polls;
      }
      if (tel != nullptr) ++polls;
      if (converged) {
        return finish(/*finished=*/true, /*early=*/true);
      }
    }

    if (now >= deadline || now >= hard_stop) {
      return finish(/*finished=*/false, /*early=*/false);
    }
  }
}

}  // namespace sfi::inject
