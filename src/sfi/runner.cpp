#include "sfi/runner.hpp"

#include "common/check.hpp"

namespace sfi::inject {

InjectionRunner::InjectionRunner(core::Pearl6Model& model, emu::Emulator& emu,
                                 const emu::Checkpoint& reset_checkpoint,
                                 const emu::GoldenTrace& trace,
                                 const avp::GoldenResult& golden,
                                 RunConfig cfg,
                                 const emu::CheckpointStore* checkpoints)
    : model_(model),
      emu_(emu),
      reset_cp_(reset_checkpoint),
      trace_(trace),
      golden_(golden),
      cfg_(cfg),
      ckpts_(checkpoints != nullptr && !checkpoints->empty() ? checkpoints
                                                             : nullptr) {
  require(trace.completed, "InjectionRunner needs a completed golden trace");
}

void InjectionRunner::seek_to(Cycle target) {
  if (ckpts_ != nullptr) {
    if (const auto idx = ckpts_->index_at_or_before(target)) {
      if (*idx != warm_idx_) {
        ckpts_->materialize(*idx, warm_cp_);
        warm_idx_ = *idx;
      }
      emu_.restore_checkpoint(warm_cp_);
#ifndef NDEBUG
      // Warm-start safety: the restored state must equal the replayed state
      // at the same cycle (the reference execution is deterministic).
      if (warm_cp_.cycle >= 1 && trace_.has_cycle(warm_cp_.cycle - 1)) {
        ensure(emu_.state().masked_hash(model_.registry().hash_masks()) ==
                   trace_.hashes[warm_cp_.cycle - 1],
               "restored checkpoint diverges from the golden trace");
      }
#endif
      emu_.run(target - warm_cp_.cycle);
      return;
    }
  }
  emu_.restore_checkpoint(reset_cp_);
  ensure(emu_.cycle() == 0, "reset checkpoint must be at cycle 0");
  emu_.run(target);
}

RunResult InjectionRunner::classify_now(bool finished,
                                        bool early_exited) const {
  const emu::RasStatus ras = model_.ras_status(emu_.state());
  RunResult r;
  r.end_cycle = emu_.cycle();
  r.early_exited = early_exited;
  r.recoveries = ras.recovery_count;
  r.corrected = ras.corrected_count;

  if (ras.checkstop) {
    r.outcome = Outcome::Checkstop;
    return r;
  }
  if (ras.hang_detected || !finished) {
    r.outcome = Outcome::Hang;
    return r;
  }
  if (early_exited) {
    // Converged back onto the fault-free execution with a clean RAS window:
    // the remaining run is provably identical to the reference.
    r.outcome = ras.recovery_count > 0 || ras.corrected_count > 0
                    ? Outcome::Corrected
                    : Outcome::Vanished;
    return r;
  }
  const avp::Verdict v =
      avp::check_against_golden(model_, emu_.state(), golden_);
  // The end-of-test readout goes through the memory controller: latent
  // main-store upsets surface here. A correctable one is a (late) corrected
  // event; an uncorrectable one stops the machine the moment software
  // touches the word — a checkstop, never silent corruption.
  u32 late_corrected = model_.memory().take_corrected();
  bool readout_fatal = model_.memory().take_fatal();
  // Same for the RUT's architected checkpoint: the compare above read it
  // through its ECC.
  const core::Rut::ReadoutRas ckpt =
      model_.rut().checkpoint_readout_ras();
  late_corrected += ckpt.corrected;
  readout_fatal = readout_fatal || ckpt.fatal;
  if (readout_fatal) {
    r.outcome = Outcome::Checkstop;
    return r;
  }
  r.corrected += late_corrected;
  if (!v.state_matches || !v.memory_matches) {
    r.outcome = Outcome::BadArchState;
    r.first_diff = v.first_diff;
    return r;
  }
  r.outcome = ras.recovery_count > 0 || r.corrected > 0
                  ? Outcome::Corrected
                  : Outcome::Vanished;
  return r;
}

RunResult InjectionRunner::run(const FaultSpec& fault) {
  // Bring the machine fault-free to the injection point (warm-started from
  // the checkpoint store when one is attached).
  seek_to(fault.cycle);

  // Inject (adjacent_bits > 1 models a multi-bit upset from one strike).
  const u32 width = std::max<u32>(1, fault.adjacent_bits);
  switch (fault.target) {
    case FaultTarget::Latch: {
      for (u32 k = 0; k < width; ++k) {
        const u32 ordinal = fault.index + k;
        if (ordinal >= model_.registry().num_latches()) break;
        const BitIndex bit = model_.registry().bit_of_ordinal(ordinal);
        if (fault.mode == FaultMode::Toggle) {
          emu_.flip_latch(bit);
        } else {
          emu_.force_latch(bit, fault.sticky_value,
                           std::max<Cycle>(1, fault.sticky_duration));
        }
      }
      break;
    }
    case FaultTarget::ArrayCell: {
      for (u32 k = 0; k < width; ++k) {
        const u64 gbit = fault.array_bit + k;
        if (gbit >= model_.arrays().total_storage_bits()) break;
        const auto target = model_.arrays().locate(gbit);
        target.array->flip_storage_bit(target.local_bit);
      }
      break;
    }
  }

  const auto& masks = model_.registry().hash_masks();
  const Cycle deadline = trace_.completion_cycle + cfg_.hang_margin;
  const Cycle hard_stop = fault.cycle + cfg_.horizon;
  const bool sticky = fault.mode == FaultMode::Sticky;
  // Array contents are not part of the latch-state hash, so convergence
  // proves nothing about a struck array cell (it may be corrected — and
  // reported — much later by a scrub). Run those to completion.
  const bool early_exit =
      cfg_.early_exit && fault.target == FaultTarget::Latch;

  while (true) {
    emu_.step();
    const Cycle now = emu_.cycle();

    const emu::RasStatus ras = model_.ras_status(emu_.state());
    if (ras.checkstop || ras.hang_detected) {
      return classify_now(/*finished=*/false, /*early_exited=*/false);
    }
    if (ras.test_finished) {
      return classify_now(/*finished=*/true, /*early_exited=*/false);
    }

    // Golden convergence check (invalid while a sticky force remains armed
    // or a recovery is rebuilding state). With recorded reference states
    // this is an exact early-out word compare; otherwise a hash compare.
    if (early_exit && !ras.recovery_active && trace_.has_cycle(now - 1) &&
        !(sticky && now <= fault.cycle + fault.sticky_duration)) {
      const bool converged =
          trace_.has_states()
              ? emu_.state().masked_equals(masks, trace_.masked_state(now - 1))
              : emu_.state().masked_hash(masks) == trace_.hashes[now - 1];
      if (converged) {
        return classify_now(/*finished=*/true, /*early_exited=*/true);
      }
    }

    if (now >= deadline || now >= hard_stop) {
      return classify_now(/*finished=*/false, /*early_exited=*/false);
    }
  }
}

}  // namespace sfi::inject
