#include "sfi/runner.hpp"

#include "common/check.hpp"

namespace sfi::inject {

InjectionRunner::InjectionRunner(core::Pearl6Model& model, emu::Emulator& emu,
                                 const emu::Checkpoint& reset_checkpoint,
                                 const emu::GoldenTrace& trace,
                                 const avp::GoldenResult& golden,
                                 RunConfig cfg)
    : model_(model),
      emu_(emu),
      reset_cp_(reset_checkpoint),
      trace_(trace),
      golden_(golden),
      cfg_(cfg) {
  require(trace.completed, "InjectionRunner needs a completed golden trace");
}

RunResult InjectionRunner::classify_now(bool finished,
                                        bool early_exited) const {
  const emu::RasStatus ras = model_.ras_status(emu_.state());
  RunResult r;
  r.end_cycle = emu_.cycle();
  r.early_exited = early_exited;
  r.recoveries = ras.recovery_count;
  r.corrected = ras.corrected_count;

  if (ras.checkstop) {
    r.outcome = Outcome::Checkstop;
    return r;
  }
  if (ras.hang_detected || !finished) {
    r.outcome = Outcome::Hang;
    return r;
  }
  if (early_exited) {
    // Converged back onto the fault-free execution with a clean RAS window:
    // the remaining run is provably identical to the reference.
    r.outcome = ras.recovery_count > 0 || ras.corrected_count > 0
                    ? Outcome::Corrected
                    : Outcome::Vanished;
    return r;
  }
  const avp::Verdict v =
      avp::check_against_golden(model_, emu_.state(), golden_);
  // The end-of-test readout goes through the memory controller: latent
  // main-store upsets surface here. A correctable one is a (late) corrected
  // event; an uncorrectable one stops the machine the moment software
  // touches the word — a checkstop, never silent corruption.
  u32 late_corrected = model_.memory().take_corrected();
  bool readout_fatal = model_.memory().take_fatal();
  // Same for the RUT's architected checkpoint: the compare above read it
  // through its ECC.
  const core::Rut::ReadoutRas ckpt =
      model_.rut().checkpoint_readout_ras();
  late_corrected += ckpt.corrected;
  readout_fatal = readout_fatal || ckpt.fatal;
  if (readout_fatal) {
    r.outcome = Outcome::Checkstop;
    return r;
  }
  r.corrected += late_corrected;
  if (!v.state_matches || !v.memory_matches) {
    r.outcome = Outcome::BadArchState;
    r.first_diff = v.first_diff;
    return r;
  }
  r.outcome = ras.recovery_count > 0 || r.corrected > 0
                  ? Outcome::Corrected
                  : Outcome::Vanished;
  return r;
}

RunResult InjectionRunner::run(const FaultSpec& fault) {
  emu_.restore_checkpoint(reset_cp_);
  ensure(emu_.cycle() == 0, "reset checkpoint must be at cycle 0");

  // Clock up to the injection point fault-free.
  emu_.run(fault.cycle);

  // Inject (adjacent_bits > 1 models a multi-bit upset from one strike).
  const u32 width = std::max<u32>(1, fault.adjacent_bits);
  switch (fault.target) {
    case FaultTarget::Latch: {
      for (u32 k = 0; k < width; ++k) {
        const u32 ordinal = fault.index + k;
        if (ordinal >= model_.registry().num_latches()) break;
        const BitIndex bit = model_.registry().bit_of_ordinal(ordinal);
        if (fault.mode == FaultMode::Toggle) {
          emu_.flip_latch(bit);
        } else {
          emu_.force_latch(bit, fault.sticky_value,
                           std::max<Cycle>(1, fault.sticky_duration));
        }
      }
      break;
    }
    case FaultTarget::ArrayCell: {
      for (u32 k = 0; k < width; ++k) {
        const u64 gbit = fault.array_bit + k;
        if (gbit >= model_.arrays().total_storage_bits()) break;
        const auto target = model_.arrays().locate(gbit);
        target.array->flip_storage_bit(target.local_bit);
      }
      break;
    }
  }

  const auto& masks = model_.registry().hash_masks();
  const Cycle deadline = trace_.completion_cycle + cfg_.hang_margin;
  const Cycle hard_stop = fault.cycle + cfg_.horizon;
  const bool sticky = fault.mode == FaultMode::Sticky;
  // Array contents are not part of the latch-state hash, so convergence
  // proves nothing about a struck array cell (it may be corrected — and
  // reported — much later by a scrub). Run those to completion.
  const bool early_exit =
      cfg_.early_exit && fault.target == FaultTarget::Latch;

  while (true) {
    emu_.step();
    const Cycle now = emu_.cycle();

    const emu::RasStatus ras = model_.ras_status(emu_.state());
    if (ras.checkstop || ras.hang_detected) {
      return classify_now(/*finished=*/false, /*early_exited=*/false);
    }
    if (ras.test_finished) {
      return classify_now(/*finished=*/true, /*early_exited=*/false);
    }

    // Golden-hash convergence check (invalid while a sticky force remains
    // armed or a recovery is rebuilding state).
    if (early_exit && !ras.recovery_active && trace_.has_cycle(now - 1) &&
        !(sticky && now <= fault.cycle + fault.sticky_duration)) {
      if (emu_.state().masked_hash(masks) == trace_.hashes[now - 1]) {
        return classify_now(/*finished=*/true, /*early_exited=*/true);
      }
    }

    if (now >= deadline || now >= hard_stop) {
      return classify_now(/*finished=*/false, /*early_exited=*/false);
    }
  }
}

}  // namespace sfi::inject
