#include "sfi/sample_size.hpp"

#include "common/check.hpp"
#include "stats/descriptive.hpp"
#include "stats/sampling.hpp"

namespace sfi::inject {

std::vector<SampleSizePoint> sample_size_study(
    const std::vector<InjectionRecord>& pool, const SampleSizeConfig& cfg) {
  require(!pool.empty(), "sample_size_study needs a record pool");
  require(cfg.samples_per_point >= 2, "need >= 2 samples per point");

  std::vector<SampleSizePoint> out;
  out.reserve(cfg.flip_counts.size());

  stats::Xoshiro256 rng(cfg.seed);
  for (const std::size_t flips : cfg.flip_counts) {
    require(flips >= 1, "flip count must be >= 1");
    SampleSizePoint pt;
    pt.flips = flips;

    std::array<stats::RunningStats, kNumOutcomes> acc;
    for (u32 s = 0; s < cfg.samples_per_point; ++s) {
      std::array<u64, kNumOutcomes> counts{};
      if (flips <= pool.size()) {
        const auto idx =
            stats::sample_without_replacement(pool.size(), flips, rng);
        for (const u64 i : idx) {
          ++counts[static_cast<std::size_t>(pool[i].outcome)];
        }
      } else {
        // Bootstrap when asked for more flips than the pool holds.
        for (std::size_t i = 0; i < flips; ++i) {
          const auto& rec = pool[rng.below(pool.size())];
          ++counts[static_cast<std::size_t>(rec.outcome)];
        }
      }
      for (std::size_t c = 0; c < kNumOutcomes; ++c) {
        acc[c].add(static_cast<double>(counts[c]));
      }
    }
    for (std::size_t c = 0; c < kNumOutcomes; ++c) {
      const stats::Summary s = acc[c].summary();
      pt.stddev_over_mean[c] = s.stddev_over_mean();
      pt.mean_counts[c] = s.mean;
    }
    out.push_back(pt);
  }
  return out;
}

}  // namespace sfi::inject
