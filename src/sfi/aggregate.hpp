// Campaign aggregation: the outcome histogram plus the per-unit and
// per-latch-type breakdowns (the paper's Figures 3-5 axes), reconstructible
// from any stream of InjectionRecords — an in-memory campaign, a store file,
// or a merged set of shards. Aggregation is order-insensitive and mergeable,
// which is what makes sharded execution and offline re-analysis equivalent
// to a single live run.
#pragma once

#include <array>
#include <functional>
#include <span>

#include "sfi/record.hpp"

namespace sfi::inject {

struct CampaignAggregate {
  OutcomeCounts counts;
  std::array<OutcomeCounts, netlist::kNumUnits> by_unit{};
  std::array<OutcomeCounts, netlist::kNumLatchTypes> by_type{};

  void add(const InjectionRecord& rec);
  void merge(const CampaignAggregate& other);

  [[nodiscard]] u64 total() const { return counts.total(); }
};

/// Aggregate a batch of records.
[[nodiscard]] CampaignAggregate aggregate_records(
    std::span<const InjectionRecord> records);

/// Aggregate only the records matching `pred` (e.g. the beam's latch strikes
/// vs its array strikes in Table 2).
[[nodiscard]] CampaignAggregate aggregate_records(
    std::span<const InjectionRecord> records,
    const std::function<bool(const InjectionRecord&)>& pred);

}  // namespace sfi::inject
