// The unit of campaign evidence: one injection's complete record.
//
// Every table and figure in the paper's evaluation is a re-aggregation of
// these records, so they are kept self-describing (fault spec + latch
// metadata + outcome) and are what the campaign store persists.
#pragma once

#include "netlist/latch.hpp"
#include "sfi/fault.hpp"
#include "sfi/outcome.hpp"

namespace sfi::inject {

/// One injection's record (kept for resampling, tracing and persistence).
struct InjectionRecord {
  FaultSpec fault;
  Outcome outcome = Outcome::Vanished;
  netlist::Unit unit = netlist::Unit::Core;
  netlist::LatchType type = netlist::LatchType::Func;
  Cycle end_cycle = 0;
  bool early_exited = false;
  u32 recoveries = 0;
};

}  // namespace sfi::inject
