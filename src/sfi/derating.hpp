// Derating analysis — the paper's concluding use case: "understand the
// derating of these errors by various layers of logic and use this derating
// to their advantage", and "optimally allocate and apportion any additional
// resources to provide soft error protection".
//
// Converts a campaign's outcome records into the numbers a RAS architect
// actually budgets with: per-unit/per-type derating factors, the chip-level
// visible-error FIT split (SDC vs unrecoverable-stop vs recovered), and a
// ranked hardening-benefit table (population-weighted severe-outcome
// exposure, i.e. where a hardened cell buys the most).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "netlist/registry.hpp"
#include "sfi/campaign.hpp"

namespace sfi::inject {

/// FIT = failures per 10^9 device-hours. `raw_fit_per_latch` is the
/// unmasked upset rate of one latch bit (a technology number; the default is
/// a representative 1e-4 FIT/bit for 65 nm-class latches).
struct DeratingConfig {
  double raw_fit_per_latch = 1e-4;
};

struct UnitDerating {
  netlist::Unit unit{};
  u64 latch_bits = 0;
  u64 flips = 0;
  double derating = 0.0;      ///< fraction with no uncorrected machine effect
  double severe_rate = 0.0;   ///< hang+checkstop+SDC fraction
  double sdc_rate = 0.0;
  /// Chip FIT contributed by this unit's severe outcomes.
  double severe_fit = 0.0;
};

struct DeratingReport {
  /// Overall microarchitectural derating (paper: ~95% of flips vanish; with
  /// recoveries counted, >99% have no uncorrected effect).
  double overall_derating = 0.0;
  double recovered_fraction = 0.0;
  double severe_fraction = 0.0;
  double sdc_fraction = 0.0;

  /// Chip-level FIT split.
  double raw_fit = 0.0;        ///< latches × raw per-latch FIT
  double sdc_fit = 0.0;
  double unrecoverable_fit = 0.0;  ///< hang + checkstop
  double recovered_fit = 0.0;      ///< visible but harmless

  std::vector<UnitDerating> by_unit;  ///< sorted by severe_fit, descending
  std::array<double, netlist::kNumLatchTypes> derating_by_type{};

  [[nodiscard]] std::string summary() const;
};

/// Compute the report from a whole-design campaign result. The campaign
/// must have sampled uniformly (no filter) for the FIT projection to be
/// unbiased; per-unit rates use the campaign's own per-unit records.
[[nodiscard]] DeratingReport compute_derating(
    const CampaignResult& campaign, const netlist::LatchRegistry& registry,
    const DeratingConfig& config = {});

}  // namespace sfi::inject
