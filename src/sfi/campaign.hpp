// Campaign: a statistically sized batch of fault injections over one
// workload, with per-unit / per-latch-type breakdowns and full per-injection
// records (the raw material of every table and figure in the paper's
// evaluation).
//
// Campaigns are deterministic and thread-count-independent: injection i
// derives its RNG stream from (campaign seed, i), each worker owns a private
// model+emulator ("multiple concurrent copies of the simulation environment",
// paper §2.2), and aggregation is order-insensitive.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "avp/testgen.hpp"
#include "sfi/outcome.hpp"
#include "sfi/runner.hpp"
#include "sfi/sampler.hpp"

namespace sfi::inject {

struct CampaignConfig {
  u64 seed = 42;
  u32 num_injections = 2000;
  u32 threads = 0;  ///< 0: hardware concurrency
  RunConfig run;
  FaultMode mode = FaultMode::Toggle;
  Cycle sticky_duration = 0;
  /// Restrict the latch population (empty: whole design).
  std::function<bool(const netlist::LatchMeta&)> filter;
  /// Injection window [begin, end) in cycles; end == 0 uses the workload's
  /// completion cycle.
  Cycle window_begin = 1;
  Cycle window_end = 0;
  /// Core configuration (checker masks etc. — Table 3's knob).
  core::CoreConfig core;
};

/// One injection's record (kept for resampling and tracing).
struct InjectionRecord {
  FaultSpec fault;
  Outcome outcome = Outcome::Vanished;
  netlist::Unit unit = netlist::Unit::Core;
  netlist::LatchType type = netlist::LatchType::Func;
  Cycle end_cycle = 0;
  bool early_exited = false;
  u32 recoveries = 0;
};

struct CampaignResult {
  OutcomeCounts counts;
  std::array<OutcomeCounts, netlist::kNumUnits> by_unit;
  std::array<OutcomeCounts, netlist::kNumLatchTypes> by_type;
  std::vector<InjectionRecord> records;
  std::size_t population_size = 0;
  Cycle workload_cycles = 0;
  u64 workload_instructions = 0;
  double wall_seconds = 0.0;
  u64 cycles_evaluated = 0;

  [[nodiscard]] double injections_per_second() const {
    return wall_seconds <= 0.0
               ? 0.0
               : static_cast<double>(records.size()) / wall_seconds;
  }
};

/// Run a fault-injection campaign for `testcase` under `config`.
[[nodiscard]] CampaignResult run_campaign(const avp::Testcase& testcase,
                                          const CampaignConfig& config);

}  // namespace sfi::inject
