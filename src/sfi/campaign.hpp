// Campaign: a statistically sized batch of fault injections over one
// workload, with per-unit / per-latch-type breakdowns and full per-injection
// records (the raw material of every table and figure in the paper's
// evaluation).
//
// Campaigns are deterministic and thread-count-independent: injection i
// derives its RNG stream from (campaign seed, i), each worker owns a private
// model+emulator ("multiple concurrent copies of the simulation environment",
// paper §2.2), and aggregation is order-insensitive. The same property makes
// campaigns resumable: any scheduler that knows which indices are already
// done can re-derive exactly the remaining faults (src/sched/).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "avp/testgen.hpp"
#include "sfi/aggregate.hpp"
#include "sfi/outcome.hpp"
#include "sfi/propagation.hpp"
#include "sfi/record.hpp"
#include "sfi/runner.hpp"
#include "sfi/sampler.hpp"
#include "sfi/telemetry.hpp"

namespace sfi::inject {

/// Which execution engine runs a campaign's injections (sfi/engine.hpp).
/// Like the checkpoint knobs, the choice never affects outcomes: the lane
/// engine is outcome-byte-identical to the scalar runner (gated by the
/// engine A/B CI job), so it is excluded from the campaign fingerprint and
/// stores produced under either engine stay mutually resumable.
enum class EngineKind : u8 {
  Scalar,  ///< one in-flight injection per worker (InjectionRunner)
  Lanes,   ///< N in-flight injections as diff-lanes over one reference replay
};

struct CampaignConfig {
  u64 seed = 42;
  u32 num_injections = 2000;
  u32 threads = 0;  ///< 0: hardware concurrency
  RunConfig run;
  FaultMode mode = FaultMode::Toggle;
  Cycle sticky_duration = 0;
  /// Restrict the latch population (empty: whole design).
  std::function<bool(const netlist::LatchMeta&)> filter;
  /// Injection window [begin, end) in cycles; end == 0 uses the workload's
  /// completion cycle.
  Cycle window_begin = 1;
  Cycle window_end = 0;
  /// Interval checkpointing of the reference run: snapshot every
  /// `ckpt_interval` cycles so injections warm-start from the nearest
  /// checkpoint instead of replaying from cycle 0. emu::kCkptAuto picks the
  /// interval from the window size and `ckpt_memory_budget`; 0 disables
  /// checkpointing. Results are bit-identical either way (the reference
  /// execution is deterministic), so this knob never affects outcomes, the
  /// campaign fingerprint, or store/resume compatibility — only speed.
  Cycle ckpt_interval = emu::kCkptAuto;
  u64 ckpt_memory_budget = 64ull << 20;
  /// Core configuration (checker masks etc. — Table 3's knob).
  core::CoreConfig core;
  /// Propagation forensics (off by default). Strictly additive: injection
  /// records, the campaign fingerprint and resume behaviour are identical
  /// with tracing on — footprints ride alongside as separate records.
  FootprintConfig footprint;
  /// Optional observability sink (non-owning; must outlive the run).
  /// Strictly read-only with respect to results: the campaign fingerprint,
  /// records, store bytes and resume behaviour are identical with or
  /// without telemetry attached.
  CampaignTelemetry* telemetry = nullptr;
  /// Injection engine. Outcome-neutral (see EngineKind): not part of the
  /// campaign fingerprint.
  EngineKind engine = EngineKind::Scalar;
  /// Max in-flight injections per sweep for the lane engine (ignored by the
  /// scalar engine). More lanes amortize the reference replay over more
  /// injections; see bench/ablation_lane_engine for the curve.
  u32 lanes = 64;
};

/// Everything a campaign derives up-front from (testcase, config) before any
/// injection runs: the golden references, the sampled population, and the
/// full pre-generated fault list (fault i depends only on (seed, i), which
/// keeps results thread-count independent and campaigns resumable).
struct CampaignPlan {
  avp::GoldenResult golden;
  emu::GoldenTrace trace;
  LatchPopulation population;
  std::vector<FaultSpec> faults;
  Cycle window_begin = 0;
  Cycle window_end = 0;  ///< resolved (never 0)
  /// Interval checkpoints of the reference run (empty when disabled);
  /// built once here and shared read-only across all workers.
  emu::CheckpointStore ckpts;

  /// Injection indices sorted by fault cycle (ties by index): dispatching
  /// in this order keeps each worker's materialized checkpoint hot. Records
  /// keep their (seed, i) identity, so ordering, resume and merge are
  /// untouched.
  [[nodiscard]] std::vector<u32> cycle_sorted_indices() const;
};

[[nodiscard]] CampaignPlan plan_campaign(const avp::Testcase& testcase,
                                         const CampaignConfig& config);

/// Build the durable injection record for (fault, result). Shared by every
/// engine so records are field-identical by construction.
[[nodiscard]] InjectionRecord make_record(const netlist::LatchRegistry& reg,
                                          const FaultSpec& fault,
                                          const RunResult& rr);

/// One worker's private simulation environment ("multiple concurrent copies
/// of the simulation environment", paper §2.2). Not thread-safe; create one
/// per thread.
class CampaignWorker {
 public:
  CampaignWorker(const avp::Testcase& testcase, const CampaignConfig& config,
                 const CampaignPlan& plan);
  ~CampaignWorker();
  CampaignWorker(CampaignWorker&&) noexcept;
  CampaignWorker& operator=(CampaignWorker&&) noexcept;

  /// Run one injection end to end and build its record.
  [[nodiscard]] InjectionRecord run(const FaultSpec& fault);
  /// Same, additionally reporting the injection (phase timings, outcome,
  /// detection latency) to a worker telemetry handle. `index` is the
  /// injection's campaign index (event/sampling identity).
  [[nodiscard]] InjectionRecord run(const FaultSpec& fault,
                                    WorkerTelemetry* telemetry, u32 index);
  /// Same, additionally running the deferred footprint re-run when the
  /// campaign's FootprintConfig selects this injection; the propagation
  /// record (if any) is returned through `footprint`.
  [[nodiscard]] InjectionRecord run(const FaultSpec& fault,
                                    WorkerTelemetry* telemetry, u32 index,
                                    std::optional<PropagationRecord>* footprint);

  [[nodiscard]] u64 cycles_evaluated() const;
  [[nodiscard]] u64 cycles_fast_forwarded() const;
  [[nodiscard]] u64 checkpoint_ops() const;

 private:
  std::unique_ptr<core::Pearl6Model> model_;
  std::unique_ptr<emu::Emulator> emu_;
  emu::Checkpoint reset_cp_;
  std::unique_ptr<InjectionRunner> runner_;
  std::unique_ptr<InfectionTracker> tracker_;
};

struct CampaignResult {
  /// Outcome histogram plus by-unit / by-latch-type breakdowns, built
  /// through the shared aggregation helper (sfi/aggregate.hpp) so live
  /// campaigns and store replays are bit-for-bit comparable.
  CampaignAggregate agg;
  std::vector<InjectionRecord> records;
  /// Propagation records for traced injections (empty when forensics are
  /// off), sorted by injection index.
  std::vector<PropagationRecord> footprints;
  std::size_t population_size = 0;
  Cycle workload_cycles = 0;
  u64 workload_instructions = 0;
  double wall_seconds = 0.0;
  u64 cycles_evaluated = 0;
  /// Replay cycles skipped by warm-starting from reference checkpoints.
  u64 cycles_fast_forwarded = 0;
  /// Host checkpoint interactions (saves + restores) across all workers.
  u64 checkpoint_ops = 0;
  /// Reference checkpoints resident during the campaign, and their encoded
  /// footprint (0 when checkpointing is disabled).
  std::size_t checkpoints = 0;
  u64 checkpoint_bytes = 0;

  [[nodiscard]] const OutcomeCounts& counts() const { return agg.counts; }
  [[nodiscard]] const OutcomeCounts& by_unit(netlist::Unit u) const {
    return agg.by_unit[static_cast<std::size_t>(u)];
  }
  [[nodiscard]] const OutcomeCounts& by_type(netlist::LatchType t) const {
    return agg.by_type[static_cast<std::size_t>(t)];
  }

  [[nodiscard]] double injections_per_second() const {
    return wall_seconds <= 0.0
               ? 0.0
               : static_cast<double>(records.size()) / wall_seconds;
  }
};

/// Run a fault-injection campaign for `testcase` under `config`.
[[nodiscard]] CampaignResult run_campaign(const avp::Testcase& testcase,
                                          const CampaignConfig& config);

}  // namespace sfi::inject
