// Sample-size accuracy study (paper §2.1 / Figure 2).
//
// "For a given number of bit-flips X, 10 random samples each consisting of
// X latch bits are chosen ... the standard deviation as a fraction of the
// mean of each outcome category is computed." Given a pool of injection
// records, this module draws the samples and computes exactly that curve.
#pragma once

#include <vector>

#include "sfi/campaign.hpp"

namespace sfi::inject {

struct SampleSizePoint {
  std::size_t flips = 0;
  /// σ/µ per outcome category across the samples (0 when a category never
  /// occurs).
  std::array<double, kNumOutcomes> stddev_over_mean{};
  /// Mean count per category (sanity column; the paper notes these stay
  /// fairly constant).
  std::array<double, kNumOutcomes> mean_counts{};
};

struct SampleSizeConfig {
  u64 seed = 7;
  u32 samples_per_point = 10;  ///< the paper uses 10
  std::vector<std::size_t> flip_counts;  ///< the X axis (e.g. 2k..20k)
};

/// Compute the Figure 2 curve from a record pool. Samples are drawn without
/// replacement when the pool is large enough, with replacement otherwise
/// (bootstrap) — the estimator of sampling error is the same.
[[nodiscard]] std::vector<SampleSizePoint> sample_size_study(
    const std::vector<InjectionRecord>& pool, const SampleSizeConfig& cfg);

}  // namespace sfi::inject
