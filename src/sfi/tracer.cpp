#include "sfi/tracer.hpp"

#include <sstream>

namespace sfi::inject {

std::string_view to_string(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::CheckerFired: return "checker";
    case TraceEvent::Kind::RecoveryStarted: return "recovery-start";
    case TraceEvent::Kind::RecoveryCompleted: return "recovery-complete";
    case TraceEvent::Kind::EccCorrected: return "ecc-corrected";
    case TraceEvent::Kind::Checkstop: return "CHECKSTOP";
    case TraceEvent::Kind::Hang: return "HANG";
  }
  return "?";
}

InjectionTrace trace_injection(core::Pearl6Model& model, emu::Emulator& emu,
                               const emu::Checkpoint& reset_checkpoint,
                               const emu::GoldenTrace& trace,
                               const avp::GoldenResult& golden,
                               const FaultSpec& fault, RunConfig cfg) {
  InjectionTrace out;
  out.fault = fault;
  if (fault.target == FaultTarget::Latch) {
    const netlist::LatchMeta& meta =
        model.registry().meta_of_ordinal(fault.index);
    out.latch_name = model.registry().name_of_ordinal(fault.index);
    out.unit = meta.unit;
    out.type = meta.type;
  } else {
    const auto target = model.arrays().locate(fault.array_bit);
    out.latch_name = target.array->name() + "[bit " +
                     std::to_string(target.local_bit) + "]";
    out.unit = target.array->unit();
  }

  model.set_cycle_observer([&](const core::Signals& sig,
                               const core::Controls& ctl) {
    const Cycle cyc = emu.cycle();  // pre-increment cycle index
    for (const core::CheckerEvent& e : sig.events) {
      TraceEvent te;
      te.kind = TraceEvent::Kind::CheckerFired;
      te.cycle = cyc;
      te.unit = e.unit;
      te.checker = e.id;
      te.fatal = e.fatal;
      te.what = e.what;
      out.events.push_back(te);
    }
    const auto push = [&](TraceEvent::Kind kind, const char* what) {
      TraceEvent te;
      te.kind = kind;
      te.cycle = cyc;
      te.what = what;
      out.events.push_back(te);
    };
    if (sig.corrected > 0) push(TraceEvent::Kind::EccCorrected, "array scrub");
    if (ctl.start_recovery) {
      push(TraceEvent::Kind::RecoveryStarted, "flush + checkpoint restore");
    }
    if (sig.recovery_refetch) {
      push(TraceEvent::Kind::RecoveryCompleted, "refetch from checkpoint pc");
    }
    if (ctl.checkstop) push(TraceEvent::Kind::Checkstop, "machine stopped");
    if (ctl.hang) push(TraceEvent::Kind::Hang, "completion watchdog");
  });

  // Tracing must observe the whole propagation; disable the early exit.
  cfg.early_exit = false;
  InjectionRunner runner(model, emu, reset_checkpoint, trace, golden, cfg);
  out.result = runner.run(fault);
  model.clear_cycle_observer();
  return out;
}

std::string format_trace(const InjectionTrace& trace) {
  std::ostringstream os;
  os << "injection: " << trace.latch_name << " ("
     << netlist::to_string(trace.unit) << ", "
     << netlist::to_string(trace.type) << ") at cycle " << trace.fault.cycle
     << (trace.fault.mode == FaultMode::Sticky ? " [sticky]" : " [toggle]")
     << "\n";
  if (trace.events.empty()) {
    os << "  (no RAS events: fault masked silently)\n";
  }
  for (const TraceEvent& e : trace.events) {
    os << "  cycle " << e.cycle << ": " << to_string(e.kind);
    if (e.kind == TraceEvent::Kind::CheckerFired) {
      os << " [" << netlist::to_string(e.unit) << "] "
         << (e.fatal ? "(fatal) " : "") << e.what;
    } else if (!e.what.empty()) {
      os << " — " << e.what;
    }
    os << "\n";
  }
  os << "  outcome: " << to_string(trace.result.outcome) << " at cycle "
     << trace.result.end_cycle;
  if (const auto latency = trace.detection_latency()) {
    os << " (detection latency " << *latency << " cycles)";
  }
  if (!trace.result.first_diff.empty()) {
    os << "\n  first architected difference: " << trace.result.first_diff;
  }
  os << "\n";
  return os.str();
}

}  // namespace sfi::inject
