// Engine implementations.
//
// ScalarEngine wraps the classic CampaignWorker: one injection at a time,
// seek + flip + simulate + classify.
//
// LaneEngine is concurrent fault simulation by sparse diffs. Each in-flight
// injection ("lane") is represented as the XOR difference D between its
// latch state and one shared fault-free reference replay (the lead cursor).
// During the lead's step an AccessRecorder captures the exact bit-sets the
// model read (R) and wrote (W) that cycle. Then, per lane:
//
//   - D ∩ R = ∅: no value the lane's cycle depends on differed, so its
//     cycle was *provably identical* to the reference's — nothing is
//     simulated, and reference writes land in the lane too: D ← D \ W.
//     (A bit that is read-modify-written is in R, so only pure overwrites
//     erase diff bits. Aux state — memory and data arrays — stays equal by
//     the same induction: identical reads imply identical writes.)
//   - D ∩ R ≠ ∅: the lane's cycle may diverge. The lane is materialized
//     from the trail cursor (one cycle behind the lead) by XOR-ing D into
//     its snapshot, and finishes on a private executor running the *same*
//     InjectionRunner post-fault loop (continue_run) the scalar engine
//     runs — so records are byte-identical by construction.
//
// A lane retires Vanished the moment its masked diff (D ∩ hash_masks)
// empties, under exactly the scalar runner's convergence-poll gate; lanes
// still in flight when the reference's test finishes are materialized from
// the lead and classified by the scalar classify_now. Faults the diff
// algebra cannot carry — sticky forces, array-cell strikes, flips landing
// in the RAS/status bits the classifier reads — fall back to a plain
// scalar run at admission. Every fallback path is the scalar code itself,
// which is what makes the engine outcome-byte-identical rather than
// approximately equal.
//
// Probation re-admission bounds the cost of a trip. Without it a tripped
// lane runs the entire scalar post-fault tail, so with trip fraction f the
// whole engine's speedup is capped near 1/f regardless of lane count. Most
// trips, though, diverge for exactly one cycle (a flipped bit feeds a
// bypass or a compare and the difference dies or moves on): the executor
// runs the divergent cycle, and an eject hook then re-admits the lane as a
// fresh diff D' against the lead if three checks certify the lane is still
// carryable:
//
//   (a) the executor's auxiliary-mutation signature (common/aux_sig.hpp)
//       for the cycle equals the lead's, certifying array/memory state
//       stayed equal through the divergent cycle;
//   (b) the executor's RasStatus equals the lead's field-for-field, so no
//       detection bookkeeping or terminal check could have diverged; and
//   (c) the latch re-diff D' = exec ⊕ lead is within the diff carrier
//       (≤ kMaxDiffWords words, disjoint from the RAS bit-set).
//
// A re-admitted lane skips the rest of the scalar tail entirely; any check
// the hook preempted (test_finished, convergence poll, deadlines) runs
// this same cycle in step_reference under the scalar ordering. If any
// certificate fails the hook declines and the tail runs unmodified — so
// probation, like every other fast path here, can only ever reproduce the
// scalar result or fall back to computing it.

#include "sfi/engine.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/aux_sig.hpp"
#include "common/bits.hpp"
#include "common/check.hpp"
#include "sfi/telemetry.hpp"

namespace sfi::inject {

namespace {

class ScalarEngine final : public InjectionEngine {
 public:
  ScalarEngine(const avp::Testcase& tc, const CampaignConfig& cfg,
               const CampaignPlan& plan)
      : plan_(plan), worker_(tc, cfg, plan) {}

  [[nodiscard]] std::string_view name() const override { return "scalar"; }

  void run(const Next& next, const Emit& emit,
           WorkerTelemetry* telemetry) override {
    while (const std::optional<u32> i = next()) {
      std::optional<PropagationRecord> fp;
      const InjectionRecord rec =
          worker_.run(plan_.faults[*i], telemetry, *i, &fp);
      emit(*i, rec, std::move(fp));
    }
  }

  [[nodiscard]] u64 cycles_evaluated() const override {
    return worker_.cycles_evaluated();
  }
  [[nodiscard]] u64 cycles_fast_forwarded() const override {
    return worker_.cycles_fast_forwarded();
  }
  [[nodiscard]] u64 checkpoint_ops() const override {
    return worker_.checkpoint_ops();
  }

 private:
  const CampaignPlan& plan_;
  CampaignWorker worker_;
};

class LaneEngine final : public InjectionEngine {
 public:
  LaneEngine(const avp::Testcase& tc, const CampaignConfig& cfg,
             const CampaignPlan& plan)
      : plan_(plan),
        trace_(&plan.trace),
        ckpts_(plan.ckpts.empty() ? nullptr : &plan.ckpts),
        run_cfg_(cfg.run),
        lanes_target_(std::max(1u, cfg.lanes)) {
    require(plan.trace.has_states(),
            "LaneEngine needs a golden trace with recorded states (the "
            "campaign planner always records them)");
    lead_ = make_cursor(tc, cfg);
    trail_ = make_cursor(tc, cfg);

    // Private executor for everything that leaves the fast path: the same
    // model/emulator/runner/tracker stack a CampaignWorker owns.
    exec_model_ = std::make_unique<core::Pearl6Model>(cfg.core);
    exec_model_->load_workload(tc.program, tc.init);
    exec_emu_ = std::make_unique<emu::Emulator>(*exec_model_);
    exec_emu_->reset();
    exec_reset_cp_ = exec_emu_->save_checkpoint();
    exec_runner_ = std::make_unique<InjectionRunner>(
        *exec_model_, *exec_emu_, exec_reset_cp_, plan.trace, plan.golden,
        cfg.run, ckpts_);
    if (cfg.footprint.enabled) {
      tracker_ = std::make_unique<InfectionTracker>(
          *exec_model_, *exec_emu_, *exec_runner_, plan.trace, plan.golden,
          cfg.footprint);
      if (!tracker_->usable()) tracker_.reset();
    }

    const std::size_t words = lead_.emu->state().words().size();
    masks_ = exec_model_->registry().hash_masks();
    word_lanes_.resize(words);
    rec_log_.bind(words);
    lead_.emu->set_access_recorder(&rec_log_);

    // The bit-set the classifier's RAS peeks read. A lane whose diff
    // touches these bits could make the machine's *visible* RAS state
    // diverge without the diff ever being read by evaluate(), so such
    // faults never enter the fast path. The peeks are data-independent
    // field reads, so one recorded probe captures them exactly; D only
    // shrinks in fast mode, so an admission-time check holds forever.
    rec_log_.begin_cycle();
    (void)lead_.model->ras_status(lead_.emu->state());
    ras_mask_.assign(words, 0);
    for (const u32 w : rec_log_.read_words()) {
      ras_mask_[w] |= rec_log_.reads()[w];
    }
    rec_log_.begin_cycle();

    // Probation needs per-cycle aux-mutation signatures on both machines.
    // The same model builds both, so salt order matches and signatures are
    // comparable.
    arm_aux_sig(*lead_.model, lead_sig_);
    arm_aux_sig(*exec_model_, exec_sig_);

    deadline_ = plan.trace.completion_cycle + cfg.run.hang_margin;
  }

  ~LaneEngine() override {
    if (std::getenv("SFI_LANE_DEBUG") != nullptr) {
      std::fprintf(stderr,
                   "[lane-debug] trips=%llu ejected=%llu tails=%llu "
                   "fallbacks=%llu retired_conv=%llu finish_live=%llu "
                   "exec_cycles=%llu\n",
                   (unsigned long long)dbg_trips_,
                   (unsigned long long)dbg_ejected_,
                   (unsigned long long)dbg_tails_,
                   (unsigned long long)dbg_fallbacks_,
                   (unsigned long long)dbg_conv_,
                   (unsigned long long)dbg_finish_,
                   (unsigned long long)exec_emu_->cycles_evaluated());
      std::fprintf(stderr,
                   "[lane-debug] saves=%llu restores=%llu restore_s=%.3f "
                   "mirror_hits=%llu\n",
                   (unsigned long long)dbg_saves_,
                   (unsigned long long)dbg_restores_, dbg_restore_s_,
                   (unsigned long long)(dbg_trips_ - dbg_restores_));
      std::fprintf(stderr,
                   "[lane-debug] fail: sig=%llu ras=%llu wide=%llu | "
                   "tail_cycles=%llu outcomes:",
                   (unsigned long long)dbg_fail_sig_,
                   (unsigned long long)dbg_fail_ras_,
                   (unsigned long long)dbg_fail_wide_,
                   (unsigned long long)dbg_tail_cycles_);
      for (int i = 0; i < 8; ++i) {
        if (dbg_tail_outcome_[i] != 0) {
          std::fprintf(stderr, " %d:%llu", i,
                       (unsigned long long)dbg_tail_outcome_[i]);
        }
      }
      std::fprintf(stderr, "\n[lane-debug] tail exec cycles:");
      for (int i = 0; i < 8; ++i) {
        if (dbg_tail_exec_[i] != 0) {
          std::fprintf(stderr, " %d:%llu", i,
                       (unsigned long long)dbg_tail_exec_[i]);
        }
      }
      std::fprintf(stderr, " completion=%llu\n",
                   (unsigned long long)trace_->completion_cycle);
    }
  }

  [[nodiscard]] std::string_view name() const override { return "lanes"; }

  void run(const Next& next, const Emit& emit,
           WorkerTelemetry* telemetry) override {
    emit_ = &emit;
    wt_ = telemetry;
    std::vector<u32> batch;
    batch.reserve(lanes_target_);
    bool drained = false;
    while (!drained) {
      batch.clear();
      while (batch.size() < lanes_target_) {
        const std::optional<u32> i = next();
        if (!i) {
          drained = true;
          break;
        }
        batch.push_back(*i);
      }
      if (!batch.empty()) sweep(batch);
    }
    emit_ = nullptr;
    wt_ = nullptr;
  }

  [[nodiscard]] u64 cycles_evaluated() const override {
    return lead_.emu->cycles_evaluated() + trail_.emu->cycles_evaluated() +
           exec_emu_->cycles_evaluated();
  }
  [[nodiscard]] u64 cycles_fast_forwarded() const override {
    return lead_.emu->cycles_fast_forwarded() +
           trail_.emu->cycles_fast_forwarded() +
           exec_emu_->cycles_fast_forwarded();
  }
  [[nodiscard]] u64 checkpoint_ops() const override {
    return lead_.emu->hostlink().checkpoint_ops +
           trail_.emu->hostlink().checkpoint_ops +
           exec_emu_->hostlink().checkpoint_ops;
  }

 private:
  static constexpr u32 kMaxDiffWords = 4;
  static constexpr Cycle kFar = ~Cycle{0};
  static constexpr std::size_t kNoIdx = ~std::size_t{0};
  static constexpr u32 kNoSlot = ~u32{0};

  /// Route every auxiliary-state mutation the model can make into `sig`.
  /// Array salts start past the EccMemory site tags so the two streams
  /// cannot alias.
  static void arm_aux_sig(core::Pearl6Model& m, AuxSig& sig) {
    m.memory().set_aux_sig(&sig);
    u64 salt = 16;
    for (netlist::ProtectedArray* arr : m.arrays().arrays()) {
      arr->set_aux_sig(&sig, salt++);
    }
  }

  struct DiffWord {
    u32 word = 0;
    u64 bits = 0;
  };

  struct Lane {
    u32 index = 0;
    const FaultSpec* fault = nullptr;
    std::array<DiffWord, kMaxDiffWords> d{};
    u32 nd = 0;
    Cycle hard_stop = 0;
    /// Cycle the current diff was formed at (admission or probation
    /// re-admission). A lane re-admitted at cycle `now` carries a diff that
    /// already reflects the whole of cycle `now`, so that cycle's R/W scans
    /// must skip it.
    Cycle admitted_at = 0;
    bool live = false;
    bool polled = false;  ///< queued in poll_candidates_

    [[nodiscard]] u64* bits_ptr(u32 w) {
      for (u32 i = 0; i < nd; ++i) {
        if (d[i].word == w) return &d[i].bits;
      }
      return nullptr;
    }
    [[nodiscard]] bool masked_empty(std::span<const u64> masks) const {
      for (u32 i = 0; i < nd; ++i) {
        if ((d[i].bits & masks[d[i].word]) != 0) return false;
      }
      return true;
    }
  };

  struct Cursor {
    std::unique_ptr<core::Pearl6Model> model;
    std::unique_ptr<emu::Emulator> emu;
    emu::Checkpoint reset_cp;
    emu::Checkpoint warm_cp;
    std::size_t warm_idx = kNoIdx;
  };

  static Cursor make_cursor(const avp::Testcase& tc,
                            const CampaignConfig& cfg) {
    Cursor c;
    c.model = std::make_unique<core::Pearl6Model>(cfg.core);
    c.model->load_workload(tc.program, tc.init);
    c.emu = std::make_unique<emu::Emulator>(*c.model);
    c.emu->reset();
    c.reset_cp = c.emu->save_checkpoint();
    return c;
  }

  /// Bring a cursor fault-free to `target` (forward run, or warm restore
  /// from the plan's checkpoint store / the reset snapshot).
  void seek_cursor(Cursor& cu, Cycle target) {
    emu::Emulator& e = *cu.emu;
    std::optional<std::size_t> idx;
    Cycle base = 0;
    if (ckpts_ != nullptr) {
      idx = ckpts_->index_at_or_before(target);
      if (idx) base = ckpts_->cycle_at(*idx);
    }
    if (e.cycle() > target || e.cycle() < base) {
      if (idx) {
        if (*idx != cu.warm_idx) {
          ckpts_->materialize(*idx, cu.warm_cp);
          cu.warm_idx = *idx;
        }
        e.restore_checkpoint(cu.warm_cp);
      } else {
        e.restore_checkpoint(cu.reset_cp);
      }
    }
    e.run(target - e.cycle());
  }

  /// Park lead and trail together at `c` (the next admission cycle).
  void seek_pair(Cycle c) {
    seek_cursor(lead_, c);
    lead_.emu->save_checkpoint(pair_cp_);
    trail_.emu->restore_checkpoint(pair_cp_);
    trail_saved_ = false;
  }

  void sweep(std::vector<u32>& batch) {
    std::sort(batch.begin(), batch.end(), [&](u32 a, u32 b) {
      const Cycle ca = plan_.faults[a].cycle;
      const Cycle cb = plan_.faults[b].cycle;
      return ca != cb ? ca < cb : a < b;
    });
    lanes_.clear();
    for (auto& wl : word_lanes_) wl.clear();
    poll_candidates_.clear();
    live_ = 0;
    next_hard_stop_ = kFar;
    trail_saved_ = false;
    exec_mirror_ = kNoSlot;  // slot numbers are reused across sweeps

    std::size_t ap = 0;
    seek_pair(plan_.faults[batch[ap]].cycle);
    while (ap < batch.size() || live_ > 0) {
      const Cycle at = lead_.emu->cycle();
      while (ap < batch.size() && plan_.faults[batch[ap]].cycle == at) {
        admit(batch[ap]);
        ++ap;
      }
      if (live_ == 0) {
        if (ap >= batch.size()) break;
        seek_pair(plan_.faults[batch[ap]].cycle);
        continue;
      }
      step_reference();
    }
  }

  void admit(u32 index) {
    const FaultSpec& f = plan_.faults[index];
    bool fast = f.target == FaultTarget::Latch && f.mode == FaultMode::Toggle;
    std::array<DiffWord, kMaxDiffWords> d{};
    u32 nd = 0;
    if (fast) {
      const netlist::LatchRegistry& reg = exec_model_->registry();
      const u32 width = std::max<u32>(1, f.adjacent_bits);
      for (u32 k = 0; k < width && fast; ++k) {
        const u32 ordinal = f.index + k;
        if (ordinal >= reg.num_latches()) break;
        const BitIndex bit = reg.bit_of_ordinal(ordinal);
        const u32 w = bit / 64;
        const u64 m = u64{1} << (bit % 64);
        u32 slot = nd;
        for (u32 i = 0; i < nd; ++i) {
          if (d[i].word == w) {
            slot = i;
            break;
          }
        }
        if (slot == nd) {
          if (nd == kMaxDiffWords) {
            fast = false;  // upset wider than the diff carrier: scalar path
            break;
          }
          d[nd].word = w;
          d[nd].bits = 0;
          ++nd;
        }
        d[slot].bits ^= m;  // XOR, exactly like flip_latch
      }
      for (u32 i = 0; i < nd && fast; ++i) {
        if ((d[i].bits & ras_mask_[d[i].word]) != 0) fast = false;
      }
    }
    if (!fast) {
      run_scalar(index, f);
      return;
    }
    const u32 slot = static_cast<u32>(lanes_.size());
    Lane ln;
    ln.index = index;
    ln.fault = &f;
    ln.d = d;
    ln.nd = nd;
    ln.hard_stop = f.cycle + run_cfg_.horizon;
    ln.admitted_at = f.cycle;
    ln.live = true;
    for (u32 i = 0; i < nd; ++i) {
      if (ln.d[i].bits != 0) word_lanes_[ln.d[i].word].push_back(slot);
    }
    // First convergence poll happens on the next cycle; queueing now covers
    // lanes whose flipped bits all sit outside the hash masks (or that
    // flipped nothing at all — out-of-range upset tail), which the scalar
    // runner retires at its first poll.
    if (run_cfg_.early_exit) {
      ln.polled = true;
      poll_candidates_.push_back(slot);
    }
    lanes_.push_back(ln);
    ++live_;
    next_hard_stop_ = std::min(next_hard_stop_, ln.hard_stop);
  }

  /// One reference cycle: lead steps (recorded), lanes trip/erase/retire,
  /// then the trail catches up.
  void step_reference() {
    rec_log_.begin_cycle();
    lead_sig_.acc = 0;
    lead_.emu->step();
    const Cycle now = lead_.emu->cycle();
    // RAS before the scans: the probation hook compares against it. The
    // peeks add the RAS bit-set to this cycle's R, which is harmless — no
    // lane's diff overlaps those bits (admission and re-admission both
    // reject overlapping diffs), so they can never trip anyone.
    lead_ras_ = lead_.model->ras_status(lead_.emu->state());

    // Trips first: R and W both describe this cycle, and a lane whose diff
    // was read re-executes the whole cycle from the trail's state — the
    // write-erase below must not touch its diff.
    for (const u32 w : rec_log_.read_words()) {
      auto& ll = word_lanes_[w];
      if (ll.empty()) continue;
      const u64 rmask = rec_log_.reads()[w];
      for (std::size_t k = 0; k < ll.size();) {
        Lane& ln = lanes_[ll[k]];
        u64* bits = ln.live ? ln.bits_ptr(w) : nullptr;
        if (bits == nullptr || *bits == 0) {
          ll[k] = ll.back();
          ll.pop_back();
          continue;
        }
        if (ln.admitted_at == now) {
          // Re-admitted earlier in this very scan: D' already reflects the
          // whole cycle.
          ++k;
          continue;
        }
        if ((*bits & rmask) != 0) {
          if (trip_lane(ll[k])) {
            // Retired on the executor; drop its entry.
            ll[k] = ll.back();
            ll.pop_back();
          } else {
            // Ejected back into the pool with a fresh diff. Keep the entry:
            // the re-admission dedupe saw it and did not push a duplicate.
            ++k;
          }
          continue;
        }
        ++k;
      }
    }
    // Pure overwrites erase diff bits (reference and lane wrote the same
    // value: anything read-modify-written tripped above).
    for (const u32 w : rec_log_.write_words()) {
      auto& ll = word_lanes_[w];
      if (ll.empty()) continue;
      const u64 wmask = rec_log_.writes()[w];
      for (std::size_t k = 0; k < ll.size();) {
        const u32 slot = ll[k];
        Lane& ln = lanes_[slot];
        u64* bits = ln.live ? ln.bits_ptr(w) : nullptr;
        if (bits == nullptr || *bits == 0) {
          ll[k] = ll.back();
          ll.pop_back();
          continue;
        }
        if (ln.admitted_at == now) {
          ++k;
          continue;
        }
        if ((*bits & wmask) != 0) {
          *bits &= ~wmask;
          if (!ln.polled) {
            ln.polled = true;
            poll_candidates_.push_back(slot);
          }
          if (*bits == 0) {
            ll[k] = ll.back();
            ll.pop_back();
            continue;
          }
        }
        ++k;
      }
    }

    // The reference is fault-free, so of the scalar loop's terminal checks
    // only test_finished can fire — and a fast lane's RAS state equals the
    // reference's (its diff is disjoint from the RAS bits by admission).
    // Check order mirrors the scalar loop: finish, then poll, then
    // deadlines.
    if (lead_ras_.test_finished) {
      finish_live(now);
    } else {
      if (live_ > 0 && run_cfg_.early_exit && trace_->has_cycle(now - 1)) {
        retire_converged(now);
      }
      if (live_ > 0 && (now >= deadline_ || now >= next_hard_stop_)) {
        hang_overdue(now);
      }
    }

    trail_.emu->step();
    trail_saved_ = false;
  }

  /// The lane's cycle may diverge from the reference's: rebuild its full
  /// state (trail snapshot ⊕ D, one cycle behind the lead) and run the
  /// divergent cycle on the executor with the scalar post-fault loop.
  /// Usually the probation hook then re-admits the lane with a fresh diff
  /// (returns false: the lane stays live); otherwise the executor finishes
  /// the run and the lane retires (returns true).
  bool trip_lane(u32 slot) {
    Lane& ln = lanes_[slot];
    if (exec_mirror_ == slot &&
        exec_emu_->cycle() + 1 == lead_.emu->cycle()) {
      // The executor already holds this lane's exact state from its last
      // probation cycle (nothing touched it since, and the erase scan
      // skipped the lane's re-admission cycle): the restore would be a
      // byte-for-byte no-op.
    } else {
      const auto t0 = std::chrono::steady_clock::now();
      if (!trail_saved_) {
        trail_.emu->save_checkpoint(pair_cp_);
        trail_saved_ = true;
        ++dbg_saves_;
      }
      const auto words = pair_cp_.latches.words_mut();
      for (u32 i = 0; i < ln.nd; ++i) words[ln.d[i].word] ^= ln.d[i].bits;
      exec_emu_->restore_checkpoint(pair_cp_);
      for (u32 i = 0; i < ln.nd; ++i) words[ln.d[i].word] ^= ln.d[i].bits;
      ++dbg_restores_;
      dbg_restore_s_ += std::chrono::duration<double>(
          std::chrono::steady_clock::now() - t0).count();
    }
    exec_mirror_ = kNoSlot;
    RunPhaseTimes* ph = wt_ != nullptr ? wt_->phase_scratch() : nullptr;
    if (ph != nullptr) *ph = RunPhaseTimes{};
    exec_sig_.acc = 0;
    bool ejected = false;
    const std::function<bool()> hook = [this, slot] {
      return try_readmit(slot);
    };
    ++dbg_trips_;
    const RunResult rr =
        exec_runner_->continue_run(*ln.fault, ph, &hook, &ejected);
    if (ejected) {
      ++dbg_ejected_;
      exec_mirror_ = slot;
      return false;
    }
    ++dbg_tails_;
    dbg_tail_cycles_ += rr.end_cycle > 0 ? rr.end_cycle - ln.fault->cycle : 0;
    ++dbg_tail_outcome_[static_cast<int>(rr.outcome)];
    // exec-paid cycles for this tail: from the trip cycle (lead's now) on.
    dbg_tail_exec_[static_cast<int>(rr.outcome)] +=
        rr.end_cycle > 0 ? rr.end_cycle - (lead_.emu->cycle() - 1) : 0;
    ln.live = false;
    --live_;
    finalize(ln.index, *ln.fault, rr, /*prefault_ready=*/false);
    return true;
  }

  /// Probation certificate, polled by continue_run after the divergent
  /// cycle's step (exec is at the lead's cycle). True re-admits the lane
  /// with D' = exec ⊕ lead and ejects the executor.
  bool try_readmit(u32 slot) {
    // (a) Equal aux-mutation signatures: array/memory state stayed equal
    // through the cycle (given equal before it, which holds inductively).
    if (exec_sig_.acc != lead_sig_.acc) {
      ++dbg_fail_sig_;
      return false;
    }
    // (b) Equal RAS view: no detection bookkeeping, terminal check or
    // convergence gate could have seen anything the reference's didn't.
    const emu::RasStatus er = exec_model_->ras_status(exec_emu_->state());
    if (er.checkstop != lead_ras_.checkstop ||
        er.hang_detected != lead_ras_.hang_detected ||
        er.recovery_active != lead_ras_.recovery_active ||
        er.recovery_count != lead_ras_.recovery_count ||
        er.corrected_count != lead_ras_.corrected_count ||
        er.instructions_completed != lead_ras_.instructions_completed ||
        er.test_finished != lead_ras_.test_finished) {
      ++dbg_fail_ras_;
      return false;
    }
    // (c) The re-diff must fit the carrier and stay clear of the RAS bits
    // (the admission invariant the whole fast path rests on).
    const std::span<const u64> ew = exec_emu_->state().words();
    const std::span<const u64> lw = lead_.emu->state().words();
    std::array<DiffWord, kMaxDiffWords> d{};
    u32 nd = 0;
    for (std::size_t w = 0; w < ew.size(); ++w) {
      const u64 x = ew[w] ^ lw[w];
      if (x == 0) continue;
      if ((x & ras_mask_[w]) != 0 || nd == kMaxDiffWords) {
        ++dbg_fail_wide_;
        return false;
      }
      d[nd].word = static_cast<u32>(w);
      d[nd].bits = x;
      ++nd;
    }

    Lane& ln = lanes_[slot];
    ln.d = d;
    ln.nd = nd;
    ln.admitted_at = lead_.emu->cycle();
    for (u32 i = 0; i < nd; ++i) {
      auto& ll = word_lanes_[d[i].word];
      if (std::find(ll.begin(), ll.end(), slot) == ll.end()) {
        ll.push_back(slot);
      }
    }
    // The scalar runner polls convergence on this very cycle (after the
    // step we just certified); retire_converged runs later this cycle and
    // must consider the lane.
    if (run_cfg_.early_exit && !ln.polled) {
      ln.polled = true;
      poll_candidates_.push_back(slot);
    }
    return true;
  }

  /// Reference test finished with lanes still in flight: each one's state
  /// is lead ⊕ D; classify it exactly like the scalar runner's
  /// finish(finished=true, early=false).
  void finish_live(Cycle now) {
    if (live_ == 0) return;
    exec_mirror_ = kNoSlot;
    lead_.emu->save_checkpoint(finish_cp_);
    const auto words = finish_cp_.latches.words_mut();
    for (u32 slot = 0; slot < lanes_.size(); ++slot) {
      Lane& ln = lanes_[slot];
      if (!ln.live) continue;
      for (u32 i = 0; i < ln.nd; ++i) words[ln.d[i].word] ^= ln.d[i].bits;
      exec_emu_->restore_checkpoint(finish_cp_);
      for (u32 i = 0; i < ln.nd; ++i) words[ln.d[i].word] ^= ln.d[i].bits;
      if (wt_ != nullptr) *wt_->phase_scratch() = RunPhaseTimes{};
      RunResult rr = exec_runner_->classify_now(/*finished=*/true,
                                                /*early_exited=*/false);
      apply_detect_rule(rr);
      ensure(rr.end_cycle == now, "lane finish cycle mismatch");
      ++dbg_finish_;
      ln.live = false;
      --live_;
      finalize(ln.index, *ln.fault, rr, /*prefault_ready=*/false);
    }
  }

  /// Convergence poll: a lane retires Vanished the moment its masked diff
  /// empties — the same cycle the scalar runner's masked_equals poll fires,
  /// since lane state == lead state ⊕ D and the lead tracks the trace.
  void retire_converged(Cycle now) {
    for (std::size_t k = 0; k < poll_candidates_.size();) {
      const u32 slot = poll_candidates_[k];
      Lane& ln = lanes_[slot];
      if (ln.live && ln.masked_empty(masks_)) {
        RunResult rr;
        rr.outcome = Outcome::Vanished;
        rr.end_cycle = now;
        rr.early_exited = true;
        // Clean RAS window by the admission invariant: the reference's
        // counters are zero and the lane's RAS state equals the
        // reference's, exactly the scalar early-exit classification.
        ln.live = false;
        --live_;
        ++dbg_conv_;
        if (wt_ != nullptr) *wt_->phase_scratch() = RunPhaseTimes{};
        finalize(ln.index, *ln.fault, rr, /*prefault_ready=*/false);
      }
      ln.polled = false;
      poll_candidates_[k] = poll_candidates_.back();
      poll_candidates_.pop_back();
    }
  }

  /// Deadline / horizon expiry: the scalar loop classifies these Hang with
  /// no further state reads (clean RAS, finished=false), so the record is
  /// built directly.
  void hang_overdue(Cycle now) {
    Cycle nxt = kFar;
    for (u32 slot = 0; slot < lanes_.size(); ++slot) {
      Lane& ln = lanes_[slot];
      if (!ln.live) continue;
      if (now >= deadline_ || now >= ln.hard_stop) {
        RunResult rr;
        rr.outcome = Outcome::Hang;
        rr.end_cycle = now;
        rr.detected_cycle = now;  // readout-only detection, as in finish()
        ln.live = false;
        --live_;
        if (wt_ != nullptr) *wt_->phase_scratch() = RunPhaseTimes{};
        finalize(ln.index, *ln.fault, rr, /*prefault_ready=*/false);
      } else {
        nxt = std::min(nxt, ln.hard_stop);
      }
    }
    next_hard_stop_ = nxt;
  }

  /// Scalar fallback: the unmodified CampaignWorker flow on the executor.
  void run_scalar(u32 index, const FaultSpec& f) {
    ++dbg_fallbacks_;
    exec_mirror_ = kNoSlot;
    emu::Checkpoint* pf =
        tracker_ != nullptr ? &tracker_->prefault() : nullptr;
    const RunResult rr = exec_runner_->run(
        f, wt_ != nullptr ? wt_->phase_scratch() : nullptr, pf);
    finalize(index, f, rr, /*prefault_ready=*/pf != nullptr);
  }

  /// InjectionRunner::run's finish() detection rule for results built
  /// outside it (classification-only paths).
  static void apply_detect_rule(RunResult& rr) {
    if (!rr.detected_cycle &&
        (rr.outcome == Outcome::Checkstop || rr.outcome == Outcome::Hang ||
         rr.recoveries > 0 || rr.corrected > 0)) {
      rr.detected_cycle = rr.end_cycle;
    }
  }

  void finalize(u32 index, const FaultSpec& fault, const RunResult& rr,
                bool prefault_ready) {
    const InjectionRecord rec =
        make_record(exec_model_->registry(), fault, rr);
    if (wt_ != nullptr) {
      std::optional<Cycle> latency;
      if (rr.detected_cycle) latency = *rr.detected_cycle - fault.cycle;
      wt_->record_injection(index, rec, latency);
    }
    std::optional<PropagationRecord> fp;
    if (tracker_ != nullptr && tracker_->should_trace(index, rr.outcome)) {
      exec_mirror_ = kNoSlot;  // the replay below repositions the executor
      if (!prefault_ready) {
        // Fast-path lanes never snapshotted a pre-fault state; rebuild it
        // from the reference (identical bytes to the scalar's snapshot —
        // the pre-fault machine is fault-free by definition).
        exec_runner_->seek_for_replay(fault.cycle);
        exec_emu_->save_checkpoint(tracker_->prefault());
      }
      const auto t0 = std::chrono::steady_clock::now();
      PropagationRecord prec = tracker_->trace(index, fault, rr);
      if (wt_ != nullptr) {
        wt_->record_footprint(
            index, prec,
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count());
      }
      fp = std::move(prec);
    }
    (*emit_)(index, rec, std::move(fp));
  }

  const CampaignPlan& plan_;
  const emu::GoldenTrace* trace_;
  const emu::CheckpointStore* ckpts_;
  RunConfig run_cfg_;
  u32 lanes_target_;

  Cursor lead_;
  Cursor trail_;
  std::unique_ptr<core::Pearl6Model> exec_model_;
  std::unique_ptr<emu::Emulator> exec_emu_;
  emu::Checkpoint exec_reset_cp_;
  std::unique_ptr<InjectionRunner> exec_runner_;
  std::unique_ptr<InfectionTracker> tracker_;

  netlist::AccessRecorder rec_log_;
  std::span<const u64> masks_;       ///< hash masks (exec model's registry)
  std::vector<u64> ras_mask_;        ///< bits the RAS/classifier peeks read
  AuxSig lead_sig_;                  ///< lead's aux mutations, this cycle
  AuxSig exec_sig_;                  ///< exec's aux mutations, probation
  emu::RasStatus lead_ras_{};        ///< lead RAS after this cycle's step
  /// Lane whose exact state the executor still holds after an ejection
  /// (kNoSlot when the executor has been repurposed since): lets a lane
  /// that trips on consecutive cycles skip the checkpoint restore.
  u32 exec_mirror_ = kNoSlot;
  std::vector<Lane> lanes_;          ///< this sweep's lanes (slot-indexed)
  std::vector<std::vector<u32>> word_lanes_;  ///< live diff slots per word
  std::vector<u32> poll_candidates_;
  u32 live_ = 0;
  Cycle deadline_ = 0;
  Cycle next_hard_stop_ = kFar;
  emu::Checkpoint pair_cp_;    ///< trail snapshot (trip materialization)
  emu::Checkpoint finish_cp_;  ///< lead snapshot (end-of-test classify)
  bool trail_saved_ = false;

  u64 dbg_saves_ = 0, dbg_restores_ = 0;
  double dbg_restore_s_ = 0.0;
  u64 dbg_trips_ = 0, dbg_ejected_ = 0, dbg_tails_ = 0, dbg_fallbacks_ = 0,
      dbg_conv_ = 0, dbg_finish_ = 0, dbg_fail_sig_ = 0, dbg_fail_ras_ = 0,
      dbg_fail_wide_ = 0, dbg_tail_cycles_ = 0;
  u64 dbg_tail_outcome_[8] = {};
  u64 dbg_tail_exec_[8] = {};

  const Emit* emit_ = nullptr;
  WorkerTelemetry* wt_ = nullptr;
};

}  // namespace

std::unique_ptr<InjectionEngine> make_engine(const avp::Testcase& tc,
                                             const CampaignConfig& cfg,
                                             const CampaignPlan& plan) {
  switch (cfg.engine) {
    case EngineKind::Scalar:
      return std::make_unique<ScalarEngine>(tc, cfg, plan);
    case EngineKind::Lanes:
      return std::make_unique<LaneEngine>(tc, cfg, plan);
  }
  throw InternalError("unknown engine kind");
}

const char* engine_name(EngineKind kind) {
  return kind == EngineKind::Lanes ? "lanes" : "scalar";
}

std::optional<EngineKind> parse_engine(std::string_view name) {
  if (name == "scalar") return EngineKind::Scalar;
  if (name == "lanes") return EngineKind::Lanes;
  return std::nullopt;
}

}  // namespace sfi::inject
