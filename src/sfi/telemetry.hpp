// Campaign telemetry facade: the one object wired through the campaign
// driver, the sharded scheduler, the beam harness and the CLI. It owns
//
//   * the metrics registry (counters / gauges / phase & latency histograms,
//     accumulated into per-worker shards, merged at finish),
//   * the structured JSONL event log (campaign start/finish, shard
//     dispatch/complete, sampled per-injection records, checkpoint
//     save/restore), and
//   * the Chrome-trace collector (one track per worker: shard spans with
//     nested per-injection phase slices, loadable in chrome://tracing).
//
// Telemetry is strictly read-only with respect to results: it observes
// records after they are built and never feeds anything back into fault
// derivation, classification, the store or resume. A campaign run with
// every sink enabled persists byte-identical records to one run with
// telemetry off (tests/test_telemetry.cpp holds this as a regression).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sfi/record.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/events.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace sfi::inject {

struct CampaignAggregate;
struct PropagationRecord;  // sfi/propagation.hpp

/// The phases one injection decomposes into (ZOFI-style per-phase timing,
/// arXiv:1906.09390): where the wall-time of a campaign actually goes.
enum class RunPhase : u8 {
  Restore,          ///< checkpoint materialization + machine restore
  FastForward,      ///< fault-free clocking from the checkpoint to the fault
  PostFaultSim,     ///< post-injection simulation (minus convergence polls)
  ConvergencePoll,  ///< golden-trace convergence compares
  Classify,         ///< terminal-state classification + golden compare
};
inline constexpr std::size_t kNumRunPhases = 5;

[[nodiscard]] constexpr std::string_view to_string(RunPhase p) {
  constexpr std::array<std::string_view, kNumRunPhases> names = {
      "restore", "fast_forward", "post_fault_sim", "convergence_poll",
      "classify"};
  return names[static_cast<std::size_t>(p)];
}

/// Per-injection phase telemetry. The runner fills this out-param when (and
/// only when) a sink is attached; it never reads it back, so simulation
/// behaviour is identical with or without one.
struct RunPhaseTimes {
  std::array<double, kNumRunPhases> seconds{};
  u64 polls = 0;              ///< convergence polls executed
  u64 ff_cycles = 0;          ///< cycles clocked fault-free after restore
  bool warm_restore = false;  ///< restored from an interval checkpoint
  bool new_checkpoint = false;  ///< materialized a different checkpoint
  Cycle restore_cycle = 0;      ///< cycle of the restored snapshot

  [[nodiscard]] double total_seconds() const {
    double t = 0.0;
    for (const double s : seconds) t += s;
    return t;
  }
};

struct TelemetryConfig {
  /// Emit every Nth per-injection event-log record (1 = all, 0 = none).
  /// Lifecycle / shard / checkpoint events are never sampled away.
  u32 event_sample = 1;
  /// Emit every Nth injection as Chrome-trace phase slices (1 = all,
  /// 0 = shard spans only). Counted per worker.
  u32 slice_sample = 1;
};

class CampaignTelemetry;

/// One worker thread's telemetry handle: a private metrics shard, a private
/// trace track, and a scratch RunPhaseTimes for the runner. Not thread-safe;
/// exactly one worker owns each handle (create via prepare_workers()).
class WorkerTelemetry {
 public:
  /// Scratch the runner fills per injection (stable address).
  [[nodiscard]] RunPhaseTimes* phase_scratch() { return &phases_; }

  /// Shard lifecycle (scheduler only): event-log record + trace span.
  void shard_begin(u64 shard, u64 injections);
  void shard_end(u64 shard, u64 executed);

  /// Observe one completed injection: phase histograms, outcome tallies,
  /// detection latency, sampled event record and trace slices. `index` is
  /// the injection's campaign index; `detect_latency` is cycles from fault
  /// to first RAS reaction (nullopt: never detected).
  void record_injection(u32 index, const InjectionRecord& rec,
                        std::optional<Cycle> detect_latency);

  /// Observe one completed footprint re-run: spread counters, peak/mask
  /// histograms, sampled "propagation" event record and a trace slice with
  /// per-sample instants. `seconds` is the re-run's wall time.
  void record_footprint(u32 index, const PropagationRecord& rec,
                        double seconds);

  /// Fold this worker's shard into the owning registry now. Called by the
  /// worker thread itself (the only thread allowed to touch the shard) at
  /// flush boundaries, so live readers — the daemon's /metrics scrape —
  /// see near-current totals without racing a foreign shard.
  void fold();

 private:
  friend class CampaignTelemetry;
  WorkerTelemetry(CampaignTelemetry& owner, u32 tid);

  CampaignTelemetry& owner_;
  u32 tid_ = 0;
  telemetry::MetricsShard shard_;
  telemetry::TraceTrack* track_ = nullptr;
  RunPhaseTimes phases_;
  telemetry::JsonWriter scratch_;  ///< reused per event (no per-event alloc)
  u64 seq_ = 0;            ///< injections seen by this worker (sampling)
  u64 shard_start_us_ = 0;  ///< open shard span start
  /// Span plane (owner's book; null when the plane is off).
  telemetry::SpanBook* book_ = nullptr;
  telemetry::TailExemplarPolicy exemplar_;
  u64 span_shard_start_us_ = 0;  ///< open shard span start (wall-anchored)
};

class CampaignTelemetry {
 public:
  explicit CampaignTelemetry(TelemetryConfig cfg = {});
  ~CampaignTelemetry();
  CampaignTelemetry(const CampaignTelemetry&) = delete;
  CampaignTelemetry& operator=(const CampaignTelemetry&) = delete;

  // --- sinks (attach before the campaign starts) ---
  void open_event_log(const std::string& path);
  void enable_chrome_trace();
  /// Attach the distributed span plane: a wall-anchored SpanBook every
  /// lifecycle / farm / per-injection hook records into, plus the
  /// tail-latency exemplar policy for per-injection phase slices.
  /// `process_name` labels this process's row in the stitched trace;
  /// `trace_id` scopes the spans to one campaign (0: keep the current id —
  /// workers learn theirs later, from the assignment line). Idempotent.
  void enable_span_plane(std::string process_name, u64 trace_id);
  [[nodiscard]] telemetry::SpanBook* spans() { return span_book_.get(); }

  /// Keep spans another process reported (delivered 'S' frames) for the
  /// live /trace view. Thread-safe; capped (oldest kept — the lifecycle
  /// spans live early) so a runaway worker cannot balloon the daemon.
  void retain_spans(const std::vector<telemetry::SpanRecord>& spans);
  /// Everything the live /trace view renders: this process's book plus
  /// every retained foreign span. Thread-safe.
  [[nodiscard]] std::vector<telemetry::SpanRecord> all_spans() const;
  /// all_spans() rendered as a Trace Event JSON document.
  [[nodiscard]] std::string trace_chrome_json() const;

  /// Convert the crash flight recorder's current ring tail into span
  /// instants on this process's row (no-op when either plane is off).
  /// Called on supervision failures: the stitched trace then shows what
  /// the process was doing when its worker died. Line timestamps are on
  /// this telemetry's steady clock and are re-anchored exactly (same
  /// process, same clock).
  void flight_recorder_tail_to_spans(std::string_view reason);

  [[nodiscard]] telemetry::MetricsRegistry& metrics() { return registry_; }
  [[nodiscard]] telemetry::EventLog* events() {
    return events_.is_open() ? &events_ : nullptr;
  }
  [[nodiscard]] telemetry::TraceCollector* trace() { return trace_.get(); }
  [[nodiscard]] const TelemetryConfig& config() const { return cfg_; }

  // --- lifecycle (single-threaded call sites) ---
  /// `kind` is "campaign" or "beam"; `resumed` the records inherited from a
  /// prior store (0 for fresh / in-memory runs).
  void campaign_start(std::string_view kind, u64 seed, u64 total,
                      u64 resumed);
  /// The reference run's interval-checkpoint store was built. Emits one
  /// summary event plus per-snapshot ckpt_save records (event-sampled).
  void checkpoint_store_built(std::size_t count, u64 resident_bytes,
                              Cycle interval, double build_seconds,
                              const std::vector<Cycle>& cycles);
  void campaign_finish(const CampaignAggregate& agg, u64 executed,
                       double wall_seconds);

  // --- farm supervision (coordinator process; single-threaded, so these
  // use the registry's direct low-rate path, not a worker shard) ---
  void farm_worker_spawned(u32 slot, i64 pid, u32 generation);
  /// A worker process ended. `clean` means exit(0) after a Quit; anything
  /// else (signal, nonzero exit, corrupt shard stream) is a crash.
  void farm_worker_exited(u32 slot, i64 pid, bool clean, int detail);
  /// The supervisor SIGKILLed a worker for missing its watchdog deadline.
  /// `in_flight` is the campaign index its last heartbeat fingered.
  void farm_watchdog_kill(u32 slot, i64 pid, std::optional<u32> in_flight);
  void farm_shard_retry(u64 shard, u32 attempt, double backoff_seconds);
  /// Injection `index` accumulated K strikes and was recorded HarnessFatal.
  void farm_strikeout(u32 index, u32 strikes);
  /// A live worker went `gap_seconds` without committing a frame (longer
  /// than the warning threshold but short of the watchdog deadline).
  void farm_heartbeat_gap(u32 slot, double gap_seconds);

  /// Create the per-worker handles (and trace tracks) before the pool
  /// starts. Idempotent for the same `n`; references stay stable.
  void prepare_workers(u32 n);
  [[nodiscard]] WorkerTelemetry& worker(u32 tid) { return *workers_[tid]; }

  /// Fold every worker shard into the registry (idempotent: merged shards
  /// are zeroed). Called by campaign_finish; safe to call again.
  void merge_workers();

  // --- fleet view (cross-process aggregation) ---
  /// Keep the latest metrics snapshot a farm worker reported ('M' frame).
  /// Keyed by (slot, generation) so a replacement worker does not erase its
  /// crashed predecessor's final counts. Thread-safe.
  void note_worker_snapshot(u32 slot, u32 generation,
                            telemetry::MetricsSnapshot snap);
  /// This process's registry folded with the latest snapshot from every
  /// worker process ever observed: the fleet-wide view /metrics exposes.
  /// Does NOT touch live worker shards (those fold themselves at flush
  /// boundaries), so it is safe to call from any thread mid-campaign.
  /// Approximate under supervised retries: injections a crashed worker
  /// reported before dying are re-run (and re-counted) by its replacement.
  [[nodiscard]] telemetry::MetricsSnapshot fleet_snapshot() const;
  /// Worker processes that have reported at least one snapshot.
  [[nodiscard]] std::size_t fleet_workers() const;

  // --- live progress ---
  /// Outcome tally feed for records that arrive outside a WorkerTelemetry
  /// (the farm coordinator counting shard-store deliveries).
  void live_outcome_add(Outcome outcome) {
    live_outcomes_[static_cast<std::size_t>(outcome)].fetch_add(
        1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::array<u64, kNumOutcomes> live_outcome_counts() const;

  /// Give the progress line (and /metrics consumers) an early-stop target
  /// to render half-width progress against. Display-only.
  void set_stop_target(double confidence, double half_width);

  /// One-line status built from the registry's live tallies:
  /// "4312/10000 (1523 inj/s, ETA 4s) van 3900 corr 380 ... hw 0.013/0.020"
  /// — the trailing pair is the worst outcome-stratum Wilson half-width
  /// against the stop target (target omitted when none is set).
  [[nodiscard]] std::string progress_line(u64 done, u64 total, u64 executed,
                                          double wall_seconds) const;

  // --- outputs ---
  /// Merge outstanding shards and write the registry as JSON.
  void write_metrics(const std::string& path);
  void write_chrome_trace(const std::string& path) const;

  /// Microseconds since this telemetry object was created (event stamps).
  [[nodiscard]] u64 now_us() const;

 private:
  friend class WorkerTelemetry;

  TelemetryConfig cfg_;
  std::chrono::steady_clock::time_point epoch_;
  u64 start_us_ = 0;  ///< campaign_start stamp (campaign trace slice)
  telemetry::MetricsRegistry registry_;
  telemetry::EventLog events_;
  std::unique_ptr<telemetry::TraceCollector> trace_;
  telemetry::TraceTrack* main_track_ = nullptr;
  std::vector<std::unique_ptr<WorkerTelemetry>> workers_;

  /// Span plane (enable_span_plane): the process-wide book plus spans
  /// retained from other processes ('S' frames the coordinator delivered).
  std::unique_ptr<telemetry::SpanBook> span_book_;
  u64 span_campaign_start_us_ = 0;  ///< campaign root slice start
  mutable std::mutex span_mu_;      ///< guards retained_spans_
  std::vector<telemetry::SpanRecord> retained_spans_;

  // Well-known ids (registered once in the constructor).
  telemetry::CounterId c_injections_;
  telemetry::CounterId c_early_exits_;
  telemetry::CounterId c_recoveries_;
  telemetry::CounterId c_polls_;
  telemetry::CounterId c_ff_cycles_;
  telemetry::CounterId c_warm_restores_;
  telemetry::CounterId c_ckpt_materializations_;
  telemetry::CounterId c_shards_;
  telemetry::CounterId c_farm_spawned_;
  telemetry::CounterId c_farm_crashes_;
  telemetry::CounterId c_farm_watchdog_kills_;
  telemetry::CounterId c_farm_retries_;
  telemetry::CounterId c_farm_strikeouts_;
  telemetry::CounterId c_farm_hb_gaps_;
  std::array<telemetry::CounterId, kNumOutcomes> c_outcome_{};
  std::array<telemetry::HistogramId, kNumRunPhases> h_phase_{};
  telemetry::HistogramId h_injection_seconds_{};
  telemetry::HistogramId h_detect_latency_{};
  std::array<telemetry::HistogramId, netlist::kNumUnits> h_detect_unit_{};
  // Propagation forensics (only touched when footprint tracing is on).
  telemetry::CounterId c_footprints_;
  telemetry::CounterId c_fp_rerun_cycles_;
  telemetry::CounterId c_fp_samples_;
  telemetry::CounterId c_fp_masked_;
  telemetry::CounterId c_fp_reached_arch_;
  telemetry::CounterId c_fp_reached_mem_;
  telemetry::CounterId c_fp_truncated_;
  std::array<telemetry::CounterId, netlist::kNumUnits> c_fp_crossed_{};
  telemetry::HistogramId h_fp_peak_bits_{};
  telemetry::HistogramId h_fp_mask_latency_{};
  telemetry::HistogramId h_fp_seconds_{};
  telemetry::GaugeId g_wall_seconds_{};
  telemetry::GaugeId g_executed_{};
  telemetry::GaugeId g_resumed_{};
  telemetry::GaugeId g_total_{};
  telemetry::GaugeId g_ckpt_count_{};
  telemetry::GaugeId g_ckpt_bytes_{};
  telemetry::GaugeId g_ckpt_interval_{};

  /// Live outcome tallies for the progress line (relaxed atomics; the
  /// authoritative numbers are the merged registry counters).
  std::array<std::atomic<u64>, kNumOutcomes> live_outcomes_{};

  /// Latest per-worker-process snapshots ('M' frames), keyed
  /// (slot << 32) | generation. Guarded by fleet_mu_.
  mutable std::mutex fleet_mu_;
  std::map<u64, telemetry::MetricsSnapshot> worker_snapshots_;

  /// Early-stop target for display (0 target = none). Relaxed atomics:
  /// set once before workers start, read by the progress printer.
  std::atomic<double> target_half_width_{0.0};
  std::atomic<double> target_z_{0.0};
};

}  // namespace sfi::inject
