#include "sfi/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "sfi/aggregate.hpp"
#include "sfi/propagation.hpp"
#include "stats/intervals.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/json.hpp"

namespace sfi::inject {

namespace {

/// Power-of-two cycle-latency bounds: 1, 2, 4, ... 2^max_exp.
std::vector<double> pow2_buckets(u32 max_exp) {
  std::vector<double> bounds;
  bounds.reserve(max_exp + 1);
  double b = 1.0;
  for (u32 i = 0; i <= max_exp; ++i, b *= 2.0) bounds.push_back(b);
  return bounds;
}

u64 micros(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<u64>(seconds * 1e6);
}

}  // namespace

WorkerTelemetry::WorkerTelemetry(CampaignTelemetry& owner, u32 tid)
    : owner_(owner), tid_(tid), shard_(owner.registry_.make_shard()) {
  if (owner_.trace_) {
    track_ = &owner_.trace_->add_track("worker " + std::to_string(tid));
  }
  book_ = owner.span_book_.get();
}

void WorkerTelemetry::shard_begin(u64 shard, u64 injections) {
  if (track_ != nullptr) shard_start_us_ = owner_.trace_->now_us();
  if (book_ != nullptr) span_shard_start_us_ = book_->now_us();
  if (auto* log = owner_.events()) {
    telemetry::JsonWriter w;
    w.begin_object()
        .field("ev", "shard_dispatch")
        .field("t_us", owner_.now_us())
        .field("shard", shard)
        .field("worker", u64{tid_})
        .field("injections", injections)
        .end_object();
    log->emit(w.str());
  }
}

void WorkerTelemetry::shard_end(u64 shard, u64 executed) {
  shard_.add(owner_.c_shards_);
  if (track_ != nullptr) {
    const u64 now = owner_.trace_->now_us();
    telemetry::JsonWriter args;
    args.begin_object().field("shard", shard).field("executed", executed)
        .end_object();
    track_->slice("shard " + std::to_string(shard), "shard", shard_start_us_,
                  now - shard_start_us_, args.str());
  }
  if (book_ != nullptr) {
    const u64 now = book_->now_us();
    telemetry::JsonWriter args;
    args.begin_object().field("shard", shard).field("executed", executed)
        .end_object();
    book_->slice("shard " + std::to_string(shard), "shard",
                 span_shard_start_us_, now - span_shard_start_us_, 0,
                 args.str(), tid_);
  }
  if (auto* log = owner_.events()) {
    telemetry::JsonWriter w;
    w.begin_object()
        .field("ev", "shard_complete")
        .field("t_us", owner_.now_us())
        .field("shard", shard)
        .field("worker", u64{tid_})
        .field("executed", executed)
        .end_object();
    log->emit(w.str());
  }
}

void WorkerTelemetry::record_injection(u32 index, const InjectionRecord& rec,
                                       std::optional<Cycle> detect_latency) {
  const RunPhaseTimes& ph = phases_;
  CampaignTelemetry& o = owner_;

  // --- metrics (lock-free: private shard) ---
  shard_.add(o.c_injections_);
  if (rec.early_exited) shard_.add(o.c_early_exits_);
  shard_.add(o.c_recoveries_, rec.recoveries);
  shard_.add(o.c_polls_, ph.polls);
  shard_.add(o.c_ff_cycles_, ph.ff_cycles);
  if (ph.warm_restore) shard_.add(o.c_warm_restores_);
  if (ph.new_checkpoint) shard_.add(o.c_ckpt_materializations_);
  shard_.add(o.c_outcome_[static_cast<std::size_t>(rec.outcome)]);
  o.live_outcomes_[static_cast<std::size_t>(rec.outcome)].fetch_add(
      1, std::memory_order_relaxed);

  for (std::size_t p = 0; p < kNumRunPhases; ++p) {
    shard_.observe(o.h_phase_[p], ph.seconds[p]);
  }
  shard_.observe(o.h_injection_seconds_, ph.total_seconds());
  if (detect_latency) {
    const auto lat = static_cast<double>(*detect_latency);
    shard_.observe(o.h_detect_latency_, lat);
    shard_.observe(o.h_detect_unit_[static_cast<std::size_t>(rec.unit)], lat);
  }

  // --- event log (sampled) ---
  auto* log = o.events();
  if (log != nullptr && ph.new_checkpoint) {
    telemetry::JsonWriter& w = scratch_;
    w.clear();
    w.begin_object()
        .field("ev", "ckpt_restore")
        .field("t_us", o.now_us())
        .field("worker", u64{tid_})
        .field("cycle", ph.restore_cycle)
        .end_object();
    log->emit(w.str());
  }
  const u32 es = o.cfg_.event_sample;
  if (log != nullptr && es != 0 && index % es == 0) {
    telemetry::JsonWriter& w = scratch_;
    w.clear();
    w.begin_object()
        .field("ev", "injection")
        .field("t_us", o.now_us())
        .field("i", u64{index})
        .field("worker", u64{tid_})
        .field("cycle", rec.fault.cycle)
        .field("target",
               rec.fault.target == FaultTarget::Latch ? "latch" : "array")
        .field("ordinal", rec.fault.target == FaultTarget::Latch
                              ? u64{rec.fault.index}
                              : rec.fault.array_bit)
        .field("unit", netlist::to_string(rec.unit))
        .field("type", netlist::to_string(rec.type))
        .field("outcome", to_string(rec.outcome))
        .field("end_cycle", rec.end_cycle)
        .field("early_exit", rec.early_exited)
        .field("recoveries", u64{rec.recoveries});
    if (detect_latency) w.field("detect_latency", *detect_latency);
    w.key("phase_s").begin_object();
    for (std::size_t p = 0; p < kNumRunPhases; ++p) {
      w.field(to_string(static_cast<RunPhase>(p)), ph.seconds[p]);
    }
    w.end_object();
    w.field("polls", ph.polls).field("ff_cycles", ph.ff_cycles).end_object();
    log->emit(w.str());
  }

  // --- chrome trace (sampled per-injection phase slices) ---
  const u32 ss = o.cfg_.slice_sample;
  if (track_ != nullptr && ss != 0 && seq_ % ss == 0) {
    const u64 us_restore = micros(ph.seconds[0]);
    const u64 us_ff = micros(ph.seconds[1]);
    const u64 us_sim = micros(ph.seconds[2]);
    const u64 us_poll = micros(ph.seconds[3]);
    const u64 us_classify = micros(ph.seconds[4]);
    const u64 total = us_restore + us_ff + us_sim + us_poll + us_classify;
    const u64 end = o.trace_->now_us();
    const u64 start = end > total ? end - total : 0;

    telemetry::JsonWriter& args = scratch_;
    args.clear();
    args.begin_object()
        .field("i", u64{index})
        .field("fault_cycle", rec.fault.cycle)
        .field("end_cycle", rec.end_cycle)
        .end_object();
    track_->slice(std::string("inject → ") +
                      std::string(to_string(rec.outcome)),
                  "injection", start, total, args.str());
    u64 at = start;
    track_->slice("restore", "phase", at, us_restore);
    at += us_restore;
    track_->slice("fast-forward", "phase", at, us_ff);
    at += us_ff;
    // The loop span (sim + polls) with the aggregate poll time nested at
    // its start — polls are interleaved per-cycle, not contiguous.
    track_->slice("post-fault-sim", "phase", at, us_sim + us_poll);
    track_->slice("convergence-poll", "phase", at, us_poll);
    at += us_sim + us_poll;
    track_->slice("classify", "phase", at, us_classify);
  }

  // --- span plane (tail-latency exemplar policy) ---
  // Full phase slices for every injection would dominate the 5% budget, so
  // the policy keeps the ones worth looking at: anything over the moving
  // p99 is always recorded and tagged an exemplar with its record id
  // (`"i"`, the index `sfi explain` keys on); the rest sample 1-in-N.
  if (book_ != nullptr) {
    const u64 us_restore = micros(ph.seconds[0]);
    const u64 us_ff = micros(ph.seconds[1]);
    const u64 us_sim = micros(ph.seconds[2]);
    const u64 us_poll = micros(ph.seconds[3]);
    const u64 us_classify = micros(ph.seconds[4]);
    const u64 total = us_restore + us_ff + us_sim + us_poll + us_classify;
    const auto d = exemplar_.note(total);
    if (d.record) {
      const u64 end = book_->now_us();
      const u64 start = end > total ? end - total : 0;
      telemetry::JsonWriter& args = scratch_;
      args.clear();
      args.begin_object()
          .field("i", u64{index})
          .field("outcome", to_string(rec.outcome))
          .field("exemplar", d.exemplar)
          .end_object();
      const u64 parent = book_->slice(
          std::string("inject → ") + std::string(to_string(rec.outcome)),
          d.exemplar ? "injection.exemplar" : "injection", start, total, 0,
          args.str(), tid_);
      u64 at = start;
      book_->slice("restore", "phase", at, us_restore, parent, {}, tid_);
      at += us_restore;
      book_->slice("fast-forward", "phase", at, us_ff, parent, {}, tid_);
      at += us_ff;
      book_->slice("post-fault-sim", "phase", at, us_sim + us_poll, parent,
                   {}, tid_);
      at += us_sim + us_poll;
      book_->slice("classify", "phase", at, us_classify, parent, {}, tid_);
    }
  }
  ++seq_;
}

void WorkerTelemetry::record_footprint(u32 index,
                                       const PropagationRecord& rec,
                                       double seconds) {
  CampaignTelemetry& o = owner_;

  // --- metrics (lock-free: private shard) ---
  shard_.add(o.c_footprints_);
  shard_.add(o.c_fp_rerun_cycles_, rec.rerun_cycles);
  shard_.add(o.c_fp_samples_, rec.samples.size());
  if (rec.masked) {
    shard_.add(o.c_fp_masked_);
    shard_.observe(o.h_fp_mask_latency_, static_cast<double>(rec.masked_at));
  }
  if (rec.reached_arch) shard_.add(o.c_fp_reached_arch_);
  if (rec.reached_memory) shard_.add(o.c_fp_reached_mem_);
  if (rec.truncated) shard_.add(o.c_fp_truncated_);
  for (std::size_t u = 0; u < netlist::kNumUnits; ++u) {
    if (u == static_cast<std::size_t>(rec.unit)) continue;
    if (rec.first_corrupt[u] != kNeverCorrupted) shard_.add(o.c_fp_crossed_[u]);
  }
  shard_.observe(o.h_fp_peak_bits_, static_cast<double>(rec.peak_bits));
  shard_.observe(o.h_fp_seconds_, seconds);

  // --- event log (same sampling policy as per-injection records) ---
  auto* log = o.events();
  const u32 es = o.cfg_.event_sample;
  if (log != nullptr && es != 0 && index % es == 0) {
    telemetry::JsonWriter& w = scratch_;
    w.clear();
    w.begin_object()
        .field("ev", "propagation")
        .field("t_us", o.now_us())
        .field("i", u64{rec.index})
        .field("worker", u64{tid_})
        .field("unit", netlist::to_string(rec.unit))
        .field("type", netlist::to_string(rec.type))
        .field("outcome", to_string(rec.outcome))
        .field("peak_bits", u64{rec.peak_bits})
        .field("rerun_cycles", u64{rec.rerun_cycles})
        .field("masked", rec.masked);
    if (rec.masked) w.field("masked_at", rec.masked_at);
    if (rec.detected) w.field("detected_at", rec.detected_at);
    w.field("reached_arch", rec.reached_arch)
        .field("reached_memory", rec.reached_memory)
        .field("truncated", rec.truncated);
    if (rec.checker_fired) {
      w.field("checker", core::checker_name(rec.checker))
          .field("checker_fatal", rec.checker_fatal);
    }
    w.key("samples").begin_array();
    for (const FootprintSample& s : rec.samples) {
      w.begin_array().value(u64{s.offset}).value(u64{s.total_bits}).end_array();
    }
    w.end_array().end_object();
    log->emit(w.str());
  }

  // --- chrome trace (footprint slice + per-sample instants) ---
  const u32 ss = o.cfg_.slice_sample;
  if (track_ != nullptr && ss != 0 && seq_ % ss == 0) {
    const u64 dur = micros(seconds);
    const u64 end = o.trace_->now_us();
    const u64 start = end > dur ? end - dur : 0;
    telemetry::JsonWriter& args = scratch_;
    args.clear();
    args.begin_object()
        .field("i", u64{rec.index})
        .field("peak_bits", u64{rec.peak_bits})
        .field("outcome", to_string(rec.outcome))
        .end_object();
    track_->slice(std::string("footprint ") +
                      std::string(netlist::to_string(rec.unit)),
                  "footprint", start, dur, args.str());
    // Place sample instants proportionally over the slice so the infection
    // curve is visible on the timeline.
    const u32 span = rec.samples.empty() ? 1 : rec.samples.back().offset;
    for (const FootprintSample& s : rec.samples) {
      telemetry::JsonWriter sa;
      sa.begin_object()
          .field("offset", u64{s.offset})
          .field("bits", u64{s.total_bits})
          .end_object();
      const u64 at =
          span == 0 ? start : start + dur * s.offset / std::max<u32>(1, span);
      track_->instant("+" + std::to_string(s.offset) + "c: " +
                          std::to_string(s.total_bits) + "b",
                      "footprint", at, sa.str());
    }
  }
}

CampaignTelemetry::CampaignTelemetry(TelemetryConfig cfg)
    : cfg_(cfg), epoch_(std::chrono::steady_clock::now()) {
  c_injections_ = registry_.counter("injections");
  c_early_exits_ = registry_.counter("early_exits");
  c_recoveries_ = registry_.counter("recoveries");
  c_polls_ = registry_.counter("convergence_polls");
  c_ff_cycles_ = registry_.counter("fast_forward_cycles");
  c_warm_restores_ = registry_.counter("warm_restores");
  c_ckpt_materializations_ = registry_.counter("ckpt_materializations");
  c_shards_ = registry_.counter("shards_completed");
  c_farm_spawned_ = registry_.counter("farm.workers_spawned");
  c_farm_crashes_ = registry_.counter("farm.worker_crashes");
  c_farm_watchdog_kills_ = registry_.counter("farm.watchdog_kills");
  c_farm_retries_ = registry_.counter("farm.shard_retries");
  c_farm_strikeouts_ = registry_.counter("farm.strikeouts");
  c_farm_hb_gaps_ = registry_.counter("farm.heartbeat_gaps");
  for (std::size_t i = 0; i < kNumOutcomes; ++i) {
    c_outcome_[i] = registry_.counter(
        "outcome." + std::string(to_string(kAllOutcomes[i])));
  }
  const std::vector<double> secs = telemetry::exp_buckets(1e-6, 10.0, 3);
  for (std::size_t p = 0; p < kNumRunPhases; ++p) {
    h_phase_[p] = registry_.histogram(
        "phase_seconds." + std::string(to_string(static_cast<RunPhase>(p))),
        secs);
  }
  h_injection_seconds_ = registry_.histogram("injection_seconds", secs);
  const std::vector<double> cyc = pow2_buckets(17);  // 1 .. 128k cycles
  h_detect_latency_ = registry_.histogram("detect_latency_cycles", cyc);
  for (const auto u : netlist::kAllUnits) {
    h_detect_unit_[static_cast<std::size_t>(u)] = registry_.histogram(
        "detect_latency_cycles." + std::string(netlist::to_string(u)), cyc);
  }
  c_footprints_ = registry_.counter("footprint.traced");
  c_fp_rerun_cycles_ = registry_.counter("footprint.rerun_cycles");
  c_fp_samples_ = registry_.counter("footprint.samples");
  c_fp_masked_ = registry_.counter("footprint.masked");
  c_fp_reached_arch_ = registry_.counter("footprint.reached_arch");
  c_fp_reached_mem_ = registry_.counter("footprint.reached_memory");
  c_fp_truncated_ = registry_.counter("footprint.truncated");
  for (const auto u : netlist::kAllUnits) {
    c_fp_crossed_[static_cast<std::size_t>(u)] = registry_.counter(
        "footprint.crossed." + std::string(netlist::to_string(u)));
  }
  h_fp_peak_bits_ = registry_.histogram("footprint.peak_bits",
                                        pow2_buckets(12));  // 1 .. 4k bits
  h_fp_mask_latency_ = registry_.histogram("footprint.mask_latency_cycles",
                                           cyc);
  h_fp_seconds_ = registry_.histogram("footprint.rerun_seconds", secs);
  g_wall_seconds_ = registry_.gauge("wall_seconds");
  g_executed_ = registry_.gauge("executed");
  g_resumed_ = registry_.gauge("resumed");
  g_total_ = registry_.gauge("total_injections");
  g_ckpt_count_ = registry_.gauge("ckpt.count");
  g_ckpt_bytes_ = registry_.gauge("ckpt.resident_bytes");
  g_ckpt_interval_ = registry_.gauge("ckpt.interval_cycles");
}

CampaignTelemetry::~CampaignTelemetry() = default;

u64 CampaignTelemetry::now_us() const {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - epoch_)
                              .count());
}

void CampaignTelemetry::open_event_log(const std::string& path) {
  events_.open(path);
}

void CampaignTelemetry::enable_chrome_trace() {
  if (trace_) return;
  trace_ = std::make_unique<telemetry::TraceCollector>("sfi");
  main_track_ = &trace_->add_track("scheduler");
}

void CampaignTelemetry::enable_span_plane(std::string process_name,
                                          u64 trace_id) {
  if (!span_book_) {
    span_book_ =
        std::make_unique<telemetry::SpanBook>(std::move(process_name));
    span_campaign_start_us_ = span_book_->wall_epoch_us();
    // Late enablement: handles made before the plane was on pick up the
    // book here (prepare_workers is idempotent and keeps references).
    for (const auto& w : workers_) w->book_ = span_book_.get();
  } else if (!process_name.empty()) {
    span_book_->set_process_name(std::move(process_name));
  }
  if (trace_id != 0) span_book_->set_trace_id(trace_id);
}

void CampaignTelemetry::retain_spans(
    const std::vector<telemetry::SpanRecord>& spans) {
  // Cap: keep the oldest — campaign lifecycle and dispatch spans land
  // early; a runaway tail of per-injection slices is the droppable part.
  constexpr std::size_t kMaxRetained = 200'000;
  const std::lock_guard<std::mutex> lock(span_mu_);
  for (const telemetry::SpanRecord& s : spans) {
    if (retained_spans_.size() >= kMaxRetained) break;
    retained_spans_.push_back(s);
  }
}

std::vector<telemetry::SpanRecord> CampaignTelemetry::all_spans() const {
  std::vector<telemetry::SpanRecord> out;
  if (span_book_) out = span_book_->snapshot();
  const std::lock_guard<std::mutex> lock(span_mu_);
  out.insert(out.end(), retained_spans_.begin(), retained_spans_.end());
  return out;
}

std::string CampaignTelemetry::trace_chrome_json() const {
  return telemetry::spans_to_chrome_json(all_spans());
}

namespace {

/// `"ev":"..."` extraction from a flight-recorder line (machine-written
/// JSONL; a miss degrades to a generic name, never an error).
std::string_view event_name_of(std::string_view line) {
  const auto key = line.find("\"ev\":\"");
  if (key == std::string_view::npos) return "event";
  const auto begin = key + 6;
  const auto end = line.find('"', begin);
  if (end == std::string_view::npos) return "event";
  return line.substr(begin, end - begin);
}

}  // namespace

void CampaignTelemetry::flight_recorder_tail_to_spans(
    std::string_view reason) {
  if (!span_book_) return;
  auto& recorder = telemetry::FlightRecorder::global();
  if (!recorder.enabled()) return;
  // Lines are stamped on this telemetry's steady clock ("t_us"); the book
  // shares the process, so the wall offset between the two clocks is exact.
  const u64 wall_offset = span_book_->now_us() - now_us();
  telemetry::JsonWriter name;
  for (const std::string& line : recorder.snapshot()) {
    const auto t = line.find("\"t_us\":");
    u64 t_us = 0;
    if (t != std::string::npos) {
      for (std::size_t i = t + 7; i < line.size(); ++i) {
        const char c = line[i];
        if (c < '0' || c > '9') break;
        t_us = t_us * 10 + static_cast<u64>(c - '0');
      }
    }
    name.clear();
    name.begin_object().field("reason", reason).field("line", line)
        .end_object();
    span_book_->instant(std::string(event_name_of(line)), "flight_recorder",
                        t_us + wall_offset, 0, name.str());
  }
}

void CampaignTelemetry::campaign_start(std::string_view kind, u64 seed,
                                       u64 total, u64 resumed) {
  start_us_ = now_us();
  registry_.set_gauge(g_total_, static_cast<double>(total));
  registry_.set_gauge(g_resumed_, static_cast<double>(resumed));
  if (span_book_) {
    span_campaign_start_us_ = span_book_->now_us();
    telemetry::JsonWriter args;
    args.begin_object()
        .field("kind", kind)
        .field("seed", seed)
        .field("total", total)
        .field("resumed", resumed)
        .end_object();
    span_book_->instant("campaign start", "lifecycle",
                        span_campaign_start_us_, 0, args.str());
  }
  if (auto* log = events()) {
    telemetry::JsonWriter w;
    w.begin_object()
        .field("ev", "campaign_start")
        .field("t_us", start_us_)
        .field("kind", kind)
        .field("seed", seed)
        .field("total", total)
        .field("resumed", resumed)
        .end_object();
    log->emit(w.str());
  }
}

void CampaignTelemetry::checkpoint_store_built(
    std::size_t count, u64 resident_bytes, Cycle interval,
    double build_seconds, const std::vector<Cycle>& cycles) {
  registry_.set_gauge(g_ckpt_count_, static_cast<double>(count));
  registry_.set_gauge(g_ckpt_bytes_, static_cast<double>(resident_bytes));
  registry_.set_gauge(g_ckpt_interval_, static_cast<double>(interval));
  if (auto* log = events()) {
    telemetry::JsonWriter w;
    w.begin_object()
        .field("ev", "ckpt_store")
        .field("t_us", now_us())
        .field("count", u64{count})
        .field("resident_bytes", resident_bytes)
        .field("interval", interval)
        .field("build_seconds", build_seconds)
        .end_object();
    log->emit(w.str());
    const u32 es = cfg_.event_sample == 0 ? 1 : cfg_.event_sample;
    for (std::size_t i = 0; i < cycles.size(); i += es) {
      telemetry::JsonWriter s;
      s.begin_object()
          .field("ev", "ckpt_save")
          .field("t_us", now_us())
          .field("index", u64{i})
          .field("cycle", cycles[i])
          .end_object();
      log->emit(s.str());
    }
  }
  if (main_track_ != nullptr) {
    const u64 end = trace_->now_us();
    const u64 dur = micros(build_seconds);
    main_track_->slice("build checkpoint store", "plan",
                       end > dur ? end - dur : 0, dur);
  }
}

void CampaignTelemetry::campaign_finish(const CampaignAggregate& agg,
                                        u64 executed, double wall_seconds) {
  merge_workers();
  registry_.set_gauge(g_wall_seconds_, wall_seconds);
  registry_.set_gauge(g_executed_, static_cast<double>(executed));
  if (auto* log = events()) {
    telemetry::JsonWriter w;
    w.begin_object()
        .field("ev", "campaign_finish")
        .field("t_us", now_us())
        .field("executed", executed)
        .field("wall_seconds", wall_seconds);
    w.key("outcomes").begin_object();
    for (const auto o : kAllOutcomes) {
      w.field(to_string(o), agg.counts.of(o));
    }
    w.end_object().end_object();
    log->emit(w.str());
    log->flush();
  }
  if (main_track_ != nullptr) {
    const u64 end = trace_->now_us();
    main_track_->slice("campaign", "campaign", start_us_,
                       end > start_us_ ? end - start_us_ : 0);
  }
  if (span_book_) {
    const u64 end = span_book_->now_us();
    telemetry::JsonWriter args;
    args.begin_object()
        .field("executed", executed)
        .field("wall_seconds", wall_seconds)
        .end_object();
    span_book_->slice("campaign", "lifecycle", span_campaign_start_us_,
                      end > span_campaign_start_us_
                          ? end - span_campaign_start_us_
                          : 0,
                      0, args.str());
  }
}

namespace {

/// Shared shape of the farm lifecycle events: {"ev": ..., "t_us": ...} plus
/// caller-specific fields appended by `extra`.
template <typename Fn>
void emit_farm_event(telemetry::EventLog* log, u64 t_us, std::string_view ev,
                     Fn&& extra) {
  // Without an event log the line still goes to the crash flight recorder
  // (when one is enabled): farm supervision events are exactly the context
  // a postmortem needs. EventLog::emit tees on its own, so the direct
  // note() only runs on the log-less path.
  auto& recorder = telemetry::FlightRecorder::global();
  if (log == nullptr && !recorder.enabled()) return;
  telemetry::JsonWriter w;
  w.begin_object().field("ev", ev).field("t_us", t_us);
  extra(w);
  w.end_object();
  if (log != nullptr) {
    log->emit(w.str());
  } else {
    recorder.note(w.str());
  }
}

}  // namespace

void CampaignTelemetry::farm_worker_spawned(u32 slot, i64 pid,
                                            u32 generation) {
  registry_.add(c_farm_spawned_);
  emit_farm_event(events(), now_us(), "farm_spawn", [&](auto& w) {
    w.field("slot", static_cast<u64>(slot))
        .field("pid", pid)
        .field("generation", static_cast<u64>(generation));
  });
  if (span_book_) {
    telemetry::JsonWriter args;
    args.begin_object()
        .field("slot", static_cast<u64>(slot))
        .field("pid", pid)
        .field("generation", static_cast<u64>(generation))
        .end_object();
    span_book_->instant("spawn worker " + std::to_string(slot), "farm",
                        span_book_->now_us(), 0, args.str());
  }
}

void CampaignTelemetry::farm_worker_exited(u32 slot, i64 pid, bool clean,
                                           int detail) {
  if (!clean) registry_.add(c_farm_crashes_);
  emit_farm_event(events(), now_us(), "farm_exit", [&](auto& w) {
    w.field("slot", static_cast<u64>(slot))
        .field("pid", pid)
        .field("clean", clean)
        .field("detail", static_cast<i64>(detail));
  });
  if (span_book_) {
    telemetry::JsonWriter args;
    args.begin_object()
        .field("slot", static_cast<u64>(slot))
        .field("pid", pid)
        .field("clean", clean)
        .field("detail", static_cast<i64>(detail))
        .end_object();
    span_book_->instant(
        std::string(clean ? "worker exit " : "worker crash ") +
            std::to_string(slot),
        "farm", span_book_->now_us(), 0, args.str());
  }
}

void CampaignTelemetry::farm_watchdog_kill(u32 slot, i64 pid,
                                           std::optional<u32> in_flight) {
  registry_.add(c_farm_watchdog_kills_);
  emit_farm_event(events(), now_us(), "farm_watchdog_kill", [&](auto& w) {
    w.field("slot", static_cast<u64>(slot)).field("pid", pid);
    if (in_flight) w.field("in_flight", static_cast<u64>(*in_flight));
  });
  if (span_book_) {
    telemetry::JsonWriter args;
    args.begin_object().field("slot", static_cast<u64>(slot)).field("pid",
                                                                    pid);
    if (in_flight) args.field("in_flight", static_cast<u64>(*in_flight));
    args.end_object();
    span_book_->instant("watchdog kill " + std::to_string(slot), "farm",
                        span_book_->now_us(), 0, args.str());
  }
}

void CampaignTelemetry::farm_shard_retry(u64 shard, u32 attempt,
                                         double backoff_seconds) {
  registry_.add(c_farm_retries_);
  emit_farm_event(events(), now_us(), "farm_retry", [&](auto& w) {
    w.field("shard", shard)
        .field("attempt", static_cast<u64>(attempt))
        .field("backoff_seconds", backoff_seconds);
  });
  if (span_book_) {
    telemetry::JsonWriter args;
    args.begin_object()
        .field("shard", shard)
        .field("attempt", static_cast<u64>(attempt))
        .field("backoff_seconds", backoff_seconds)
        .end_object();
    // The backoff window is a real slice of campaign wall time: dispatch of
    // this shard is deferred until the slice's right edge.
    span_book_->slice("retry shard " + std::to_string(shard) + " backoff",
                      "farm.retry", span_book_->now_us(),
                      micros(backoff_seconds), 0, args.str());
  }
}

void CampaignTelemetry::farm_strikeout(u32 index, u32 strikes) {
  registry_.add(c_farm_strikeouts_);
  emit_farm_event(events(), now_us(), "farm_strikeout", [&](auto& w) {
    w.field("index", static_cast<u64>(index))
        .field("strikes", static_cast<u64>(strikes));
  });
  if (span_book_) {
    telemetry::JsonWriter args;
    args.begin_object()
        .field("i", static_cast<u64>(index))
        .field("strikes", static_cast<u64>(strikes))
        .end_object();
    span_book_->instant("strikeout i=" + std::to_string(index), "farm",
                        span_book_->now_us(), 0, args.str());
  }
}

void CampaignTelemetry::farm_heartbeat_gap(u32 slot, double gap_seconds) {
  registry_.add(c_farm_hb_gaps_);
  emit_farm_event(events(), now_us(), "farm_heartbeat_gap", [&](auto& w) {
    w.field("slot", static_cast<u64>(slot))
        .field("gap_seconds", gap_seconds);
  });
}

void CampaignTelemetry::prepare_workers(u32 n) {
  while (workers_.size() < n) {
    const u32 tid = static_cast<u32>(workers_.size());
    workers_.push_back(
        std::unique_ptr<WorkerTelemetry>(new WorkerTelemetry(*this, tid)));
  }
}

void CampaignTelemetry::merge_workers() {
  for (const auto& w : workers_) registry_.merge(w->shard_);
}

void WorkerTelemetry::fold() { owner_.registry_.merge(shard_); }

void CampaignTelemetry::note_worker_snapshot(u32 slot, u32 generation,
                                             telemetry::MetricsSnapshot snap) {
  const u64 key = (static_cast<u64>(slot) << 32) | generation;
  const std::lock_guard<std::mutex> lock(fleet_mu_);
  worker_snapshots_[key] = std::move(snap);
}

telemetry::MetricsSnapshot CampaignTelemetry::fleet_snapshot() const {
  telemetry::MetricsSnapshot fleet = registry_.snapshot();
  const std::lock_guard<std::mutex> lock(fleet_mu_);
  for (const auto& [key, snap] : worker_snapshots_) {
    fleet.merge_from(snap);
  }
  return fleet;
}

std::size_t CampaignTelemetry::fleet_workers() const {
  const std::lock_guard<std::mutex> lock(fleet_mu_);
  return worker_snapshots_.size();
}

std::array<u64, kNumOutcomes> CampaignTelemetry::live_outcome_counts() const {
  std::array<u64, kNumOutcomes> counts{};
  for (std::size_t i = 0; i < kNumOutcomes; ++i) {
    counts[i] = live_outcomes_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void CampaignTelemetry::set_stop_target(double confidence,
                                        double half_width) {
  target_half_width_.store(half_width, std::memory_order_relaxed);
  target_z_.store(stats::z_for_confidence(confidence),
                  std::memory_order_relaxed);
}

std::string CampaignTelemetry::progress_line(u64 done, u64 total,
                                             u64 executed,
                                             double wall_seconds) const {
  const double rate =
      wall_seconds > 0.0 ? static_cast<double>(executed) / wall_seconds : 0.0;
  std::string line = std::to_string(done) + "/" + std::to_string(total);
  char buf[64];
  // Guard the live line against degenerate rates: before the first
  // completion (done == 0, executed == 0) or with a zero/denormal wall
  // clock the division yields 0, inf or nan — print placeholders instead of
  // leaking them into the terminal.
  if (rate > 0.0 && std::isfinite(rate) && done <= total) {
    const double remaining = static_cast<double>(total - done) / rate;
    std::snprintf(buf, sizeof buf, " (%.0f inj/s, ETA %.0fs)", rate,
                  remaining);
    line += buf;
  } else {
    line += " (-- inj/s, ETA --)";
  }
  static constexpr std::array<std::string_view, kNumOutcomes> kShort = {
      "van", "corr", "hang", "cstop", "sdc", "hfatal"};
  u64 tally_total = 0;
  for (std::size_t i = 0; i < kNumOutcomes; ++i) {
    const u64 n = live_outcomes_[i].load(std::memory_order_relaxed);
    tally_total += n;
    line += " ";
    line += kShort[i];
    line += " ";
    line += std::to_string(n);
  }
  // Live early-stop state: the worst (widest) outcome-stratum Wilson
  // half-width so far, against the stop target when one is set — the same
  // statistic the daemon stops campaigns on, visible while it converges.
  const double target = target_half_width_.load(std::memory_order_relaxed);
  double z = target_z_.load(std::memory_order_relaxed);
  if (z <= 0.0) z = stats::z_for_confidence(stats::kDefaultConfidence);
  if (tally_total > 0) {
    double worst = 0.0;
    for (std::size_t i = 0; i < kNumOutcomes; ++i) {
      const u64 n = live_outcomes_[i].load(std::memory_order_relaxed);
      const stats::Interval iv = stats::wilson(n, tally_total, z);
      worst = std::max(worst, iv.width() / 2.0);
    }
    std::snprintf(buf, sizeof buf, " hw %.4f", worst);
    line += buf;
    if (target > 0.0) {
      std::snprintf(buf, sizeof buf, "/%.4f", target);
      line += buf;
    }
  } else {
    line += " hw --";
  }
  return line;
}

void CampaignTelemetry::write_metrics(const std::string& path) {
  merge_workers();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open metrics output " + path);
  const std::string json = registry_.to_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.put('\n');
}

void CampaignTelemetry::write_chrome_trace(const std::string& path) const {
  if (!trace_) {
    throw std::runtime_error(
        "chrome trace was not enabled for this campaign");
  }
  trace_->write(path);
}

}  // namespace sfi::inject
