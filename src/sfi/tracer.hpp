// Cause→effect tracing (the paper's third headline capability: "tracing of
// system errors (effect) to the originating bit flip (cause) in a
// full-system environment").
//
// A traced injection re-runs one fault with a cycle observer attached and
// records every checker fire, recovery start/completion, checkstop and hang
// with its cycle — yielding the full causal chain from the flipped latch to
// the machine-level outcome.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sfi/runner.hpp"

namespace sfi::inject {

struct TraceEvent {
  enum class Kind : u8 {
    CheckerFired,
    RecoveryStarted,
    RecoveryCompleted,
    EccCorrected,
    Checkstop,
    Hang,
  };
  Kind kind = Kind::CheckerFired;
  Cycle cycle = 0;
  netlist::Unit unit = netlist::Unit::Core;
  core::CheckerId checker{};
  bool fatal = false;
  std::string what;
};

[[nodiscard]] std::string_view to_string(TraceEvent::Kind k);

struct InjectionTrace {
  FaultSpec fault;
  std::string latch_name;
  netlist::Unit unit = netlist::Unit::Core;
  netlist::LatchType type = netlist::LatchType::Func;
  std::vector<TraceEvent> events;
  RunResult result;

  [[nodiscard]] bool detected() const { return !events.empty(); }
  /// Cycles from injection to the first RAS event (the paper's detection
  /// latency). nullopt when the fault produced no RAS event at all — that is
  /// distinct from a latency of 0 (detected in the injection cycle itself),
  /// which the old `0 means undetected` encoding conflated.
  [[nodiscard]] std::optional<Cycle> detection_latency() const {
    if (events.empty()) return std::nullopt;
    return events.front().cycle - fault.cycle;
  }
};

/// Run one injection with tracing. Same harness objects as InjectionRunner;
/// the observer is attached for the duration of the run only.
[[nodiscard]] InjectionTrace trace_injection(
    core::Pearl6Model& model, emu::Emulator& emu,
    const emu::Checkpoint& reset_checkpoint, const emu::GoldenTrace& trace,
    const avp::GoldenResult& golden, const FaultSpec& fault,
    RunConfig cfg = {});

/// Human-readable rendering of a trace (used by the quickstart example).
[[nodiscard]] std::string format_trace(const InjectionTrace& trace);

}  // namespace sfi::inject
