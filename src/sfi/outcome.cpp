#include "sfi/outcome.hpp"

namespace sfi::inject {

void OutcomeCounts::merge(const OutcomeCounts& other) {
  for (std::size_t i = 0; i < kNumOutcomes; ++i) counts[i] += other.counts[i];
}

u64 OutcomeCounts::total() const {
  u64 t = 0;
  for (const u64 c : counts) t += c;
  return t;
}

double OutcomeCounts::fraction(Outcome o) const {
  const u64 t = total();
  return t == 0 ? 0.0
               : static_cast<double>(of(o)) / static_cast<double>(t);
}

stats::Interval OutcomeCounts::interval(Outcome o) const {
  return interval(o, stats::z_for_confidence(stats::kDefaultConfidence));
}

stats::Interval OutcomeCounts::interval(Outcome o, double z) const {
  const u64 t = total();
  if (t == 0) return {};
  return stats::wilson(of(o), t, z);
}

}  // namespace sfi::inject
