// Fault specifications: what to flip, when, and for how long.
#pragma once

#include "common/types.hpp"

namespace sfi::inject {

/// Where the flip lands.
enum class FaultTarget : u8 {
  Latch,       ///< an injectable latch ordinal (SFI's target space)
  ArrayCell,   ///< a protected-array storage bit (beam strikes reach these)
};

/// Temporal model (paper §2: "the fault may exist for the duration of a
/// cycle (toggle mode) or for a larger number of cycles (sticky mode)").
enum class FaultMode : u8 { Toggle, Sticky };

struct FaultSpec {
  FaultTarget target = FaultTarget::Latch;
  u32 index = 0;        ///< latch ordinal, or global array storage bit
  u64 array_bit = 0;    ///< used when target == ArrayCell
  Cycle cycle = 0;      ///< injection cycle (machine cycles from reset)
  FaultMode mode = FaultMode::Toggle;
  Cycle sticky_duration = 0;  ///< cycles the value is forced (Sticky only)
  bool sticky_value = true;   ///< level forced in sticky mode
  /// Multi-bit upset extension: number of *adjacent* bits upset by one
  /// strike (1 = the paper's single-event model). Clamped to the target
  /// structure's bounds by the runner.
  u8 adjacent_bits = 1;
};

}  // namespace sfi::inject
