#include "sfi/derating.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace sfi::inject {

namespace {

double frac(u64 part, u64 whole) {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace

DeratingReport compute_derating(const CampaignResult& campaign,
                                const netlist::LatchRegistry& registry,
                                const DeratingConfig& config) {
  require(campaign.counts().total() > 0, "derating needs campaign results");
  require(config.raw_fit_per_latch > 0.0, "raw FIT must be positive");

  DeratingReport rep;
  const u64 total = campaign.counts().total();
  const u64 vanished = campaign.counts().of(Outcome::Vanished);
  const u64 corrected = campaign.counts().of(Outcome::Corrected);
  const u64 severe = campaign.counts().of(Outcome::Hang) +
                     campaign.counts().of(Outcome::Checkstop) +
                     campaign.counts().of(Outcome::BadArchState);
  rep.overall_derating = frac(vanished + corrected, total);
  rep.recovered_fraction = frac(corrected, total);
  rep.severe_fraction = frac(severe, total);
  rep.sdc_fraction = frac(campaign.counts().of(Outcome::BadArchState), total);

  const auto unit_counts = registry.latch_count_by_unit();
  u64 latch_total = 0;
  for (const u32 c : unit_counts) latch_total += c;
  rep.raw_fit = static_cast<double>(latch_total) * config.raw_fit_per_latch;
  rep.sdc_fit = rep.raw_fit * rep.sdc_fraction;
  rep.unrecoverable_fit =
      rep.raw_fit * (frac(campaign.counts().of(Outcome::Hang), total) +
                     frac(campaign.counts().of(Outcome::Checkstop), total));
  rep.recovered_fit = rep.raw_fit * rep.recovered_fraction;

  for (const auto unit : netlist::kAllUnits) {
    const auto idx = static_cast<std::size_t>(unit);
    const OutcomeCounts& c = campaign.agg.by_unit[idx];
    UnitDerating u;
    u.unit = unit;
    u.latch_bits = unit_counts[idx];
    u.flips = c.total();
    if (u.flips > 0) {
      u.derating = c.fraction(Outcome::Vanished) + c.fraction(Outcome::Corrected);
      u.severe_rate = c.fraction(Outcome::Hang) +
                      c.fraction(Outcome::Checkstop) +
                      c.fraction(Outcome::BadArchState);
      u.sdc_rate = c.fraction(Outcome::BadArchState);
    }
    u.severe_fit = static_cast<double>(u.latch_bits) *
                   config.raw_fit_per_latch * u.severe_rate;
    rep.by_unit.push_back(u);
  }
  std::sort(rep.by_unit.begin(), rep.by_unit.end(),
            [](const UnitDerating& a, const UnitDerating& b) {
              return a.severe_fit > b.severe_fit;
            });

  for (const auto type : netlist::kAllLatchTypes) {
    const auto idx = static_cast<std::size_t>(type);
    const OutcomeCounts& c = campaign.agg.by_type[idx];
    if (c.total() > 0) {
      rep.derating_by_type[idx] =
          c.fraction(Outcome::Vanished) + c.fraction(Outcome::Corrected);
    }
  }
  return rep;
}

std::string DeratingReport::summary() const {
  std::ostringstream os;
  os.precision(4);
  os << "overall derating (no uncorrected effect): "
     << overall_derating * 100.0 << "%\n";
  os << "recovered: " << recovered_fraction * 100.0
     << "%  severe: " << severe_fraction * 100.0
     << "%  SDC: " << sdc_fraction * 100.0 << "%\n";
  os << "chip FIT — raw latch: " << raw_fit << ", SDC: " << sdc_fit
     << ", unrecoverable stop: " << unrecoverable_fit
     << ", recovered (harmless): " << recovered_fit << "\n";
  os << "hardening priority (severe FIT, descending):";
  for (const UnitDerating& u : by_unit) {
    os << " " << netlist::to_string(u.unit) << "=" << u.severe_fit;
  }
  os << "\n";
  return os.str();
}

}  // namespace sfi::inject
