// InjectionRunner: executes one fault-injection experiment end to end.
//
// Per injection (paper Figure 1): reload the checkpoint, clock to the
// injection cycle, flip the chosen bit, clock onward while watching the
// RAS status, and classify. Three accelerations make software campaigns
// practical: (1) the post-reset machine state is snapshotted once and
// reloaded per injection, (2) with an interval-checkpoint store the runner
// warm-starts from the nearest reference snapshot at or before the fault
// cycle instead of replaying from cycle 0, (3) an injected run whose
// functional-state hash re-matches the fault-free trace at the same cycle —
// with a clean RAS window — is classified Vanished immediately.
#pragma once

#include <functional>
#include <optional>

#include "avp/runner.hpp"
#include "core/core_model.hpp"
#include "emu/checkpoint_store.hpp"
#include "emu/emulator.hpp"
#include "emu/golden_trace.hpp"
#include "sfi/fault.hpp"
#include "sfi/outcome.hpp"

namespace sfi::inject {

struct RunPhaseTimes;  // sfi/telemetry.hpp

struct RunConfig {
  /// Extra cycles allowed past the fault-free completion cycle before the
  /// harness declares a hang (covers recovery latency: flush + restore).
  Cycle hang_margin = 2000;
  /// Hard cap on post-injection cycles (the paper clocks 500k; outcomes for
  /// this design saturate far earlier — see bench/ablation_horizon).
  Cycle horizon = 50000;
  /// Enable the golden-trace hash early exit.
  bool early_exit = true;
};

struct RunResult {
  Outcome outcome = Outcome::Vanished;
  Cycle end_cycle = 0;         ///< cycle the run was classified at
  bool early_exited = false;   ///< vanished via golden-hash convergence
  u32 recoveries = 0;
  u32 corrected = 0;
  std::string first_diff;      ///< arch-state diff for BadArchState
  /// First cycle the machine's RAS visibly reacted to the fault (checker
  /// fire, recovery, correction, checkstop or hang) — the paper's
  /// cause→effect detection latency is `*detected_cycle - fault.cycle`.
  /// nullopt: the fault was never detected (vanished or silent corruption).
  std::optional<Cycle> detected_cycle;
};

class InjectionRunner {
 public:
  /// All references (and `checkpoints`, when given) must outlive the
  /// runner. `reset_checkpoint` must be the post-reset machine snapshot for
  /// the same workload the trace/golden describe. With a non-null
  /// `checkpoints` store (built from the same reference execution), runs
  /// warm-start from the nearest snapshot at or before the fault cycle.
  InjectionRunner(core::Pearl6Model& model, emu::Emulator& emu,
                  const emu::Checkpoint& reset_checkpoint,
                  const emu::GoldenTrace& trace,
                  const avp::GoldenResult& golden, RunConfig cfg = {},
                  const emu::CheckpointStore* checkpoints = nullptr);

  /// Run one injection experiment and classify its outcome. With a non-null
  /// `phases` the runner additionally reports per-phase wall times into it
  /// (telemetry out-param only — never read back, so results are identical
  /// with or without it; nullptr costs one predicted branch per phase).
  /// With a non-null `prefault` the fault-free machine state at the
  /// injection cycle is snapshotted into it (in place, allocation-free after
  /// the first call) just before the flip — the infection tracker's deferred
  /// re-run restores it instead of re-seeking, so forensics never pay the
  /// fast-forward twice.
  [[nodiscard]] RunResult run(const FaultSpec& fault,
                              RunPhaseTimes* phases = nullptr,
                              emu::Checkpoint* prefault = nullptr);

  /// Classify the machine's current terminal state (used by run(), exposed
  /// for the tracer which drives the emulator itself).
  [[nodiscard]] RunResult classify_now(bool finished, bool early_exited) const;

  /// Continue `fault`'s experiment from the machine's *current* state: the
  /// exact per-cycle tail of run() (RAS watch, convergence poll, deadlines,
  /// classification), entered mid-flight. The caller must have brought the
  /// machine to some cycle >= fault.cycle with the fault's effects applied
  /// (run() does seek + apply_fault and then calls this). The lane engine
  /// materializes a lane's state into the emulator and resumes here, so a
  /// lane that leaves the fast path is finished by the same code path —
  /// and therefore produces byte-identical records. `phases` accumulates
  /// post-fault phase timings only (no reset; run() owns that).
  ///
  /// A non-null `eject` is polled exactly once, after the first step but
  /// before any RAS/convergence check of that cycle. Returning true aborts
  /// the run with an empty result and sets `*ejected`: the caller has
  /// decided (by its own evidence) that the machine's future is provably
  /// identical to a cheaper execution it already owns, so classification
  /// here would only duplicate work. The runner itself never consults
  /// machine state for this — an eject can't change what any completed run
  /// would have returned.
  [[nodiscard]] RunResult continue_run(const FaultSpec& fault,
                                       RunPhaseTimes* phases = nullptr,
                                       const std::function<bool()>* eject =
                                           nullptr,
                                       bool* ejected = nullptr);

  /// Bring the machine fault-free to `target` without telemetry: the
  /// deferred-replay entry for clients that drive the emulator themselves
  /// (tracer, infection tracker). Same warm-checkpoint path as run().
  void seek_for_replay(Cycle target) { seek_to(target, nullptr); }

  /// Apply `fault` to the machine at its current cycle (flip/force latches
  /// or array cells; adjacent_bits > 1 models a multi-bit upset). Shared by
  /// run() and forensic replays so both perturb the machine identically.
  void apply_fault(const FaultSpec& fault);

  [[nodiscard]] const RunConfig& config() const { return cfg_; }

 private:
  /// Bring the machine fault-free to `target`: restore the nearest
  /// checkpoint <= target (warm, cached across consecutive runs) or the
  /// reset snapshot, then clock the remainder. Reports restore/fast-forward
  /// timings into `phases` when non-null.
  void seek_to(Cycle target, RunPhaseTimes* phases);

  core::Pearl6Model& model_;
  emu::Emulator& emu_;
  const emu::Checkpoint& reset_cp_;
  const emu::GoldenTrace& trace_;
  const avp::GoldenResult& golden_;
  RunConfig cfg_;
  const emu::CheckpointStore* ckpts_ = nullptr;
  /// Last materialized checkpoint: cycle-sorted dispatch makes consecutive
  /// runs hit the same snapshot, so reconstruction amortizes to ~once per
  /// checkpoint per worker.
  emu::Checkpoint warm_cp_;
  std::size_t warm_idx_ = kNoWarmCkpt;
  static constexpr std::size_t kNoWarmCkpt = ~std::size_t{0};
};

}  // namespace sfi::inject
