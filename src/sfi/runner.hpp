// InjectionRunner: executes one fault-injection experiment end to end.
//
// Per injection (paper Figure 1): reload the checkpoint, clock to the
// injection cycle, flip the chosen bit, clock onward while watching the
// RAS status, and classify. Two accelerations make software campaigns
// practical: (1) the post-reset machine state is snapshotted once and
// reloaded per injection, (2) an injected run whose functional-state hash
// re-matches the fault-free trace at the same cycle — with a clean RAS
// window — is classified Vanished immediately.
#pragma once

#include "avp/runner.hpp"
#include "core/core_model.hpp"
#include "emu/emulator.hpp"
#include "emu/golden_trace.hpp"
#include "sfi/fault.hpp"
#include "sfi/outcome.hpp"

namespace sfi::inject {

struct RunConfig {
  /// Extra cycles allowed past the fault-free completion cycle before the
  /// harness declares a hang (covers recovery latency: flush + restore).
  Cycle hang_margin = 2000;
  /// Hard cap on post-injection cycles (the paper clocks 500k; outcomes for
  /// this design saturate far earlier — see bench/ablation_horizon).
  Cycle horizon = 50000;
  /// Enable the golden-trace hash early exit.
  bool early_exit = true;
};

struct RunResult {
  Outcome outcome = Outcome::Vanished;
  Cycle end_cycle = 0;         ///< cycle the run was classified at
  bool early_exited = false;   ///< vanished via golden-hash convergence
  u32 recoveries = 0;
  u32 corrected = 0;
  std::string first_diff;      ///< arch-state diff for BadArchState
};

class InjectionRunner {
 public:
  /// All references must outlive the runner. `reset_checkpoint` must be the
  /// post-reset machine snapshot for the same workload the trace/golden
  /// describe.
  InjectionRunner(core::Pearl6Model& model, emu::Emulator& emu,
                  const emu::Checkpoint& reset_checkpoint,
                  const emu::GoldenTrace& trace,
                  const avp::GoldenResult& golden, RunConfig cfg = {});

  /// Run one injection experiment and classify its outcome.
  [[nodiscard]] RunResult run(const FaultSpec& fault);

  /// Classify the machine's current terminal state (used by run(), exposed
  /// for the tracer which drives the emulator itself).
  [[nodiscard]] RunResult classify_now(bool finished, bool early_exited) const;

  [[nodiscard]] const RunConfig& config() const { return cfg_; }

 private:
  core::Pearl6Model& model_;
  emu::Emulator& emu_;
  const emu::Checkpoint& reset_cp_;
  const emu::GoldenTrace& trace_;
  const avp::GoldenResult& golden_;
  RunConfig cfg_;
};

}  // namespace sfi::inject
