#include "store/writer.hpp"

#include <fstream>

namespace sfi::store {

struct StoreWriter::OfstreamHolder {
  std::ofstream stream;
};

StoreWriter::StoreWriter(const std::string& path, bool truncate)
    : path_(path), out_(std::make_shared<OfstreamHolder>()) {
  const auto mode = std::ios::binary | std::ios::out |
                    (truncate ? std::ios::trunc : std::ios::app);
  out_->stream.open(path, mode);
  if (!out_->stream) {
    throw StoreError("cannot open store file for writing: " + path);
  }
}

StoreWriter StoreWriter::create(const std::string& path,
                                const CampaignMeta& meta) {
  StoreWriter w(path, /*truncate=*/true);
  w.write_bytes(std::span<const u8>(kMagic.data(), kMagic.size()));
  const std::vector<u8> payload = encode_meta(meta);
  const std::vector<u8> frame = make_frame(kHeaderFrame, payload);
  w.write_bytes(frame);
  w.flush();
  return w;
}

StoreWriter StoreWriter::append_to(const std::string& path) {
  return StoreWriter(path, /*truncate=*/false);
}

void StoreWriter::append(const StoredRecord& record) {
  const std::vector<u8> payload = encode_record(record);
  const std::vector<u8> frame = make_frame(kRecordFrame, payload);
  write_bytes(frame);
  ++records_written_;
}

void StoreWriter::append(std::span<const StoredRecord> records) {
  for (const StoredRecord& r : records) append(r);
}

void StoreWriter::append_propagation(const inject::PropagationRecord& rec) {
  const std::vector<u8> payload = encode_propagation(rec);
  const std::vector<u8> frame = make_frame(kPropagationFrame, payload);
  write_bytes(frame);
}

void StoreWriter::flush() {
  out_->stream.flush();
  if (!out_->stream) throw StoreError("store flush failed: " + path_);
}

void StoreWriter::write_bytes(std::span<const u8> bytes) {
  out_->stream.write(reinterpret_cast<const char*>(bytes.data()),
                     static_cast<std::streamsize>(bytes.size()));
  if (!out_->stream) throw StoreError("store write failed: " + path_);
}

}  // namespace sfi::store
