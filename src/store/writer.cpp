#include "store/writer.hpp"

#include <fstream>

namespace sfi::store {

struct StoreWriter::OfstreamHolder {
  std::ofstream stream;
};

StoreWriter::StoreWriter(const std::string& path, bool truncate,
                         WriteOptions opts)
    : path_(path), out_(std::make_shared<OfstreamHolder>()), opts_(opts) {
  const auto mode = std::ios::binary | std::ios::out |
                    (truncate ? std::ios::trunc : std::ios::app);
  out_->stream.open(path, mode);
  if (!out_->stream) {
    throw StoreError("cannot open store file for writing: " + path);
  }
}

StoreWriter StoreWriter::create(const std::string& path,
                                const CampaignMeta& meta, WriteOptions opts) {
  StoreWriter w(path, /*truncate=*/true, opts);
  w.write_bytes(std::span<const u8>(kMagic.data(), kMagic.size()));
  const std::vector<u8> payload = encode_meta(meta);
  const std::vector<u8> frame = make_frame(kHeaderFrame, payload);
  w.write_bytes(frame);
  if (opts.commit_markers) {
    // A marker directly after the header does double duty: it commits the
    // (possibly empty) store, and it lets tolerant readers tell a
    // marker-discipline store apart from a legacy one (which must keep the
    // old any-complete-frame-is-valid truncation semantics).
    w.uncommitted_frames_ = 1;
  }
  w.flush();
  return w;
}

StoreWriter StoreWriter::append_to(const std::string& path,
                                   WriteOptions opts) {
  return StoreWriter(path, /*truncate=*/false, opts);
}

void StoreWriter::append(const StoredRecord& record) {
  const std::vector<u8> payload = encode_record(record);
  const std::vector<u8> frame = make_frame(kRecordFrame, payload);
  write_bytes(frame);
  ++records_written_;
  ++uncommitted_frames_;
}

void StoreWriter::append(std::span<const StoredRecord> records) {
  for (const StoredRecord& r : records) append(r);
}

void StoreWriter::append_propagation(const inject::PropagationRecord& rec) {
  const std::vector<u8> payload = encode_propagation(rec);
  const std::vector<u8> frame = make_frame(kPropagationFrame, payload);
  write_bytes(frame);
  ++uncommitted_frames_;
}

void StoreWriter::append_heartbeat(const HeartbeatFrame& hb) {
  const std::vector<u8> payload = encode_heartbeat(hb);
  write_bytes(make_frame(kHeartbeatFrame, payload));
  ++uncommitted_frames_;
}

void StoreWriter::append_assignment(const AssignmentFrame& as) {
  const std::vector<u8> payload = encode_assignment(as);
  write_bytes(make_frame(kAssignmentFrame, payload));
  ++uncommitted_frames_;
}

void StoreWriter::append_metrics(const MetricsFrame& mf) {
  const std::vector<u8> payload = encode_metrics(mf);
  write_bytes(make_frame(kMetricsFrame, payload));
  ++uncommitted_frames_;
}

void StoreWriter::append_span(const telemetry::SpanRecord& span) {
  const std::vector<u8> payload = encode_span(span);
  write_bytes(make_frame(kSpanFrame, payload));
  ++uncommitted_frames_;
}

void StoreWriter::flush() {
  if (opts_.commit_markers && uncommitted_frames_ > 0) {
    write_bytes(make_frame(kCommitFrame, std::span<const u8>{}));
    uncommitted_frames_ = 0;
  }
  out_->stream.flush();
  if (!out_->stream) throw StoreError("store flush failed: " + path_);
}

void StoreWriter::write_bytes(std::span<const u8> bytes) {
  out_->stream.write(reinterpret_cast<const char*>(bytes.data()),
                     static_cast<std::streamsize>(bytes.size()));
  if (!out_->stream) throw StoreError("store write failed: " + path_);
}

}  // namespace sfi::store
