// Shard merge: fold N store files from the same campaign into one
// canonical store.
//
// Canonical means: records sorted by injection index, duplicates (the same
// index persisted by an interrupted run and again by its resume, or by
// overlapping shards) collapsed after checking they agree byte-for-byte.
// Because injection i is a pure function of (seed, i), the canonical form
// of any set of shards covering the same indices is byte-identical — which
// is the testable guarantee behind "resume produces the same campaign".
#pragma once

#include <string>
#include <vector>

#include "store/reader.hpp"
#include "store/writer.hpp"

namespace sfi::store {

struct MergeSummary {
  CampaignMeta meta;
  u64 inputs = 0;
  u64 records_read = 0;   ///< across all inputs, before dedup
  u64 records_written = 0;
  u64 duplicates = 0;     ///< identical re-executions collapsed
  u64 missing = 0;        ///< indices < num_injections not present anywhere
};

/// Merge `inputs` (≥1 store files of the same campaign) into `out_path`.
/// Throws StoreError if the inputs disagree on campaign identity, if two
/// shards carry different records for the same index, or on any corrupt
/// input (inputs are read strictly).
MergeSummary merge_stores(const std::vector<std::string>& inputs,
                          const std::string& out_path);

}  // namespace sfi::store
