// Shard merge: fold N store files from the same campaign into one
// canonical store.
//
// Canonical means: records sorted by injection index, duplicates (the same
// index persisted by an interrupted run and again by its resume, or by
// overlapping shards) collapsed after checking they agree byte-for-byte.
// Because injection i is a pure function of (seed, i), the canonical form
// of any set of shards covering the same indices is byte-identical — which
// is the testable guarantee behind "resume produces the same campaign".
#pragma once

#include <string>
#include <vector>

#include "store/reader.hpp"
#include "store/writer.hpp"

namespace sfi::store {

struct MergeSummary {
  CampaignMeta meta;
  u64 inputs = 0;
  u64 records_read = 0;   ///< across all inputs, before dedup
  u64 records_written = 0;
  u64 duplicates = 0;     ///< identical re-executions collapsed
  u64 missing = 0;        ///< indices < num_injections not present anywhere
};

/// Merge `inputs` (≥1 store files of the same campaign) into `out_path`.
/// Throws StoreError if the inputs disagree on campaign identity, if two
/// shards carry different records for the same index, or on any corrupt
/// input. Inputs are read strictly by default; the farm supervisor passes
/// tolerate_torn_tail because shard files of killed workers legitimately
/// end in a torn flush window (whose records it re-ran elsewhere — the
/// tolerant read drops exactly that uncommitted tail). The output is always
/// canonical and marker-free, whatever discipline the inputs were written
/// with.
MergeSummary merge_stores(const std::vector<std::string>& inputs,
                          const std::string& out_path, ReadOptions opts = {});

}  // namespace sfi::store
