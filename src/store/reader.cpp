#include "store/reader.hpp"

#include <filesystem>
#include <fstream>

namespace sfi::store {

namespace {

/// Sanity cap on a single frame payload; real payloads are < 100 bytes, so
/// anything huge is a corrupt length field, not a future format extension.
constexpr u32 kMaxPayload = 1u << 20;

}  // namespace

struct StoreReader::Impl {
  std::ifstream in;
  std::string path;
  ReadOptions opts;
  u64 file_size = 0;
  u64 pos = 0;       ///< bytes consumed so far
  bool finished = false;

  /// Read exactly `n` bytes; returns false on clean EOF-before-anything,
  /// throws/tears on partial reads depending on context (handled by caller
  /// via the returned byte count).
  std::size_t read_some(u8* dst, std::size_t n) {
    in.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
    const auto got = static_cast<std::size_t>(in.gcount());
    pos += got;
    return got;
  }
};

StoreReader::StoreReader(const std::string& path, ReadOptions opts)
    : impl_(std::make_unique<Impl>()) {
  impl_->path = path;
  impl_->opts = opts;
  std::error_code ec;
  impl_->file_size = std::filesystem::file_size(path, ec);
  if (ec) throw StoreError("cannot stat store file: " + path);
  impl_->in.open(path, std::ios::binary);
  if (!impl_->in) throw StoreError("cannot open store file: " + path);

  std::array<u8, 8> magic{};
  if (impl_->read_some(magic.data(), magic.size()) != magic.size() ||
      magic != kMagic) {
    throw StoreError("not a campaign store (bad magic): " + path);
  }

  // The header frame is mandatory and must be intact even in tolerant mode:
  // without it there is no campaign identity to resume against.
  u8 kind = 0;
  std::vector<u8> payload;
  if (!read_frame_strict(kind, payload) || kind != kHeaderFrame) {
    throw StoreError("store has no campaign header: " + path);
  }
  meta_ = decode_meta(payload);
  valid_bytes_ = impl_->pos;
  last_commit_ = impl_->pos;
}

u64 StoreReader::tell() const { return impl_->pos; }

bool StoreReader::read_frame_impl(u8& kind, std::vector<u8>& payload,
                                  bool tolerant) {
  Impl& s = *impl_;
  std::array<u8, 5> head{};
  const std::size_t got = s.read_some(head.data(), head.size());
  if (got == 0) {
    s.finished = true;
    // Even a clean frame-boundary EOF is torn under the commit-marker
    // discipline if complete frames trail the last marker: the flush they
    // belonged to never sealed, so its window may be partial.
    if (tolerant && saw_commit_ && valid_bytes_ != last_commit_) {
      torn_tail_ = true;
      valid_bytes_ = last_commit_;
    }
    return false;  // clean end of stream at a frame boundary
  }

  // Truncations are by construction at EOF; under the tolerant discipline
  // they mark a torn tail instead of an error.
  const auto torn_or_throw = [&](const std::string& why) -> bool {
    if (tolerant) {
      s.finished = true;
      torn_tail_ = true;
      // Under marker discipline the whole uncommitted flush window is
      // suspect, not just the frame that tore.
      if (saw_commit_) valid_bytes_ = last_commit_;
      return false;
    }
    throw StoreError(why + ": " + s.path);
  };

  if (got < head.size()) return torn_or_throw("truncated frame header");
  kind = head[0];
  u32 len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<u32>(head[1 + i]) << (8 * i);

  const u64 remaining = s.file_size - s.pos;
  if (len > kMaxPayload) {
    // A garbage length field. If it points past EOF it is indistinguishable
    // from a torn append; anywhere else it is corruption even when tolerant.
    if (tolerant && static_cast<u64>(len) + 4 > remaining) {
      return torn_or_throw("");
    }
    throw StoreError("implausible frame length " + std::to_string(len) +
                     " (corrupt store): " + s.path);
  }

  payload.resize(len);
  if (s.read_some(payload.data(), len) < len) {
    return torn_or_throw("truncated frame payload");
  }
  std::array<u8, 4> crc_bytes{};
  if (s.read_some(crc_bytes.data(), crc_bytes.size()) < crc_bytes.size()) {
    return torn_or_throw("truncated frame CRC");
  }
  u32 stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<u32>(crc_bytes[i]) << (8 * i);
  }
  const u32 actual =
      crc32(std::span<const u8>(payload.data(), payload.size()),
            crc32(std::span<const u8>(head.data(), head.size())));
  if (stored != actual) {
    // A bad CRC on the very last frame is a torn (partially flushed) append;
    // a bad CRC with intact frames behind it is corruption, period.
    if (tolerant && s.pos == s.file_size) return torn_or_throw("");
    throw StoreError("frame CRC mismatch (corrupt store): " + s.path);
  }
  return true;
}

bool StoreReader::read_frame(u8& kind, std::vector<u8>& payload) {
  return read_frame_impl(kind, payload, impl_->opts.tolerate_torn_tail);
}

bool StoreReader::read_frame_strict(u8& kind, std::vector<u8>& payload) {
  return read_frame_impl(kind, payload, false);
}

StoreReader::~StoreReader() = default;
StoreReader::StoreReader(StoreReader&&) noexcept = default;
StoreReader& StoreReader::operator=(StoreReader&&) noexcept = default;

bool StoreReader::next_frame(u8& kind, std::vector<u8>& payload) {
  if (impl_->finished) return false;
  if (!read_frame(kind, payload)) return false;
  // A second header frame is structural corruption (two concatenated
  // stores), never a forward-compatible extension.
  if (kind == kHeaderFrame) {
    throw StoreError("unexpected header frame mid-store: " + impl_->path);
  }
  valid_bytes_ = impl_->pos;
  if (kind == kCommitFrame) {
    last_commit_ = impl_->pos;
    saw_commit_ = true;
  }
  return true;
}

bool StoreReader::next(StoredRecord& out) {
  u8 kind = 0;
  std::vector<u8> payload;
  while (next_frame(kind, payload)) {
    if (kind != kRecordFrame) continue;  // skip unknown/forensic frames
    out = decode_record(payload);
    return true;
  }
  return false;
}

StoreContents read_store(const std::string& path, ReadOptions opts) {
  StoreReader reader(path, opts);
  StoreContents c;
  c.meta = reader.meta();
  StoredRecord sr;
  std::vector<u64> ends;  // offset just past each record's frame
  while (reader.next(sr)) {
    c.records.push_back(sr);
    ends.push_back(reader.tell());
  }
  c.torn_tail = reader.torn_tail();
  c.valid_bytes = reader.valid_bytes();
  if (c.torn_tail) {
    // Commit-marker rollback can retract complete record frames that sat in
    // the torn flush window; the materialised view must not contain them.
    std::size_t keep = c.records.size();
    while (keep > 0 && ends[keep - 1] > c.valid_bytes) --keep;
    c.records.resize(keep);
  }
  return c;
}

u64 for_each_record(const std::string& path,
                    const std::function<void(const StoredRecord&)>& fn,
                    ReadOptions opts) {
  StoreReader reader(path, opts);
  StoredRecord sr;
  u64 n = 0;
  while (reader.next(sr)) {
    fn(sr);
    ++n;
  }
  return n;
}

u64 for_each_propagation(
    const std::string& path,
    const std::function<void(const inject::PropagationRecord&)>& fn,
    ReadOptions opts) {
  StoreReader reader(path, opts);
  u8 kind = 0;
  std::vector<u8> payload;
  u64 n = 0;
  while (reader.next_frame(kind, payload)) {
    if (kind != kPropagationFrame) continue;
    fn(decode_propagation(payload));
    ++n;
  }
  return n;
}

std::pair<CampaignMeta, inject::CampaignAggregate> aggregate_store(
    const std::string& path, ReadOptions opts) {
  StoreReader reader(path, opts);
  inject::CampaignAggregate agg;
  StoredRecord sr;
  while (reader.next(sr)) agg.add(sr.rec);
  return {reader.meta(), agg};
}

}  // namespace sfi::store
