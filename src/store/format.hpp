// On-disk format of the campaign record store (`.sfr`).
//
// A store file is the durable form of one campaign (or one shard of one):
//
//   file  := magic[8] frame*
//   frame := kind:u8 | payload_len:u32 | payload[payload_len] | crc32:u32
//
// The first frame is the campaign header (kind 'H'); every following frame
// is one injection record (kind 'R'). All integers are little-endian and
// fixed-width; the CRC-32 (IEEE, reflected 0xEDB88320) covers kind,
// payload_len and payload, so torn writes and bit rot are both detectable
// per frame. Records carry their campaign index explicitly, which is what
// makes stores order-insensitive (shards append as they finish) and
// resumable (a restarted campaign skips persisted indices).
#pragma once

#include <array>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace sfi::store {

/// Any malformed-store condition (bad magic, version, CRC, truncation).
class StoreError : public std::runtime_error {
 public:
  explicit StoreError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr std::array<u8, 8> kMagic = {'S', 'F', 'I', 'R',
                                             'E', 'C', 'v', '1'};
inline constexpr u32 kFormatVersion = 1;

inline constexpr u8 kHeaderFrame = 'H';
inline constexpr u8 kRecordFrame = 'R';
/// Propagation-forensics footprint (optional; readers that do not know a
/// frame kind skip it after CRC validation, so stores stay readable by
/// older builds and record-only consumers).
inline constexpr u8 kPropagationFrame = 'P';
/// Flush-commit marker (empty payload): everything before it reached the OS
/// in one piece. Writers opened with commit markers emit one per flush();
/// tolerant readers then truncate a torn tail back to the last marker,
/// dropping a *whole* interrupted flush window instead of keeping a
/// valid-looking orphan ('R' whose companion 'P' was lost mid-flush).
inline constexpr u8 kCommitFrame = 'F';
/// Farm-worker liveness beacon, flushed before each injection runs: the
/// shard store's frame stream doubles as the worker's heartbeat channel, so
/// the coordinator learns both "alive" and "which injection is in flight"
/// from the file it must tail anyway.
inline constexpr u8 kHeartbeatFrame = 'B';
/// Farm shard assignment echo: which (shard, attempt) a worker accepted.
/// Forensic only — replays of a supervised campaign can reconstruct the
/// full dispatch history from the shard files.
inline constexpr u8 kAssignmentFrame = 'A';
/// Farm-worker metrics snapshot: the worker's whole metrics registry
/// (cumulative counters/gauges/histograms) serialized every N injections so
/// the coordinator — and through it the serve daemon's /metrics endpoint —
/// sees fleet-wide telemetry without a side channel. Observability-only:
/// canonical merge drops these frames, so a store written with snapshots on
/// merges byte-identical to one written with them off.
inline constexpr u8 kMetricsFrame = 'M';
/// Distributed-tracing span ('S' frame): one wall-anchored slice or instant
/// from the process that owns the store (worker shard, coordinator sidecar).
/// Observability-only, exactly like 'M': canonical merge drops these frames
/// and `sfi trace` stitches them back into one fleet timeline afterwards.
inline constexpr u8 kSpanFrame = 'S';
// kCommitFrame/kHeartbeatFrame/kAssignmentFrame/kMetricsFrame/kSpanFrame are
// all skipped by readers that predate them (unknown kinds are CRC-validated
// and ignored), keeping format_version at 1.

/// Frame overhead: kind + payload_len + crc32.
inline constexpr std::size_t kFrameOverhead = 1 + 4 + 4;

namespace detail {
constexpr std::array<u32, 256> make_crc32_table() {
  std::array<u32, 256> table{};
  for (u32 n = 0; n < 256; ++n) {
    u32 c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}
inline constexpr std::array<u32, 256> kCrc32Table = make_crc32_table();
}  // namespace detail

/// IEEE CRC-32 over `bytes`, chainable via `seed` (pass a previous result).
[[nodiscard]] constexpr u32 crc32(std::span<const u8> bytes, u32 seed = 0) {
  u32 c = seed ^ 0xFFFFFFFFu;
  for (const u8 b : bytes) {
    c = detail::kCrc32Table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

/// Little-endian append-only byte sink for payload encoding.
class ByteWriter {
 public:
  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u32(u32 v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  void put_u64(u64 v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  [[nodiscard]] const std::vector<u8>& bytes() const { return buf_; }

 private:
  std::vector<u8> buf_;
};

/// Little-endian cursor over a payload; throws StoreError on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const u8> data) : data_(data) {}

  [[nodiscard]] u8 get_u8() {
    need(1);
    return data_[pos_++];
  }
  [[nodiscard]] u32 get_u32() {
    need(4);
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(data_[pos_++]) << (8 * i);
    return v;
  }
  [[nodiscard]] u64 get_u64() {
    need(8);
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(data_[pos_++]) << (8 * i);
    return v;
  }
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw StoreError("store payload shorter than its declared layout");
    }
  }
  std::span<const u8> data_;
  std::size_t pos_ = 0;
};

/// Campaign identity and provenance, written once per store file. Two stores
/// are shards of the same campaign iff every field below matches.
struct CampaignMeta {
  u32 format_version = kFormatVersion;
  u64 seed = 0;
  u32 num_injections = 0;
  /// Fingerprint of everything that shapes the fault list and outcomes:
  /// population ordinals, injection window, fault mode, run and core config
  /// (computed by the scheduler, sched/scheduler.hpp).
  u64 config_fingerprint = 0;
  /// Identity of the workload (program image + initial state).
  u64 workload_id = 0;
  u64 population_size = 0;
  u64 workload_cycles = 0;
  u64 workload_instructions = 0;
  u64 window_begin = 0;
  u64 window_end = 0;

  [[nodiscard]] bool same_campaign(const CampaignMeta& o) const {
    return format_version == o.format_version && seed == o.seed &&
           num_injections == o.num_injections &&
           config_fingerprint == o.config_fingerprint &&
           workload_id == o.workload_id &&
           population_size == o.population_size &&
           workload_cycles == o.workload_cycles &&
           workload_instructions == o.workload_instructions &&
           window_begin == o.window_begin && window_end == o.window_end;
  }
};

}  // namespace sfi::store
