#include "store/tail.hpp"

#include <array>
#include <fstream>

namespace sfi::store {

namespace {
/// Same plausibility cap as the reader: shard frames are tiny, so a huge
/// length field is corruption, not a frame we should wait for.
constexpr u32 kMaxPayload = 1u << 20;
}  // namespace

std::size_t FrameTail::poll(
    const std::function<void(u8, std::span<const u8>)>& fn) {
  if (corrupt_) return 0;

  // Pull whatever the worker has appended since the last poll. The file is
  // append-only while the worker lives, so re-reading from read_offset_
  // never observes mutated bytes.
  std::ifstream in(path_, std::ios::binary);
  if (in) {
    in.seekg(static_cast<std::streamoff>(read_offset_));
    std::array<char, 64 * 1024> chunk{};
    while (in.read(chunk.data(), chunk.size()) || in.gcount() > 0) {
      const auto got = static_cast<std::size_t>(in.gcount());
      buf_.insert(buf_.end(), chunk.data(), chunk.data() + got);
      read_offset_ += got;
      if (got < chunk.size()) break;
    }
  }

  std::size_t delivered = 0;
  std::size_t cursor = 0;

  if (!magic_seen_) {
    if (buf_.size() < kMagic.size()) return 0;
    for (std::size_t i = 0; i < kMagic.size(); ++i) {
      if (buf_[i] != kMagic[i]) {
        corrupt_ = true;
        return 0;
      }
    }
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(kMagic.size()));
    magic_seen_ = true;
  }

  const auto frame_at =
      [&](std::size_t at, u8& kind, u32& len) -> bool /* complete extent */ {
    if (buf_.size() - at < kFrameOverhead) return false;
    kind = buf_[at];
    len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<u32>(buf_[at + 1 + i]) << (8 * i);
    }
    if (len > kMaxPayload) {
      corrupt_ = true;
      return false;
    }
    return buf_.size() - at >= kFrameOverhead + len;
  };

  u8 kind = 0;
  u32 len = 0;
  while (!corrupt_ && frame_at(cursor, kind, len)) {
    const u8* frame = buf_.data() + cursor;
    const u32 actual =
        crc32(std::span<const u8>(frame, 5 + len));
    u32 stored = 0;
    for (int i = 0; i < 4; ++i) {
      stored |= static_cast<u32>(frame[5 + len + i]) << (8 * i);
    }
    if (stored != actual) {
      corrupt_ = true;
      break;
    }
    if (!header_seen_) {
      // First frame must be the campaign header; anything else means we are
      // tailing something that is not a shard store.
      if (kind != kHeaderFrame) corrupt_ = true;
      header_seen_ = true;
    } else if (kind == kCommitFrame) {
      for (const auto& [k, payload] : pending_) {
        fn(k, std::span<const u8>(payload.data(), payload.size()));
        ++delivered;
      }
      pending_.clear();
    } else {
      pending_.emplace_back(
          kind, std::vector<u8>(frame + 5, frame + 5 + len));
    }
    cursor += kFrameOverhead + len;
  }

  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(cursor));
  return delivered;
}

}  // namespace sfi::store
