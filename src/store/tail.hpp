// FrameTail: incremental, commit-aware parser over a *growing* store file.
//
// The farm coordinator tails each worker's shard store while the worker is
// still writing it: the frame stream doubles as the supervision channel
// (heartbeats, assignment echoes, results). Polling a live file means every
// read may end mid-frame, so FrameTail buffers raw bytes across polls and
// only surfaces a frame once its full extent (and CRC) is in hand.
//
// Delivery is commit-gated: parsed frames are held until a kCommitFrame
// seals their flush window, mirroring exactly what a tolerant StoreReader
// would keep if the worker died right now. That alignment is load-bearing —
// the coordinator marks an injection done only when its record frame is
// *committed*, and the final merge (tolerant read) keeps precisely the
// committed prefix, so "coordinator counted it" always implies "merge will
// contain it".
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "store/format.hpp"

namespace sfi::store {

class FrameTail {
 public:
  explicit FrameTail(std::string path) : path_(std::move(path)) {}

  /// Read any new bytes of the file and deliver newly *committed* frames to
  /// `fn` in stream order (commit markers themselves are punctuation and not
  /// delivered). Returns the number of frames delivered this poll. A missing
  /// or not-yet-created file delivers nothing. Safe to call forever.
  std::size_t poll(const std::function<void(u8 kind,
                                            std::span<const u8> payload)>& fn);

  /// True once the magic and header frame have been parsed.
  [[nodiscard]] bool header_seen() const { return header_seen_; }

  /// A complete frame extent failed validation (bad magic, bad CRC, garbage
  /// length). Unlike a short tail — which may simply not be written yet —
  /// this cannot heal; the supervisor treats the worker as failed.
  [[nodiscard]] bool corrupt() const { return corrupt_; }

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::vector<u8> buf_;  ///< bytes read from the file, not yet parsed
  u64 read_offset_ = 0;  ///< absolute file offset of the next byte to read
  /// Frames parsed but not yet sealed by a commit marker.
  std::vector<std::pair<u8, std::vector<u8>>> pending_;
  bool magic_seen_ = false;
  bool header_seen_ = false;
  bool corrupt_ = false;
};

}  // namespace sfi::store
