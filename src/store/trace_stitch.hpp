// Trace stitcher: reassemble one fleet timeline from the 'S' span frames
// scattered across a campaign's store files.
//
// A farm campaign leaves spans in several places: each worker's shard store
// (`<out>.w<slot>g<gen>.sfr`, when --keep-shards preserved them), the
// coordinator's trace sidecar (`<out minus .sfr>.trace.sfr` — the
// coordinator tees every span it records *or receives* there, so the
// stitched view survives the default shard cleanup), and the canonical
// output itself for single-process runs. Because every span is
// self-describing (process label, OS pid, wall-anchored timestamps —
// telemetry/span.hpp), stitching is a concatenation: read every input
// tolerantly, sort by timestamp, render one Trace Event JSON with one
// process row per pid.
//
// Postmortem dumps (`*.postmortem.jsonl`, the crash flight recorder's
// output) ride along as instants on their own process row: the ring's tail
// shows what a dead process was doing, time-shifted to the trace start
// (the recorder stamps lines on the telemetry steady clock, which has no
// wall anchor — relative spacing is preserved, absolute placement is not).
#pragma once

#include <string>
#include <vector>

#include "telemetry/span.hpp"

namespace sfi::store {

/// All decodable 'S' frames of one store, tolerant of torn tails and
/// unknown frames. Missing file => empty (shards may be cleaned up).
[[nodiscard]] std::vector<telemetry::SpanRecord> read_spans(
    const std::string& path);

/// The files stitch_trace() would read for `store_path`: the store itself,
/// its `.trace.sfr` sidecar, sibling shard stores and `.hf` fatal-synthesis
/// stores, and any `*.postmortem.jsonl` dumps, in that order.
[[nodiscard]] std::vector<std::string> discover_trace_inputs(
    const std::string& store_path);

struct StitchResult {
  std::string json;        ///< Trace Event JSON ({"traceEvents":[...]})
  std::size_t spans = 0;   ///< spans stitched (postmortem instants included)
  std::size_t files = 0;   ///< inputs that contributed at least one span
  std::size_t processes = 0;  ///< distinct OS process rows
};

/// Stitch every discovered input for `store_path` into one trace document.
[[nodiscard]] StitchResult stitch_trace(const std::string& store_path);

}  // namespace sfi::store
