// StoreWriter: append-only producer side of a `.sfr` campaign store.
//
// Writes are frame-granular: a record either lands completely (with a valid
// CRC) or, on a crash, leaves a torn final frame the reader can detect and
// the scheduler truncates away on resume. The writer buffers in the ofstream
// and only promises durability at flush() — schedulers decide the flush
// cadence (throughput vs. at-risk window).
#pragma once

#include <memory>
#include <string>

#include "store/codec.hpp"

namespace sfi::store {

struct WriteOptions {
  /// Emit a kCommitFrame after the header and at every flush() that pushed
  /// new frames. Markers let tolerant readers truncate a torn tail back to
  /// the last *complete flush window* rather than the last complete frame —
  /// closing the crash window where an 'R' survives but its companion 'P'
  /// (same flush) was lost. Merge output stays marker-free so canonical
  /// stores remain byte-identical across marker and legacy producers.
  bool commit_markers = false;
};

class StoreWriter {
 public:
  /// Create (truncate) `path` and write the campaign header.
  static StoreWriter create(const std::string& path, const CampaignMeta& meta,
                            WriteOptions opts = {});

  /// Open an existing, already-validated store for appending more records.
  /// (Callers are expected to have read/validated the file first — the
  /// resume path in src/sched/ does — since appending to a store with a
  /// torn tail would bury the tear mid-file.)
  static StoreWriter append_to(const std::string& path,
                               WriteOptions opts = {});

  void append(const StoredRecord& record);
  void append(std::span<const StoredRecord> records);

  /// Append one propagation footprint ('P' frame). Footprints are
  /// observability data: they never count toward records_written() and a
  /// reader that ignores them sees the same record stream.
  void append_propagation(const inject::PropagationRecord& rec);

  /// Append one farm-worker heartbeat ('B') / assignment echo ('A') frame.
  /// Liveness-only, like footprints: never counted in records_written().
  void append_heartbeat(const HeartbeatFrame& hb);
  void append_assignment(const AssignmentFrame& as);

  /// Append one worker metrics snapshot ('M' frame). Observability-only:
  /// never counted in records_written(), dropped by canonical merge.
  void append_metrics(const MetricsFrame& mf);

  /// Append one distributed-tracing span ('S' frame). Observability-only,
  /// same contract as 'M': never counted, dropped by canonical merge.
  void append_span(const telemetry::SpanRecord& span);

  /// Push buffered frames to the OS. With commit markers enabled, seals the
  /// window first by appending a kCommitFrame (only if frames are pending —
  /// a redundant flush must not grow the file, or byte-level no-op resume
  /// guarantees break).
  void flush();

  /// Records appended through this writer (not counting pre-existing ones).
  [[nodiscard]] u64 records_written() const { return records_written_; }

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  StoreWriter(const std::string& path, bool truncate, WriteOptions opts);

  void write_bytes(std::span<const u8> bytes);

  std::string path_;
  /// Using a FILE-free ofstream keeps the writer movable.
  struct OfstreamHolder;
  std::shared_ptr<OfstreamHolder> out_;
  WriteOptions opts_;
  u64 records_written_ = 0;
  /// Frames appended since the last commit marker (only tracked when
  /// commit_markers is on).
  u64 uncommitted_frames_ = 0;
};

}  // namespace sfi::store
