#include "store/merge.hpp"

#include <algorithm>
#include <map>

namespace sfi::store {

MergeSummary merge_stores(const std::vector<std::string>& inputs,
                          const std::string& out_path, ReadOptions opts) {
  if (inputs.empty()) throw StoreError("merge needs at least one input");

  MergeSummary summary;
  summary.inputs = inputs.size();

  // index -> canonical payload bytes. Comparing encoded payloads (not
  // structs) is what makes "shards agree" an exact, byte-level statement.
  std::map<u32, std::vector<u8>> by_index;

  bool have_meta = false;
  for (const std::string& path : inputs) {
    // read_store (not a streaming pass) so that, under tolerant reading,
    // records sitting in an uncommitted flush window of a killed worker's
    // shard are dropped before they can enter the merge.
    const StoreContents contents = read_store(path, opts);
    if (!have_meta) {
      summary.meta = contents.meta;
      have_meta = true;
    } else if (!summary.meta.same_campaign(contents.meta)) {
      throw StoreError("store " + path +
                       " belongs to a different campaign than " + inputs[0] +
                       " (seed/config/workload mismatch)");
    }
    for (const StoredRecord& sr : contents.records) {
      ++summary.records_read;
      if (sr.index >= summary.meta.num_injections) {
        throw StoreError("record index " + std::to_string(sr.index) +
                         " out of campaign range in " + path);
      }
      std::vector<u8> payload = encode_record(sr);
      const auto [it, inserted] = by_index.emplace(sr.index, std::move(payload));
      if (!inserted) {
        if (it->second != encode_record(sr)) {
          throw StoreError(
              "shards disagree on injection " + std::to_string(sr.index) +
              " — not re-executions of the same campaign (" + path + ")");
        }
        ++summary.duplicates;
      }
    }
  }

  summary.missing = summary.meta.num_injections - by_index.size();

  StoreWriter writer = StoreWriter::create(out_path, summary.meta);
  for (const auto& [index, payload] : by_index) {
    writer.append(decode_record(payload));
  }
  writer.flush();
  summary.records_written = writer.records_written();
  return summary;
}

}  // namespace sfi::store
