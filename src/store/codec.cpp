#include "store/codec.hpp"

namespace sfi::store {

std::vector<u8> encode_meta(const CampaignMeta& m) {
  ByteWriter w;
  w.put_u32(m.format_version);
  w.put_u64(m.seed);
  w.put_u32(m.num_injections);
  w.put_u64(m.config_fingerprint);
  w.put_u64(m.workload_id);
  w.put_u64(m.population_size);
  w.put_u64(m.workload_cycles);
  w.put_u64(m.workload_instructions);
  w.put_u64(m.window_begin);
  w.put_u64(m.window_end);
  return w.bytes();
}

CampaignMeta decode_meta(std::span<const u8> payload) {
  ByteReader r(payload);
  CampaignMeta m;
  m.format_version = r.get_u32();
  if (m.format_version != kFormatVersion) {
    throw StoreError("unsupported store format version " +
                     std::to_string(m.format_version) + " (expected " +
                     std::to_string(kFormatVersion) + ")");
  }
  m.seed = r.get_u64();
  m.num_injections = r.get_u32();
  m.config_fingerprint = r.get_u64();
  m.workload_id = r.get_u64();
  m.population_size = r.get_u64();
  m.workload_cycles = r.get_u64();
  m.workload_instructions = r.get_u64();
  m.window_begin = r.get_u64();
  m.window_end = r.get_u64();
  if (!r.exhausted()) throw StoreError("trailing bytes in header payload");
  return m;
}

std::vector<u8> encode_record(const StoredRecord& sr) {
  const inject::InjectionRecord& rec = sr.rec;
  ByteWriter w;
  w.put_u32(sr.index);
  w.put_u8(static_cast<u8>(rec.fault.target));
  w.put_u32(rec.fault.index);
  w.put_u64(rec.fault.array_bit);
  w.put_u64(rec.fault.cycle);
  w.put_u8(static_cast<u8>(rec.fault.mode));
  w.put_u64(rec.fault.sticky_duration);
  w.put_u8(rec.fault.sticky_value ? 1 : 0);
  w.put_u8(rec.fault.adjacent_bits);
  w.put_u8(static_cast<u8>(rec.outcome));
  w.put_u8(static_cast<u8>(rec.unit));
  w.put_u8(static_cast<u8>(rec.type));
  w.put_u64(rec.end_cycle);
  w.put_u8(rec.early_exited ? 1 : 0);
  w.put_u32(rec.recoveries);
  return w.bytes();
}

namespace {

template <typename Enum>
Enum checked_enum(u8 raw, u8 limit, const char* what) {
  if (raw >= limit) {
    throw StoreError(std::string("out-of-range ") + what + " value " +
                     std::to_string(raw) + " in record payload");
  }
  return static_cast<Enum>(raw);
}

}  // namespace

StoredRecord decode_record(std::span<const u8> payload) {
  ByteReader r(payload);
  StoredRecord sr;
  sr.index = r.get_u32();
  inject::InjectionRecord& rec = sr.rec;
  rec.fault.target = checked_enum<inject::FaultTarget>(r.get_u8(), 2, "fault target");
  rec.fault.index = r.get_u32();
  rec.fault.array_bit = r.get_u64();
  rec.fault.cycle = r.get_u64();
  rec.fault.mode = checked_enum<inject::FaultMode>(r.get_u8(), 2, "fault mode");
  rec.fault.sticky_duration = r.get_u64();
  rec.fault.sticky_value = r.get_u8() != 0;
  rec.fault.adjacent_bits = r.get_u8();
  rec.outcome = checked_enum<inject::Outcome>(
      r.get_u8(), static_cast<u8>(inject::kNumOutcomes), "outcome");
  rec.unit = checked_enum<netlist::Unit>(
      r.get_u8(), static_cast<u8>(netlist::kNumUnits), "unit");
  rec.type = checked_enum<netlist::LatchType>(
      r.get_u8(), static_cast<u8>(netlist::kNumLatchTypes), "latch type");
  rec.end_cycle = r.get_u64();
  rec.early_exited = r.get_u8() != 0;
  rec.recoveries = r.get_u32();
  if (!r.exhausted()) throw StoreError("trailing bytes in record payload");
  return sr;
}

std::vector<u8> make_frame(u8 kind, std::span<const u8> payload) {
  std::vector<u8> frame;
  frame.reserve(kFrameOverhead + payload.size());
  frame.push_back(kind);
  const u32 len = static_cast<u32>(payload.size());
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<u8>(len >> (8 * i)));
  frame.insert(frame.end(), payload.begin(), payload.end());
  const u32 crc = crc32(std::span<const u8>(frame.data(), frame.size()));
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<u8>(crc >> (8 * i)));
  return frame;
}

}  // namespace sfi::store
