#include "store/codec.hpp"

#include <bit>

namespace sfi::store {

std::vector<u8> encode_meta(const CampaignMeta& m) {
  ByteWriter w;
  w.put_u32(m.format_version);
  w.put_u64(m.seed);
  w.put_u32(m.num_injections);
  w.put_u64(m.config_fingerprint);
  w.put_u64(m.workload_id);
  w.put_u64(m.population_size);
  w.put_u64(m.workload_cycles);
  w.put_u64(m.workload_instructions);
  w.put_u64(m.window_begin);
  w.put_u64(m.window_end);
  return w.bytes();
}

CampaignMeta decode_meta(std::span<const u8> payload) {
  ByteReader r(payload);
  CampaignMeta m;
  m.format_version = r.get_u32();
  if (m.format_version != kFormatVersion) {
    throw StoreError("unsupported store format version " +
                     std::to_string(m.format_version) + " (expected " +
                     std::to_string(kFormatVersion) + ")");
  }
  m.seed = r.get_u64();
  m.num_injections = r.get_u32();
  m.config_fingerprint = r.get_u64();
  m.workload_id = r.get_u64();
  m.population_size = r.get_u64();
  m.workload_cycles = r.get_u64();
  m.workload_instructions = r.get_u64();
  m.window_begin = r.get_u64();
  m.window_end = r.get_u64();
  if (!r.exhausted()) throw StoreError("trailing bytes in header payload");
  return m;
}

std::vector<u8> encode_record(const StoredRecord& sr) {
  const inject::InjectionRecord& rec = sr.rec;
  ByteWriter w;
  w.put_u32(sr.index);
  w.put_u8(static_cast<u8>(rec.fault.target));
  w.put_u32(rec.fault.index);
  w.put_u64(rec.fault.array_bit);
  w.put_u64(rec.fault.cycle);
  w.put_u8(static_cast<u8>(rec.fault.mode));
  w.put_u64(rec.fault.sticky_duration);
  w.put_u8(rec.fault.sticky_value ? 1 : 0);
  w.put_u8(rec.fault.adjacent_bits);
  w.put_u8(static_cast<u8>(rec.outcome));
  w.put_u8(static_cast<u8>(rec.unit));
  w.put_u8(static_cast<u8>(rec.type));
  w.put_u64(rec.end_cycle);
  w.put_u8(rec.early_exited ? 1 : 0);
  w.put_u32(rec.recoveries);
  return w.bytes();
}

namespace {

template <typename Enum>
Enum checked_enum(u8 raw, u8 limit, const char* what) {
  if (raw >= limit) {
    throw StoreError(std::string("out-of-range ") + what + " value " +
                     std::to_string(raw) + " in record payload");
  }
  return static_cast<Enum>(raw);
}

}  // namespace

StoredRecord decode_record(std::span<const u8> payload) {
  ByteReader r(payload);
  StoredRecord sr;
  sr.index = r.get_u32();
  inject::InjectionRecord& rec = sr.rec;
  rec.fault.target = checked_enum<inject::FaultTarget>(r.get_u8(), 2, "fault target");
  rec.fault.index = r.get_u32();
  rec.fault.array_bit = r.get_u64();
  rec.fault.cycle = r.get_u64();
  rec.fault.mode = checked_enum<inject::FaultMode>(r.get_u8(), 2, "fault mode");
  rec.fault.sticky_duration = r.get_u64();
  rec.fault.sticky_value = r.get_u8() != 0;
  rec.fault.adjacent_bits = r.get_u8();
  rec.outcome = checked_enum<inject::Outcome>(
      r.get_u8(), static_cast<u8>(inject::kNumOutcomes), "outcome");
  rec.unit = checked_enum<netlist::Unit>(
      r.get_u8(), static_cast<u8>(netlist::kNumUnits), "unit");
  rec.type = checked_enum<netlist::LatchType>(
      r.get_u8(), static_cast<u8>(netlist::kNumLatchTypes), "latch type");
  rec.end_cycle = r.get_u64();
  rec.early_exited = r.get_u8() != 0;
  rec.recoveries = r.get_u32();
  if (!r.exhausted()) throw StoreError("trailing bytes in record payload");
  return sr;
}

std::vector<u8> encode_propagation(const inject::PropagationRecord& rec) {
  ByteWriter w;
  w.put_u32(rec.index);
  w.put_u8(static_cast<u8>(rec.unit));
  w.put_u8(static_cast<u8>(rec.type));
  w.put_u8(static_cast<u8>(rec.outcome));
  u8 flags = 0;
  if (rec.masked) flags |= 1u << 0;
  if (rec.detected) flags |= 1u << 1;
  if (rec.reached_arch) flags |= 1u << 2;
  if (rec.reached_memory) flags |= 1u << 3;
  if (rec.truncated) flags |= 1u << 4;
  if (rec.checker_fired) flags |= 1u << 5;
  if (rec.checker_fatal) flags |= 1u << 6;
  w.put_u8(flags);
  w.put_u8(static_cast<u8>(rec.checker));
  w.put_u64(rec.fault_cycle);
  w.put_u64(rec.masked_at);
  w.put_u64(rec.detected_at);
  w.put_u32(rec.peak_bits);
  w.put_u32(rec.rerun_cycles);
  for (const u32 fc : rec.first_corrupt) w.put_u32(fc);
  w.put_u32(static_cast<u32>(rec.samples.size()));
  for (const inject::FootprintSample& s : rec.samples) {
    w.put_u32(s.offset);
    w.put_u32(s.total_bits);
    for (const u32 b : s.unit_bits) w.put_u32(b);
  }
  return w.bytes();
}

inject::PropagationRecord decode_propagation(std::span<const u8> payload) {
  ByteReader r(payload);
  inject::PropagationRecord rec;
  rec.index = r.get_u32();
  rec.unit = checked_enum<netlist::Unit>(
      r.get_u8(), static_cast<u8>(netlist::kNumUnits), "unit");
  rec.type = checked_enum<netlist::LatchType>(
      r.get_u8(), static_cast<u8>(netlist::kNumLatchTypes), "latch type");
  rec.outcome = checked_enum<inject::Outcome>(
      r.get_u8(), static_cast<u8>(inject::kNumOutcomes), "outcome");
  const u8 flags = r.get_u8();
  rec.masked = (flags & (1u << 0)) != 0;
  rec.detected = (flags & (1u << 1)) != 0;
  rec.reached_arch = (flags & (1u << 2)) != 0;
  rec.reached_memory = (flags & (1u << 3)) != 0;
  rec.truncated = (flags & (1u << 4)) != 0;
  rec.checker_fired = (flags & (1u << 5)) != 0;
  rec.checker_fatal = (flags & (1u << 6)) != 0;
  const u8 checker = r.get_u8();
  if (rec.checker_fired && checker >= core::kNumCheckers) {
    throw StoreError("out-of-range checker id " + std::to_string(checker) +
                     " in propagation payload");
  }
  rec.checker = static_cast<core::CheckerId>(checker);
  rec.fault_cycle = r.get_u64();
  rec.masked_at = r.get_u64();
  rec.detected_at = r.get_u64();
  rec.peak_bits = r.get_u32();
  rec.rerun_cycles = r.get_u32();
  for (u32& fc : rec.first_corrupt) fc = r.get_u32();
  const u32 n = r.get_u32();
  // Each sample is 8 + 4*kNumUnits bytes; reject counts the payload cannot
  // hold before allocating for them.
  constexpr std::size_t kSampleBytes = 8 + 4 * netlist::kNumUnits;
  if (n > payload.size() / kSampleBytes) {
    throw StoreError("implausible sample count " + std::to_string(n) +
                     " in propagation payload");
  }
  rec.samples.resize(n);
  for (inject::FootprintSample& s : rec.samples) {
    s.offset = r.get_u32();
    s.total_bits = r.get_u32();
    for (u32& b : s.unit_bits) b = r.get_u32();
  }
  if (!r.exhausted()) throw StoreError("trailing bytes in propagation payload");
  return rec;
}

std::vector<u8> encode_heartbeat(const HeartbeatFrame& hb) {
  ByteWriter w;
  w.put_u32(hb.worker);
  w.put_u64(hb.seq);
  w.put_u32(hb.index);
  w.put_u64(hb.executed);
  return w.bytes();
}

HeartbeatFrame decode_heartbeat(std::span<const u8> payload) {
  ByteReader r(payload);
  HeartbeatFrame hb;
  hb.worker = r.get_u32();
  hb.seq = r.get_u64();
  hb.index = r.get_u32();
  hb.executed = r.get_u64();
  if (!r.exhausted()) throw StoreError("trailing bytes in heartbeat payload");
  return hb;
}

std::vector<u8> encode_assignment(const AssignmentFrame& as) {
  ByteWriter w;
  w.put_u32(as.worker);
  w.put_u64(as.shard);
  w.put_u32(as.attempt);
  w.put_u32(as.count);
  return w.bytes();
}

AssignmentFrame decode_assignment(std::span<const u8> payload) {
  ByteReader r(payload);
  AssignmentFrame as;
  as.worker = r.get_u32();
  as.shard = r.get_u64();
  as.attempt = r.get_u32();
  as.count = r.get_u32();
  if (!r.exhausted()) throw StoreError("trailing bytes in assignment payload");
  return as;
}

namespace {

// Length-prefixed UTF-8; metric names are short, so byte-at-a-time reads
// are fine at snapshot rate (~1 Hz per worker).
void put_str(ByteWriter& w, const std::string& s) {
  w.put_u32(static_cast<u32>(s.size()));
  for (const char c : s) w.put_u8(static_cast<u8>(c));
}

std::string get_str(ByteReader& r) {
  const u32 n = r.get_u32();
  if (n > 4096) throw StoreError("metric name too long in metrics payload");
  std::string s;
  s.reserve(n);
  for (u32 i = 0; i < n; ++i) s.push_back(static_cast<char>(r.get_u8()));
  return s;
}

void put_f64(ByteWriter& w, double v) { w.put_u64(std::bit_cast<u64>(v)); }

double get_f64(ByteReader& r) { return std::bit_cast<double>(r.get_u64()); }

u32 get_count(ByteReader& r, const char* what) {
  const u32 n = r.get_u32();
  if (n > 1u << 20) {
    throw StoreError(std::string("implausible ") + what +
                     " count in metrics payload");
  }
  return n;
}

}  // namespace

std::vector<u8> encode_metrics(const MetricsFrame& mf) {
  ByteWriter w;
  w.put_u32(mf.worker);
  w.put_u64(mf.seq);
  const telemetry::MetricsSnapshot& s = mf.snapshot;
  w.put_u32(static_cast<u32>(s.counters.size()));
  for (const auto& [name, value] : s.counters) {
    put_str(w, name);
    w.put_u64(value);
  }
  w.put_u32(static_cast<u32>(s.gauges.size()));
  for (const auto& [name, value] : s.gauges) {
    put_str(w, name);
    put_f64(w, value);
  }
  w.put_u32(static_cast<u32>(s.histograms.size()));
  for (const telemetry::MetricsSnapshot::Hist& h : s.histograms) {
    put_str(w, h.name);
    w.put_u32(static_cast<u32>(h.bounds.size()));
    for (const double b : h.bounds) put_f64(w, b);
    // buckets.size() is pinned to bounds.size() + 1 by construction.
    for (const u64 c : h.buckets) w.put_u64(c);
    w.put_u64(h.count);
    put_f64(w, h.sum);
  }
  return w.bytes();
}

MetricsFrame decode_metrics(std::span<const u8> payload) {
  ByteReader r(payload);
  MetricsFrame mf;
  mf.worker = r.get_u32();
  mf.seq = r.get_u64();
  telemetry::MetricsSnapshot& s = mf.snapshot;
  const u32 n_counters = get_count(r, "counter");
  s.counters.reserve(n_counters);
  for (u32 i = 0; i < n_counters; ++i) {
    std::string name = get_str(r);
    const u64 value = r.get_u64();
    s.counters.emplace_back(std::move(name), value);
  }
  const u32 n_gauges = get_count(r, "gauge");
  s.gauges.reserve(n_gauges);
  for (u32 i = 0; i < n_gauges; ++i) {
    std::string name = get_str(r);
    const double value = get_f64(r);
    s.gauges.emplace_back(std::move(name), value);
  }
  const u32 n_hists = get_count(r, "histogram");
  s.histograms.reserve(n_hists);
  for (u32 i = 0; i < n_hists; ++i) {
    telemetry::MetricsSnapshot::Hist h;
    h.name = get_str(r);
    const u32 n_bounds = get_count(r, "histogram bound");
    h.bounds.reserve(n_bounds);
    for (u32 b = 0; b < n_bounds; ++b) h.bounds.push_back(get_f64(r));
    h.buckets.resize(n_bounds + 1);
    for (u64& c : h.buckets) c = r.get_u64();
    h.count = r.get_u64();
    h.sum = get_f64(r);
    s.histograms.push_back(std::move(h));
  }
  if (!r.exhausted()) throw StoreError("trailing bytes in metrics payload");
  return mf;
}

std::vector<u8> encode_span(const telemetry::SpanRecord& span) {
  ByteWriter w;
  w.put_u64(span.trace_id);
  w.put_u64(span.span_id);
  w.put_u64(span.parent_id);
  w.put_u64(span.pid);
  w.put_u32(span.tid);
  w.put_u8(static_cast<u8>(span.ph));
  w.put_u64(span.ts_us);
  w.put_u64(span.dur_us);
  put_str(w, span.process);
  put_str(w, span.name);
  put_str(w, span.cat);
  put_str(w, span.args_json);
  return w.bytes();
}

telemetry::SpanRecord decode_span(std::span<const u8> payload) {
  ByteReader r(payload);
  telemetry::SpanRecord s;
  s.trace_id = r.get_u64();
  s.span_id = r.get_u64();
  s.parent_id = r.get_u64();
  s.pid = r.get_u64();
  s.tid = r.get_u32();
  const u8 ph = r.get_u8();
  if (ph != 'X' && ph != 'i') {
    throw StoreError("unknown span phase " + std::to_string(ph) +
                     " in span payload");
  }
  s.ph = static_cast<char>(ph);
  s.ts_us = r.get_u64();
  s.dur_us = r.get_u64();
  s.process = get_str(r);
  s.name = get_str(r);
  s.cat = get_str(r);
  s.args_json = get_str(r);
  if (!r.exhausted()) throw StoreError("trailing bytes in span payload");
  return s;
}

std::vector<u8> make_frame(u8 kind, std::span<const u8> payload) {
  std::vector<u8> frame;
  frame.reserve(kFrameOverhead + payload.size());
  frame.push_back(kind);
  const u32 len = static_cast<u32>(payload.size());
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<u8>(len >> (8 * i)));
  frame.insert(frame.end(), payload.begin(), payload.end());
  const u32 crc = crc32(std::span<const u8>(frame.data(), frame.size()));
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<u8>(crc >> (8 * i)));
  return frame;
}

}  // namespace sfi::store
