// StoreReader: streaming consumer side of a `.sfr` campaign store.
//
// Frames are validated (magic, version, per-frame CRC) as they are read, so
// a full pass never holds more than one record in memory — analysis over a
// 100M-record store streams. Two reading disciplines:
//
//   Strict (default): any malformed byte throws StoreError. This is what
//   `report`/`merge` use — a corrupt analysis input should never be
//   silently partial.
//
//   Tolerate-torn-tail: a frame cut short *at the very end of the file* —
//   the signature of a writer killed mid-append — terminates the stream
//   cleanly instead of throwing, reporting the byte offset of the last
//   valid frame. The resume scheduler truncates the file there and
//   re-executes only the injections past the tear. Corruption that is NOT
//   at the tail (a bad CRC with further frames behind it) still throws.
//
//   Stores written with commit markers (store::WriteOptions::commit_markers)
//   tighten the tolerant discipline: a flush is multi-frame (a batch of 'R'
//   frames plus their 'P' footprints), so a tear mid-flush can leave a
//   valid-looking orphan — an 'R' whose companion 'P' was lost. Once a
//   kCommitFrame has been seen, the safe truncation point is therefore the
//   last commit marker, and anything after it (complete frames included)
//   counts as torn. read_store() additionally drops the uncommitted-tail
//   records from its materialised result; the streaming APIs deliver frames
//   as they validate and leave the rollback visible via torn_tail() /
//   valid_bytes() only.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sfi/aggregate.hpp"
#include "store/codec.hpp"

namespace sfi::store {

struct ReadOptions {
  bool tolerate_torn_tail = false;
};

class StoreReader {
 public:
  StoreReader(const std::string& path, ReadOptions opts = {});
  ~StoreReader();
  StoreReader(StoreReader&&) noexcept;
  StoreReader& operator=(StoreReader&&) noexcept;

  [[nodiscard]] const CampaignMeta& meta() const { return meta_; }

  /// Read the next *injection* record. Returns false at end of stream (or
  /// at a tolerated torn tail). Frames of other kinds — propagation
  /// footprints, kinds from future format extensions — are CRC-validated
  /// and skipped, so record-only consumers (report, merge, resume) read
  /// stores with forensic frames unchanged.
  [[nodiscard]] bool next(StoredRecord& out);

  /// Read the next frame of any kind (validated, payload returned raw).
  /// Returns false at end of stream. Forensics consumers use this to pull
  /// kPropagationFrame payloads out of a mixed store.
  [[nodiscard]] bool next_frame(u8& kind, std::vector<u8>& payload);

  /// True once the stream ended at a torn (incomplete/corrupt) final frame
  /// under tolerate_torn_tail.
  [[nodiscard]] bool torn_tail() const { return torn_tail_; }

  /// Byte offset of the safe truncation point for resume-after-crash: just
  /// past the last frame that validated, or — once a commit marker has been
  /// seen and the stream ended past one — just past the last commit marker.
  [[nodiscard]] u64 valid_bytes() const { return valid_bytes_; }

  /// Byte offset just past the most recently returned frame. Lets
  /// materialising readers decide, post hoc, whether a frame fell inside the
  /// committed prefix (offset <= valid_bytes() once the stream ends).
  [[nodiscard]] u64 tell() const;

 private:
  /// Read one frame; returns false at clean end of stream or tolerated torn
  /// tail. `tolerant` false forces strict behaviour regardless of options
  /// (the header frame must always be intact).
  bool read_frame_impl(u8& kind, std::vector<u8>& payload, bool tolerant);
  bool read_frame(u8& kind, std::vector<u8>& payload);
  bool read_frame_strict(u8& kind, std::vector<u8>& payload);

  struct Impl;
  std::unique_ptr<Impl> impl_;
  CampaignMeta meta_;
  bool torn_tail_ = false;
  u64 valid_bytes_ = 0;
  /// Offset just past the last kCommitFrame (or the header before any).
  u64 last_commit_ = 0;
  bool saw_commit_ = false;
};

/// A fully materialised store.
struct StoreContents {
  CampaignMeta meta;
  std::vector<StoredRecord> records;
  bool torn_tail = false;
  u64 valid_bytes = 0;
};

[[nodiscard]] StoreContents read_store(const std::string& path,
                                       ReadOptions opts = {});

/// Stream `path`, calling `fn` per record; returns the record count.
u64 for_each_record(const std::string& path,
                    const std::function<void(const StoredRecord&)>& fn,
                    ReadOptions opts = {});

/// Stream `path`, calling `fn` per propagation footprint (kPropagationFrame);
/// returns the footprint count. Injection records are skipped.
u64 for_each_propagation(
    const std::string& path,
    const std::function<void(const inject::PropagationRecord&)>& fn,
    ReadOptions opts = {});

/// Rebuild the campaign aggregation (outcome histogram, by-unit, by-type)
/// purely from a store file — no simulation.
[[nodiscard]] std::pair<CampaignMeta, inject::CampaignAggregate>
aggregate_store(const std::string& path, ReadOptions opts = {});

}  // namespace sfi::store
