// Payload codecs for the two frame kinds, plus frame assembly/verification.
// Encoding is canonical: a given (meta, records) set has exactly one byte
// representation, which is what lets `merge` promise byte-identical output
// for equal record sets (the resume-equivalence proof in tests/test_store).
#pragma once

#include <span>
#include <vector>

#include "sfi/propagation.hpp"
#include "sfi/record.hpp"
#include "store/format.hpp"

namespace sfi::store {

/// One persisted injection: its campaign index plus the full record.
struct StoredRecord {
  u32 index = 0;  ///< injection index i within the campaign; RNG = (seed, i)
  inject::InjectionRecord rec;
};

[[nodiscard]] std::vector<u8> encode_meta(const CampaignMeta& meta);
[[nodiscard]] CampaignMeta decode_meta(std::span<const u8> payload);

[[nodiscard]] std::vector<u8> encode_record(const StoredRecord& sr);
[[nodiscard]] StoredRecord decode_record(std::span<const u8> payload);

[[nodiscard]] std::vector<u8> encode_propagation(
    const inject::PropagationRecord& rec);
[[nodiscard]] inject::PropagationRecord decode_propagation(
    std::span<const u8> payload);

/// Wrap a payload into a CRC-framed byte sequence ready for appending.
[[nodiscard]] std::vector<u8> make_frame(u8 kind, std::span<const u8> payload);

}  // namespace sfi::store
