// Payload codecs for the two frame kinds, plus frame assembly/verification.
// Encoding is canonical: a given (meta, records) set has exactly one byte
// representation, which is what lets `merge` promise byte-identical output
// for equal record sets (the resume-equivalence proof in tests/test_store).
#pragma once

#include <span>
#include <vector>

#include "sfi/propagation.hpp"
#include "sfi/record.hpp"
#include "store/format.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace sfi::store {

/// One persisted injection: its campaign index plus the full record.
struct StoredRecord {
  u32 index = 0;  ///< injection index i within the campaign; RNG = (seed, i)
  inject::InjectionRecord rec;
};

[[nodiscard]] std::vector<u8> encode_meta(const CampaignMeta& meta);
[[nodiscard]] CampaignMeta decode_meta(std::span<const u8> payload);

[[nodiscard]] std::vector<u8> encode_record(const StoredRecord& sr);
[[nodiscard]] StoredRecord decode_record(std::span<const u8> payload);

[[nodiscard]] std::vector<u8> encode_propagation(
    const inject::PropagationRecord& rec);
[[nodiscard]] inject::PropagationRecord decode_propagation(
    std::span<const u8> payload);

/// Farm-worker liveness beacon ('B' frame), flushed immediately before an
/// injection runs. `index` is the campaign index in flight; a heartbeat with
/// no later record for `index` fingers that injection as the one that took
/// the worker down.
/// `index` value for heartbeats with nothing in flight (the startup beacon
/// a worker emits before its first assignment).
inline constexpr u32 kHeartbeatIdle = 0xFFFFFFFFu;

struct HeartbeatFrame {
  u32 worker = 0;    ///< worker id within the farm
  u64 seq = 0;       ///< monotonically increasing per worker
  u32 index = 0;     ///< campaign index about to execute (kHeartbeatIdle)
  u64 executed = 0;  ///< injections completed by this worker so far
};

/// Farm shard assignment echo ('A' frame): worker accepted (shard, attempt).
struct AssignmentFrame {
  u32 worker = 0;
  u64 shard = 0;
  u32 attempt = 0;  ///< 0 on first dispatch, +1 per supervised retry
  u32 count = 0;    ///< indices in this assignment
};

[[nodiscard]] std::vector<u8> encode_heartbeat(const HeartbeatFrame& hb);
[[nodiscard]] HeartbeatFrame decode_heartbeat(std::span<const u8> payload);

[[nodiscard]] std::vector<u8> encode_assignment(const AssignmentFrame& as);
[[nodiscard]] AssignmentFrame decode_assignment(std::span<const u8> payload);

/// Farm-worker metrics snapshot ('M' frame): the worker's cumulative
/// metrics registry at one point in time. `seq` is monotonically increasing
/// per worker process; the coordinator keeps only the latest snapshot per
/// (slot, generation), so a replayed or reordered frame is harmless.
struct MetricsFrame {
  u32 worker = 0;  ///< worker id within the farm
  u64 seq = 0;     ///< monotonically increasing per worker process
  telemetry::MetricsSnapshot snapshot;
};

[[nodiscard]] std::vector<u8> encode_metrics(const MetricsFrame& mf);
[[nodiscard]] MetricsFrame decode_metrics(std::span<const u8> payload);

/// Distributed-tracing span ('S' frame): self-describing (process label and
/// wall-anchored timestamps travel inside), so a stitcher can reassemble a
/// fleet timeline from shard stores alone.
[[nodiscard]] std::vector<u8> encode_span(const telemetry::SpanRecord& span);
[[nodiscard]] telemetry::SpanRecord decode_span(std::span<const u8> payload);

/// Wrap a payload into a CRC-framed byte sequence ready for appending.
[[nodiscard]] std::vector<u8> make_frame(u8 kind, std::span<const u8> payload);

}  // namespace sfi::store
