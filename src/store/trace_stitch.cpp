#include "store/trace_stitch.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>

#include "store/reader.hpp"

namespace sfi::store {

namespace {

namespace fs = std::filesystem;

/// `path` minus a trailing ".sfr" (shard/sidecar names derive from this,
/// mirroring the farm coordinator's shard_file_path()).
std::string base_of(const std::string& path) {
  if (path.size() > 4 && path.ends_with(".sfr")) {
    return path.substr(0, path.size() - 4);
  }
  return path;
}

/// Crude field extraction from a flight-recorder JSONL line. The recorder's
/// lines are machine-written ({"t_us":N,"ev":"...",...}), so a substring
/// scan is reliable enough for a postmortem overlay; anything unparsable
/// degrades to a generic instant, never an error.
u64 extract_t_us(const std::string& line) {
  const auto key = line.find("\"t_us\":");
  if (key == std::string::npos) return 0;
  u64 v = 0;
  for (std::size_t i = key + 7; i < line.size(); ++i) {
    const char c = line[i];
    if (c < '0' || c > '9') break;
    v = v * 10 + static_cast<u64>(c - '0');
  }
  return v;
}

std::string extract_ev(const std::string& line) {
  const auto key = line.find("\"ev\":\"");
  if (key == std::string::npos) return "event";
  const auto begin = key + 6;
  const auto end = line.find('"', begin);
  if (end == std::string::npos) return "event";
  return line.substr(begin, end - begin);
}

}  // namespace

std::vector<telemetry::SpanRecord> read_spans(const std::string& path) {
  std::vector<telemetry::SpanRecord> out;
  if (!fs::exists(path)) return out;
  try {
    StoreReader reader(path, {.tolerate_torn_tail = true});
    u8 kind = 0;
    std::vector<u8> payload;
    while (reader.next_frame(kind, payload)) {
      if (kind != kSpanFrame) continue;
      try {
        out.push_back(decode_span(payload));
      } catch (const StoreError&) {
        // A span a newer build wrote with fields we cannot decode: skip it,
        // keep the rest of the timeline.
      }
    }
  } catch (const StoreError&) {
    // Unreadable store (bad magic, mid-file corruption): contribute nothing
    // rather than sink the whole stitch — other shards still have spans.
  }
  return out;
}

std::vector<std::string> discover_trace_inputs(const std::string& store_path) {
  std::vector<std::string> inputs;
  std::set<std::string> seen;
  const auto add = [&](const std::string& p) {
    if (seen.insert(p).second) inputs.push_back(p);
  };

  add(store_path);
  const std::string base = base_of(store_path);
  add(base + ".trace.sfr");

  // Sibling shard stores (`<base>.w<slot>g<gen>.sfr`), `.hf` fatal-synthesis
  // stores, and postmortem dumps, discovered by prefix scan so the stitcher
  // needs no manifest of what the coordinator spawned.
  const fs::path dir = fs::path(store_path).parent_path().empty()
                           ? fs::path(".")
                           : fs::path(store_path).parent_path();
  const std::string stem = fs::path(base).filename().string() + ".";
  std::vector<std::string> shards;
  std::vector<std::string> postmortems;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (!name.starts_with(stem)) continue;
    if (name.ends_with(".sfr")) shards.push_back(entry.path().string());
    if (name.ends_with(".postmortem.jsonl")) {
      postmortems.push_back(entry.path().string());
    }
  }
  std::sort(shards.begin(), shards.end());
  std::sort(postmortems.begin(), postmortems.end());
  for (const std::string& s : shards) add(s);
  for (const std::string& p : postmortems) add(p);
  return inputs;
}

StitchResult stitch_trace(const std::string& store_path) {
  StitchResult result;
  std::vector<telemetry::SpanRecord> spans;
  std::vector<std::string> postmortems;
  for (const std::string& input : discover_trace_inputs(store_path)) {
    if (input.ends_with(".postmortem.jsonl")) {
      postmortems.push_back(input);
      continue;
    }
    std::vector<telemetry::SpanRecord> got = read_spans(input);
    if (!got.empty()) ++result.files;
    spans.insert(spans.end(), std::make_move_iterator(got.begin()),
                 std::make_move_iterator(got.end()));
  }

  // Postmortem lines are stamped on the dead process's telemetry steady
  // clock (no wall anchor survives a SIGKILL), so they get their own row,
  // shifted to the trace start: relative spacing is real, placement is not.
  u64 wall_min = ~0ull;
  for (const telemetry::SpanRecord& s : spans) {
    wall_min = std::min(wall_min, s.ts_us);
  }
  if (wall_min == ~0ull) wall_min = 0;
  u64 synthetic_pid = u64{1} << 31;  // above any real pid
  for (const std::string& path : postmortems) {
    std::ifstream in(path);
    if (!in) continue;
    std::string line;
    bool contributed = false;
    const u64 pid = synthetic_pid++;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      telemetry::SpanRecord s;
      s.pid = pid;
      s.ph = 'i';
      s.ts_us = wall_min + extract_t_us(line);
      s.process = "postmortem: " + fs::path(path).filename().string();
      s.name = extract_ev(line);
      s.cat = "postmortem";
      spans.push_back(std::move(s));
      contributed = true;
    }
    if (contributed) ++result.files;
  }

  std::stable_sort(spans.begin(), spans.end(),
                   [](const telemetry::SpanRecord& a,
                      const telemetry::SpanRecord& b) {
                     return a.ts_us < b.ts_us;
                   });
  std::set<u64> pids;
  for (const telemetry::SpanRecord& s : spans) pids.insert(s.pid);
  result.spans = spans.size();
  result.processes = pids.size();
  result.json = telemetry::spans_to_chrome_json(spans);
  return result;
}

}  // namespace sfi::store
