// CheckpointStore: delta-compressed interval snapshots of the reference run.
//
// Every injection used to replay the workload fault-free from cycle 0 to the
// injection cycle — for a window of W cycles that is ~W/2 cycles of pure
// replay per run, the dominant cost of a large campaign. The paper's AWAN
// flow instead *reloads checkpoints* between injections (§2, Figure 1). This
// store reproduces that: during one extra fault-free replay it snapshots the
// machine every K cycles, and the runner warm-starts each injection from the
// nearest checkpoint at or before the fault cycle, fast-forwarding only the
// remainder (expected K/2 cycles instead of W/2).
//
// Checkpoints are stored XOR-delta + zero-run encoded against their stored
// predecessor, with a full snapshot every `full_every` records to bound the
// reconstruction chain. The reference execution is deterministic and a
// snapshot captures *all* machine state (latches + aux: arrays, main store,
// scrub cursor), so a restored state at cycle c is by construction equal to
// the replayed state at cycle c — the builder asserts this against the
// golden trace's per-cycle registry hash.
//
// Build once (single-threaded, cycles strictly increasing), then share
// read-only: materialize() only touches immutable data and caller storage,
// so any number of workers may reconstruct checkpoints concurrently.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"
#include "emu/emulator.hpp"

namespace sfi::emu {

struct GoldenTrace;

/// Sentinel interval: pick K automatically from the window size and the
/// memory budget (campaign/beam config default).
inline constexpr Cycle kCkptAuto = ~Cycle{0};

struct CheckpointStoreConfig {
  /// Snapshot every `interval` cycles; 0 = auto from window + budget.
  Cycle interval = 0;
  /// Bound on resident encoded bytes: once reached, further snapshots are
  /// dropped (runs fall back to the nearest earlier checkpoint).
  u64 memory_budget_bytes = 64ull << 20;
  /// A full (non-delta) snapshot every N records bounds reconstruction to
  /// at most N-1 delta applications.
  u32 full_every = 16;
};

class CheckpointStore {
 public:
  CheckpointStore() = default;
  explicit CheckpointStore(const CheckpointStoreConfig& cfg)
      : budget_bytes_(cfg.memory_budget_bytes),
        full_every_(cfg.full_every < 1 ? 1 : cfg.full_every) {}

  /// Append a snapshot. Cycles must be strictly increasing and every
  /// checkpoint must describe the same machine (same latch/aux sizes).
  void add(const Checkpoint& cp);

  [[nodiscard]] std::size_t size() const { return recs_.size(); }
  [[nodiscard]] bool empty() const { return recs_.empty(); }

  /// Index of the latest checkpoint with cycle <= c, if any.
  [[nodiscard]] std::optional<std::size_t> index_at_or_before(Cycle c) const;
  [[nodiscard]] Cycle cycle_at(std::size_t idx) const;

  /// Reconstruct checkpoint `idx` into `out` (resized as needed; restores
  /// in place on repeat calls). Thread-safe: const, writes only to `out`.
  void materialize(std::size_t idx, Checkpoint& out) const;

  /// Encoded bytes held resident (deltas + periodic full snapshots).
  [[nodiscard]] u64 resident_bytes() const { return resident_bytes_; }
  /// Snapshots dropped because the memory budget was reached.
  [[nodiscard]] u64 dropped() const { return dropped_; }

  /// The interval the store was built at (reporting only).
  [[nodiscard]] Cycle interval() const { return interval_; }
  void set_interval(Cycle k) { interval_ = k; }

 private:
  struct Rec {
    Cycle cycle = 0;
    std::size_t base = 0;       ///< index of this chain's full snapshot
    bool full = false;
    /// Zero-run encoding: alternating (skip, literal_count) word pairs.
    std::vector<u32> runs;
    /// Literal payload: raw words (full) or XOR-vs-predecessor (delta).
    std::vector<u64> words;
  };

  void flatten(const Checkpoint& cp, std::vector<u64>& out) const;
  void apply(const Rec& r, Checkpoint& out, bool xor_mode) const;
  void write_word(Checkpoint& out, std::size_t pos, u64 v,
                  bool xor_mode) const;

  std::vector<Rec> recs_;
  u64 budget_bytes_ = 64ull << 20;
  u32 full_every_ = 16;
  Cycle interval_ = 0;
  u64 resident_bytes_ = 0;
  u64 dropped_ = 0;

  // machine dimensions, fixed by the first add()
  u32 num_bits_ = 0;
  std::size_t latch_words_ = 0;
  std::size_t aux_bytes_ = 0;
  std::size_t total_words_ = 0;

  // builder scratch (unused after the last add)
  std::vector<u64> prev_flat_;
  std::vector<u64> cur_flat_;
  std::size_t last_full_ = 0;
};

/// Auto interval: conservatively assume every stored checkpoint costs a full
/// snapshot, fit as many as the budget allows (clamped to [2, 4096]) and
/// spread them over the window.
[[nodiscard]] Cycle auto_checkpoint_interval(Cycle last_cycle,
                                             std::size_t snapshot_bytes,
                                             u64 budget_bytes);

/// Build a store by replaying the emulator's loaded workload fault-free from
/// reset through `last_cycle`, snapshotting every K cycles (K from `cfg`,
/// auto-tuned when cfg.interval == 0). When `trace` is given, every snapshot
/// is asserted equal to the golden trace's registry hash at that cycle —
/// the determinism guarantee that makes warm-started injections bit-exact.
/// The emulator is left at `last_cycle`.
[[nodiscard]] CheckpointStore build_checkpoint_store(
    Emulator& emu, Cycle last_cycle, const CheckpointStoreConfig& cfg = {},
    const GoldenTrace* trace = nullptr);

}  // namespace sfi::emu
