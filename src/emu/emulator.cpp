#include "emu/emulator.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sfi::emu {

Emulator::Emulator(Model& model)
    : model_(model),
      cur_(model.registry().total_bits()),
      nxt_(model.registry().total_bits()) {
  require(model.registry().finalized(),
          "Emulator requires a finalized LatchRegistry");
  reset();
}

void Emulator::reset() {
  cur_.fill_zero();
  model_.reset(cur_);
  cycle_ = 0;
  forces_.clear();
}

void Emulator::step() {
  // Latch semantics: unwritten fields carry their value to the next cycle.
  nxt_ = cur_;
  model_.evaluate(netlist::CycleFrame{cur_, nxt_});
  std::swap(cur_, nxt_);
  ++cycle_;
  ++cycles_evaluated_;
  if (!forces_.empty()) apply_forces();
}

void Emulator::run(Cycle n) {
  for (Cycle i = 0; i < n; ++i) step();
}

void Emulator::run_polled(Cycle max_cycles, Cycle interval,
                          const std::function<bool(const Emulator&)>& poll) {
  require(interval >= 1, "run_polled interval >= 1");
  Cycle done = 0;
  while (done < max_cycles) {
    const Cycle chunk = std::min(interval, max_cycles - done);
    run(chunk);
    done += chunk;
    ++hostlink_.status_reads;
    if (poll(*this)) return;
  }
}

void Emulator::flip_latch(BitIndex bit) {
  cur_.flip_bit(bit);
  ++hostlink_.injections;
}

void Emulator::force_latch(BitIndex bit, bool value, Cycle duration) {
  require(duration >= 1, "force_latch duration >= 1");
  cur_.set_bit(bit, value);
  ++hostlink_.injections;
  forces_.push_back(Force{bit, value, duration});
}

void Emulator::clear_forces() { forces_.clear(); }

void Emulator::apply_forces() {
  for (Force& f : forces_) {
    cur_.set_bit(f.bit, f.value);
    --f.remaining;
  }
  std::erase_if(forces_, [](const Force& f) { return f.remaining == 0; });
}

RasStatus Emulator::ras() {
  ++hostlink_.status_reads;
  return model_.ras_status(cur_);
}

Checkpoint Emulator::save_checkpoint() {
  Checkpoint cp;
  cp.latches = cur_;
  cp.cycle = cycle_;
  model_.save_aux(cp.aux);
  ++hostlink_.checkpoint_ops;
  return cp;
}

void Emulator::save_checkpoint(Checkpoint& out) {
  if (out.latches.num_bits() != cur_.num_bits()) {
    out.latches = netlist::StateVector(cur_.num_bits());
  }
  const auto src = cur_.words();
  std::copy(src.begin(), src.end(), out.latches.words_mut().begin());
  out.cycle = cycle_;
  // save_aux appends; drop the previous snapshot but keep its capacity.
  out.aux.clear();
  model_.save_aux(out.aux);
  ++hostlink_.checkpoint_ops;
}

void Emulator::restore_checkpoint(const Checkpoint& cp) {
  require(cp.latches.num_bits() == cur_.num_bits(),
          "checkpoint does not match the model's latch count");
  // In-place word copy: the restore path runs once per injection, so it
  // must never reallocate cur_ or the model's aux buffers.
  const auto src = cp.latches.words();
  std::copy(src.begin(), src.end(), cur_.words_mut().begin());
  cycle_ = cp.cycle;
  forces_.clear();
  model_.restore_aux(cp.aux);
  cycles_fast_forwarded_ += cp.cycle;
  ++hostlink_.checkpoint_ops;
}

}  // namespace sfi::emu
