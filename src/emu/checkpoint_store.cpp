#include "emu/checkpoint_store.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "emu/golden_trace.hpp"

namespace sfi::emu {

namespace {

/// Approximate heap footprint of one record beyond its payload vectors.
constexpr u64 kRecOverheadBytes = 64;

u64 rec_bytes(const std::vector<u32>& runs, const std::vector<u64>& words) {
  return kRecOverheadBytes + runs.size() * sizeof(u32) +
         words.size() * sizeof(u64);
}

}  // namespace

void CheckpointStore::flatten(const Checkpoint& cp,
                              std::vector<u64>& out) const {
  out.resize(total_words_);
  const auto words = cp.latches.words();
  std::copy(words.begin(), words.end(), out.begin());
  std::size_t pos = latch_words_;
  for (std::size_t off = 0; off < aux_bytes_; off += 8) {
    const std::size_t n = std::min<std::size_t>(8, aux_bytes_ - off);
    u64 w = 0;
    std::memcpy(&w, cp.aux.data() + off, n);
    out[pos++] = w;
  }
}

void CheckpointStore::add(const Checkpoint& cp) {
  if (recs_.empty()) {
    num_bits_ = cp.latches.num_bits();
    latch_words_ = cp.latches.words().size();
    aux_bytes_ = cp.aux.size();
    total_words_ = latch_words_ + (aux_bytes_ + 7) / 8;
  } else {
    require(cp.latches.num_bits() == num_bits_ && cp.aux.size() == aux_bytes_,
            "CheckpointStore: snapshot dimensions changed mid-build");
    require(cp.cycle > recs_.back().cycle,
            "CheckpointStore: cycles must be strictly increasing");
  }
  flatten(cp, cur_flat_);

  Rec r;
  r.cycle = cp.cycle;
  r.full = recs_.empty() || (recs_.size() - last_full_) >= full_every_;
  if (r.full) {
    r.base = recs_.size();
    r.runs = {0, static_cast<u32>(total_words_)};
    r.words = cur_flat_;
  } else {
    r.base = last_full_;
    // XOR + zero-run encode vs the previous *stored* snapshot.
    std::size_t pos = 0;
    while (pos < total_words_) {
      std::size_t skip = pos;
      while (skip < total_words_ && cur_flat_[skip] == prev_flat_[skip]) {
        ++skip;
      }
      if (skip == total_words_) break;
      std::size_t end = skip;
      while (end < total_words_ && cur_flat_[end] != prev_flat_[end]) ++end;
      r.runs.push_back(static_cast<u32>(skip - pos));
      r.runs.push_back(static_cast<u32>(end - skip));
      for (std::size_t i = skip; i < end; ++i) {
        r.words.push_back(cur_flat_[i] ^ prev_flat_[i]);
      }
      pos = end;
    }
  }

  const u64 bytes = rec_bytes(r.runs, r.words);
  if (!recs_.empty() && resident_bytes_ + bytes > budget_bytes_) {
    // Budget reached: drop this snapshot. prev_flat_ keeps describing the
    // last *stored* record, so later deltas stay chain-consistent.
    ++dropped_;
    return;
  }
  if (r.full) last_full_ = recs_.size();
  resident_bytes_ += bytes;
  recs_.push_back(std::move(r));
  std::swap(prev_flat_, cur_flat_);
}

std::optional<std::size_t> CheckpointStore::index_at_or_before(
    Cycle c) const {
  if (recs_.empty() || recs_.front().cycle > c) return std::nullopt;
  const auto it = std::upper_bound(
      recs_.begin(), recs_.end(), c,
      [](Cycle cycle, const Rec& r) { return cycle < r.cycle; });
  return static_cast<std::size_t>(it - recs_.begin()) - 1;
}

Cycle CheckpointStore::cycle_at(std::size_t idx) const {
  require(idx < recs_.size(), "CheckpointStore::cycle_at out of range");
  return recs_[idx].cycle;
}

void CheckpointStore::write_word(Checkpoint& out, std::size_t pos, u64 v,
                                 bool xor_mode) const {
  if (pos < latch_words_) {
    u64& w = out.latches.words_mut()[pos];
    w = xor_mode ? (w ^ v) : v;
    return;
  }
  const std::size_t off = (pos - latch_words_) * 8;
  const std::size_t n = std::min<std::size_t>(8, aux_bytes_ - off);
  u64 cur = 0;
  std::memcpy(&cur, out.aux.data() + off, n);
  cur = xor_mode ? (cur ^ v) : v;
  std::memcpy(out.aux.data() + off, &cur, n);
}

void CheckpointStore::apply(const Rec& r, Checkpoint& out,
                            bool xor_mode) const {
  std::size_t pos = 0;
  std::size_t lit = 0;
  for (std::size_t i = 0; i + 1 < r.runs.size(); i += 2) {
    pos += r.runs[i];
    const u32 count = r.runs[i + 1];
    for (u32 k = 0; k < count; ++k) {
      write_word(out, pos++, r.words[lit++], xor_mode);
    }
  }
  ensure(lit == r.words.size(), "CheckpointStore: corrupt run encoding");
}

void CheckpointStore::materialize(std::size_t idx, Checkpoint& out) const {
  require(idx < recs_.size(), "CheckpointStore::materialize out of range");
  if (out.latches.num_bits() != num_bits_) {
    out.latches = netlist::StateVector(num_bits_);
  }
  out.aux.resize(aux_bytes_);
  const Rec& r = recs_[idx];
  apply(recs_[r.base], out, /*xor_mode=*/false);
  for (std::size_t j = r.base + 1; j <= idx; ++j) {
    apply(recs_[j], out, /*xor_mode=*/true);
  }
  out.cycle = r.cycle;
}

Cycle auto_checkpoint_interval(Cycle last_cycle, std::size_t snapshot_bytes,
                               u64 budget_bytes) {
  const u64 max_ckpts = std::clamp<u64>(
      budget_bytes / std::max<u64>(snapshot_bytes, 1), 2, 4096);
  return std::max<Cycle>(1, (last_cycle + max_ckpts - 1) / max_ckpts);
}

CheckpointStore build_checkpoint_store(Emulator& emu, Cycle last_cycle,
                                       const CheckpointStoreConfig& cfg,
                                       const GoldenTrace* trace) {
  emu.reset();
  Cycle interval = cfg.interval;
  if (interval == 0) {
    const Checkpoint probe = emu.save_checkpoint();
    interval = auto_checkpoint_interval(last_cycle, probe.size_bytes(),
                                        cfg.memory_budget_bytes);
  }
  CheckpointStore store(cfg);
  store.set_interval(interval);
  const auto& masks = emu.model().registry().hash_masks();
  for (Cycle c = 1; c <= last_cycle; ++c) {
    emu.step();
    if (c % interval != 0) continue;
    const Checkpoint cp = emu.save_checkpoint();
    if (trace != nullptr && trace->has_cycle(c - 1)) {
      ensure(cp.latches.masked_hash(masks) == trace->hashes[c - 1],
             "checkpoint diverged from the golden trace: the reference "
             "execution is not deterministic");
    }
    store.add(cp);
  }
  return store;
}

}  // namespace sfi::emu
