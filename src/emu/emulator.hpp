// Emulator: the cycle-based emulation harness ("AWAN" stand-in).
//
// Provides the control surface the paper's SFI framework uses:
//   1. load design (a Model),
//   2. run the workload cycle by cycle,
//   3. flip chosen latch bits at chosen cycles (toggle or sticky mode),
//   4. read the fault-isolation/RAS status,
//   5. reload from a checkpoint between injections.
//
// It also accounts for host↔engine communication: every ras_status() read
// and every injection is one host interaction, and run_polled() models the
// "pre-specified interval" FIR polling the paper describes (§2).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "emu/model.hpp"
#include "netlist/state_vector.hpp"

namespace sfi::emu {

/// A reloadable machine snapshot (latches + arrays/memory).
struct Checkpoint {
  netlist::StateVector latches;
  std::vector<u8> aux;
  Cycle cycle = 0;

  /// Raw snapshot footprint (what one uncompressed checkpoint costs).
  [[nodiscard]] std::size_t size_bytes() const {
    return latches.words().size() * sizeof(u64) + aux.size();
  }
};

/// Host↔engine interaction counters (the throughput-limiting factor the
/// paper highlights; exercised by bench/ablation_hostlink).
struct HostLinkStats {
  u64 status_reads = 0;
  u64 injections = 0;
  u64 checkpoint_ops = 0;
  [[nodiscard]] u64 total() const {
    return status_reads + injections + checkpoint_ops;
  }
};

class Emulator {
 public:
  /// The model must outlive the emulator. The registry must be finalized.
  explicit Emulator(Model& model);

  /// Reset the machine to power-on state for the model's loaded workload.
  void reset();

  /// Evaluate one cycle.
  void step();
  /// Evaluate up to `n` further cycles.
  void run(Cycle n);
  /// Run until `poll` (invoked every `interval` cycles with the current
  /// state) returns true, or until `max_cycles` elapse. Each poll is one
  /// host interaction.
  void run_polled(Cycle max_cycles, Cycle interval,
                  const std::function<bool(const Emulator&)>& poll);

  [[nodiscard]] Cycle cycle() const { return cycle_; }
  [[nodiscard]] const netlist::StateVector& state() const { return cur_; }

  /// Arm per-cycle access recording on both frame vectors (they swap every
  /// step, and the model reads cur and reads/writes nxt). Pass nullptr to
  /// disarm. The caller owns the recorder's begin_cycle() cadence; the lane
  /// engine clears it immediately before each recorded step.
  void set_access_recorder(netlist::AccessRecorder* rec) {
    cur_.set_recorder(rec);
    nxt_.set_recorder(rec);
  }
  [[nodiscard]] Model& model() { return model_; }
  [[nodiscard]] const Model& model() const { return model_; }

  // --- fault injection port ---

  /// Toggle mode: flip one latch bit in the current state ("the fault may
  /// exist for the duration of a cycle").
  void flip_latch(BitIndex bit);

  /// Sticky mode: force the bit to `value` for the next `duration` cycles
  /// (reapplied after every clock edge), then release.
  void force_latch(BitIndex bit, bool value, Cycle duration);

  /// Cancel all outstanding sticky forces.
  void clear_forces();

  // --- RAS observation ---
  [[nodiscard]] RasStatus ras();

  // --- checkpointing ---
  [[nodiscard]] Checkpoint save_checkpoint();
  /// Save in place into preallocated storage (the footprint tracker snapshots
  /// the pre-fault state once per injection; this path must not allocate
  /// after the first call).
  void save_checkpoint(Checkpoint& out);
  /// Restore in place into preallocated storage: no allocation on the
  /// injection hot path. The checkpoint must match the model's latch count.
  void restore_checkpoint(const Checkpoint& cp);

  [[nodiscard]] const HostLinkStats& hostlink() const { return hostlink_; }
  [[nodiscard]] u64 cycles_evaluated() const { return cycles_evaluated_; }
  /// Cycles skipped by restoring mid-run checkpoints instead of replaying
  /// from cycle 0 (each restore at cycle c saves c cycles of replay).
  [[nodiscard]] u64 cycles_fast_forwarded() const {
    return cycles_fast_forwarded_;
  }

 private:
  struct Force {
    BitIndex bit;
    bool value;
    Cycle remaining;
  };
  void apply_forces();

  Model& model_;
  netlist::StateVector cur_;
  netlist::StateVector nxt_;
  std::vector<Force> forces_;
  Cycle cycle_ = 0;
  u64 cycles_evaluated_ = 0;
  u64 cycles_fast_forwarded_ = 0;
  HostLinkStats hostlink_;
};

}  // namespace sfi::emu
