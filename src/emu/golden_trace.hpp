// GoldenTrace: the fault-free reference execution.
//
// Before a campaign, the workload is run once without faults and the
// per-cycle fingerprint of the functional latch state is recorded. An
// injected run that re-matches the fingerprint at the same cycle — with a
// clean RAS status — has provably converged back onto the fault-free
// execution and can be classified VANISHED immediately. This early exit is
// what makes software SFI approach hardware-emulation campaign sizes.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "emu/emulator.hpp"
#include "isa/arch_state.hpp"

namespace sfi::emu {

struct GoldenTrace {
  /// hash[c] = functional-state fingerprint observed at the *end* of cycle c
  /// (i.e. the state entering cycle c+1). Recorded until completion+margin.
  std::vector<u64> hashes;

  /// Cycle at which the workload's STOP was first observed complete.
  Cycle completion_cycle = 0;
  bool completed = false;

  /// Architected state at completion (equals the ISA golden model's result
  /// for a correct core — asserted by the integration tests).
  isa::ArchState final_state;

  /// Fingerprint valid at cycle c?
  [[nodiscard]] bool has_cycle(Cycle c) const { return c < hashes.size(); }
};

/// Run the emulator's current workload fault-free from reset and record the
/// trace. `margin` extra cycles are recorded past completion so that
/// injections landing near the end still have reference fingerprints.
/// The emulator is left in the completed state.
[[nodiscard]] GoldenTrace record_golden_trace(Emulator& emu, Cycle max_cycles,
                                              Cycle margin = 64);

}  // namespace sfi::emu
