// GoldenTrace: the fault-free reference execution.
//
// Before a campaign, the workload is run once without faults and the
// per-cycle fingerprint of the functional latch state is recorded. An
// injected run that re-matches the fingerprint at the same cycle — with a
// clean RAS status — has provably converged back onto the fault-free
// execution and can be classified VANISHED immediately. This early exit is
// what makes software SFI approach hardware-emulation campaign sizes.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "emu/emulator.hpp"
#include "isa/arch_state.hpp"

namespace sfi::emu {

struct GoldenTrace {
  /// hash[c] = functional-state fingerprint observed at the *end* of cycle c
  /// (i.e. the state entering cycle c+1). Recorded until completion+margin.
  std::vector<u64> hashes;

  /// Optional masked state matrix: words[c * word_stride + i] is state word
  /// i AND-ed with hash mask i at the end of cycle c. When present, the
  /// injection runner's per-cycle convergence poll is an exact word compare
  /// (collision-free and cheaper than hashing — a diverged state usually
  /// differs in the first few words). Empty unless requested at recording
  /// time: campaigns and beam runs pay the ~(cycles × state bytes) memory,
  /// one-off diagnostic runs don't need to.
  std::vector<u64> masked_words;
  u32 word_stride = 0;

  /// Cycle at which the workload's STOP was first observed complete.
  Cycle completion_cycle = 0;
  bool completed = false;

  /// Architected state at completion (equals the ISA golden model's result
  /// for a correct core — asserted by the integration tests).
  isa::ArchState final_state;

  /// Fingerprint valid at cycle c?
  [[nodiscard]] bool has_cycle(Cycle c) const { return c < hashes.size(); }
  /// Masked per-cycle states recorded (and for every hashed cycle)?
  [[nodiscard]] bool has_states() const { return word_stride != 0; }
  /// Masked reference state at the end of cycle c (requires has_states()).
  [[nodiscard]] const u64* masked_state(Cycle c) const {
    return masked_words.data() + c * word_stride;
  }
};

/// Run the emulator's current workload fault-free from reset and record the
/// trace. `margin` extra cycles are recorded past completion so that
/// injections landing near the end still have reference fingerprints.
/// The emulator is left in the completed state. With `record_states` the
/// per-cycle masked state is kept alongside the hashes (up to an internal
/// memory cap, after which recording silently degrades to hashes only).
[[nodiscard]] GoldenTrace record_golden_trace(Emulator& emu, Cycle max_cycles,
                                              Cycle margin = 64,
                                              bool record_states = false);

}  // namespace sfi::emu
