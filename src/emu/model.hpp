// Model: the contract between the emulation harness and a device under test.
//
// This is the moral equivalent of "the VHDL loaded onto AWAN" (paper
// Figure 1): the harness knows nothing about the design except its latch
// inventory, its protected arrays, how to evaluate one cycle, and a small
// RAS status window — the same observability a real emulator's fault
// isolation registers provide.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "isa/arch_state.hpp"
#include "netlist/array.hpp"
#include "netlist/field.hpp"
#include "netlist/registry.hpp"
#include "netlist/state_vector.hpp"

namespace sfi::emu {

/// The machine-status window the harness can observe: the paper's
/// "system/processor status registers which flag errors such as checkstops,
/// recoveries and machine errors".
struct RasStatus {
  bool checkstop = false;        ///< fatal error latched; machine stopped
  bool hang_detected = false;    ///< completion watchdog fired
  bool recovery_active = false;  ///< recovery sequence in progress
  u32 recovery_count = 0;        ///< completed recovery actions
  u32 corrected_count = 0;       ///< in-line corrected events (array ECC)
  u64 instructions_completed = 0;
  bool test_finished = false;    ///< workload executed STOP
};

class Model {
 public:
  virtual ~Model() = default;

  Model() = default;
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  /// Latch inventory (must be finalized before the first evaluate call).
  [[nodiscard]] virtual const netlist::LatchRegistry& registry() const = 0;

  /// Protected-array inventory (beam strike targets).
  [[nodiscard]] virtual netlist::ArrayRegistry& arrays() = 0;

  /// Initialize latch reset values and non-latch state (arrays/memory) for
  /// the currently loaded workload.
  virtual void reset(netlist::StateVector& sv) = 0;

  /// Evaluate one cycle: combinational logic reads frame.cur, latch inputs
  /// are staged into frame.nxt (pre-seeded as a copy of frame.cur).
  virtual void evaluate(const netlist::CycleFrame& frame) = 0;

  /// Read the RAS status window from the given latch state.
  [[nodiscard]] virtual RasStatus ras_status(
      const netlist::StateVector& sv) const = 0;

  /// Extract the architected state (AVP end-of-test compare).
  [[nodiscard]] virtual isa::ArchState arch_state(
      const netlist::StateVector& sv) const = 0;

  /// Snapshot / restore of all non-latch state (arrays, memory).
  virtual void save_aux(std::vector<u8>& out) const = 0;
  virtual void restore_aux(std::span<const u8> in) = 0;
};

}  // namespace sfi::emu
