#include "emu/golden_trace.hpp"

#include "common/check.hpp"

namespace sfi::emu {

GoldenTrace record_golden_trace(Emulator& emu, Cycle max_cycles,
                                Cycle margin) {
  emu.reset();
  const auto& masks = emu.model().registry().hash_masks();

  GoldenTrace trace;
  trace.hashes.reserve(max_cycles / 4);

  Cycle extra = 0;
  for (Cycle c = 0; c < max_cycles; ++c) {
    emu.step();
    trace.hashes.push_back(emu.state().masked_hash(masks));
    const RasStatus ras = emu.model().ras_status(emu.state());
    ensure(!ras.checkstop && !ras.hang_detected && ras.recovery_count == 0,
           "golden run reported an error: the fault-free model is broken");
    if (ras.test_finished) {
      if (!trace.completed) {
        trace.completed = true;
        trace.completion_cycle = emu.cycle();
        trace.final_state = emu.model().arch_state(emu.state());
      }
      if (++extra >= margin) break;
    }
  }
  return trace;
}

}  // namespace sfi::emu
