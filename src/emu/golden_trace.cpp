#include "emu/golden_trace.hpp"

#include "common/check.hpp"

namespace sfi::emu {

GoldenTrace record_golden_trace(Emulator& emu, Cycle max_cycles,
                                Cycle margin, bool record_states) {
  emu.reset();
  const auto& masks = emu.model().registry().hash_masks();

  GoldenTrace trace;
  trace.hashes.reserve(max_cycles / 4);
  // Keep the masked-state matrix bounded: a pathological workload (10^5+
  // cycles) would otherwise cost gigabytes; past the cap the runner simply
  // falls back to hash compares.
  constexpr u64 kMaxStateBytes = 256ull << 20;
  if (record_states) {
    trace.word_stride = static_cast<u32>(emu.state().words().size());
  }

  Cycle extra = 0;
  for (Cycle c = 0; c < max_cycles; ++c) {
    emu.step();
    trace.hashes.push_back(emu.state().masked_hash(masks));
    if (trace.word_stride != 0) {
      if ((trace.masked_words.size() + trace.word_stride) * sizeof(u64) >
          kMaxStateBytes) {
        trace.word_stride = 0;
        trace.masked_words.clear();
        trace.masked_words.shrink_to_fit();
      } else {
        const auto words = emu.state().words();
        for (std::size_t i = 0; i < words.size(); ++i) {
          trace.masked_words.push_back(words[i] & masks[i]);
        }
      }
    }
    const RasStatus ras = emu.model().ras_status(emu.state());
    ensure(!ras.checkstop && !ras.hang_detected && ras.recovery_count == 0,
           "golden run reported an error: the fault-free model is broken");
    if (ras.test_finished) {
      if (!trace.completed) {
        trace.completed = true;
        trace.completion_cycle = emu.cycle();
        trace.final_state = emu.model().arch_state(emu.state());
      }
      if (++extra >= margin) break;
    }
  }
  return trace;
}

}  // namespace sfi::emu
