#include "mem/ecc_memory.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "netlist/ecc.hpp"

namespace sfi::mem {

EccMemory::EccMemory(u32 size_bytes)
    : data_(size_bytes), check_(size_bytes / 8, 0) {
  require(size_bytes % 8 == 0, "EccMemory size must be word-multiple");
  fill_zero();
}

void EccMemory::encode_word(u32 word) {
  check_[word] = netlist::ecc_encode(data_.load_u64(static_cast<u64>(word) * 8));
}

void EccMemory::verify_word(u32 word) {
  const u64 raw = data_.load_u64(static_cast<u64>(word) * 8);
  const netlist::EccDecode d = netlist::ecc_decode(raw, check_[word]);
  switch (d.status) {
    case netlist::EccStatus::Clean:
      return;
    case netlist::EccStatus::CorrectedData:
      if (aux_sig_ != nullptr) [[unlikely]] aux_sig_->mix(1, word, d.data);
      data_.store_u64(static_cast<u64>(word) * 8, d.data);
      check_[word] = netlist::ecc_encode(d.data);
      ++corrected_pending_;
      return;
    case netlist::EccStatus::CorrectedCheck:
      if (aux_sig_ != nullptr) [[unlikely]] aux_sig_->mix(2, word, d.data);
      check_[word] = netlist::ecc_encode(d.data);
      ++corrected_pending_;
      return;
    case netlist::EccStatus::Uncorrectable:
      if (aux_sig_ != nullptr) [[unlikely]] aux_sig_->mix(3, word, raw);
      fatal_pending_ = true;
      return;
  }
}

u64 EccMemory::load(u64 addr, u32 size) {
  verify_word(word_of(addr));
  if (((addr & 7) + size) > 8) verify_word(word_of(addr + size - 1));
  return data_.load(addr, size);
}

void EccMemory::store(u64 addr, u64 v, u32 size) {
  if (aux_sig_ != nullptr) [[unlikely]] {
    aux_sig_->mix(4, addr ^ (static_cast<u64>(size) << 56), v);
  }
  // Read-modify-write at word granularity: verify first so a partial store
  // never launders a latent error into a "fresh" code word silently.
  verify_word(word_of(addr));
  if (((addr & 7) + size) > 8) verify_word(word_of(addr + size - 1));
  data_.store(addr, v, size);
  encode_word(word_of(addr));
  if (((addr & 7) + size) > 8) encode_word(word_of(addr + size - 1));
}

void EccMemory::write_block(u64 addr, std::span<const u8> bytes) {
  data_.write_block(addr, bytes);
  if (bytes.empty()) return;
  const u32 first = word_of(addr);
  const u32 last = word_of(addr + bytes.size() - 1);
  // The block may wrap; walk words modulo the store size.
  for (u32 w = first;; w = (w + 1) % num_words()) {
    encode_word(w);
    if (w == last) break;
  }
}

void EccMemory::fill_zero() {
  data_.fill_zero();
  const u8 zero_check = netlist::ecc_encode(0);
  std::fill(check_.begin(), check_.end(), zero_check);
  // Power-on reset covers the controller too: a stale scrub cursor would
  // make two replays of the same workload diverge in their correction
  // timing, breaking the determinism that checkpoint warm-starts rely on.
  corrected_pending_ = 0;
  fatal_pending_ = false;
  scrub_pos_ = 0;
  scrub_timer_ = 0;
}

void EccMemory::scrub_step() {
  if (scrub_timer_ != 0) {
    --scrub_timer_;
    return;
  }
  scrub_timer_ = kScrubInterval - 1;
  verify_word(scrub_pos_);
  scrub_pos_ = (scrub_pos_ + 1) % num_words();
}

u32 EccMemory::take_corrected() {
  const u32 n = corrected_pending_;
  corrected_pending_ = 0;
  return n;
}

bool EccMemory::take_fatal() {
  const bool f = fatal_pending_;
  fatal_pending_ = false;
  return f;
}

u64 EccMemory::corrected_hash(u64 addr, u32 len) {
  if (len != 0) {
    const u32 first = word_of(addr);
    const u32 last = word_of(addr + len - 1);
    for (u32 w = first;; w = (w + 1) % num_words()) {
      verify_word(w);
      if (w == last) break;
    }
  }
  return data_.range_hash(addr, len);
}

bool EccMemory::encoded_image_equals(std::span<const u8> image) const {
  if (image.size() != data_.size() + check_.size()) return false;
  const auto data = data_.bytes();
  return std::equal(image.begin(), image.begin() + data.size(),
                    data.begin()) &&
         std::equal(image.begin() + data.size(), image.end(),
                    check_.begin());
}

void EccMemory::flip_storage_bit(u64 bit) {
  require(bit < storage_bits(), "EccMemory flip out of range");
  if (aux_sig_ != nullptr) [[unlikely]] aux_sig_->mix(5, bit, 0);
  const auto word = static_cast<u32>(bit / 72);
  const auto local = static_cast<u32>(bit % 72);
  if (local < 64) {
    const u64 a = static_cast<u64>(word) * 8;
    data_.store_u64(a, data_.load_u64(a) ^ (u64{1} << local));
  } else {
    check_[word] ^= static_cast<u8>(1u << (local - 64));
  }
}

void EccMemory::save(std::vector<u8>& out) const {
  data_.save(out);
  out.insert(out.end(), check_.begin(), check_.end());
  const u32 header[4] = {corrected_pending_,
                         static_cast<u32>(fatal_pending_), scrub_pos_,
                         scrub_timer_};
  const auto* p = reinterpret_cast<const u8*>(header);
  out.insert(out.end(), p, p + sizeof(header));
}

void EccMemory::load_snapshot(std::span<const u8>& in) {
  data_.load_snapshot(in);
  require(in.size() >= check_.size() + 16, "EccMemory snapshot underrun");
  std::memcpy(check_.data(), in.data(), check_.size());
  in = in.subspan(check_.size());
  u32 header[4];
  std::memcpy(header, in.data(), sizeof(header));
  in = in.subspan(sizeof(header));
  corrected_pending_ = header[0];
  fatal_pending_ = header[1] != 0;
  scrub_pos_ = header[2];
  scrub_timer_ = header[3];
}

}  // namespace sfi::mem
