// EccMemory: the main-store side of the machine — SEC-DED protected DRAM
// behind a memory controller.
//
// This implements the paper's stated future work ("fault injections in the
// periphery of the core, such as the ... memory subsystem"): every aligned
// 64-bit word carries Hamming(72,64) check bits, the controller verifies and
// corrects on every access (scrub-on-access write-back), a background
// patrol scrubber sweeps the whole store, and uncorrectable words are
// reported as fatal. Storage bits (data + check) are injectable, so beam
// strikes and targeted periphery campaigns reach main store exactly like
// core latches.
//
// The controller sits at the machine's access chokepoints (cache refills,
// uncached loads, store drains); the ISA golden model keeps its own plain
// memory — ECC is a microarchitectural mechanism, invisible when it works.
#pragma once

#include <span>
#include <vector>

#include "common/aux_sig.hpp"
#include "common/types.hpp"
#include "isa/memory.hpp"

namespace sfi::mem {

class EccMemory {
 public:
  explicit EccMemory(u32 size_bytes);

  [[nodiscard]] u32 size() const { return data_.size(); }

  // --- controller accesses (verify containing words, then read/write) ---
  [[nodiscard]] u64 load(u64 addr, u32 size);
  [[nodiscard]] u64 load_u32(u64 addr) { return load(addr, 4); }
  [[nodiscard]] u64 load_u64(u64 addr) { return load(addr, 8); }
  void store(u64 addr, u64 v, u32 size);

  /// Bulk image write with check-bit regeneration (program loading).
  void write_block(u64 addr, std::span<const u8> bytes);
  void fill_zero();

  /// Patrol scrubber: call once per cycle; verifies one word every
  /// `kScrubInterval` cycles.
  static constexpr u32 kScrubInterval = 16;
  void scrub_step();

  /// Corrected-word events since the last call (reported into the machine's
  /// corrected counters by the model).
  [[nodiscard]] u32 take_corrected();
  /// An uncorrectable word was accessed since the last call (fatal).
  [[nodiscard]] bool take_fatal();

  /// Hash of the *corrected view* of a byte range: what software would read.
  /// Verifies (and thereby corrects) every touched word first.
  [[nodiscard]] u64 corrected_hash(u64 addr, u32 len);

  /// Exact compare against an encoded-image snapshot (data bytes followed by
  /// one check byte per word, as produced by a fault-free machine). When the
  /// images are bit-identical every word decodes clean, so a readout walk
  /// would correct nothing and report nothing — callers may skip it. This is
  /// the classifier's fast path; it has no side effects.
  [[nodiscard]] bool encoded_image_equals(std::span<const u8> image) const;

  /// Raw injectable storage: data bits then, per word, 8 check bits.
  [[nodiscard]] u64 storage_bits() const {
    return static_cast<u64>(num_words()) * 72;
  }
  void flip_storage_bit(u64 bit);

  /// The raw byte image (tests/diagnostics; bypasses the controller).
  [[nodiscard]] const isa::Memory& raw() const { return data_; }
  [[nodiscard]] isa::Memory& raw() { return data_; }

  void save(std::vector<u8>& out) const;
  void load_snapshot(std::span<const u8>& in);

  /// Attach a mutation signature (common/aux_sig.hpp). Stores, correcting
  /// write-backs, fatal-word detections and storage flips fold into it;
  /// snapshot load/save, program loading and fill_zero do not.
  void set_aux_sig(AuxSig* sig) { aux_sig_ = sig; }

 private:
  [[nodiscard]] u32 num_words() const { return data_.size() / 8; }
  [[nodiscard]] u32 word_of(u64 addr) const {
    return (static_cast<u32>(addr) & (data_.size() - 1)) / 8;
  }
  /// Verify/correct one aligned word; updates the event counters.
  void verify_word(u32 word);
  void encode_word(u32 word);

  isa::Memory data_;
  std::vector<u8> check_;
  u32 corrected_pending_ = 0;
  bool fatal_pending_ = false;
  u32 scrub_pos_ = 0;
  u32 scrub_timer_ = 0;
  AuxSig* aux_sig_ = nullptr;
};

}  // namespace sfi::mem
