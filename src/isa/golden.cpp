#include "isa/golden.hpp"

#include "common/check.hpp"
#include "isa/exec.hpp"

namespace sfi::isa {

GoldenModel::GoldenModel(u32 mem_size_bytes) : mem_(mem_size_bytes) {}

void GoldenModel::reset(const Program& prog, const ArchState& init) {
  mem_.fill_zero();
  prog.load_into(mem_);
  state_ = init;
  state_.pc = prog.entry;
  retired_ = 0;
  stopped_ = false;
  class_counts_.fill(0);
}

GoldenModel::Status GoldenModel::step() {
  if (stopped_) return Status::Stopped;
  const u32 word = mem_.load_u32(state_.pc);
  const Instr in = decode(word);
  if (in.mn == Mnemonic::STOP) {
    stopped_ = true;
    return Status::Stopped;
  }
  execute(in);
  ++retired_;
  class_counts_[static_cast<std::size_t>(in.cls)] += 1;
  return Status::Running;
}

GoldenModel::Status GoldenModel::run(u64 max_instrs) {
  for (u64 i = 0; i < max_instrs; ++i) {
    if (step() == Status::Stopped) return Status::Stopped;
  }
  return stopped_ ? Status::Stopped : Status::LimitReached;
}

void GoldenModel::execute(const Instr& in) {
  ArchState& st = state_;
  const u64 next_pc = st.pc + 4;

  switch (in.mn) {
    // ---- fixed point, immediate forms ----
    case Mnemonic::ADDI:
    case Mnemonic::ADDIS: {
      // RA = 0 reads as the constant zero ("load immediate" idiom).
      const u64 a = in.ra == 0 ? 0 : st.gpr[in.ra];
      st.gpr[in.rt] = alu_exec(in.mn, a, static_cast<u64>(in.imm));
      break;
    }
    case Mnemonic::ORI:
    case Mnemonic::XORI:
    case Mnemonic::ANDI:
      st.gpr[in.rt] =
          alu_exec(in.mn, st.gpr[in.ra], static_cast<u64>(in.imm));
      break;

    // ---- fixed point, register forms ----
    case Mnemonic::ADD: case Mnemonic::SUBF: case Mnemonic::AND:
    case Mnemonic::OR: case Mnemonic::XOR: case Mnemonic::NOR:
    case Mnemonic::SLD: case Mnemonic::SRD: case Mnemonic::SRAD:
    case Mnemonic::MULLD: case Mnemonic::DIVD:
      st.gpr[in.rt] = alu_exec(in.mn, st.gpr[in.ra], st.gpr[in.rb]);
      break;
    case Mnemonic::NEG:
    case Mnemonic::EXTSW:
      st.gpr[in.rt] = alu_exec(in.mn, st.gpr[in.ra], 0);
      break;

    // ---- compares ----
    case Mnemonic::CMP:
      st.cr = cr_insert(st.cr, in.crf,
                        compare(st.gpr[in.ra], st.gpr[in.rb], true));
      break;
    case Mnemonic::CMPL:
      st.cr = cr_insert(st.cr, in.crf,
                        compare(st.gpr[in.ra], st.gpr[in.rb], false));
      break;
    case Mnemonic::CMPI:
      st.cr = cr_insert(
          st.cr, in.crf,
          compare(st.gpr[in.ra], static_cast<u64>(in.imm), true));
      break;
    case Mnemonic::CMPLI:
      st.cr = cr_insert(
          st.cr, in.crf,
          compare(st.gpr[in.ra], static_cast<u64>(in.imm), false));
      break;

    // ---- SPR moves ----
    case Mnemonic::MFSPR:
      st.gpr[in.rt] = in.imm == kSprLr    ? st.lr
                      : in.imm == kSprCtr ? st.ctr
                                          : 0;
      break;
    case Mnemonic::MTSPR:
      if (in.imm == kSprLr) st.lr = st.gpr[in.rt];
      if (in.imm == kSprCtr) st.ctr = st.gpr[in.rt];
      break;

    // ---- memory ----
    case Mnemonic::LWZ: case Mnemonic::LBZ: case Mnemonic::LD: {
      const u64 ea = agen(st.gpr[in.ra], in.ra == 0, in.imm);
      st.gpr[in.rt] = mem_.load(ea, access_size(in.mn));
      break;
    }
    case Mnemonic::LFD: {
      const u64 ea = agen(st.gpr[in.ra], in.ra == 0, in.imm);
      st.fpr[in.rt % kNumFprs] = mem_.load_u64(ea);
      break;
    }
    case Mnemonic::STW: case Mnemonic::STB: case Mnemonic::STD: {
      const u64 ea = agen(st.gpr[in.ra], in.ra == 0, in.imm);
      mem_.store(ea, st.gpr[in.rt], access_size(in.mn));
      break;
    }
    case Mnemonic::STFD: {
      const u64 ea = agen(st.gpr[in.ra], in.ra == 0, in.imm);
      mem_.store_u64(ea, st.fpr[in.rt % kNumFprs]);
      break;
    }

    // ---- floating point ----
    case Mnemonic::FADD: case Mnemonic::FSUB: case Mnemonic::FMUL:
    case Mnemonic::FDIV:
      st.fpr[in.rt] = fpu_exec(in.mn, st.fpr[in.ra], st.fpr[in.rb]);
      break;

    // ---- branches ----
    case Mnemonic::B:
      if (in.lk) st.lr = next_pc;
      st.pc = st.pc + static_cast<u64>(in.imm);
      return;
    case Mnemonic::BC: {
      const BranchEval ev = eval_branch(in.bo, in.bi, st.cr, st.ctr);
      if (in.bo == kBoDnz) st.ctr = ev.ctr_after;
      if (in.lk) st.lr = next_pc;
      st.pc = ev.taken ? st.pc + static_cast<u64>(in.imm) : next_pc;
      return;
    }
    case Mnemonic::BCLR: {
      const BranchEval ev = eval_branch(in.bo, in.bi, st.cr, st.ctr);
      if (in.bo == kBoDnz) st.ctr = ev.ctr_after;
      const u64 target = st.lr & ~u64{3};
      if (in.lk) st.lr = next_pc;
      st.pc = ev.taken ? target : next_pc;
      return;
    }
    case Mnemonic::BCCTR: {
      const BranchEval ev = eval_branch(in.bo, in.bi, st.cr, st.ctr);
      // BCCTR with decrement is architecturally invalid; CTR unchanged.
      const u64 target = st.ctr & ~u64{3};
      if (in.lk) st.lr = next_pc;
      st.pc = ev.taken ? target : next_pc;
      return;
    }

    case Mnemonic::ILLEGAL:
      // Architected as a no-op (Pearl6 has no interrupt architecture; see
      // DESIGN.md). Only fault-corrupted instruction streams reach this.
      break;
    case Mnemonic::STOP:
      throw InternalError("GoldenModel::execute on STOP");
  }
  st.pc = next_pc;
}

}  // namespace sfi::isa
