#include "isa/arch_state.hpp"

#include "common/bits.hpp"
#include "common/hash.hpp"

namespace sfi::isa {

u64 ArchState::hash() const {
  u64 h = mix64(0xA5C1157A7E5EEDULL);
  for (const u64 g : gpr) h = mix64(h ^ mix64(g + 0x9E3779B97F4A7C15ULL));
  for (const u64 f : fpr) h = mix64(h ^ mix64(f + 0xC2B2AE3D27D4EB4FULL));
  h = mix64(h ^ cr);
  h = mix64(h ^ lr);
  h = mix64(h ^ ctr);
  h = mix64(h ^ pc);
  return h;
}

std::string ArchState::diff(const ArchState& other, bool ignore_pc) const {
  for (unsigned i = 0; i < kNumGprs; ++i) {
    if (gpr[i] != other.gpr[i]) {
      return "gpr[" + std::to_string(i) + "]: " + to_hex(gpr[i]) +
             " != " + to_hex(other.gpr[i]);
    }
  }
  for (unsigned i = 0; i < kNumFprs; ++i) {
    if (fpr[i] != other.fpr[i]) {
      return "fpr[" + std::to_string(i) + "]: " + to_hex(fpr[i]) +
             " != " + to_hex(other.fpr[i]);
    }
  }
  if (cr != other.cr) {
    return "cr: " + to_hex(cr) + " != " + to_hex(other.cr);
  }
  if (lr != other.lr) {
    return "lr: " + to_hex(lr) + " != " + to_hex(other.lr);
  }
  if (ctr != other.ctr) {
    return "ctr: " + to_hex(ctr) + " != " + to_hex(other.ctr);
  }
  if (!ignore_pc && pc != other.pc) {
    return "pc: " + to_hex(pc) + " != " + to_hex(other.pc);
  }
  return {};
}

}  // namespace sfi::isa
