// Shared execution semantics.
//
// Both the ISA-level golden model and the Pearl6 pipeline's execution units
// call these helpers, so the two can only disagree through a genuine
// microarchitectural effect (or an injected fault) — never through duplicated
// semantics drifting apart.
#pragma once

#include "common/types.hpp"
#include "isa/encoding.hpp"

namespace sfi::isa {

/// CR field bit positions within a 4-bit field value.
inline constexpr u32 kCrLt = 3;  ///< bit 3: less-than
inline constexpr u32 kCrGt = 2;  ///< bit 2: greater-than
inline constexpr u32 kCrEq = 1;  ///< bit 1: equal
inline constexpr u32 kCrSo = 0;  ///< bit 0: summary overflow (always 0 here)

/// Fixed-point ALU. `a` = RA operand, `b` = RB operand or immediate.
/// Valid for every FixedPoint mnemonic; anything else is an internal error.
[[nodiscard]] u64 alu_exec(Mnemonic mn, u64 a, u64 b);

/// Signed/unsigned compare producing a 4-bit CR field value.
[[nodiscard]] u32 compare(u64 a, u64 b, bool is_signed);

/// Replace CR field `crf` (0..7) inside the packed 32-bit CR.
[[nodiscard]] u32 cr_insert(u32 cr, u32 crf, u32 field);
/// Extract CR field `crf` from the packed 32-bit CR.
[[nodiscard]] u32 cr_extract(u32 cr, u32 crf);
/// Extract a single CR bit by its 0..31 index (bi field of BC).
[[nodiscard]] u32 cr_bit(u32 cr, u32 bi);

/// Branch condition evaluation shared by BC/BCLR/BCCTR.
struct BranchEval {
  bool taken = false;
  u64 ctr_after = 0;
};
[[nodiscard]] BranchEval eval_branch(u32 bo, u32 bi, u32 cr, u64 ctr);

/// Floating point (operands/results are IEEE-754 double bit patterns).
[[nodiscard]] u64 fpu_exec(Mnemonic mn, u64 a, u64 b);

/// Effective address generation: (RA|0) + displacement.
[[nodiscard]] u64 agen(u64 ra_value, bool ra_is_zero, i64 disp);

/// Bytes accessed by a load/store mnemonic (1, 4 or 8).
[[nodiscard]] u32 access_size(Mnemonic mn);

}  // namespace sfi::isa
