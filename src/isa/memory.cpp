#include "isa/memory.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace sfi::isa {

Memory::Memory(u32 size_bytes) : bytes_(size_bytes, 0), mask_(size_bytes - 1) {
  require(size_bytes >= 64 && (size_bytes & (size_bytes - 1)) == 0,
          "memory size must be a power of two >= 64");
}

u8 Memory::load_u8(u64 addr) const { return bytes_[wrap(addr)]; }

u32 Memory::load_u32(u64 addr) const {
  u32 v = 0;
  for (unsigned i = 0; i < 4; ++i) {
    v |= static_cast<u32>(bytes_[wrap(addr + i)]) << (8 * i);
  }
  return v;
}

u64 Memory::load_u64(u64 addr) const {
  u64 v = 0;
  for (unsigned i = 0; i < 8; ++i) {
    v |= static_cast<u64>(bytes_[wrap(addr + i)]) << (8 * i);
  }
  return v;
}

u64 Memory::load(u64 addr, u32 size) const {
  switch (size) {
    case 1: return load_u8(addr);
    case 4: return load_u32(addr);
    case 8: return load_u64(addr);
    default: throw InternalError("Memory::load bad size");
  }
}

void Memory::store_u8(u64 addr, u8 v) { bytes_[wrap(addr)] = v; }

void Memory::store_u32(u64 addr, u32 v) {
  for (unsigned i = 0; i < 4; ++i) {
    bytes_[wrap(addr + i)] = static_cast<u8>(v >> (8 * i));
  }
}

void Memory::store_u64(u64 addr, u64 v) {
  for (unsigned i = 0; i < 8; ++i) {
    bytes_[wrap(addr + i)] = static_cast<u8>(v >> (8 * i));
  }
}

void Memory::store(u64 addr, u64 v, u32 size) {
  switch (size) {
    case 1: store_u8(addr, static_cast<u8>(v)); return;
    case 4: store_u32(addr, static_cast<u32>(v)); return;
    case 8: store_u64(addr, v); return;
    default: throw InternalError("Memory::store bad size");
  }
}

void Memory::write_block(u64 addr, std::span<const u8> data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    bytes_[wrap(addr + i)] = data[i];
  }
}

u64 Memory::range_hash(u64 addr, u32 len) const {
  // Gather (handles wrap) then hash.
  std::vector<u8> buf(len);
  for (u32 i = 0; i < len; ++i) buf[i] = bytes_[wrap(addr + i)];
  return hash_bytes(buf);
}

void Memory::fill_zero() { std::fill(bytes_.begin(), bytes_.end(), 0); }

void Memory::save(std::vector<u8>& out) const {
  out.insert(out.end(), bytes_.begin(), bytes_.end());
}

void Memory::load_snapshot(std::span<const u8>& in) {
  require(in.size() >= bytes_.size(), "memory snapshot underrun");
  std::memcpy(bytes_.data(), in.data(), bytes_.size());
  in = in.subspan(bytes_.size());
}

}  // namespace sfi::isa
