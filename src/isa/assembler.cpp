#include "isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <sstream>

#include "common/bits.hpp"

namespace sfi::isa {
namespace {

struct Line {
  std::string mnemonic;
  std::vector<std::string> operands;
  std::size_t source_line = 0;
};

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw AsmError("asm line " + std::to_string(line_no) + ": " + msg);
}

std::string trim(std::string_view s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string_view::npos) return {};
  const auto e = s.find_last_not_of(" \t\r");
  return std::string(s.substr(b, e - b + 1));
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Parse "r7"/"f3" register token.
u32 parse_reg(const Line& ln, const std::string& tok, char kind) {
  if (tok.size() < 2 || std::tolower(tok[0]) != kind) {
    fail(ln.source_line, "expected register '" + std::string(1, kind) +
                             "N', got '" + tok + "'");
  }
  u32 n = 0;
  for (std::size_t i = 1; i < tok.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(tok[i]))) {
      fail(ln.source_line, "bad register '" + tok + "'");
    }
    n = n * 10 + static_cast<u32>(tok[i] - '0');
  }
  const u32 limit = kind == 'r' ? kNumGprs : kNumFprs;
  if (n >= limit) fail(ln.source_line, "register out of range: " + tok);
  return n;
}

i64 parse_int(const Line& ln, const std::string& tok) {
  try {
    std::size_t pos = 0;
    const i64 v = std::stoll(tok, &pos, 0);
    if (pos != tok.size()) fail(ln.source_line, "bad integer '" + tok + "'");
    return v;
  } catch (const std::logic_error&) {
    fail(ln.source_line, "bad integer '" + tok + "'");
  }
}

/// Parse "disp(rN)" memory operand.
std::pair<i64, u32> parse_mem(const Line& ln, const std::string& tok) {
  const auto open = tok.find('(');
  const auto close = tok.find(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    fail(ln.source_line, "expected disp(rN), got '" + tok + "'");
  }
  const i64 disp = parse_int(ln, tok.substr(0, open));
  const u32 ra = parse_reg(ln, tok.substr(open + 1, close - open - 1), 'r');
  return {disp, ra};
}

u16 check_imm16s(const Line& ln, i64 v) {
  if (v < -32768 || v > 32767) fail(ln.source_line, "immediate out of i16");
  return static_cast<u16>(v);
}

u16 check_imm16u(const Line& ln, i64 v) {
  if (v < 0 || v > 65535) fail(ln.source_line, "immediate out of u16");
  return static_cast<u16>(v);
}

}  // namespace

std::vector<u32> assemble(std::string_view source) {
  // Pass 1: tokenize, record label word offsets.
  std::vector<Line> lines;
  std::map<std::string, i64> labels;  // label -> word offset
  std::size_t line_no = 0;
  std::istringstream stream{std::string(source)};
  std::string raw;
  while (std::getline(stream, raw)) {
    ++line_no;
    std::string text = raw;
    if (const auto hash = text.find('#'); hash != std::string::npos) {
      text = text.substr(0, hash);
    }
    text = trim(text);
    while (!text.empty()) {
      const auto colon = text.find(':');
      const auto space = text.find_first_of(" \t");
      if (colon != std::string::npos &&
          (space == std::string::npos || colon < space)) {
        const std::string label = lower(trim(text.substr(0, colon)));
        if (label.empty()) fail(line_no, "empty label");
        if (labels.contains(label)) fail(line_no, "duplicate label " + label);
        labels[label] = static_cast<i64>(lines.size());
        text = trim(text.substr(colon + 1));
        continue;
      }
      break;
    }
    if (text.empty()) continue;

    Line ln;
    ln.source_line = line_no;
    const auto sp = text.find_first_of(" \t");
    ln.mnemonic = lower(text.substr(0, sp));
    if (sp != std::string::npos) {
      std::string rest = text.substr(sp + 1);
      std::string cur;
      for (const char c : rest) {
        if (c == ',') {
          ln.operands.push_back(lower(trim(cur)));
          cur.clear();
        } else {
          cur += c;
        }
      }
      if (!trim(cur).empty()) ln.operands.push_back(lower(trim(cur)));
    }
    lines.push_back(std::move(ln));
  }

  // Pass 2: encode.
  const auto branch_disp = [&](const Line& ln, const std::string& tok,
                               std::size_t word_index) -> i32 {
    const auto it = labels.find(tok);
    if (it == labels.end()) fail(ln.source_line, "unknown label '" + tok + "'");
    return static_cast<i32>((it->second - static_cast<i64>(word_index)) * 4);
  };
  const auto want = [&](const Line& ln, std::size_t n) {
    if (ln.operands.size() != n) {
      fail(ln.source_line, ln.mnemonic + " expects " + std::to_string(n) +
                               " operands, got " +
                               std::to_string(ln.operands.size()));
    }
  };

  std::vector<u32> out;
  out.reserve(lines.size());
  for (std::size_t w = 0; w < lines.size(); ++w) {
    const Line& ln = lines[w];
    const std::string& m = ln.mnemonic;
    const auto& ops = ln.operands;

    const auto enc_dform = [&](u32 opcd, bool unsigned_imm) {
      want(ln, 3);
      const u32 rt = parse_reg(ln, ops[0], 'r');
      const u32 ra = parse_reg(ln, ops[1], 'r');
      const i64 v = parse_int(ln, ops[2]);
      return enc_d(opcd, rt, ra,
                   unsigned_imm ? check_imm16u(ln, v) : check_imm16s(ln, v));
    };
    const auto enc_xform3 = [&](u32 xo) {
      want(ln, 3);
      return enc_x(parse_reg(ln, ops[0], 'r'), parse_reg(ln, ops[1], 'r'),
                   parse_reg(ln, ops[2], 'r'), xo);
    };
    const auto enc_mem = [&](u32 opcd, char kind) {
      want(ln, 2);
      const u32 rt = parse_reg(ln, ops[0], kind);
      const auto [disp, ra] = parse_mem(ln, ops[1]);
      return enc_d(opcd, rt, ra, check_imm16s(ln, disp));
    };
    const auto enc_fp3 = [&](u32 xo) {
      want(ln, 3);
      return enc_fp(parse_reg(ln, ops[0], 'f'), parse_reg(ln, ops[1], 'f'),
                    parse_reg(ln, ops[2], 'f'), xo);
    };
    const auto enc_cmp_imm = [&](u32 opcd, bool unsigned_imm) {
      want(ln, 3);
      const i64 crf = parse_int(ln, ops[0]);
      if (crf < 0 || crf > 7) fail(ln.source_line, "crf out of range");
      const u32 ra = parse_reg(ln, ops[1], 'r');
      const i64 v = parse_int(ln, ops[2]);
      return enc_d(opcd, static_cast<u32>(crf), ra,
                   unsigned_imm ? check_imm16u(ln, v) : check_imm16s(ln, v));
    };
    const auto enc_cmp_reg = [&](u32 xo) {
      want(ln, 3);
      const i64 crf = parse_int(ln, ops[0]);
      if (crf < 0 || crf > 7) fail(ln.source_line, "crf out of range");
      return enc_x(static_cast<u32>(crf), parse_reg(ln, ops[1], 'r'),
                   parse_reg(ln, ops[2], 'r'), xo);
    };
    const auto enc_cond_alias = [&](u32 bo, u32 bit) {
      want(ln, 2);
      const i64 crf = parse_int(ln, ops[0]);
      if (crf < 0 || crf > 7) fail(ln.source_line, "crf out of range");
      return enc_b(bo, static_cast<u32>(crf) * 4 + bit,
                   branch_disp(ln, ops[1], w), false);
    };

    u32 word = 0;
    if (m == "addi") word = enc_dform(kOpAddi, false);
    else if (m == "addis") word = enc_dform(kOpAddis, false);
    else if (m == "ori") word = enc_dform(kOpOri, true);
    else if (m == "xori") word = enc_dform(kOpXori, true);
    else if (m == "andi") word = enc_dform(kOpAndi, true);
    else if (m == "li") {
      want(ln, 2);
      word = enc_d(kOpAddi, parse_reg(ln, ops[0], 'r'), 0,
                   check_imm16s(ln, parse_int(ln, ops[1])));
    } else if (m == "mr") {
      want(ln, 2);
      const u32 rt = parse_reg(ln, ops[0], 'r');
      const u32 ra = parse_reg(ln, ops[1], 'r');
      word = enc_x(rt, ra, ra, kXoOr);
    } else if (m == "nop") {
      want(ln, 0);
      word = enc_d(kOpOri, 0, 0, 0);
    } else if (m == "add") word = enc_xform3(kXoAdd);
    else if (m == "subf") word = enc_xform3(kXoSubf);
    else if (m == "and") word = enc_xform3(kXoAnd);
    else if (m == "or") word = enc_xform3(kXoOr);
    else if (m == "xor") word = enc_xform3(kXoXor);
    else if (m == "nor") word = enc_xform3(kXoNor);
    else if (m == "sld") word = enc_xform3(kXoSld);
    else if (m == "srd") word = enc_xform3(kXoSrd);
    else if (m == "srad") word = enc_xform3(kXoSrad);
    else if (m == "mulld") word = enc_xform3(kXoMulld);
    else if (m == "divd") word = enc_xform3(kXoDivd);
    else if (m == "neg" || m == "extsw") {
      want(ln, 2);
      word = enc_x(parse_reg(ln, ops[0], 'r'), parse_reg(ln, ops[1], 'r'), 0,
                   m == "neg" ? kXoNeg : kXoExtsw);
    } else if (m == "cmpi") word = enc_cmp_imm(kOpCmpi, false);
    else if (m == "cmpli") word = enc_cmp_imm(kOpCmpli, true);
    else if (m == "cmp") word = enc_cmp_reg(kXoCmp);
    else if (m == "cmpl") word = enc_cmp_reg(kXoCmpl);
    else if (m == "lwz") word = enc_mem(kOpLwz, 'r');
    else if (m == "lbz") word = enc_mem(kOpLbz, 'r');
    else if (m == "ld") word = enc_mem(kOpLd, 'r');
    else if (m == "stw") word = enc_mem(kOpStw, 'r');
    else if (m == "stb") word = enc_mem(kOpStb, 'r');
    else if (m == "std") word = enc_mem(kOpStd, 'r');
    else if (m == "lfd") word = enc_mem(kOpLfd, 'f');
    else if (m == "stfd") word = enc_mem(kOpStfd, 'f');
    else if (m == "fadd") word = enc_fp3(kFpAdd);
    else if (m == "fsub") word = enc_fp3(kFpSub);
    else if (m == "fmul") word = enc_fp3(kFpMul);
    else if (m == "fdiv") word = enc_fp3(kFpDiv);
    else if (m == "b" || m == "bl") {
      want(ln, 1);
      word = enc_i(branch_disp(ln, ops[0], w), m == "bl");
    } else if (m == "bc") {
      want(ln, 3);
      const i64 bo = parse_int(ln, ops[0]);
      const i64 bi = parse_int(ln, ops[1]);
      word = enc_b(static_cast<u32>(bo), static_cast<u32>(bi),
                   branch_disp(ln, ops[2], w), false);
    } else if (m == "bdnz") {
      want(ln, 1);
      word = enc_b(kBoDnz, 0, branch_disp(ln, ops[0], w), false);
    } else if (m == "beq") word = enc_cond_alias(kBoTrue, 2);
    else if (m == "bne") word = enc_cond_alias(kBoFalse, 2);
    else if (m == "blt") word = enc_cond_alias(kBoTrue, 0);
    else if (m == "bgt") word = enc_cond_alias(kBoTrue, 1);
    else if (m == "blr") {
      want(ln, 0);
      word = enc_xl(kBoAlways, 0, kXlBclr);
    } else if (m == "bctr") {
      want(ln, 0);
      word = enc_xl(kBoAlways, 0, kXlBcctr);
    } else if (m == "mflr" || m == "mfctr") {
      want(ln, 1);
      const u32 spr = m == "mflr" ? kSprLr : kSprCtr;
      word = enc_x(parse_reg(ln, ops[0], 'r'), spr & 31, (spr >> 5) & 31,
                   kXoMfspr);
    } else if (m == "mtlr" || m == "mtctr") {
      want(ln, 1);
      const u32 spr = m == "mtlr" ? kSprLr : kSprCtr;
      word = enc_x(parse_reg(ln, ops[0], 'r'), spr & 31, (spr >> 5) & 31,
                   kXoMtspr);
    } else if (m == "stop") {
      want(ln, 0);
      word = kStopWord;
    } else {
      fail(ln.source_line, "unknown mnemonic '" + m + "'");
    }
    out.push_back(word);
  }
  return out;
}

std::string disassemble(const Instr& in) {
  std::ostringstream os;
  os << to_string(in.mn);
  const auto r = [](unsigned n) { return " r" + std::to_string(n); };
  const auto f = [](unsigned n) { return " f" + std::to_string(n); };
  switch (in.mn) {
    case Mnemonic::ADDI: case Mnemonic::ADDIS: case Mnemonic::ORI:
    case Mnemonic::XORI: case Mnemonic::ANDI:
      os << r(in.rt) << "," << r(in.ra) << ", " << in.imm;
      break;
    case Mnemonic::ADD: case Mnemonic::SUBF: case Mnemonic::AND:
    case Mnemonic::OR: case Mnemonic::XOR: case Mnemonic::NOR:
    case Mnemonic::SLD: case Mnemonic::SRD: case Mnemonic::SRAD:
    case Mnemonic::MULLD: case Mnemonic::DIVD:
      os << r(in.rt) << "," << r(in.ra) << "," << r(in.rb);
      break;
    case Mnemonic::NEG: case Mnemonic::EXTSW:
      os << r(in.rt) << "," << r(in.ra);
      break;
    case Mnemonic::CMP: case Mnemonic::CMPL:
      os << " " << unsigned{in.crf} << "," << r(in.ra) << "," << r(in.rb);
      break;
    case Mnemonic::CMPI: case Mnemonic::CMPLI:
      os << " " << unsigned{in.crf} << "," << r(in.ra) << ", " << in.imm;
      break;
    case Mnemonic::LWZ: case Mnemonic::LBZ: case Mnemonic::LD:
    case Mnemonic::STW: case Mnemonic::STB: case Mnemonic::STD:
      os << r(in.rt) << ", " << in.imm << "(r" << unsigned{in.ra} << ")";
      break;
    case Mnemonic::LFD: case Mnemonic::STFD:
      os << f(in.rt) << ", " << in.imm << "(r" << unsigned{in.ra} << ")";
      break;
    case Mnemonic::MFSPR: case Mnemonic::MTSPR:
      os << r(in.rt) << ", spr" << in.imm;
      break;
    case Mnemonic::B:
      os << (in.lk ? "l" : "") << " ." << (in.imm >= 0 ? "+" : "") << in.imm;
      break;
    case Mnemonic::BC:
      os << " " << unsigned{in.bo} << "," << unsigned{in.bi} << ", ."
         << (in.imm >= 0 ? "+" : "") << in.imm;
      break;
    case Mnemonic::BCLR: case Mnemonic::BCCTR:
      os << " " << unsigned{in.bo} << "," << unsigned{in.bi};
      break;
    case Mnemonic::FADD: case Mnemonic::FSUB: case Mnemonic::FMUL:
    case Mnemonic::FDIV:
      os << f(in.rt) << "," << f(in.ra) << "," << f(in.rb);
      break;
    case Mnemonic::STOP:
    case Mnemonic::ILLEGAL:
      break;
  }
  return os.str();
}

}  // namespace sfi::isa
