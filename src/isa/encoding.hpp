// PearlISA: the POWER-flavoured 64-bit ISA executed by the Pearl6 core and
// by the ISA-level golden model.
//
// It is deliberately *not* PowerPC — it is a compact fixed-width ISA with the
// same instruction classes the paper's AVP mix is measured over (loads,
// stores, fixed point, floating point, comparisons, branches; Table 1), so
// that instruction-mix and CPI experiments are meaningful.
//
// Encoding (bit 31 = msb):
//   D-form   [31:26]=opcd [25:21]=RT [20:16]=RA [15:0]=D (signed)
//   X-form   [31:26]=31   [25:21]=RT [20:16]=RA [15:11]=RB [10:1]=XO [0]=0
//   I-form   [31:26]=18   [25:2]=LI24 (signed words)          [1]=0 [0]=LK
//   B-form   [31:26]=16   [25:21]=BO [20:16]=BI [15:2]=BD14   [1]=0 [0]=LK
//   XL-form  [31:26]=19   [25:21]=BO [20:16]=BI [10:1]=XO
//   A-form   [31:26]=63   [25:21]=FRT [20:16]=FRA [15:11]=FRB [5:1]=XO
//   STOP     all-zero word (ends a testcase, like an attn instruction)
//
// Registers: 32×64-bit GPRs, 16×64-bit FPRs (IEEE double bit patterns),
// CR (8 fields × 4 bits: LT,GT,EQ,SO), LR, CTR, PC.
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace sfi::isa {

inline constexpr unsigned kNumGprs = 32;
inline constexpr unsigned kNumFprs = 16;
inline constexpr unsigned kNumCrFields = 8;

/// Primary opcodes.
enum PrimaryOp : u32 {
  kOpStop = 0,
  kOpCmpli = 10,
  kOpCmpi = 11,
  kOpAddi = 14,
  kOpAddis = 15,
  kOpBc = 16,
  kOpB = 18,
  kOpXl = 19,
  kOpOri = 24,
  kOpXori = 25,
  kOpAndi = 26,
  kOpX = 31,
  kOpLwz = 32,
  kOpLbz = 34,
  kOpStw = 36,
  kOpStb = 38,
  kOpLfd = 50,
  kOpStfd = 54,
  kOpLd = 58,
  kOpStd = 62,
  kOpFp = 63,
};

/// X-form extended opcodes (opcd 31).
enum XOp : u32 {
  kXoCmp = 0,
  kXoSld = 27,
  kXoAnd = 28,
  kXoCmpl = 32,
  kXoSubf = 40,
  kXoNeg = 104,
  kXoNor = 124,
  kXoMulld = 233,
  kXoAdd = 266,
  kXoXor = 316,
  kXoMfspr = 339,
  kXoOr = 444,
  kXoMtspr = 467,
  kXoDivd = 489,
  kXoSrd = 539,
  kXoSrad = 794,
  kXoExtsw = 986,
};

/// XL-form extended opcodes (opcd 19).
enum XlOp : u32 {
  kXlBclr = 16,
  kXlBcctr = 528,
};

/// A-form FP extended opcodes (opcd 63).
enum FpOp : u32 {
  kFpDiv = 18,
  kFpSub = 20,
  kFpAdd = 21,
  kFpMul = 25,
};

/// SPR numbers for mfspr/mtspr.
enum Spr : u32 {
  kSprLr = 8,
  kSprCtr = 9,
};

/// Branch-option (BO) subset.
enum Bo : u32 {
  kBoFalse = 4,   ///< branch if CR[BI] == 0
  kBoTrue = 12,   ///< branch if CR[BI] == 1
  kBoDnz = 16,    ///< decrement CTR, branch if CTR != 0
  kBoAlways = 20,
};

/// Decoded mnemonic.
enum class Mnemonic : u8 {
  // fixed point immediates
  ADDI, ADDIS, ORI, XORI, ANDI,
  // compares
  CMPI, CMPLI, CMP, CMPL,
  // fixed point register
  ADD, SUBF, AND, OR, XOR, NOR, SLD, SRD, SRAD, NEG, EXTSW,
  MULLD, DIVD,
  // SPR moves
  MFSPR, MTSPR,
  // memory
  LWZ, LBZ, LD, STW, STB, STD, LFD, STFD,
  // branches
  B, BC, BCLR, BCCTR,
  // floating point
  FADD, FSUB, FMUL, FDIV,
  // control
  STOP, ILLEGAL,
};

[[nodiscard]] std::string_view to_string(Mnemonic m);

/// Coarse instruction class; matches Table 1's mix rows.
enum class InstrClass : u8 {
  Load,
  Store,
  FixedPoint,
  FloatingPoint,
  Comparison,
  Branch,
  System,  ///< STOP / SPR moves
};
inline constexpr std::size_t kNumInstrClasses = 7;

[[nodiscard]] std::string_view to_string(InstrClass c);

/// Fully decoded instruction.
struct Instr {
  u32 raw = 0;
  Mnemonic mn = Mnemonic::ILLEGAL;
  InstrClass cls = InstrClass::System;
  u8 rt = 0;    ///< destination GPR/FPR (or source for stores / BO for branches)
  u8 ra = 0;
  u8 rb = 0;
  u8 crf = 0;   ///< CR field for compares
  u8 bo = 0;
  u8 bi = 0;
  i64 imm = 0;  ///< sign-extended immediate / branch displacement (bytes)
  bool lk = false;

  [[nodiscard]] bool is_load() const { return cls == InstrClass::Load; }
  [[nodiscard]] bool is_store() const { return cls == InstrClass::Store; }
  [[nodiscard]] bool is_branch() const { return cls == InstrClass::Branch; }
  [[nodiscard]] bool is_fp() const { return cls == InstrClass::FloatingPoint; }
  [[nodiscard]] bool writes_gpr() const;
  [[nodiscard]] bool writes_fpr() const;
};

/// Decode one instruction word. Never throws: undecodable words produce
/// Mnemonic::ILLEGAL (the machine must survive corrupted instruction
/// streams; how ILLEGAL is handled is the core's policy).
[[nodiscard]] Instr decode(u32 word);

// --- Encoding helpers (used by the assembler, the AVP generator & tests) ---
[[nodiscard]] u32 enc_d(u32 opcd, u32 rt, u32 ra, u16 d);
[[nodiscard]] u32 enc_x(u32 rt, u32 ra, u32 rb, u32 xo);
[[nodiscard]] u32 enc_i(i32 byte_disp, bool lk);
[[nodiscard]] u32 enc_b(u32 bo, u32 bi, i32 byte_disp, bool lk);
[[nodiscard]] u32 enc_xl(u32 bo, u32 bi, u32 xo);
[[nodiscard]] u32 enc_fp(u32 frt, u32 fra, u32 frb, u32 xo);
inline constexpr u32 kStopWord = 0;

}  // namespace sfi::isa
