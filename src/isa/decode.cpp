#include "isa/encoding.hpp"

#include "common/bits.hpp"
#include "common/check.hpp"

namespace sfi::isa {
namespace {

constexpr u32 bits(u32 w, unsigned msb, unsigned lsb) {
  return static_cast<u32>(extract(w, lsb, msb - lsb + 1));
}

Instr make(u32 raw, Mnemonic mn, InstrClass cls) {
  Instr in;
  in.raw = raw;
  in.mn = mn;
  in.cls = cls;
  return in;
}

Instr decode_x(u32 w) {
  const u32 xo = bits(w, 10, 1);
  Instr in;
  in.raw = w;
  in.rt = static_cast<u8>(bits(w, 25, 21));
  in.ra = static_cast<u8>(bits(w, 20, 16));
  in.rb = static_cast<u8>(bits(w, 15, 11));
  in.cls = InstrClass::FixedPoint;
  switch (xo) {
    case kXoAdd:   in.mn = Mnemonic::ADD; break;
    case kXoSubf:  in.mn = Mnemonic::SUBF; break;
    case kXoAnd:   in.mn = Mnemonic::AND; break;
    case kXoOr:    in.mn = Mnemonic::OR; break;
    case kXoXor:   in.mn = Mnemonic::XOR; break;
    case kXoNor:   in.mn = Mnemonic::NOR; break;
    case kXoSld:   in.mn = Mnemonic::SLD; break;
    case kXoSrd:   in.mn = Mnemonic::SRD; break;
    case kXoSrad:  in.mn = Mnemonic::SRAD; break;
    case kXoNeg:   in.mn = Mnemonic::NEG; break;
    case kXoExtsw: in.mn = Mnemonic::EXTSW; break;
    case kXoMulld: in.mn = Mnemonic::MULLD; break;
    case kXoDivd:  in.mn = Mnemonic::DIVD; break;
    case kXoCmp:
      in.mn = Mnemonic::CMP;
      in.cls = InstrClass::Comparison;
      in.crf = static_cast<u8>(in.rt & 7);
      break;
    case kXoCmpl:
      in.mn = Mnemonic::CMPL;
      in.cls = InstrClass::Comparison;
      in.crf = static_cast<u8>(in.rt & 7);
      break;
    case kXoMfspr:
      in.mn = Mnemonic::MFSPR;
      in.cls = InstrClass::System;
      // SPR number carried in the RA/RB fields (RA = low half).
      in.imm = static_cast<i64>(in.ra) | (static_cast<i64>(in.rb) << 5);
      break;
    case kXoMtspr:
      in.mn = Mnemonic::MTSPR;
      in.cls = InstrClass::System;
      in.imm = static_cast<i64>(in.ra) | (static_cast<i64>(in.rb) << 5);
      break;
    default:
      return make(w, Mnemonic::ILLEGAL, InstrClass::System);
  }
  return in;
}

}  // namespace

Instr decode(u32 w) {
  if (w == kStopWord) return make(w, Mnemonic::STOP, InstrClass::System);

  const u32 opcd = bits(w, 31, 26);
  Instr in;
  in.raw = w;
  in.rt = static_cast<u8>(bits(w, 25, 21));
  in.ra = static_cast<u8>(bits(w, 20, 16));
  in.imm = sign_extend(bits(w, 15, 0), 16);

  switch (opcd) {
    case kOpAddi:  in.mn = Mnemonic::ADDI;  in.cls = InstrClass::FixedPoint; return in;
    case kOpAddis: in.mn = Mnemonic::ADDIS; in.cls = InstrClass::FixedPoint; return in;
    case kOpOri:
      in.mn = Mnemonic::ORI;
      in.cls = InstrClass::FixedPoint;
      in.imm = static_cast<i64>(bits(w, 15, 0));  // logical imms zero-extend
      return in;
    case kOpXori:
      in.mn = Mnemonic::XORI;
      in.cls = InstrClass::FixedPoint;
      in.imm = static_cast<i64>(bits(w, 15, 0));
      return in;
    case kOpAndi:
      in.mn = Mnemonic::ANDI;
      in.cls = InstrClass::FixedPoint;
      in.imm = static_cast<i64>(bits(w, 15, 0));
      return in;
    case kOpCmpi:
      in.mn = Mnemonic::CMPI;
      in.cls = InstrClass::Comparison;
      in.crf = static_cast<u8>(in.rt & 7);
      return in;
    case kOpCmpli:
      in.mn = Mnemonic::CMPLI;
      in.cls = InstrClass::Comparison;
      in.crf = static_cast<u8>(in.rt & 7);
      in.imm = static_cast<i64>(bits(w, 15, 0));
      return in;
    case kOpLwz: in.mn = Mnemonic::LWZ; in.cls = InstrClass::Load; return in;
    case kOpLbz: in.mn = Mnemonic::LBZ; in.cls = InstrClass::Load; return in;
    case kOpLd:  in.mn = Mnemonic::LD;  in.cls = InstrClass::Load; return in;
    case kOpLfd: in.mn = Mnemonic::LFD; in.cls = InstrClass::Load; return in;
    case kOpStw: in.mn = Mnemonic::STW; in.cls = InstrClass::Store; return in;
    case kOpStb: in.mn = Mnemonic::STB; in.cls = InstrClass::Store; return in;
    case kOpStd: in.mn = Mnemonic::STD; in.cls = InstrClass::Store; return in;
    case kOpStfd: in.mn = Mnemonic::STFD; in.cls = InstrClass::Store; return in;
    case kOpB:
      in.mn = Mnemonic::B;
      in.cls = InstrClass::Branch;
      in.imm = sign_extend(bits(w, 25, 2), 24) * 4;
      in.lk = (w & 1) != 0;
      return in;
    case kOpBc:
      in.mn = Mnemonic::BC;
      in.cls = InstrClass::Branch;
      in.bo = static_cast<u8>(bits(w, 25, 21));
      in.bi = static_cast<u8>(bits(w, 20, 16));
      in.imm = sign_extend(bits(w, 15, 2), 14) * 4;
      in.lk = (w & 1) != 0;
      return in;
    case kOpXl: {
      const u32 xo = bits(w, 10, 1);
      in.bo = static_cast<u8>(bits(w, 25, 21));
      in.bi = static_cast<u8>(bits(w, 20, 16));
      in.cls = InstrClass::Branch;
      if (xo == kXlBclr) {
        in.mn = Mnemonic::BCLR;
        in.lk = (w & 1) != 0;
        return in;
      }
      if (xo == kXlBcctr) {
        in.mn = Mnemonic::BCCTR;
        in.lk = (w & 1) != 0;
        return in;
      }
      return make(w, Mnemonic::ILLEGAL, InstrClass::System);
    }
    case kOpX:
      return decode_x(w);
    case kOpFp: {
      const u32 xo = bits(w, 5, 1);
      in.rt = static_cast<u8>(bits(w, 25, 21) % kNumFprs);
      in.ra = static_cast<u8>(bits(w, 20, 16) % kNumFprs);
      in.rb = static_cast<u8>(bits(w, 15, 11) % kNumFprs);
      in.cls = InstrClass::FloatingPoint;
      in.imm = 0;
      switch (xo) {
        case kFpAdd: in.mn = Mnemonic::FADD; return in;
        case kFpSub: in.mn = Mnemonic::FSUB; return in;
        case kFpMul: in.mn = Mnemonic::FMUL; return in;
        case kFpDiv: in.mn = Mnemonic::FDIV; return in;
        default: return make(w, Mnemonic::ILLEGAL, InstrClass::System);
      }
    }
    default:
      return make(w, Mnemonic::ILLEGAL, InstrClass::System);
  }
}

bool Instr::writes_gpr() const {
  switch (mn) {
    case Mnemonic::ADDI: case Mnemonic::ADDIS: case Mnemonic::ORI:
    case Mnemonic::XORI: case Mnemonic::ANDI: case Mnemonic::ADD:
    case Mnemonic::SUBF: case Mnemonic::AND: case Mnemonic::OR:
    case Mnemonic::XOR: case Mnemonic::NOR: case Mnemonic::SLD:
    case Mnemonic::SRD: case Mnemonic::SRAD: case Mnemonic::NEG:
    case Mnemonic::EXTSW: case Mnemonic::MULLD: case Mnemonic::DIVD:
    case Mnemonic::LWZ: case Mnemonic::LBZ: case Mnemonic::LD:
    case Mnemonic::MFSPR:
      return true;
    default:
      return false;
  }
}

bool Instr::writes_fpr() const {
  switch (mn) {
    case Mnemonic::LFD: case Mnemonic::FADD: case Mnemonic::FSUB:
    case Mnemonic::FMUL: case Mnemonic::FDIV:
      return true;
    default:
      return false;
  }
}

u32 enc_d(u32 opcd, u32 rt, u32 ra, u16 d) {
  return (opcd << 26) | ((rt & 31) << 21) | ((ra & 31) << 16) | d;
}

u32 enc_x(u32 rt, u32 ra, u32 rb, u32 xo) {
  return (u32{kOpX} << 26) | ((rt & 31) << 21) | ((ra & 31) << 16) |
         ((rb & 31) << 11) | ((xo & 0x3FF) << 1);
}

u32 enc_i(i32 byte_disp, bool lk) {
  ensure(byte_disp % 4 == 0, "branch displacement word-aligned");
  const u32 li = static_cast<u32>(byte_disp / 4) & mask_low(24);
  return (u32{kOpB} << 26) | (li << 2) | (lk ? 1u : 0u);
}

u32 enc_b(u32 bo, u32 bi, i32 byte_disp, bool lk) {
  ensure(byte_disp % 4 == 0, "branch displacement word-aligned");
  const u32 bd = static_cast<u32>(byte_disp / 4) & mask_low(14);
  return (u32{kOpBc} << 26) | ((bo & 31) << 21) | ((bi & 31) << 16) |
         (bd << 2) | (lk ? 1u : 0u);
}

u32 enc_xl(u32 bo, u32 bi, u32 xo) {
  return (u32{kOpXl} << 26) | ((bo & 31) << 21) | ((bi & 31) << 16) |
         ((xo & 0x3FF) << 1);
}

u32 enc_fp(u32 frt, u32 fra, u32 frb, u32 xo) {
  return (u32{kOpFp} << 26) | ((frt & 31) << 21) | ((fra & 31) << 16) |
         ((frb & 31) << 11) | ((xo & 31) << 1);
}

std::string_view to_string(Mnemonic m) {
  switch (m) {
    case Mnemonic::ADDI: return "addi";
    case Mnemonic::ADDIS: return "addis";
    case Mnemonic::ORI: return "ori";
    case Mnemonic::XORI: return "xori";
    case Mnemonic::ANDI: return "andi";
    case Mnemonic::CMPI: return "cmpi";
    case Mnemonic::CMPLI: return "cmpli";
    case Mnemonic::CMP: return "cmp";
    case Mnemonic::CMPL: return "cmpl";
    case Mnemonic::ADD: return "add";
    case Mnemonic::SUBF: return "subf";
    case Mnemonic::AND: return "and";
    case Mnemonic::OR: return "or";
    case Mnemonic::XOR: return "xor";
    case Mnemonic::NOR: return "nor";
    case Mnemonic::SLD: return "sld";
    case Mnemonic::SRD: return "srd";
    case Mnemonic::SRAD: return "srad";
    case Mnemonic::NEG: return "neg";
    case Mnemonic::EXTSW: return "extsw";
    case Mnemonic::MULLD: return "mulld";
    case Mnemonic::DIVD: return "divd";
    case Mnemonic::MFSPR: return "mfspr";
    case Mnemonic::MTSPR: return "mtspr";
    case Mnemonic::LWZ: return "lwz";
    case Mnemonic::LBZ: return "lbz";
    case Mnemonic::LD: return "ld";
    case Mnemonic::STW: return "stw";
    case Mnemonic::STB: return "stb";
    case Mnemonic::STD: return "std";
    case Mnemonic::LFD: return "lfd";
    case Mnemonic::STFD: return "stfd";
    case Mnemonic::B: return "b";
    case Mnemonic::BC: return "bc";
    case Mnemonic::BCLR: return "bclr";
    case Mnemonic::BCCTR: return "bcctr";
    case Mnemonic::FADD: return "fadd";
    case Mnemonic::FSUB: return "fsub";
    case Mnemonic::FMUL: return "fmul";
    case Mnemonic::FDIV: return "fdiv";
    case Mnemonic::STOP: return "stop";
    case Mnemonic::ILLEGAL: return "illegal";
  }
  return "?";
}

std::string_view to_string(InstrClass c) {
  switch (c) {
    case InstrClass::Load: return "Load";
    case InstrClass::Store: return "Store";
    case InstrClass::FixedPoint: return "FixedPoint";
    case InstrClass::FloatingPoint: return "FloatingPoint";
    case InstrClass::Comparison: return "Comparison";
    case InstrClass::Branch: return "Branch";
    case InstrClass::System: return "System";
  }
  return "?";
}

}  // namespace sfi::isa
