// The ISA-level golden model: architecturally exact, microarchitecture-free.
//
// This plays the role of the paper's AVP result checker: the Pearl6 pipeline
// and the golden model run the same program from the same initial state, and
// any *undetected* divergence in final architected state is classified as
// "incorrect architected state" (SDC).
#pragma once

#include <array>

#include "common/types.hpp"
#include "isa/arch_state.hpp"
#include "isa/encoding.hpp"
#include "isa/memory.hpp"
#include "isa/program.hpp"

namespace sfi::isa {

class GoldenModel {
 public:
  explicit GoldenModel(u32 mem_size_bytes);

  /// Load a program, zeroing memory, and set the initial architected state.
  void reset(const Program& prog, const ArchState& init);

  enum class Status : u8 {
    Running,       ///< more instructions to execute
    Stopped,       ///< executed STOP
    LimitReached,  ///< run() hit its instruction cap
  };

  /// Execute one instruction.
  Status step();
  /// Execute until STOP or `max_instrs`.
  Status run(u64 max_instrs);

  [[nodiscard]] const ArchState& state() const { return state_; }
  [[nodiscard]] ArchState& state() { return state_; }
  [[nodiscard]] const Memory& memory() const { return mem_; }
  [[nodiscard]] Memory& memory() { return mem_; }

  [[nodiscard]] u64 instructions_retired() const { return retired_; }
  /// Retired-instruction histogram by class (Table 1's mix numerator).
  [[nodiscard]] const std::array<u64, kNumInstrClasses>& class_counts() const {
    return class_counts_;
  }

 private:
  void execute(const Instr& in);

  Memory mem_;
  ArchState state_;
  u64 retired_ = 0;
  bool stopped_ = false;
  std::array<u64, kNumInstrClasses> class_counts_{};
};

}  // namespace sfi::isa
