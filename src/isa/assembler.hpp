// A small two-pass text assembler and a disassembler for PearlISA.
// Used by tests, examples and trace output; the AVP generator emits encoded
// words directly.
//
// Syntax (one instruction per line, '#' comments, "label:" definitions):
//   addi  r3, r0, 42        ; dest-first operand order
//   lwz   r4, 8(r5)
//   cmpi  0, r3, 5          ; CR field first
//   bc    12, 1, loop       ; raw BO/BI form
//   beq   0, done           ; alias: bc 12, crf*4+2
//   bdnz  loop              ; alias: bc 16, 0
//   fadd  f1, f2, f3
//   li r3, 42 / mr r3, r4 / nop / blr / b label / bl label / stop
//   mtlr r3 / mflr r3 / mtctr r3 / mfctr r3
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "isa/encoding.hpp"

namespace sfi::isa {

/// Thrown on malformed assembly input.
class AsmError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Assemble source text into instruction words. Branch displacements are
/// resolved against labels; `base` only matters for error messages.
[[nodiscard]] std::vector<u32> assemble(std::string_view source);

/// Render one decoded instruction as assembly text.
[[nodiscard]] std::string disassemble(const Instr& in);
[[nodiscard]] inline std::string disassemble(u32 word) {
  return disassemble(decode(word));
}

}  // namespace sfi::isa
