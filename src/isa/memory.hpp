// Flat little-endian memory with power-of-two size and wrap-around
// addressing. Wrapping (rather than faulting) matters for fault injection:
// a corrupted address register must produce a *defined* wrong access, never
// a simulator crash.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace sfi::isa {

class Memory {
 public:
  explicit Memory(u32 size_bytes);

  [[nodiscard]] u32 size() const { return static_cast<u32>(bytes_.size()); }

  [[nodiscard]] u8 load_u8(u64 addr) const;
  [[nodiscard]] u32 load_u32(u64 addr) const;
  [[nodiscard]] u64 load_u64(u64 addr) const;
  [[nodiscard]] u64 load(u64 addr, u32 size) const;  ///< size in {1,4,8}

  void store_u8(u64 addr, u8 v);
  void store_u32(u64 addr, u32 v);
  void store_u64(u64 addr, u64 v);
  void store(u64 addr, u64 v, u32 size);

  /// Bulk image write (program loading).
  void write_block(u64 addr, std::span<const u8> data);

  /// Fingerprint of a byte range (AVP data-region compare).
  [[nodiscard]] u64 range_hash(u64 addr, u32 len) const;

  void fill_zero();

  /// Whole image, read-only (snapshot compares; bypasses wrap handling).
  [[nodiscard]] std::span<const u8> bytes() const { return bytes_; }

  void save(std::vector<u8>& out) const;
  void load_snapshot(std::span<const u8>& in);

  friend bool operator==(const Memory&, const Memory&) = default;

 private:
  [[nodiscard]] u32 wrap(u64 addr) const {
    return static_cast<u32>(addr) & mask_;
  }
  std::vector<u8> bytes_;
  u32 mask_;
};

}  // namespace sfi::isa
