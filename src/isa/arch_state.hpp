// Architected state: the contract surface the AVP compares at end of test.
// A run whose final ArchState differs from the golden model's — with no
// error having been reported by the hardware — is the paper's "incorrect
// architected state" (silent data corruption) outcome.
#pragma once

#include <array>
#include <string>

#include "common/types.hpp"
#include "isa/encoding.hpp"

namespace sfi::isa {

struct ArchState {
  std::array<u64, kNumGprs> gpr{};
  std::array<u64, kNumFprs> fpr{};  ///< IEEE double bit patterns
  u32 cr = 0;
  u64 lr = 0;
  u64 ctr = 0;
  u64 pc = 0;

  friend bool operator==(const ArchState&, const ArchState&) = default;

  /// Order-stable fingerprint of the full architected state.
  [[nodiscard]] u64 hash() const;

  /// Human-readable first-difference description ("gpr[7]: 0x2a != 0x2b"),
  /// empty when equal. `ignore_pc` skips the PC (useful when comparing a
  /// stopped pipeline whose PC convention differs from the golden model's).
  [[nodiscard]] std::string diff(const ArchState& other,
                                 bool ignore_pc = false) const;
};

}  // namespace sfi::isa
