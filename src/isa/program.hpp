// A loadable test program: code image + initial data blobs + entry point.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "isa/memory.hpp"

namespace sfi::isa {

struct Program {
  u64 entry = 0x1000;
  u64 code_base = 0x1000;
  std::vector<u32> code;  ///< little-endian instruction words

  struct DataBlob {
    u64 addr = 0;
    std::vector<u8> bytes;
  };
  std::vector<DataBlob> data;

  /// Write code and data images into memory.
  void load_into(Memory& mem) const {
    for (std::size_t i = 0; i < code.size(); ++i) {
      mem.store_u32(code_base + i * 4, code[i]);
    }
    for (const DataBlob& blob : data) {
      mem.write_block(blob.addr, blob.bytes);
    }
  }

  [[nodiscard]] u64 code_end() const { return code_base + code.size() * 4; }
};

}  // namespace sfi::isa
