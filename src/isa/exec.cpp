#include "isa/exec.hpp"

#include <bit>
#include <limits>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace sfi::isa {

u64 alu_exec(Mnemonic mn, u64 a, u64 b) {
  switch (mn) {
    case Mnemonic::ADDI:
    case Mnemonic::ADD:
      return a + b;
    case Mnemonic::ADDIS:
      return a + (static_cast<u64>(static_cast<i64>(b)) << 16);
    case Mnemonic::SUBF:
      return b - a;  // POWER convention: RT = RB - RA
    case Mnemonic::ORI:
    case Mnemonic::OR:
      return a | b;
    case Mnemonic::XORI:
    case Mnemonic::XOR:
      return a ^ b;
    case Mnemonic::ANDI:
    case Mnemonic::AND:
      return a & b;
    case Mnemonic::NOR:
      return ~(a | b);
    case Mnemonic::NEG:
      return 0 - a;
    case Mnemonic::EXTSW:
      return static_cast<u64>(sign_extend(a, 32));
    case Mnemonic::SLD: {
      const u64 sh = b & 127;
      return sh >= 64 ? 0 : a << sh;
    }
    case Mnemonic::SRD: {
      const u64 sh = b & 127;
      return sh >= 64 ? 0 : a >> sh;
    }
    case Mnemonic::SRAD: {
      const u64 sh = b & 127;
      const auto sa = static_cast<i64>(a);
      if (sh >= 64) return sa < 0 ? ~u64{0} : 0;
      return static_cast<u64>(sa >> sh);
    }
    case Mnemonic::MULLD:
      return a * b;
    case Mnemonic::DIVD: {
      const auto sa = static_cast<i64>(a);
      const auto sb = static_cast<i64>(b);
      // Architected boundary cases: defined results, no trap.
      if (sb == 0) return 0;
      if (sa == std::numeric_limits<i64>::min() && sb == -1) {
        return static_cast<u64>(sa);
      }
      return static_cast<u64>(sa / sb);
    }
    default:
      // Reached only with a fault-corrupted opcode field: hardware produces
      // *some* deterministic value; we architect 0.
      return 0;
  }
}

u32 compare(u64 a, u64 b, bool is_signed) {
  bool lt;
  bool gt;
  if (is_signed) {
    lt = static_cast<i64>(a) < static_cast<i64>(b);
    gt = static_cast<i64>(a) > static_cast<i64>(b);
  } else {
    lt = a < b;
    gt = a > b;
  }
  u32 f = 0;
  if (lt) f |= 1u << kCrLt;
  if (gt) f |= 1u << kCrGt;
  if (!lt && !gt) f |= 1u << kCrEq;
  return f;
}

u32 cr_insert(u32 cr, u32 crf, u32 field) {
  ensure(crf < kNumCrFields, "cr_insert crf");
  const u32 shift = (7 - crf) * 4;  // field 0 occupies the high nibble
  const u32 m = 0xFu << shift;
  return (cr & ~m) | ((field & 0xF) << shift);
}

u32 cr_extract(u32 cr, u32 crf) {
  ensure(crf < kNumCrFields, "cr_extract crf");
  return (cr >> ((7 - crf) * 4)) & 0xF;
}

u32 cr_bit(u32 cr, u32 bi) {
  // bi counts from the msb: bi 0 = CR field 0's LT bit.
  return (cr >> (31 - (bi & 31))) & 1;
}

BranchEval eval_branch(u32 bo, u32 bi, u32 cr, u64 ctr) {
  BranchEval ev;
  ev.ctr_after = ctr;
  switch (bo) {
    case kBoAlways:
      ev.taken = true;
      return ev;
    case kBoTrue:
      ev.taken = cr_bit(cr, bi) != 0;
      return ev;
    case kBoFalse:
      ev.taken = cr_bit(cr, bi) == 0;
      return ev;
    case kBoDnz:
      ev.ctr_after = ctr - 1;
      ev.taken = ev.ctr_after != 0;
      return ev;
    default:
      // Unknown BO (possibly fault-corrupted): architected as not-taken,
      // no CTR side effect.
      ev.taken = false;
      return ev;
  }
}

u64 fpu_exec(Mnemonic mn, u64 a, u64 b) {
  const double fa = std::bit_cast<double>(a);
  const double fb = std::bit_cast<double>(b);
  double r = 0.0;
  switch (mn) {
    case Mnemonic::FADD: r = fa + fb; break;
    case Mnemonic::FSUB: r = fa - fb; break;
    case Mnemonic::FMUL: r = fa * fb; break;
    case Mnemonic::FDIV: r = fa / fb; break;
    default:
      // Fault-corrupted opcode field: deterministic fallback.
      return 0;
  }
  return std::bit_cast<u64>(r);
}

u64 agen(u64 ra_value, bool ra_is_zero, i64 disp) {
  const u64 base = ra_is_zero ? 0 : ra_value;
  return base + static_cast<u64>(disp);
}

u32 access_size(Mnemonic mn) {
  switch (mn) {
    case Mnemonic::LBZ:
    case Mnemonic::STB:
      return 1;
    case Mnemonic::LWZ:
    case Mnemonic::STW:
      return 4;
    case Mnemonic::LD:
    case Mnemonic::STD:
    case Mnemonic::LFD:
    case Mnemonic::STFD:
      return 8;
    default:
      // Fault-corrupted opcode field: narrowest access.
      return 1;
  }
}

}  // namespace sfi::isa
