#include "workload/spec_profiles.hpp"

#include <algorithm>
#include <array>

#include "avp/runner.hpp"
#include "stats/rng.hpp"

namespace sfi::workload {

namespace {

avp::MixProfile mix(double ld, double st, double fx, double fp, double cm,
                    double br, double locality) {
  avp::MixProfile m;
  m.load = ld;
  m.store = st;
  m.fixed = fx;
  m.fp = fp;
  m.cmp = cm;
  m.branch = br;
  m.locality = locality;
  return m;
}

// Eleven components spanning the paper's Table 1 envelope. Names are
// SPECInt-2000-flavoured; mixes are synthetic but hit the published bounds
// (gzip-like is the load-Low anchor, mcf-like the load-High / locality-poor
// anchor, and so on).
const std::vector<SpecComponent> kComponents = {
    {"gzip.like",    mix(0.189, 0.120, 0.359, 0.000, 0.098, 0.234, 0.92)},
    {"vpr.like",     mix(0.280, 0.110, 0.240, 0.091, 0.091, 0.188, 0.80)},
    {"gcc.like",     mix(0.250, 0.160, 0.200, 0.000, 0.102, 0.288, 0.70)},
    {"mcf.like",     mix(0.356, 0.064, 0.230, 0.000, 0.120, 0.230, 0.25)},
    {"crafty.like",  mix(0.290, 0.110, 0.310, 0.000, 0.151, 0.139, 0.85)},
    {"parser.like",  mix(0.230, 0.180, 0.230, 0.000, 0.090, 0.270, 0.65)},
    {"eon.like",     mix(0.270, 0.200, 0.220, 0.080, 0.090, 0.140, 0.88)},
    {"perlbmk.like", mix(0.300, 0.230, 0.150, 0.000, 0.080, 0.240, 0.75)},
    {"gap.like",     mix(0.260, 0.150, 0.300, 0.020, 0.100, 0.170, 0.78)},
    {"vortex.like",  mix(0.330, 0.317, 0.062, 0.000, 0.048, 0.243, 0.60)},
    {"bzip2.like",   mix(0.300, 0.110, 0.320, 0.000, 0.100, 0.170, 0.90)},
};

}  // namespace

std::span<const SpecComponent> spec_components() { return kComponents; }

avp::Testcase make_component_testcase(const SpecComponent& comp, u64 seed,
                                      u32 num_instructions) {
  avp::TestcaseConfig cfg;
  cfg.seed = stats::derive_seed(seed, std::hash<std::string>{}(comp.name));
  cfg.num_instructions = num_instructions;
  cfg.mix = comp.mix;
  return avp::generate_testcase(cfg);
}

MixEnvelope measure_envelope(u64 seed, u32 num_instructions) {
  MixEnvelope env;
  env.low.fill(1.0);
  env.high.fill(0.0);
  env.cpi_low = 1e9;

  for (const SpecComponent& comp : kComponents) {
    const avp::Testcase tc =
        make_component_testcase(comp, seed, num_instructions);
    const avp::MixReport rep = avp::measure_mix(tc);
    for (std::size_t c = 0; c < isa::kNumInstrClasses; ++c) {
      env.low[c] = std::min(env.low[c], rep.fractions[c]);
      env.high[c] = std::max(env.high[c], rep.fractions[c]);
      env.average[c] += rep.fractions[c] / static_cast<double>(kComponents.size());
    }
    env.cpi_low = std::min(env.cpi_low, rep.cpi);
    env.cpi_high = std::max(env.cpi_high, rep.cpi);
    env.cpi_average += rep.cpi / static_cast<double>(kComponents.size());
  }
  return env;
}

}  // namespace sfi::workload
