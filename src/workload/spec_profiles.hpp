// Synthetic stand-ins for the 11 SPECInt 2000 components of the paper's
// Table 1. Real SPEC binaries cannot run on a 64 KiB bare-metal testbench;
// what Table 1 actually uses is each component's *instruction mix and CPI*,
// so each stand-in is a mix profile (within the paper's published Low/High
// bounds) plus a locality knob that recreates the component's cache
// behaviour. The mixes below keep the paper's envelope: Load 18.9–35.6%,
// Store 6.4–31.7%, FixedPoint 6.2–35.9%, FP 0–9.1%, Comparison 4.8–15.1%,
// Branch 6.9–28.8%.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "avp/testgen.hpp"

namespace sfi::workload {

struct SpecComponent {
  std::string name;
  avp::MixProfile mix;
};

/// The 11 SPECInt-2000-like components.
[[nodiscard]] std::span<const SpecComponent> spec_components();

/// Build a testcase exercising one component's profile.
[[nodiscard]] avp::Testcase make_component_testcase(const SpecComponent& comp,
                                                    u64 seed,
                                                    u32 num_instructions = 220);

/// Row of the Table 1 comparison: per-class Low/High/Average across the
/// components, plus CPI.
struct MixEnvelope {
  std::array<double, isa::kNumInstrClasses> low{};
  std::array<double, isa::kNumInstrClasses> high{};
  std::array<double, isa::kNumInstrClasses> average{};
  double cpi_low = 0.0;
  double cpi_high = 0.0;
  double cpi_average = 0.0;
};

/// Measure all components on the core and fold into the envelope.
[[nodiscard]] MixEnvelope measure_envelope(u64 seed, u32 num_instructions = 220);

}  // namespace sfi::workload
