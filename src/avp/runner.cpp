#include "avp/runner.hpp"

#include "common/check.hpp"
#include "common/hash.hpp"
#include "netlist/ecc.hpp"

namespace sfi::avp {

GoldenResult run_golden(const Testcase& tc, u64 max_instrs) {
  isa::GoldenModel gm(core::CoreConfig::kMemBytes);
  gm.reset(tc.program, tc.init);
  const auto status = gm.run(max_instrs);
  ensure(status == isa::GoldenModel::Status::Stopped,
         "AVP testcase did not terminate on the golden model");
  GoldenResult r;
  r.final_state = gm.state();
  r.final_mem_hash = gm.memory().range_hash(0, gm.memory().size());
  // Encode the final image exactly as a clean ECC store would hold it
  // (every word written through the controller carries encode(data)).
  const u32 mem_bytes = gm.memory().size();
  r.final_mem_encoded.reserve(mem_bytes + mem_bytes / 8);
  gm.memory().save(r.final_mem_encoded);
  for (u32 w = 0; w < mem_bytes / 8; ++w) {
    r.final_mem_encoded.push_back(
        netlist::ecc_encode(gm.memory().load_u64(static_cast<u64>(w) * 8)));
  }
  r.instructions = gm.instructions_retired();
  r.class_counts = gm.class_counts();
  return r;
}

emu::GoldenTrace run_reference(core::Pearl6Model& model, emu::Emulator& emu,
                               const Testcase& tc, Cycle max_cycles,
                               bool record_states) {
  model.load_workload(tc.program, tc.init);
  emu::GoldenTrace trace =
      emu::record_golden_trace(emu, max_cycles, /*margin=*/64, record_states);
  ensure(trace.completed, "AVP testcase did not complete on the core");
  return trace;
}

MixReport measure_mix(const Testcase& tc, const core::CoreConfig& cfg) {
  const GoldenResult golden = run_golden(tc);

  core::Pearl6Model model(cfg);
  emu::Emulator emu(model);
  const emu::GoldenTrace trace = run_reference(model, emu, tc);

  MixReport rep;
  rep.instructions = golden.instructions;
  rep.cycles = trace.completion_cycle;
  rep.cpi = rep.instructions == 0
                ? 0.0
                : static_cast<double>(rep.cycles) /
                      static_cast<double>(rep.instructions);
  for (std::size_t c = 0; c < isa::kNumInstrClasses; ++c) {
    rep.fractions[c] = rep.instructions == 0
                           ? 0.0
                           : static_cast<double>(golden.class_counts[c]) /
                                 static_cast<double>(golden.instructions);
  }
  return rep;
}

Verdict check_against_golden(core::Pearl6Model& model,
                             const netlist::StateVector& sv,
                             const GoldenResult& golden) {
  Verdict v;
  const isa::ArchState st = model.arch_state(sv);
  const std::string d = st.diff(golden.final_state);
  v.state_matches = d.empty();
  // Compare what software would read: the controller's corrected view
  // (a latent single-bit main-store upset is not a corruption). Fast path:
  // when the encoded store is bit-identical to the clean golden image the
  // readout walk would correct nothing and hash equal, so skip it.
  v.memory_matches =
      (!golden.final_mem_encoded.empty() &&
       model.memory().encoded_image_equals(golden.final_mem_encoded)) ||
      model.memory().corrected_hash(0, model.memory().size()) ==
          golden.final_mem_hash;
  if (!v.state_matches) {
    v.first_diff = d;
  } else if (!v.memory_matches) {
    v.first_diff = "memory image differs";
  }
  return v;
}

}  // namespace sfi::avp
