#include "avp/testgen.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "isa/encoding.hpp"
#include "stats/rng.hpp"
#include "stats/sampling.hpp"

namespace sfi::avp {

namespace {
using isa::enc_b;
using isa::enc_d;
using isa::enc_fp;
using isa::enc_i;
using isa::enc_x;
using stats::Xoshiro256;

// r30/r31 hold the data-region base and are never written.
constexpr u32 kBaseRegA = 30;
constexpr u32 kBaseRegB = 31;

/// Class selector indices into the weight vector.
enum ClassIdx : std::size_t {
  kLoad = 0,
  kStore,
  kFixed,
  kFp,
  kCmp,
  kBranch,
  kNumClasses,
};

// Real code has a hot working set: most operands come from a few registers
// (this is what lets flips in the cold registers vanish, as they do on real
// hardware). 75% of sources and destinations use r1..r10.
constexpr u32 kHotRegs = 10;

u32 random_dest_gpr(Xoshiro256& rng) {
  // Destinations avoid r30/r31 (reserved base registers).
  if (rng.chance(0.75)) return 1 + static_cast<u32>(rng.below(kHotRegs));
  return static_cast<u32>(rng.below(30));
}

u32 random_src_gpr(Xoshiro256& rng) {
  if (rng.chance(0.75)) return 1 + static_cast<u32>(rng.below(kHotRegs));
  return static_cast<u32>(rng.below(isa::kNumGprs));
}

u32 random_fpr(Xoshiro256& rng) {
  if (rng.chance(0.75)) return static_cast<u32>(rng.below(4));
  return static_cast<u32>(rng.below(isa::kNumFprs));
}

/// A memory displacement inside the data region, respecting locality.
u16 random_disp(Xoshiro256& rng, const TestcaseConfig& cfg, u32 size) {
  const bool hot = rng.uniform() < cfg.mix.locality;
  const u32 window = hot ? 256u : cfg.data_size;
  u32 off = static_cast<u32>(rng.below(window));
  off &= ~(size - 1);          // naturally aligned
  off &= cfg.data_size - 1;
  // The displacement itself must fit a signed 16-bit field; data_size and
  // window are well inside that.
  return static_cast<u16>(off);
}

}  // namespace

MixProfile MixProfile::avp() {
  MixProfile m;
  m.load = 0.294;
  m.store = 0.236;
  m.fixed = 0.167;
  m.fp = 0.025;  // paper reports 0% in the top-90% mix; small share keeps
                 // FPU paths live
  m.cmp = 0.049;
  m.branch = 0.146;
  m.locality = 0.7;
  return m;
}

Testcase generate_testcase(const TestcaseConfig& cfg) {
  require(cfg.num_instructions >= 8, "testcase needs >= 8 instructions");
  require((cfg.data_size & (cfg.data_size - 1)) == 0, "data_size power of 2");
  require(cfg.mix.total() > 0.0, "mix must have positive weight");

  Xoshiro256 rng(cfg.seed);
  Testcase tc;
  tc.config = cfg;

  // --- initial architected state ---
  for (u32 i = 0; i < isa::kNumGprs; ++i) tc.init.gpr[i] = rng.next();
  tc.init.gpr[kBaseRegA] = cfg.data_base;
  tc.init.gpr[kBaseRegB] = cfg.data_base + cfg.data_size / 2;
  for (u32 i = 0; i < isa::kNumFprs; ++i) {
    // Finite doubles in a tame range: (mantissa ∈ [1,2)) * 2^[-8,8).
    const double mant = 1.0 + rng.uniform();
    const int exp = static_cast<int>(rng.below(16)) - 8;
    tc.init.fpr[i] = std::bit_cast<u64>(std::ldexp(mant, exp));
  }
  tc.init.cr = static_cast<u32>(rng.next());
  tc.init.ctr = 0;
  tc.init.lr = 0;

  // --- data region image ---
  isa::Program::DataBlob blob;
  blob.addr = cfg.data_base;
  blob.bytes.resize(cfg.data_size);
  for (auto& b : blob.bytes) b = static_cast<u8>(rng.next());
  tc.program.data.push_back(std::move(blob));

  // --- code ---
  const std::array<double, kNumClasses> weights = {
      cfg.mix.load, cfg.mix.store, cfg.mix.fixed,
      cfg.mix.fp,   cfg.mix.cmp,   cfg.mix.branch};

  std::vector<u32>& code = tc.program.code;
  code.reserve(cfg.num_instructions + 8);

  // Pending CTR-loop back-edges: (bdnz position is fixed when the loop
  // closes). Only one loop open at a time keeps termination trivial.
  i32 open_loop_top = -1;
  u32 open_loop_close_at = 0;
  // Furthest word any already-emitted forward branch can land on. A loop
  // may only open once no in-flight branch can jump into its prologue or
  // body (skipping the mtctr would leave a stale CTR for the bdnz).
  u32 max_branch_target = 0;

  while (code.size() < cfg.num_instructions) {
    const u32 remaining =
        cfg.num_instructions - static_cast<u32>(code.size());

    // Close an open CTR loop when its body is long enough.
    if (open_loop_top >= 0 && code.size() >= open_loop_close_at) {
      const i32 disp = (open_loop_top - static_cast<i32>(code.size())) * 4;
      code.push_back(enc_b(isa::kBoDnz, 0, disp, false));
      open_loop_top = -1;
      continue;
    }

    switch (stats::weighted_index(weights, rng)) {
      case kLoad: {
        const u32 base = rng.chance(0.5) ? kBaseRegA : kBaseRegB;
        const u32 dest = random_dest_gpr(rng);
        switch (rng.below(4)) {
          case 0:
            code.push_back(enc_d(isa::kOpLbz, dest, base,
                                 random_disp(rng, cfg, 1)));
            break;
          case 1:
            code.push_back(enc_d(isa::kOpLwz, dest, base,
                                 random_disp(rng, cfg, 4)));
            break;
          case 2:
            code.push_back(enc_d(isa::kOpLd, dest, base,
                                 random_disp(rng, cfg, 8)));
            break;
          default:
            code.push_back(enc_d(isa::kOpLfd,
                                 random_fpr(rng),
                                 base, random_disp(rng, cfg, 8)));
            break;
        }
        break;
      }
      case kStore: {
        const u32 base = rng.chance(0.5) ? kBaseRegA : kBaseRegB;
        const u32 src = random_src_gpr(rng);
        switch (rng.below(4)) {
          case 0:
            code.push_back(enc_d(isa::kOpStb, src, base,
                                 random_disp(rng, cfg, 1)));
            break;
          case 1:
            code.push_back(enc_d(isa::kOpStw, src, base,
                                 random_disp(rng, cfg, 4)));
            break;
          case 2:
            code.push_back(enc_d(isa::kOpStd, src, base,
                                 random_disp(rng, cfg, 8)));
            break;
          default:
            code.push_back(enc_d(isa::kOpStfd, random_fpr(rng), base,
                                 random_disp(rng, cfg, 8)));
            break;
        }
        break;
      }
      case kFixed: {
        const u32 dest = random_dest_gpr(rng);
        const u32 a = random_src_gpr(rng);
        const u32 b = random_src_gpr(rng);
        switch (rng.below(12)) {
          case 0: code.push_back(enc_x(dest, a, b, isa::kXoAdd)); break;
          case 1: code.push_back(enc_x(dest, a, b, isa::kXoSubf)); break;
          case 2: code.push_back(enc_x(dest, a, b, isa::kXoAnd)); break;
          case 3: code.push_back(enc_x(dest, a, b, isa::kXoOr)); break;
          case 4: code.push_back(enc_x(dest, a, b, isa::kXoXor)); break;
          case 5: code.push_back(enc_x(dest, a, b, isa::kXoNor)); break;
          case 6: code.push_back(enc_x(dest, a, b, isa::kXoSld)); break;
          case 7: code.push_back(enc_x(dest, a, b, isa::kXoSrad)); break;
          case 8: code.push_back(enc_x(dest, a, b, isa::kXoMulld)); break;
          case 9: code.push_back(enc_x(dest, a, b, isa::kXoDivd)); break;
          case 10:
            code.push_back(enc_d(isa::kOpAddi, dest, a,
                                 static_cast<u16>(rng.next())));
            break;
          default:
            code.push_back(enc_d(isa::kOpOri, dest, a,
                                 static_cast<u16>(rng.next())));
            break;
        }
        break;
      }
      case kFp: {
        const u32 dest = random_fpr(rng);
        const u32 a = random_fpr(rng);
        const u32 b = random_fpr(rng);
        switch (rng.below(4)) {
          case 0: code.push_back(enc_fp(dest, a, b, isa::kFpAdd)); break;
          case 1: code.push_back(enc_fp(dest, a, b, isa::kFpSub)); break;
          case 2: code.push_back(enc_fp(dest, a, b, isa::kFpMul)); break;
          default: code.push_back(enc_fp(dest, a, b, isa::kFpDiv)); break;
        }
        break;
      }
      case kCmp: {
        const auto crf = static_cast<u32>(rng.below(8));
        const u32 a = random_src_gpr(rng);
        if (rng.chance(0.5)) {
          code.push_back(enc_x(crf, a, random_src_gpr(rng),
                               rng.chance(0.5) ? isa::kXoCmp : isa::kXoCmpl));
        } else {
          code.push_back(enc_d(rng.chance(0.5) ? isa::kOpCmpi : isa::kOpCmpli,
                               crf, a, static_cast<u16>(rng.below(1024))));
        }
        break;
      }
      case kBranch: {
        // Loops need room for prologue+body+bdnz; otherwise emit forward
        // conditional/unconditional branches (always terminating).
        if (open_loop_top < 0 && remaining > 10 &&
            max_branch_target <= code.size() && rng.chance(0.25)) {
          const u32 dest = random_dest_gpr(rng);
          const auto count = static_cast<u16>(2 + rng.below(5));
          code.push_back(enc_d(isa::kOpAddi, dest, 0, count));
          code.push_back(enc_x(dest, isa::kSprCtr & 31,
                               (isa::kSprCtr >> 5) & 31, isa::kXoMtspr));
          open_loop_top = static_cast<i32>(code.size());
          open_loop_close_at =
              static_cast<u32>(code.size()) + 2 + static_cast<u32>(rng.below(5));
        } else {
          const auto skip = static_cast<i32>(1 + rng.below(5));
          if (rng.chance(0.3)) {
            code.push_back(enc_i(skip * 4 + 4, false));
          } else {
            const u32 bo = rng.chance(0.5) ? isa::kBoTrue : isa::kBoFalse;
            const auto bi = static_cast<u32>(rng.below(32));
            code.push_back(enc_b(bo, bi, skip * 4 + 4, false));
          }
          max_branch_target =
              std::max(max_branch_target,
                       static_cast<u32>(code.size()) + static_cast<u32>(skip));
        }
        break;
      }
      default:
        throw InternalError("testgen: bad class index");
    }
  }

  // Close a dangling loop, then pad the landing zone for the longest
  // possible forward branch (5 skips) before the STOP.
  if (open_loop_top >= 0) {
    const i32 disp = (open_loop_top - static_cast<i32>(code.size())) * 4;
    code.push_back(enc_b(isa::kBoDnz, 0, disp, false));
  }
  for (int i = 0; i < 6; ++i) {
    code.push_back(enc_d(isa::kOpOri, 0, 0, 0));  // nop landing pad
  }
  code.push_back(isa::kStopWord);
  return tc;
}

}  // namespace sfi::avp
