// AVP execution and checking: runs a testcase on the ISA golden model and on
// the Pearl6 core, compares final architected state *and* memory, and
// measures the instruction mix and CPI (paper Table 1's rows).
#pragma once

#include <array>
#include <string>

#include "avp/testgen.hpp"
#include "core/core_model.hpp"
#include "emu/emulator.hpp"
#include "emu/golden_trace.hpp"
#include "isa/golden.hpp"

namespace sfi::avp {

/// Result of running a testcase on the golden model.
struct GoldenResult {
  isa::ArchState final_state;
  u64 final_mem_hash = 0;  ///< hash of the whole memory image at STOP
  /// The final memory image as a fault-free ECC machine would hold it:
  /// data bytes followed by one Hamming(72,64) check byte per word. The
  /// classifier memcmps the injected machine's store against this before
  /// falling back to the (expensive) corrected-readout walk — a
  /// bit-identical encoded image decodes clean, so the walk is provably a
  /// no-op (see EccMemory::encoded_image_equals).
  std::vector<u8> final_mem_encoded;
  u64 instructions = 0;
  std::array<u64, isa::kNumInstrClasses> class_counts{};
};

[[nodiscard]] GoldenResult run_golden(const Testcase& tc,
                                      u64 max_instrs = 1u << 20);

/// Fault-free run of a testcase on a Pearl6 model: returns the golden trace
/// (hash-per-cycle reference) after asserting completion. `record_states`
/// additionally keeps the per-cycle masked state for the runner's exact
/// convergence compare (campaign/beam workloads; costs cycles × state
/// bytes of memory).
[[nodiscard]] emu::GoldenTrace run_reference(core::Pearl6Model& model,
                                             emu::Emulator& emu,
                                             const Testcase& tc,
                                             Cycle max_cycles = 200000,
                                             bool record_states = false);

/// Instruction mix (per class, as fractions) and CPI of a testcase on the
/// core — the numbers Table 1 compares against SPECInt.
struct MixReport {
  std::array<double, isa::kNumInstrClasses> fractions{};
  double cpi = 0.0;
  u64 instructions = 0;
  Cycle cycles = 0;
};

[[nodiscard]] MixReport measure_mix(const Testcase& tc,
                                    const core::CoreConfig& cfg = {});

/// End-of-test verdict for an injected (or fault-free) run.
struct Verdict {
  bool state_matches = false;
  bool memory_matches = false;
  std::string first_diff;  ///< empty when everything matches
};

/// Non-const: reading memory goes through the ECC controller (corrections
/// are a machine side effect, exactly as on hardware).
[[nodiscard]] Verdict check_against_golden(core::Pearl6Model& model,
                                           const netlist::StateVector& sv,
                                           const GoldenResult& golden);

}  // namespace sfi::avp
