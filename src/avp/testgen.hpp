// AVP testcase generation.
//
// The paper's Architectural Verification Program "executes numerous small
// testcases of pseudo-random instructions" whose mix sits inside the SPECInt
// 2000 envelope (Table 1). This generator produces such testcases: seeded,
// terminating by construction (forward conditional branches and bounded
// CTR loops only), with loads/stores confined to a data region whose
// locality is a profile knob (it drives the D-cache hit rate and hence CPI).
#pragma once

#include <string>

#include "common/types.hpp"
#include "isa/arch_state.hpp"
#include "isa/program.hpp"

namespace sfi::avp {

/// Instruction-mix profile: fractions must sum to ~1. Matches the class
/// rows of the paper's Table 1.
struct MixProfile {
  double load = 0.0;
  double store = 0.0;
  double fixed = 0.0;
  double fp = 0.0;
  double cmp = 0.0;
  double branch = 0.0;

  /// Fraction of memory accesses confined to a hot 256-byte window
  /// (cache-friendliness knob; 1.0 = everything hot).
  double locality = 0.7;

  [[nodiscard]] double total() const {
    return load + store + fixed + fp + cmp + branch;
  }

  /// The AVP's own mix (paper Table 1, AVP column; FP is near zero there —
  /// we keep a small non-zero share so FPU datapaths are exercised).
  static MixProfile avp();
};

struct TestcaseConfig {
  u64 seed = 1;
  u32 num_instructions = 160;  ///< static instruction budget (pre-branch)
  MixProfile mix = MixProfile::avp();
  u32 data_base = 0x8000;
  u32 data_size = 0x1000;  ///< power of two
};

/// A generated testcase: program image + initial architected state (the
/// generator seeds every GPR/FPR and the data region with random values).
struct Testcase {
  isa::Program program;
  isa::ArchState init;
  TestcaseConfig config;
};

[[nodiscard]] Testcase generate_testcase(const TestcaseConfig& cfg);

}  // namespace sfi::avp
