#include "common/bits.hpp"

#include <array>

namespace sfi {

std::string to_binary(u64 v, unsigned width) {
  require(width >= 1 && width <= 64, "to_binary width in [1,64]");
  std::string s(width, '0');
  for (unsigned i = 0; i < width; ++i) {
    if ((v >> (width - 1 - i)) & 1) s[i] = '1';
  }
  return s;
}

std::string to_hex(u64 v) {
  static constexpr std::array<char, 16> digits = {'0', '1', '2', '3', '4', '5',
                                                  '6', '7', '8', '9', 'a', 'b',
                                                  'c', 'd', 'e', 'f'};
  std::string s = "0x";
  bool started = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const auto nib = static_cast<unsigned>((v >> shift) & 0xF);
    if (nib != 0) started = true;
    if (started) s.push_back(digits[nib]);
  }
  if (!started) s.push_back('0');
  return s;
}

}  // namespace sfi
