// Fundamental width-explicit types shared by every module.
#pragma once

#include <cstdint>
#include <cstddef>

namespace sfi {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// A simulation cycle count. Cycle 0 is the first evaluated cycle.
using Cycle = std::uint64_t;

/// Index of a single latch bit within the model's StateVector.
using BitIndex = std::uint32_t;

}  // namespace sfi
