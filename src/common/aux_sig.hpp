// AuxSig: an order-sensitive running signature of auxiliary-state
// mutations — everything a machine cycle can change *outside* the latch
// StateVector (protected-array entries, ECC main-store words and their
// check bits).
//
// The lane engine compares one cycle's signature on two machines to decide
// whether their auxiliary state stayed equal: starting from equal aux
// state, identical mutation streams (same call sites, same operands, same
// order — which equal signatures certify up to hash collision) leave equal
// aux state. A differing signature only ever forces the conservative slow
// path, so a false mismatch costs speed, never correctness.
#pragma once

#include "common/hash.hpp"

namespace sfi {

struct AuxSig {
  u64 acc = 0;

  /// Fold one mutation event (site tag + operands) into the signature.
  void mix(u64 tag, u64 a, u64 b) {
    acc = mix64(acc ^ mix64(tag ^ mix64(a) ^
                            (b * 0x9E3779B97F4A7C15ULL)));
  }
};

}  // namespace sfi
