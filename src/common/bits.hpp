// Bit-manipulation helpers used by the netlist substrate, the checkers and
// the ISA. All operate on explicit widths; widths are in [0, 64].
#pragma once

#include <bit>
#include <string>

#include "common/check.hpp"
#include "common/types.hpp"

namespace sfi {

/// A mask with the low `width` bits set. width 64 yields all-ones.
[[nodiscard]] constexpr u64 mask_low(unsigned width) {
  return width >= 64 ? ~u64{0} : (u64{1} << width) - 1;
}

/// Extract `width` bits starting at `lsb` from `v`.
[[nodiscard]] constexpr u64 extract(u64 v, unsigned lsb, unsigned width) {
  return (v >> lsb) & mask_low(width);
}

/// Insert the low `width` bits of `field` into `v` at `lsb`.
[[nodiscard]] constexpr u64 insert(u64 v, unsigned lsb, unsigned width, u64 field) {
  const u64 m = mask_low(width) << lsb;
  return (v & ~m) | ((field << lsb) & m);
}

/// Even parity over `width` bits of `v`: 1 when the population count is odd,
/// so that word⊕parity has even parity overall.
[[nodiscard]] constexpr u32 parity(u64 v, unsigned width = 64) {
  return static_cast<u32>(std::popcount(v & mask_low(width)) & 1);
}

/// Sign-extend the low `width` bits of `v` to 64 bits.
[[nodiscard]] constexpr i64 sign_extend(u64 v, unsigned width) {
  ensure(width >= 1 && width <= 64, "sign_extend width");
  const u64 m = mask_low(width);
  const u64 sign = u64{1} << (width - 1);
  const u64 x = v & m;
  return static_cast<i64>((x ^ sign) - sign);
}

/// Modulo-3 residue of a 64-bit value. Used by the FXU residue checker:
/// residue(a) + residue(b) ≡ residue(a+b) (mod 3).
[[nodiscard]] constexpr u32 residue3(u64 v) {
  // Fold by 32/16/8/4/2-bit halves; 2^k mod 3 alternates 1,2 so pairwise
  // folding with weights keeps the residue. Simpler: builtin remainder.
  return static_cast<u32>(v % 3);
}

/// Number of 64-bit words needed to hold `bits` bits.
[[nodiscard]] constexpr std::size_t words_for_bits(std::size_t bits) {
  return (bits + 63) / 64;
}

/// Render `v` as a fixed-width binary string (msb first), for diagnostics.
[[nodiscard]] std::string to_binary(u64 v, unsigned width);

/// Render `v` as 0x-prefixed hex, for diagnostics.
[[nodiscard]] std::string to_hex(u64 v);

}  // namespace sfi
