// Contract checking. SFI is a simulator: an internal invariant violation is a
// bug in the tool, never a modelled fault, so checks throw (they must not be
// confused with the modelled machine's checkstops).
#pragma once

#include <stdexcept>
#include <string>

namespace sfi {

/// Thrown when an internal invariant of the simulator itself is violated.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown on invalid arguments at public API boundaries.
class UsageError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Verify an internal invariant; throws InternalError when violated.
/// constexpr so it can guard constant-evaluated helpers (a failing check in a
/// constant expression is a compile error, which is exactly right).
constexpr void ensure(bool cond, const char* what) {
  if (!cond) throw InternalError(std::string("sfi internal error: ") + what);
}

/// Validate a precondition of a public API; throws UsageError when violated.
constexpr void require(bool cond, const char* what) {
  if (!cond) throw UsageError(std::string("sfi usage error: ") + what);
}

}  // namespace sfi
