// A small, fast, non-cryptographic 64-bit hash (xxhash/wyhash-style mixing).
// Used for golden-trace state fingerprints: the SFI classifier declares a
// fault "vanished" when the injected run's functional-state hash re-matches
// the fault-free run's hash at the same cycle.
#pragma once

#include <span>

#include "common/types.hpp"

namespace sfi {

/// Strong 64-bit mix (splitmix64 finalizer).
[[nodiscard]] constexpr u64 mix64(u64 x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Hash a span of 64-bit words with positional mixing. Order-sensitive.
[[nodiscard]] inline u64 hash_words(std::span<const u64> words, u64 seed = 0) {
  u64 h = mix64(seed ^ 0x5851F42D4C957F2DULL);
  u64 pos = 0;
  for (const u64 w : words) {
    h = mix64(h ^ mix64(w + (++pos) * 0x9E3779B97F4A7C15ULL));
  }
  return mix64(h ^ (static_cast<u64>(words.size()) << 1));
}

/// Hash arbitrary bytes (for program images, memory regions).
[[nodiscard]] inline u64 hash_bytes(std::span<const u8> bytes, u64 seed = 0) {
  u64 h = mix64(seed ^ 0xA0761D6478BD642FULL);
  u64 acc = 0;
  unsigned nacc = 0;
  u64 pos = 0;
  for (const u8 b : bytes) {
    acc |= static_cast<u64>(b) << (8 * nacc);
    if (++nacc == 8) {
      h = mix64(h ^ mix64(acc + (++pos) * 0x9E3779B97F4A7C15ULL));
      acc = 0;
      nacc = 0;
    }
  }
  if (nacc != 0) h = mix64(h ^ mix64(acc + 0xE7037ED1A0B428DBULL));
  return mix64(h ^ (static_cast<u64>(bytes.size()) << 1));
}

}  // namespace sfi
