#include "beam/beam.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "common/check.hpp"

namespace sfi::beam {

namespace {
using inject::FaultSpec;
using inject::FaultTarget;
using inject::InjectionRecord;
using inject::InjectionRunner;
using inject::RunResult;
}  // namespace

BeamResult run_beam_experiment(const avp::Testcase& tc,
                               const BeamConfig& cfg) {
  require(cfg.num_events > 0, "beam needs events");
  require(cfg.latch_cross_section >= 0.0 && cfg.array_cross_section >= 0.0,
          "cross-sections must be non-negative");
  const auto t0 = std::chrono::steady_clock::now();

  inject::CampaignTelemetry* tel = cfg.telemetry;
  if (tel != nullptr) {
    tel->campaign_start("beam", cfg.seed, cfg.num_events, /*resumed=*/0);
  }

  const avp::GoldenResult golden = avp::run_golden(tc);
  core::Pearl6Model ref_model(cfg.core);
  emu::Emulator ref_emu(ref_model);
  const emu::GoldenTrace trace =
      avp::run_reference(ref_model, ref_emu, tc, /*max_cycles=*/200000,
                         /*record_states=*/true);

  const u64 latch_bits = ref_model.registry().num_latches();
  const u64 array_bits = ref_model.arrays().total_storage_bits();
  const double latch_weight =
      static_cast<double>(latch_bits) * cfg.latch_cross_section;
  const double array_weight =
      static_cast<double>(array_bits) * cfg.array_cross_section;
  require(latch_weight + array_weight > 0.0, "beam sees no sensitive bits");

  // Pre-generate strikes: uniform arrival over the exposure window, target
  // cell weighted by cross-section.
  std::vector<FaultSpec> strikes(cfg.num_events);
  u64 latch_events = 0;
  u64 array_events = 0;
  for (u32 i = 0; i < cfg.num_events; ++i) {
    stats::Xoshiro256 rng(stats::derive_seed(cfg.seed, i));
    FaultSpec f;
    f.cycle = 1 + rng.below(trace.completion_cycle - 1);
    const double pick = rng.uniform() * (latch_weight + array_weight);
    if (pick < latch_weight) {
      f.target = FaultTarget::Latch;
      f.index = static_cast<u32>(rng.below(latch_bits));
      ++latch_events;
    } else {
      f.target = FaultTarget::ArrayCell;
      f.array_bit = rng.below(array_bits);
      ++array_events;
    }
    strikes[i] = f;
  }

  const u32 threads =
      cfg.threads != 0
          ? cfg.threads
          : std::max(1u, std::thread::hardware_concurrency());

  // Shared interval-checkpoint store: beam runs replay to the strike cycle
  // exactly like campaign injections, so Table 2 calibration gets the same
  // warm-start speedup. One extra fault-free replay builds it.
  emu::CheckpointStore ckpts;
  if (cfg.ckpt_interval != 0 && trace.completion_cycle > 1) {
    emu::CheckpointStoreConfig cc;
    cc.interval =
        cfg.ckpt_interval == emu::kCkptAuto ? 0 : cfg.ckpt_interval;
    cc.memory_budget_bytes = cfg.ckpt_memory_budget;
    ckpts = emu::build_checkpoint_store(ref_emu, trace.completion_cycle - 1,
                                        cc, &trace);
  }

  // Dispatch strikes cycle-sorted so consecutive runs share a hot
  // checkpoint; records land at their original index.
  std::vector<u32> order(cfg.num_events);
  for (u32 i = 0; i < cfg.num_events; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](u32 a, u32 b) {
    return strikes[a].cycle != strikes[b].cycle
               ? strikes[a].cycle < strikes[b].cycle
               : a < b;
  });

  std::vector<InjectionRecord> records(cfg.num_events);
  std::atomic<u32> next{0};

  // Beam observability: the experimenter cannot watch internal state, so
  // the golden-hash early exit is off — classification uses only RAS
  // reporting and the end-of-test compare, like the real irradiation runs.
  // This is also why beam is pinned to the scalar InjectionRunner rather
  // than dispatching through sfi::InjectionEngine (DESIGN.md §16): the lane
  // engine's whole fast path is an internal-state convergence proof against
  // the reference replay, and beam's array strikes diverge in aux state
  // (array cells, ECC words) that the latch diff carrier cannot represent.
  inject::RunConfig run_cfg = cfg.run;
  run_cfg.early_exit = false;

  if (tel != nullptr) tel->prepare_workers(threads);

  const auto work = [&](core::Pearl6Model& model, emu::Emulator& emu,
                        u32 tid) {
    inject::WorkerTelemetry* wt =
        tel != nullptr ? &tel->worker(tid) : nullptr;
    emu.reset();
    const emu::Checkpoint reset_cp = emu.save_checkpoint();
    InjectionRunner runner(model, emu, reset_cp, trace, golden, run_cfg,
                           ckpts.empty() ? nullptr : &ckpts);
    while (true) {
      const u32 k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= cfg.num_events) break;
      const u32 i = order[k];
      const RunResult rr = runner.run(
          strikes[i], wt != nullptr ? wt->phase_scratch() : nullptr);
      InjectionRecord rec;
      rec.fault = strikes[i];
      rec.outcome = rr.outcome;
      if (strikes[i].target == FaultTarget::Latch) {
        const auto& meta = model.registry().meta_of_ordinal(strikes[i].index);
        rec.unit = meta.unit;
        rec.type = meta.type;
      } else {
        rec.unit = model.arrays().locate(strikes[i].array_bit).array->unit();
      }
      rec.end_cycle = rr.end_cycle;
      rec.recoveries = rr.recoveries;
      if (wt != nullptr) {
        std::optional<Cycle> latency;
        if (rr.detected_cycle) latency = *rr.detected_cycle - strikes[i].cycle;
        wt->record_injection(i, rec, latency);
      }
      records[i] = rec;
    }
  };

  if (threads <= 1) {
    core::Pearl6Model model(cfg.core);
    model.load_workload(tc.program, tc.init);
    emu::Emulator emu(model);
    work(model, emu, 0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (u32 t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        core::Pearl6Model model(cfg.core);
        model.load_workload(tc.program, tc.init);
        emu::Emulator emu(model);
        work(model, emu, t);
      });
    }
    for (auto& th : pool) th.join();
  }

  BeamResult result;
  result.records = std::move(records);
  result.latch_events = latch_events;
  result.array_events = array_events;
  result.agg = inject::aggregate_records(result.records);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (tel != nullptr) {
    tel->campaign_finish(result.agg, result.records.size(),
                         result.wall_seconds);
  }
  return result;
}

}  // namespace sfi::beam
