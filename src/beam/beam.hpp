// Proton-beam experiment simulator (the paper's §2.2 calibration baseline).
//
// The physical beam upsets storage cells uncontrollably: strikes arrive as a
// Poisson process in time and land uniformly over *all* storage — latches
// and protected SRAM arrays alike, weighted by per-bit cross-section. Each
// observed upset event is simulated as one run (conditional on one strike,
// its arrival time is uniform over the exposure window). Observability is
// beam-like: only the machine's own RAS reporting and the end-of-test AVP
// compare — no golden-trace shortcuts, no knowledge of which bit flipped.
#pragma once

#include <vector>

#include "sfi/campaign.hpp"

namespace sfi::beam {

struct BeamConfig {
  u64 seed = 1234;
  u32 num_events = 1000;   ///< observed upset events to simulate
  u32 threads = 0;
  /// Relative per-bit sensitivities (device cross-sections). SRAM cells are
  /// typically somewhat more sensitive than hardened latches.
  double latch_cross_section = 1.0;
  double array_cross_section = 1.0;
  /// Interval checkpointing of the reference run (shared with campaigns —
  /// emu::kCkptAuto tunes the interval, 0 disables). Beam outcomes are
  /// unaffected; only the replay-to-strike-cycle cost changes.
  Cycle ckpt_interval = emu::kCkptAuto;
  u64 ckpt_memory_budget = 64ull << 20;
  inject::RunConfig run;
  core::CoreConfig core;
  /// Optional observability sink (non-owning; must outlive the run).
  /// Read-only with respect to results, exactly as for campaigns.
  inject::CampaignTelemetry* telemetry = nullptr;
};

struct BeamResult {
  /// Outcome histogram plus breakdowns, built through the shared
  /// aggregation helper (sfi/aggregate.hpp) like campaign results.
  inject::CampaignAggregate agg;
  u64 latch_events = 0;
  u64 array_events = 0;
  std::vector<inject::InjectionRecord> records;
  double wall_seconds = 0.0;

  [[nodiscard]] const inject::OutcomeCounts& counts() const {
    return agg.counts;
  }
};

/// Simulate a beam exposure of `testcase` under `config`.
[[nodiscard]] BeamResult run_beam_experiment(const avp::Testcase& testcase,
                                             const BeamConfig& config);

}  // namespace sfi::beam
