// Chrome-trace exporter: renders the scheduler's worker×shard timeline plus
// per-injection phase slices as the Trace Event JSON format that
// chrome://tracing, Perfetto and speedscope all load.
//
// Model: one TraceCollector per campaign, one Track per worker thread
// (plus one for the orchestrating thread). A track is single-writer — the
// owning worker appends "complete" slices (ph:"X") and instants (ph:"i")
// with timestamps from the collector's shared steady-clock epoch, so the
// merged file needs no cross-thread clock reconciliation and no locks on
// the recording path.
//
// write() emits {"traceEvents":[...],"displayTimeUnit":"ms"} with process/
// thread-name metadata records, one tid per track.
#pragma once

#include <chrono>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace sfi::telemetry {

class TraceCollector;

class TraceTrack {
 public:
  /// A completed slice [ts_us, ts_us + dur_us]. `args_json`, when non-empty,
  /// must be a rendered JSON object ("{...}") and is spliced verbatim.
  void slice(std::string_view name, std::string_view category, u64 ts_us,
             u64 dur_us, std::string args_json = {});
  /// A zero-duration marker.
  void instant(std::string_view name, std::string_view category, u64 ts_us,
               std::string args_json = {});

  [[nodiscard]] std::size_t events() const { return events_.size(); }

 private:
  friend class TraceCollector;

  struct Ev {
    std::string name;
    std::string cat;
    u64 ts_us = 0;
    u64 dur_us = 0;
    char ph = 'X';
    std::string args;  ///< pre-rendered JSON object or empty
  };

  std::string name_;
  u32 tid_ = 0;
  std::vector<Ev> events_;
};

class TraceCollector {
 public:
  explicit TraceCollector(std::string process_name = "sfi");
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Register a named track (call before its owning thread starts; the
  /// returned reference is stable for the collector's lifetime).
  TraceTrack& add_track(std::string name);

  /// Microseconds since the collector was created (shared steady epoch).
  [[nodiscard]] u64 now_us() const;

  [[nodiscard]] std::size_t tracks() const { return tracks_.size(); }

  /// The whole timeline as a Trace Event JSON document.
  [[nodiscard]] std::string to_json() const;
  /// Write to_json() to `path`; throws std::runtime_error when unwritable.
  void write(const std::string& path) const;

 private:
  std::string process_name_;
  std::chrono::steady_clock::time_point epoch_;
  std::deque<TraceTrack> tracks_;  ///< deque: stable references
};

}  // namespace sfi::telemetry
