// Cross-process span plane: the distributed complement of chrome_trace.
//
// The PR 3 TraceCollector sees one process — its tracks share a steady
// epoch, so a single-process file needs no clock story. A farm campaign is
// many processes on (potentially) many hosts, and the interesting time goes
// *between* them: dispatch-to-first-heartbeat, retry backoff, a straggler
// shard. The span plane records those as SpanRecords, durably, in the same
// store the results travel through ('S' frames, store/codec.hpp), and a
// stitcher reassembles the fleet's timeline after the fact.
//
// Clock reconciliation without coordination: every SpanBook captures one
// (wall, steady) pair at construction and stamps spans with
// wall_epoch + steady_elapsed. Timestamps are therefore monotonic within a
// process but expressed on the shared wall clock, so the stitcher can
// overlay processes (and hosts, to NTP accuracy) by doing nothing at all.
//
// Like every other telemetry surface the plane is strictly read-only:
// spans observe, never steer, and the canonical merge drops 'S' frames, so
// store bytes are identical plane-on vs plane-off (the ablation gates it).
#pragma once

#include <array>
#include <chrono>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace sfi::telemetry {

/// One span, self-describing enough to survive alone in a shard store:
/// it names its process (row) and carries wall-anchored timestamps, so a
/// stitcher needs no side tables.
struct SpanRecord {
  u64 trace_id = 0;   ///< campaign-scoped trace (propagated daemon→worker)
  u64 span_id = 0;    ///< unique within the trace (pid folded into the id)
  u64 parent_id = 0;  ///< 0 = root
  u64 pid = 0;        ///< OS process id: one trace process row per pid
  u32 tid = 0;        ///< track within the process row
  char ph = 'X';      ///< 'X' complete slice | 'i' instant
  u64 ts_us = 0;      ///< wall-anchored microseconds (unix epoch)
  u64 dur_us = 0;     ///< slice duration ('i': 0)
  std::string process;   ///< process row label, e.g. "sfi worker 3"
  std::string name;
  std::string cat;
  std::string args_json;  ///< pre-rendered JSON object ("{...}") or empty
};

/// Per-process span recorder. Thread-safe (one mutex; spans are emitted at
/// flush-grade rates, not per-cycle). now_us() is the book's wall-anchored
/// clock — use it for slice start stamps so starts and ends share the
/// anchor.
class SpanBook {
 public:
  explicit SpanBook(std::string process_name);

  /// Wall-anchored now: wall epoch at construction + steady elapsed.
  [[nodiscard]] u64 now_us() const;
  /// The wall anchor itself (construction instant) — the natural start
  /// stamp for spans that began with the process, e.g. admission wait.
  [[nodiscard]] u64 wall_epoch_us() const { return wall_epoch_us_; }

  void set_trace_id(u64 id);
  [[nodiscard]] u64 trace_id() const;
  void set_process_name(std::string name);
  [[nodiscard]] u64 pid() const { return pid_; }

  /// Record a completed slice [ts_us, ts_us + dur_us]; returns its span id
  /// (use as `parent` of children; pass parent 0 for roots).
  u64 slice(std::string_view name, std::string_view cat, u64 ts_us,
            u64 dur_us, u64 parent = 0, std::string args_json = {},
            u32 tid = 0);
  /// Record a zero-duration marker; returns its span id.
  u64 instant(std::string_view name, std::string_view cat, u64 ts_us,
              u64 parent = 0, std::string args_json = {}, u32 tid = 0);

  /// Move the recorded spans out (the store-flush drain path).
  [[nodiscard]] std::vector<SpanRecord> drain();
  /// Copy without draining (the /trace live view).
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;
  [[nodiscard]] std::size_t size() const;

 private:
  u64 push(std::string_view name, std::string_view cat, char ph, u64 ts_us,
           u64 dur_us, u64 parent, std::string args_json, u32 tid);

  mutable std::mutex mu_;
  std::string process_;
  u64 pid_ = 0;
  u64 trace_id_ = 0;
  u64 next_span_ = 0;  ///< seeded from pid so ids are fleet-unique
  u64 wall_epoch_us_ = 0;
  std::chrono::steady_clock::time_point steady_epoch_;
  std::vector<SpanRecord> spans_;
};

/// Tail-latency exemplar policy: which injections earn full phase slices.
//
// Recording every injection's five phase slices would blow the 5% budget
// on serialization alone, and uniform sampling is exactly wrong for the
// question traces answer ("why was *that* one slow?"). So: maintain a
// moving log2-bucket histogram of injection wall times; an injection
// slower than the current p99 is always recorded and tagged an exemplar
// (with its record id, so `sfi explain` cross-references it); the rest are
// sampled 1-in-N. The histogram decays by halving periodically, so the
// threshold tracks the workload's present, not its history. Deterministic:
// decisions depend only on the sequence of durations, never on wall time.
class TailExemplarPolicy {
 public:
  struct Decision {
    bool record = false;    ///< emit full phase slices for this injection
    bool exemplar = false;  ///< recorded because it exceeded the p99
  };

  explicit TailExemplarPolicy(u32 sample_every = 16, u32 warmup = 64);

  /// Observe one injection's wall time and decide whether to record it.
  Decision note(u64 dur_us);

  /// Current p99 threshold (u64 max until warmed up).
  [[nodiscard]] u64 threshold_us() const { return threshold_us_; }
  [[nodiscard]] u64 noted() const { return seq_; }
  [[nodiscard]] u64 exemplars() const { return exemplars_; }

 private:
  static constexpr std::size_t kBuckets = 64;  ///< log2(dur_us) buckets
  static constexpr u32 kRecomputeEvery = 64;
  static constexpr u64 kDecayEvery = 4096;  ///< halve counts this often

  void recompute();

  std::array<u64, kBuckets> counts_{};
  u64 total_ = 0;       ///< histogram mass (decays)
  u64 seq_ = 0;         ///< injections noted (never decays)
  u64 exemplars_ = 0;
  u32 sample_every_;
  u32 warmup_;
  u64 threshold_us_ = ~0ull;
};

/// Render spans as a Trace Event JSON document ({"traceEvents":[...]}) —
/// one process row per distinct pid (process_name metadata from the first
/// span carrying that pid), timestamps normalized to the earliest span so
/// the file opens at t=0 in Perfetto / chrome://tracing.
[[nodiscard]] std::string spans_to_chrome_json(
    const std::vector<SpanRecord>& spans);

}  // namespace sfi::telemetry
