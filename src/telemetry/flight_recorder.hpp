// Crash flight recorder: a fixed-size in-memory ring of recent telemetry
// event lines, flushed to a postmortem file when something dies.
//
// A farm worker SIGKILLed by the watchdog, a daemon taken down by a bad
// deploy, a strikeout after three crashes — the JSONL event log (when one
// is even attached) ends mid-stream with none of the context that explains
// the last seconds. The recorder keeps the tail of the event stream in
// preallocated memory:
//
//   * note() claims a slot with one relaxed fetch_add and memcpy's the line
//     — no allocation, no locks, bounded work — so it can sit on the event
//     emission path permanently;
//   * the ring overwrites oldest-first; capacity bounds memory, not
//     runtime;
//   * dump() writes the surviving lines oldest-first to a file. dump_fd()
//     is async-signal-safe (write(2) only), and arm_signals() installs
//     fatal-signal handlers (SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT) that
//     dump the global recorder before re-raising, so even an abort leaves
//     a readable trace.
//
// The recorder never feeds anything back into the campaign: it is a copy
// of lines that were (or would have been) emitted anyway, so enabling it
// cannot change records or stores.
//
// Concurrency: note() is safe from any thread. A dump that races a wrapping
// writer can catch a slot mid-overwrite; slots publish their length last
// (release) and dump() revalidates it (acquire), so a torn slot is skipped
// rather than emitted garbled — acceptable for a postmortem artifact.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace sfi::telemetry {

class FlightRecorder {
 public:
  /// Longest line a slot holds; longer lines are truncated, not dropped.
  static constexpr std::size_t kLineBytes = 480;

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder that EventLog tees into and fatal-signal
  /// handlers dump. Starts disabled (note() is one relaxed load + branch).
  static FlightRecorder& global();

  /// Allocate the ring. First call wins; later calls are no-ops (the ring
  /// must never move once signal handlers may read it).
  void enable(std::size_t slots);
  [[nodiscard]] bool enabled() const {
    return slots_.load(std::memory_order_acquire) != nullptr;
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Lines ever noted (>= capacity ⇒ the ring has wrapped).
  [[nodiscard]] u64 noted() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Record one line (no trailing newline). No-op while disabled.
  void note(std::string_view line);

  /// Copy the live ring, oldest line first (empty if disabled). The
  /// non-signal-path sibling of dump(): the farm supervisor converts the
  /// tail into trace instants when a worker dies, so the stitched trace
  /// shows what the fleet was doing around the fatality.
  [[nodiscard]] std::vector<std::string> snapshot() const;

  /// Write the live ring, oldest line first, one per line, to `path`
  /// (created/truncated). Returns lines written; 0 if disabled.
  std::size_t dump(const std::string& path) const;

  /// Async-signal-safe dump to an already-open fd.
  void dump_fd(int fd) const;

  /// Install fatal-signal handlers that dump the *global* recorder to
  /// `path` and then re-raise with the default disposition. Call once,
  /// after global().enable().
  static void arm_signals(const std::string& path);

 private:
  struct Slot {
    std::atomic<u32> len{0};  ///< 0 = empty / being written
    char text[kLineBytes];
  };

  std::atomic<Slot*> slots_{nullptr};
  std::size_t capacity_ = 0;
  std::atomic<u64> head_{0};
};

}  // namespace sfi::telemetry
