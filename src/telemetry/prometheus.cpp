#include "telemetry/prometheus.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace sfi::telemetry {

namespace {

bool legal_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "sfi_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    out.push_back(legal_name_char(c) ? c : '_');
  }
  return out;
}

std::string prometheus_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string prometheus_unescape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '\\' || i + 1 == value.size()) {
      out.push_back(value[i]);
      continue;
    }
    const char next = value[++i];
    switch (next) {
      case '\\':
        out.push_back('\\');
        break;
      case '"':
        out.push_back('"');
        break;
      case 'n':
        out.push_back('\n');
        break;
      default:
        // Prometheus's parser passes unknown escapes through verbatim.
        out.push_back('\\');
        out.push_back(next);
    }
  }
  return out;
}

std::string prometheus_number(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  // Integral values (the common case: counters, bucket counts) render
  // exactly; 2^53 bounds where double still holds every integer.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  // Shortest representation that parses back to the same double.
  char buf[40];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

PrometheusWriter::Family& PrometheusWriter::family(std::string name,
                                                   std::string_view type) {
  auto [it, inserted] = families_.try_emplace(std::move(name));
  if (inserted) {
    it->second.type = std::string(type);
    order_.push_back(it->first);
  }
  return it->second;
}

void PrometheusWriter::sample(Family& fam, std::string_view name,
                              std::span<const PromLabel> labels,
                              std::string_view extra_label,
                              std::string_view extra_value, double value) {
  std::string line(name);
  if (!labels.empty() || !extra_label.empty()) {
    line.push_back('{');
    bool first = true;
    for (const PromLabel& l : labels) {
      if (!first) line.push_back(',');
      first = false;
      line += l.name;
      line += "=\"";
      line += prometheus_escape(l.value);
      line.push_back('"');
    }
    if (!extra_label.empty()) {
      if (!first) line.push_back(',');
      line += extra_label;
      line += "=\"";
      line += extra_value;  // le bounds / quantiles: never need escaping
      line.push_back('"');
    }
    line.push_back('}');
  }
  line.push_back(' ');
  line += prometheus_number(value);
  fam.samples.push_back(std::move(line));
}

void PrometheusWriter::add_counter(std::string_view raw_name,
                                   std::span<const PromLabel> labels,
                                   double value) {
  const std::string name = prometheus_name(raw_name);
  Family& fam = family(name, "counter");
  sample(fam, name, labels, {}, {}, value);
}

void PrometheusWriter::add_gauge(std::string_view raw_name,
                                 std::span<const PromLabel> labels,
                                 double value) {
  const std::string name = prometheus_name(raw_name);
  Family& fam = family(name, "gauge");
  sample(fam, name, labels, {}, {}, value);
}

void PrometheusWriter::add_histogram(std::string_view raw_name,
                                     std::span<const PromLabel> labels,
                                     const MetricsSnapshot::Hist& hist) {
  const std::string name = prometheus_name(raw_name);
  Family& fam = family(name, "histogram");
  u64 cumulative = 0;
  for (std::size_t b = 0; b < hist.bounds.size(); ++b) {
    cumulative += b < hist.buckets.size() ? hist.buckets[b] : 0;
    sample(fam, name + "_bucket", labels, "le",
           prometheus_number(hist.bounds[b]),
           static_cast<double>(cumulative));
  }
  sample(fam, name + "_bucket", labels, "le", "+Inf",
         static_cast<double>(hist.count));
  sample(fam, name + "_sum", labels, {}, {}, hist.sum);
  sample(fam, name + "_count", labels, {}, {},
         static_cast<double>(hist.count));
}

void PrometheusWriter::add_snapshot(const MetricsSnapshot& snapshot,
                                    std::span<const PromLabel> labels,
                                    bool quantiles) {
  for (const auto& [name, value] : snapshot.counters) {
    add_counter(name, labels, static_cast<double>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    add_gauge(name, labels, value);
  }
  for (const MetricsSnapshot::Hist& hist : snapshot.histograms) {
    add_histogram(hist.name, labels, hist);
    if (quantiles && hist.count > 0) {
      add_gauge(hist.name + "_p50", labels, hist.quantile(0.50));
      add_gauge(hist.name + "_p95", labels, hist.quantile(0.95));
      add_gauge(hist.name + "_p99", labels, hist.quantile(0.99));
    }
  }
}

std::string PrometheusWriter::str() const {
  std::string out;
  for (const std::string& name : order_) {
    const Family& fam = families_.at(name);
    out += "# TYPE ";
    out += name;
    out.push_back(' ');
    out += fam.type;
    out.push_back('\n');
    for (const std::string& s : fam.samples) {
      out += s;
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace sfi::telemetry
