#include "telemetry/chrome_trace.hpp"

#include <fstream>
#include <stdexcept>

#include "telemetry/json.hpp"

namespace sfi::telemetry {

void TraceTrack::slice(std::string_view name, std::string_view category,
                       u64 ts_us, u64 dur_us, std::string args_json) {
  Ev e;
  e.name = std::string(name);
  e.cat = std::string(category);
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.ph = 'X';
  e.args = std::move(args_json);
  events_.push_back(std::move(e));
}

void TraceTrack::instant(std::string_view name, std::string_view category,
                         u64 ts_us, std::string args_json) {
  Ev e;
  e.name = std::string(name);
  e.cat = std::string(category);
  e.ts_us = ts_us;
  e.ph = 'i';
  e.args = std::move(args_json);
  events_.push_back(std::move(e));
}

TraceCollector::TraceCollector(std::string process_name)
    : process_name_(std::move(process_name)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceTrack& TraceCollector::add_track(std::string name) {
  TraceTrack t;
  t.name_ = std::move(name);
  t.tid_ = static_cast<u32>(tracks_.size());
  tracks_.push_back(std::move(t));
  return tracks_.back();
}

u64 TraceCollector::now_us() const {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - epoch_)
                              .count());
}

std::string TraceCollector::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();

  // Metadata: process name plus one thread-name record per track.
  w.begin_object()
      .field("ph", "M")
      .field("pid", u64{0})
      .field("tid", u64{0})
      .field("name", "process_name")
      .key("args")
      .begin_object()
      .field("name", process_name_)
      .end_object()
      .end_object();
  for (const TraceTrack& t : tracks_) {
    w.begin_object()
        .field("ph", "M")
        .field("pid", u64{0})
        .field("tid", u64{t.tid_})
        .field("name", "thread_name")
        .key("args")
        .begin_object()
        .field("name", t.name_)
        .end_object()
        .end_object();
  }

  for (const TraceTrack& t : tracks_) {
    for (const TraceTrack::Ev& e : t.events_) {
      w.begin_object()
          .field("ph", std::string_view(&e.ph, 1))
          .field("pid", u64{0})
          .field("tid", u64{t.tid_})
          .field("name", e.name)
          .field("cat", e.cat)
          .field("ts", e.ts_us);
      if (e.ph == 'X') w.field("dur", e.dur_us);
      if (e.ph == 'i') w.field("s", "t");  // instant scope: thread
      if (!e.args.empty()) w.key("args").raw(e.args);
      w.end_object();
    }
  }

  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

void TraceCollector::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open chrome trace output " + path);
  }
  const std::string json = to_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
}

}  // namespace sfi::telemetry
