// Prometheus text exposition (format 0.0.4) for MetricsSnapshot.
//
// The daemon's /metrics endpoint renders one snapshot per campaign plus the
// fleet totals; every series carries the caller's labels (campaign, tenant,
// engine). Two rules this module is the single owner of:
//
//   * metric names: registry names use dots ("farm.worker_crashes"); the
//     exposition name is the sanitized form prefixed "sfi_"
//     ("sfi_farm_worker_crashes"). Sanitization is pure and total, so any
//     registry name yields a legal exposition name.
//   * label values: quotes, backslashes and newlines are escaped exactly as
//     the exposition format demands — and, by construction, so that
//     prometheus_unescape(prometheus_escape(s)) == s for every string. The
//     JSONL side (telemetry/json.hpp) holds the same round-trip through its
//     own escaping; tests/test_serve.cpp fuzzes both against each other so a
//     tenant name can never render differently in /metrics and the event
//     log.
//
// Series for one metric family must form a contiguous block, so the writer
// accumulates and groups by family; interleave calls freely and read str()
// once at the end.
#pragma once

#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.hpp"

namespace sfi::telemetry {

struct PromLabel {
  std::string name;
  std::string value;
};

/// Sanitized exposition name: "sfi_" + name with every character outside
/// [a-zA-Z0-9_:] replaced by '_' (dots become underscores).
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// Escape a label value per the exposition format: backslash, double quote
/// and newline become \\, \" and \n. Total and injective.
[[nodiscard]] std::string prometheus_escape(std::string_view value);

/// Inverse of prometheus_escape (unknown escapes pass the character
/// through, matching Prometheus's own parser).
[[nodiscard]] std::string prometheus_unescape(std::string_view value);

/// Shortest-round-trip exposition number: integers render without exponent
/// or trailing zeros, everything else with enough digits to parse back
/// exactly. Used for sample values and `le` bounds alike.
[[nodiscard]] std::string prometheus_number(double v);

class PrometheusWriter {
 public:
  /// One sample of a counter/gauge family `raw_name` (registry spelling;
  /// sanitization happens here). Repeated calls with different labels add
  /// series to the same family block.
  void add_counter(std::string_view raw_name,
                   std::span<const PromLabel> labels, double value);
  void add_gauge(std::string_view raw_name, std::span<const PromLabel> labels,
                 double value);

  /// One histogram series set: cumulative _bucket{le=...} lines (plus
  /// le="+Inf"), _sum and _count.
  void add_histogram(std::string_view raw_name,
                     std::span<const PromLabel> labels,
                     const MetricsSnapshot::Hist& hist);

  /// Render every instrument of a snapshot under `labels`. With
  /// `quantiles` true each histogram also contributes p50/p95/p99 gauges
  /// (`<name>_p50` etc.) estimated by histogram_quantile().
  void add_snapshot(const MetricsSnapshot& snapshot,
                    std::span<const PromLabel> labels, bool quantiles = true);

  /// The full exposition text: families in first-insertion order, each as
  /// one `# TYPE` line followed by its samples.
  [[nodiscard]] std::string str() const;

 private:
  struct Family {
    std::string type;  ///< "counter" | "gauge" | "histogram"
    std::vector<std::string> samples;
  };

  Family& family(std::string name, std::string_view type);
  void sample(Family& fam, std::string_view name,
              std::span<const PromLabel> labels, std::string_view extra_label,
              std::string_view extra_value, double value);

  std::vector<std::string> order_;
  std::map<std::string, Family> families_;
};

}  // namespace sfi::telemetry
