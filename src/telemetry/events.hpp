// Structured JSONL event log: one self-describing JSON object per line,
// append-only, safe to write from any thread.
//
// The log is the campaign's flight recorder (CHAOS-style, arXiv:2602.02119):
// campaign start/finish, shard dispatch/complete, sampled per-injection
// records, checkpoint save/restore. Each line carries an "ev" kind and a
// monotonic "t_us" timestamp so offline tools can reconstruct the timeline
// without parsing anything but line-delimited JSON.
//
// Writers format their line locally (JsonWriter, no lock held), then emit()
// takes one mutex for the append — the log is never on the per-cycle hot
// path, only on per-injection / per-shard boundaries, and is sampled on top
// of that.
#pragma once

#include <fstream>
#include <mutex>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace sfi::telemetry {

class EventLog {
 public:
  EventLog() = default;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Open (truncate) `path`. Throws std::runtime_error when unwritable.
  void open(const std::string& path);
  [[nodiscard]] bool is_open() const { return out_.is_open(); }

  /// Append one pre-rendered JSON object as a line. Thread-safe.
  void emit(std::string_view json_object);

  [[nodiscard]] u64 emitted() const;

  void flush();

 private:
  mutable std::mutex mu_;
  std::ofstream out_;
  u64 emitted_ = 0;
};

}  // namespace sfi::telemetry
