// Metrics registry: named counters, gauges and fixed-bucket histograms with
// per-worker sharded accumulation.
//
// The hot path of a campaign is a worker thread classifying thousands of
// injections per second; instrumentation must not serialize it. The split:
//
//   * the MetricsRegistry owns the *definitions* (names, bucket bounds) and
//     the merged totals. Registration happens once, single-threaded, before
//     any worker starts;
//   * each worker owns a MetricsShard — plain vectors of u64/double slots,
//     no atomics, no locks — and increments into it;
//   * shards are folded into the registry under one mutex at flush/finish
//     (merge() zeroes the shard, so folding is idempotent to repeat).
//
// With telemetry disabled nothing is allocated and the instrumented code
// branches on a null pointer — the cost is one predicted branch.
#pragma once

#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace sfi::telemetry {

struct CounterId {
  u32 index = 0;
};
struct GaugeId {
  u32 index = 0;
};
struct HistogramId {
  u32 index = 0;
};

/// Roughly-exponential histogram bounds: `per_decade` bucket upper bounds
/// per power of ten, spanning [lo, hi]. Suitable for wall-time (seconds)
/// and latency (cycles) distributions whose range spans decades.
[[nodiscard]] std::vector<double> exp_buckets(double lo, double hi,
                                              u32 per_decade = 3);

class MetricsRegistry;

/// Estimate the q-quantile (q in [0, 1]) of a bucketed histogram by linear
/// interpolation inside the bucket holding the target rank, Prometheus
/// `histogram_quantile` style: the first bucket interpolates from 0, the
/// overflow bucket clamps to the last finite bound (an exp-bucket histogram
/// has no upper edge to interpolate toward). Returns 0 for an empty
/// histogram. `buckets` has bounds.size() + 1 entries (last = overflow).
[[nodiscard]] double histogram_quantile(const std::vector<double>& bounds,
                                        const std::vector<u64>& buckets,
                                        double q);

/// A point-in-time copy of a registry's instruments, detached from ids and
/// shards so it can cross process boundaries (farm workers serialize one per
/// reporting interval; the coordinator folds them into a fleet view).
/// Everything is keyed by name: two snapshots from registries with the same
/// registration set merge instrument-for-instrument, and snapshots from
/// *different* registrations still merge by name union.
struct MetricsSnapshot {
  struct Hist {
    std::string name;
    std::vector<double> bounds;
    std::vector<u64> buckets;  ///< bounds.size() + 1 (last = overflow)
    u64 count = 0;
    double sum = 0.0;

    [[nodiscard]] double quantile(double q) const {
      return histogram_quantile(bounds, buckets, q);
    }
  };

  std::vector<std::pair<std::string, u64>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<Hist> histograms;

  /// Fold `other` into this snapshot: counters and histogram buckets add,
  /// gauges take `other`'s value (last write wins — gauges are levels, not
  /// rates). Instruments missing on either side are unioned in. Histograms
  /// with mismatched bounds keep this snapshot's buckets untouched and only
  /// fold count/sum (cross-version workers; should not happen in practice).
  void merge_from(const MetricsSnapshot& other);

  [[nodiscard]] u64 counter_value(std::string_view name) const;
  [[nodiscard]] double gauge_value(std::string_view name) const;
  [[nodiscard]] const Hist* histogram(std::string_view name) const;
};

/// One worker's private accumulation slots. Not thread-safe by design —
/// exactly one thread writes a shard, and the owning registry folds it in
/// under its own lock. Create via MetricsRegistry::make_shard() after all
/// metrics are registered.
class MetricsShard {
 public:
  MetricsShard() = default;

  void add(CounterId c, u64 delta = 1) { counters_[c.index] += delta; }
  /// Record one observation: O(log buckets) bound search, two adds.
  void observe(HistogramId h, double value);

  [[nodiscard]] u64 counter(CounterId c) const { return counters_[c.index]; }

 private:
  friend class MetricsRegistry;

  struct Hist {
    std::vector<u64> buckets;  ///< bounds.size() + 1 (last = overflow)
    u64 count = 0;
    double sum = 0.0;
  };

  const MetricsRegistry* reg_ = nullptr;  ///< bucket bounds (immutable)
  std::vector<u64> counters_;
  std::vector<Hist> hists_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- registration (single-threaded, before make_shard) ---
  CounterId counter(std::string name);
  GaugeId gauge(std::string name);
  /// `bounds` are ascending bucket upper bounds; an overflow bucket is
  /// implicit. Observations land in the first bucket whose bound >= value.
  HistogramId histogram(std::string name, std::vector<double> bounds);

  /// A shard sized to everything registered so far. The registry must
  /// outlive and not register further metrics once shards exist.
  [[nodiscard]] MetricsShard make_shard() const;

  // --- accumulation ---
  /// Fold a worker shard into the merged totals and zero it (safe to call
  /// again; a zeroed shard merges as a no-op). Thread-safe.
  void merge(MetricsShard& shard);
  /// Direct (locked) accumulation for low-rate, non-worker call sites.
  void add(CounterId c, u64 delta = 1);
  void observe(HistogramId h, double value);
  void set_gauge(GaugeId g, double value);

  // --- read-out ---
  [[nodiscard]] u64 counter_value(CounterId c) const;
  /// Read a counter by registered name (0 if unknown) — for tests and
  /// loosely coupled consumers that don't hold the id.
  [[nodiscard]] u64 counter_value_by_name(std::string_view name) const;
  [[nodiscard]] double gauge_value(GaugeId g) const;
  [[nodiscard]] u64 histogram_count(HistogramId h) const;
  [[nodiscard]] double histogram_sum(HistogramId h) const;
  [[nodiscard]] std::vector<u64> histogram_buckets(HistogramId h) const;
  [[nodiscard]] const std::vector<double>& histogram_bounds(
      HistogramId h) const {
    return hist_defs_[h.index].bounds;
  }

  /// The whole registry as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{bounds,buckets,
  /// count,sum}}} in registration order (stable across runs).
  [[nodiscard]] std::string to_json() const;

  /// Copy every instrument's current merged value (registration order,
  /// stable across runs). Takes the registry lock once; worker shards that
  /// have not been folded yet are not included.
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  friend class MetricsShard;

  struct HistDef {
    std::string name;
    std::vector<double> bounds;
  };

  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<HistDef> hist_defs_;

  mutable std::mutex mu_;
  std::vector<u64> counters_;
  std::vector<double> gauges_;
  std::vector<MetricsShard::Hist> hists_;
};

}  // namespace sfi::telemetry
