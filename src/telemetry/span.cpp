#include "telemetry/span.hpp"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <map>
#include <utility>

#include "telemetry/json.hpp"

namespace sfi::telemetry {

SpanBook::SpanBook(std::string process_name)
    : process_(std::move(process_name)),
      pid_(static_cast<u64>(::getpid())),
      steady_epoch_(std::chrono::steady_clock::now()) {
  // One (wall, steady) pair, captured together: every timestamp this book
  // ever emits is wall_epoch + steady_elapsed, so within the process time
  // is monotonic even if the wall clock steps underneath us.
  wall_epoch_us_ = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  // Fleet-unique span ids without coordination: fold the pid into the
  // counter's high bits (collisions would need 2^24 spans per process).
  next_span_ = (pid_ << 24) + 1;
}

u64 SpanBook::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - steady_epoch_;
  return wall_epoch_us_ +
         static_cast<u64>(
             std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                 .count());
}

void SpanBook::set_trace_id(u64 id) {
  std::lock_guard lock(mu_);
  trace_id_ = id;
}

u64 SpanBook::trace_id() const {
  std::lock_guard lock(mu_);
  return trace_id_;
}

void SpanBook::set_process_name(std::string name) {
  std::lock_guard lock(mu_);
  process_ = std::move(name);
}

u64 SpanBook::push(std::string_view name, std::string_view cat, char ph,
                   u64 ts_us, u64 dur_us, u64 parent, std::string args_json,
                   u32 tid) {
  std::lock_guard lock(mu_);
  SpanRecord s;
  s.trace_id = trace_id_;
  s.span_id = next_span_++;
  s.parent_id = parent;
  s.pid = pid_;
  s.tid = tid;
  s.ph = ph;
  s.ts_us = ts_us;
  s.dur_us = dur_us;
  s.process = process_;
  s.name = std::string(name);
  s.cat = std::string(cat);
  s.args_json = std::move(args_json);
  const u64 id = s.span_id;
  spans_.push_back(std::move(s));
  return id;
}

u64 SpanBook::slice(std::string_view name, std::string_view cat, u64 ts_us,
                    u64 dur_us, u64 parent, std::string args_json, u32 tid) {
  return push(name, cat, 'X', ts_us, dur_us, parent, std::move(args_json),
              tid);
}

u64 SpanBook::instant(std::string_view name, std::string_view cat, u64 ts_us,
                      u64 parent, std::string args_json, u32 tid) {
  return push(name, cat, 'i', ts_us, 0, parent, std::move(args_json), tid);
}

std::vector<SpanRecord> SpanBook::drain() {
  std::lock_guard lock(mu_);
  std::vector<SpanRecord> out;
  out.swap(spans_);
  return out;
}

std::vector<SpanRecord> SpanBook::snapshot() const {
  std::lock_guard lock(mu_);
  return spans_;
}

std::size_t SpanBook::size() const {
  std::lock_guard lock(mu_);
  return spans_.size();
}

// --- tail-latency exemplar policy ------------------------------------------

TailExemplarPolicy::TailExemplarPolicy(u32 sample_every, u32 warmup)
    : sample_every_(sample_every == 0 ? 1 : sample_every), warmup_(warmup) {}

void TailExemplarPolicy::recompute() {
  if (total_ == 0) {
    threshold_us_ = ~0ull;
    return;
  }
  // Find the bucket where the cumulative count crosses 99% and interpolate
  // the threshold inside it (bucket b holds durations with bit_width b,
  // i.e. [2^(b-1), 2^b)). A bucket-edge threshold would demand a 2x
  // outlier before anything counted as tail — on a workload whose
  // durations live in one or two log2 buckets that records no exemplars at
  // all, which is exactly the regime injections are in.
  const u64 target = total_ - total_ / 100;
  u64 cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (counts_[b] == 0) continue;
    cum += counts_[b];
    if (cum >= target) {
      if (b >= 63) {
        threshold_us_ = ~0ull;
        return;
      }
      const u64 lower = b == 0 ? 0 : u64{1} << (b - 1);
      const u64 upper = (u64{1} << b) - 1;
      const double below = static_cast<double>(cum - counts_[b]);
      const double frac = (static_cast<double>(target) - below) /
                          static_cast<double>(counts_[b]);
      threshold_us_ =
          lower + static_cast<u64>(frac * static_cast<double>(upper - lower));
      return;
    }
  }
  threshold_us_ = ~0ull;
}

TailExemplarPolicy::Decision TailExemplarPolicy::note(u64 dur_us) {
  Decision d;
  const bool warmed = seq_ >= warmup_;
  if (warmed && dur_us > threshold_us_) {
    d.record = true;
    d.exemplar = true;
    ++exemplars_;
  } else if (seq_ % sample_every_ == 0) {
    d.record = true;
  }
  const auto bucket =
      static_cast<std::size_t>(std::bit_width(dur_us));  // 0..64
  counts_[std::min(bucket, kBuckets - 1)] += 1;
  ++total_;
  ++seq_;
  if (seq_ % kRecomputeEvery == 0 || (warmed && threshold_us_ == ~0ull)) {
    recompute();
  }
  if (seq_ % kDecayEvery == 0) {
    // Halve the histogram so the threshold tracks the recent workload; the
    // next recompute sees half-weight history plus full-weight present.
    total_ = 0;
    for (auto& c : counts_) {
      c /= 2;
      total_ += c;
    }
  }
  return d;
}

// --- stitched rendering -----------------------------------------------------

std::string spans_to_chrome_json(const std::vector<SpanRecord>& spans) {
  u64 min_ts = ~0ull;
  for (const SpanRecord& s : spans) min_ts = std::min(min_ts, s.ts_us);
  if (spans.empty()) min_ts = 0;

  JsonWriter w;
  w.begin_object().key("traceEvents").begin_array();

  // One process_name metadata row per distinct pid (first span's label
  // wins), in first-seen order so worker rows come out dispatch-ordered.
  std::map<u64, const SpanRecord*> seen;
  for (const SpanRecord& s : spans) seen.try_emplace(s.pid, &s);
  for (const auto& [pid, first] : seen) {
    w.begin_object()
        .field("name", "process_name")
        .field("ph", "M")
        .field("pid", pid)
        .field("tid", u64{0})
        .key("args")
        .begin_object()
        .field("name", first->process)
        .end_object()
        .end_object();
  }

  for (const SpanRecord& s : spans) {
    w.begin_object()
        .field("name", s.name)
        .field("cat", s.cat.empty() ? std::string_view("span")
                                    : std::string_view(s.cat))
        .field("ph", std::string_view(&s.ph, 1))
        .field("ts", s.ts_us - min_ts)
        .field("pid", s.pid)
        .field("tid", s.tid);
    if (s.ph == 'X') w.field("dur", s.dur_us);
    if (s.ph == 'i') w.field("s", "t");
    w.key("args").begin_object();
    w.field("trace_id", s.trace_id).field("span_id", s.span_id);
    if (s.parent_id != 0) w.field("parent", s.parent_id);
    if (!s.args_json.empty()) {
      // args_json is a pre-rendered object; splice its fields.
      std::string_view inner(s.args_json);
      if (inner.size() >= 2 && inner.front() == '{' && inner.back() == '}') {
        inner = inner.substr(1, inner.size() - 2);
      }
      if (!inner.empty()) w.raw(std::string(inner));
    }
    w.end_object().end_object();
  }

  w.end_array().field("displayTimeUnit", "ms").end_object();
  return w.str();
}

}  // namespace sfi::telemetry
