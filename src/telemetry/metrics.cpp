#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "telemetry/json.hpp"

namespace sfi::telemetry {

std::vector<double> exp_buckets(double lo, double hi, u32 per_decade) {
  require(lo > 0.0 && hi > lo, "exp_buckets needs 0 < lo < hi");
  require(per_decade > 0, "exp_buckets needs >= 1 bucket per decade");
  const double step = std::pow(10.0, 1.0 / per_decade);
  std::vector<double> bounds;
  for (double b = lo; b < hi * (1.0 + 1e-12); b *= step) {
    bounds.push_back(b);
  }
  return bounds;
}

double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<u64>& buckets, double q) {
  u64 total = 0;
  for (const u64 c : buckets) total += c;
  if (total == 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, ceil): the same convention
  // Prometheus uses, so pinned values are comparable across stacks.
  const double rank = q * static_cast<double>(total);
  u64 below = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const u64 in_bucket = buckets[b];
    if (static_cast<double>(below + in_bucket) < rank) {
      below += in_bucket;
      continue;
    }
    if (b >= bounds.size()) return bounds.back();  // overflow: clamp
    const double hi = bounds[b];
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    if (in_bucket == 0) return hi;
    const double frac =
        (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * frac;
  }
  return bounds.back();
}

void MetricsSnapshot::merge_from(const MetricsSnapshot& other) {
  const auto find_counter = [this](std::string_view name) -> u64* {
    for (auto& [n, v] : counters) {
      if (n == name) return &v;
    }
    return nullptr;
  };
  for (const auto& [name, value] : other.counters) {
    if (u64* mine = find_counter(name)) {
      *mine += value;
    } else {
      counters.emplace_back(name, value);
    }
  }
  const auto find_gauge = [this](std::string_view name) -> double* {
    for (auto& [n, v] : gauges) {
      if (n == name) return &v;
    }
    return nullptr;
  };
  for (const auto& [name, value] : other.gauges) {
    if (double* mine = find_gauge(name)) {
      *mine = value;
    } else {
      gauges.emplace_back(name, value);
    }
  }
  const auto find_hist = [this](std::string_view name) -> Hist* {
    for (Hist& h : histograms) {
      if (h.name == name) return &h;
    }
    return nullptr;
  };
  for (const Hist& theirs : other.histograms) {
    Hist* mine = find_hist(theirs.name);
    if (mine == nullptr) {
      histograms.push_back(theirs);
      continue;
    }
    if (mine->bounds == theirs.bounds) {
      for (std::size_t b = 0; b < mine->buckets.size(); ++b) {
        mine->buckets[b] += theirs.buckets[b];
      }
    }
    mine->count += theirs.count;
    mine->sum += theirs.sum;
  }
}

u64 MetricsSnapshot::counter_value(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsSnapshot::gauge_value(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

const MetricsSnapshot::Hist* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const Hist& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

void MetricsShard::observe(HistogramId h, double value) {
  Hist& hist = hists_[h.index];
  const std::vector<double>& bounds = reg_->hist_defs_[h.index].bounds;
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  ++hist.buckets[static_cast<std::size_t>(it - bounds.begin())];
  ++hist.count;
  hist.sum += value;
}

CounterId MetricsRegistry::counter(std::string name) {
  const CounterId id{static_cast<u32>(counter_names_.size())};
  counter_names_.push_back(std::move(name));
  counters_.push_back(0);
  return id;
}

GaugeId MetricsRegistry::gauge(std::string name) {
  const GaugeId id{static_cast<u32>(gauge_names_.size())};
  gauge_names_.push_back(std::move(name));
  gauges_.push_back(0.0);
  return id;
}

HistogramId MetricsRegistry::histogram(std::string name,
                                       std::vector<double> bounds) {
  require(std::is_sorted(bounds.begin(), bounds.end()),
          "histogram bounds must be ascending");
  const HistogramId id{static_cast<u32>(hist_defs_.size())};
  MetricsShard::Hist h;
  h.buckets.assign(bounds.size() + 1, 0);
  hists_.push_back(std::move(h));
  hist_defs_.push_back({std::move(name), std::move(bounds)});
  return id;
}

MetricsShard MetricsRegistry::make_shard() const {
  MetricsShard s;
  s.reg_ = this;
  s.counters_.assign(counter_names_.size(), 0);
  s.hists_.reserve(hist_defs_.size());
  for (const HistDef& def : hist_defs_) {
    MetricsShard::Hist h;
    h.buckets.assign(def.bounds.size() + 1, 0);
    s.hists_.push_back(std::move(h));
  }
  return s;
}

void MetricsRegistry::merge(MetricsShard& shard) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < shard.counters_.size(); ++i) {
    counters_[i] += shard.counters_[i];
    shard.counters_[i] = 0;
  }
  for (std::size_t i = 0; i < shard.hists_.size(); ++i) {
    MetricsShard::Hist& from = shard.hists_[i];
    MetricsShard::Hist& to = hists_[i];
    for (std::size_t b = 0; b < from.buckets.size(); ++b) {
      to.buckets[b] += from.buckets[b];
      from.buckets[b] = 0;
    }
    to.count += from.count;
    to.sum += from.sum;
    from.count = 0;
    from.sum = 0.0;
  }
}

void MetricsRegistry::add(CounterId c, u64 delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_[c.index] += delta;
}

void MetricsRegistry::observe(HistogramId h, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsShard::Hist& hist = hists_[h.index];
  const std::vector<double>& bounds = hist_defs_[h.index].bounds;
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  ++hist.buckets[static_cast<std::size_t>(it - bounds.begin())];
  ++hist.count;
  hist.sum += value;
}

void MetricsRegistry::set_gauge(GaugeId g, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  gauges_[g.index] = value;
}

u64 MetricsRegistry::counter_value(CounterId c) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_[c.index];
}

u64 MetricsRegistry::counter_value_by_name(std::string_view name) const {
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) {
      const std::lock_guard<std::mutex> lock(mu_);
      return counters_[i];
    }
  }
  return 0;
}

double MetricsRegistry::gauge_value(GaugeId g) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return gauges_[g.index];
}

u64 MetricsRegistry::histogram_count(HistogramId h) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hists_[h.index].count;
}

double MetricsRegistry::histogram_sum(HistogramId h) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hists_[h.index].sum;
}

std::vector<u64> MetricsRegistry::histogram_buckets(HistogramId h) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hists_[h.index].buckets;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.counters.reserve(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    s.counters.emplace_back(counter_names_[i], counters_[i]);
  }
  s.gauges.reserve(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    s.gauges.emplace_back(gauge_names_[i], gauges_[i]);
  }
  s.histograms.reserve(hist_defs_.size());
  for (std::size_t i = 0; i < hist_defs_.size(); ++i) {
    MetricsSnapshot::Hist h;
    h.name = hist_defs_[i].name;
    h.bounds = hist_defs_[i].bounds;
    h.buckets = hists_[i].buckets;
    h.count = hists_[i].count;
    h.sum = hists_[i].sum;
    s.histograms.push_back(std::move(h));
  }
  return s;
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    w.field(counter_names_[i], counters_[i]);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    w.field(gauge_names_[i], gauges_[i]);
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (std::size_t i = 0; i < hist_defs_.size(); ++i) {
    w.key(hist_defs_[i].name).begin_object();
    w.key("bounds").begin_array();
    for (const double b : hist_defs_[i].bounds) w.value(b);
    w.end_array();
    w.key("buckets").begin_array();
    for (const u64 c : hists_[i].buckets) w.value(c);
    w.end_array();
    w.field("count", hists_[i].count);
    w.field("sum", hists_[i].sum);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace sfi::telemetry
