#include "telemetry/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace sfi::telemetry {

void json_escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

void json_number(std::string& out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

}  // namespace sfi::telemetry
