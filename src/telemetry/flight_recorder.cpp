#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace sfi::telemetry {

FlightRecorder& FlightRecorder::global() {
  // Leaked on purpose: signal handlers may dump it at any point of process
  // teardown, so it must never be destroyed.
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

void FlightRecorder::enable(std::size_t slots) {
  if (slots == 0 || enabled()) return;
  Slot* ring = new Slot[slots];  // zero-length slots: empty
  capacity_ = slots;
  slots_.store(ring, std::memory_order_release);
}

void FlightRecorder::note(std::string_view line) {
  Slot* ring = slots_.load(std::memory_order_acquire);
  if (ring == nullptr) return;
  const u64 seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring[seq % capacity_];
  const u32 n =
      static_cast<u32>(std::min(line.size(), kLineBytes));
  // Length is parked at 0 while the text is in flux so a concurrent dump
  // skips this slot instead of reading a mix of old and new bytes.
  slot.len.store(0, std::memory_order_relaxed);
  std::memcpy(slot.text, line.data(), n);
  slot.len.store(n, std::memory_order_release);
}

void FlightRecorder::dump_fd(int fd) const {
  const Slot* ring = slots_.load(std::memory_order_acquire);
  if (ring == nullptr) return;
  const u64 head = head_.load(std::memory_order_relaxed);
  const u64 begin = head > capacity_ ? head - capacity_ : 0;
  for (u64 seq = begin; seq < head; ++seq) {
    const Slot& slot = ring[seq % capacity_];
    const u32 n = slot.len.load(std::memory_order_acquire);
    if (n == 0 || n > kLineBytes) continue;  // empty or mid-overwrite
    ssize_t off = 0;
    while (off < static_cast<ssize_t>(n)) {
      const ssize_t w = ::write(fd, slot.text + off, n - off);
      if (w <= 0) return;
      off += w;
    }
    if (::write(fd, "\n", 1) != 1) return;
  }
}

std::vector<std::string> FlightRecorder::snapshot() const {
  std::vector<std::string> out;
  const Slot* ring = slots_.load(std::memory_order_acquire);
  if (ring == nullptr) return out;
  const u64 head = head_.load(std::memory_order_relaxed);
  const u64 begin = head > capacity_ ? head - capacity_ : 0;
  out.reserve(static_cast<std::size_t>(head - begin));
  for (u64 seq = begin; seq < head; ++seq) {
    const Slot& slot = ring[seq % capacity_];
    const u32 n = slot.len.load(std::memory_order_acquire);
    if (n == 0 || n > kLineBytes) continue;  // empty or mid-overwrite
    out.emplace_back(slot.text, n);
  }
  return out;
}

std::size_t FlightRecorder::dump(const std::string& path) const {
  const Slot* ring = slots_.load(std::memory_order_acquire);
  if (ring == nullptr) return 0;
  const int fd =
      ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return 0;
  dump_fd(fd);
  ::close(fd);
  const u64 head = head_.load(std::memory_order_relaxed);
  return static_cast<std::size_t>(head > capacity_ ? capacity_ : head);
}

namespace {

// Fixed storage the signal handler can reach without allocating.
char g_postmortem_path[4096] = {0};

void fatal_signal_handler(int signo) {
  if (g_postmortem_path[0] != '\0') {
    const int fd = ::open(g_postmortem_path,
                          O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
    if (fd >= 0) {
      FlightRecorder::global().dump_fd(fd);
      ::close(fd);
    }
  }
  // Re-raise with the default disposition so the exit status (and core
  // dump, where enabled) is what the signal would have produced anyway.
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

void FlightRecorder::arm_signals(const std::string& path) {
  std::strncpy(g_postmortem_path, path.c_str(),
               sizeof g_postmortem_path - 1);
  g_postmortem_path[sizeof g_postmortem_path - 1] = '\0';
  struct sigaction sa = {};
  sa.sa_handler = fatal_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  for (const int signo : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
    ::sigaction(signo, &sa, nullptr);
  }
}

}  // namespace sfi::telemetry
