#include "telemetry/events.hpp"

#include <stdexcept>

#include "telemetry/flight_recorder.hpp"

namespace sfi::telemetry {

void EventLog::open(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("cannot open event log " + path);
  }
}

void EventLog::emit(std::string_view json_object) {
  // Tee into the crash flight recorder (one relaxed load when disabled):
  // the ring sees every event line, even ones a crash keeps from the file.
  FlightRecorder::global().note(json_object);
  const std::lock_guard<std::mutex> lock(mu_);
  if (!out_.is_open()) return;
  out_.write(json_object.data(),
             static_cast<std::streamsize>(json_object.size()));
  out_.put('\n');
  ++emitted_;
}

u64 EventLog::emitted() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

void EventLog::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (out_.is_open()) out_.flush();
}

}  // namespace sfi::telemetry
