// Minimal JSON emission (no parsing, no DOM): the telemetry sinks — the
// JSONL event log, the metrics dump and the Chrome-trace exporter — all
// write machine-readable JSON, and all of it is append-only. A tiny
// streaming writer keeps them dependency-free and allocation-light (one
// growing string per line/file).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace sfi::telemetry {

/// Append `s` to `out` JSON-escaped (quotes, backslash, control chars).
void json_escape(std::string& out, std::string_view s);

/// Render a double the way JSON expects: shortest round-trip form, never
/// inf/nan (clamped to 0, JSON has no spelling for them).
void json_number(std::string& out, double v);

/// Streaming JSON writer. Usage:
///   JsonWriter w;
///   w.begin_object().field("ev", "injection").field("i", 42).end_object();
///   emit(w.str());
/// The writer inserts commas automatically; keys and values must alternate
/// correctly inside objects (unchecked — callers are trusted, this is an
/// internal emission helper, not a validator).
class JsonWriter {
 public:
  JsonWriter() { out_.reserve(256); }

  JsonWriter& begin_object() {
    comma();
    out_.push_back('{');
    stack_.push_back(true);
    return *this;
  }
  JsonWriter& end_object() {
    out_.push_back('}');
    stack_.pop_back();
    return *this;
  }
  JsonWriter& begin_array() {
    comma();
    out_.push_back('[');
    stack_.push_back(true);
    return *this;
  }
  JsonWriter& end_array() {
    out_.push_back(']');
    stack_.pop_back();
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    comma();
    out_.push_back('"');
    json_escape(out_, k);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    comma();
    out_.push_back('"');
    json_escape(out_, v);
    out_.push_back('"');
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(u64 v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(u32 v) { return value(static_cast<u64>(v)); }
  JsonWriter& value(i64 v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(double v) {
    comma();
    json_number(out_, v);
    return *this;
  }
  /// Verbatim splice of pre-rendered JSON (e.g. a nested object).
  JsonWriter& raw(std::string_view json) {
    comma();
    out_ += json;
    return *this;
  }

  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  void clear() {
    out_.clear();
    stack_.clear();
    pending_value_ = false;
  }

 private:
  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;  // value directly after its key
    }
    if (!stack_.empty()) {
      if (stack_.back()) {
        stack_.back() = false;  // first element of this scope
      } else {
        out_.push_back(',');
      }
    }
  }

  std::string out_;
  std::vector<bool> stack_;  ///< per open scope: "next element is the first"
  bool pending_value_ = false;
};

}  // namespace sfi::telemetry
