#include "serve/daemon.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include "avp/testgen.hpp"
#include "common/check.hpp"
#include "farm/farm.hpp"
#include "farm/process.hpp"
#include "sched/scheduler.hpp"
#include "sfi/engine.hpp"
#include "sfi/telemetry.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/json.hpp"
#include "telemetry/prometheus.hpp"

namespace sfi::serve {

namespace fs = std::filesystem;

std::string_view to_string(CampaignState s) {
  switch (s) {
    case CampaignState::Queued: return "queued";
    case CampaignState::Running: return "running";
    case CampaignState::Done: return "done";
  }
  return "unknown";
}

/// One tenant campaign tracked by the daemon. IO-thread-visible fields are
/// guarded by Daemon::mu_ except the atomics, which runner callbacks update
/// on the injection hot path.
struct Daemon::Campaign {
  u64 id = 0;
  CampaignSpec spec;
  std::string store_path;
  std::string manifest_path;

  CampaignState state = CampaignState::Queued;
  bool failed = false;
  std::string error;
  bool complete = false;
  u64 records = 0;     ///< final committed record count (set by finalize)
  u64 stop_point = 0;  ///< records at early stop (0 unless early_stop)

  std::atomic<bool> early_stop{false};
  std::atomic<u64> live_done{0};
  u64 committed = 0;       ///< monitor's committed count (mu_)
  double widest_hw = -1.0; ///< widest stratum half-width so far (mu_)

  std::vector<std::string> events;  ///< watch replay buffer (mu_)

  /// Campaign telemetry: the fleet metrics view /metrics exposes. Created
  /// with the campaign so a scrape never races runner startup; shared_ptr
  /// because metrics_text() snapshots it outside mu_.
  std::shared_ptr<inject::CampaignTelemetry> tel;
  std::vector<StratumInterval> strata;  ///< live early-stop intervals (mu_)

  std::thread runner;
  bool has_runner = false;
  std::atomic<bool> runner_finished{false};

  [[nodiscard]] bool farm() const { return spec.workers > 0; }
};

/// One client connection (request, watch stream, or HTTP scrape).
struct Daemon::Conn {
  int fd = -1;
  std::string inbuf;
  std::string outbuf;
  bool http = false;  ///< accepted on the HTTP listener (request/response)
  bool watcher = false;
  u64 watch_id = 0;
  std::size_t next_event = 0;
  bool close_after_flush = false;
  bool dead = false;
};

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Atomic manifest write: a crash never leaves a half-written manifest, so
/// adoption always sees either the old state or the new one.
void write_file_atomically(const std::string& path,
                           const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) throw std::runtime_error("serve: cannot write " + tmp);
    out << contents;
  }
  fs::rename(tmp, path);
}

constexpr std::size_t kMaxRequestBytes = 1 << 20;
constexpr std::size_t kMaxWatcherBacklog = 8u << 20;

}  // namespace

Daemon::Daemon(ServeConfig cfg) : cfg_(std::move(cfg)) {
  require(!cfg_.state_dir.empty(), "serve: state_dir is required");
  require(cfg_.max_active >= 1, "serve: max_active >= 1");
  const std::string listen =
      cfg_.listen.empty()
          ? "unix:" + (fs::path(cfg_.state_dir) / "sfi.sock").string()
          : cfg_.listen;
  addr_ = parse_address(listen);
  epoch_ = std::chrono::steady_clock::now();
  if (!cfg_.http.empty()) {
    // Bind in the constructor, not run(): tests (and the CLI banner) can
    // read the resolved ephemeral port before the IO thread starts.
    http_addr_ = parse_address(cfg_.http);
    http_fd_ = listen_on(http_addr_);
    set_nonblocking(http_fd_);
    if (http_addr_.tcp && http_addr_.port == 0) {
      sockaddr_in sin{};
      socklen_t len = sizeof(sin);
      if (::getsockname(http_fd_, reinterpret_cast<sockaddr*>(&sin), &len) ==
          0) {
        http_addr_.port = ntohs(sin.sin_port);
      }
    }
  }
}

Daemon::~Daemon() {
  stopping_.store(true);
  // Join without mu_: runners lock it in finalize(). run() has returned by
  // now, so the campaign table itself is no longer mutated.
  for (auto& [id, c] : campaigns_) {
    if (c->runner.joinable()) c->runner.join();
  }
  for (auto& conn : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (http_fd_ >= 0) ::close(http_fd_);
}

u64 Daemon::now_us() const {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - epoch_)
                              .count());
}

void Daemon::emit(Campaign& c, const std::string& line) {
  std::lock_guard lk(mu_);
  c.events.push_back(line);
  log_.emit(line);
}

int Daemon::run() {
  // A watcher that disconnects mid-stream must never take the daemon (and
  // with it every tenant's campaign) down with a SIGPIPE.
  farm::ignore_sigpipe();
  fs::create_directories(cfg_.state_dir);
  if (cfg_.flight_recorder_slots > 0) {
    // Crash flight recorder: every telemetry line emitted from here on is
    // teed into a fixed ring; a fatal signal dumps the last seconds of the
    // daemon's life next to the state it was managing.
    telemetry::FlightRecorder::global().enable(cfg_.flight_recorder_slots);
    telemetry::FlightRecorder::arm_signals(
        (fs::path(cfg_.state_dir) / "serve.postmortem.jsonl").string());
  }
  log_.open((fs::path(cfg_.state_dir) / "serve.events.jsonl").string());
  adopt_state_dir();
  listen_fd_ = listen_on(addr_);
  set_nonblocking(listen_fd_);
  {
    telemetry::JsonWriter w;
    w.begin_object()
        .field("ev", "serve_start")
        .field("t_us", now_us())
        .field("listen", addr_.describe())
        .field("state_dir", cfg_.state_dir)
        .field("max_active", cfg_.max_active);
    if (http_fd_ >= 0) w.field("http", http_addr_.describe());
    w.end_object();
    log_.emit(w.str());
  }

  while (true) {
    if (!stopping_.load() &&
        (stop_requested_.load() || (cfg_.should_stop && cfg_.should_stop()))) {
      begin_shutdown();
    }
    admit_ready();
    reap_finished();
    if (stopping_.load()) {
      std::lock_guard lk(mu_);
      bool busy = false;
      for (const auto& [id, c] : campaigns_) {
        if (c->has_runner && !c->runner_finished.load()) busy = true;
      }
      if (!busy) break;
    }
    pump_io();
  }
  reap_finished();

  // Let watchers drain the final events before the sockets close.
  for (int i = 0; i < 8; ++i) pump_io();
  for (auto& conn : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  conns_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (!addr_.tcp) {
    std::error_code ec;
    fs::remove(addr_.path, ec);
  }
  {
    telemetry::JsonWriter w;
    w.begin_object()
        .field("ev", "serve_exit")
        .field("t_us", now_us())
        .end_object();
    log_.emit(w.str());
  }
  log_.flush();
  return 0;
}

void Daemon::begin_shutdown() {
  stopping_.store(true);
  telemetry::JsonWriter w;
  w.begin_object()
      .field("ev", "serve_stopping")
      .field("t_us", now_us())
      .end_object();
  log_.emit(w.str());
}

// --- durable state -------------------------------------------------------

void Daemon::write_manifest(const Campaign& c) {
  telemetry::JsonWriter w;
  w.begin_object()
      .field("id", c.id)
      .field("tenant", c.spec.tenant)
      .field("state", c.failed ? std::string_view("failed")
                               : to_string(c.state))
      .field("seed", c.spec.seed)
      .field("testcase_seed", c.spec.testcase_seed)
      .field("instructions", c.spec.instructions)
      .field("n", c.spec.n)
      .field("confidence", c.spec.target.confidence)
      .field("half_width", c.spec.target.half_width)
      .field("by_unit", c.spec.target.by_unit)
      .field("threads", c.spec.threads)
      .field("workers", c.spec.workers)
      .field("shard_size", c.spec.shard_size)
      .field("flush_records", c.spec.flush_records)
      .field("inj_engine", inject::engine_name(c.spec.engine))
      .field("lanes", c.spec.lanes)
      .field("early_stop", c.early_stop.load())
      .field("stop_point", c.stop_point)
      .field("records", c.records)
      .field("complete", c.complete)
      .field("store", c.store_path)
      .end_object();
  write_file_atomically(c.manifest_path, w.str() + "\n");
}

void Daemon::adopt_state_dir() {
  std::vector<fs::path> manifests;
  for (const auto& entry : fs::directory_iterator(cfg_.state_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("campaign-", 0) == 0 &&
        name.size() > 14 &&  // "campaign-" + id + ".json"
        name.substr(name.size() - 5) == ".json") {
      manifests.push_back(entry.path());
    }
  }
  std::sort(manifests.begin(), manifests.end());

  std::lock_guard lk(mu_);
  for (const fs::path& path : manifests) {
    Json m;
    try {
      std::ifstream in(path, std::ios::binary);
      const std::string text{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
      m = Json::parse(text);
    } catch (const std::exception&) {
      continue;  // unreadable manifest: leave the files alone, don't adopt
    }
    const u64 id = m.get_u64("id", 0);
    if (id == 0 || campaigns_.count(id) != 0) continue;

    auto c = std::make_unique<Campaign>();
    c->id = id;
    c->tel = std::make_shared<inject::CampaignTelemetry>();
    // Span plane from birth: the book's wall epoch is the adoption/submit
    // instant, which is what the admission-wait slice measures from.
    c->tel->enable_span_plane("sfi serve", id);
    c->spec.tenant = m.get_str("tenant", "default");
    c->spec.seed = m.get_u64("seed", 42);
    c->spec.testcase_seed = m.get_u64("testcase_seed", 2026);
    c->spec.instructions = static_cast<u32>(m.get_u64("instructions", 160));
    c->spec.n = static_cast<u32>(m.get_u64("n", 1000));
    c->spec.target.confidence =
        m.get_num("confidence", stats::kDefaultConfidence);
    c->spec.target.half_width = m.get_num("half_width", 0.02);
    c->spec.target.by_unit = m.get_bool("by_unit", false);
    c->spec.threads = static_cast<u32>(m.get_u64("threads", 0));
    c->spec.workers = static_cast<u32>(m.get_u64("workers", 0));
    c->spec.shard_size =
        std::max<u32>(1, static_cast<u32>(m.get_u64("shard_size", 16)));
    c->spec.flush_records =
        std::max<u32>(1, static_cast<u32>(m.get_u64("flush_records", 8)));
    if (const auto kind =
            inject::parse_engine(m.get_str("inj_engine", "scalar"))) {
      c->spec.engine = *kind;
    }
    c->spec.lanes =
        std::max<u32>(1, static_cast<u32>(m.get_u64("lanes", 64)));
    c->manifest_path = path.string();
    c->store_path = m.get_str(
        "store",
        (fs::path(cfg_.state_dir) / ("campaign-" + std::to_string(id) + ".sfr"))
            .string());
    c->records = m.get_u64("records", 0);
    c->stop_point = m.get_u64("stop_point", 0);
    c->complete = m.get_bool("complete", false);
    c->early_stop.store(m.get_bool("early_stop", false));

    const std::string state = m.get_str("state", "queued");
    if (state == "done" || state == "failed") {
      c->state = CampaignState::Done;
      c->failed = state == "failed";
      c->committed = c->records;
    } else {
      // queued / running / anything else: requeue — the store (if any) is
      // durable and the runner resumes from it; an early-stopped store is
      // re-recognised as met before a single new injection is claimed.
      c->state = CampaignState::Queued;
      c->early_stop.store(false);
    }
    next_id_ = std::max(next_id_, id + 1);

    telemetry::JsonWriter w;
    w.begin_object()
        .field("ev", "adopted")
        .field("t_us", now_us())
        .field("id", id)
        .field("tenant", c->spec.tenant)
        .field("state", c->failed ? std::string_view("failed")
                                  : to_string(c->state))
        .field("records", c->records)
        .end_object();
    c->events.push_back(w.str());
    log_.emit(w.str());
    campaigns_.emplace(id, std::move(c));
  }
}

// --- admission -----------------------------------------------------------

void Daemon::admit_ready() {
  std::lock_guard lk(mu_);
  while (!stopping_.load()) {
    u32 active = 0;
    for (const auto& [id, c] : campaigns_) {
      if (c->state == CampaignState::Running) ++active;
    }
    if (active >= cfg_.max_active) return;

    // Fair share: the slot goes to the queued tenant with the least
    // admitted spend; within a tenant, FIFO by id (map order is ascending,
    // and only a strictly smaller spend displaces the current pick).
    Campaign* best = nullptr;
    u64 best_spend = 0;
    for (auto& [id, c] : campaigns_) {
      if (c->state != CampaignState::Queued) continue;
      const u64 spend = tenant_spend_[c->spec.tenant];
      if (best == nullptr || spend < best_spend) {
        best = c.get();
        best_spend = spend;
      }
    }
    if (best == nullptr) return;

    best->state = CampaignState::Running;
    tenant_spend_[best->spec.tenant] += best->spec.price();
    write_manifest(*best);
    telemetry::JsonWriter w;
    w.begin_object()
        .field("ev", "admitted")
        .field("t_us", now_us())
        .field("id", best->id)
        .field("tenant", best->spec.tenant)
        .field("price", best->spec.price())
        .field("workers", best->spec.workers)
        .end_object();
    best->events.push_back(w.str());
    log_.emit(w.str());
    best->has_runner = true;
    best->runner_finished.store(false);
    Campaign* cp = best;
    best->runner = std::thread([this, cp] { run_one(*cp); });
  }
}

void Daemon::reap_finished() {
  std::lock_guard lk(mu_);
  for (auto& [id, c] : campaigns_) {
    if (c->has_runner && c->runner_finished.load() && c->runner.joinable()) {
      c->runner.join();
      c->has_runner = false;
    }
  }
}

// --- campaign execution --------------------------------------------------

void Daemon::run_one(Campaign& c) {
  try {
    if (c.tel != nullptr && c.tel->spans() != nullptr) {
      // Queue time, as a slice: from the book's wall epoch (submit or
      // adoption) to this admission instant.
      telemetry::SpanBook* book = c.tel->spans();
      telemetry::JsonWriter args;
      args.begin_object()
          .field("id", c.id)
          .field("tenant", c.spec.tenant)
          .end_object();
      const u64 t0 = book->wall_epoch_us();
      book->slice("admission wait", "serve.admission", t0,
                  book->now_us() - t0, 0, args.str());
    }
    avp::TestcaseConfig tcfg;
    tcfg.seed = c.spec.testcase_seed;
    tcfg.num_instructions = c.spec.instructions;
    const avp::Testcase tc = avp::generate_testcase(tcfg);

    inject::CampaignConfig cfg;
    cfg.seed = c.spec.seed;
    cfg.num_injections = c.spec.n;
    cfg.engine = c.spec.engine;
    cfg.lanes = c.spec.lanes;
    // Observability only: telemetry never feeds back into execution, so the
    // store bytes are identical with the plane on or off.
    cfg.telemetry = c.tel.get();
    if (c.tel != nullptr) {
      c.tel->set_stop_target(c.spec.target.confidence,
                             c.spec.target.half_width);
    }

    const bool farm_mode = c.spec.workers > 0;
    std::mutex mon_mu;
    std::unique_ptr<StopMonitor> monitor =
        farm_mode
            ? std::make_unique<StopMonitor>(c.spec.n, c.spec.target)
            : std::make_unique<StopMonitor>(c.store_path, c.spec.n,
                                            c.spec.target);

    using clock = std::chrono::steady_clock;
    clock::time_point last_interval{};  // guarded by mon_mu

    // Throttled "interval" event + live-stats refresh; caller holds mon_mu.
    const auto note_intervals = [&](bool force) {
      const auto now = clock::now();
      if (!force && now - last_interval < std::chrono::milliseconds(250)) {
        return;
      }
      last_interval = now;
      const double widest = widest_half_width(monitor->agg(), c.spec.target);
      const u64 committed = monitor->committed();
      std::vector<StratumInterval> strata =
          stratum_intervals(monitor->agg(), c.spec.target);
      {
        std::lock_guard lk(mu_);
        c.committed = committed;
        c.widest_hw = widest;
        c.strata = std::move(strata);
      }
      telemetry::JsonWriter w;
      w.begin_object()
          .field("ev", "interval")
          .field("t_us", now_us())
          .field("id", c.id)
          .field("committed", committed)
          .field("widest_half_width", widest)
          .field("target_half_width", c.spec.target.half_width)
          .field("confidence", c.spec.target.confidence)
          .field("met", monitor->met())
          .end_object();
      emit(c, w.str());
      if (c.tel != nullptr && c.tel->spans() != nullptr) {
        // Same throttle as the interval event: the trace shows the stop
        // monitor's cadence without paying a span per claim.
        telemetry::SpanBook* book = c.tel->spans();
        telemetry::JsonWriter args;
        args.begin_object()
            .field("committed", committed)
            .field("widest_half_width", widest)
            .field("met", monitor->met())
            .end_object();
        book->instant("stop poll", "serve.stop", book->now_us(), 0,
                      args.str());
      }
    };

    // The sequential stop decision: polled by the engine before every
    // claim. Commit-gated counting (FrameTail / farm on_record) means the
    // recorded stop point is exactly the durable record set.
    const auto stop_fn = [&]() -> bool {
      if (stopping_.load(std::memory_order_relaxed)) return true;
      if (c.early_stop.load(std::memory_order_relaxed)) return true;
      std::unique_lock lk(mon_mu, std::try_to_lock);
      if (!lk.owns_lock()) return false;
      // Tail mode polls on every claim, unthrottled: with one scheduler
      // thread the buffer is empty exactly at flush boundaries, so the stop
      // lands on the flush that met the target and the decision set IS the
      // final record set (a throttle here would admit straggler records
      // that could push a stratum back over the target).
      if (!farm_mode) monitor->poll();
      if (monitor->met()) {
        c.early_stop.store(true);
        note_intervals(/*force=*/true);
        telemetry::JsonWriter w;
        w.begin_object()
            .field("ev", "early_stop")
            .field("t_us", now_us())
            .field("id", c.id)
            .field("committed", monitor->committed())
            .field("target_half_width", c.spec.target.half_width)
            .field("confidence", c.spec.target.confidence)
            .end_object();
        emit(c, w.str());
        return true;
      }
      note_intervals(/*force=*/false);
      return false;
    };

    std::mutex prog_mu;
    clock::time_point last_progress{};
    const auto progress_fn = [&](const sched::Progress& p) {
      c.live_done.store(p.done, std::memory_order_relaxed);
      std::unique_lock lk(prog_mu, std::try_to_lock);
      if (!lk.owns_lock()) return;
      const auto now = clock::now();
      if (now - last_progress < std::chrono::milliseconds(500)) return;
      last_progress = now;
      telemetry::JsonWriter w;
      w.begin_object()
          .field("ev", "progress")
          .field("t_us", now_us())
          .field("id", c.id)
          .field("done", p.done)
          .field("total", p.total)
          .field("executed", p.executed)
          .end_object();
      emit(c, w.str());
    };

    if (farm_mode) {
      farm::FarmConfig fc;
      fc.hosts = {{"localhost", c.spec.workers}};
      fc.worker_command = {
          cfg_.worker_binary.empty() ? farm::self_exe() : cfg_.worker_binary,
          "worker",
          "--seed", std::to_string(c.spec.seed),
          "--testcase-seed", std::to_string(c.spec.testcase_seed),
          "--instructions", std::to_string(c.spec.instructions),
          "--n", std::to_string(c.spec.n),
          "--engine", inject::engine_name(c.spec.engine),
          "--lanes", std::to_string(c.spec.lanes)};
      if (http_fd_ >= 0 && cfg_.metrics_every > 0) {
        // Fleet metrics: workers snapshot their registries into the shard
        // stream so /metrics covers every process, not just this one.
        fc.metrics_every = cfg_.metrics_every;
        fc.worker_command.push_back("--metrics-every");
        fc.worker_command.push_back(std::to_string(cfg_.metrics_every));
      }
      if (cfg_.flight_recorder_slots > 0) {
        fc.postmortem_path = c.store_path + ".postmortem.jsonl";
      }
      // Distributed trace: the farm coordinator (this thread) propagates
      // the campaign id as the trace id and appends --trace-spans to the
      // worker command itself; the sidecar lands next to the store.
      fc.trace_spans = true;
      fc.trace_id = c.id;
      fc.shard_size = c.spec.shard_size;
      fc.should_stop = stop_fn;
      fc.on_progress = progress_fn;
      fc.on_record = [&](const store::StoredRecord& sr) {
        std::lock_guard lk(mon_mu);
        monitor->observe(sr);
      };
      (void)farm::run_farm_campaign(tc, cfg, c.store_path, fc,
                                    /*resume=*/true);
    } else {
      sched::SchedulerConfig sc;
      sc.threads =
          c.spec.threads != 0 ? c.spec.threads : cfg_.default_threads;
      sc.shard_size = c.spec.shard_size;
      sc.flush_records = c.spec.flush_records;
      sc.should_stop = stop_fn;
      sc.on_progress = progress_fn;
      (void)sched::run_campaign_to_store(tc, cfg, c.store_path, sc,
                                         /*resume=*/true);
    }
    finalize(c, /*failed=*/false, "");
  } catch (const std::exception& e) {
    finalize(c, /*failed=*/true, e.what());
  }
  c.runner_finished.store(true);
}

void Daemon::finalize(Campaign& c, bool failed, const std::string& error) {
  inject::CampaignAggregate agg;
  u64 records = 0;
  std::string why = error;
  if (!failed) {
    try {
      auto [meta, a] =
          store::aggregate_store(c.store_path, {.tolerate_torn_tail = true});
      agg = a;
      records = agg.total();
      // Durable trace sidecar: everything the live /trace view has (this
      // process's book plus spans delivered from workers), rewritten whole
      // so `sfi trace` works on the state dir after the daemon is gone.
      // Best-effort — a trace that fails to serialize never fails a
      // campaign.
      if (c.tel != nullptr && c.tel->spans() != nullptr) {
        try {
          const std::vector<telemetry::SpanRecord> spans = c.tel->all_spans();
          if (!spans.empty()) {
            std::string base = c.store_path;
            if (base.size() > 4 && base.ends_with(".sfr")) {
              base.resize(base.size() - 4);
            }
            store::StoreWriter sw =
                store::StoreWriter::create(base + ".trace.sfr", meta);
            for (const telemetry::SpanRecord& sp : spans) sw.append_span(sp);
            sw.flush();
          }
        } catch (const std::exception&) {
        }
      }
    } catch (const std::exception& e) {
      failed = true;
      why = e.what();
    }
  }

  const bool early = c.early_stop.load();
  const bool complete = records == c.spec.n;
  {
    // The final event must land in the watch buffer under the SAME lock
    // hold that flips the state to Done: the IO thread closes a caught-up
    // watcher the moment it sees Done, so a gap here would cut streams off
    // just before their finish line.
    std::lock_guard lk(mu_);
    c.failed = failed;
    c.error = why;
    c.records = records;
    c.complete = complete;
    c.committed = records;
    if (early) c.stop_point = records;
    if (!failed) {
      c.widest_hw = widest_half_width(agg, c.spec.target);
      c.strata = stratum_intervals(agg, c.spec.target);
    }
    // Interrupted (daemon shutdown before the target or N was reached):
    // stays Running on disk, so the next daemon requeues and resumes it.
    c.state = (failed || early || complete) ? CampaignState::Done
                                            : CampaignState::Running;
    telemetry::JsonWriter w;
    std::string line;
    if (failed) {
      w.begin_object()
          .field("ev", "failed")
          .field("t_us", now_us())
          .field("id", c.id)
          .field("error", why)
          .end_object();
      line = w.str();
    } else if (c.state == CampaignState::Done) {
      line = finish_event_json(c, agg);
    } else {
      w.begin_object()
          .field("ev", "interrupted")
          .field("t_us", now_us())
          .field("id", c.id)
          .field("records", records)
          .field("total", c.spec.n)
          .end_object();
      line = w.str();
    }
    c.events.push_back(line);
    log_.emit(line);
  }
  write_manifest(c);
}

std::string Daemon::finish_event_json(
    const Campaign& c, const inject::CampaignAggregate& agg) const {
  telemetry::JsonWriter w;
  w.begin_object()
      .field("ev", "finish")
      .field("t_us", now_us())
      .field("id", c.id)
      .field("tenant", c.spec.tenant)
      .field("records", agg.total())
      .field("n", c.spec.n)
      .field("complete", c.complete)
      .field("early_stop", c.early_stop.load())
      .field("stop_point", c.stop_point)
      .field("confidence", c.spec.target.confidence)
      .field("target_half_width", c.spec.target.half_width)
      .field("store", c.store_path);
  w.key("counts").begin_object();
  for (const inject::Outcome o : inject::kAllOutcomes) {
    w.field(inject::to_string(o), agg.counts.of(o));
  }
  w.end_object();
  w.key("strata").begin_array();
  for (const StratumInterval& s : stratum_intervals(agg, c.spec.target)) {
    w.begin_object()
        .field("stratum", s.stratum)
        .field("count", s.count)
        .field("n", s.n)
        .field("low", s.interval.low)
        .field("high", s.interval.high)
        .field("half_width", s.half_width())
        .end_object();
  }
  w.end_array().end_object();
  return w.str();
}

void Daemon::ensure_final_event(Campaign& c) {
  // Adopted-done campaigns carry no finish event yet; synthesize one from
  // the durable store so `sfi watch` of an old campaign still ends with the
  // full report line (identical content — same aggregation path).
  if (c.state != CampaignState::Done) return;
  for (const std::string& e : c.events) {
    if (e.find("\"ev\":\"finish\"") != std::string::npos ||
        e.find("\"ev\":\"failed\"") != std::string::npos) {
      return;
    }
  }
  if (c.failed) {
    telemetry::JsonWriter w;
    w.begin_object()
        .field("ev", "failed")
        .field("t_us", now_us())
        .field("id", c.id)
        .field("error", c.error)
        .end_object();
    c.events.push_back(w.str());
    log_.emit(w.str());
    return;
  }
  try {
    auto [meta, agg] =
        store::aggregate_store(c.store_path, {.tolerate_torn_tail = true});
    const std::string line = finish_event_json(c, agg);
    c.events.push_back(line);
    log_.emit(line);
  } catch (const std::exception& e) {
    telemetry::JsonWriter w;
    w.begin_object()
        .field("ev", "failed")
        .field("t_us", now_us())
        .field("id", c.id)
        .field("error", std::string(e.what()))
        .end_object();
    c.events.push_back(w.str());
    log_.emit(w.str());
  }
}

// --- IO ------------------------------------------------------------------

void Daemon::pump_io() {
  push_watch_events();

  std::vector<pollfd> fds;
  const bool accepting = !stopping_.load();
  int main_idx = -1;
  int http_idx = -1;
  if (accepting) {
    main_idx = static_cast<int>(fds.size());
    fds.push_back({listen_fd_, POLLIN, 0});
    if (http_fd_ >= 0) {
      http_idx = static_cast<int>(fds.size());
      fds.push_back({http_fd_, POLLIN, 0});
    }
  }
  const std::size_t base = fds.size();
  for (const auto& conn : conns_) {
    short events = POLLIN;
    if (!conn->outbuf.empty()) events |= POLLOUT;
    fds.push_back({conn->fd, events, 0});
  }
  const int timeout_ms =
      std::max(1, static_cast<int>(cfg_.poll_seconds * 1000.0));
  (void)::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);

  // Conns accepted below have no pollfd entry this round; they are serviced
  // on the next pump. Only walk the conns that were actually polled.
  const std::size_t polled = conns_.size();
  if (main_idx >= 0 && (fds[main_idx].revents & POLLIN) != 0) {
    accept_clients(listen_fd_, /*http=*/false);
  }
  if (http_idx >= 0 && (fds[http_idx].revents & POLLIN) != 0) {
    accept_clients(http_fd_, /*http=*/true);
  }

  for (std::size_t i = 0; i < polled; ++i) {
    Conn& conn = *conns_[i];
    const short re = fds[base + i].revents;
    if ((re & (POLLERR | POLLNVAL)) != 0) {
      conn.dead = true;
      continue;
    }
    if ((re & POLLIN) != 0) {
      char buf[4096];
      while (!conn.dead) {
        const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
          conn.inbuf.append(buf, static_cast<std::size_t>(n));
          if (conn.inbuf.size() > kMaxRequestBytes) conn.dead = true;
          continue;
        }
        if (n == 0) {
          // Peer closed. A watcher that hangs up simply stops watching —
          // the campaign it was watching is unaffected.
          conn.dead = true;
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        conn.dead = true;
        break;
      }
      if (conn.http) {
        if (!conn.dead) handle_http(conn);
      } else {
        std::size_t nl;
        while (!conn.dead &&
               (nl = conn.inbuf.find('\n')) != std::string::npos) {
          const std::string line = conn.inbuf.substr(0, nl);
          conn.inbuf.erase(0, nl + 1);
          if (!line.empty()) handle_line(conn, line);
        }
      }
    } else if ((re & POLLHUP) != 0 && conn.outbuf.empty()) {
      conn.dead = true;
    }
    if (!conn.dead && !conn.outbuf.empty()) {
      const ssize_t n = ::send(conn.fd, conn.outbuf.data(),
                               conn.outbuf.size(), MSG_NOSIGNAL);
      if (n > 0) {
        conn.outbuf.erase(0, static_cast<std::size_t>(n));
      } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                 errno != EINTR) {
        conn.dead = true;  // EPIPE and friends: the client went away
      }
    }
    if (!conn.dead && conn.close_after_flush && conn.outbuf.empty()) {
      conn.dead = true;
    }
  }

  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->dead) {
      ::close((*it)->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Daemon::accept_clients(int listen_fd, bool http) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient error: try again next pump
    }
    set_nonblocking(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->http = http;
    conns_.push_back(std::move(conn));
  }
}

void Daemon::handle_line(Conn& conn, const std::string& line) {
  Json req;
  try {
    req = Json::parse(line);
  } catch (const std::exception& e) {
    telemetry::JsonWriter w;
    w.begin_object()
        .field("ok", false)
        .field("error", std::string(e.what()))
        .end_object();
    conn.outbuf += w.str() + "\n";
    conn.close_after_flush = true;
    return;
  }
  const std::string op = req.get_str("op", "");
  if (op == "submit") {
    handle_submit(conn, req);
  } else if (op == "status") {
    handle_status(conn);
  } else if (op == "watch") {
    handle_watch(conn, req);
  } else if (op == "ping") {
    std::lock_guard lk(mu_);
    telemetry::JsonWriter w;
    w.begin_object()
        .field("ok", true)
        .field("campaigns", static_cast<u64>(campaigns_.size()))
        .end_object();
    conn.outbuf += w.str() + "\n";
  } else if (op == "shutdown") {
    telemetry::JsonWriter w;
    w.begin_object().field("ok", true).end_object();
    conn.outbuf += w.str() + "\n";
    conn.close_after_flush = true;
    stop_requested_.store(true);
  } else {
    telemetry::JsonWriter w;
    w.begin_object()
        .field("ok", false)
        .field("error", "unknown op '" + op + "'")
        .end_object();
    conn.outbuf += w.str() + "\n";
    conn.close_after_flush = true;
  }
}

void Daemon::handle_submit(Conn& conn, const Json& req) {
  CampaignSpec spec;
  spec.tenant = req.get_str("tenant", "default");
  spec.seed = req.get_u64("seed", 42);
  spec.testcase_seed = req.get_u64("testcase_seed", 2026);
  spec.instructions = static_cast<u32>(req.get_u64("instructions", 160));
  spec.n = static_cast<u32>(req.get_u64("n", 1000));
  spec.target.confidence = req.get_num("confidence", stats::kDefaultConfidence);
  spec.target.half_width = req.get_num("half_width", 0.02);
  spec.target.by_unit = req.get_bool("by_unit", false);
  spec.threads = static_cast<u32>(req.get_u64("threads", 0));
  spec.workers = static_cast<u32>(req.get_u64("workers", 0));
  spec.shard_size =
      std::max<u32>(1, static_cast<u32>(req.get_u64("shard_size", 16)));
  spec.flush_records =
      std::max<u32>(1, static_cast<u32>(req.get_u64("flush_records", 8)));
  const std::string engine = req.get_str("inj_engine", "scalar");
  if (const auto kind = inject::parse_engine(engine)) spec.engine = *kind;
  spec.lanes = std::max<u32>(1, static_cast<u32>(req.get_u64("lanes", 64)));

  std::string problem;
  if (!inject::parse_engine(engine)) {
    problem = "unknown inj_engine '" + engine + "' (scalar|lanes)";
  }
  if (spec.n == 0) problem = "n must be >= 1";
  if (spec.instructions == 0) problem = "instructions must be >= 1";
  if (!(spec.target.half_width > 0.0)) problem = "half_width must be > 0";
  if (!(spec.target.confidence > 0.0 && spec.target.confidence < 1.0)) {
    problem = "confidence must be in (0,1)";
  }
  if (stopping_.load()) problem = "daemon is shutting down";
  if (!problem.empty()) {
    telemetry::JsonWriter w;
    w.begin_object().field("ok", false).field("error", problem).end_object();
    conn.outbuf += w.str() + "\n";
    conn.close_after_flush = true;
    return;
  }

  u64 id = 0;
  std::string store_path;
  {
    std::lock_guard lk(mu_);
    id = next_id_++;
    auto c = std::make_unique<Campaign>();
    c->id = id;
    c->tel = std::make_shared<inject::CampaignTelemetry>();
    c->tel->enable_span_plane("sfi serve", id);
    c->spec = spec;
    c->store_path =
        (fs::path(cfg_.state_dir) / ("campaign-" + std::to_string(id) + ".sfr"))
            .string();
    c->manifest_path =
        (fs::path(cfg_.state_dir) /
         ("campaign-" + std::to_string(id) + ".json"))
            .string();
    store_path = c->store_path;
    write_manifest(*c);
    telemetry::JsonWriter w;
    w.begin_object()
        .field("ev", "submitted")
        .field("t_us", now_us())
        .field("id", id)
        .field("tenant", spec.tenant)
        .field("n", spec.n)
        .field("confidence", spec.target.confidence)
        .field("half_width", spec.target.half_width)
        .field("price", spec.price())
        .field("workers", spec.workers)
        .end_object();
    c->events.push_back(w.str());
    log_.emit(w.str());
    campaigns_.emplace(id, std::move(c));
  }

  telemetry::JsonWriter w;
  w.begin_object()
      .field("ok", true)
      .field("id", id)
      .field("store", store_path)
      .field("price", spec.price())
      .end_object();
  conn.outbuf += w.str() + "\n";
}

void Daemon::handle_status(Conn& conn) {
  // Same document the HTTP plane serves at /campaigns: one builder, two
  // transports (extra fields are fine — the wire protocol is lenient).
  conn.outbuf += campaigns_json() + "\n";
}

void Daemon::handle_watch(Conn& conn, const Json& req) {
  const u64 id = req.get_u64("id", 0);
  std::lock_guard lk(mu_);
  const auto it = campaigns_.find(id);
  if (it == campaigns_.end()) {
    telemetry::JsonWriter w;
    w.begin_object()
        .field("ok", false)
        .field("error", "no campaign with id " + std::to_string(id))
        .end_object();
    conn.outbuf += w.str() + "\n";
    conn.close_after_flush = true;
    return;
  }
  ensure_final_event(*it->second);
  conn.watcher = true;
  conn.watch_id = id;
  conn.next_event = 0;  // replay history first, then follow live
}

void Daemon::push_watch_events() {
  std::lock_guard lk(mu_);
  for (const auto& connp : conns_) {
    Conn& conn = *connp;
    if (!conn.watcher || conn.dead) continue;
    const auto it = campaigns_.find(conn.watch_id);
    if (it == campaigns_.end()) {
      conn.dead = true;
      continue;
    }
    Campaign& c = *it->second;
    while (conn.next_event < c.events.size()) {
      conn.outbuf += c.events[conn.next_event] + "\n";
      ++conn.next_event;
      if (conn.outbuf.size() > kMaxWatcherBacklog) {
        conn.dead = true;  // watcher is not draining; drop it
        break;
      }
    }
    if (!conn.dead && c.state == CampaignState::Done &&
        conn.next_event == c.events.size() ) {
      conn.close_after_flush = true;
    }
  }
}

// --- HTTP observability plane ---------------------------------------------
//
// A deliberately minimal HTTP/1.1 server: GET only, one request per
// connection (Connection: close), responses fully buffered in the conn
// outbox. It exists to be scraped — Prometheus, `sfi top`, curl — not to
// serve the web; and it is strictly read-only: nothing reachable from here
// mutates a campaign, its store, or the admission queue.

void Daemon::handle_http(Conn& conn) {
  const std::size_t end = conn.inbuf.find("\r\n\r\n");
  if (end == std::string::npos) {
    if (conn.inbuf.size() > 8192) conn.dead = true;  // header flood
    return;  // headers incomplete; wait for more bytes
  }
  std::istringstream in(conn.inbuf.substr(0, end));
  conn.inbuf.clear();
  std::string method;
  std::string target;
  in >> method >> target;
  const std::string path = target.substr(0, target.find('?'));

  const auto respond = [&conn](std::string_view status, std::string_view type,
                               const std::string& body) {
    conn.outbuf += "HTTP/1.1 ";
    conn.outbuf += status;
    conn.outbuf += "\r\nContent-Type: ";
    conn.outbuf += type;
    conn.outbuf += "\r\nContent-Length: " + std::to_string(body.size());
    conn.outbuf += "\r\nConnection: close\r\n\r\n";
    conn.outbuf += body;
    conn.close_after_flush = true;
  };

  if (method != "GET") {
    respond("405 Method Not Allowed", "text/plain", "GET only\n");
    return;
  }
  if (path == "/metrics") {
    respond("200 OK", "text/plain; version=0.0.4; charset=utf-8",
            metrics_text());
  } else if (path == "/healthz") {
    u64 n = 0;
    {
      std::lock_guard lk(mu_);
      n = campaigns_.size();
    }
    telemetry::JsonWriter w;
    w.begin_object()
        .field("ok", true)
        .field("stopping", stopping_.load())
        .field("t_us", now_us())
        .field("campaigns", n)
        .end_object();
    respond("200 OK", "application/json", w.str() + "\n");
  } else if (path == "/campaigns") {
    respond("200 OK", "application/json", campaigns_json() + "\n");
  } else if (path == "/trace") {
    // /trace?campaign=N → the campaign's live span set as a Trace Event
    // JSON document (load it straight into Perfetto / chrome://tracing).
    u64 id = 0;
    const std::size_t q = target.find('?');
    if (q != std::string::npos) {
      const std::string query = target.substr(q + 1);
      const std::size_t key = query.find("campaign=");
      if (key != std::string::npos) {
        id = std::strtoull(query.c_str() + key + 9, nullptr, 10);
      }
    }
    std::shared_ptr<inject::CampaignTelemetry> tel;
    {
      std::lock_guard lk(mu_);
      const auto it = campaigns_.find(id);
      if (it != campaigns_.end()) tel = it->second->tel;
    }
    if (id == 0) {
      respond("400 Bad Request", "text/plain",
              "usage: /trace?campaign=ID\n");
    } else if (tel == nullptr) {
      respond("404 Not Found", "text/plain",
              "no campaign with id " + std::to_string(id) + "\n");
    } else {
      // Rendered outside mu_: stitching copies every span.
      respond("200 OK", "application/json", tel->trace_chrome_json() + "\n");
    }
  } else {
    respond("404 Not Found", "text/plain", "not found\n");
  }
}

std::string Daemon::metrics_text() {
  // Copy what mu_ guards, then render (and snapshot telemetry) unlocked:
  // fleet_snapshot() copies a whole registry, which has no business running
  // under the campaign-table lock.
  struct Row {
    u64 id = 0;
    std::string tenant;
    bool farm = false;
    u64 n = 0;
    u64 done = 0;
    u64 committed = 0;
    bool early = false;
    double confidence = 0.0;
    double target_hw = 0.0;
    double widest = -1.0;
    std::vector<StratumInterval> strata;
    std::shared_ptr<inject::CampaignTelemetry> tel;
  };
  std::vector<Row> rows;
  u64 queued = 0;
  u64 running = 0;
  u64 done = 0;
  {
    std::lock_guard lk(mu_);
    rows.reserve(campaigns_.size());
    for (const auto& [id, c] : campaigns_) {
      switch (c->state) {
        case CampaignState::Queued: ++queued; break;
        case CampaignState::Running: ++running; break;
        case CampaignState::Done: ++done; break;
      }
      rows.push_back({id, c->spec.tenant, c->farm(), c->spec.n,
                      c->state == CampaignState::Done ? c->records
                                                      : c->live_done.load(),
                      c->committed, c->early_stop.load(),
                      c->spec.target.confidence, c->spec.target.half_width,
                      c->widest_hw, c->strata, c->tel});
    }
  }

  telemetry::PrometheusWriter pw;
  const std::vector<telemetry::PromLabel> none;
  pw.add_gauge("serve.uptime_seconds", none,
               static_cast<double>(now_us()) / 1e6);
  pw.add_gauge("serve.stopping", none, stopping_.load() ? 1.0 : 0.0);
  const auto state_label = [](const char* s) {
    return std::vector<telemetry::PromLabel>{{"state", s}};
  };
  pw.add_gauge("serve.campaigns", state_label("queued"),
               static_cast<double>(queued));
  pw.add_gauge("serve.campaigns", state_label("running"),
               static_cast<double>(running));
  pw.add_gauge("serve.campaigns", state_label("done"),
               static_cast<double>(done));
  for (const Row& r : rows) {
    const std::vector<telemetry::PromLabel> labels = {
        {"campaign", std::to_string(r.id)},
        {"tenant", r.tenant},
        {"engine", r.farm ? "farm" : "sched"}};
    pw.add_gauge("campaign.injections_total", labels,
                 static_cast<double>(r.n));
    pw.add_gauge("campaign.done", labels, static_cast<double>(r.done));
    pw.add_gauge("campaign.committed", labels,
                 static_cast<double>(r.committed));
    pw.add_gauge("campaign.early_stop", labels, r.early ? 1.0 : 0.0);
    pw.add_gauge("campaign.confidence", labels, r.confidence);
    pw.add_gauge("campaign.target_half_width", labels, r.target_hw);
    if (r.widest >= 0.0) {
      pw.add_gauge("campaign.widest_half_width", labels, r.widest);
    }
    // Live early-stop state, one gauge triple per stratum: how many records
    // the stratum has, the proportion estimate, and how tight its Wilson
    // interval is against the target above.
    for (const StratumInterval& s : r.strata) {
      std::vector<telemetry::PromLabel> sl = labels;
      sl.push_back({"stratum", s.stratum});
      pw.add_gauge("stratum.n", sl, static_cast<double>(s.n));
      if (s.n > 0) {
        pw.add_gauge("stratum.proportion", sl,
                     static_cast<double>(s.count) / static_cast<double>(s.n));
      }
      pw.add_gauge("stratum.half_width", sl, s.half_width());
    }
    if (r.tel != nullptr) {
      pw.add_gauge("campaign.fleet_workers", labels,
                   static_cast<double>(r.tel->fleet_workers()));
      pw.add_snapshot(r.tel->fleet_snapshot(), labels);
    }
  }
  return pw.str();
}

std::string Daemon::campaigns_json() {
  struct Row {
    u64 id = 0;
    std::string tenant;
    std::string state;
    bool farm = false;
    u64 n = 0;
    u64 done = 0;
    u64 committed = 0;
    double confidence = 0.0;
    double target_hw = 0.0;
    double widest = -1.0;
    bool early = false;
    u64 stop_point = 0;
    bool complete = false;
    u64 price = 0;
    std::string store;
    std::shared_ptr<inject::CampaignTelemetry> tel;
  };
  std::vector<Row> rows;
  {
    std::lock_guard lk(mu_);
    rows.reserve(campaigns_.size());
    for (const auto& [id, c] : campaigns_) {
      rows.push_back({id, c->spec.tenant,
                      std::string(c->failed ? std::string_view("failed")
                                            : to_string(c->state)),
                      c->farm(), c->spec.n,
                      c->state == CampaignState::Done ? c->records
                                                      : c->live_done.load(),
                      c->committed, c->spec.target.confidence,
                      c->spec.target.half_width, c->widest_hw,
                      c->early_stop.load(), c->stop_point, c->complete,
                      c->spec.price(), c->store_path, c->tel});
    }
  }

  telemetry::JsonWriter w;
  w.begin_object()
      .field("ok", true)
      .field("stopping", stopping_.load())
      .field("t_us", now_us());
  w.key("campaigns").begin_array();
  for (const Row& r : rows) {
    w.begin_object()
        .field("id", r.id)
        .field("tenant", r.tenant)
        .field("state", r.state)
        .field("engine", r.farm ? std::string_view("farm")
                                : std::string_view("sched"))
        .field("n", r.n)
        .field("done", r.done)
        .field("committed", r.committed)
        .field("confidence", r.confidence)
        .field("target_half_width", r.target_hw)
        .field("widest_half_width", r.widest)
        .field("early_stop", r.early)
        .field("stop_point", r.stop_point)
        .field("complete", r.complete)
        .field("price", r.price)
        .field("store", r.store);
    if (r.tel != nullptr) {
      const telemetry::MetricsSnapshot snap = r.tel->fleet_snapshot();
      w.field("workers", static_cast<u64>(r.tel->fleet_workers()));
      w.key("counts").begin_object();
      for (const inject::Outcome o : inject::kAllOutcomes) {
        w.field(inject::to_string(o),
                snap.counter_value("outcome." +
                                   std::string(inject::to_string(o))));
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array().end_object();
  return w.str();
}

}  // namespace sfi::serve
