#include "serve/stop.hpp"

#include "common/check.hpp"
#include "store/format.hpp"

namespace sfi::serve {

namespace {

void append_strata(const inject::OutcomeCounts& counts,
                   const std::string& prefix, double z,
                   std::vector<StratumInterval>& out) {
  const u64 n = counts.total();
  if (n == 0) return;
  for (const inject::Outcome o : inject::kAllOutcomes) {
    StratumInterval s;
    s.stratum = prefix + std::string(inject::to_string(o));
    s.count = counts.of(o);
    s.n = n;
    s.interval = counts.interval(o, z);
    out.push_back(std::move(s));
  }
}

}  // namespace

std::vector<StratumInterval> stratum_intervals(
    const inject::CampaignAggregate& agg, const StopTarget& target) {
  const double z = target.z();
  std::vector<StratumInterval> out;
  append_strata(agg.counts, "", z, out);
  if (target.by_unit) {
    for (const netlist::Unit u : netlist::kAllUnits) {
      const auto& counts = agg.by_unit[static_cast<std::size_t>(u)];
      append_strata(counts, std::string(netlist::to_string(u)) + "/", z, out);
    }
  }
  return out;
}

bool target_met(const inject::CampaignAggregate& agg,
                const StopTarget& target) {
  if (agg.total() == 0) return false;
  for (const StratumInterval& s : stratum_intervals(agg, target)) {
    if (s.half_width() > target.half_width) return false;
  }
  return true;
}

double widest_half_width(const inject::CampaignAggregate& agg,
                         const StopTarget& target) {
  double widest = -1.0;
  for (const StratumInterval& s : stratum_intervals(agg, target)) {
    if (s.half_width() > widest) widest = s.half_width();
  }
  return widest;
}

StopMonitor::StopMonitor(std::string store_path, u32 num_injections,
                         StopTarget target)
    : target_(target),
      tail_(store::FrameTail(std::move(store_path))),
      seen_(num_injections, false) {
  require(target.half_width > 0.0, "stop target half_width > 0");
  require(target.confidence > 0.0 && target.confidence < 1.0,
          "stop target confidence in (0,1)");
}

StopMonitor::StopMonitor(u32 num_injections, StopTarget target)
    : target_(target), seen_(num_injections, false) {
  require(target.half_width > 0.0, "stop target half_width > 0");
  require(target.confidence > 0.0 && target.confidence < 1.0,
          "stop target confidence in (0,1)");
}

std::size_t StopMonitor::poll() {
  if (!tail_.has_value()) return 0;
  const u64 before = committed_;
  tail_->poll([this](u8 kind, std::span<const u8> payload) {
    if (kind != store::kRecordFrame) return;
    add(store::decode_record(payload));
  });
  if (committed_ != before) met_ = target_met(agg_, target_);
  return static_cast<std::size_t>(committed_ - before);
}

void StopMonitor::observe(const store::StoredRecord& rec) {
  const u64 before = committed_;
  add(rec);
  if (committed_ != before) met_ = target_met(agg_, target_);
}

void StopMonitor::add(const store::StoredRecord& rec) {
  if (rec.index >= seen_.size() || seen_[rec.index]) return;
  seen_[rec.index] = true;
  agg_.add(rec.rec);
  ++committed_;
}

}  // namespace sfi::serve
