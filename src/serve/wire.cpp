#include "serve/wire.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>

namespace sfi::serve {

namespace {

/// Recursive-descent parser over the document. Depth-limited: the wire
/// protocol never nests more than a handful of levels, and a hostile
/// client must not be able to blow the daemon's stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw WireError("wire: bad JSON at byte " + std::to_string(pos_) + ": " +
                    why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    if (depth_ > 32) fail("nesting too deep");
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    ++depth_;
    expect('{');
    std::map<std::string, Json> members;
    if (peek() != '}') {
      while (true) {
        if (peek() != '"') fail("object key must be a string");
        std::string key = parse_string();
        expect(':');
        members.emplace(std::move(key), parse_value());
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        break;
      }
    }
    expect('}');
    --depth_;
    return Json::make_object(std::move(members));
  }

  Json parse_array() {
    ++depth_;
    expect('[');
    std::vector<Json> items;
    if (peek() != ']') {
      while (true) {
        items.push_back(parse_value());
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        break;
      }
    }
    expect(']');
    --depth_;
    return Json::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                fail("bad \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // produced by our own writer; decode them as-is).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double v = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (ec != std::errc() || ptr != text_.data() + pos_ || pos_ == start) {
      fail("bad number");
    }
    return Json::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::make_bool(bool v) {
  Json j;
  j.type_ = Type::Bool;
  j.bool_ = v;
  return j;
}

Json Json::make_number(double v) {
  Json j;
  j.type_ = Type::Number;
  j.num_ = v;
  return j;
}

Json Json::make_string(std::string v) {
  Json j;
  j.type_ = Type::String;
  j.str_ = std::move(v);
  return j;
}

Json Json::make_array(std::vector<Json> items) {
  Json j;
  j.type_ = Type::Array;
  j.items_ = std::move(items);
  return j;
}

Json Json::make_object(std::map<std::string, Json> members) {
  Json j;
  j.type_ = Type::Object;
  j.members_ = std::move(members);
  return j;
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  const auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

std::string Json::get_str(const std::string& key,
                          const std::string& dflt) const {
  const Json* v = find(key);
  return (v != nullptr && v->type_ == Type::String) ? v->str_ : dflt;
}

double Json::get_num(const std::string& key, double dflt) const {
  const Json* v = find(key);
  return (v != nullptr && v->type_ == Type::Number) ? v->num_ : dflt;
}

u64 Json::get_u64(const std::string& key, u64 dflt) const {
  const Json* v = find(key);
  if (v == nullptr || v->type_ != Type::Number || v->num_ < 0.0) return dflt;
  return static_cast<u64>(v->num_);
}

bool Json::get_bool(const std::string& key, bool dflt) const {
  const Json* v = find(key);
  return (v != nullptr && v->type_ == Type::Bool) ? v->bool_ : dflt;
}

std::string Address::describe() const {
  if (tcp) return "tcp:" + host + ":" + std::to_string(port);
  return "unix:" + path;
}

Address parse_address(const std::string& spec) {
  if (spec.empty()) throw WireError("wire: empty address");
  Address a;
  if (spec.rfind("unix:", 0) == 0) {
    a.path = spec.substr(5);
    if (a.path.empty()) throw WireError("wire: unix: needs a path");
    return a;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    a.tcp = true;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    std::string port_str;
    if (colon == std::string::npos) {
      a.host = "127.0.0.1";
      port_str = rest;
    } else {
      a.host = rest.substr(0, colon);
      port_str = rest.substr(colon + 1);
    }
    u64 port = 0;
    const auto [ptr, ec] = std::from_chars(
        port_str.data(), port_str.data() + port_str.size(), port);
    // Port 0 is legal for listeners: the OS assigns an ephemeral port and
    // the daemon reads it back with getsockname (connect_to rejects it).
    if (ec != std::errc() || ptr != port_str.data() + port_str.size() ||
        port > 65535) {
      throw WireError("wire: bad tcp port in '" + spec + "'");
    }
    a.port = static_cast<u16>(port);
    return a;
  }
  a.path = spec;  // bare path = unix socket
  return a;
}

namespace {

int make_unix_socket(const Address& addr, sockaddr_un& sa) {
  if (addr.path.size() >= sizeof(sa.sun_path)) {
    throw WireError("wire: unix socket path too long: " + addr.path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw WireError("wire: socket(): " + std::string(strerror(errno)));
  std::memset(&sa, 0, sizeof(sa));
  sa.sun_family = AF_UNIX;
  std::memcpy(sa.sun_path, addr.path.c_str(), addr.path.size() + 1);
  return fd;
}

int make_tcp_socket(const Address& addr, sockaddr_in& sa) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw WireError("wire: socket(): " + std::string(strerror(errno)));
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    throw WireError("wire: bad tcp host '" + addr.host +
                    "' (numeric IPv4 only)");
  }
  return fd;
}

}  // namespace

int listen_on(const Address& addr) {
  int fd = -1;
  if (addr.tcp) {
    sockaddr_in sa{};
    fd = make_tcp_socket(addr, sa);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      const std::string err = strerror(errno);
      ::close(fd);
      throw WireError("wire: bind " + addr.describe() + ": " + err);
    }
  } else {
    // A stale socket file from a dead daemon would make bind fail forever;
    // only ever unlink sockets, never a regular file someone pointed us at.
    std::error_code ec;
    if (std::filesystem::is_socket(addr.path, ec)) {
      std::filesystem::remove(addr.path, ec);
    }
    sockaddr_un sa{};
    fd = make_unix_socket(addr, sa);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      const std::string err = strerror(errno);
      ::close(fd);
      throw WireError("wire: bind " + addr.describe() + ": " + err);
    }
  }
  if (::listen(fd, 16) != 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    throw WireError("wire: listen " + addr.describe() + ": " + err);
  }
  return fd;
}

int connect_to(const Address& addr) {
  int fd = -1;
  if (addr.tcp) {
    sockaddr_in sa{};
    fd = make_tcp_socket(addr, sa);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      const std::string err = strerror(errno);
      ::close(fd);
      throw WireError("wire: connect " + addr.describe() + ": " + err);
    }
  } else {
    sockaddr_un sa{};
    fd = make_unix_socket(addr, sa);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      const std::string err = strerror(errno);
      ::close(fd);
      throw WireError("wire: connect " + addr.describe() + ": " + err);
    }
  }
  return fd;
}

bool LineChannel::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool LineChannel::recv_line(std::string& out) {
  if (fd_ < 0) return false;
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      out.assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

void LineChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace sfi::serve
