// `sfi serve`: a long-running, multi-tenant campaign daemon.
//
// The paper sized campaigns up front; ROADMAP's service goal is the online
// form — submit a campaign with a (confidence, half-width) target and let
// the daemon stop dispatching the moment the per-stratum Wilson intervals
// are tight enough (serve/stop.hpp). The daemon multiplexes tenants over
// the existing execution engines: admitted campaigns run on the in-process
// scheduler (sched::run_campaign_to_store) or, when a submission asks for
// worker processes, on the farm coordinator — serve adds admission,
// statistics and durability bookkeeping, never a third execution path.
//
// Shape:
//   * one IO thread (the caller of run()) owns the listening socket and
//     every client connection, single-threaded poll() style; watchers are
//     plain connections whose outbox replays a campaign's event list.
//   * each admitted campaign runs on its own runner thread; runners talk to
//     the IO side only through the campaign table's mutex and atomics.
//   * every campaign is durable in state_dir: `campaign-<id>.sfr` is the
//     record store (the exact artifact `sfi report` reads) and
//     `campaign-<id>.json` a manifest (tenant, spec, state, stop point)
//     written atomically via tmp+rename. A restarted daemon re-adopts the
//     directory: finished campaigns are served from their manifest,
//     unfinished ones re-enter the queue and resume from their store —
//     early-stopped ones stay stopped, because the monitor re-counts the
//     committed records before the scheduler claims anything new.
//   * admission is fair-share across tenants: the queue is priced by
//     estimated work (injections x workload instructions — the cycle proxy
//     the store header exposes before any simulation runs) and the next
//     slot goes to the queued tenant with the least admitted spend, so one
//     tenant's 10^5-flip backlog cannot starve another's smoke test.
//
// Wire protocol: newline-delimited JSON (serve/wire.hpp). Requests are
// single objects ({"op":"submit",...}, "status", "watch", "ping",
// "shutdown"); watch replies stream the campaign's event list — the same
// {"ev":...,"t_us":...} JSONL shape the telemetry event log uses — one
// event per line, live until the campaign finishes.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/stop.hpp"
#include "serve/wire.hpp"
#include "sfi/campaign.hpp"
#include "telemetry/events.hpp"

namespace sfi::serve {

/// One submitted campaign's parameters (the "submit" request body).
struct CampaignSpec {
  std::string tenant = "default";
  u64 seed = 42;
  u64 testcase_seed = 2026;
  u32 instructions = 160;
  u32 n = 1000;  ///< fixed-N ceiling; early stop may finish well short of it
  StopTarget target;
  u32 threads = 0;  ///< 0: daemon default (1, for deterministic stop points)
  u32 workers = 0;  ///< >0: run on the farm with this many worker processes
  u32 shard_size = 16;
  u32 flush_records = 8;
  /// Injection engine ("inj_engine" on the wire — "engine" in status rows
  /// already names the dispatch mode, farm/sched). Outcome-neutral: stores
  /// resume under either engine, so adoption never has to re-check it.
  inject::EngineKind engine = inject::EngineKind::Scalar;
  u32 lanes = 64;  ///< lane-engine batch width (ignored by scalar)

  /// Queue price: estimated work before any simulation runs. Injections x
  /// workload instructions is proportional to replayed cycles for a fixed
  /// design, which is all fair-share needs.
  [[nodiscard]] u64 price() const {
    return static_cast<u64>(n) * instructions;
  }
};

enum class CampaignState : u8 {
  Queued,   ///< submitted, waiting for a slot
  Running,  ///< runner thread active (or interrupted mid-run: resumable)
  Done,     ///< finished (complete, early-stopped, or failed)
};

[[nodiscard]] std::string_view to_string(CampaignState s);

struct ServeConfig {
  /// Listen address (wire::parse_address grammar). Empty: unix socket
  /// `<state_dir>/sfi.sock`.
  std::string listen;
  /// Durable home of every campaign store + manifest. Created if missing.
  std::string state_dir;
  /// Campaigns running concurrently; queued beyond that.
  u32 max_active = 2;
  /// Scheduler threads per campaign when the submission leaves it 0. The
  /// default of 1 keeps early-stop points deterministic: a single worker
  /// claims the cycle-sorted dispatch order as an exact prefix, so a
  /// daemon-run campaign stopped at k records is byte-identical (after
  /// canonical merge) to `sfi campaign --threads 1 --max-new k`.
  u32 default_threads = 1;
  /// IO loop poll interval.
  double poll_seconds = 0.02;
  /// External stop (the CLI wires SIGINT/SIGTERM here). Running campaigns
  /// wind down cleanly and stay resumable.
  std::function<bool()> should_stop;
  /// Binary for farm-mode worker processes; empty uses this executable.
  std::string worker_binary;
  /// HTTP observability listener (wire::parse_address grammar; `tcp:0`
  /// binds an ephemeral port — read it back via http_address()). Empty:
  /// HTTP plane off. Serves GET /metrics (Prometheus 0.0.4 text exposition
  /// over every campaign's fleet metrics snapshot plus live early-stop
  /// gauges), /healthz and /campaigns (JSON). Strictly read-only: scraping
  /// never changes campaign behaviour or store bytes.
  std::string http;
  /// Farm-worker metrics cadence while the HTTP plane is on: workers
  /// serialize a cumulative snapshot ('M' frame) every N injections so
  /// /metrics covers the whole fleet, not just the coordinator. 0 = off.
  u32 metrics_every = 32;
  /// Flight-recorder ring size (recent telemetry lines kept in memory).
  /// When > 0 a fatal signal in the daemon dumps the ring to
  /// <state_dir>/serve.postmortem.jsonl, and farm-mode supervision
  /// failures (crash / watchdog kill / strikeout) dump to
  /// <store>.postmortem.jsonl. 0 disables the recorder.
  u32 flight_recorder_slots = 2048;
};

class Daemon {
 public:
  explicit Daemon(ServeConfig cfg);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Serve until shutdown (external should_stop, request_stop(), or a
  /// "shutdown" request). Returns 0 on a clean exit.
  int run();

  /// Thread-safe graceful stop (what a "shutdown" request calls).
  void request_stop() { stop_requested_.store(true); }

  /// The resolved listen address (for tests and the CLI banner).
  [[nodiscard]] const Address& address() const { return addr_; }

  /// True when the HTTP observability listener is bound.
  [[nodiscard]] bool http_enabled() const { return http_fd_ >= 0; }
  /// The resolved HTTP listen address (the ephemeral port of `tcp:0` is
  /// filled in at construction). Meaningful only when http_enabled().
  [[nodiscard]] const Address& http_address() const { return http_addr_; }

 private:
  struct Campaign;
  struct Conn;

  // --- lifecycle ---
  void adopt_state_dir();
  void admit_ready();
  void reap_finished();
  void begin_shutdown();
  void run_one(Campaign& c);
  void finalize(Campaign& c, bool failed, const std::string& error);
  void write_manifest(const Campaign& c);

  // --- IO ---
  void pump_io();
  void accept_clients(int listen_fd, bool http);
  void handle_line(Conn& conn, const std::string& line);
  void handle_submit(Conn& conn, const Json& req);
  void handle_status(Conn& conn);
  void handle_watch(Conn& conn, const Json& req);
  void push_watch_events();

  // --- HTTP observability plane (read-only) ---
  void handle_http(Conn& conn);
  [[nodiscard]] std::string metrics_text();
  [[nodiscard]] std::string campaigns_json();

  // --- events ---
  [[nodiscard]] u64 now_us() const;
  void emit(Campaign& c, const std::string& line);
  void ensure_final_event(Campaign& c);
  [[nodiscard]] std::string finish_event_json(
      const Campaign& c, const inject::CampaignAggregate& agg) const;

  ServeConfig cfg_;
  Address addr_;
  Address http_addr_;
  int listen_fd_ = -1;
  int http_fd_ = -1;  ///< HTTP observability listener (-1: plane off)
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stopping_{false};  ///< shutdown begun (runners see this)
  std::chrono::steady_clock::time_point epoch_;

  /// Guards campaigns_ (map and member fields without their own atomics)
  /// and tenant_spend_. Never held across simulation work or blocking IO.
  std::mutex mu_;
  std::map<u64, std::unique_ptr<Campaign>> campaigns_;
  std::map<std::string, u64> tenant_spend_;  ///< admitted price per tenant
  u64 next_id_ = 1;

  std::vector<std::unique_ptr<Conn>> conns_;
  telemetry::EventLog log_;  ///< daemon-wide flight recorder (JSONL)
};

}  // namespace sfi::serve
