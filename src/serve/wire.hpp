// Wire protocol pieces for `sfi serve`: a minimal JSON value/parser, the
// listen/connect address grammar, and blocking line-channel helpers.
//
// The protocol is newline-delimited JSON — the same shape the telemetry
// JSONL event log already uses — so the daemon's event stream IS the watch
// wire format and `sfi watch` is a line pump, not a translator. The repo's
// telemetry layer only ever needed to *emit* JSON (telemetry::JsonWriter);
// the daemon is the first consumer, hence the small recursive-descent
// parser here. It covers exactly the subset the protocol uses (objects,
// arrays, strings, numbers, booleans, null) and rejects everything else.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace sfi::serve {

/// Thrown on malformed wire input (bad JSON, bad address, socket failure).
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An immutable parsed JSON value.
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Object, Array };

  /// Parse one JSON document; trailing non-whitespace throws WireError.
  static Json parse(std::string_view text);

  Json() = default;

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;

  /// Typed accessors with defaults (lenient: absent/mistyped -> default).
  [[nodiscard]] std::string get_str(const std::string& key,
                                    const std::string& dflt) const;
  [[nodiscard]] double get_num(const std::string& key, double dflt) const;
  [[nodiscard]] u64 get_u64(const std::string& key, u64 dflt) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool dflt) const;

  [[nodiscard]] const std::string& str() const { return str_; }
  [[nodiscard]] double num() const { return num_; }
  [[nodiscard]] bool boolean() const { return bool_; }
  [[nodiscard]] const std::vector<Json>& items() const { return items_; }

  /// Construction helpers (used by the parser; not a builder API — the
  /// emission side of the protocol is telemetry::JsonWriter).
  static Json make_bool(bool v);
  static Json make_number(double v);
  static Json make_string(std::string v);
  static Json make_array(std::vector<Json> items);
  static Json make_object(std::map<std::string, Json> members);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;                 ///< array elements
  std::map<std::string, Json> members_;     ///< object members
};

/// A daemon address: `unix:PATH`, `tcp:HOST:PORT`, `tcp:PORT` (localhost),
/// or a bare filesystem path (treated as unix). Unix sockets are the
/// default because the state dir is already the daemon's natural home.
struct Address {
  bool tcp = false;
  std::string path;  ///< unix socket path
  std::string host;  ///< tcp host
  u16 port = 0;      ///< tcp port
  [[nodiscard]] std::string describe() const;
};

[[nodiscard]] Address parse_address(const std::string& spec);

/// Bind + listen (non-blocking fd). A stale unix socket file is replaced.
/// Throws WireError on failure.
[[nodiscard]] int listen_on(const Address& addr);

/// Blocking connect. Throws WireError on failure.
[[nodiscard]] int connect_to(const Address& addr);

/// Blocking newline-delimited IO over a connected socket fd. Sends never
/// raise SIGPIPE (a dead peer surfaces as a false return instead — the
/// daemon must outlive any watcher).
class LineChannel {
 public:
  explicit LineChannel(int fd) : fd_(fd) {}
  ~LineChannel() { close(); }
  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;

  /// Send `line` + '\n'. False on a closed/broken peer.
  bool send_line(const std::string& line);
  /// Receive one line (without the '\n'). False on EOF or error.
  bool recv_line(std::string& out);

  [[nodiscard]] int fd() const { return fd_; }
  void close();

 private:
  int fd_ = -1;
  std::string buf_;
};

}  // namespace sfi::serve
