// Sequential early stop: the online form of the paper's sample-size
// argument. A fixed-N campaign picks N up front from a guessed proportion
// (stats::required_sample_size); the serve daemon instead watches the
// per-stratum Wilson intervals narrow as committed records arrive and stops
// dispatching the moment every stratum's half-width is under the submitted
// target — the statistics, not a guess, decide when enough flips have run.
//
// Counting is commit-gated: StopMonitor tails the campaign's own store
// through store::FrameTail, so a record participates in the decision only
// once its frame is sealed by a commit marker on disk. "Counted" therefore
// always equals "durable", and the stop point the daemon records is exactly
// the set of records an offline `sfi report` of the store will see.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sfi/aggregate.hpp"
#include "stats/intervals.hpp"
#include "store/codec.hpp"
#include "store/tail.hpp"

namespace sfi::serve {

/// What a submitted campaign asks of its estimate.
struct StopTarget {
  double confidence = stats::kDefaultConfidence;
  /// Required Wilson half-width for every stratum proportion.
  double half_width = 0.02;
  /// Additionally require the per-unit outcome strata (units observed so
  /// far) to meet the target, not just the overall outcome proportions.
  bool by_unit = false;

  [[nodiscard]] double z() const {
    return stats::z_for_confidence(confidence);
  }
};

/// One stratum's live interval, for reports and the `interval` event.
struct StratumInterval {
  std::string stratum;  ///< "Vanished", or "IFU/Hang" in by-unit mode
  u64 count = 0;
  u64 n = 0;
  stats::Interval interval;
  [[nodiscard]] double half_width() const { return interval.width() / 2.0; }
};

/// Wilson intervals for every stratum the target covers, at the target's
/// confidence. Empty when no records have been counted yet.
[[nodiscard]] std::vector<StratumInterval> stratum_intervals(
    const inject::CampaignAggregate& agg, const StopTarget& target);

/// True when every stratum interval is at or under the target half-width
/// (never true before the first record).
[[nodiscard]] bool target_met(const inject::CampaignAggregate& agg,
                              const StopTarget& target);

/// The widest current half-width (the binding stratum), or a negative value
/// before any record.
[[nodiscard]] double widest_half_width(const inject::CampaignAggregate& agg,
                                       const StopTarget& target);

/// Online stop decision over committed records.
///
/// Two feeding modes, matching the two execution paths:
///   * tail mode (in-process scheduler): construct with the store path; each
///     poll() reads newly committed 'R' frames straight from the store the
///     scheduler is writing.
///   * observe mode (farm): construct without a path; the farm coordinator's
///     on_record callback — itself commit-gated via the shard FrameTails —
///     feeds records through observe().
/// Either way records are deduplicated by index (resume replays overlap).
class StopMonitor {
 public:
  StopMonitor(std::string store_path, u32 num_injections, StopTarget target);
  StopMonitor(u32 num_injections, StopTarget target);

  /// Tail mode: drain newly committed records. Returns how many were new.
  std::size_t poll();

  /// Observe mode entry point (also usable in tail mode for testing).
  void observe(const store::StoredRecord& rec);

  [[nodiscard]] bool met() const { return met_; }
  [[nodiscard]] u64 committed() const { return committed_; }
  [[nodiscard]] const inject::CampaignAggregate& agg() const { return agg_; }
  [[nodiscard]] const StopTarget& target() const { return target_; }

 private:
  void add(const store::StoredRecord& rec);

  StopTarget target_;
  std::optional<store::FrameTail> tail_;
  std::vector<bool> seen_;
  inject::CampaignAggregate agg_;
  u64 committed_ = 0;
  bool met_ = false;
};

}  // namespace sfi::serve
