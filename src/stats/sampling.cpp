#include "stats/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/check.hpp"

namespace sfi::stats {
namespace {

/// Standard normal draw (Box–Muller, one branch of the pair).
double standard_normal(Xoshiro256& rng) {
  double u1 = rng.uniform();
  if (u1 <= 0.0) u1 = 1e-300;
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace

std::vector<u64> sample_without_replacement(u64 n, u64 k, Xoshiro256& rng) {
  require(k <= n, "sample_without_replacement k <= n");
  std::vector<u64> out;
  out.reserve(k);
  if (k == 0) return out;

  // Dense case: partial Fisher-Yates over an explicit pool.
  if (k * 3 >= n) {
    std::vector<u64> pool(n);
    std::iota(pool.begin(), pool.end(), u64{0});
    for (u64 i = 0; i < k; ++i) {
      const u64 j = i + rng.below(n - i);
      std::swap(pool[i], pool[j]);
      out.push_back(pool[i]);
    }
    return out;
  }

  // Sparse case: Floyd's algorithm.
  std::unordered_set<u64> seen;
  seen.reserve(static_cast<std::size_t>(k * 2));
  for (u64 j = n - k; j < n; ++j) {
    const u64 t = rng.below(j + 1);
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

void shuffle(std::span<u64> xs, Xoshiro256& rng) {
  for (std::size_t i = xs.size(); i > 1; --i) {
    const u64 j = rng.below(i);
    std::swap(xs[i - 1], xs[j]);
  }
}

std::size_t weighted_index(std::span<const double> weights, Xoshiro256& rng) {
  require(!weights.empty(), "weighted_index needs weights");
  double total = 0.0;
  for (const double w : weights) {
    require(w >= 0.0, "weighted_index weights >= 0");
    total += w;
  }
  require(total > 0.0, "weighted_index total weight > 0");
  double x = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;  // numerical slack lands on the last bucket
}

u64 poisson(double lambda, Xoshiro256& rng) {
  require(lambda >= 0.0, "poisson lambda >= 0");
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-lambda);
    u64 k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= rng.uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the beam
  // arrival process where lambda is a modelling knob, not physics.
  const double x = lambda + std::sqrt(lambda) * standard_normal(rng);
  return x <= 0.0 ? 0 : static_cast<u64>(std::llround(x));
}

}  // namespace sfi::stats
