// Deterministic, splittable random number generation.
//
// Every SFI experiment is seeded; campaigns must be reproducible regardless
// of thread count, so each injection derives its own stream from
// (campaign seed, injection index) via SplitMix64, and heavier sampling uses
// xoshiro256** seeded from SplitMix64 as its authors recommend.
#pragma once

#include <array>

#include "common/check.hpp"
#include "common/types.hpp"

namespace sfi::stats {

/// SplitMix64: tiny, fast, passes BigCrush; ideal for seeding and for
/// deriving independent streams from (seed, index) pairs.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(u64 seed) : state_(seed) {}

  constexpr u64 next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    u64 z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// xoshiro256**: the general-purpose generator used by all samplers.
class Xoshiro256 {
 public:
  using result_type = u64;

  explicit constexpr Xoshiro256(u64 seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr u64 min() { return 0; }
  static constexpr u64 max() { return ~u64{0}; }

  constexpr u64 operator()() { return next(); }

  constexpr u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's unbiased multiply-shift with
  /// rejection.
  constexpr u64 below(u64 bound) {
    ensure(bound > 0, "Xoshiro256::below bound > 0");
    u64 x = next();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    auto lo = static_cast<u64>(m);
    if (lo < bound) {
      const u64 threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<unsigned __int128>(x) * bound;
        lo = static_cast<u64>(m);
      }
    }
    return static_cast<u64>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  constexpr bool chance(double p) { return uniform() < p; }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  std::array<u64, 4> state_{};
};

/// Derive a fresh, statistically independent stream for item `index` of an
/// experiment with the given master seed.
[[nodiscard]] constexpr u64 derive_seed(u64 master_seed, u64 index) {
  SplitMix64 sm(master_seed ^ (index * 0xD1B54A32D192ED03ULL + 0x2545F4914F6CDD1DULL));
  sm.next();
  return sm.next();
}

}  // namespace sfi::stats
