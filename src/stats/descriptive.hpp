// Descriptive statistics used by the sample-size study (paper Figure 2) and
// by the experiment reports.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace sfi::stats {

/// Summary of a sample: n, mean, (sample) standard deviation, min, max.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample stddev (n-1 denominator); 0 when n < 2
  double min = 0.0;
  double max = 0.0;

  /// σ/µ — the paper's Figure 2 y-axis ("standard deviation as a fraction of
  /// the mean"). 0 when the mean is 0.
  [[nodiscard]] double stddev_over_mean() const {
    return mean == 0.0 ? 0.0 : stddev / mean;
  }
};

/// One-pass (Welford) summary of a data set.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Streaming Welford accumulator for use inside campaign loops.
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] Summary summary() const;
  [[nodiscard]] std::size_t count() const { return n_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Population percentile (nearest-rank) of an unsorted sample. p in [0,100].
[[nodiscard]] double percentile(std::vector<double> xs, double p);

}  // namespace sfi::stats
