#include "stats/intervals.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace sfi::stats {

namespace {

/// Inverse standard-normal CDF (Acklam's rational approximation, |e| <
/// 1.15e-9 over (0,1)), refined by one Halley step against std::erfc so the
/// quantile is accurate to full double precision for every confidence level
/// a campaign would ask for.
double inverse_normal_cdf(double p) {
  constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                          -2.759285104469687e+02, 1.383577518672690e+02,
                          -3.066479806614716e+01, 2.506628277459239e+00};
  constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                          -1.556989798598866e+02, 6.680131188771972e+01,
                          -1.328068155288572e+01};
  constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                          -2.400758277161838e+00, -2.549732539343734e+00,
                          4.374664141464968e+00,  2.938163982698783e+00};
  constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                          2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley iteration: e = CDF(x) - p via erfc, u = e / pdf(x).
  const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  return x - u / (1.0 + x * u / 2.0);
}

}  // namespace

double z_for_confidence(double confidence) {
  require(confidence > 0.0 && confidence < 1.0,
          "z_for_confidence needs confidence in (0,1)");
  return inverse_normal_cdf(0.5 + confidence / 2.0);
}

Interval wilson(std::size_t successes, std::size_t n, double z) {
  require(n > 0, "wilson interval needs n > 0");
  require(successes <= n, "wilson successes <= n");
  require(z > 0.0, "wilson z > 0");
  const double nn = static_cast<double>(n);
  const double phat = static_cast<double>(successes) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = phat + z2 / (2.0 * nn);
  const double margin =
      z * std::sqrt(phat * (1.0 - phat) / nn + z2 / (4.0 * nn * nn));
  Interval iv;
  iv.low = std::max(0.0, (center - margin) / denom);
  iv.high = std::min(1.0, (center + margin) / denom);
  return iv;
}

std::size_t required_sample_size(double p, double half_width, double z) {
  require(p >= 0.0 && p <= 1.0, "required_sample_size p in [0,1]");
  require(half_width > 0.0, "required_sample_size half_width > 0");
  require(z > 0.0, "required_sample_size z > 0");
  // A Wilson interval is confined to [0,1], so its half-width can never
  // exceed 0.5: any target that loose is met by a single observation.
  if (half_width >= 0.5) return 1;
  // Normal-approximation sizing n = z^2 p(1-p) / w^2, then verify/adjust
  // against the exact Wilson width (which is wider for tiny p). The variance
  // floor keeps the degenerate ends (p == 0, p == 1, where the sampling
  // variance term vanishes) from collapsing the start point to 0; the Wilson
  // loop below then grows n until the interval around 0 (or n) hits really
  // is narrow enough.
  const double pw = std::max(p * (1.0 - p), 1e-6);
  const double approx = z * z * pw / (half_width * half_width);
  // Cap before the float->int cast: for absurdly tight targets the
  // approximation exceeds the exactly-representable integer range and the
  // cast would be undefined.
  constexpr double kMaxN = 9.0e15;
  auto n = approx >= kMaxN
               ? static_cast<std::size_t>(kMaxN)
               : std::max<std::size_t>(
                     static_cast<std::size_t>(std::ceil(approx)), 1);
  const auto hits = [p](std::size_t m) {
    return static_cast<std::size_t>(std::llround(p * static_cast<double>(m)));
  };
  while (n < static_cast<std::size_t>(kMaxN) &&
         wilson(hits(n), n, z).width() / 2.0 > half_width) {
    n += std::max<std::size_t>(n / 8, 1);
  }
  return n;
}

}  // namespace sfi::stats
