#include "stats/intervals.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace sfi::stats {

Interval wilson(std::size_t successes, std::size_t n, double z) {
  require(n > 0, "wilson interval needs n > 0");
  require(successes <= n, "wilson successes <= n");
  require(z > 0.0, "wilson z > 0");
  const double nn = static_cast<double>(n);
  const double phat = static_cast<double>(successes) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = phat + z2 / (2.0 * nn);
  const double margin =
      z * std::sqrt(phat * (1.0 - phat) / nn + z2 / (4.0 * nn * nn));
  Interval iv;
  iv.low = std::max(0.0, (center - margin) / denom);
  iv.high = std::min(1.0, (center + margin) / denom);
  return iv;
}

std::size_t required_sample_size(double p, double half_width, double z) {
  require(p >= 0.0 && p <= 1.0, "required_sample_size p in [0,1]");
  require(half_width > 0.0, "required_sample_size half_width > 0");
  // Normal-approximation sizing n = z^2 p(1-p) / w^2, then verify/adjust
  // against the exact Wilson width (which is wider for tiny p).
  const double pw = std::max(p * (1.0 - p), 1e-6);
  auto n = static_cast<std::size_t>(
      std::ceil(z * z * pw / (half_width * half_width)));
  n = std::max<std::size_t>(n, 1);
  const auto hits = [p](std::size_t m) {
    return static_cast<std::size_t>(std::llround(p * static_cast<double>(m)));
  };
  while (wilson(hits(n), n, z).width() / 2.0 > half_width) {
    n += std::max<std::size_t>(n / 8, 1);
  }
  return n;
}

}  // namespace sfi::stats
