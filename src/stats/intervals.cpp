#include "stats/intervals.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace sfi::stats {

Interval wilson(std::size_t successes, std::size_t n, double z) {
  require(n > 0, "wilson interval needs n > 0");
  require(successes <= n, "wilson successes <= n");
  require(z > 0.0, "wilson z > 0");
  const double nn = static_cast<double>(n);
  const double phat = static_cast<double>(successes) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = phat + z2 / (2.0 * nn);
  const double margin =
      z * std::sqrt(phat * (1.0 - phat) / nn + z2 / (4.0 * nn * nn));
  Interval iv;
  iv.low = std::max(0.0, (center - margin) / denom);
  iv.high = std::min(1.0, (center + margin) / denom);
  return iv;
}

std::size_t required_sample_size(double p, double half_width, double z) {
  require(p >= 0.0 && p <= 1.0, "required_sample_size p in [0,1]");
  require(half_width > 0.0, "required_sample_size half_width > 0");
  require(z > 0.0, "required_sample_size z > 0");
  // A Wilson interval is confined to [0,1], so its half-width can never
  // exceed 0.5: any target that loose is met by a single observation.
  if (half_width >= 0.5) return 1;
  // Normal-approximation sizing n = z^2 p(1-p) / w^2, then verify/adjust
  // against the exact Wilson width (which is wider for tiny p). The variance
  // floor keeps the degenerate ends (p == 0, p == 1, where the sampling
  // variance term vanishes) from collapsing the start point to 0; the Wilson
  // loop below then grows n until the interval around 0 (or n) hits really
  // is narrow enough.
  const double pw = std::max(p * (1.0 - p), 1e-6);
  const double approx = z * z * pw / (half_width * half_width);
  // Cap before the float->int cast: for absurdly tight targets the
  // approximation exceeds the exactly-representable integer range and the
  // cast would be undefined.
  constexpr double kMaxN = 9.0e15;
  auto n = approx >= kMaxN
               ? static_cast<std::size_t>(kMaxN)
               : std::max<std::size_t>(
                     static_cast<std::size_t>(std::ceil(approx)), 1);
  const auto hits = [p](std::size_t m) {
    return static_cast<std::size_t>(std::llround(p * static_cast<double>(m)));
  };
  while (n < static_cast<std::size_t>(kMaxN) &&
         wilson(hits(n), n, z).width() / 2.0 > half_width) {
    n += std::max<std::size_t>(n / 8, 1);
  }
  return n;
}

}  // namespace sfi::stats
