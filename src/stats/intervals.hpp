// Confidence intervals for outcome proportions. The paper's statistical
// argument (§2.1) is about estimation error of category proportions at a
// given number of flips; Wilson score intervals quantify the same thing
// analytically and are reported alongside every campaign result.
#pragma once

#include <cstddef>

namespace sfi::stats {

/// A two-sided confidence interval for a proportion.
struct Interval {
  double low = 0.0;
  double high = 0.0;
  [[nodiscard]] double width() const { return high - low; }
  [[nodiscard]] bool contains(double p) const { return p >= low && p <= high; }
};

/// The confidence level every default interval in the repo is computed at
/// (the paper reports 95% throughout).
inline constexpr double kDefaultConfidence = 0.95;

/// Two-sided normal quantile for a confidence level in (0, 1):
/// z such that P(|Z| <= z) = confidence (z_for_confidence(0.95) ≈ 1.960,
/// 0.99 ≈ 2.576). This is the one place a confidence level becomes a z
/// value — callers must not hardcode 1.96-style constants.
[[nodiscard]] double z_for_confidence(double confidence);

/// Wilson score interval for `successes` out of `n` trials at confidence
/// given by z (defaults to the 95% quantile). Well-behaved for proportions
/// near 0 — exactly the regime of checkstop/SDC rates.
[[nodiscard]] Interval wilson(std::size_t successes, std::size_t n,
                              double z = z_for_confidence(kDefaultConfidence));

/// Sample size such that the Wilson interval half-width for an expected
/// proportion p is at most `half_width`. Used to justify the paper's "10k
/// flips suffice" observation analytically.
[[nodiscard]] std::size_t required_sample_size(
    double p, double half_width,
    double z = z_for_confidence(kDefaultConfidence));

}  // namespace sfi::stats
