// Confidence intervals for outcome proportions. The paper's statistical
// argument (§2.1) is about estimation error of category proportions at a
// given number of flips; Wilson score intervals quantify the same thing
// analytically and are reported alongside every campaign result.
#pragma once

#include <cstddef>

namespace sfi::stats {

/// A two-sided confidence interval for a proportion.
struct Interval {
  double low = 0.0;
  double high = 0.0;
  [[nodiscard]] double width() const { return high - low; }
  [[nodiscard]] bool contains(double p) const { return p >= low && p <= high; }
};

/// Wilson score interval for `successes` out of `n` trials at confidence
/// given by z (1.96 ≈ 95%). Well-behaved for proportions near 0 — exactly
/// the regime of checkstop/SDC rates.
[[nodiscard]] Interval wilson(std::size_t successes, std::size_t n,
                              double z = 1.96);

/// Sample size such that the Wilson interval half-width for an expected
/// proportion p is at most `half_width`. Used to justify the paper's "10k
/// flips suffice" observation analytically.
[[nodiscard]] std::size_t required_sample_size(double p, double half_width,
                                               double z = 1.96);

}  // namespace sfi::stats
