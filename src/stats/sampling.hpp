// Sampling utilities: k-of-n without replacement (Fisher–Yates over an index
// pool or Floyd's algorithm), shuffles, and weighted category draws. These
// drive latch selection ("randomly choose latches from all latches in the
// design", paper Figure 1) and the Figure 2 resampling study.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "stats/rng.hpp"

namespace sfi::stats {

/// Choose k distinct values from [0, n) uniformly at random.
/// Uses Floyd's algorithm (O(k) expected) — suitable for k << n — and a
/// partial Fisher–Yates when k is a large fraction of n.
[[nodiscard]] std::vector<u64> sample_without_replacement(u64 n, u64 k,
                                                          Xoshiro256& rng);

/// In-place Fisher–Yates shuffle.
void shuffle(std::span<u64> xs, Xoshiro256& rng);

/// Draw an index from a discrete distribution given non-negative weights.
/// Linear scan; intended for small weight vectors (per-unit cross-sections).
[[nodiscard]] std::size_t weighted_index(std::span<const double> weights,
                                         Xoshiro256& rng);

/// Poisson draw via inversion for small lambda and normal approximation for
/// large lambda. Used by the beam simulator's strike-arrival process.
[[nodiscard]] u64 poisson(double lambda, Xoshiro256& rng);

}  // namespace sfi::stats
