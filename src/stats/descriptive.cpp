#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace sfi::stats {

Summary summarize(std::span<const double> xs) {
  RunningStats rs;
  for (const double x : xs) rs.add(x);
  return rs.summary();
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

Summary RunningStats::summary() const {
  Summary s;
  s.n = n_;
  s.mean = mean_;
  s.stddev = n_ > 1 ? std::sqrt(m2_ / static_cast<double>(n_ - 1)) : 0.0;
  s.min = min_;
  s.max = max_;
  return s;
}

double percentile(std::vector<double> xs, double p) {
  require(!xs.empty(), "percentile of empty sample");
  require(p >= 0.0 && p <= 100.0, "percentile p in [0,100]");
  std::sort(xs.begin(), xs.end());
  if (p == 0.0) return xs.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(xs.size())));
  return xs[rank - 1];
}

}  // namespace sfi::stats
