// Campaign scheduler: sharded, streaming, resumable execution of a fault
// injection campaign into a durable store (src/store/).
//
// The in-memory path (inject::run_campaign) holds every record until the
// end and loses everything on interruption; production campaigns of 10^5+
// injections cannot afford that. The scheduler instead:
//
//   * splits the campaign's index space into shards,
//   * runs shards on a worker pool where each worker owns a private
//     simulation environment (paper §2.2),
//   * streams completed records into the store as they finish — appends
//     are order-insensitive because records carry their index — with a
//     bounded, flush-throttled at-risk window,
//   * reports progress through a callback,
//   * and resumes exactly: injection i derives its RNG stream from
//     (seed, i), so a restarted campaign validates the store's campaign
//     fingerprint, truncates any torn tail, skips persisted indices and
//     re-derives only the missing faults. The canonical merge of an
//     interrupted-then-resumed store is byte-identical to that of an
//     uninterrupted run (tests/test_store.cpp proves this).
#pragma once

#include <cmath>
#include <functional>
#include <optional>
#include <string>

#include "sfi/campaign.hpp"
#include "store/reader.hpp"

namespace sfi::sched {

struct Progress {
  u64 done = 0;      ///< persisted records, including resumed ones
  u64 total = 0;     ///< campaign size
  u64 resumed = 0;   ///< records inherited from a previous run
  u64 executed = 0;  ///< injections newly run by this invocation so far
  /// Wall seconds since this invocation entered run_campaign_to_store —
  /// executed / wall_seconds is the live injection rate.
  double wall_seconds = 0.0;
  /// Monotonic (steady-clock) stamp of this report in microseconds, so
  /// consumers can compute inter-report rates without their own clock.
  u64 steady_us = 0;

  /// Live injection rate, or nullopt until the measurement window is real.
  /// The first report of a run fires before any injection completes
  /// (executed == 0, wall ~ 0); a naive executed/wall there is 0, inf or
  /// nan depending on clock resolution — consumers must render nullopt as
  /// "—", never divide themselves.
  [[nodiscard]] std::optional<double> rate_per_s() const {
    if (executed == 0 || !(wall_seconds > 0.0)) return std::nullopt;
    const double r = static_cast<double>(executed) / wall_seconds;
    if (!std::isfinite(r)) return std::nullopt;
    return r;
  }

  /// Seconds until done reaches total at rate_per_s(); nullopt whenever the
  /// rate is (and on a done > total resume overshoot, which a cancelled
  /// --max-new campaign can produce).
  [[nodiscard]] std::optional<double> eta_seconds() const {
    const auto r = rate_per_s();
    if (!r || done > total) return std::nullopt;
    return static_cast<double>(total - done) / *r;
  }
};

struct SchedulerConfig {
  u32 threads = 0;        ///< 0: campaign config threads, else hardware
  u32 shard_size = 64;    ///< injections per shard (work-stealing unit)
  u32 flush_records = 32; ///< records a worker batches between store appends
  /// Stop after this many newly executed injections (0 = run to completion).
  /// This is the test hook that simulates an interrupted campaign without
  /// killing the process.
  u64 max_new_injections = 0;
  /// Cooperative stop: polled before each injection is claimed. When it
  /// returns true workers stop claiming, flush their at-risk buffers, and
  /// the store is closed cleanly (no torn tail) — this is how `sfi campaign`
  /// turns SIGINT/SIGTERM into an ordinary resumable interruption instead
  /// of leaning on torn-tail truncation.
  std::function<bool()> should_stop;
  /// Called under the store lock after every flushed batch.
  std::function<void(const Progress&)> on_progress;
};

struct ScheduledResult {
  store::CampaignMeta meta;
  /// Aggregation over every record now in the store (resumed + new).
  inject::CampaignAggregate agg;
  u64 executed = 0;   ///< injections run by this invocation
  u64 resumed = 0;    ///< injections skipped because already persisted
  u64 footprints = 0; ///< propagation footprints persisted this invocation
  u64 shards = 0;     ///< shards dispatched this invocation
  bool complete = false;  ///< store now covers all num_injections indices
  bool stopped = false;   ///< should_stop() interrupted dispatch
  double wall_seconds = 0.0;
  u64 cycles_evaluated = 0;
  /// Replay cycles skipped by warm-starting from reference checkpoints.
  u64 cycles_fast_forwarded = 0;
  /// Host checkpoint interactions (saves + restores) across all workers.
  u64 checkpoint_ops = 0;
  /// Resident reference checkpoints and their encoded footprint.
  std::size_t checkpoints = 0;
  u64 checkpoint_bytes = 0;

  [[nodiscard]] double injections_per_second() const {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(executed) / wall_seconds;
  }
};

/// Identity of the workload a campaign ran (hash of program image + config).
[[nodiscard]] u64 workload_id(const avp::Testcase& testcase);

/// Fingerprint of everything that shapes fault generation and outcome
/// classification for a campaign. Resume refuses a store whose fingerprint
/// differs: its records would not be re-derivable from (seed, i).
[[nodiscard]] u64 campaign_fingerprint(const inject::CampaignConfig& config,
                                       const inject::CampaignPlan& plan);

/// Build the store header for (testcase, config, plan).
[[nodiscard]] store::CampaignMeta make_campaign_meta(
    const avp::Testcase& testcase, const inject::CampaignConfig& config,
    const inject::CampaignPlan& plan);

/// Run (or resume) a campaign, streaming records into the store at
/// `store_path`. With `resume` true and an existing store: validate it,
/// truncate a torn tail, execute only missing indices. With `resume` false
/// the store is created fresh (an existing file is overwritten).
ScheduledResult run_campaign_to_store(const avp::Testcase& testcase,
                                      const inject::CampaignConfig& config,
                                      const std::string& store_path,
                                      const SchedulerConfig& sched = {},
                                      bool resume = false);

}  // namespace sfi::sched
