#include "sched/scheduler.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <thread>

#include "common/hash.hpp"
#include "sfi/engine.hpp"
#include "store/writer.hpp"
#include "telemetry/json.hpp"

namespace sfi::sched {

u64 workload_id(const avp::Testcase& tc) {
  u64 h = mix64(tc.config.seed ^
                (static_cast<u64>(tc.config.num_instructions) << 32));
  h = mix64(h ^ tc.program.entry);
  h = mix64(h ^ tc.program.code_base);
  for (const u32 word : tc.program.code) h = mix64(h ^ word);
  for (const auto& blob : tc.program.data) {
    h = mix64(h ^ blob.addr);
    h = hash_bytes(std::span<const u8>(blob.bytes.data(), blob.bytes.size()),
                   h);
  }
  return h;
}

u64 campaign_fingerprint(const inject::CampaignConfig& cfg,
                         const inject::CampaignPlan& plan) {
  u64 h = mix64(0x5F1C0DE5u ^ static_cast<u64>(plan.population.size()));
  // The population ordinal set pins down any filter the campaign ran with
  // (filters themselves are opaque callables and cannot be hashed).
  for (const u32 ord : plan.population.ordinals()) h = mix64(h ^ ord);
  h = mix64(h ^ plan.window_begin);
  h = mix64(h ^ plan.window_end);
  h = mix64(h ^ static_cast<u64>(cfg.mode));
  h = mix64(h ^ cfg.sticky_duration);
  h = mix64(h ^ cfg.run.hang_margin);
  h = mix64(h ^ cfg.run.horizon);
  h = mix64(h ^ (cfg.run.early_exit ? 1u : 0u));
  h = mix64(h ^ (cfg.core.checkers_enabled ? 2u : 0u));
  h = mix64(h ^ cfg.core.checker_mask);
  h = mix64(h ^ cfg.core.watchdog_timeout);
  h = mix64(h ^ cfg.core.recovery_threshold);
  h = mix64(h ^ cfg.core.recovery_timeout);
  h = mix64(h ^ (cfg.core.recovery_enabled ? 4u : 0u));
  // cfg.footprint, cfg.telemetry, cfg.engine and cfg.lanes are deliberately
  // NOT part of the fingerprint: forensics/telemetry are observability-only,
  // and the engine choice is a speed knob whose records are byte-identical
  // (gated by the engine A/B CI job) — so a store written under one engine
  // resumes cleanly under the other.
  return h;
}

store::CampaignMeta make_campaign_meta(const avp::Testcase& tc,
                                       const inject::CampaignConfig& cfg,
                                       const inject::CampaignPlan& plan) {
  store::CampaignMeta meta;
  meta.seed = cfg.seed;
  meta.num_injections = cfg.num_injections;
  meta.config_fingerprint = campaign_fingerprint(cfg, plan);
  meta.workload_id = workload_id(tc);
  meta.population_size = plan.population.size();
  meta.workload_cycles = plan.trace.completion_cycle;
  meta.workload_instructions = plan.golden.instructions;
  meta.window_begin = plan.window_begin;
  meta.window_end = plan.window_end;
  return meta;
}

ScheduledResult run_campaign_to_store(const avp::Testcase& tc,
                                      const inject::CampaignConfig& cfg,
                                      const std::string& store_path,
                                      const SchedulerConfig& sched,
                                      bool resume) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto wall_now = [t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  const auto steady_us_now = [] {
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };

  inject::CampaignTelemetry* tel = cfg.telemetry;
  if (tel != nullptr) {
    // The resumed count is only known after the store scan below; the
    // resume event carries it.
    tel->campaign_start("campaign", cfg.seed, cfg.num_injections,
                        /*resumed=*/0);
  }

  const inject::CampaignPlan plan = inject::plan_campaign(tc, cfg);
  const store::CampaignMeta meta = make_campaign_meta(tc, cfg, plan);

  ScheduledResult result;
  result.meta = meta;

  std::vector<bool> done(cfg.num_injections, false);

  // --- resume: inherit every intact record of a compatible prior run ---
  bool fresh_store = true;
  if (resume && std::filesystem::exists(store_path)) {
    const store::StoreContents prior =
        store::read_store(store_path, {.tolerate_torn_tail = true});
    if (!prior.meta.same_campaign(meta)) {
      throw store::StoreError(
          "refusing to resume " + store_path +
          ": it records a different campaign (seed/config/workload "
          "fingerprint mismatch) — rerun without --resume to overwrite");
    }
    if (prior.torn_tail) {
      // Drop the torn final frame; its injection will simply be re-run.
      std::filesystem::resize_file(store_path, prior.valid_bytes);
    }
    for (const store::StoredRecord& sr : prior.records) {
      if (sr.index >= cfg.num_injections) {
        throw store::StoreError("record index out of range in " + store_path);
      }
      if (!done[sr.index]) {
        done[sr.index] = true;
        result.agg.add(sr.rec);
        ++result.resumed;
      }
    }
    fresh_store = false;
  }
  if (tel != nullptr && resume) {
    if (auto* log = tel->events()) {
      telemetry::JsonWriter w;
      w.begin_object()
          .field("ev", "resume")
          .field("t_us", tel->now_us())
          .field("resumed", result.resumed)
          .field("store", store_path)
          .end_object();
      log->emit(w.str());
    }
  }

  // Commit markers seal each flush window so a crash can be rolled back to
  // a whole-window boundary (no orphaned 'R' whose 'P' was lost).
  const store::WriteOptions wopts{.commit_markers = true};
  store::StoreWriter writer =
      fresh_store ? store::StoreWriter::create(store_path, meta, wopts)
                  : store::StoreWriter::append_to(store_path, wopts);

  // --- shard the remaining index space, cycle-sorted ---
  // Workers warm-start from the plan's checkpoint store; handing out
  // injections in fault-cycle order keeps each worker's materialized
  // checkpoint hot across a shard. Records carry their index, so store
  // ordering, resume and canonical merge are unaffected.
  std::vector<u32> pending;
  pending.reserve(cfg.num_injections - result.resumed);
  for (const u32 i : plan.cycle_sorted_indices()) {
    if (!done[i]) pending.push_back(i);
  }

  // The lane engine batches up to cfg.lanes in-flight injections per claim
  // stream; shards below that would cap its batch size, so they grow to
  // match. Shard boundaries are progress/telemetry granularity only —
  // records are identical at any shard size.
  const u32 shard_size =
      std::max(std::max(1u, sched.shard_size),
               cfg.engine == inject::EngineKind::Lanes ? cfg.lanes : 1u);
  const u64 num_shards =
      (pending.size() + shard_size - 1) / shard_size;
  const u64 cap = sched.max_new_injections == 0
                      ? pending.size()
                      : std::min<u64>(sched.max_new_injections,
                                      pending.size());

  if (sched.on_progress) {
    sched.on_progress({result.resumed, cfg.num_injections, result.resumed, 0,
                       wall_now(), steady_us_now()});
  }

  std::atomic<u64> next_shard{0};
  std::atomic<u64> claimed{0};
  std::atomic<bool> stop_observed{false};
  std::atomic<u64> cycles_evaluated{0};
  std::atomic<u64> cycles_fast_forwarded{0};
  std::atomic<u64> checkpoint_ops{0};
  std::mutex store_mu;
  u64 persisted = result.resumed;  // guarded by store_mu
  u64 executed_live = 0;           // guarded by store_mu

  const auto work = [&](inject::InjectionEngine& eng, u32 tid) {
    inject::WorkerTelemetry* wt =
        tel != nullptr ? &tel->worker(tid) : nullptr;
    std::vector<store::StoredRecord> buf;
    buf.reserve(sched.flush_records);
    std::vector<inject::PropagationRecord> fp_buf;
    inject::CampaignAggregate local;
    u64 local_footprints = 0;

    const auto flush = [&] {
      // Fold this worker's metrics shard into the registry at every flush
      // boundary: live readers (the daemon's /metrics scrape) then see
      // near-current totals without ever touching a foreign shard. The
      // worker thread owns the shard, so this is race-free by construction.
      if (wt != nullptr) wt->fold();
      if (buf.empty() && fp_buf.empty()) return;
      const std::lock_guard<std::mutex> lock(store_mu);
      writer.append(std::span<const store::StoredRecord>(buf.data(),
                                                         buf.size()));
      // Footprints ride in the same flush window: a crash tears at most one
      // frame, and resume re-runs the injections whose records were lost
      // (re-tracing their footprints with them).
      for (const inject::PropagationRecord& fp : fp_buf) {
        writer.append_propagation(fp);
      }
      writer.flush();
      persisted += buf.size();
      executed_live += buf.size();
      if (sched.on_progress) {
        sched.on_progress({persisted, cfg.num_injections, result.resumed,
                           executed_live, wall_now(), steady_us_now()});
      }
      local_footprints += fp_buf.size();
      buf.clear();
      fp_buf.clear();
    };

    bool capped = false;
    while (!capped) {
      const u64 shard = next_shard.fetch_add(1, std::memory_order_relaxed);
      if (shard >= num_shards) break;
      const std::size_t begin = shard * shard_size;
      const std::size_t end =
          std::min<std::size_t>(begin + shard_size, pending.size());
      if (wt != nullptr) wt->shard_begin(shard, end - begin);
      u64 shard_executed = 0;
      // The engine pulls claims one at a time; stop/cap checks live in the
      // claim callback so an engine holding lanes in flight still stops
      // claiming the moment either fires (everything already claimed is
      // finished and emitted — the engine contract).
      std::size_t p = begin;
      eng.run(
          [&]() -> std::optional<u32> {
            if (p >= end) return std::nullopt;
            // Cooperative interruption (SIGINT/SIGTERM): stop claiming
            // work, fall through to the final flush so every finished
            // record lands.
            if (sched.should_stop && sched.should_stop()) {
              stop_observed.store(true, std::memory_order_relaxed);
              capped = true;
              return std::nullopt;
            }
            // Claim one execution slot; the cap models an interrupted run.
            if (claimed.fetch_add(1, std::memory_order_relaxed) >= cap) {
              capped = true;
              return std::nullopt;
            }
            return pending[p++];
          },
          [&](u32 index, const inject::InjectionRecord& rec,
              std::optional<inject::PropagationRecord> fp) {
            store::StoredRecord sr;
            sr.index = index;
            sr.rec = rec;
            local.add(sr.rec);
            buf.push_back(sr);
            if (fp) fp_buf.push_back(std::move(*fp));
            ++shard_executed;
            if (buf.size() >= std::max(1u, sched.flush_records)) flush();
          },
          wt);
      if (wt != nullptr) wt->shard_end(shard, shard_executed);
    }
    flush();
    cycles_evaluated.fetch_add(eng.cycles_evaluated(),
                               std::memory_order_relaxed);
    cycles_fast_forwarded.fetch_add(eng.cycles_fast_forwarded(),
                                    std::memory_order_relaxed);
    checkpoint_ops.fetch_add(eng.checkpoint_ops(),
                             std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(store_mu);
    result.agg.merge(local);
    result.executed += local.total();
    result.footprints += local_footprints;
  };

  if (!pending.empty() && cap > 0) {
    const u32 hw = std::max(1u, std::thread::hardware_concurrency());
    const u32 want = sched.threads != 0
                         ? sched.threads
                         : (cfg.threads != 0 ? cfg.threads : hw);
    const u32 threads = static_cast<u32>(std::min<u64>(want, num_shards));
    if (tel != nullptr) tel->prepare_workers(threads);
    if (threads <= 1) {
      const auto eng = inject::make_engine(tc, cfg, plan);
      work(*eng, 0);
    } else {
      std::vector<std::unique_ptr<inject::InjectionEngine>> engines;
      engines.reserve(threads);
      for (u32 t = 0; t < threads; ++t) {
        engines.push_back(inject::make_engine(tc, cfg, plan));
      }
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (u32 t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] { work(*engines[t], t); });
      }
      for (auto& th : pool) th.join();
    }
  }

  result.shards = std::min<u64>(next_shard.load(), num_shards);
  result.cycles_evaluated = cycles_evaluated.load();
  result.cycles_fast_forwarded = cycles_fast_forwarded.load();
  result.checkpoint_ops = checkpoint_ops.load();
  result.checkpoints = plan.ckpts.size();
  result.checkpoint_bytes = plan.ckpts.resident_bytes();
  result.complete = result.agg.total() == cfg.num_injections;
  result.stopped = stop_observed.load();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (tel != nullptr) {
    tel->campaign_finish(result.agg, result.executed, result.wall_seconds);
  }
  return result;
}

}  // namespace sfi::sched
