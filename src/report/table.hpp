// Aligned ASCII table rendering for the benchmark harnesses — every bench
// prints the same rows/series the paper's tables and figures report.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace sfi::report {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row (must match the header count).
  void add_row(std::vector<std::string> cells);

  /// Convenience: percentage / fixed-point formatting.
  [[nodiscard]] static std::string pct(double fraction, int decimals = 2);
  [[nodiscard]] static std::string num(double value, int decimals = 2);
  [[nodiscard]] static std::string count(u64 value);

  /// Render with a separator under the header, columns padded to content.
  [[nodiscard]] std::string to_string() const;

  /// Render as RFC-4180 CSV: header row, then data rows, one per line.
  /// Cells containing a comma, double quote, CR or LF are quoted, with
  /// embedded quotes doubled.
  [[nodiscard]] std::string to_csv() const;

  /// RFC-4180 escaping for one cell (exposed for tests).
  [[nodiscard]] static std::string csv_cell(const std::string& cell);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// A titled section wrapper ("=== Table 2: ... ===") used by the benches.
[[nodiscard]] std::string section(const std::string& title);

}  // namespace sfi::report
