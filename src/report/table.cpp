#include "report/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace sfi::report {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), "table needs headers");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(), "row width != header width");
  rows_.push_back(std::move(cells));
}

std::string Table::pct(double fraction, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << fraction * 100.0 << "%";
  return os.str();
}

std::string Table::num(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

std::string Table::count(u64 value) { return std::to_string(value); }

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  ";
      // First column left-aligned (labels), the rest right-aligned.
      if (c == 0) {
        os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      } else {
        os << std::right << std::setw(static_cast<int>(width[c])) << row[c];
      }
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::csv_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (const char ch : cell) {
    if (ch == '"') out.push_back('"');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

std::string Table::to_csv() const {
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_cell(row[c]);
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string section(const std::string& title) {
  return "\n=== " + title + " ===\n";
}

}  // namespace sfi::report
