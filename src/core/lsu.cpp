#include "core/lsu.hpp"

#include "common/bits.hpp"
#include "common/check.hpp"
#include "isa/exec.hpp"

namespace sfi::core {

namespace {
using isa::Mnemonic;
using netlist::LatchType;
using netlist::Unit;
constexpr u8 kRing = 4;

constexpr u32 enc_size(u32 size) { return size == 1 ? 0 : size == 4 ? 1 : 2; }
constexpr u32 dec_size(u32 enc) { return enc == 0 ? 1 : enc == 1 ? 4 : 8; }
}  // namespace

u32 Lsu::size_of(Mnemonic mn) { return isa::access_size(mn); }

bool Lsu::is_store_mn(Mnemonic mn) {
  return mn == Mnemonic::STW || mn == Mnemonic::STB || mn == Mnemonic::STD ||
         mn == Mnemonic::STFD;
}

Lsu::Lsu(netlist::LatchRegistry& reg)
    : mode_(reg, "lsu", Unit::LSU, kRing, CheckerId::LsuStqParity, 4),
      spares_(reg, "lsu", Unit::LSU, kRing, 2600),
      dcache_(reg, kRing) {
  ex1_v_ = netlist::Flag(reg.add("lsu.ex1.v", Unit::LSU, LatchType::Func, kRing, 1));
  ex1_mn_ = netlist::Field(reg.add("lsu.ex1.mn", Unit::LSU, LatchType::Func, kRing, 6));
  ex1_dest_ = netlist::Field(reg.add("lsu.ex1.dest", Unit::LSU, LatchType::Func, kRing, 5));
  ex1_ea_ = netlist::Field(reg.add("lsu.ex1.ea", Unit::LSU, LatchType::Func, kRing, 16));
  ex1_eapar_ = netlist::Flag(reg.add("lsu.ex1.ea.p", Unit::LSU, LatchType::Func, kRing, 1));
  ex1_sd_ = netlist::Field(reg.add("lsu.ex1.sd", Unit::LSU, LatchType::Func, kRing, 64));
  ex1_sdpar_ = netlist::Flag(reg.add("lsu.ex1.sd.p", Unit::LSU, LatchType::Func, kRing, 1));
  ex1_pc_ = netlist::Field(reg.add("lsu.ex1.pc", Unit::LSU, LatchType::Func, kRing, 16));
  ex1_pcn_ = netlist::Field(reg.add("lsu.ex1.pcn", Unit::LSU, LatchType::Func, kRing, 16));
  ex1_ctlpar_ = netlist::Flag(reg.add("lsu.ex1.ctl.p", Unit::LSU, LatchType::Func, kRing, 1));
  ex1_dk_ = netlist::Field(reg.add("lsu.ex1.dk", Unit::LSU, LatchType::Func, kRing, 2));

  ex2_v_ = netlist::Flag(reg.add("lsu.ex2.v", Unit::LSU, LatchType::Func, kRing, 1));
  ex2_mn_ = netlist::Field(reg.add("lsu.ex2.mn", Unit::LSU, LatchType::Func, kRing, 6));
  ex2_dest_ = netlist::Field(reg.add("lsu.ex2.dest", Unit::LSU, LatchType::Func, kRing, 5));
  ex2_pa_ = netlist::Field(reg.add("lsu.ex2.pa", Unit::LSU, LatchType::Func, kRing, 16));
  ex2_papar_ = netlist::Flag(reg.add("lsu.ex2.pa.p", Unit::LSU, LatchType::Func, kRing, 1));
  ex2_sd_ = netlist::Field(reg.add("lsu.ex2.sd", Unit::LSU, LatchType::Func, kRing, 64));
  ex2_sdpar_ = netlist::Flag(reg.add("lsu.ex2.sd.p", Unit::LSU, LatchType::Func, kRing, 1));
  ex2_pc_ = netlist::Field(reg.add("lsu.ex2.pc", Unit::LSU, LatchType::Func, kRing, 16));
  ex2_pcn_ = netlist::Field(reg.add("lsu.ex2.pcn", Unit::LSU, LatchType::Func, kRing, 16));
  ex2_ctlpar_ = netlist::Flag(reg.add("lsu.ex2.ctl.p", Unit::LSU, LatchType::Func, kRing, 1));
  ex2_dk_ = netlist::Field(reg.add("lsu.ex2.dk", Unit::LSU, LatchType::Func, kRing, 2));

  stq_.resize(kStq);
  for (u32 i = 0; i < kStq; ++i) {
    const std::string n = "lsu.stq" + std::to_string(i);
    stq_[i].v = netlist::Flag(reg.add(n + ".v", Unit::LSU, LatchType::Func, kRing, 1));
    stq_[i].addr = netlist::Field(reg.add(n + ".addr", Unit::LSU, LatchType::Func, kRing, 16));
    stq_[i].apar = netlist::Flag(reg.add(n + ".addr.p", Unit::LSU, LatchType::Func, kRing, 1));
    stq_[i].data = netlist::Field(reg.add(n + ".data", Unit::LSU, LatchType::Func, kRing, 64));
    stq_[i].dpar = netlist::Flag(reg.add(n + ".data.p", Unit::LSU, LatchType::Func, kRing, 1));
    stq_[i].size = netlist::Field(reg.add(n + ".size", Unit::LSU, LatchType::Func, kRing, 2));
  }
  stq_head_ = netlist::Field(reg.add("lsu.stq.head", Unit::LSU, LatchType::Func, kRing, 3));
  stq_tail_ = netlist::Field(reg.add("lsu.stq.tail", Unit::LSU, LatchType::Func, kRing, 3));
  stq_count_ = netlist::Field(reg.add("lsu.stq.count", Unit::LSU, LatchType::Func, kRing, 4));

  erat_.resize(kErat);
  for (u32 i = 0; i < kErat; ++i) {
    const std::string n = "lsu.erat" + std::to_string(i);
    erat_[i].v = netlist::Flag(reg.add(n + ".v", Unit::LSU, LatchType::Func, kRing, 1));
    erat_[i].ppn = netlist::Field(reg.add(n + ".ppn", Unit::LSU, LatchType::Func, kRing, 4));
    erat_[i].par = netlist::Flag(reg.add(n + ".p", Unit::LSU, LatchType::Func, kRing, 1));
  }
  erat_busy_ = netlist::Flag(reg.add("lsu.erat.fill.busy", Unit::LSU, LatchType::Func, kRing, 1));
  erat_page_ = netlist::Field(reg.add("lsu.erat.fill.page", Unit::LSU, LatchType::Func, kRing, 4));
  erat_wait_ = netlist::Field(reg.add("lsu.erat.fill.wait", Unit::LSU, LatchType::Func, kRing, 2));
}

Lsu::Plan Lsu::detect(const netlist::CycleFrame& f, Signals& sig,
                      mem::EccMemory& mem) {
  Plan plan;
  if (mode_.clocks_stopped(f)) {
    plan.held = true;
    return plan;
  }
  if (mode_.force_error(f) && mode_.checker_on(f, CheckerId::LsuStqParity)) {
    sig.raise(CheckerId::LsuStqParity, Unit::LSU, false,
              "lsu mode force_error");
  }

  // ---- EX2: cache access / store-queue insert ----
  bool ex2_will_drain = !ex2_v_.get(f);
  bool dcache_claimed = false;
  if (ex2_v_.get(f)) {
    const auto mn = static_cast<Mnemonic>(ex2_mn_.get(f));
    const auto pa = static_cast<u32>(ex2_pa_.get(f));
    const bool pa_ok =
        parity(pa, 16) == static_cast<u32>(ex2_papar_.get(f) ? 1 : 0);
    if (!pa_ok && mode_.checker_on(f, CheckerId::LsuDcacheTagParity)) {
      sig.raise(CheckerId::LsuDcacheTagParity, Unit::LSU, false,
                "lsu physical address parity");
    }
    WbData wb;
    wb.mn = mn;
    wb.pc = static_cast<u32>(ex2_pc_.get(f));
    wb.pc_next = static_cast<u32>(ex2_pcn_.get(f));
    wb.ctl_par = ex2_ctlpar_.get(f);
    if (is_store_mn(mn)) {
      plan.stq_insert = true;
      plan.stq_addr = pa;
      plan.stq_size = size_of(mn);
      plan.stq_data = ex2_sd_.get(f);
      plan.retire_ex2 = true;
      ex2_will_drain = true;
      wb.valid = true;
      wb.dest_kind = DestKind::None;
      wb.is_store = true;
      wb.vpar = parity(u64{0}) != 0;
      plan.wb = wb;
    } else {
      plan.dc = dcache_.plan_load(f, pa, size_of(mn), true, mode_, sig, mem);
      dcache_claimed = true;
      if (plan.dc.done) {
        u64 value = plan.dc.data;
        wb.valid = true;
        wb.dest_kind = static_cast<DestKind>(ex2_dk_.get(f));
        wb.dest = static_cast<u8>(ex2_dest_.get(f));
        wb.value = value;
        wb.vpar = parity(value) != 0;
        wb.res2 = static_cast<u8>(residue3(value));
        plan.wb = wb;
        plan.retire_ex2 = true;
        ex2_will_drain = true;
      }
    }
  }
  if (!dcache_claimed) {
    // Keep the miss FSM advancing even with no load in EX2.
    plan.dc = dcache_.plan_load(f, 0, 1, false, mode_, sig, mem);
  }

  // ---- EX1: address translation ----
  if (ex1_v_.get(f) && ex2_will_drain && !erat_busy_.get(f)) {
    const auto ea = static_cast<u32>(ex1_ea_.get(f));
    const bool ea_ok =
        parity(ea, 16) == static_cast<u32>(ex1_eapar_.get(f) ? 1 : 0);
    if (!ea_ok && mode_.checker_on(f, CheckerId::LsuEratParity)) {
      sig.raise(CheckerId::LsuEratParity, Unit::LSU, false,
                "lsu effective address parity");
    }
    const u32 page = (ea >> 12) & 0xF;
    const EratEntry& e = erat_[page];
    if (!e.v.get(f)) {
      plan.start_erat_fill = true;
      plan.erat_page = page;
    } else {
      const u64 ppn = e.ppn.get(f);
      const bool erat_ok =
          parity(ppn | (u64{1} << 4), 5) ==
          static_cast<u32>(e.par.get(f) ? 1 : 0);
      if (!erat_ok && mode_.checker_on(f, CheckerId::LsuEratParity)) {
        sig.raise(CheckerId::LsuEratParity, Unit::LSU, false,
                  "erat entry parity");
        // A cached translation is disposable: drop it so the refill — not a
        // recovery livelock — repairs the structure.
        plan.erat_invalidate = true;
        plan.erat_page = page;
      } else {
        plan.advance_ex1 = true;
      }
    }
  }
  return plan;
}

Lsu::DrainPlan Lsu::plan_drain(const netlist::CycleFrame& f,
                               Signals& sig) const {
  DrainPlan plan;
  const auto head = static_cast<u32>(stq_head_.get(f)) % kStq;
  const StqEntry& e = stq_[head];
  const u64 addr = e.addr.get(f);
  const u64 data = e.data.get(f);
  const bool entry_ok =
      e.v.get(f) &&
      parity(addr, 16) == static_cast<u32>(e.apar.get(f) ? 1 : 0) &&
      parity(data) == static_cast<u32>(e.dpar.get(f) ? 1 : 0);
  if (!entry_ok) {
    if (mode_.checker_on(f, CheckerId::LsuStqParity)) {
      // Detected at the commit boundary, *before* the store architects:
      // completion is blocked, the pipeline flushes, and the store
      // re-executes from the checkpoint — fully recoverable.
      sig.raise(CheckerId::LsuStqParity, Unit::LSU, false,
                "store corrupted in store queue");
      return plan;
    }
    // Checker masked: the corrupted store drains silently (SDC path).
  }
  plan.valid = true;
  plan.addr = static_cast<u32>(addr);
  plan.size = dec_size(static_cast<u32>(e.size.get(f)));
  plan.data = data;
  return plan;
}

void Lsu::apply_drain(const netlist::CycleFrame& f, const DrainPlan& plan,
                      mem::EccMemory& mem) {
  const auto head = static_cast<u32>(stq_head_.get(f)) % kStq;
  if (plan.valid) {
    dcache_.commit_store(f, plan.addr, plan.size, plan.data, mem);
  }
  stq_[head].v.set(f, false);
  stq_head_.set(f, (head + 1) % kStq);
  const u64 cnt = stq_count_.get(f);
  stq_count_.set(f, cnt > 0 ? cnt - 1 : 0);
}

void Lsu::update(const netlist::CycleFrame& f, const Plan& plan,
                 const Controls& ctl, const std::optional<IssueBundle>& issue,
                 mem::EccMemory& mem) {
  if (plan.held) return;

  dcache_.update(f, plan.dc, mem);

  // ERAT fill sequencer runs across flushes (a fill is never speculative
  // state — identity translation).
  if (erat_busy_.get(f)) {
    const u64 w = erat_wait_.get(f);
    if (w > 0) {
      erat_wait_.set(f, w - 1);
    } else {
      const auto page = static_cast<u32>(erat_page_.get(f));
      erat_[page].v.set(f, true);
      erat_[page].ppn.set(f, page);  // identity translation
      erat_[page].par.set(f, parity(page | (u64{1} << 4), 5) != 0);
      erat_busy_.set(f, false);
    }
  } else if (plan.start_erat_fill && !ctl.flush) {
    erat_busy_.set(f, true);
    erat_page_.set(f, plan.erat_page);
    erat_wait_.set(f, CoreConfig::kEratFillLatency - 1);
  }

  // Parity-casualty translations are dropped even across a flush (the
  // invalidate is structural repair, not speculative state).
  if (plan.erat_invalidate) erat_[plan.erat_page].v.set(f, false);

  if (ctl.flush) {
    ex1_v_.set(f, false);
    ex2_v_.set(f, false);
    // Uncommitted stores die with the flush; committed ones were already
    // drained at completion time.
    for (u32 i = 0; i < kStq; ++i) stq_[i].v.set(f, false);
    stq_head_.set(f, 0);
    stq_tail_.set(f, 0);
    stq_count_.set(f, 0);
    return;
  }

  if (plan.stq_insert) {
    const auto tail = static_cast<u32>(stq_tail_.get(f)) % kStq;
    StqEntry& e = stq_[tail];
    e.v.set(f, true);
    e.addr.set(f, plan.stq_addr & 0xFFFF);
    e.apar.set(f, parity(plan.stq_addr & 0xFFFF, 16) != 0);
    e.data.set(f, plan.stq_data);
    e.dpar.set(f, parity(plan.stq_data) != 0);
    e.size.set(f, enc_size(plan.stq_size));
    stq_tail_.set(f, (tail + 1) % kStq);
    stq_count_.set(f, stq_count_.get(f) + 1);
  }

  if (plan.retire_ex2) ex2_v_.set(f, false);

  if (plan.advance_ex1) {
    const auto ea = static_cast<u32>(ex1_ea_.get(f));
    const u32 page = (ea >> 12) & 0xF;
    const auto ppn = static_cast<u32>(erat_[page].ppn.get(f));
    const u32 pa = ((ppn << 12) | (ea & 0xFFF)) & 0xFFFF;
    ex2_v_.set(f, true);
    ex2_mn_.set(f, ex1_mn_.get(f));
    ex2_dest_.set(f, ex1_dest_.get(f));
    ex2_pa_.set(f, pa);
    ex2_papar_.set(f, parity(pa, 16) != 0);
    ex2_sd_.set(f, ex1_sd_.get(f));
    ex2_sdpar_.set(f, ex1_sdpar_.get(f));
    ex2_pc_.set(f, ex1_pc_.get(f));
    ex2_pcn_.set(f, ex1_pcn_.get(f));
    ex2_ctlpar_.set(f, ex1_ctlpar_.get(f));
    ex2_dk_.set(f, ex1_dk_.get(f));
    ex1_v_.set(f, false);
  }

  if (issue) {
    const IssueBundle& is = *issue;
    const u32 ea = static_cast<u32>(is.a) & 0xFFFF;
    ex1_v_.set(f, true);
    ex1_mn_.set(f, static_cast<u64>(is.mn));
    ex1_dest_.set(f, is.dest);
    ex1_ea_.set(f, ea);
    ex1_eapar_.set(f, parity(ea, 16) != 0);
    ex1_sd_.set(f, is.b);
    ex1_sdpar_.set(f, parity(is.b) != 0);
    ex1_pc_.set(f, is.pc & 0xFFFF);
    ex1_pcn_.set(f, is.pc_next & 0xFFFF);
    ex1_ctlpar_.set(f, control_parity(is.mn, is.dest_kind, is.dest,
                                      is.pc & 0xFFFF, is.pc_next & 0xFFFF,
                                      is.is_store, false, false, false));
    ex1_dk_.set(f, static_cast<u64>(is.dest_kind));
  }
}

void Lsu::reset(netlist::StateVector& sv, const CoreConfig& cfg) {
  mode_.reset(sv, cfg);
  spares_.reset(sv);
  dcache_.reset(sv);
  ex1_v_.poke(sv, false);
  ex1_mn_.poke(sv, 0);
  ex1_dest_.poke(sv, 0);
  ex1_ea_.poke(sv, 0);
  ex1_eapar_.poke(sv, false);
  ex1_sd_.poke(sv, 0);
  ex1_sdpar_.poke(sv, false);
  ex1_pc_.poke(sv, 0);
  ex1_pcn_.poke(sv, 0);
  ex1_ctlpar_.poke(sv, false);
  ex1_dk_.poke(sv, 0);
  ex2_v_.poke(sv, false);
  ex2_mn_.poke(sv, 0);
  ex2_dest_.poke(sv, 0);
  ex2_pa_.poke(sv, 0);
  ex2_papar_.poke(sv, false);
  ex2_sd_.poke(sv, 0);
  ex2_sdpar_.poke(sv, false);
  ex2_pc_.poke(sv, 0);
  ex2_pcn_.poke(sv, 0);
  ex2_ctlpar_.poke(sv, false);
  ex2_dk_.poke(sv, 0);
  for (u32 i = 0; i < kStq; ++i) {
    stq_[i].v.poke(sv, false);
    stq_[i].addr.poke(sv, 0);
    stq_[i].apar.poke(sv, false);
    stq_[i].data.poke(sv, 0);
    stq_[i].dpar.poke(sv, false);
    stq_[i].size.poke(sv, 0);
  }
  stq_head_.poke(sv, 0);
  stq_tail_.poke(sv, 0);
  stq_count_.poke(sv, 0);
  // ERAT comes up warm with identity translations (a cold ERAT would only
  // add fill latency to the golden run).
  for (u32 i = 0; i < kErat; ++i) {
    erat_[i].v.poke(sv, true);
    erat_[i].ppn.poke(sv, i);
    erat_[i].par.poke(sv, parity(i | (u64{1} << 4), 5) != 0);
  }
  erat_busy_.poke(sv, false);
  erat_page_.poke(sv, 0);
  erat_wait_.poke(sv, 0);
}

}  // namespace sfi::core
