#include "core/pervasive.hpp"

#include <algorithm>

#include "common/bits.hpp"

namespace sfi::core {

namespace {
using netlist::LatchType;
using netlist::Unit;
constexpr u8 kRing = 6;
}  // namespace

Pervasive::Pervasive(netlist::LatchRegistry& reg)
    : mode_(reg, "core", Unit::Core, kRing, CheckerId::CoreWatchdog, 2),
      spares_(reg, "core", Unit::Core, kRing, 400) {
  rec_fir_ = netlist::Field(reg.add("core.fir.rec", Unit::Core, LatchType::Func, kRing, 7));
  fatal_fir_ = netlist::Field(reg.add("core.fir.fatal", Unit::Core, LatchType::Func, kRing, 7));
  first_err_v_ = netlist::Flag(reg.add("core.fir.first.v", Unit::Core, LatchType::Func, kRing, 1));
  first_err_unit_ = netlist::Field(reg.add("core.fir.first.unit", Unit::Core, LatchType::Func, kRing, 3));
  first_err_chk_ = netlist::Field(reg.add("core.fir.first.chk", Unit::Core, LatchType::Func, kRing, 5));

  checkstop_ = netlist::Flag(reg.add("core.checkstop", Unit::Core, LatchType::Func, kRing, 1));
  hang_ = netlist::Flag(reg.add("core.hang", Unit::Core, LatchType::Func, kRing, 1));
  done_ = netlist::Flag(reg.add("core.done", Unit::Core, LatchType::Func, kRing, 1));

  wd_counter_ = netlist::Field(reg.add("core.wd.counter", Unit::Core, LatchType::Func, kRing, 12));
  rec_cycles_ = netlist::Field(reg.add("core.rec.cycles", Unit::Core, LatchType::Func, kRing, 8));
  rec_since_completion_ = netlist::Field(reg.add("core.rec.since_cmpl", Unit::Core, LatchType::Func, kRing, 3));
  recovery_count_ = netlist::Field(reg.add("core.rec.count", Unit::Core, LatchType::Func, kRing, 8));
  corrected_count_ = netlist::Field(reg.add("core.corrected.count", Unit::Core, LatchType::Func, kRing, 8));
  rec_active_flag_ = netlist::Flag(reg.add("core.rec.active", Unit::Core, LatchType::Func, kRing, 1));

  timebase_ = netlist::Field(reg.add("core.timebase", Unit::Core, LatchType::Func, kRing, 24,
                                     /*hashable=*/false));

  // All of these are benign under a single flip in an otherwise fault-free
  // run (the watchdog timeout's single-bit neighbourhood stays far above the
  // longest legitimate completion gap; thresholds/enables only matter once
  // some other error exists), so they are excluded from the golden hash.
  cfg_wd_timeout_ = netlist::Field(reg.add("core.mode.wd_timeout", Unit::Core, LatchType::Mode, kRing, 12, /*hashable=*/false));
  cfg_rec_thresh_ = netlist::Field(reg.add("core.mode.rec_thresh", Unit::Core, LatchType::Mode, kRing, 3, /*hashable=*/false));
  cfg_rec_timeout_ = netlist::Field(reg.add("core.mode.rec_timeout", Unit::Core, LatchType::Mode, kRing, 8, /*hashable=*/false));
  cfg_rec_enable_ = netlist::Flag(reg.add("core.mode.rec_enable", Unit::Core, LatchType::Mode, kRing, 1, /*hashable=*/false));

  gptr_test_ = netlist::Field(reg.add("core.gptr.test", Unit::Core, LatchType::Gptr, kRing, 16, /*hashable=*/false));
  gptr_ring_ = netlist::Field(reg.add("core.gptr.ring", Unit::Core, LatchType::Gptr, kRing, 8, /*hashable=*/false));
  pm_completions_ = netlist::Field(reg.add("core.pm.completions", Unit::Core, LatchType::Func, kRing, 32, /*hashable=*/false));
  pm_recoveries_ = netlist::Field(reg.add("core.pm.recoveries", Unit::Core, LatchType::Func, kRing, 32, /*hashable=*/false));
  pm_events_ = netlist::Field(reg.add("core.pm.events", Unit::Core, LatchType::Func, kRing, 32, /*hashable=*/false));
  pm_stall_ = netlist::Field(reg.add("core.pm.stall", Unit::Core, LatchType::Func, kRing, 32, /*hashable=*/false));
}

bool Pervasive::frozen(const netlist::StateVector& sv) const {
  return checkstop_.peek(sv) || hang_.peek(sv) || done_.peek(sv);
}

Controls Pervasive::decide(const netlist::CycleFrame& f, const Signals& sig,
                           bool rut_active) {
  Controls ctl;
  ctl.recovery_active = rut_active;

  const bool wd_on = mode_.checker_on(f, CheckerId::CoreWatchdog);
  const bool proto_on = mode_.checker_on(f, CheckerId::CoreRecoveryProtocol);

  bool fatal = sig.any_fatal() || fatal_fir_.get(f) != 0;

  // Cross-check the redundant recovery-active flag against the sequencer.
  if (proto_on && rec_active_flag_.get(f) != rut_active) {
    fatal = true;
  }
  if (mode_.force_error(f) && wd_on) {
    fatal = true;  // pervasive force_error drives the checkstop network
  }

  const bool new_recoverable = sig.any_recoverable();
  const bool latched_recoverable = rec_fir_.get(f) != 0;

  if (rut_active) {
    // Any new detected error while recovery is rebuilding state is
    // unrecoverable (the paper's §3.1 observation).
    if (new_recoverable) fatal = true;
    if (wd_on && rec_cycles_.get(f) >= cfg_rec_timeout_.get(f)) fatal = true;
  } else if (new_recoverable || latched_recoverable) {
    if (!cfg_rec_enable_.get(f)) {
      fatal = true;  // recovery fused off: detected errors stop the machine
    } else if (rec_since_completion_.get(f) >= cfg_rec_thresh_.get(f)) {
      fatal = true;  // recovery livelock breaker
    } else {
      ctl.start_recovery = true;
      ctl.flush = true;
    }
  }

  // Completion watchdog (hang detection). Paused while recovering.
  if (!rut_active && !ctl.start_recovery && wd_on &&
      wd_counter_.get(f) >= cfg_wd_timeout_.get(f)) {
    ctl.hang = true;
  }

  if (fatal) {
    ctl.checkstop = true;
    ctl.start_recovery = false;
    ctl.hang = false;
    ctl.flush = false;  // state freezes as-is for fault isolation readout
  }

  ctl.block_completion = ctl.flush || ctl.checkstop || ctl.hang;
  ctl.block_issue = ctl.block_completion || rut_active;
  return ctl;
}

void Pervasive::update(const netlist::CycleFrame& f, const Signals& sig,
                       const Controls& ctl, bool rut_active) {
  if (mode_.clocks_stopped(f)) return;  // pervasive clocks fused off: hold
  // FIR capture.
  u64 rec = rec_fir_.get(f);
  u64 fat = fatal_fir_.get(f);
  for (const CheckerEvent& e : sig.events) {
    const u64 bit = u64{1} << static_cast<unsigned>(e.unit);
    if (e.fatal) {
      fat |= bit;
    } else {
      rec |= bit;
    }
    if (!first_err_v_.get(f) && !first_err_v_.staged(f)) {
      first_err_v_.set(f, true);
      first_err_unit_.set(f, static_cast<u64>(e.unit));
      first_err_chk_.set(f, static_cast<u64>(e.id));
    }
  }
  if (sig.recovery_refetch) rec = 0;  // recovery completed: clear its FIR
  rec_fir_.set(f, rec);
  fatal_fir_.set(f, fat);

  // Terminal latches.
  if (ctl.checkstop) checkstop_.set(f, true);
  if (ctl.hang) hang_.set(f, true);

  const bool completion_ok = sig.completion && !ctl.block_completion;
  if (completion_ok && sig.completion_is_stop) done_.set(f, true);

  // Watchdog.
  if (completion_ok) {
    wd_counter_.set(f, 0);
  } else if (!rut_active) {
    wd_counter_.set(f, (wd_counter_.get(f) + 1) & 0xFFF);
  }

  // Recovery bookkeeping.
  rec_cycles_.set(f, rut_active ? std::min<u64>(rec_cycles_.get(f) + 1, 255)
                                : 0);
  if (ctl.start_recovery) {
    rec_since_completion_.set(
        f, std::min<u64>(rec_since_completion_.get(f) + 1, 7));
  } else if (completion_ok) {
    rec_since_completion_.set(f, 0);
  }
  if (sig.recovery_refetch) {
    recovery_count_.set(f, std::min<u64>(recovery_count_.get(f) + 1, 255));
  }
  if (sig.corrected > 0) {
    corrected_count_.set(
        f, std::min<u64>(corrected_count_.get(f) + sig.corrected, 255));
  }

  // Redundant recovery-active flag mirrors the RUT sequencer's staging rule.
  rec_active_flag_.set(f, ctl.start_recovery ||
                              (rut_active && !sig.recovery_refetch));

  // Performance monitor (free-running event counters).
  if (completion_ok) {
    pm_completions_.set(f, (pm_completions_.get(f) + 1) & 0xFFFFFFFF);
  } else {
    pm_stall_.set(f, (pm_stall_.get(f) + 1) & 0xFFFFFFFF);
  }
  if (sig.recovery_refetch) {
    pm_recoveries_.set(f, (pm_recoveries_.get(f) + 1) & 0xFFFFFFFF);
  }
  if (!sig.events.empty()) {
    pm_events_.set(f, (pm_events_.get(f) + sig.events.size()) & 0xFFFFFFFF);
  }

  timebase_.set(f, (timebase_.get(f) + 1) & 0xFFFFFF);
}

bool Pervasive::checkstop_peek(const netlist::StateVector& sv) const {
  return checkstop_.peek(sv);
}
bool Pervasive::hang_peek(const netlist::StateVector& sv) const {
  return hang_.peek(sv);
}
bool Pervasive::done_peek(const netlist::StateVector& sv) const {
  return done_.peek(sv);
}
u32 Pervasive::recovery_count_peek(const netlist::StateVector& sv) const {
  return static_cast<u32>(recovery_count_.peek(sv));
}
u32 Pervasive::corrected_count_peek(const netlist::StateVector& sv) const {
  return static_cast<u32>(corrected_count_.peek(sv));
}

void Pervasive::reset(netlist::StateVector& sv, const CoreConfig& cfg) {
  mode_.reset(sv, cfg);
  rec_fir_.poke(sv, 0);
  fatal_fir_.poke(sv, 0);
  first_err_v_.poke(sv, false);
  first_err_unit_.poke(sv, 0);
  first_err_chk_.poke(sv, 0);
  checkstop_.poke(sv, false);
  hang_.poke(sv, false);
  done_.poke(sv, false);
  wd_counter_.poke(sv, 0);
  rec_cycles_.poke(sv, 0);
  rec_since_completion_.poke(sv, 0);
  recovery_count_.poke(sv, 0);
  corrected_count_.poke(sv, 0);
  rec_active_flag_.poke(sv, false);
  timebase_.poke(sv, 0);
  cfg_wd_timeout_.poke(sv, cfg.watchdog_timeout & 0xFFF);
  cfg_rec_thresh_.poke(sv, cfg.recovery_threshold & 0x7);
  cfg_rec_timeout_.poke(sv, cfg.recovery_timeout & 0xFF);
  cfg_rec_enable_.poke(sv, cfg.recovery_enabled);
  gptr_test_.poke(sv, 0);
  gptr_ring_.poke(sv, 0);
  pm_completions_.poke(sv, 0);
  pm_recoveries_.poke(sv, 0);
  pm_events_.poke(sv, 0);
  pm_stall_.poke(sv, 0);
  spares_.reset(sv);
}

}  // namespace sfi::core
