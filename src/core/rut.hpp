// RUT — recovery unit.
//
// Holds the ECC-protected architected-state checkpoint (a SEC-DED array:
// GPRs, FPRs, CR, LR, CTR; the checkpoint PC is a parity-protected latch),
// the completion-side write ports, the restore sequencer that rebuilds the
// working register files after a detected error, and a background scrubber
// that sweeps the array for accumulated upsets. The sequencer state is a
// one-hot latch with a consistency checker: control flips here are
// *unrecoverable by construction* — the paper's observation that the RUT is
// the least-derated unit comes from exactly this property.
#pragma once

#include "core/config.hpp"
#include "core/mode_ring.hpp"
#include "core/pipeline_types.hpp"
#include "core/signals.hpp"
#include "core/spare_chain.hpp"
#include "isa/arch_state.hpp"
#include "netlist/array.hpp"
#include "netlist/field.hpp"
#include "netlist/registry.hpp"

namespace sfi::core {

class Rut {
 public:
  explicit Rut(netlist::LatchRegistry& reg);

  /// Checkpoint array layout.
  static constexpr u32 kGprBase = 0;
  static constexpr u32 kFprBase = 32;
  static constexpr u32 kCrEntry = 48;
  static constexpr u32 kLrEntry = 49;
  static constexpr u32 kCtrEntry = 50;
  static constexpr u32 kRestoreEntries = 51;  ///< entries restored per pass
  static constexpr u32 kArrayEntries = 64;    ///< incl. spare rows

  struct RestoreWrite {
    bool valid = false;
    u32 entry = 0;  ///< checkpoint entry index being restored
    u64 value = 0;
  };

  struct Plan {
    bool held = false;
    RestoreWrite restore;
    bool finish_restore = false;
    bool port_write[2] = {false, false};
    u32 port_idx[2] = {0, 0};
    u64 port_val[2] = {0, 0};
    bool scrub = false;
  };

  /// Detect phase: restore step / scrub / write-port verification.
  [[nodiscard]] Plan detect(const netlist::CycleFrame& f, Signals& sig);

  /// Is the restore sequencer active?
  [[nodiscard]] bool active(const netlist::CycleFrame& f) const;
  [[nodiscard]] bool active_peek(const netlist::StateVector& sv) const;

  /// Update phase. `start_recovery` comes from pervasive's decision.
  void update(const netlist::CycleFrame& f, const Plan& plan,
              const Controls& ctl);

  // --- completion-side interface (update phase) ---
  /// Queue a checkpoint write through a staging port (slot 0 or 1).
  void stage_port(const netlist::CycleFrame& f, u32 slot, u32 entry,
                  u64 value) const;
  /// Record the architected next-PC and bump the completion counter.
  /// STOP completes (pc checkpointed) but is not a counted instruction —
  /// the counter matches the golden model's retired-instruction count.
  void on_completion(const netlist::CycleFrame& f, u32 pc_next,
                     bool count) const;

  // --- observability ---
  [[nodiscard]] u64 completion_count(const netlist::StateVector& sv) const;
  [[nodiscard]] u32 completion_pc_peek(const netlist::StateVector& sv) const;
  /// Current-cycle checkpoint PC (completion sequence reference).
  [[nodiscard]] u32 completion_pc(const netlist::CycleFrame& f) const;
  /// Architected state straight from the ECC checkpoint (the master copy).
  [[nodiscard]] isa::ArchState arch_state(const netlist::StateVector& sv) const;

  /// RAS view of a full checkpoint readout: how many entries decode with a
  /// correctable upset, and whether any used entry is uncorrectable (reading
  /// it on the real machine would checkstop).
  struct ReadoutRas {
    u32 corrected = 0;
    bool fatal = false;
  };
  [[nodiscard]] ReadoutRas checkpoint_readout_ras() const;

  [[nodiscard]] ModeRing& mode() { return mode_; }
  [[nodiscard]] netlist::ProtectedArray& checkpoint_array() { return ckpt_; }
  [[nodiscard]] const netlist::ProtectedArray& checkpoint_array() const {
    return ckpt_;
  }

  void reset(netlist::StateVector& sv, const isa::ArchState& init, u32 entry_pc,
             const CoreConfig& cfg);

 private:
  ModeRing mode_;
  SpareChain spares_;
  netlist::ProtectedArray ckpt_;

  // Sequencer: one-hot {idle, restore}.
  netlist::Field fsm_;          // 2, one-hot
  netlist::Field restore_cnt_;  // 6

  // Checkpoint PC.
  netlist::Field cpc_;  // 16
  netlist::Flag cpc_par_;
  netlist::Field ccount_;  // 16 completion counter

  // Captured refetch PC during restore.
  netlist::Field refetch_pc_;  // 16
  netlist::Flag refetch_par_;

  // Write ports (two staging slots).
  struct Port {
    netlist::Flag v;
    netlist::Field idx;   // 6
    netlist::Field data;  // 64
    netlist::Flag par;
  };
  Port port_[2];

  // Scrubber.
  netlist::Field scrub_idx_;    // 6
  netlist::Field scrub_timer_;  // 6
};

}  // namespace sfi::core
