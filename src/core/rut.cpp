#include "core/rut.hpp"

#include <bit>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace sfi::core {

namespace {
using netlist::ArrayProtection;
using netlist::ArrayReadStatus;
using netlist::LatchType;
using netlist::Unit;
constexpr u8 kRing = 5;
constexpr u64 kFsmIdle = 0b01;
constexpr u64 kFsmRestore = 0b10;
}  // namespace

Rut::Rut(netlist::LatchRegistry& reg)
    : mode_(reg, "rut", Unit::RUT, kRing, CheckerId::RutEccReport, 2),
      spares_(reg, "rut", Unit::RUT, kRing, 100),
      ckpt_("rut.ckpt", Unit::RUT, ArrayProtection::SecDed, kArrayEntries, 64) {
  fsm_ = netlist::Field(reg.add("rut.fsm", Unit::RUT, LatchType::Func, kRing, 2));
  restore_cnt_ = netlist::Field(reg.add("rut.restore_cnt", Unit::RUT, LatchType::Func, kRing, 6));
  cpc_ = netlist::Field(reg.add("rut.cpc", Unit::RUT, LatchType::Func, kRing, 16));
  cpc_par_ = netlist::Flag(reg.add("rut.cpc.p", Unit::RUT, LatchType::Func, kRing, 1));
  ccount_ = netlist::Field(reg.add("rut.ccount", Unit::RUT, LatchType::Func, kRing, 16));
  refetch_pc_ = netlist::Field(reg.add("rut.refetch_pc", Unit::RUT, LatchType::Func, kRing, 16));
  refetch_par_ = netlist::Flag(reg.add("rut.refetch_pc.p", Unit::RUT, LatchType::Func, kRing, 1));
  for (u32 i = 0; i < 2; ++i) {
    const std::string n = "rut.wport" + std::to_string(i);
    port_[i].v = netlist::Flag(reg.add(n + ".v", Unit::RUT, LatchType::Func, kRing, 1));
    port_[i].idx = netlist::Field(reg.add(n + ".idx", Unit::RUT, LatchType::Func, kRing, 6));
    port_[i].data = netlist::Field(reg.add(n + ".data", Unit::RUT, LatchType::Func, kRing, 64));
    port_[i].par = netlist::Flag(reg.add(n + ".p", Unit::RUT, LatchType::Func, kRing, 1));
  }
  scrub_idx_ = netlist::Field(reg.add("rut.scrub.idx", Unit::RUT, LatchType::Func, kRing, 6));
  scrub_timer_ = netlist::Field(reg.add("rut.scrub.timer", Unit::RUT, LatchType::Func, kRing, 6));
}

bool Rut::active(const netlist::CycleFrame& f) const {
  return fsm_.get(f) != kFsmIdle;
}

bool Rut::active_peek(const netlist::StateVector& sv) const {
  return fsm_.peek(sv) != kFsmIdle;
}

Rut::Plan Rut::detect(const netlist::CycleFrame& f, Signals& sig) {
  Plan plan;
  if (mode_.clocks_stopped(f)) {
    plan.held = true;
    return plan;
  }
  if (mode_.force_error(f) && mode_.checker_on(f, CheckerId::RutEccReport)) {
    sig.raise(CheckerId::RutEccReport, Unit::RUT, false,
              "rut mode force_error");
  }

  const u64 fsm = fsm_.get(f);
  const bool fsm_checker = mode_.checker_on(f, CheckerId::RutFsmCheck);

  // Sequencer consistency: the state register is one-hot, and the restore
  // counter must be 0 while idle. Violations are unrecoverable (there is no
  // checkpoint of the recovery hardware itself).
  if (fsm_checker) {
    if (std::popcount(fsm) != 1) {
      sig.raise(CheckerId::RutFsmCheck, Unit::RUT, true,
                "rut sequencer state not one-hot");
      return plan;
    }
    if (fsm == kFsmIdle && restore_cnt_.get(f) != 0) {
      sig.raise(CheckerId::RutFsmCheck, Unit::RUT, true,
                "rut restore counter nonzero while idle");
      return plan;
    }
  }

  // Write-port verification + drain plan.
  for (u32 i = 0; i < 2; ++i) {
    if (!port_[i].v.get(f)) continue;
    const u64 data = port_[i].data.get(f);
    const u64 idx = port_[i].idx.get(f);
    const bool ok = parity(data ^ idx) ==
                    static_cast<u32>(port_[i].par.get(f) ? 1 : 0);
    if (!ok && mode_.checker_on(f, CheckerId::RutEccReport)) {
      // Caught before the checkpoint is polluted: recoverable.
      sig.raise(CheckerId::RutEccReport, Unit::RUT, false,
                "rut write port parity");
      continue;
    }
    plan.port_write[i] = true;
    plan.port_idx[i] = static_cast<u32>(idx) % kArrayEntries;
    plan.port_val[i] = data;
  }

  if (fsm == kFsmRestore) {
    const auto cnt = static_cast<u32>(restore_cnt_.get(f));
    if (cnt < kRestoreEntries) {
      const auto rr = ckpt_.read(cnt);
      if (rr.status == ArrayReadStatus::Corrected) {
        if (mode_.checker_on(f, CheckerId::RutEccReport)) ++sig.corrected;
      } else if (rr.status == ArrayReadStatus::Detected &&
                 mode_.checker_on(f, CheckerId::RutEccReport)) {
        sig.raise(CheckerId::RutEccReport, Unit::RUT, true,
                  "uncorrectable checkpoint entry during restore");
        return plan;
      }
      plan.restore.valid = true;
      plan.restore.entry = cnt;
      plan.restore.value = rr.value;
      if (cnt + 1 == kRestoreEntries) {
        plan.finish_restore = true;
        // Refetch from the checkpoint PC; a corrupt checkpoint PC cannot be
        // recovered from.
        const auto pc = static_cast<u32>(cpc_.get(f));
        const bool pc_ok =
            parity(pc, 16) == static_cast<u32>(cpc_par_.get(f) ? 1 : 0);
        if (!pc_ok && fsm_checker) {
          sig.raise(CheckerId::RutFsmCheck, Unit::RUT, true,
                    "checkpoint pc parity during restore");
          plan.finish_restore = false;
          return plan;
        }
        sig.recovery_refetch = true;
        sig.recovery_refetch_pc = pc;
      }
    } else {
      // Counter overran (flip mid-restore): unrecoverable.
      if (fsm_checker) {
        sig.raise(CheckerId::RutFsmCheck, Unit::RUT, true,
                  "rut restore counter overrun");
      }
      return plan;
    }
  } else if (scrub_timer_.get(f) == 0) {
    plan.scrub = true;
    const auto idx = static_cast<u32>(scrub_idx_.get(f)) % kArrayEntries;
    const auto rr = ckpt_.read(idx);  // read corrects & scrubs in place
    if (rr.status == ArrayReadStatus::Corrected) {
      if (mode_.checker_on(f, CheckerId::RutEccReport)) ++sig.corrected;
    } else if (rr.status == ArrayReadStatus::Detected &&
               mode_.checker_on(f, CheckerId::RutEccReport)) {
      // An uncorrectable checkpoint entry means recovery would fail if
      // attempted; the machine stops rather than run unprotected.
      sig.raise(CheckerId::RutEccReport, Unit::RUT, true,
                "uncorrectable checkpoint entry found by scrub");
    }
  }
  return plan;
}

void Rut::update(const netlist::CycleFrame& f, const Plan& plan,
                 const Controls& ctl) {
  if (plan.held) return;

  // Drain write ports into the array (these are architected completions and
  // survive flushes).
  for (u32 i = 0; i < 2; ++i) {
    if (plan.port_write[i]) ckpt_.write(plan.port_idx[i], plan.port_val[i]);
    if (port_[i].v.get(f)) port_[i].v.set(f, false);
  }

  // Sequencer transitions.
  if (ctl.start_recovery) {
    fsm_.set(f, kFsmRestore);
    restore_cnt_.set(f, 0);
  } else if (plan.finish_restore) {
    fsm_.set(f, kFsmIdle);
    restore_cnt_.set(f, 0);
    refetch_pc_.set(f, cpc_.get(f));
    refetch_par_.set(f, cpc_par_.get(f));
  } else if (plan.restore.valid) {
    restore_cnt_.set(f, restore_cnt_.get(f) + 1);
  }

  // Scrubber.
  if (fsm_.get(f) == kFsmIdle) {
    const u64 t = scrub_timer_.get(f);
    if (t == 0) {
      scrub_timer_.set(f, 63);
      scrub_idx_.set(f, (scrub_idx_.get(f) + 1) % kArrayEntries);
    } else {
      scrub_timer_.set(f, t - 1);
    }
  }
}

void Rut::stage_port(const netlist::CycleFrame& f, u32 slot, u32 entry,
                     u64 value) const {
  ensure(slot < 2, "rut port slot");
  port_[slot].v.set(f, true);
  port_[slot].idx.set(f, entry);
  port_[slot].data.set(f, value);
  port_[slot].par.set(f, parity(value ^ entry) != 0);
}

void Rut::on_completion(const netlist::CycleFrame& f, u32 pc_next,
                        bool count) const {
  pc_next &= 0xFFFF;
  cpc_.set(f, pc_next);
  cpc_par_.set(f, parity(pc_next, 16) != 0);
  if (count) ccount_.set(f, (ccount_.get(f) + 1) & 0xFFFF);
}

u64 Rut::completion_count(const netlist::StateVector& sv) const {
  return ccount_.peek(sv);
}

u32 Rut::completion_pc_peek(const netlist::StateVector& sv) const {
  return static_cast<u32>(cpc_.peek(sv));
}

u32 Rut::completion_pc(const netlist::CycleFrame& f) const {
  return static_cast<u32>(cpc_.get(f));
}

isa::ArchState Rut::arch_state(const netlist::StateVector& sv) const {
  isa::ArchState st;
  for (u32 i = 0; i < isa::kNumGprs; ++i) {
    st.gpr[i] = ckpt_.peek_decoded(kGprBase + i).value;
  }
  for (u32 i = 0; i < isa::kNumFprs; ++i) {
    st.fpr[i] = ckpt_.peek_decoded(kFprBase + i).value;
  }
  st.cr = static_cast<u32>(ckpt_.peek_decoded(kCrEntry).value);
  st.lr = ckpt_.peek_decoded(kLrEntry).value;
  st.ctr = ckpt_.peek_decoded(kCtrEntry).value;
  st.pc = cpc_.peek(sv);
  return st;
}

Rut::ReadoutRas Rut::checkpoint_readout_ras() const {
  ReadoutRas r;
  for (u32 e = 0; e < kRestoreEntries; ++e) {
    switch (ckpt_.peek_decoded(e).status) {
      case netlist::ArrayReadStatus::Clean:
        break;
      case netlist::ArrayReadStatus::Corrected:
        ++r.corrected;
        break;
      case netlist::ArrayReadStatus::Detected:
        r.fatal = true;
        break;
    }
  }
  return r;
}

void Rut::reset(netlist::StateVector& sv, const isa::ArchState& init,
                u32 entry_pc, const CoreConfig& cfg) {
  mode_.reset(sv, cfg);
  spares_.reset(sv);
  ckpt_.fill_zero();
  for (u32 i = 0; i < isa::kNumGprs; ++i) ckpt_.write(kGprBase + i, init.gpr[i]);
  for (u32 i = 0; i < isa::kNumFprs; ++i) ckpt_.write(kFprBase + i, init.fpr[i]);
  ckpt_.write(kCrEntry, init.cr);
  ckpt_.write(kLrEntry, init.lr);
  ckpt_.write(kCtrEntry, init.ctr);
  fsm_.poke(sv, kFsmIdle);
  restore_cnt_.poke(sv, 0);
  entry_pc &= 0xFFFF;
  cpc_.poke(sv, entry_pc);
  cpc_par_.poke(sv, parity(entry_pc, 16) != 0);
  ccount_.poke(sv, 0);
  refetch_pc_.poke(sv, 0);
  refetch_par_.poke(sv, false);
  for (u32 i = 0; i < 2; ++i) {
    port_[i].v.poke(sv, false);
    port_[i].idx.poke(sv, 0);
    port_[i].data.poke(sv, 0);
    port_[i].par.poke(sv, false);
  }
  scrub_idx_.poke(sv, 0);
  scrub_timer_.poke(sv, 63);
}

}  // namespace sfi::core
