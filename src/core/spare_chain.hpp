// Engineering spare / debug-trace latch chains.
//
// A large fraction of a production core's latch count is not pipeline
// state: debug trace buses, ABIST/LBIST engines, engineering spares, SCOM
// status staging. These latches hold scan-loaded values and are not read
// during functional operation — which is precisely why real designs derate
// so strongly (most of the paper's 95% vanished flips land in state the
// current execution never consumes). Each Pearl6 unit instantiates a chain
// sized to its real-design proportion (the LSU, the most debug-instrumented
// unit, carries the largest; see DESIGN.md scale notes).
//
// Chains are FUNC latches excluded from the golden-trace hash: they feed no
// functional logic, so a flip in them provably cannot alter execution.
#pragma once

#include <string>
#include <vector>

#include "netlist/field.hpp"
#include "netlist/registry.hpp"

namespace sfi::core {

class SpareChain {
 public:
  SpareChain(netlist::LatchRegistry& reg, const std::string& name,
             netlist::Unit unit, u8 scan_ring, u32 bits) {
    u32 idx = 0;
    while (bits > 0) {
      const u32 w = bits > 48 ? 48 : bits;
      fields_.emplace_back(reg.add(name + ".dbg" + std::to_string(idx++),
                                   unit, netlist::LatchType::Func, scan_ring,
                                   w, /*hashable=*/false));
      bits -= w;
    }
  }

  void reset(netlist::StateVector& sv) const {
    for (const netlist::Field& f : fields_) f.poke(sv, 0);
  }

 private:
  std::vector<netlist::Field> fields_;
};

}  // namespace sfi::core
