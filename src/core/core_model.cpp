#include "core/core_model.hpp"

#include "common/check.hpp"

namespace sfi::core {

namespace {
using netlist::Unit;
}

Pearl6Model::Pearl6Model(CoreConfig cfg)
    : cfg_(cfg),
      mem_(CoreConfig::kMemBytes),
      ifu_(reg_),
      idu_(reg_),
      fxu_(reg_),
      fpu_(reg_),
      lsu_(reg_),
      rut_(reg_),
      perv_(reg_) {
  reg_.finalize();
  arrays_.add(ifu_.icache().data_array());
  arrays_.add(lsu_.dcache().data_array());
  arrays_.add(rut_.checkpoint_array());
}

void Pearl6Model::load_workload(isa::Program program, isa::ArchState init) {
  program_ = std::move(program);
  init_ = init;
}

void Pearl6Model::reset(netlist::StateVector& sv) {
  mem_.fill_zero();
  // Load the program image through the controller so every word carries
  // consistent check bits.
  for (std::size_t i = 0; i < program_.code.size(); ++i) {
    mem_.store(program_.code_base + i * 4, program_.code[i], 4);
  }
  for (const isa::Program::DataBlob& blob : program_.data) {
    mem_.write_block(blob.addr, blob.bytes);
  }
  (void)mem_.take_corrected();
  (void)mem_.take_fatal();
  const auto entry = static_cast<u32>(program_.entry);
  ifu_.reset(sv, entry, cfg_);
  idu_.reset(sv, init_, cfg_);
  fxu_.reset(sv, init_, cfg_);
  fpu_.reset(sv, init_, cfg_);
  lsu_.reset(sv, cfg_);
  rut_.reset(sv, init_, entry, cfg_);
  perv_.reset(sv, cfg_);
}

void Pearl6Model::evaluate(const netlist::CycleFrame& f) {
  // A checkstopped, hung or finished machine holds all state.
  if (perv_.frozen(f.cur)) return;

  Signals sig;

  // Main-store patrol scrub + controller event pickup (periphery RAS; the
  // memory controller reports independently of the core checker masks).
  mem_.scrub_step();
  sig.corrected += mem_.take_corrected();
  if (mem_.take_fatal()) {
    sig.raise(CheckerId::MemEcc, Unit::Core, true,
              "uncorrectable main-store word");
  }

  // ---------- detect ----------
  const WbData wb = idu_.wb_view(f);
  Lsu::DrainPlan drain;
  if (wb.valid) {
    sig.completion = true;
    sig.completion_is_stop = wb.is_stop;
    idu_.verify_completion(f, wb, sig, rut_.completion_pc(f), fxu_.mode(),
                           fpu_.mode(), lsu_.mode());
    if (wb.is_store) drain = lsu_.plan_drain(f, sig);
  }

  const bool rut_active_now = rut_.active(f);
  const Rut::Plan rut_plan = rut_.detect(f, sig);
  Fxu::Plan fxu_plan = fxu_.detect(f, sig);
  Fpu::Plan fpu_plan = fpu_.detect(f, sig);
  Lsu::Plan lsu_plan = lsu_.detect(f, sig, mem_);
  Ifu::Plan ifu_plan = ifu_.detect(f, sig, /*quiesced=*/rut_active_now);
  Idu::IssuePlan issue_plan = idu_.plan_issue(f, sig, ifu_, fxu_, fpu_, lsu_);

  // In-order invariant: at most one instruction may reach WB per cycle. A
  // violation means corrupted valid bits — a completion-bus collision the
  // pervasive protocol checker treats as fatal.
  WbData wb_next;
  {
    int producers = 0;
    for (const WbData* cand :
         {&fxu_plan.wb, &fpu_plan.wb, &lsu_plan.wb}) {
      if (cand->valid) {
        ++producers;
        if (!wb_next.valid) wb_next = *cand;
      }
    }
    if (producers > 1 &&
        perv_.mode().checker_on(f, CheckerId::CoreRecoveryProtocol)) {
      sig.raise(CheckerId::CoreRecoveryProtocol, Unit::Core, true,
                "completion bus collision");
    }
  }

  // ---------- decide ----------
  const bool rut_active = rut_active_now;
  const Controls ctl = perv_.decide(f, sig, rut_active);

  const bool allow_issue = !ctl.flush && !ctl.block_issue;
  if (!allow_issue) {
    sig.redirect = false;  // a squashed branch must not redirect fetch
  }
  const bool do_issue = issue_plan.issue && allow_issue;
  const bool do_take = issue_plan.take_fetch && allow_issue &&
                       (do_issue || issue_plan.issue == false);

  // ---------- update ----------
  // 0. RUT first: it drains (and clears) its checkpoint write ports from the
  //    *current* state before this cycle's completion stages new ones —
  //    otherwise a back-to-back completion's port write would be clobbered.
  rut_.update(f, rut_plan, ctl);

  // 1. Completion (architects state; must precede the IDU's issue staging so
  //    scoreboard releases compose with same-cycle sets).
  if (wb.valid && !ctl.block_completion) {
    u32 port = 0;
    switch (wb.dest_kind) {
      case DestKind::Gpr:
        fxu_.gpr().write(f, wb.dest, wb.value);
        rut_.stage_port(f, port++, Rut::kGprBase + wb.dest, wb.value);
        break;
      case DestKind::Fpr: {
        const u32 idx = wb.dest % isa::kNumFprs;
        fpu_.fpr().write(f, idx, wb.value);
        rut_.stage_port(f, port++, Rut::kFprBase + idx, wb.value);
        break;
      }
      case DestKind::Cr: {
        const u32 cr_after = idu_.write_cr_field(f, wb.dest & 7,
                                                 static_cast<u32>(wb.value));
        rut_.stage_port(f, port++, Rut::kCrEntry, cr_after);
        break;
      }
      case DestKind::None:
        break;
    }
    if (wb.write_lr) {
      idu_.write_lr(f, wb.lr_val);
      rut_.stage_port(f, port++, Rut::kLrEntry, wb.lr_val);
    }
    if (wb.write_ctr) {
      ensure(port < 2, "completion needs more than two checkpoint ports");
      idu_.write_ctr(f, wb.ctr_val);
      rut_.stage_port(f, port++, Rut::kCtrEntry, wb.ctr_val);
    }
    rut_.on_completion(f, wb.pc_next, /*count=*/!wb.is_stop);
    idu_.release_scoreboard(f, wb);
    if (wb.is_store) lsu_.apply_drain(f, drain, mem_);
  }

  // 2. Restore write path (mutually exclusive with completions: the
  //    pipeline is flushed while the RUT sequencer runs).
  if (rut_plan.restore.valid) {
    const u32 e = rut_plan.restore.entry;
    const u64 v = rut_plan.restore.value;
    if (e < Rut::kFprBase) {
      fxu_.gpr().write(f, e - Rut::kGprBase, v);
    } else if (e < Rut::kFprBase + isa::kNumFprs) {
      fpu_.fpr().write(f, e - Rut::kFprBase, v);
    } else if (e == Rut::kCrEntry) {
      idu_.write_cr_whole(f, static_cast<u32>(v));
    } else if (e == Rut::kLrEntry) {
      idu_.write_lr(f, v);
    } else if (e == Rut::kCtrEntry) {
      idu_.write_ctr(f, v);
    }
  }

  // 3. Execution units (issue routing honours the decision).
  std::optional<IssueBundle> to_fxu;
  std::optional<IssueBundle> to_fpu;
  std::optional<IssueBundle> to_lsu;
  if (do_issue) {
    switch (issue_plan.target) {
      case IssueTarget::Fxu: to_fxu = issue_plan.bundle; break;
      case IssueTarget::Fpu: to_fpu = issue_plan.bundle; break;
      case IssueTarget::Lsu: to_lsu = issue_plan.bundle; break;
      case IssueTarget::None: break;
    }
  }
  fxu_.update(f, fxu_plan, ctl, to_fxu);
  fpu_.update(f, fpu_plan, ctl, to_fpu);
  lsu_.update(f, lsu_plan, ctl, to_lsu, mem_);

  // 4. IDU: WB staging, DEC movement, scoreboard.
  {
    Idu::IssuePlan gated = issue_plan;
    gated.issue = do_issue;
    gated.take_fetch = do_take;
    idu_.update(f, gated, ctl, wb_next);
    if (do_take) {
      const Ifu::Head head = ifu_.head(f);
      idu_.stage_dec(f, head.instr, head.pc);
    }
  }

  // 5. IFU (fetch, redirects, buffer movement).
  ifu_.update(f, ifu_plan, ctl, sig, /*dequeue=*/do_take, mem_);

  // 6. Pervasive bookkeeping.
  perv_.update(f, sig, ctl, rut_active);

  if (observer_ &&
      (!sig.events.empty() || ctl.start_recovery || ctl.checkstop ||
       ctl.hang || sig.recovery_refetch || sig.corrected > 0)) {
    observer_(sig, ctl);
  }
}

emu::RasStatus Pearl6Model::ras_status(
    const netlist::StateVector& sv) const {
  emu::RasStatus s;
  s.checkstop = perv_.checkstop_peek(sv);
  s.hang_detected = perv_.hang_peek(sv);
  s.recovery_active = rut_.active_peek(sv);
  s.recovery_count = perv_.recovery_count_peek(sv);
  s.corrected_count = perv_.corrected_count_peek(sv);
  s.instructions_completed = rut_.completion_count(sv);
  s.test_finished = perv_.done_peek(sv);
  return s;
}

isa::ArchState Pearl6Model::arch_state(const netlist::StateVector& sv) const {
  return rut_.arch_state(sv);
}

void Pearl6Model::save_aux(std::vector<u8>& out) const {
  mem_.save(out);
  ifu_.icache().data_array().save(out);
  lsu_.dcache().data_array().save(out);
  rut_.checkpoint_array().save(out);
}

void Pearl6Model::restore_aux(std::span<const u8> in) {
  mem_.load_snapshot(in);
  ifu_.icache().data_array().load(in);
  lsu_.dcache().data_array().load(in);
  rut_.checkpoint_array().load(in);
  require(in.empty(), "aux snapshot size mismatch");
}

}  // namespace sfi::core
