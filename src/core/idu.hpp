// IDU — instruction decode, hazard/issue and completion unit.
//
// Holds the DEC latch (one instruction being decoded), the architected
// CR/LR/CTR specials (parity-protected), the register scoreboard, the
// stop-seen flag and the WB/completion latch bundle. Issue resolves branches
// (redirecting the IFU), reads operands with parity verification and
// WB-stage forwarding, and stages an IssueBundle into exactly one execution
// unit. Completion re-verifies control parity and result integrity codes
// before anything architects.
#pragma once

#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/fpu.hpp"
#include "core/fxu.hpp"
#include "core/ifu.hpp"
#include "core/lsu.hpp"
#include "core/mode_ring.hpp"
#include "core/pipeline_types.hpp"
#include "core/signals.hpp"
#include "core/spare_chain.hpp"
#include "netlist/field.hpp"
#include "netlist/registry.hpp"

namespace sfi::core {

enum class IssueTarget : u8 { None, Fxu, Fpu, Lsu };

class Idu {
 public:
  explicit Idu(netlist::LatchRegistry& reg);

  /// The instruction currently in the WB/completion latches.
  [[nodiscard]] WbData wb_view(const netlist::CycleFrame& f) const;

  /// Completion-time integrity verification for the WB instruction (detect
  /// phase; events via sig). Control parity is the IDU's own checker; the
  /// value parity / residue codes are verified against the *producing*
  /// unit's checker enables. Returns false when a check failed.
  bool verify_completion(const netlist::CycleFrame& f, const WbData& wb,
                         Signals& sig, u32 checkpoint_pc,
                         const ModeRing& fxu_mode, const ModeRing& fpu_mode,
                         const ModeRing& lsu_mode) const;

  struct IssuePlan {
    bool held = false;
    bool take_fetch = false;  ///< consume the IFU head into DEC
    bool issue = false;
    IssueTarget target = IssueTarget::None;
    IssueBundle bundle;
    bool set_stop_seen = false;
    // Scoreboard bits to set at issue.
    bool busy_gpr = false;
    u8 busy_gpr_idx = 0;
    bool busy_fpr = false;
    u8 busy_fpr_idx = 0;
    bool busy_cr = false;
    bool busy_lr = false;
    bool busy_ctr = false;
  };

  /// Detect phase: decode DEC, resolve hazards and branches, plan the issue.
  [[nodiscard]] IssuePlan plan_issue(const netlist::CycleFrame& f,
                                     Signals& sig, Ifu& ifu, Fxu& fxu,
                                     Fpu& fpu, Lsu& lsu);

  /// Update phase: DEC movement, scoreboard set, stop_seen, WB staging.
  /// `wb_next` is the (at most one) WB bundle produced by a unit this cycle.
  void update(const netlist::CycleFrame& f, const IssuePlan& plan,
              const Controls& ctl, const WbData& wb_next);

  /// Stage a new DEC entry (the IFU head consumed this cycle).
  void stage_dec(const netlist::CycleFrame& f, u32 instr, u32 pc) const;

  // --- completion/restore write paths (update phase; called by the model) ---
  /// Returns the full CR value after the write (for the RUT checkpoint).
  u32 write_cr_field(const netlist::CycleFrame& f, u32 crf, u32 field) const;
  void write_cr_whole(const netlist::CycleFrame& f, u32 value) const;
  void write_lr(const netlist::CycleFrame& f, u64 value) const;
  void write_ctr(const netlist::CycleFrame& f, u64 value) const;
  /// Clear the scoreboard bits the completing instruction owned.
  void release_scoreboard(const netlist::CycleFrame& f, const WbData& wb) const;

  // --- architected-state peeks (reset / extraction) ---
  [[nodiscard]] u32 peek_cr(const netlist::StateVector& sv) const;
  [[nodiscard]] u64 peek_lr(const netlist::StateVector& sv) const;
  [[nodiscard]] u64 peek_ctr(const netlist::StateVector& sv) const;

  [[nodiscard]] ModeRing& mode() { return mode_; }

  void reset(netlist::StateVector& sv, const isa::ArchState& init,
             const CoreConfig& cfg);

 private:
  struct SourceRead {
    bool ok = true;       ///< hazard-free (issueable)
    u64 value = 0;
  };
  [[nodiscard]] SourceRead read_gpr(const netlist::CycleFrame& f, Fxu& fxu,
                                    u32 idx, const WbData& wb, Signals& sig,
                                    bool& parity_bad) const;
  [[nodiscard]] SourceRead read_fpr(const netlist::CycleFrame& f, Fpu& fpu,
                                    u32 idx, const WbData& wb, Signals& sig,
                                    bool& parity_bad) const;

  ModeRing mode_;
  SpareChain spares_;

  // DEC latch.
  netlist::Flag dec_v_;
  netlist::Field dec_instr_;  // 32
  netlist::Field dec_pc_;     // 16
  netlist::Flag dec_par_;

  // Supervisor SPR file: SPRG/SRR/DAR-style registers PearlISA software
  // never touches — the cold majority of a real core's REGFILE population.
  std::vector<netlist::Field> spr_;
  std::vector<netlist::Flag> spr_par_;

  // Architected specials.
  netlist::Field cr_;  // 32
  netlist::Flag cr_par_;
  netlist::Field lr_;  // 64
  netlist::Flag lr_par_;
  netlist::Field ctr_;  // 64
  netlist::Flag ctr_par_;

  // Scoreboard.
  netlist::Field sb_gpr_lo_;  // 32 (gpr 0..31 busy bits)
  netlist::Field sb_fpr_;     // 16
  netlist::Flag sb_cr_;
  netlist::Flag sb_lr_;
  netlist::Flag sb_ctr_;
  netlist::Flag stop_seen_;

  // WB/completion latches.
  netlist::Flag wb_v_;
  netlist::Field wb_mn_;    // 6
  netlist::Field wb_dk_;    // 2
  netlist::Field wb_dest_;  // 5
  netlist::Field wb_val_;   // 64
  netlist::Flag wb_vpar_;
  netlist::Field wb_res2_;  // 2
  netlist::Field wb_pc_;    // 16
  netlist::Field wb_pcn_;   // 16
  netlist::Flag wb_st_;
  netlist::Flag wb_stop_;
  netlist::Flag wb_wlr_;
  netlist::Field wb_lrval_;  // 64
  netlist::Flag wb_wctr_;
  netlist::Field wb_ctrval_;  // 64
  netlist::Flag wb_ctlpar_;
};

}  // namespace sfi::core
