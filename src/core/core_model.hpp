// Pearl6Model: the full synthetic core, assembled from its seven units and
// exposed to the emulation harness through the emu::Model contract.
//
// Evaluation is strictly two-phase per cycle:
//   detect  — every unit computes its combinational plan and raises checker
//             events (pure reads of the current latch state),
//   decide  — pervasive logic arbitrates recovery / checkstop / hang,
//   update  — units stage next-cycle latch values honouring the decision;
//             the completion and restore write paths are applied here.
#pragma once

#include <functional>
#include <memory>

#include "core/config.hpp"
#include "core/fpu.hpp"
#include "core/fxu.hpp"
#include "core/idu.hpp"
#include "core/ifu.hpp"
#include "core/lsu.hpp"
#include "core/pervasive.hpp"
#include "core/rut.hpp"
#include "emu/model.hpp"
#include "isa/golden.hpp"
#include "isa/program.hpp"
#include "mem/ecc_memory.hpp"

namespace sfi::core {

class Pearl6Model final : public emu::Model {
 public:
  explicit Pearl6Model(CoreConfig cfg = {});

  /// Select the workload the next reset() will load.
  void load_workload(isa::Program program, isa::ArchState init);

  [[nodiscard]] const CoreConfig& config() const { return cfg_; }
  [[nodiscard]] const isa::Program& program() const { return program_; }
  [[nodiscard]] const isa::ArchState& initial_state() const { return init_; }

  // --- emu::Model ---
  [[nodiscard]] const netlist::LatchRegistry& registry() const override {
    return reg_;
  }
  [[nodiscard]] netlist::ArrayRegistry& arrays() override { return arrays_; }
  void reset(netlist::StateVector& sv) override;
  void evaluate(const netlist::CycleFrame& f) override;
  [[nodiscard]] emu::RasStatus ras_status(
      const netlist::StateVector& sv) const override;
  [[nodiscard]] isa::ArchState arch_state(
      const netlist::StateVector& sv) const override;
  void save_aux(std::vector<u8>& out) const override;
  void restore_aux(std::span<const u8> in) override;

  /// Observer for cause→effect tracing: invoked once per evaluated cycle in
  /// which anything RAS-relevant happened (checker events, recovery start /
  /// completion, checkstop, hang). Keep the callback cheap; it runs inside
  /// the cycle loop.
  using CycleObserver =
      std::function<void(const Signals& sig, const Controls& ctl)>;
  void set_cycle_observer(CycleObserver obs) { observer_ = std::move(obs); }
  void clear_cycle_observer() { observer_ = nullptr; }

  // --- direct access for tests, examples and the beam simulator ---
  [[nodiscard]] mem::EccMemory& memory() { return mem_; }
  [[nodiscard]] const mem::EccMemory& memory() const { return mem_; }
  [[nodiscard]] Ifu& ifu() { return ifu_; }
  [[nodiscard]] Idu& idu() { return idu_; }
  [[nodiscard]] Fxu& fxu() { return fxu_; }
  [[nodiscard]] Fpu& fpu() { return fpu_; }
  [[nodiscard]] Lsu& lsu() { return lsu_; }
  [[nodiscard]] Rut& rut() { return rut_; }
  [[nodiscard]] Pervasive& pervasive() { return perv_; }

 private:
  CoreConfig cfg_;
  netlist::LatchRegistry reg_;
  netlist::ArrayRegistry arrays_;
  mem::EccMemory mem_;

  Ifu ifu_;
  Idu idu_;
  Fxu fxu_;
  Fpu fpu_;
  Lsu lsu_;
  Rut rut_;
  Pervasive perv_;

  isa::Program program_;
  isa::ArchState init_;
  CycleObserver observer_;
};

}  // namespace sfi::core
