#include "core/dcache.hpp"

#include "common/bits.hpp"
#include "common/check.hpp"

namespace sfi::core {

namespace {
using netlist::ArrayProtection;
using netlist::ArrayReadStatus;
using netlist::LatchType;
using netlist::Unit;

constexpr u32 tag_parity_word(u64 tag, bool valid) {
  return parity(tag | (static_cast<u64>(valid) << 7), 8);
}
}  // namespace

DCache::DCache(netlist::LatchRegistry& reg, u8 scan_ring)
    : data_("lsu.dcache.data", Unit::LSU, ArrayProtection::Parity, kLines * 2,
            64) {
  valid_.reserve(kLines);
  tag_.reserve(kLines);
  tag_par_.reserve(kLines);
  for (u32 i = 0; i < kLines; ++i) {
    const std::string n = "lsu.dcache.t" + std::to_string(i);
    valid_.emplace_back(
        reg.add(n + ".v", Unit::LSU, LatchType::Func, scan_ring, 1));
    tag_.emplace_back(
        reg.add(n + ".tag", Unit::LSU, LatchType::Func, scan_ring, 7));
    tag_par_.emplace_back(
        reg.add(n + ".p", Unit::LSU, LatchType::Func, scan_ring, 1));
  }
  busy_ = netlist::Flag(
      reg.add("lsu.dcache.miss.busy", Unit::LSU, LatchType::Func, scan_ring, 1));
  pend_cached_ = netlist::Flag(reg.add("lsu.dcache.miss.cached", Unit::LSU,
                                       LatchType::Func, scan_ring, 1));
  pend_addr_ = netlist::Field(reg.add("lsu.dcache.miss.addr", Unit::LSU,
                                      LatchType::Func, scan_ring, 16));
  pend_size_ = netlist::Field(reg.add("lsu.dcache.miss.size", Unit::LSU,
                                      LatchType::Func, scan_ring, 2));
  wait_ = netlist::Field(
      reg.add("lsu.dcache.miss.wait", Unit::LSU, LatchType::Func, scan_ring, 4));
}

DCache::Plan DCache::plan_load(const netlist::CycleFrame& f, u32 addr,
                               u32 size, bool want, const ModeRing& mode,
                               Signals& sig, mem::EccMemory& mem) {
  Plan plan;
  plan.want = want;
  plan.addr = addr & 0xFFFF;
  plan.size = size;
  plan.line = line_of(plan.addr);

  if (busy_.get(f)) {
    if (wait_.get(f) == 0) {
      plan.finish = true;
      const auto paddr = static_cast<u32>(pend_addr_.get(f));
      const u32 psize = decode_size(static_cast<u32>(pend_size_.get(f)));
      // Fill-forward only to the access that started the miss; a squashed
      // request's refill completes silently and the new access retries.
      if (want && paddr == plan.addr && psize == size) {
        plan.done = true;
        plan.data = mem.load(paddr, psize);
      }
      plan.line = line_of(paddr);
    }
    return plan;
  }
  if (!want) return plan;

  const u32 off8 = plan.addr & 7;
  if (off8 + size > 8) {
    plan.start_uncached = true;
    return plan;
  }

  const u32 line = plan.line;
  const bool v = valid_[line].get(f);
  const u64 tag = tag_[line].get(f);
  const bool tag_ok =
      tag_parity_word(tag, v) ==
      static_cast<u32>(tag_par_[line].get(f) ? 1 : 0);

  if (!tag_ok && mode.checker_on(f, CheckerId::LsuDcacheTagParity)) {
    sig.raise(CheckerId::LsuDcacheTagParity, Unit::LSU, false,
              "dcache tag parity");
    plan.invalidate = true;
    plan.start_miss = true;
    return plan;
  }
  if (!v || tag != tag_of(plan.addr)) {
    plan.start_miss = true;
    return plan;
  }

  const u32 entry = line * 2 + ((plan.addr >> 3) & 1);
  const auto rr = data_.read(entry);
  if (rr.status == ArrayReadStatus::Detected &&
      mode.checker_on(f, CheckerId::LsuDcacheDataParity)) {
    sig.raise(CheckerId::LsuDcacheDataParity, Unit::LSU, false,
              "dcache data parity");
    plan.invalidate = true;
    plan.start_miss = true;
    return plan;
  }
  plan.done = true;
  plan.data = (rr.value >> (off8 * 8)) & mask_low(size * 8);
  return plan;
}

void DCache::update(const netlist::CycleFrame& f, const Plan& plan,
                    mem::EccMemory& mem) {
  if (plan.invalidate) valid_[plan.line].set(f, false);

  if (busy_.get(f)) {
    const u64 w = wait_.get(f);
    if (w > 0) {
      wait_.set(f, w - 1);
      return;
    }
    if (pend_cached_.get(f)) {
      // Refill the whole line alongside the forwarded data.
      const auto addr = static_cast<u32>(pend_addr_.get(f));
      const u32 line = line_of(addr);
      const u32 base = addr & ~(kLineBytes - 1);
      data_.write(line * 2 + 0, mem.load_u64(base));
      data_.write(line * 2 + 1, mem.load_u64(base + 8));
      valid_[line].set(f, true);
      tag_[line].set(f, tag_of(addr));
      tag_par_[line].set(f, tag_parity_word(tag_of(addr), true) != 0);
    }
    busy_.set(f, false);
    return;
  }

  if (plan.start_miss || plan.start_uncached) {
    busy_.set(f, true);
    pend_cached_.set(f, plan.start_miss);
    pend_addr_.set(f, plan.addr);
    pend_size_.set(f, encode_size(plan.size));
    wait_.set(f, CoreConfig::kMemLatency);
  }
}

void DCache::commit_store(const netlist::CycleFrame& f, u32 addr, u32 size,
                          u64 value, mem::EccMemory& mem) {
  addr &= 0xFFFF;
  mem.store(addr, value, size);
  // Invalidate every line the store bytes touch (at most two).
  const auto drop = [&](u32 a) {
    const u32 line = line_of(a);
    if (valid_[line].get(f) && tag_[line].get(f) == tag_of(a)) {
      valid_[line].set(f, false);
      tag_par_[line].set(f,
                         tag_parity_word(tag_[line].get(f), false) != 0);
    }
  };
  drop(addr);
  if (line_of(addr + size - 1) != line_of(addr)) drop(addr + size - 1);
}

void DCache::reset(netlist::StateVector& sv) {
  for (u32 i = 0; i < kLines; ++i) {
    valid_[i].poke(sv, false);
    tag_[i].poke(sv, 0);
    tag_par_[i].poke(sv, false);
  }
  busy_.poke(sv, false);
  pend_cached_.poke(sv, false);
  pend_addr_.poke(sv, 0);
  pend_size_.poke(sv, 0);
  wait_.poke(sv, 0);
  data_.fill_zero();
}

}  // namespace sfi::core
