// Shared pipeline bundle formats: what the IDU stages into an execution
// unit at issue, and what an execution unit stages into the WB/completion
// latches. The control-field parity accompanies the bundle through the
// machine and is re-verified at completion (a flip in any staged control
// latch is caught before it can architect state).
#pragma once

#include "common/bits.hpp"
#include "common/types.hpp"
#include "isa/encoding.hpp"

namespace sfi::core {

enum class DestKind : u8 { None = 0, Gpr = 1, Fpr = 2, Cr = 3 };

/// Values captured at issue time and carried through execution.
struct IssueBundle {
  isa::Mnemonic mn = isa::Mnemonic::ILLEGAL;
  DestKind dest_kind = DestKind::None;
  u8 dest = 0;
  u64 a = 0;       ///< first operand / effective address (LSU)
  u64 b = 0;       ///< second operand / immediate / store data (LSU)
  u32 pc = 0;      ///< the instruction's own PC (completion sequence check)
  u32 pc_next = 0; ///< architected next-PC after this instruction
  bool is_store = false;
  bool is_stop = false;
  bool write_lr = false;
  u64 lr_val = 0;
  bool write_ctr = false;
  u64 ctr_val = 0;
};

/// What a unit hands to the WB/completion stage.
struct WbData {
  bool valid = false;
  isa::Mnemonic mn = isa::Mnemonic::ILLEGAL;
  DestKind dest_kind = DestKind::None;
  u8 dest = 0;
  u64 value = 0;
  bool vpar = false;          ///< parity of value as staged by the producer
  u8 res2 = 0;                ///< mod-3 residue code of value (FXU results)
  u32 pc = 0;                 ///< own PC (must equal the checkpoint PC)
  u32 pc_next = 0;
  bool is_store = false;
  bool is_stop = false;
  bool write_lr = false;
  u64 lr_val = 0;
  bool write_ctr = false;
  u64 ctr_val = 0;
  bool ctl_par = false;       ///< control parity staged at issue
};

/// Parity over every control field of a bundle (data fields have their own
/// parity latches). Producers fold the same fields so a flip in any staged
/// control latch shows up at completion.
[[nodiscard]] inline bool control_parity(isa::Mnemonic mn, DestKind dk,
                                         u8 dest, u32 pc, u32 pc_next,
                                         bool is_store, bool is_stop,
                                         bool write_lr, bool write_ctr) {
  u64 x = static_cast<u64>(mn);
  x ^= static_cast<u64>(dk) << 8;
  x ^= static_cast<u64>(dest) << 12;
  x ^= static_cast<u64>(pc_next) << 20;
  x ^= static_cast<u64>(is_store) << 40;
  x ^= static_cast<u64>(is_stop) << 41;
  x ^= static_cast<u64>(write_lr) << 42;
  x ^= static_cast<u64>(write_ctr) << 43;
  x ^= static_cast<u64>(pc) << 44;
  return parity(x) != 0;
}

/// Does the completion stage verify the mod-3 residue code for this result?
/// True for every GPR result produced by the FXU datapath (ALU/mul/div/SPR
/// reads); loads carry plain parity instead.
[[nodiscard]] inline bool residue_checked(isa::Mnemonic mn, DestKind dk) {
  if (dk != DestKind::Gpr) return false;
  switch (mn) {
    case isa::Mnemonic::LWZ:
    case isa::Mnemonic::LBZ:
    case isa::Mnemonic::LD:
      return false;
    default:
      return true;
  }
}

}  // namespace sfi::core
