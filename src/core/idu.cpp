#include "core/idu.hpp"

#include "common/bits.hpp"
#include "common/check.hpp"
#include "isa/exec.hpp"

namespace sfi::core {

namespace {
using isa::Instr;
using isa::InstrClass;
using isa::Mnemonic;
using netlist::LatchType;
using netlist::Unit;
constexpr u8 kRing = 1;
}  // namespace

Idu::Idu(netlist::LatchRegistry& reg)
    : mode_(reg, "idu", Unit::IDU, kRing, CheckerId::IduDecodeParity, 2),
      spares_(reg, "idu", Unit::IDU, kRing, 400) {
  dec_v_ = netlist::Flag(reg.add("idu.dec.v", Unit::IDU, LatchType::Func, kRing, 1));
  dec_instr_ = netlist::Field(reg.add("idu.dec.instr", Unit::IDU, LatchType::Func, kRing, 32));
  dec_pc_ = netlist::Field(reg.add("idu.dec.pc", Unit::IDU, LatchType::Func, kRing, 16));
  dec_par_ = netlist::Flag(reg.add("idu.dec.p", Unit::IDU, LatchType::Func, kRing, 1));

  for (u32 i = 0; i < 16; ++i) {
    const std::string n = "idu.spr" + std::to_string(i);
    spr_.emplace_back(reg.add(n, Unit::IDU, LatchType::RegFile, kRing, 64));
    spr_par_.emplace_back(
        reg.add(n + ".p", Unit::IDU, LatchType::RegFile, kRing, 1));
  }
  cr_ = netlist::Field(reg.add("idu.cr", Unit::IDU, LatchType::RegFile, kRing, 32));
  cr_par_ = netlist::Flag(reg.add("idu.cr.p", Unit::IDU, LatchType::RegFile, kRing, 1));
  lr_ = netlist::Field(reg.add("idu.lr", Unit::IDU, LatchType::RegFile, kRing, 64));
  lr_par_ = netlist::Flag(reg.add("idu.lr.p", Unit::IDU, LatchType::RegFile, kRing, 1));
  ctr_ = netlist::Field(reg.add("idu.ctr", Unit::IDU, LatchType::RegFile, kRing, 64));
  ctr_par_ = netlist::Flag(reg.add("idu.ctr.p", Unit::IDU, LatchType::RegFile, kRing, 1));

  sb_gpr_lo_ = netlist::Field(reg.add("idu.sb.gpr", Unit::IDU, LatchType::Func, kRing, 32));
  sb_fpr_ = netlist::Field(reg.add("idu.sb.fpr", Unit::IDU, LatchType::Func, kRing, 16));
  sb_cr_ = netlist::Flag(reg.add("idu.sb.cr", Unit::IDU, LatchType::Func, kRing, 1));
  sb_lr_ = netlist::Flag(reg.add("idu.sb.lr", Unit::IDU, LatchType::Func, kRing, 1));
  sb_ctr_ = netlist::Flag(reg.add("idu.sb.ctr", Unit::IDU, LatchType::Func, kRing, 1));
  stop_seen_ = netlist::Flag(reg.add("idu.stop_seen", Unit::IDU, LatchType::Func, kRing, 1));

  wb_v_ = netlist::Flag(reg.add("idu.wb.v", Unit::IDU, LatchType::Func, kRing, 1));
  wb_mn_ = netlist::Field(reg.add("idu.wb.mn", Unit::IDU, LatchType::Func, kRing, 6));
  wb_dk_ = netlist::Field(reg.add("idu.wb.dk", Unit::IDU, LatchType::Func, kRing, 2));
  wb_dest_ = netlist::Field(reg.add("idu.wb.dest", Unit::IDU, LatchType::Func, kRing, 5));
  wb_val_ = netlist::Field(reg.add("idu.wb.val", Unit::IDU, LatchType::Func, kRing, 64));
  wb_vpar_ = netlist::Flag(reg.add("idu.wb.val.p", Unit::IDU, LatchType::Func, kRing, 1));
  wb_res2_ = netlist::Field(reg.add("idu.wb.res2", Unit::IDU, LatchType::Func, kRing, 2));
  wb_pc_ = netlist::Field(reg.add("idu.wb.pc", Unit::IDU, LatchType::Func, kRing, 16));
  wb_pcn_ = netlist::Field(reg.add("idu.wb.pcn", Unit::IDU, LatchType::Func, kRing, 16));
  wb_st_ = netlist::Flag(reg.add("idu.wb.st", Unit::IDU, LatchType::Func, kRing, 1));
  wb_stop_ = netlist::Flag(reg.add("idu.wb.stop", Unit::IDU, LatchType::Func, kRing, 1));
  wb_wlr_ = netlist::Flag(reg.add("idu.wb.wlr", Unit::IDU, LatchType::Func, kRing, 1));
  wb_lrval_ = netlist::Field(reg.add("idu.wb.lrval", Unit::IDU, LatchType::Func, kRing, 64));
  wb_wctr_ = netlist::Flag(reg.add("idu.wb.wctr", Unit::IDU, LatchType::Func, kRing, 1));
  wb_ctrval_ = netlist::Field(reg.add("idu.wb.ctrval", Unit::IDU, LatchType::Func, kRing, 64));
  wb_ctlpar_ = netlist::Flag(reg.add("idu.wb.ctl.p", Unit::IDU, LatchType::Func, kRing, 1));
}

WbData Idu::wb_view(const netlist::CycleFrame& f) const {
  WbData wb;
  wb.valid = wb_v_.get(f);
  if (!wb.valid) return wb;
  wb.mn = static_cast<Mnemonic>(wb_mn_.get(f));
  wb.dest_kind = static_cast<DestKind>(wb_dk_.get(f));
  wb.dest = static_cast<u8>(wb_dest_.get(f));
  wb.value = wb_val_.get(f);
  wb.vpar = wb_vpar_.get(f);
  wb.res2 = static_cast<u8>(wb_res2_.get(f));
  wb.pc = static_cast<u32>(wb_pc_.get(f));
  wb.pc_next = static_cast<u32>(wb_pcn_.get(f));
  wb.is_store = wb_st_.get(f);
  wb.is_stop = wb_stop_.get(f);
  wb.write_lr = wb_wlr_.get(f);
  wb.lr_val = wb_lrval_.get(f);
  wb.write_ctr = wb_wctr_.get(f);
  wb.ctr_val = wb_ctrval_.get(f);
  wb.ctl_par = wb_ctlpar_.get(f);
  return wb;
}

bool Idu::verify_completion(const netlist::CycleFrame& f, const WbData& wb,
                            Signals& sig, u32 checkpoint_pc,
                            const ModeRing& fxu_mode,
                            const ModeRing& fpu_mode,
                            const ModeRing& lsu_mode) const {
  bool ok = true;
  const bool ctl_ok =
      control_parity(wb.mn, wb.dest_kind, wb.dest, wb.pc, wb.pc_next,
                     wb.is_store, wb.is_stop, wb.write_lr, wb.write_ctr) ==
      wb.ctl_par;
  if (!ctl_ok && mode_.checker_on(f, CheckerId::IduControlParity)) {
    sig.raise(CheckerId::IduControlParity, Unit::IDU, false,
              "completion control parity");
    ok = false;
  }
  // Completion sequence check: in-order completion means the completing
  // instruction's PC must equal the architected next-PC held by the RUT.
  // This is what catches dropped/conjured instructions (flipped valid bits
  // and queue pointers) before they silently skip part of the program.
  if (wb.pc != checkpoint_pc &&
      mode_.checker_on(f, CheckerId::IduControlParity)) {
    sig.raise(CheckerId::IduControlParity, Unit::IDU, false,
              "completion sequence (pc != checkpoint pc)");
    ok = false;
  }
  if (wb.dest_kind != DestKind::None || wb.write_lr || wb.write_ctr) {
    const bool is_fx_result = residue_checked(wb.mn, wb.dest_kind);
    const bool vpar_ok = (parity(wb.value) != 0) == wb.vpar;
    if (!vpar_ok) {
      if (wb.dest_kind == DestKind::Fpr) {
        if (fpu_mode.checker_on(f, CheckerId::FpuResultParity)) {
          sig.raise(CheckerId::FpuResultParity, Unit::FPU, false,
                    "completion result parity");
          ok = false;
        }
      } else if (is_fx_result) {
        if (fxu_mode.checker_on(f, CheckerId::FxuOperandParity)) {
          sig.raise(CheckerId::FxuOperandParity, Unit::FXU, false,
                    "completion result parity");
          ok = false;
        }
      } else if (lsu_mode.checker_on(f, CheckerId::LsuDcacheDataParity)) {
        sig.raise(CheckerId::LsuDcacheDataParity, Unit::LSU, false,
                  "completion result parity");
        ok = false;
      }
    }
    if (is_fx_result && residue3(wb.value) != wb.res2 &&
        fxu_mode.checker_on(f, CheckerId::FxuResidue)) {
      sig.raise(CheckerId::FxuResidue, Unit::FXU, false,
                "completion residue code");
      ok = false;
    }
  }
  return ok;
}

Idu::SourceRead Idu::read_gpr(const netlist::CycleFrame& f, Fxu& fxu, u32 idx,
                              const WbData& wb, Signals& sig,
                              bool& parity_bad) const {
  SourceRead r;
  const bool busy = ((sb_gpr_lo_.get(f) >> idx) & 1) != 0;
  if (busy) {
    if (wb.valid && wb.dest_kind == DestKind::Gpr && wb.dest == idx) {
      r.value = wb.value;  // WB forwarding
      return r;
    }
    r.ok = false;
    return r;
  }
  const auto rr = fxu.gpr().read(f, idx);
  r.value = rr.value;
  if (!rr.parity_ok) {
    parity_bad = true;
    if (fxu.mode().checker_on(f, CheckerId::FxuGprParity)) {
      sig.raise(CheckerId::FxuGprParity, Unit::FXU, false, "gpr read parity");
    }
  }
  return r;
}

Idu::SourceRead Idu::read_fpr(const netlist::CycleFrame& f, Fpu& fpu, u32 idx,
                              const WbData& wb, Signals& sig,
                              bool& parity_bad) const {
  SourceRead r;
  idx %= isa::kNumFprs;
  const bool busy = ((sb_fpr_.get(f) >> idx) & 1) != 0;
  if (busy) {
    if (wb.valid && wb.dest_kind == DestKind::Fpr && wb.dest % isa::kNumFprs == idx) {
      r.value = wb.value;
      return r;
    }
    r.ok = false;
    return r;
  }
  const auto rr = fpu.fpr().read(f, idx);
  r.value = rr.value;
  if (!rr.parity_ok) {
    parity_bad = true;
    if (fpu.mode().checker_on(f, CheckerId::FpuFprParity)) {
      sig.raise(CheckerId::FpuFprParity, Unit::FPU, false, "fpr read parity");
    }
  }
  return r;
}

Idu::IssuePlan Idu::plan_issue(const netlist::CycleFrame& f, Signals& sig,
                               Ifu& ifu, Fxu& fxu, Fpu& fpu, Lsu& lsu) {
  IssuePlan plan;
  if (mode_.clocks_stopped(f)) {
    plan.held = true;
    return plan;
  }
  if (mode_.force_error(f) && mode_.checker_on(f, CheckerId::IduDecodeParity)) {
    sig.raise(CheckerId::IduDecodeParity, Unit::IDU, false,
              "idu mode force_error");
  }

  const WbData wb = wb_view(f);

  // DEC refill request (also fires alongside an issue, below).
  if (!dec_v_.get(f)) {
    const Ifu::Head head = ifu.head(f);
    if (head.valid && ifu.head_ok(f, sig)) plan.take_fetch = true;
    return plan;
  }

  // --- decode ---
  const auto instr = static_cast<u32>(dec_instr_.get(f));
  const auto pc = static_cast<u32>(dec_pc_.get(f));
  const bool dec_ok =
      (parity(static_cast<u64>(instr) ^ (static_cast<u64>(pc) << 32)) != 0) ==
      dec_par_.get(f);
  if (!dec_ok) {
    if (mode_.checker_on(f, CheckerId::IduDecodeParity)) {
      sig.raise(CheckerId::IduDecodeParity, Unit::IDU, false,
                "decode latch parity");
    }
    // With the checker masked the corrupted instruction decodes as-is.
  }
  const Instr in = isa::decode(instr);

  if (stop_seen_.get(f)) return plan;

  // One multi-cycle instruction in flight blocks all issue (in-order
  // completion with a single WB port).
  if (fxu.multi_busy(f) || fpu.any_valid(f) || lsu.any_valid(f)) return plan;

  // --- hazards & operand reads ---
  bool parity_bad = false;
  IssueBundle b;
  b.mn = in.mn;
  b.pc = pc & 0xFFFF;
  b.pc_next = (pc + 4) & 0xFFFF;

  const u64 sb_gpr = sb_gpr_lo_.get(f);
  const u64 sb_fpr = sb_fpr_.get(f);
  const auto gpr_busy_nofwd = [&](u32 idx) {
    return ((sb_gpr >> idx) & 1) != 0 &&
           !(wb.valid && wb.dest_kind == DestKind::Gpr && wb.dest == idx);
  };

  const auto cr_value = [&](bool& ok) -> u32 {
    if (sb_cr_.get(f)) {
      if (wb.valid && wb.dest_kind == DestKind::Cr) {
        return isa::cr_insert(static_cast<u32>(cr_.get(f)), wb.dest,
                              static_cast<u32>(wb.value));
      }
      ok = false;
      return 0;
    }
    const auto cr = static_cast<u32>(cr_.get(f));
    if ((parity(cr, 32) != 0) != cr_par_.get(f)) {
      parity_bad = true;
      if (mode_.checker_on(f, CheckerId::IduControlParity)) {
        sig.raise(CheckerId::IduControlParity, Unit::IDU, false,
                  "cr parity");
      }
    }
    return cr;
  };
  const auto lr_value = [&](bool& ok) -> u64 {
    if (sb_lr_.get(f)) {
      if (wb.valid && wb.write_lr) return wb.lr_val;
      ok = false;
      return 0;
    }
    const u64 lr = lr_.get(f);
    if ((parity(lr) != 0) != lr_par_.get(f)) {
      parity_bad = true;
      if (mode_.checker_on(f, CheckerId::IduControlParity)) {
        sig.raise(CheckerId::IduControlParity, Unit::IDU, false,
                  "lr parity");
      }
    }
    return lr;
  };
  const auto ctr_value = [&](bool& ok) -> u64 {
    if (sb_ctr_.get(f)) {
      if (wb.valid && wb.write_ctr) return wb.ctr_val;
      ok = false;
      return 0;
    }
    const u64 ctr = ctr_.get(f);
    if ((parity(ctr) != 0) != ctr_par_.get(f)) {
      parity_bad = true;
      if (mode_.checker_on(f, CheckerId::IduControlParity)) {
        sig.raise(CheckerId::IduControlParity, Unit::IDU, false,
                  "ctr parity");
      }
    }
    return ctr;
  };

  bool ready = true;
  plan.target = IssueTarget::Fxu;

  switch (in.mn) {
    // ---------- fixed point immediate ----------
    case Mnemonic::ADDI:
    case Mnemonic::ADDIS: {
      if (in.ra != 0) {
        if (gpr_busy_nofwd(in.ra)) { ready = false; break; }
        b.a = read_gpr(f, fxu, in.ra, wb, sig, parity_bad).value;
      }
      b.b = static_cast<u64>(in.imm);
      // Dest must be idle (no forwarding for WAW).
      if (((sb_gpr >> in.rt) & 1) != 0) { ready = false; break; }
      b.dest_kind = DestKind::Gpr;
      b.dest = in.rt;
      plan.busy_gpr = true;
      plan.busy_gpr_idx = in.rt;
      break;
    }
    case Mnemonic::ORI:
    case Mnemonic::XORI:
    case Mnemonic::ANDI: {
      if (gpr_busy_nofwd(in.ra)) { ready = false; break; }
      if (((sb_gpr >> in.rt) & 1) != 0) { ready = false; break; }
      b.a = read_gpr(f, fxu, in.ra, wb, sig, parity_bad).value;
      b.b = static_cast<u64>(in.imm);
      b.dest_kind = DestKind::Gpr;
      b.dest = in.rt;
      plan.busy_gpr = true;
      plan.busy_gpr_idx = in.rt;
      break;
    }
    // ---------- fixed point register ----------
    case Mnemonic::ADD: case Mnemonic::SUBF: case Mnemonic::AND:
    case Mnemonic::OR: case Mnemonic::XOR: case Mnemonic::NOR:
    case Mnemonic::SLD: case Mnemonic::SRD: case Mnemonic::SRAD:
    case Mnemonic::MULLD: case Mnemonic::DIVD: {
      if (gpr_busy_nofwd(in.ra) || gpr_busy_nofwd(in.rb)) { ready = false; break; }
      if (((sb_gpr >> in.rt) & 1) != 0) { ready = false; break; }
      b.a = read_gpr(f, fxu, in.ra, wb, sig, parity_bad).value;
      b.b = read_gpr(f, fxu, in.rb, wb, sig, parity_bad).value;
      b.dest_kind = DestKind::Gpr;
      b.dest = in.rt;
      plan.busy_gpr = true;
      plan.busy_gpr_idx = in.rt;
      break;
    }
    case Mnemonic::NEG:
    case Mnemonic::EXTSW: {
      if (gpr_busy_nofwd(in.ra)) { ready = false; break; }
      if (((sb_gpr >> in.rt) & 1) != 0) { ready = false; break; }
      b.a = read_gpr(f, fxu, in.ra, wb, sig, parity_bad).value;
      b.dest_kind = DestKind::Gpr;
      b.dest = in.rt;
      plan.busy_gpr = true;
      plan.busy_gpr_idx = in.rt;
      break;
    }
    // ---------- compares ----------
    case Mnemonic::CMP:
    case Mnemonic::CMPL: {
      if (gpr_busy_nofwd(in.ra) || gpr_busy_nofwd(in.rb)) { ready = false; break; }
      if (sb_cr_.get(f)) { ready = false; break; }
      b.a = read_gpr(f, fxu, in.ra, wb, sig, parity_bad).value;
      b.b = read_gpr(f, fxu, in.rb, wb, sig, parity_bad).value;
      b.dest_kind = DestKind::Cr;
      b.dest = in.crf;
      plan.busy_cr = true;
      break;
    }
    case Mnemonic::CMPI:
    case Mnemonic::CMPLI: {
      if (gpr_busy_nofwd(in.ra)) { ready = false; break; }
      if (sb_cr_.get(f)) { ready = false; break; }
      b.a = read_gpr(f, fxu, in.ra, wb, sig, parity_bad).value;
      b.b = static_cast<u64>(in.imm);
      b.dest_kind = DestKind::Cr;
      b.dest = in.crf;
      plan.busy_cr = true;
      break;
    }
    // ---------- SPR moves ----------
    case Mnemonic::MFSPR: {
      if (((sb_gpr >> in.rt) & 1) != 0) { ready = false; break; }
      bool ok = true;
      if (in.imm == isa::kSprLr) {
        b.a = lr_value(ok);
      } else if (in.imm == isa::kSprCtr) {
        b.a = ctr_value(ok);
      } else {
        b.a = 0;
      }
      if (!ok) { ready = false; break; }
      b.dest_kind = DestKind::Gpr;
      b.dest = in.rt;
      plan.busy_gpr = true;
      plan.busy_gpr_idx = in.rt;
      break;
    }
    case Mnemonic::MTSPR: {
      if (gpr_busy_nofwd(in.rt)) { ready = false; break; }
      const u64 v = read_gpr(f, fxu, in.rt, wb, sig, parity_bad).value;
      if (in.imm == isa::kSprLr) {
        if (sb_lr_.get(f)) { ready = false; break; }
        b.write_lr = true;
        b.lr_val = v;
        plan.busy_lr = true;
      } else if (in.imm == isa::kSprCtr) {
        if (sb_ctr_.get(f)) { ready = false; break; }
        b.write_ctr = true;
        b.ctr_val = v;
        plan.busy_ctr = true;
      }
      break;
    }
    // ---------- memory ----------
    case Mnemonic::LWZ: case Mnemonic::LBZ: case Mnemonic::LD: {
      if (!lsu.stq_empty(f)) { ready = false; break; }
      if (in.ra != 0 && gpr_busy_nofwd(in.ra)) { ready = false; break; }
      if (((sb_gpr >> in.rt) & 1) != 0) { ready = false; break; }
      const u64 base =
          in.ra == 0 ? 0 : read_gpr(f, fxu, in.ra, wb, sig, parity_bad).value;
      b.a = isa::agen(base, false, in.imm);
      b.dest_kind = DestKind::Gpr;
      b.dest = in.rt;
      plan.busy_gpr = true;
      plan.busy_gpr_idx = in.rt;
      plan.target = IssueTarget::Lsu;
      break;
    }
    case Mnemonic::LFD: {
      if (!lsu.stq_empty(f)) { ready = false; break; }
      if (in.ra != 0 && gpr_busy_nofwd(in.ra)) { ready = false; break; }
      const u32 frt = in.rt % isa::kNumFprs;
      if (((sb_fpr >> frt) & 1) != 0) { ready = false; break; }
      const u64 base =
          in.ra == 0 ? 0 : read_gpr(f, fxu, in.ra, wb, sig, parity_bad).value;
      b.a = isa::agen(base, false, in.imm);
      b.dest_kind = DestKind::Fpr;
      b.dest = static_cast<u8>(frt);
      plan.busy_fpr = true;
      plan.busy_fpr_idx = static_cast<u8>(frt);
      plan.target = IssueTarget::Lsu;
      break;
    }
    case Mnemonic::STW: case Mnemonic::STB: case Mnemonic::STD: {
      if (lsu.stq_full(f)) { ready = false; break; }
      if (in.ra != 0 && gpr_busy_nofwd(in.ra)) { ready = false; break; }
      if (gpr_busy_nofwd(in.rt)) { ready = false; break; }
      const u64 base =
          in.ra == 0 ? 0 : read_gpr(f, fxu, in.ra, wb, sig, parity_bad).value;
      b.a = isa::agen(base, false, in.imm);
      b.b = read_gpr(f, fxu, in.rt, wb, sig, parity_bad).value;
      b.is_store = true;
      plan.target = IssueTarget::Lsu;
      break;
    }
    case Mnemonic::STFD: {
      if (lsu.stq_full(f)) { ready = false; break; }
      if (in.ra != 0 && gpr_busy_nofwd(in.ra)) { ready = false; break; }
      const u32 frt = in.rt % isa::kNumFprs;
      if (((sb_fpr >> frt) & 1) != 0 &&
          !(wb.valid && wb.dest_kind == DestKind::Fpr &&
            wb.dest % isa::kNumFprs == frt)) {
        ready = false;
        break;
      }
      const u64 base =
          in.ra == 0 ? 0 : read_gpr(f, fxu, in.ra, wb, sig, parity_bad).value;
      b.a = isa::agen(base, false, in.imm);
      b.b = read_fpr(f, fpu, frt, wb, sig, parity_bad).value;
      b.is_store = true;
      plan.target = IssueTarget::Lsu;
      break;
    }
    // ---------- floating point ----------
    case Mnemonic::FADD: case Mnemonic::FSUB: case Mnemonic::FMUL:
    case Mnemonic::FDIV: {
      const u32 fra = in.ra % isa::kNumFprs;
      const u32 frb = in.rb % isa::kNumFprs;
      const u32 frt = in.rt % isa::kNumFprs;
      const auto fpr_busy = [&](u32 idx) {
        return ((sb_fpr >> idx) & 1) != 0 &&
               !(wb.valid && wb.dest_kind == DestKind::Fpr &&
                 wb.dest % isa::kNumFprs == idx);
      };
      if (fpr_busy(fra) || fpr_busy(frb)) { ready = false; break; }
      if (((sb_fpr >> frt) & 1) != 0) { ready = false; break; }
      b.a = read_fpr(f, fpu, fra, wb, sig, parity_bad).value;
      b.b = read_fpr(f, fpu, frb, wb, sig, parity_bad).value;
      b.dest_kind = DestKind::Fpr;
      b.dest = static_cast<u8>(frt);
      plan.busy_fpr = true;
      plan.busy_fpr_idx = static_cast<u8>(frt);
      plan.target = IssueTarget::Fpu;
      break;
    }
    // ---------- branches ----------
    case Mnemonic::B: {
      const u32 target = (pc + static_cast<u32>(in.imm)) & 0xFFFF;
      if (in.lk) {
        if (sb_lr_.get(f)) { ready = false; break; }
        b.write_lr = true;
        b.lr_val = (pc + 4) & 0xFFFF;
        plan.busy_lr = true;
      }
      b.pc_next = target;
      sig.redirect = true;
      sig.redirect_pc = target;
      break;
    }
    case Mnemonic::BC:
    case Mnemonic::BCLR:
    case Mnemonic::BCCTR: {
      bool ok = true;
      u32 cr = 0;
      u64 ctr = 0;
      const bool needs_cr = in.bo == isa::kBoTrue || in.bo == isa::kBoFalse;
      const bool needs_ctr = in.bo == isa::kBoDnz || in.mn == Mnemonic::BCCTR;
      if (needs_cr) cr = cr_value(ok);
      if (ok && needs_ctr) ctr = ctr_value(ok);
      u64 lr = 0;
      if (ok && in.mn == Mnemonic::BCLR) lr = lr_value(ok);
      if (!ok) { ready = false; break; }
      if (in.bo == isa::kBoDnz && sb_ctr_.get(f)) { ready = false; break; }
      if (in.lk && sb_lr_.get(f)) { ready = false; break; }

      const isa::BranchEval ev = isa::eval_branch(in.bo, in.bi, cr, ctr);
      // BCCTR with decrement is architecturally invalid: CTR unchanged
      // (matches the golden model).
      if (in.bo == isa::kBoDnz && in.mn != Mnemonic::BCCTR) {
        b.write_ctr = true;
        b.ctr_val = ev.ctr_after;
        plan.busy_ctr = true;
      }
      u32 target = 0;
      if (in.mn == Mnemonic::BC) {
        target = (pc + static_cast<u32>(in.imm)) & 0xFFFF;
      } else if (in.mn == Mnemonic::BCLR) {
        target = static_cast<u32>(lr & ~u64{3}) & 0xFFFF;
      } else {
        target = static_cast<u32>(ctr & ~u64{3}) & 0xFFFF;
      }
      if (in.lk) {
        b.write_lr = true;
        b.lr_val = (pc + 4) & 0xFFFF;
        plan.busy_lr = true;
      }
      if (ev.taken) {
        b.pc_next = target;
        sig.redirect = true;
        sig.redirect_pc = target;
      }
      break;
    }
    case Mnemonic::STOP:
      b.is_stop = true;
      // The machine architecturally stops *at* the STOP (matches the golden
      // model, whose PC freezes on the STOP word).
      b.pc_next = pc & 0xFFFF;
      plan.set_stop_seen = true;
      break;
    case Mnemonic::ILLEGAL:
      // Architected no-op (see DESIGN.md): completes with no destination.
      break;
  }

  if (!ready) {
    // Hazard stall: undo any speculative redirect decision.
    sig.redirect = false;
    plan.busy_gpr = plan.busy_fpr = plan.busy_cr = plan.busy_lr =
        plan.busy_ctr = false;
    plan.set_stop_seen = false;
    return plan;
  }

  plan.issue = true;
  plan.bundle = b;
  // Refill DEC behind the issuing instruction — except after a taken
  // branch, where everything buffered is wrong-path and gets flushed.
  if (!sig.redirect) {
    const Ifu::Head head = ifu.head(f);
    if (head.valid && ifu.head_ok(f, sig)) plan.take_fetch = true;
  }
  return plan;
}

void Idu::update(const netlist::CycleFrame& f, const IssuePlan& plan,
                 const Controls& ctl, const WbData& wb_next) {
  if (plan.held) return;

  // --- WB staging ---
  if (ctl.flush || !wb_next.valid) {
    wb_v_.set(f, false);
  } else {
    wb_v_.set(f, true);
    wb_mn_.set(f, static_cast<u64>(wb_next.mn));
    wb_dk_.set(f, static_cast<u64>(wb_next.dest_kind));
    wb_dest_.set(f, wb_next.dest);
    wb_val_.set(f, wb_next.value);
    wb_vpar_.set(f, wb_next.vpar);
    wb_res2_.set(f, wb_next.res2);
    wb_pc_.set(f, wb_next.pc & 0xFFFF);
    wb_pcn_.set(f, wb_next.pc_next & 0xFFFF);
    wb_st_.set(f, wb_next.is_store);
    wb_stop_.set(f, wb_next.is_stop);
    wb_wlr_.set(f, wb_next.write_lr);
    wb_lrval_.set(f, wb_next.lr_val);
    wb_wctr_.set(f, wb_next.write_ctr);
    wb_ctrval_.set(f, wb_next.ctr_val);
    wb_ctlpar_.set(f, wb_next.ctl_par);
  }

  if (ctl.flush) {
    dec_v_.set(f, false);
    sb_gpr_lo_.set(f, 0);
    sb_fpr_.set(f, 0);
    sb_cr_.set(f, false);
    sb_lr_.set(f, false);
    sb_ctr_.set(f, false);
    stop_seen_.set(f, false);
    return;
  }
  if (ctl.block_issue) return;

  // --- DEC movement & scoreboard ---
  // (The model stages a new DEC entry via stage_dec when plan.take_fetch.)
  if (plan.issue && !plan.take_fetch) dec_v_.set(f, false);
  if (plan.issue) {
    // Read the *staged* scoreboard: the completion path may have released
    // bits this cycle, and those releases must not be lost.
    if (plan.busy_gpr) {
      sb_gpr_lo_.set(f, sb_gpr_lo_.staged(f) | (u64{1} << plan.busy_gpr_idx));
    }
    if (plan.busy_fpr) {
      sb_fpr_.set(f, sb_fpr_.staged(f) | (u64{1} << plan.busy_fpr_idx));
    }
    if (plan.busy_cr) sb_cr_.set(f, true);
    if (plan.busy_lr) sb_lr_.set(f, true);
    if (plan.busy_ctr) sb_ctr_.set(f, true);
    if (plan.set_stop_seen) stop_seen_.set(f, true);
  }
}

void Idu::stage_dec(const netlist::CycleFrame& f, u32 instr, u32 pc) const {
  dec_v_.set(f, true);
  dec_instr_.set(f, instr);
  dec_pc_.set(f, pc & 0xFFFF);
  dec_par_.set(f, parity(static_cast<u64>(instr) ^
                         (static_cast<u64>(pc & 0xFFFF) << 32)) != 0);
}

u32 Idu::write_cr_field(const netlist::CycleFrame& f, u32 crf,
                        u32 field) const {
  const u32 cr = isa::cr_insert(static_cast<u32>(cr_.get(f)), crf, field);
  cr_.set(f, cr);
  cr_par_.set(f, parity(cr, 32) != 0);
  return cr;
}

void Idu::write_cr_whole(const netlist::CycleFrame& f, u32 value) const {
  cr_.set(f, value);
  cr_par_.set(f, parity(value, 32) != 0);
}

void Idu::write_lr(const netlist::CycleFrame& f, u64 value) const {
  lr_.set(f, value);
  lr_par_.set(f, parity(value) != 0);
}

void Idu::write_ctr(const netlist::CycleFrame& f, u64 value) const {
  ctr_.set(f, value);
  ctr_par_.set(f, parity(value) != 0);
}

void Idu::release_scoreboard(const netlist::CycleFrame& f,
                             const WbData& wb) const {
  if (wb.dest_kind == DestKind::Gpr) {
    sb_gpr_lo_.set(f, sb_gpr_lo_.staged(f) & ~(u64{1} << wb.dest));
  } else if (wb.dest_kind == DestKind::Fpr) {
    sb_fpr_.set(f,
                sb_fpr_.staged(f) & ~(u64{1} << (wb.dest % isa::kNumFprs)));
  } else if (wb.dest_kind == DestKind::Cr) {
    sb_cr_.set(f, false);
  }
  if (wb.write_lr) sb_lr_.set(f, false);
  if (wb.write_ctr) sb_ctr_.set(f, false);
}

u32 Idu::peek_cr(const netlist::StateVector& sv) const {
  return static_cast<u32>(cr_.peek(sv));
}
u64 Idu::peek_lr(const netlist::StateVector& sv) const { return lr_.peek(sv); }
u64 Idu::peek_ctr(const netlist::StateVector& sv) const {
  return ctr_.peek(sv);
}

void Idu::reset(netlist::StateVector& sv, const isa::ArchState& init,
                const CoreConfig& cfg) {
  mode_.reset(sv, cfg);
  spares_.reset(sv);
  for (u32 i = 0; i < 16; ++i) {
    spr_[i].poke(sv, 0);
    spr_par_[i].poke(sv, false);
  }
  dec_v_.poke(sv, false);
  dec_instr_.poke(sv, 0);
  dec_pc_.poke(sv, 0);
  dec_par_.poke(sv, false);
  cr_.poke(sv, init.cr);
  cr_par_.poke(sv, parity(init.cr, 32) != 0);
  lr_.poke(sv, init.lr);
  lr_par_.poke(sv, parity(init.lr) != 0);
  ctr_.poke(sv, init.ctr);
  ctr_par_.poke(sv, parity(init.ctr) != 0);
  sb_gpr_lo_.poke(sv, 0);
  sb_fpr_.poke(sv, 0);
  sb_cr_.poke(sv, false);
  sb_lr_.poke(sv, false);
  sb_ctr_.poke(sv, false);
  stop_seen_.poke(sv, false);
  wb_v_.poke(sv, false);
  wb_mn_.poke(sv, 0);
  wb_dk_.poke(sv, 0);
  wb_dest_.poke(sv, 0);
  wb_val_.poke(sv, 0);
  wb_vpar_.poke(sv, false);
  wb_res2_.poke(sv, 0);
  wb_pc_.poke(sv, 0);
  wb_pcn_.poke(sv, 0);
  wb_st_.poke(sv, false);
  wb_stop_.poke(sv, false);
  wb_wlr_.poke(sv, false);
  wb_lrval_.poke(sv, 0);
  wb_wctr_.poke(sv, false);
  wb_ctrval_.poke(sv, 0);
  wb_ctlpar_.poke(sv, false);
}

}  // namespace sfi::core
