#include "core/regfile.hpp"

#include "common/bits.hpp"
#include "common/check.hpp"

namespace sfi::core {

ParityRegFile::ParityRegFile(netlist::LatchRegistry& reg,
                             const std::string& base_name, netlist::Unit unit,
                             u8 scan_ring, u32 entries, u32 width)
    : width_(width) {
  require(entries >= 1, "regfile entries");
  data_.reserve(entries);
  parity_.reserve(entries);
  for (u32 i = 0; i < entries; ++i) {
    const std::string n = base_name + std::to_string(i);
    data_.emplace_back(reg.add(n, unit, netlist::LatchType::RegFile, scan_ring,
                               width));
    parity_.emplace_back(reg.add(n + ".p", unit, netlist::LatchType::RegFile,
                                 scan_ring, 1));
  }
}

ParityRegFile::ReadResult ParityRegFile::read(const netlist::CycleFrame& f,
                                              u32 idx) const {
  require(idx < entries(), "regfile read index");
  ReadResult r;
  r.value = data_[idx].get(f);
  r.parity_ok = parity(r.value, width_) ==
                static_cast<u32>(parity_[idx].get(f) ? 1 : 0);
  return r;
}

void ParityRegFile::write(const netlist::CycleFrame& f, u32 idx,
                          u64 value) const {
  require(idx < entries(), "regfile write index");
  value &= mask_low(width_);
  data_[idx].set(f, value);
  parity_[idx].set(f, parity(value, width_) != 0);
}

u64 ParityRegFile::peek(const netlist::StateVector& sv, u32 idx) const {
  require(idx < entries(), "regfile peek index");
  return data_[idx].peek(sv);
}

void ParityRegFile::poke(netlist::StateVector& sv, u32 idx, u64 value) const {
  require(idx < entries(), "regfile poke index");
  value &= mask_low(width_);
  data_[idx].poke(sv, value);
  parity_[idx].poke(sv, parity(value, width_) != 0);
}

}  // namespace sfi::core
