// FPU — floating point unit.
//
// Owns the parity-protected FPR file and a 4-stage arithmetic pipeline.
// Operands are carried through the stages with parity and consumed at the
// final stage (a flip in any staged operand latch is caught there); the
// result leaves with fresh parity verified again at completion.
#pragma once

#include <array>
#include <optional>

#include "core/config.hpp"
#include "core/mode_ring.hpp"
#include "core/pipeline_types.hpp"
#include "core/regfile.hpp"
#include "core/signals.hpp"
#include "core/spare_chain.hpp"
#include "isa/arch_state.hpp"
#include "netlist/field.hpp"
#include "netlist/registry.hpp"

namespace sfi::core {

class Fpu {
 public:
  explicit Fpu(netlist::LatchRegistry& reg);

  struct Plan {
    bool held = false;
    WbData wb;
  };

  [[nodiscard]] Plan detect(const netlist::CycleFrame& f, Signals& sig);
  void update(const netlist::CycleFrame& f, const Plan& plan,
              const Controls& ctl, const std::optional<IssueBundle>& issue);

  [[nodiscard]] bool any_valid(const netlist::CycleFrame& f) const;

  [[nodiscard]] ParityRegFile& fpr() { return fpr_; }
  [[nodiscard]] const ParityRegFile& fpr() const { return fpr_; }
  [[nodiscard]] ModeRing& mode() { return mode_; }

  void reset(netlist::StateVector& sv, const isa::ArchState& init,
             const CoreConfig& cfg);

 private:
  static constexpr u32 kStages = CoreConfig::kFpuStages;

  struct Stage {
    netlist::Flag v;
    netlist::Field mn;    // 6
    netlist::Field dest;  // 4
    netlist::Field a;     // 64
    netlist::Flag apar;
    netlist::Field b;     // 64
    netlist::Flag bpar;
    netlist::Field pc;    // 16
    netlist::Field pcn;   // 16
    netlist::Flag ctlpar;
  };

  ModeRing mode_;
  SpareChain spares_;
  ParityRegFile fpr_;
  std::array<Stage, kStages> st_;
};

}  // namespace sfi::core
