// LSU — load/store unit.
//
// Two execution stages (EX1: ERAT address translation, EX2: D-cache access /
// store-queue insert), an 8-entry store queue drained at commit, a 16-entry
// ERAT (parity-protected identity translation over 4 KiB pages) with a fill
// sequencer, and the D-cache. Stores drain to memory at the commit instant;
// a parity error found at drain blocks the completion and recovers (the
// store re-executes from the checkpoint). Uncommitted stores die on flush.
#pragma once

#include <optional>

#include "core/config.hpp"
#include "core/dcache.hpp"
#include "core/mode_ring.hpp"
#include "core/pipeline_types.hpp"
#include "core/signals.hpp"
#include "core/spare_chain.hpp"
#include "mem/ecc_memory.hpp"
#include "netlist/field.hpp"
#include "netlist/registry.hpp"

namespace sfi::core {

class Lsu {
 public:
  explicit Lsu(netlist::LatchRegistry& reg);

  struct Plan {
    bool held = false;
    WbData wb;
    bool advance_ex1 = false;   ///< EX1 moves to EX2
    bool retire_ex2 = false;    ///< EX2 produced its WB / inserted its store
    bool stq_insert = false;
    u32 stq_addr = 0;
    u32 stq_size = 0;
    u64 stq_data = 0;
    bool start_erat_fill = false;
    bool erat_invalidate = false;  ///< parity casualty: drop the translation
    u32 erat_page = 0;
    DCache::Plan dc;
  };

  [[nodiscard]] Plan detect(const netlist::CycleFrame& f, Signals& sig,
                            mem::EccMemory& mem);

  void update(const netlist::CycleFrame& f, const Plan& plan,
              const Controls& ctl, const std::optional<IssueBundle>& issue,
              mem::EccMemory& mem);

  /// Plan the commit-time drain of the store-queue head (detect phase; only
  /// when a store is completing this cycle).
  struct DrainPlan {
    bool valid = false;
    u32 addr = 0;
    u32 size = 0;
    u64 data = 0;
  };
  [[nodiscard]] DrainPlan plan_drain(const netlist::CycleFrame& f,
                                     Signals& sig) const;

  /// Apply the drain (update phase, when the completion was not blocked).
  void apply_drain(const netlist::CycleFrame& f, const DrainPlan& plan,
                   mem::EccMemory& mem);

  [[nodiscard]] bool any_valid(const netlist::CycleFrame& f) const {
    return ex1_v_.get(f) || ex2_v_.get(f);
  }
  [[nodiscard]] bool stq_empty(const netlist::CycleFrame& f) const {
    return stq_count_.get(f) == 0;
  }
  [[nodiscard]] bool stq_full(const netlist::CycleFrame& f) const {
    return stq_count_.get(f) >= CoreConfig::kStqEntries;
  }

  [[nodiscard]] ModeRing& mode() { return mode_; }
  [[nodiscard]] DCache& dcache() { return dcache_; }
  [[nodiscard]] const DCache& dcache() const { return dcache_; }

  void reset(netlist::StateVector& sv, const CoreConfig& cfg);

 private:
  static constexpr u32 kStq = CoreConfig::kStqEntries;
  static constexpr u32 kErat = CoreConfig::kEratEntries;

  [[nodiscard]] static u32 size_of(isa::Mnemonic mn);
  [[nodiscard]] static bool is_store_mn(isa::Mnemonic mn);

  ModeRing mode_;
  SpareChain spares_;
  DCache dcache_;

  // EX1: post-issue, pre-translation.
  netlist::Flag ex1_v_;
  netlist::Field ex1_mn_;    // 6
  netlist::Field ex1_dest_;  // 5
  netlist::Field ex1_ea_;    // 16
  netlist::Flag ex1_eapar_;
  netlist::Field ex1_sd_;    // 64 store data
  netlist::Flag ex1_sdpar_;
  netlist::Field ex1_pc_;    // 16
  netlist::Field ex1_pcn_;   // 16
  netlist::Flag ex1_ctlpar_;
  netlist::Field ex1_dk_;    // 2

  // EX2: post-translation, cache access.
  netlist::Flag ex2_v_;
  netlist::Field ex2_mn_;
  netlist::Field ex2_dest_;
  netlist::Field ex2_pa_;    // 16 physical address
  netlist::Flag ex2_papar_;
  netlist::Field ex2_sd_;
  netlist::Flag ex2_sdpar_;
  netlist::Field ex2_pc_;
  netlist::Field ex2_pcn_;
  netlist::Flag ex2_ctlpar_;
  netlist::Field ex2_dk_;

  // Store queue.
  struct StqEntry {
    netlist::Flag v;
    netlist::Field addr;  // 16
    netlist::Flag apar;
    netlist::Field data;  // 64
    netlist::Flag dpar;
    netlist::Field size;  // 2 (encoded 1/4/8)
  };
  std::vector<StqEntry> stq_;
  netlist::Field stq_head_;   // 3
  netlist::Field stq_tail_;   // 3
  netlist::Field stq_count_;  // 4

  // ERAT.
  struct EratEntry {
    netlist::Flag v;
    netlist::Field ppn;  // 4
    netlist::Flag par;
  };
  std::vector<EratEntry> erat_;
  netlist::Flag erat_busy_;
  netlist::Field erat_page_;  // 4
  netlist::Field erat_wait_;  // 2
};

}  // namespace sfi::core
