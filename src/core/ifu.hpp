// IFU — instruction fetch unit.
//
// Fetches one word per cycle through the I-cache into a 4-entry fetch
// buffer, tracks the fetch PC (parity-protected), honours branch redirects
// and recovery refetches, and halts at a fetched STOP word. Latches: fetch
// PC + parity, halt flag, buffer entries (valid, instr, pc, parity), FIFO
// pointers, I-cache tags and miss FSM, plus the unit's MODE/GPTR ring.
#pragma once

#include "common/bits.hpp"
#include "core/icache.hpp"
#include "core/mode_ring.hpp"
#include "core/signals.hpp"
#include "core/spare_chain.hpp"
#include "mem/ecc_memory.hpp"
#include "netlist/field.hpp"
#include "netlist/registry.hpp"

namespace sfi::core {

class Ifu {
 public:
  explicit Ifu(netlist::LatchRegistry& reg);

  struct Plan {
    ICache::Plan ic;
    bool enqueue = false;
    u32 instr = 0;
    u32 pc = 0;
    bool held = false;  ///< clocks stopped: stage nothing
  };

  /// Detect phase: attempt a fetch (checker events via sig). While the RUT
  /// sequencer is rebuilding state (`quiesced`) the IFU neither fetches nor
  /// re-checks the (possibly faulty, already-reported) fetch PC — the
  /// recovery refetch rewrites it with fresh parity.
  [[nodiscard]] Plan detect(const netlist::CycleFrame& f, Signals& sig,
                            bool quiesced);

  /// Oldest buffered instruction, for the IDU.
  struct Head {
    bool valid = false;
    u32 instr = 0;
    u32 pc = 0;
  };
  [[nodiscard]] Head head(const netlist::CycleFrame& f) const;

  /// Verify the head entry's parity (raises IfuIbufParity). Call only when
  /// head().valid.
  [[nodiscard]] bool head_ok(const netlist::CycleFrame& f, Signals& sig) const;

  /// Update phase. `dequeue`: the IDU consumed the head entry this cycle.
  void update(const netlist::CycleFrame& f, const Plan& plan,
              const Controls& ctl, const Signals& sig, bool dequeue,
              mem::EccMemory& mem);

  void reset(netlist::StateVector& sv, u32 entry_pc, const CoreConfig& cfg);

  [[nodiscard]] ModeRing& mode() { return mode_; }
  [[nodiscard]] ICache& icache() { return icache_; }
  [[nodiscard]] const ICache& icache() const { return icache_; }

 private:
  static constexpr u32 kEntries = CoreConfig::kFetchBufEntries;

  [[nodiscard]] static bool entry_parity(u32 instr, u32 pc) {
    return parity(static_cast<u64>(instr) ^ (static_cast<u64>(pc) << 32)) != 0;
  }
  void clear_buffer(const netlist::CycleFrame& f) const;
  void set_fetch_pc(const netlist::CycleFrame& f, u32 pc) const;

  ModeRing mode_;
  SpareChain spares_;
  ICache icache_;

  netlist::Field fetch_pc_;   // 16
  netlist::Flag fetch_pc_par_;
  netlist::Flag halt_;

  std::vector<netlist::Flag> v_;
  std::vector<netlist::Field> instr_;
  std::vector<netlist::Field> pc_;
  std::vector<netlist::Flag> par_;
  netlist::Field head_;   // 2
  netlist::Field tail_;   // 2
  netlist::Field count_;  // 3
};

}  // namespace sfi::core
