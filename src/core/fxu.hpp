// FXU — fixed point unit.
//
// Owns the parity-protected GPR file and a single EX stage executing ALU
// ops, compares, SPR moves, STOP and resolved branches in one cycle, with a
// 3-cycle multiply and a 12-cycle iterative divide. Every result leaves the
// unit with a fresh parity bit and a mod-3 residue code that the completion
// stage re-verifies — a flip in any staged operand or result latch is a
// recoverable FXU checker event.
#pragma once

#include <optional>

#include "core/config.hpp"
#include "core/mode_ring.hpp"
#include "core/pipeline_types.hpp"
#include "core/regfile.hpp"
#include "core/signals.hpp"
#include "core/spare_chain.hpp"
#include "isa/arch_state.hpp"
#include "netlist/field.hpp"
#include "netlist/registry.hpp"

namespace sfi::core {

class Fxu {
 public:
  explicit Fxu(netlist::LatchRegistry& reg);

  struct Plan {
    bool held = false;
    WbData wb;             ///< valid when an instruction retires this cycle
    bool muldiv_step = false;
  };

  [[nodiscard]] Plan detect(const netlist::CycleFrame& f, Signals& sig);

  /// Update phase: retire/advance EX and optionally accept a new issue.
  void update(const netlist::CycleFrame& f, const Plan& plan,
              const Controls& ctl, const std::optional<IssueBundle>& issue);

  /// A multi-cycle op (mul/div) is occupying the unit.
  [[nodiscard]] bool multi_busy(const netlist::CycleFrame& f) const;
  /// Any instruction in the EX stage.
  [[nodiscard]] bool ex_valid(const netlist::CycleFrame& f) const {
    return v_.get(f);
  }

  [[nodiscard]] ParityRegFile& gpr() { return gpr_; }
  [[nodiscard]] const ParityRegFile& gpr() const { return gpr_; }
  [[nodiscard]] ModeRing& mode() { return mode_; }

  void reset(netlist::StateVector& sv, const isa::ArchState& init,
             const CoreConfig& cfg);

 private:
  [[nodiscard]] static bool is_muldiv(isa::Mnemonic mn) {
    return mn == isa::Mnemonic::MULLD || mn == isa::Mnemonic::DIVD;
  }

  ModeRing mode_;
  SpareChain spares_;
  ParityRegFile gpr_;

  netlist::Flag v_;
  netlist::Field mn_;       // 6
  netlist::Field dk_;       // 2
  netlist::Field dest_;     // 5
  netlist::Field a_;        // 64
  netlist::Flag apar_;
  netlist::Field b_;        // 64
  netlist::Flag bpar_;
  netlist::Field pc_;       // 16
  netlist::Field pcn_;      // 16
  netlist::Flag is_store_;  // always 0 here; uniform ctl parity coverage
  netlist::Flag is_stop_;
  netlist::Flag wlr_;
  netlist::Field lrval_;    // 64
  netlist::Flag wctr_;
  netlist::Field ctrval_;   // 64
  netlist::Flag ctlpar_;
  netlist::Field mdcnt_;    // 4: remaining mul/div cycles
};

}  // namespace sfi::core
