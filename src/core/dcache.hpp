// Data cache: direct-mapped, 32 lines × 16 bytes, write-through,
// no-allocate-on-store, blocking miss with fill-forwarding.
//
// Memory is always authoritative (write-through), so a parity-damaged line
// is recoverable by invalidate+refetch — the recovery path the LSU checker
// events trigger. Loads that cross an 8-byte boundary use an uncached
// memory access (same latency as a miss, no refill).
#pragma once

#include <string>

#include "core/config.hpp"
#include "core/mode_ring.hpp"
#include "core/signals.hpp"
#include "mem/ecc_memory.hpp"
#include "netlist/array.hpp"
#include "netlist/field.hpp"
#include "netlist/registry.hpp"

namespace sfi::core {

class DCache {
 public:
  DCache(netlist::LatchRegistry& reg, u8 scan_ring);

  struct Plan {
    bool want = false;
    bool done = false;         ///< load data available this cycle
    u64 data = 0;
    bool start_miss = false;   ///< begin a cacheable refill
    bool start_uncached = false;
    bool invalidate = false;   ///< parity casualty: drop the line
    bool finish = false;       ///< outstanding access completes this cycle
    u32 line = 0;
    u32 addr = 0;
    u32 size = 0;
  };

  /// Detect phase: attempt the load of `size` bytes at physical `addr`.
  [[nodiscard]] Plan plan_load(const netlist::CycleFrame& f, u32 addr,
                               u32 size, bool want, const ModeRing& mode,
                               Signals& sig, mem::EccMemory& mem);

  /// Update phase for the plan returned by plan_load.
  void update(const netlist::CycleFrame& f, const Plan& plan,
              mem::EccMemory& mem);

  /// Commit-time store: writes through to memory and invalidates any line
  /// the store touches (no-allocate keeps the array trivially coherent).
  void commit_store(const netlist::CycleFrame& f, u32 addr, u32 size,
                    u64 value, mem::EccMemory& mem);

  [[nodiscard]] bool busy(const netlist::CycleFrame& f) const {
    return busy_.get(f);
  }

  void reset(netlist::StateVector& sv);

  [[nodiscard]] netlist::ProtectedArray& data_array() { return data_; }
  [[nodiscard]] const netlist::ProtectedArray& data_array() const {
    return data_;
  }

 private:
  static constexpr u32 kLines = CoreConfig::kDcacheLines;
  static constexpr u32 kLineBytes = CoreConfig::kLineBytes;

  [[nodiscard]] static u32 line_of(u32 addr) {
    return (addr / kLineBytes) % kLines;
  }
  [[nodiscard]] static u32 tag_of(u32 addr) {
    return (addr & 0xFFFF) / (kLineBytes * kLines);
  }
  [[nodiscard]] static u32 encode_size(u32 size) {
    return size == 1 ? 0 : size == 4 ? 1 : 2;
  }
  [[nodiscard]] static u32 decode_size(u32 enc) {
    return enc == 0 ? 1 : enc == 1 ? 4 : 8;
  }

  std::vector<netlist::Flag> valid_;
  std::vector<netlist::Field> tag_;     // 7-bit tag
  std::vector<netlist::Flag> tag_par_;  // parity over {valid, tag}

  netlist::Flag busy_;
  netlist::Flag pend_cached_;
  netlist::Field pend_addr_;  // 16
  netlist::Field pend_size_;  // 2 (encoded)
  netlist::Field wait_;       // 4

  netlist::ProtectedArray data_;  // kLines*2 entries of 64 bits, parity
};

}  // namespace sfi::core
