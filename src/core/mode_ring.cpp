#include "core/mode_ring.hpp"

#include "common/bits.hpp"
#include "common/check.hpp"

namespace sfi::core {

namespace {
using netlist::LatchType;
}

ModeRing::ModeRing(netlist::LatchRegistry& reg, const std::string& unit_name,
                   netlist::Unit unit, u8 scan_ring, CheckerId checker_base,
                   u32 num_checkers, u32 spare_mode_bits, u32 spare_gptr_bits)
    : checker_base_(checker_base), num_checkers_(num_checkers) {
  require(num_checkers >= 1 && num_checkers <= 8, "mode ring checker count");
  // Benign configuration (a flip cannot alter a fault-free run): excluded
  // from the golden-trace hash. Wedge controls (clock stop / error forcing /
  // scan enables) have functional reach and stay hashable.
  enables_ = netlist::Field(reg.add(unit_name + ".mode.chk_en", unit,
                                    LatchType::Mode, scan_ring, num_checkers,
                                    /*hashable=*/false));
  clock_stop_ = netlist::Flag(reg.add(unit_name + ".mode.clock_stop", unit,
                                      LatchType::Mode, scan_ring, 1));
  force_error_ = netlist::Flag(reg.add(unit_name + ".mode.force_error", unit,
                                       LatchType::Mode, scan_ring, 1));
  spare_mode_ = netlist::Field(reg.add(unit_name + ".mode.spare", unit,
                                       LatchType::Mode, scan_ring,
                                       spare_mode_bits, /*hashable=*/false));
  gptr_hold_ = netlist::Flag(reg.add(unit_name + ".gptr.hold", unit,
                                     LatchType::Gptr, scan_ring, 1));
  gptr_scan_en_ = netlist::Flag(reg.add(unit_name + ".gptr.scan_en", unit,
                                        LatchType::Gptr, scan_ring, 1));
  spare_gptr_ = netlist::Field(reg.add(unit_name + ".gptr.spare", unit,
                                       LatchType::Gptr, scan_ring,
                                       spare_gptr_bits, /*hashable=*/false));
}

void ModeRing::reset(netlist::StateVector& sv, const CoreConfig& cfg) const {
  u64 en = 0;
  for (u32 i = 0; i < num_checkers_; ++i) {
    const auto id = static_cast<CheckerId>(
        static_cast<u32>(checker_base_) + i);
    if (cfg.checker_on(id)) en |= u64{1} << i;
  }
  enables_.poke(sv, en);
  clock_stop_.poke(sv, false);
  force_error_.poke(sv, false);
  spare_mode_.poke(sv, 0);
  gptr_hold_.poke(sv, false);
  gptr_scan_en_.poke(sv, false);
  spare_gptr_.poke(sv, 0);
}

bool ModeRing::checker_on(const netlist::CycleFrame& f, CheckerId id) const {
  const auto idx = static_cast<u32>(id) - static_cast<u32>(checker_base_);
  ensure(idx < num_checkers_, "checker id outside this unit's ring");
  return ((enables_.get(f) >> idx) & 1) != 0;
}

}  // namespace sfi::core
