// Per-unit scan-only configuration ring (MODE + GPTR latches).
//
// These latches are written only at scan/reset time, never during functional
// operation — so an injected flip *persists for the whole run*. That is the
// mechanism behind the paper's Figure 5 finding that scan-only latches have
// a larger system-level impact than read-write latches. The ring carries:
//   - checker enable bits (a flip silently disables / spuriously arms a
//     checker),
//   - clock-stop and force-error control bits (reset 0; a 0→1 flip stops the
//     unit's clocks or injects a permanent false error),
//   - a GPTR hold bit (test hardware that freezes the unit's interfaces),
//   - benign spare MODE/GPTR bits (debug selects, unused test registers).
#pragma once

#include <string>

#include "core/config.hpp"
#include "netlist/field.hpp"
#include "netlist/registry.hpp"

namespace sfi::core {

class ModeRing {
 public:
  /// `checker_base` is the CheckerId of the unit's first checker and
  /// `num_checkers` how many consecutive ids the unit owns.
  ModeRing(netlist::LatchRegistry& reg, const std::string& unit_name,
           netlist::Unit unit, u8 scan_ring, CheckerId checker_base,
           u32 num_checkers, u32 spare_mode_bits = 6,
           u32 spare_gptr_bits = 6);

  /// Load reset values from the config (enables per checker_mask).
  void reset(netlist::StateVector& sv, const CoreConfig& cfg) const;

  /// Is this unit's checker enabled *in the latched configuration*?
  [[nodiscard]] bool checker_on(const netlist::CycleFrame& f,
                                CheckerId id) const;

  /// Clock-stop control erroneously engaged: the unit must hold all state.
  /// The GPTR hold and scan-shift-enable bits have the same effect — test
  /// hardware engaged during functional operation wedges the unit.
  [[nodiscard]] bool clocks_stopped(const netlist::CycleFrame& f) const {
    return clock_stop_.get(f) || gptr_hold_.get(f) || gptr_scan_en_.get(f);
  }

  /// Error-inject control engaged: the unit raises a permanent false error
  /// on its first checker (when that checker is enabled).
  [[nodiscard]] bool force_error(const netlist::CycleFrame& f) const {
    return force_error_.get(f);
  }

 private:
  CheckerId checker_base_;
  u32 num_checkers_;
  netlist::Field enables_;     // MODE: one bit per checker
  netlist::Flag clock_stop_;   // MODE: reset 0
  netlist::Flag force_error_;  // MODE: reset 0
  netlist::Field spare_mode_;  // MODE: benign
  netlist::Flag gptr_hold_;     // GPTR: reset 0
  netlist::Flag gptr_scan_en_;  // GPTR: reset 0 (scan shift in functional mode)
  netlist::Field spare_gptr_;   // GPTR: benign
};

}  // namespace sfi::core
