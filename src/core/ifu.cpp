#include "core/ifu.hpp"

#include "common/bits.hpp"
#include "common/check.hpp"
#include "isa/encoding.hpp"

namespace sfi::core {

namespace {
using netlist::LatchType;
using netlist::Unit;
constexpr u8 kRing = 0;
}  // namespace

Ifu::Ifu(netlist::LatchRegistry& reg)
    : mode_(reg, "ifu", Unit::IFU, kRing, CheckerId::IfuIcacheTagParity, 3),
      spares_(reg, "ifu", Unit::IFU, kRing, 900),
            icache_(reg, kRing) {
  fetch_pc_ = netlist::Field(
      reg.add("ifu.fetch_pc", Unit::IFU, LatchType::Func, kRing, 16));
  fetch_pc_par_ = netlist::Flag(
      reg.add("ifu.fetch_pc.p", Unit::IFU, LatchType::Func, kRing, 1));
  halt_ =
      netlist::Flag(reg.add("ifu.halt", Unit::IFU, LatchType::Func, kRing, 1));
  for (u32 i = 0; i < kEntries; ++i) {
    const std::string n = "ifu.fbuf" + std::to_string(i);
    v_.emplace_back(reg.add(n + ".v", Unit::IFU, LatchType::Func, kRing, 1));
    instr_.emplace_back(
        reg.add(n + ".instr", Unit::IFU, LatchType::Func, kRing, 32));
    pc_.emplace_back(reg.add(n + ".pc", Unit::IFU, LatchType::Func, kRing, 16));
    par_.emplace_back(reg.add(n + ".p", Unit::IFU, LatchType::Func, kRing, 1));
  }
  head_ =
      netlist::Field(reg.add("ifu.fbuf.head", Unit::IFU, LatchType::Func, kRing, 2));
  tail_ =
      netlist::Field(reg.add("ifu.fbuf.tail", Unit::IFU, LatchType::Func, kRing, 2));
  count_ =
      netlist::Field(reg.add("ifu.fbuf.count", Unit::IFU, LatchType::Func, kRing, 3));
}

Ifu::Plan Ifu::detect(const netlist::CycleFrame& f, Signals& sig,
                      bool quiesced) {
  Plan plan;
  if (mode_.clocks_stopped(f)) {
    plan.held = true;
    return plan;
  }
  if (mode_.force_error(f) &&
      mode_.checker_on(f, CheckerId::IfuIcacheTagParity)) {
    sig.raise(CheckerId::IfuIcacheTagParity, Unit::IFU, false,
              "ifu mode force_error");
  }
  if (quiesced) {
    // Keep the miss FSM draining, nothing else.
    plan.ic = icache_.plan_fetch(f, 0, false, mode_, sig);
    return plan;
  }

  const auto pc = static_cast<u32>(fetch_pc_.get(f));
  const bool pc_ok =
      parity(pc, 16) == static_cast<u32>(fetch_pc_par_.get(f) ? 1 : 0);
  if (!pc_ok && mode_.checker_on(f, CheckerId::IfuIbufParity)) {
    sig.raise(CheckerId::IfuIbufParity, Unit::IFU, false,
              "fetch pc parity");
    plan.ic = icache_.plan_fetch(f, pc, false, mode_, sig);
    return plan;
  }

  const bool want = !halt_.get(f) && count_.get(f) < kEntries;
  plan.ic = icache_.plan_fetch(f, pc, want, mode_, sig);
  if (plan.ic.hit) {
    plan.enqueue = true;
    plan.instr = plan.ic.word;
    plan.pc = pc;
  }
  return plan;
}

Ifu::Head Ifu::head(const netlist::CycleFrame& f) const {
  Head h;
  const auto hd = static_cast<u32>(head_.get(f)) % kEntries;
  if (count_.get(f) == 0 || !v_[hd].get(f)) return h;
  h.valid = true;
  h.instr = static_cast<u32>(instr_[hd].get(f));
  h.pc = static_cast<u32>(pc_[hd].get(f));
  return h;
}

bool Ifu::head_ok(const netlist::CycleFrame& f, Signals& sig) const {
  const auto hd = static_cast<u32>(head_.get(f)) % kEntries;
  const bool ok =
      entry_parity(static_cast<u32>(instr_[hd].get(f)),
                   static_cast<u32>(pc_[hd].get(f))) == par_[hd].get(f);
  if (!ok) {
    if (mode_.checker_on(f, CheckerId::IfuIbufParity)) {
      sig.raise(CheckerId::IfuIbufParity, Unit::IFU, false,
                "fetch buffer entry parity");
      return false;  // consumption blocked; recovery flushes this cycle
    }
    return true;  // checker masked: the corrupted entry flows on
  }
  return true;
}

void Ifu::clear_buffer(const netlist::CycleFrame& f) const {
  for (u32 i = 0; i < kEntries; ++i) v_[i].set(f, false);
  head_.set(f, 0);
  tail_.set(f, 0);
  count_.set(f, 0);
}

void Ifu::set_fetch_pc(const netlist::CycleFrame& f, u32 pc) const {
  pc &= 0xFFFF;
  fetch_pc_.set(f, pc);
  fetch_pc_par_.set(f, parity(pc, 16) != 0);
}

void Ifu::update(const netlist::CycleFrame& f, const Plan& plan,
                 const Controls& ctl, const Signals& sig, bool dequeue,
                 mem::EccMemory& mem) {
  if (plan.held) return;

  // The miss FSM keeps running across redirects (a stale refill is benign).
  icache_.update(f, plan.ic, mem);

  if (sig.recovery_refetch) {
    clear_buffer(f);
    set_fetch_pc(f, sig.recovery_refetch_pc);
    halt_.set(f, false);
    return;
  }
  if (ctl.flush) {
    clear_buffer(f);
    halt_.set(f, false);
    return;
  }
  if (sig.redirect) {
    clear_buffer(f);
    set_fetch_pc(f, sig.redirect_pc);
    halt_.set(f, false);
    return;
  }

  u32 hd = static_cast<u32>(head_.get(f)) % kEntries;
  u32 tl = static_cast<u32>(tail_.get(f)) % kEntries;
  u32 cnt = static_cast<u32>(count_.get(f));

  if (dequeue && cnt > 0) {
    v_[hd].set(f, false);
    hd = (hd + 1) % kEntries;
    --cnt;
  }
  if (plan.enqueue && cnt < kEntries && !ctl.block_issue) {
    v_[tl].set(f, true);
    instr_[tl].set(f, plan.instr);
    pc_[tl].set(f, plan.pc);
    par_[tl].set(f, entry_parity(plan.instr, plan.pc));
    tl = (tl + 1) % kEntries;
    ++cnt;
    set_fetch_pc(f, plan.pc + 4);
    if (plan.instr == isa::kStopWord) halt_.set(f, true);
  }
  head_.set(f, hd);
  tail_.set(f, tl);
  count_.set(f, cnt);
}

void Ifu::reset(netlist::StateVector& sv, u32 entry_pc, const CoreConfig& cfg) {
  mode_.reset(sv, cfg);
  spares_.reset(sv);
  icache_.reset(sv);
  entry_pc &= 0xFFFF;
  fetch_pc_.poke(sv, entry_pc);
  fetch_pc_par_.poke(sv, parity(entry_pc, 16) != 0);
  halt_.poke(sv, false);
  for (u32 i = 0; i < kEntries; ++i) {
    v_[i].poke(sv, false);
    instr_[i].poke(sv, 0);
    pc_[i].poke(sv, 0);
    par_[i].poke(sv, false);
  }
  head_.poke(sv, 0);
  tail_.poke(sv, 0);
  count_.poke(sv, 0);
}

}  // namespace sfi::core
