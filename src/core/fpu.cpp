#include "core/fpu.hpp"

#include "common/bits.hpp"
#include "isa/exec.hpp"

namespace sfi::core {

namespace {
using isa::Mnemonic;
using netlist::LatchType;
using netlist::Unit;
constexpr u8 kRing = 3;
}  // namespace

Fpu::Fpu(netlist::LatchRegistry& reg)
    : mode_(reg, "fpu", Unit::FPU, kRing, CheckerId::FpuFprParity, 3),
      spares_(reg, "fpu", Unit::FPU, kRing, 400),
      fpr_(reg, "fpu.fpr", Unit::FPU, kRing, isa::kNumFprs) {
  for (u32 i = 0; i < kStages; ++i) {
    const std::string n = "fpu.s" + std::to_string(i + 1);
    st_[i].v = netlist::Flag(reg.add(n + ".v", Unit::FPU, LatchType::Func, kRing, 1));
    st_[i].mn = netlist::Field(reg.add(n + ".mn", Unit::FPU, LatchType::Func, kRing, 6));
    st_[i].dest = netlist::Field(reg.add(n + ".dest", Unit::FPU, LatchType::Func, kRing, 4));
    st_[i].a = netlist::Field(reg.add(n + ".a", Unit::FPU, LatchType::Func, kRing, 64));
    st_[i].apar = netlist::Flag(reg.add(n + ".a.p", Unit::FPU, LatchType::Func, kRing, 1));
    st_[i].b = netlist::Field(reg.add(n + ".b", Unit::FPU, LatchType::Func, kRing, 64));
    st_[i].bpar = netlist::Flag(reg.add(n + ".b.p", Unit::FPU, LatchType::Func, kRing, 1));
    st_[i].pc = netlist::Field(reg.add(n + ".pc", Unit::FPU, LatchType::Func, kRing, 16));
    st_[i].pcn = netlist::Field(reg.add(n + ".pcn", Unit::FPU, LatchType::Func, kRing, 16));
    st_[i].ctlpar = netlist::Flag(reg.add(n + ".ctl.p", Unit::FPU, LatchType::Func, kRing, 1));
  }
}

bool Fpu::any_valid(const netlist::CycleFrame& f) const {
  for (const Stage& s : st_) {
    if (s.v.get(f)) return true;
  }
  return false;
}

Fpu::Plan Fpu::detect(const netlist::CycleFrame& f, Signals& sig) {
  Plan plan;
  if (mode_.clocks_stopped(f)) {
    plan.held = true;
    return plan;
  }
  if (mode_.force_error(f) && mode_.checker_on(f, CheckerId::FpuFprParity)) {
    sig.raise(CheckerId::FpuFprParity, Unit::FPU, false,
              "fpu mode force_error");
  }

  const Stage& s4 = st_[kStages - 1];
  if (!s4.v.get(f)) return plan;

  const u64 a = s4.a.get(f);
  const u64 b = s4.b.get(f);
  const bool a_ok = parity(a) == static_cast<u32>(s4.apar.get(f) ? 1 : 0);
  const bool b_ok = parity(b) == static_cast<u32>(s4.bpar.get(f) ? 1 : 0);
  if ((!a_ok || !b_ok) && mode_.checker_on(f, CheckerId::FpuStageParity)) {
    sig.raise(CheckerId::FpuStageParity, Unit::FPU, false,
              "fpu staged operand parity");
  }

  WbData wb;
  wb.valid = true;
  wb.mn = static_cast<Mnemonic>(s4.mn.get(f));
  wb.dest_kind = DestKind::Fpr;
  wb.dest = static_cast<u8>(s4.dest.get(f));
  wb.value = isa::fpu_exec(wb.mn, a, b);
  wb.vpar = parity(wb.value) != 0;
  wb.res2 = static_cast<u8>(residue3(wb.value));
  wb.pc = static_cast<u32>(s4.pc.get(f));
  wb.pc_next = static_cast<u32>(s4.pcn.get(f));
  wb.ctl_par = s4.ctlpar.get(f);
  plan.wb = wb;
  return plan;
}

void Fpu::update(const netlist::CycleFrame& f, const Plan& plan,
                 const Controls& ctl, const std::optional<IssueBundle>& issue) {
  if (plan.held) return;
  if (ctl.flush) {
    for (Stage& s : st_) s.v.set(f, false);
    return;
  }
  // Advance the pipe back-to-front.
  for (u32 i = kStages - 1; i >= 1; --i) {
    Stage& to = st_[i];
    Stage& from = st_[i - 1];
    to.v.set(f, from.v.get(f));
    to.mn.set(f, from.mn.get(f));
    to.dest.set(f, from.dest.get(f));
    to.a.set(f, from.a.get(f));
    to.apar.set(f, from.apar.get(f));
    to.b.set(f, from.b.get(f));
    to.bpar.set(f, from.bpar.get(f));
    to.pc.set(f, from.pc.get(f));
    to.pcn.set(f, from.pcn.get(f));
    to.ctlpar.set(f, from.ctlpar.get(f));
  }
  Stage& s1 = st_[0];
  if (issue) {
    const IssueBundle& is = *issue;
    s1.v.set(f, true);
    s1.mn.set(f, static_cast<u64>(is.mn));
    s1.dest.set(f, is.dest % isa::kNumFprs);
    s1.a.set(f, is.a);
    s1.apar.set(f, parity(is.a) != 0);
    s1.b.set(f, is.b);
    s1.bpar.set(f, parity(is.b) != 0);
    s1.pc.set(f, is.pc & 0xFFFF);
    s1.pcn.set(f, is.pc_next & 0xFFFF);
    s1.ctlpar.set(f, control_parity(is.mn, DestKind::Fpr,
                                    is.dest % isa::kNumFprs, is.pc & 0xFFFF,
                                    is.pc_next & 0xFFFF, false, false, false,
                                    false));
  } else {
    s1.v.set(f, false);
  }
}

void Fpu::reset(netlist::StateVector& sv, const isa::ArchState& init,
                const CoreConfig& cfg) {
  mode_.reset(sv, cfg);
  spares_.reset(sv);
  for (u32 i = 0; i < isa::kNumFprs; ++i) fpr_.poke(sv, i, init.fpr[i]);
  for (Stage& s : st_) {
    s.v.poke(sv, false);
    s.mn.poke(sv, 0);
    s.dest.poke(sv, 0);
    s.a.poke(sv, 0);
    s.apar.poke(sv, false);
    s.b.poke(sv, 0);
    s.bpar.poke(sv, false);
    s.pc.poke(sv, 0);
    s.pcn.poke(sv, 0);
    s.ctlpar.poke(sv, false);
  }
}

}  // namespace sfi::core
