// Pervasive (Core) logic: fault isolation registers, the completion
// watchdog, recovery arbitration and checkstop escalation — plus the global
// scan-only configuration (watchdog timeout, recovery enable/thresholds)
// and the chip-level GPTR test registers.
//
// Flips here are disproportionately dangerous by construction: FIR bits
// checkstop or trigger spurious recoveries directly, the redundant
// recovery-active flag is cross-checked against the RUT sequencer, and the
// watchdog configuration is scan-only state (paper Figures 3–5).
#pragma once

#include "core/config.hpp"
#include "core/mode_ring.hpp"
#include "core/signals.hpp"
#include "core/spare_chain.hpp"
#include "netlist/field.hpp"
#include "netlist/registry.hpp"

namespace sfi::core {

class Pervasive {
 public:
  explicit Pervasive(netlist::LatchRegistry& reg);

  /// Machine can no longer make progress (checkstop/hang latched or the
  /// workload finished): the model freezes all latches.
  [[nodiscard]] bool frozen(const netlist::StateVector& sv) const;

  /// Decide this cycle's controls from the detect-phase signals.
  /// `rut_active` is the RUT sequencer's current state.
  [[nodiscard]] Controls decide(const netlist::CycleFrame& f,
                                const Signals& sig, bool rut_active);

  /// Update phase: FIRs, counters, watchdog, terminal latches.
  void update(const netlist::CycleFrame& f, const Signals& sig,
              const Controls& ctl, bool rut_active);

  // --- RAS observability (peek interface) ---
  [[nodiscard]] bool checkstop_peek(const netlist::StateVector& sv) const;
  [[nodiscard]] bool hang_peek(const netlist::StateVector& sv) const;
  [[nodiscard]] bool done_peek(const netlist::StateVector& sv) const;
  [[nodiscard]] u32 recovery_count_peek(const netlist::StateVector& sv) const;
  [[nodiscard]] u32 corrected_count_peek(const netlist::StateVector& sv) const;

  [[nodiscard]] ModeRing& mode() { return mode_; }

  void reset(netlist::StateVector& sv, const CoreConfig& cfg);

 private:
  ModeRing mode_;

  // Fault isolation registers (one bit per unit).
  netlist::Field rec_fir_;    // 7
  netlist::Field fatal_fir_;  // 7
  netlist::Flag first_err_v_;
  netlist::Field first_err_unit_;  // 3
  netlist::Field first_err_chk_;   // 5

  // Terminal state.
  netlist::Flag checkstop_;
  netlist::Flag hang_;
  netlist::Flag done_;

  // Watchdog & recovery bookkeeping.
  netlist::Field wd_counter_;  // 12
  netlist::Field rec_cycles_;  // 8: cycles in current recovery
  netlist::Field rec_since_completion_;  // 3
  netlist::Field recovery_count_;        // 8, saturating
  netlist::Field corrected_count_;       // 8, saturating
  netlist::Flag rec_active_flag_;  // redundant copy of the RUT state

  // Free-running timebase (excluded from the golden-trace hash).
  netlist::Field timebase_;  // 24

  // Scan-only global configuration (MODE).
  netlist::Field cfg_wd_timeout_;   // 12
  netlist::Field cfg_rec_thresh_;   // 3
  netlist::Field cfg_rec_timeout_;  // 8
  netlist::Flag cfg_rec_enable_;

  // Chip-level GPTR test registers (benign).
  netlist::Field gptr_test_;  // 16
  netlist::Field gptr_ring_;  // 8

  // Performance-monitor counters (free-running, architecturally invisible,
  // excluded from the golden-trace hash like the timebase).
  netlist::Field pm_completions_;  // 32
  netlist::Field pm_recoveries_;   // 32
  netlist::Field pm_events_;       // 32
  netlist::Field pm_stall_;        // 32

  SpareChain spares_;
};

}  // namespace sfi::core
