#include "core/icache.hpp"

#include "common/bits.hpp"
#include "common/check.hpp"

namespace sfi::core {

namespace {
using netlist::ArrayProtection;
using netlist::ArrayReadStatus;
using netlist::LatchType;
using netlist::Unit;
}  // namespace

ICache::ICache(netlist::LatchRegistry& reg, u8 scan_ring)
    : data_("ifu.icache.data", Unit::IFU, ArrayProtection::Parity, kLines * 2,
            64) {
  valid_.reserve(kLines);
  tag_.reserve(kLines);
  tag_par_.reserve(kLines);
  for (u32 i = 0; i < kLines; ++i) {
    const std::string n = "ifu.icache.t" + std::to_string(i);
    valid_.emplace_back(
        reg.add(n + ".v", Unit::IFU, LatchType::Func, scan_ring, 1));
    tag_.emplace_back(
        reg.add(n + ".tag", Unit::IFU, LatchType::Func, scan_ring, 8));
    tag_par_.emplace_back(
        reg.add(n + ".p", Unit::IFU, LatchType::Func, scan_ring, 1));
  }
  busy_ = netlist::Flag(
      reg.add("ifu.icache.miss.busy", Unit::IFU, LatchType::Func, scan_ring, 1));
  miss_addr_ = netlist::Field(reg.add("ifu.icache.miss.addr", Unit::IFU,
                                      LatchType::Func, scan_ring, 16));
  wait_ = netlist::Field(
      reg.add("ifu.icache.miss.wait", Unit::IFU, LatchType::Func, scan_ring, 4));
}

ICache::Plan ICache::plan_fetch(const netlist::CycleFrame& f, u32 addr,
                                bool want, const ModeRing& mode,
                                Signals& sig) {
  Plan plan;
  plan.want = want;
  plan.addr = addr & 0xFFFC;  // word-aligned physical address
  plan.line = line_of(plan.addr);

  // A completing refill takes priority this cycle; the fetch retries next
  // cycle and hits.
  if (busy_.get(f)) {
    if (wait_.get(f) == 0) {
      plan.refill = true;
      plan.line = line_of(static_cast<u32>(miss_addr_.get(f)));
    }
    return plan;
  }
  if (!want) return plan;

  const u32 line = plan.line;
  const bool v = valid_[line].get(f);
  const u64 tag = tag_[line].get(f);
  const bool tag_ok =
      parity(tag | (static_cast<u64>(v) << 8), 9) ==
      static_cast<u32>(tag_par_[line].get(f) ? 1 : 0);

  if (!tag_ok && mode.checker_on(f, CheckerId::IfuIcacheTagParity)) {
    sig.raise(CheckerId::IfuIcacheTagParity, Unit::IFU, false,
              "icache tag parity");
    plan.invalidate = true;
    plan.start_miss = true;
    return plan;
  }
  if (!v || tag != tag_of(plan.addr)) {
    plan.start_miss = true;
    return plan;
  }

  // Tag hit: read the 64-bit data entry holding the word.
  const u32 entry = line * 2 + ((plan.addr >> 3) & 1);
  const auto rr = data_.read(entry);
  if (rr.status == ArrayReadStatus::Detected &&
      mode.checker_on(f, CheckerId::IfuIcacheDataParity)) {
    sig.raise(CheckerId::IfuIcacheDataParity, Unit::IFU, false,
              "icache data parity");
    plan.invalidate = true;
    plan.start_miss = true;
    return plan;
  }
  plan.hit = true;
  plan.word = static_cast<u32>(rr.value >> (((plan.addr >> 2) & 1) * 32));
  return plan;
}

void ICache::update(const netlist::CycleFrame& f, const Plan& plan,
                    mem::EccMemory& mem) {
  if (plan.invalidate) valid_[plan.line].set(f, false);

  if (busy_.get(f)) {
    const u64 w = wait_.get(f);
    if (w > 0) {
      wait_.set(f, w - 1);
      return;
    }
    // Refill: write both 64-bit entries of the line from memory, set tag.
    const auto addr = static_cast<u32>(miss_addr_.get(f));
    const u32 line = line_of(addr);
    const u32 base = addr & ~(kLineBytes - 1);
    data_.write(line * 2 + 0, mem.load_u64(base));
    data_.write(line * 2 + 1, mem.load_u64(base + 8));
    valid_[line].set(f, true);
    tag_[line].set(f, tag_of(addr));
    tag_par_[line].set(
        f, parity(static_cast<u64>(tag_of(addr)) | (u64{1} << 8), 9) != 0);
    busy_.set(f, false);
    return;
  }

  if (plan.start_miss) {
    busy_.set(f, true);
    miss_addr_.set(f, plan.addr & 0xFFFF);
    wait_.set(f, CoreConfig::kMemLatency);
  }
}

void ICache::reset(netlist::StateVector& sv) {
  for (u32 i = 0; i < kLines; ++i) {
    valid_[i].poke(sv, false);
    tag_[i].poke(sv, 0);
    tag_par_[i].poke(sv, false);
  }
  busy_.poke(sv, false);
  miss_addr_.poke(sv, 0);
  wait_.poke(sv, 0);
  data_.fill_zero();
}

}  // namespace sfi::core
