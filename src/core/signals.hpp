// Cross-unit combinational signals for one cycle of the Pearl6 core.
//
// Evaluation is two-phase: every unit first *detects* (pure reads of the
// current state: checker verdicts, branch resolution, completion intent),
// pervasive logic then *decides* (recovery / checkstop / flush), and the
// units finally *update* (stage next-cycle latch values honouring the
// decision). The two-phase split models the real property that a detected
// error combinationally blocks the completion of the erroring instruction.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "core/config.hpp"
#include "netlist/latch.hpp"

namespace sfi::core {

/// One checker firing during the detect phase.
struct CheckerEvent {
  CheckerId id{};
  netlist::Unit unit = netlist::Unit::Core;
  bool fatal = false;       ///< true: escalates straight to checkstop
  const char* what = "";    ///< static description for the tracer
};

/// Everything pervasive logic decides for the current cycle.
struct Controls {
  bool flush = false;             ///< squash all in-flight instructions
  bool block_completion = false;  ///< suppress this cycle's completion
  bool block_issue = false;       ///< suppress this cycle's issue/fetch
  bool start_recovery = false;    ///< RUT begins its recovery sequence
  bool recovery_active = false;   ///< RUT sequence in progress (incl. start)
  bool checkstop = false;         ///< machine stops at the end of this cycle
  bool hang = false;              ///< watchdog hang detected this cycle
};

/// Accumulates detect-phase outputs. Unit-specific plans live inside the
/// unit classes; this struct carries only what crosses unit boundaries.
struct Signals {
  std::vector<CheckerEvent> events;

  /// Completion intent (from the WB stage; consumed by pervasive watchdog
  /// and the RUT checkpoint).
  bool completion = false;
  bool completion_is_stop = false;

  /// Branch redirect resolved this cycle (consumed by the IFU).
  bool redirect = false;
  u32 redirect_pc = 0;

  /// RUT finished restoring: refetch from the checkpoint PC.
  bool recovery_refetch = false;
  u32 recovery_refetch_pc = 0;

  /// In-line corrected events (array ECC scrub) this cycle.
  u32 corrected = 0;

  void raise(CheckerId id, netlist::Unit unit, bool fatal, const char* what) {
    events.push_back(CheckerEvent{id, unit, fatal, what});
  }
  [[nodiscard]] bool any_recoverable() const {
    for (const auto& e : events) {
      if (!e.fatal) return true;
    }
    return false;
  }
  [[nodiscard]] bool any_fatal() const {
    for (const auto& e : events) {
      if (e.fatal) return true;
    }
    return false;
  }
};

}  // namespace sfi::core
