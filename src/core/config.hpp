// CoreConfig: build-time-fixed structure sizes and reset-time configuration
// of the Pearl6 core.
//
// The checker enables mirror the paper's §3.3 experiment ("disabling and
// enabling checkers in various parts of the core through masking of
// checkers"): they are loaded into scan-only MODE latches at reset, so both
// legitimate reconfiguration (Table 3's Raw vs Check) and fault injection
// into the mask latches themselves behave identically.
#pragma once

#include <array>
#include <string_view>

#include "common/types.hpp"

namespace sfi::core {

/// Identifiers for every low-level hardware checker in the core. Each has a
/// MODE enable latch in its owning unit's scan ring.
enum class CheckerId : u8 {
  IfuIcacheTagParity,
  IfuIbufParity,
  IfuIcacheDataParity,
  IduDecodeParity,
  IduControlParity,
  FxuGprParity,
  FxuOperandParity,
  FxuResidue,
  FpuFprParity,
  FpuStageParity,
  FpuResultParity,
  LsuStqParity,
  LsuDcacheTagParity,
  LsuDcacheDataParity,
  LsuEratParity,
  RutEccReport,
  RutFsmCheck,
  CoreWatchdog,
  CoreRecoveryProtocol,
  /// Main-store (DRAM) ECC reporting. The memory controller is outside the
  /// core's checker masking: it reports regardless of CoreConfig masks,
  /// like the real machine's nest logic.
  MemEcc,
};
inline constexpr std::size_t kNumCheckers = 20;

/// Stable label for reports and logs (propagation records name the first
/// checker that fired).
[[nodiscard]] constexpr std::string_view checker_name(CheckerId id) {
  constexpr std::array<std::string_view, kNumCheckers> names = {
      "ifu.icache_tag_parity", "ifu.ibuf_parity",   "ifu.icache_data_parity",
      "idu.decode_parity",     "idu.control_parity", "fxu.gpr_parity",
      "fxu.operand_parity",    "fxu.residue",        "fpu.fpr_parity",
      "fpu.stage_parity",      "fpu.result_parity",  "lsu.stq_parity",
      "lsu.dcache_tag_parity", "lsu.dcache_data_parity", "lsu.erat_parity",
      "rut.ecc_report",        "rut.fsm_check",      "core.watchdog",
      "core.recovery_protocol", "mem.ecc"};
  const auto i = static_cast<std::size_t>(id);
  return i < names.size() ? names[i] : "unknown";
}

struct CoreConfig {
  // --- structure sizes (fixed: changing them changes the latch inventory,
  //     which is part of the modelled design, not a tunable) ---
  static constexpr u32 kMemBytes = 1u << 16;
  static constexpr u32 kIcacheLines = 16;   ///< direct-mapped, 16B lines
  static constexpr u32 kDcacheLines = 32;   ///< direct-mapped, 16B lines
  static constexpr u32 kLineBytes = 16;
  static constexpr u32 kFetchBufEntries = 4;
  static constexpr u32 kStqEntries = 8;
  static constexpr u32 kEratEntries = 16;   ///< 4 KiB pages over 64 KiB
  static constexpr u32 kMemLatency = 6;     ///< cycles per memory access
  static constexpr u32 kEratFillLatency = 3;
  static constexpr u32 kMulLatency = 3;
  static constexpr u32 kDivLatency = 12;
  static constexpr u32 kFpuStages = 4;

  // --- reset-time configuration (loaded into MODE latches) ---
  /// Master switch for all low-level checkers (Table 3 Raw = false).
  bool checkers_enabled = true;
  /// Per-checker override: checker i is enabled iff checkers_enabled is true
  /// and checker_mask bit i is set. Default: all on.
  u64 checker_mask = ~u64{0};
  /// Completion watchdog timeout in cycles (hang detection).
  u32 watchdog_timeout = 600;
  /// Recoveries without an intervening completion before escalating to
  /// checkstop (breaks recovery livelock on persistent faults).
  u32 recovery_threshold = 3;
  /// Recovery sequencer watchdog: max cycles for one recovery action.
  u32 recovery_timeout = 200;
  /// Allow recovery at all (false: any detected error checkstops).
  bool recovery_enabled = true;

  [[nodiscard]] bool checker_on(CheckerId id) const {
    return checkers_enabled &&
           ((checker_mask >> static_cast<unsigned>(id)) & 1) != 0;
  }
};

}  // namespace sfi::core
