// Instruction cache: direct-mapped, 16 lines × 16 bytes, blocking miss.
//
// Tags and the miss state machine are FUNC latches (injectable, parity on
// the tag); line data lives in a parity-protected array (an SRAM in the real
// design — struck by the beam, not by latch-mode SFI). A tag-parity or
// data-parity hit is reported as a recoverable IFU checker event and the
// access is retried as a miss, which is how parity-protected I-caches
// self-heal: the line is clean by construction (write-through from memory).
#pragma once

#include <string>

#include "core/config.hpp"
#include "core/mode_ring.hpp"
#include "core/signals.hpp"
#include "mem/ecc_memory.hpp"
#include "netlist/array.hpp"
#include "netlist/field.hpp"
#include "netlist/registry.hpp"

namespace sfi::core {

class ICache {
 public:
  ICache(netlist::LatchRegistry& reg, u8 scan_ring);

  /// Physical addresses are 16-bit (64 KiB memory).
  struct Plan {
    bool want = false;        ///< a fetch was requested this cycle
    bool hit = false;
    u32 word = 0;             ///< instruction word when hit
    bool start_miss = false;  ///< begin refill for `addr`
    bool invalidate = false;  ///< tag/data parity error: drop the line
    bool refill = false;      ///< miss completed: write tags+data this cycle
    u32 addr = 0;
    u32 line = 0;
  };

  /// Detect phase: attempt to fetch the word at `addr` (4-byte aligned).
  /// Raises checker events through `sig` honouring `mode` enables.
  [[nodiscard]] Plan plan_fetch(const netlist::CycleFrame& f, u32 addr,
                                bool want, const ModeRing& mode,
                                Signals& sig);

  /// Update phase: advance the miss FSM, perform refills/invalidates.
  void update(const netlist::CycleFrame& f, const Plan& plan,
              mem::EccMemory& mem);

  void reset(netlist::StateVector& sv);

  [[nodiscard]] netlist::ProtectedArray& data_array() { return data_; }
  [[nodiscard]] const netlist::ProtectedArray& data_array() const {
    return data_;
  }

  /// True while a refill is outstanding (fetch cannot hit a different line).
  [[nodiscard]] bool miss_pending(const netlist::CycleFrame& f) const {
    return busy_.get(f);
  }

 private:
  static constexpr u32 kLines = CoreConfig::kIcacheLines;
  static constexpr u32 kLineBytes = CoreConfig::kLineBytes;

  [[nodiscard]] static u32 line_of(u32 addr) {
    return (addr / kLineBytes) % kLines;
  }
  [[nodiscard]] static u32 tag_of(u32 addr) {
    return (addr & 0xFFFF) / (kLineBytes * kLines);
  }

  std::vector<netlist::Flag> valid_;
  std::vector<netlist::Field> tag_;     // 8-bit tag
  std::vector<netlist::Flag> tag_par_;  // parity over {valid, tag}
  netlist::Flag busy_;                  // miss FSM active
  netlist::Field miss_addr_;            // 16-bit line-aligned address
  netlist::Field wait_;                 // countdown to refill

  netlist::ProtectedArray data_;        // kLines*2 entries of 64 bits
};

}  // namespace sfi::core
