// Parity-protected register files built from REGFILE-type latches.
//
// Every entry is a 64-bit data field plus one parity latch, all injectable.
// Reads verify parity (a flipped data bit fires the owning unit's
// register-file checker; a flipped parity bit fires a false positive —
// both trigger recovery, exactly like real parity hardware).
#pragma once

#include <string>
#include <vector>

#include "netlist/field.hpp"
#include "netlist/registry.hpp"

namespace sfi::core {

class ParityRegFile {
 public:
  /// Registers `entries` data+parity latch pairs in `unit`'s REGFILE ring.
  ParityRegFile(netlist::LatchRegistry& reg, const std::string& base_name,
                netlist::Unit unit, u8 scan_ring, u32 entries,
                u32 width = 64);

  [[nodiscard]] u32 entries() const { return static_cast<u32>(data_.size()); }
  [[nodiscard]] u32 width() const { return width_; }

  struct ReadResult {
    u64 value = 0;
    bool parity_ok = true;
  };

  /// Combinational read with parity verification.
  [[nodiscard]] ReadResult read(const netlist::CycleFrame& f, u32 idx) const;

  /// Stage a write (data + regenerated parity) for the next cycle.
  void write(const netlist::CycleFrame& f, u32 idx, u64 value) const;

  /// Out-of-band accessors for reset and architected-state extraction.
  [[nodiscard]] u64 peek(const netlist::StateVector& sv, u32 idx) const;
  void poke(netlist::StateVector& sv, u32 idx, u64 value) const;

 private:
  std::vector<netlist::Field> data_;
  std::vector<netlist::Flag> parity_;
  u32 width_;
};

}  // namespace sfi::core
