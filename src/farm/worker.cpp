#include "farm/worker.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <sstream>
#include <thread>

#include "sched/scheduler.hpp"
#include "sfi/engine.hpp"
#include "sfi/telemetry.hpp"
#include "store/writer.hpp"
#include "telemetry/json.hpp"

#include <unistd.h>

namespace sfi::farm {

namespace {

/// Line-buffered reader over a raw fd (the control pipe). Blocking: a
/// worker with nothing assigned should sit in read(), not spin.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Next full line (without the '\n'); false on EOF/error.
  bool next(std::string& line) {
    for (;;) {
      const auto nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line.assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = read(fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;  // EOF: coordinator is gone or done
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buf_;
};

struct Assignment {
  u64 shard = 0;
  u32 attempt = 0;
  std::vector<u32> indices;
  u64 trace_id = 0;       ///< span-plane extension (0 when absent)
  u64 dispatch_span = 0;  ///< coordinator's dispatch span: shard parent
};

/// Parse "A <shard> <attempt> <count> <index>..."; false on malformed input
/// (a malformed assignment is a coordinator bug — the worker exits nonzero
/// rather than guessing). Trailing `<trace_id> <dispatch_span>` tokens are
/// the span plane's optional extension.
bool parse_assignment(const std::string& line, Assignment& out) {
  std::istringstream in(line);
  std::string verb;
  u64 count = 0;
  if (!(in >> verb >> out.shard >> out.attempt >> count) || verb != "A") {
    return false;
  }
  out.indices.clear();
  out.indices.reserve(count);
  for (u64 i = 0; i < count; ++i) {
    u32 index = 0;
    if (!(in >> index)) return false;
    out.indices.push_back(index);
  }
  out.trace_id = 0;
  out.dispatch_span = 0;
  if (!(in >> out.trace_id >> out.dispatch_span)) {
    out.trace_id = 0;
    out.dispatch_span = 0;
  }
  return true;
}

void maybe_sabotage(const SabotageConfig& sabotage, u32 index, u32 attempt) {
  if (sabotage.crash_index && *sabotage.crash_index == index &&
      attempt == 0) {
    // A literal kill -9 of ourselves: no exit handlers, no flush — the
    // shard store ends wherever the last commit marker landed.
    raise(SIGKILL);
  }
  if (sabotage.wedge_index && *sabotage.wedge_index == index &&
      (!sabotage.wedge_once || attempt == 0)) {
    // Loss of forward progress without CPU burn; only the coordinator's
    // SIGKILL ends this.
    for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace

int run_worker(const avp::Testcase& tc, const inject::CampaignConfig& cfg,
               const WorkerOptions& opts,
               const inject::CampaignPlan* plan_in) {
  // Workers are single-threaded and report nothing to a telemetry facade —
  // their observable output is the shard store, full stop. (With
  // metrics_every set, a worker-private registry accumulates phase/outcome
  // metrics and ships them as 'M' frames through that same store.)
  inject::CampaignConfig wcfg = cfg;
  wcfg.telemetry = nullptr;
  wcfg.threads = 1;

  std::optional<inject::CampaignTelemetry> tel;
  inject::WorkerTelemetry* wt = nullptr;
  if (opts.metrics_every > 0 || opts.trace_spans) {
    tel.emplace();
    if (opts.trace_spans) {
      // Trace id arrives with the first assignment; until then spans carry
      // id 0 and the book back-fills nothing — all spans recorded after
      // set_trace_id carry the campaign id, and the pre-assignment ones
      // (plan build) are stitched by pid anyway.
      tel->enable_span_plane(
          "sfi worker " + std::to_string(opts.worker_id), 0);
    }
    tel->prepare_workers(1);
    wt = &tel->worker(0);
  }
  telemetry::SpanBook* book = tel ? tel->spans() : nullptr;
  // Drain recorded spans into the shard store as 'S' frames; committed by
  // the caller's next flush, delivered by the coordinator's FrameTail.
  const auto ship_spans = [&](store::StoreWriter& w) {
    if (book == nullptr || book->size() == 0) return;
    for (const telemetry::SpanRecord& sp : book->drain()) w.append_span(sp);
  };

  std::optional<inject::CampaignPlan> own_plan;
  if (plan_in == nullptr) {
    const u64 plan_t0 = book != nullptr ? book->now_us() : 0;
    own_plan.emplace(inject::plan_campaign(tc, wcfg));
    if (book != nullptr) {
      // Exec-mode startup is dominated by this rebuild; the slice is what
      // makes the farm's startup_seconds grace visible in the trace.
      book->slice("plan build", "worker.startup", plan_t0,
                  book->now_us() - plan_t0);
    }
    plan_in = &*own_plan;
  }
  const inject::CampaignPlan& plan = *plan_in;

  const store::CampaignMeta meta = sched::make_campaign_meta(tc, wcfg, plan);
  store::StoreWriter writer = store::StoreWriter::create(
      opts.shard_path, meta, {.commit_markers = true});

  const std::unique_ptr<inject::InjectionEngine> engine =
      inject::make_engine(tc, wcfg, plan);

  u64 hb_seq = 0;
  u64 executed = 0;
  u64 m_seq = 0;
  u64 last_snapshot = 0;
  // Cumulative snapshot: fold the shard, copy the registry, append. The
  // coordinator keeps only the newest per (slot, generation), so cadence
  // only trades freshness against bytes.
  const auto emit_metrics = [&] {
    if (wt == nullptr) return;
    wt->fold();
    writer.append_metrics({opts.worker_id, m_seq++, tel->metrics().snapshot()});
    last_snapshot = executed;
  };
  // First committed frame doubles as the startup signal: the (possibly
  // slow) plan build above is done and the watchdog clock may start.
  writer.append_heartbeat(
      {opts.worker_id, hb_seq++, store::kHeartbeatIdle, executed});
  writer.flush();

  LineReader lines(opts.control_fd);
  std::string line;
  Assignment a;
  while (lines.next(line)) {
    if (line.empty()) continue;
    if (line == "Q") break;
    if (!parse_assignment(line, a)) return 3;
    if (book != nullptr && a.trace_id != 0) book->set_trace_id(a.trace_id);
    const u64 shard_t0 = book != nullptr ? book->now_us() : 0;
    writer.append_assignment({opts.worker_id, a.shard, a.attempt,
                              static_cast<u32>(a.indices.size())});
    writer.flush();
    // Claims pull from the assignment in order; the engine may hold several
    // in flight (lanes), so the heartbeat names the latest *claimed* index —
    // the supervisor's blame stays shard-attempt granular either way.
    bool bad_index = false;
    std::size_t p = 0;
    engine->run(
        [&]() -> std::optional<u32> {
          if (bad_index || p >= a.indices.size()) return std::nullopt;
          const u32 index = a.indices[p++];
          if (index >= plan.faults.size()) {
            bad_index = true;
            return std::nullopt;
          }
          writer.append_heartbeat({opts.worker_id, hb_seq++, index, executed});
          writer.flush();
          // Sabotage strikes after the heartbeat commits, like the real
          // failure it stands in for (the injected flip wedging the harness
          // mid-run) — so the supervisor can finger this index as the
          // culprit.
          maybe_sabotage(opts.sabotage, index, a.attempt);
          return index;
        },
        [&](u32 index, const inject::InjectionRecord& rec,
            std::optional<inject::PropagationRecord> fp) {
          store::StoredRecord sr;
          sr.index = index;
          sr.rec = rec;
          writer.append(sr);
          if (fp) writer.append_propagation(*fp);
          ++executed;
          if (opts.metrics_every > 0 &&
              executed - last_snapshot >= opts.metrics_every) {
            emit_metrics();
          }
          // Per-record flush+commit: the coordinator's done-count advances
          // one committed record at a time, and a crash can only lose the
          // injections in flight — exactly what the supervisor re-runs.
          ship_spans(writer);
          writer.flush();
        },
        wt);
    if (bad_index) return 3;
    if (book != nullptr) {
      // The shard slice parents under the coordinator's dispatch span —
      // the cross-process edge the stitched trace hangs together by.
      telemetry::JsonWriter args;
      args.begin_object()
          .field("shard", a.shard)
          .field("attempt", a.attempt)
          .field("indices", a.indices.size())
          .end_object();
      book->slice("shard " + std::to_string(a.shard) + " attempt " +
                      std::to_string(a.attempt),
                  "shard.exec", shard_t0, book->now_us() - shard_t0,
                  a.dispatch_span, args.str());
      ship_spans(writer);
      writer.flush();
    }
  }
  // Parting snapshot so the fleet view ends exact, not one interval stale.
  if (wt != nullptr && executed != last_snapshot) emit_metrics();
  ship_spans(writer);
  writer.flush();
  return 0;
}

}  // namespace sfi::farm
