#include "farm/farm.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "core/core_model.hpp"
#include "farm/process.hpp"
#include "store/merge.hpp"
#include "store/tail.hpp"
#include "store/writer.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/json.hpp"

namespace sfi::farm {

namespace {

bool is_local_host(const std::string& host) {
  return host == "localhost" || host == "local" || host == "127.0.0.1" ||
         host == "::1";
}

/// Shard of campaign indices plus its retry state.
struct WorkShard {
  u64 id = 0;
  std::vector<u32> indices;
  u32 attempt = 0;
  double not_before = 0.0;  ///< steady seconds; backoff gate
};

/// One worker slot: the process currently (or last) occupying it, the shard
/// file it writes, and the commit-aware tail the coordinator reads it by.
struct Slot {
  u32 id = 0;
  u32 generation = 0;  ///< respawn count (fresh shard file per generation)
  std::string host;    ///< empty in fork-call mode
  ChildProcess proc;
  std::unique_ptr<store::FrameTail> tail;
  std::string shard_path;
  bool alive = false;
  bool started = false;  ///< any committed frame seen this generation
  bool gap_warned = false;
  std::optional<WorkShard> current;
  std::optional<u32> in_flight;  ///< last committed heartbeat's index
  double last_activity = 0.0;    ///< steady seconds of last committed frame
  double spawned_at = 0.0;
};

std::string shard_file_path(const std::string& out_path, u32 slot,
                            u32 generation) {
  std::string base = out_path;
  if (base.size() > 4 && base.ends_with(".sfr")) {
    base.resize(base.size() - 4);
  }
  return base + ".w" + std::to_string(slot) + "g" +
         std::to_string(generation) + ".sfr";
}

/// True if `path` exists and opens as a store (header intact) — i.e. it can
/// contribute to the merge. Shards of workers killed before the header hit
/// the disk fail this and are rightly excluded.
bool usable_store(const std::string& path) {
  if (!std::filesystem::exists(path)) return false;
  try {
    store::StoreReader probe(path, {.tolerate_torn_tail = true});
    return true;
  } catch (const store::StoreError&) {
    return false;
  }
}

/// Trailing `<trace_id> <dispatch_span_id>` tokens are the span plane's
/// compatible extension: parse_assignment reads exactly `count` indices, so
/// older workers never see them and newer workers treat them as optional.
std::string assignment_line(const WorkShard& shard, u64 trace_id,
                            u64 dispatch_span) {
  std::ostringstream line;
  line << "A " << shard.id << " " << shard.attempt << " "
       << shard.indices.size();
  for (const u32 i : shard.indices) line << " " << i;
  if (trace_id != 0) line << " " << trace_id << " " << dispatch_span;
  return line.str();
}

std::string trace_sidecar_path(const std::string& out_path) {
  std::string base = out_path;
  if (base.size() > 4 && base.ends_with(".sfr")) {
    base.resize(base.size() - 4);
  }
  return base + ".trace.sfr";
}

}  // namespace

std::vector<HostSlot> parse_hosts_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open hosts file: " + path);
  std::vector<HostSlot> hosts;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    HostSlot hs;
    if (!(fields >> hs.host)) continue;  // blank / comment-only line
    if (!(fields >> hs.slots)) hs.slots = 1;
    if (hs.slots == 0) {
      throw std::runtime_error("hosts file: zero slots for " + hs.host);
    }
    hosts.push_back(std::move(hs));
  }
  if (hosts.empty()) {
    throw std::runtime_error("hosts file has no usable entries: " + path);
  }
  return hosts;
}

FarmResult run_farm_campaign(const avp::Testcase& tc,
                             const inject::CampaignConfig& cfg,
                             const std::string& out_path,
                             const FarmConfig& farm, bool resume) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto now_s = [t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  const auto steady_us_now = [] {
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };

  ignore_sigpipe();

  const bool exec_mode = !farm.hosts.empty();
  if (exec_mode && farm.worker_command.empty()) {
    throw std::runtime_error(
        "farm: hosts given but no worker command to exec");
  }

  inject::CampaignTelemetry* tel = cfg.telemetry;
  if (tel != nullptr) {
    tel->campaign_start("campaign", cfg.seed, cfg.num_injections,
                        /*resumed=*/0);
  }

  const inject::CampaignPlan plan = inject::plan_campaign(tc, cfg);
  const store::CampaignMeta meta = sched::make_campaign_meta(tc, cfg, plan);

  // --- span plane: coordinator book + durable sidecar ---
  const bool spans_on = farm.trace_spans && tel != nullptr;
  u64 trace_id = 0;
  std::optional<store::StoreWriter> sidecar;
  if (spans_on) {
    trace_id = farm.trace_id;
    if (trace_id == 0) {
      // Campaign-scoped, fleet-unique enough: fingerprint ties the id to
      // the campaign, wall microseconds split re-runs of the same one.
      trace_id = meta.config_fingerprint ^
                 static_cast<u64>(
                     std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count());
      if (trace_id == 0) trace_id = 1;
    }
    tel->enable_span_plane("sfi farm", trace_id);
    sidecar.emplace(
        store::StoreWriter::create(trace_sidecar_path(out_path), meta));
  }
  // Drain the coordinator's own book into the sidecar, keeping a copy for
  // the live /trace view. Called opportunistically from the supervision
  // loop and once at the very end (after campaign_finish's root slice).
  const auto flush_own_spans = [&] {
    if (!sidecar || tel == nullptr || tel->spans() == nullptr) return;
    const std::vector<telemetry::SpanRecord> drained = tel->spans()->drain();
    if (drained.empty()) return;
    for (const telemetry::SpanRecord& sp : drained) sidecar->append_span(sp);
    sidecar->flush();
    tel->retain_spans(drained);
  };

  FarmResult result;
  result.meta = meta;

  // done[i]: a committed record for i exists (inherited or from a worker
  // this run). struck: indices declared HarnessFatal.
  std::vector<bool> done(cfg.num_injections, false);
  std::set<u32> struck;
  std::map<u32, u32> strikes;
  u64 done_count = 0;

  std::vector<std::string> merge_inputs;

  // --- resume: inherit the committed prefix of a prior output store ---
  if (resume && std::filesystem::exists(out_path)) {
    const store::StoreContents prior =
        store::read_store(out_path, {.tolerate_torn_tail = true});
    if (!prior.meta.same_campaign(meta)) {
      throw store::StoreError(
          "refusing to resume " + out_path +
          ": it records a different campaign (seed/config/workload "
          "fingerprint mismatch) — rerun without --resume to overwrite");
    }
    for (const store::StoredRecord& sr : prior.records) {
      if (sr.index >= cfg.num_injections) {
        throw store::StoreError("record index out of range in " + out_path);
      }
      if (!done[sr.index]) {
        done[sr.index] = true;
        ++done_count;
        ++result.resumed;
        if (farm.on_record) farm.on_record(sr);
      }
    }
    merge_inputs.push_back(out_path);
    if (tel != nullptr) {
      if (auto* log = tel->events()) {
        telemetry::JsonWriter w;
        w.begin_object()
            .field("ev", "resume")
            .field("t_us", tel->now_us())
            .field("resumed", result.resumed)
            .field("store", out_path)
            .end_object();
        log->emit(w.str());
      }
    }
  }

  // --- shard the remaining index space, cycle-sorted (checkpoint-hot) ---
  std::deque<WorkShard> queue;
  {
    const u32 shard_size = std::max(1u, farm.shard_size);
    WorkShard cur;
    u64 next_id = 0;
    for (const u32 i : plan.cycle_sorted_indices()) {
      if (done[i]) continue;
      cur.indices.push_back(i);
      if (cur.indices.size() >= shard_size) {
        cur.id = next_id++;
        queue.push_back(std::move(cur));
        cur = WorkShard{};
      }
    }
    if (!cur.indices.empty()) {
      cur.id = next_id++;
      queue.push_back(std::move(cur));
    }
  }
  u64 remaining = 0;
  for (const WorkShard& s : queue) remaining += s.indices.size();

  const auto report_progress = [&] {
    if (!farm.on_progress) return;
    farm.on_progress({done_count + struck.size(), cfg.num_injections,
                      result.resumed, result.executed, now_s(),
                      steady_us_now()});
  };
  report_progress();

  // --- worker slots ---
  std::vector<Slot> slots;
  if (exec_mode) {
    u32 id = 0;
    for (const HostSlot& hs : farm.hosts) {
      for (u32 k = 0; k < hs.slots; ++k) {
        Slot s;
        s.id = id++;
        s.host = hs.host;
        slots.push_back(std::move(s));
      }
    }
  } else {
    const u32 n = std::max(1u, farm.workers);
    for (u32 id = 0; id < n; ++id) {
      Slot s;
      s.id = id;
      slots.push_back(std::move(s));
    }
  }

  const auto spawn_slot = [&](Slot& s) {
    ++s.generation;
    s.shard_path = shard_file_path(out_path, s.id, s.generation);
    std::filesystem::remove(s.shard_path);  // stale file from a prior run
    s.tail = std::make_unique<store::FrameTail>(s.shard_path);
    if (exec_mode) {
      std::vector<std::string> argv;
      if (!is_local_host(s.host)) {
        argv.push_back("ssh");
        argv.push_back(s.host);
      }
      argv.insert(argv.end(), farm.worker_command.begin(),
                  farm.worker_command.end());
      argv.push_back("--shard-store");
      argv.push_back(s.shard_path);
      argv.push_back("--worker-id");
      argv.push_back(std::to_string(s.id));
      if (farm.trace_spans) argv.push_back("--trace-spans");
      s.proc = spawn_exec(argv);
    } else {
      const WorkerOptions wo{s.id,          s.shard_path,
                             /*control_fd=*/-1,
                             farm.sabotage, farm.metrics_every,
                             farm.trace_spans};
      s.proc = spawn_call([&tc, &cfg, &plan, wo](int control_fd) {
        WorkerOptions opts = wo;
        opts.control_fd = control_fd;
        return run_worker(tc, cfg, opts, &plan);
      });
    }
    s.alive = true;
    s.started = false;
    s.gap_warned = false;
    s.current.reset();
    s.in_flight.reset();
    s.spawned_at = now_s();
    s.last_activity = s.spawned_at;
    ++result.workers_spawned;
    if (tel != nullptr) {
      tel->farm_worker_spawned(s.id, s.proc.pid, s.generation);
    }
  };

  // Crash flight recorder: every supervision failure rewrites the
  // postmortem file with the ring's current contents, so the artifact that
  // survives is the last seconds before the most recent fatality.
  const auto postmortem = [&farm, tel, spans_on] {
    auto& recorder = telemetry::FlightRecorder::global();
    if (!farm.postmortem_path.empty() && recorder.enabled()) {
      recorder.dump(farm.postmortem_path);
    }
    // The same ring tail, as trace instants: the stitched timeline shows
    // what the fleet was doing in the seconds around the fatality.
    if (spans_on) {
      tel->flight_recorder_tail_to_spans("supervision failure");
    }
  };

  // Strike bookkeeping for one failed worker: finger the culprit, requeue
  // the unfinished remainder with backoff, and free the slot.
  u64 failures_without_progress = 0;
  const auto handle_failure = [&](Slot& s) {
    ++failures_without_progress;
    close_control(s.proc);
    s.alive = false;
    if (s.in_flight && *s.in_flight < cfg.num_injections &&
        !done[*s.in_flight] && !struck.contains(*s.in_flight)) {
      const u32 culprit = *s.in_flight;
      const u32 n_strikes = ++strikes[culprit];
      if (n_strikes >= farm.max_strikes) {
        struck.insert(culprit);
        --remaining;
        if (tel != nullptr) tel->farm_strikeout(culprit, n_strikes);
      }
    }
    if (s.current) {
      WorkShard retry;
      retry.id = s.current->id;
      retry.attempt = s.current->attempt + 1;
      for (const u32 i : s.current->indices) {
        if (!done[i] && !struck.contains(i)) retry.indices.push_back(i);
      }
      s.current.reset();
      if (!retry.indices.empty()) {
        const double backoff = std::min(
            farm.backoff_cap_seconds,
            farm.backoff_base_seconds *
                static_cast<double>(1ull << std::min<u32>(retry.attempt - 1,
                                                          20)));
        retry.not_before = now_s() + backoff;
        ++result.shard_retries;
        if (tel != nullptr) {
          tel->farm_shard_retry(retry.id, retry.attempt, backoff);
        }
        queue.push_back(std::move(retry));
      }
    }
    // The dead generation's shard file stays: its committed records are
    // merge input. (usable_store filters headerless stubs later.)
    postmortem();
  };

  // Frame delivery from one slot's tail.
  const auto deliver = [&](Slot& s, u8 kind, std::span<const u8> payload) {
    switch (kind) {
      case store::kHeartbeatFrame: {
        const store::HeartbeatFrame hb = store::decode_heartbeat(payload);
        if (hb.index != store::kHeartbeatIdle) s.in_flight = hb.index;
        break;
      }
      case store::kRecordFrame: {
        const store::StoredRecord sr = store::decode_record(payload);
        if (sr.index < cfg.num_injections && !done[sr.index]) {
          done[sr.index] = true;
          ++done_count;
          ++result.executed;
          if (remaining > 0) --remaining;
          failures_without_progress = 0;
          // Coordinator-side live tallies: farm workers report through
          // their shard stores, so this is where the progress line's
          // outcome mix (and its Wilson half-width) comes from.
          if (tel != nullptr) tel->live_outcome_add(sr.rec.outcome);
          if (farm.on_record) farm.on_record(sr);
        }
        break;
      }
      case store::kMetricsFrame: {
        if (tel == nullptr) break;
        try {
          store::MetricsFrame mf = store::decode_metrics(payload);
          tel->note_worker_snapshot(s.id, s.generation,
                                    std::move(mf.snapshot));
        } catch (const store::StoreError&) {
          // A snapshot a newer/older worker encoded differently is an
          // observability loss, never a campaign failure.
        }
        break;
      }
      case store::kSpanFrame: {
        if (!spans_on) break;
        try {
          const telemetry::SpanRecord sp = store::decode_span(payload);
          if (sidecar) {
            sidecar->append_span(sp);
          }
          tel->retain_spans({sp});
        } catch (const store::StoreError&) {
          // Same policy as 'M': a span another version encoded differently
          // is an observability loss, never a campaign failure.
        }
        break;
      }
      default:
        break;  // 'A' echoes, 'P' footprints: liveness only
    }
  };

  const u64 spawn_sanity_cap =
      static_cast<u64>(slots.size()) * (farm.max_strikes + 2) + 16;

  // Initial spawns: no more workers than shards to hand out.
  {
    u64 to_spawn = std::min<u64>(slots.size(), queue.size());
    for (Slot& s : slots) {
      if (to_spawn == 0) break;
      spawn_slot(s);
      --to_spawn;
    }
  }

  // --- supervision loop (single-threaded poll) ---
  while (remaining > 0) {
    if (farm.should_stop && farm.should_stop()) {
      result.stopped = true;
      break;
    }

    const double now = now_s();
    u64 delivered_total = 0;

    for (Slot& s : slots) {
      if (!s.alive) continue;

      // 1. committed frames since last poll
      const std::size_t delivered = s.tail->poll(
          [&](u8 kind, std::span<const u8> payload) { deliver(s, kind, payload); });
      if (delivered > 0) {
        delivered_total += delivered;
        s.started = true;
        s.last_activity = now;
        s.gap_warned = false;
      }
      // Assignment complete once every index has a committed record (or was
      // struck out by another route): the slot is idle again.
      if (s.current &&
          std::all_of(s.current->indices.begin(), s.current->indices.end(),
                      [&](u32 i) { return done[i] || struck.contains(i); })) {
        s.current.reset();
        s.in_flight.reset();
      }
      if (s.tail->corrupt()) {
        kill_hard(s.proc);
        bool clean = false;
        int detail = 0;
        reap(s.proc, clean, detail);
        ++result.worker_crashes;
        if (tel != nullptr) {
          tel->farm_worker_exited(s.id, s.proc.pid, false, detail);
        }
        handle_failure(s);
        continue;
      }

      // 2. unexpected exit (a live worker only exits after Quit)
      bool clean = false;
      int detail = 0;
      if (try_reap(s.proc, clean, detail)) {
        // Drain any frames committed between the last poll and death.
        s.tail->poll([&](u8 kind, std::span<const u8> payload) {
          deliver(s, kind, payload);
        });
        ++result.worker_crashes;
        if (tel != nullptr) {
          tel->farm_worker_exited(s.id, s.proc.pid, false, detail);
        }
        handle_failure(s);
        continue;
      }

      // 3. watchdog: no committed frame for too long
      const double deadline =
          s.started ? (s.current ? farm.watchdog_seconds : 0.0)
                    : farm.startup_seconds;
      if (deadline > 0.0) {
        const double gap = now - s.last_activity;
        if (gap > deadline) {
          kill_hard(s.proc);
          reap(s.proc, clean, detail);
          ++result.watchdog_kills;
          if (tel != nullptr) {
            tel->farm_watchdog_kill(s.id, s.proc.pid, s.in_flight);
          }
          handle_failure(s);
          continue;
        }
        if (gap > deadline / 2.0 && !s.gap_warned) {
          s.gap_warned = true;
          ++result.heartbeat_gaps;
          if (tel != nullptr) tel->farm_heartbeat_gap(s.id, gap);
        }
      }
    }

    if (delivered_total > 0) report_progress();
    if (remaining == 0) break;

    if (failures_without_progress > spawn_sanity_cap) {
      throw std::runtime_error(
          "farm: workers keep dying without progress (" +
          std::to_string(result.workers_spawned) +
          " spawned) — giving up; see the shard files next to " + out_path);
    }

    // 4. dispatch ready shards to idle workers (respawning dead slots when
    // there is work for them)
    for (Slot& s : slots) {
      if (queue.empty()) break;
      if (s.alive && s.current) continue;
      // Find the first ready shard (backoff-gated entries wait).
      auto ready = queue.end();
      for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (it->not_before <= now_s()) {
          ready = it;
          break;
        }
      }
      if (ready == queue.end()) break;
      WorkShard shard = std::move(*ready);
      queue.erase(ready);
      // Drop indices that committed or struck out since enqueueing.
      std::erase_if(shard.indices, [&](u32 i) {
        return done[i] || struck.contains(i);
      });
      if (shard.indices.empty()) continue;
      if (!s.alive) spawn_slot(s);
      // Dispatch span: the worker parents its shard slice under this id,
      // which is how the stitched trace links coordinator to worker.
      u64 dispatch_span = 0;
      if (spans_on && tel->spans() != nullptr) {
        telemetry::SpanBook* book = tel->spans();
        telemetry::JsonWriter args;
        args.begin_object()
            .field("shard", shard.id)
            .field("attempt", shard.attempt)
            .field("indices", shard.indices.size())
            .field("slot", s.id)
            .end_object();
        dispatch_span = book->instant(
            "dispatch shard " + std::to_string(shard.id), "farm.dispatch",
            book->now_us(), 0, args.str());
      }
      if (!send_line(s.proc, assignment_line(shard, trace_id,
                                             dispatch_span))) {
        // The pipe died before the assignment landed; the reap branch next
        // iteration handles the corpse. Requeue this shard immediately.
        shard.not_before = now_s() + farm.backoff_base_seconds;
        queue.push_back(std::move(shard));
        continue;
      }
      s.current = std::move(shard);
      s.gap_warned = false;
      // New assignment, fresh watchdog window.
      s.last_activity = now_s();
      ++result.assignments;
    }

    flush_own_spans();
    std::this_thread::sleep_for(
        std::chrono::duration<double>(std::max(0.001, farm.poll_seconds)));
  }

  // --- drain ---
  if (result.stopped) {
    // Interrupted: in-flight workers are killed; their committed records
    // are already on disk and the campaign resumes from the merge below.
    for (Slot& s : slots) {
      if (!s.alive) continue;
      kill_hard(s.proc);
      bool clean = false;
      int detail = 0;
      reap(s.proc, clean, detail);
      close_control(s.proc);
      s.tail->poll(
          [&](u8 kind, std::span<const u8> payload) { deliver(s, kind, payload); });
      s.alive = false;
      if (tel != nullptr) {
        tel->farm_worker_exited(s.id, s.proc.pid, false, detail);
      }
    }
  } else {
    for (Slot& s : slots) {
      if (!s.alive) continue;
      send_line(s.proc, "Q");
      close_control(s.proc);  // EOF backs up the Quit
    }
    const double drain_deadline =
        now_s() + std::max(5.0, farm.watchdog_seconds);
    for (Slot& s : slots) {
      if (!s.alive) continue;
      bool clean = false;
      int detail = 0;
      bool reaped = false;
      while (now_s() < drain_deadline) {
        if (try_reap(s.proc, clean, detail)) {
          reaped = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      if (!reaped) {
        kill_hard(s.proc);
        reap(s.proc, clean, detail);
      }
      s.tail->poll(
          [&](u8 kind, std::span<const u8> payload) { deliver(s, kind, payload); });
      s.alive = false;
      if (tel != nullptr) {
        tel->farm_worker_exited(s.id, s.proc.pid, clean, detail);
      }
    }
  }
  report_progress();

  // --- synthesize HarnessFatal records for struck-out injections ---
  std::string synth_path;
  if (!struck.empty()) {
    synth_path = shard_file_path(out_path, 0, 0) + ".hf";
    // One model purely for latch metadata (unit/type of the faulted latch);
    // nothing is simulated.
    core::Pearl6Model model(cfg.core);
    store::StoreWriter synth = store::StoreWriter::create(synth_path, meta);
    for (const u32 i : struck) {
      const inject::FaultSpec& fault = plan.faults[i];
      const netlist::LatchMeta& lmeta =
          model.registry().meta_of_ordinal(fault.index);
      store::StoredRecord sr;
      sr.index = i;
      sr.rec.fault = fault;
      sr.rec.outcome = inject::Outcome::HarnessFatal;
      sr.rec.unit = lmeta.unit;
      sr.rec.type = lmeta.type;
      // The harness died at the injection, so the fault cycle is the last
      // cycle this run meaningfully reached.
      sr.rec.end_cycle = fault.cycle;
      sr.rec.early_exited = false;
      sr.rec.recoveries = 0;
      synth.append(sr);
      result.harness_fatal.push_back(i);
    }
    synth.flush();
  }

  // --- canonical merge: shard stores (+ prior store on resume, + struck
  // synthesics) -> out_path ---
  for (const Slot& s : slots) {
    for (u32 g = 1; g <= s.generation; ++g) {
      const std::string path = shard_file_path(out_path, s.id, g);
      if (usable_store(path)) merge_inputs.push_back(path);
    }
  }
  if (!synth_path.empty()) merge_inputs.push_back(synth_path);

  if (merge_inputs.empty()) {
    // Nothing ran and nothing resumed (e.g. n == 0 shards with a fresh
    // out): write an empty-but-valid store so out_path always exists.
    store::StoreWriter empty = store::StoreWriter::create(out_path, meta);
    empty.flush();
  } else {
    const store::MergeSummary summary = store::merge_stores(
        merge_inputs, out_path, {.tolerate_torn_tail = true});
    result.complete = summary.missing == 0;
  }

  if (!farm.keep_shards) {
    std::error_code ec;
    for (const Slot& s : slots) {
      for (u32 g = 1; g <= s.generation; ++g) {
        std::filesystem::remove(shard_file_path(out_path, s.id, g), ec);
      }
    }
    if (!synth_path.empty()) std::filesystem::remove(synth_path, ec);
  }

  {
    auto [out_meta, agg] = store::aggregate_store(out_path);
    result.meta = out_meta;
    result.agg = agg;
  }
  result.wall_seconds = now_s();
  if (tel != nullptr) {
    tel->campaign_finish(result.agg, result.executed, result.wall_seconds);
  }
  // Final drain after the campaign root slice so the sidecar is complete.
  flush_own_spans();
  return result;
}

}  // namespace sfi::farm
