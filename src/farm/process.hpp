// Minimal POSIX child-process supervision for the farm coordinator.
//
// Two spawn shapes, matching the two farm deployments:
//
//   * fork-call (`--workers N`): the child runs a callable in the forked
//     address space and _exit()s. The campaign plan — golden trace,
//     population, checkpoint store — is inherited copy-on-write, so local
//     workers start instantly and share reference data physically.
//   * fork-exec (`--farm hosts.txt`): the child execs a full `sfi worker`
//     command line (optionally through ssh), rebuilding its plan from
//     (testcase, config). Slower to start, but survives across machines.
//
// Either way the only channel *into* a worker is a pipe carrying newline-
// delimited assignment lines; everything *out of* a worker travels through
// its shard store's frame stream (store/tail.hpp). One channel out means
// one consistency discipline: if the coordinator saw it, it is on disk.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace sfi::farm {

struct ChildProcess {
  i64 pid = -1;
  int control_fd = -1;  ///< write end of the child's command pipe
  [[nodiscard]] bool valid() const { return pid > 0; }
};

/// Fork-call mode: the child runs `child_main(read_fd)` and _exit()s with
/// its return value (never unwinds back into the caller's stack).
ChildProcess spawn_call(const std::function<int(int control_fd)>& child_main);

/// Fork-exec mode: the child dup2s the pipe's read end onto stdin and
/// execs `argv`. An exec failure surfaces as immediate exit 127.
ChildProcess spawn_exec(const std::vector<std::string>& argv);

/// Write `line` + '\n' to the child's control pipe. Returns false on a
/// broken pipe (child already dead) — the caller's failure path, not an
/// exception, because a dying worker is routine for the supervisor.
bool send_line(const ChildProcess& child, const std::string& line);

/// Close our end of the control pipe (EOF is the worker's quit signal too).
void close_control(ChildProcess& child);

/// SIGKILL. The farm never soft-kills: the reason to kill a worker is that
/// it is wedged, and a wedged worker won't run a SIGTERM handler either.
void kill_hard(const ChildProcess& child);

/// Non-blocking reap: true once the child has exited, filling `clean`
/// (normal exit status 0) and `detail` (exit code, or -signal if killed).
bool try_reap(const ChildProcess& child, bool& clean, int& detail);

/// Blocking reap (same out-params).
void reap(const ChildProcess& child, bool& clean, int& detail);

/// Ignore SIGPIPE process-wide so writes to a dead worker's pipe fail with
/// EPIPE instead of killing the coordinator. Idempotent.
void ignore_sigpipe();

/// Absolute path of the running executable (/proc/self/exe), for spawning
/// `sfi worker` children in exec mode. Empty if unavailable.
[[nodiscard]] std::string self_exe();

}  // namespace sfi::farm
