#include "farm/process.hpp"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <stdexcept>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace sfi::farm {

namespace {

[[noreturn]] void child_failed(const char* what) {
  // Never unwind a forked child back into the parent's stack/atexit state.
  std::perror(what);
  _exit(127);
}

ChildProcess do_fork(int fds[2], const std::function<void(int)>& in_child) {
  // Flush inherited stdio so buffered coordinator output is not emitted
  // twice (once by each process).
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    throw std::runtime_error("farm: fork failed");
  }
  if (pid == 0) {
    close(fds[1]);
    in_child(fds[0]);  // never returns
    _exit(127);
  }
  close(fds[0]);
  return ChildProcess{static_cast<i64>(pid), fds[1]};
}

}  // namespace

ChildProcess spawn_call(
    const std::function<int(int control_fd)>& child_main) {
  int fds[2];
  if (pipe(fds) != 0) throw std::runtime_error("farm: pipe failed");
  return do_fork(fds, [&](int read_fd) {
    int rc = 127;
    try {
      rc = child_main(read_fd);
    } catch (...) {
      rc = 126;  // an escaped exception is a harness failure, not a crash
    }
    _exit(rc & 0xFF);
  });
}

ChildProcess spawn_exec(const std::vector<std::string>& argv) {
  if (argv.empty()) throw std::runtime_error("farm: empty exec argv");
  int fds[2];
  if (pipe(fds) != 0) throw std::runtime_error("farm: pipe failed");
  return do_fork(fds, [&](int read_fd) {
    if (dup2(read_fd, STDIN_FILENO) < 0) child_failed("farm dup2");
    close(read_fd);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) {
      cargv.push_back(const_cast<char*>(a.c_str()));
    }
    cargv.push_back(nullptr);
    execvp(cargv[0], cargv.data());
    child_failed("farm execvp");
  });
}

bool send_line(const ChildProcess& child, const std::string& line) {
  if (child.control_fd < 0) return false;
  std::string buf = line;
  buf.push_back('\n');
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n =
        write(child.control_fd, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE et al.: the worker is gone
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void close_control(ChildProcess& child) {
  if (child.control_fd >= 0) {
    close(child.control_fd);
    child.control_fd = -1;
  }
}

void kill_hard(const ChildProcess& child) {
  if (child.valid()) kill(static_cast<pid_t>(child.pid), SIGKILL);
}

namespace {

bool decode_status(int status, bool& clean, int& detail) {
  if (WIFEXITED(status)) {
    detail = WEXITSTATUS(status);
    clean = detail == 0;
    return true;
  }
  if (WIFSIGNALED(status)) {
    detail = -WTERMSIG(status);
    clean = false;
    return true;
  }
  return false;  // stopped/continued: not an exit
}

}  // namespace

bool try_reap(const ChildProcess& child, bool& clean, int& detail) {
  if (!child.valid()) return false;
  int status = 0;
  const pid_t got = waitpid(static_cast<pid_t>(child.pid), &status, WNOHANG);
  if (got != static_cast<pid_t>(child.pid)) return false;
  return decode_status(status, clean, detail);
}

void reap(const ChildProcess& child, bool& clean, int& detail) {
  if (!child.valid()) return;
  int status = 0;
  while (waitpid(static_cast<pid_t>(child.pid), &status, 0) < 0 &&
         errno == EINTR) {
  }
  decode_status(status, clean, detail);
}

void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

std::string self_exe() {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return std::string(buf);
}

}  // namespace sfi::farm
