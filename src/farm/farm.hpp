// Farm coordinator: supervised multi-process campaign execution.
//
// The paper ran its 10^5-flip campaigns on a farm of AWAN emulator boards
// (§2.2) for two reasons this module reproduces in miniature: throughput
// beyond one host, and blast-radius control — an injected flip can wedge
// the harness itself, and on a farm that costs one board, not the campaign.
//
// Shape: the coordinator spawns workers as OS processes (fork-call locally,
// fork-exec / ssh for a hosts file), hands out cycle-sorted shards over a
// pipe, and watches each worker's shard store grow through a commit-aware
// FrameTail. The store *is* the protocol — heartbeats ('B'), assignment
// echoes ('A'), records ('R'/'P'), each flush sealed by a commit marker
// ('F') — so supervision state and durable results can never disagree: an
// injection is "done" exactly when its record frame is committed on disk.
//
// Supervision policy:
//   * crash (unexpected exit) or watchdog expiry (no committed frame for
//     watchdog_seconds) kills the worker; its unfinished indices requeue
//     with exponential backoff and a fresh worker takes the slot.
//   * the culprit index (last heartbeat without a committed record) takes a
//     strike; at max_strikes it is recorded as Outcome::HarnessFatal and
//     excluded — graceful degradation instead of a sunk campaign.
//   * completion = every index committed or struck out; the coordinator
//     then merges shard stores (tolerantly — a killed worker's shard
//     legitimately ends in a torn window) into the canonical output, which
//     is byte-identical to a single-process run of the same (seed, size)
//     campaign whenever nothing was struck out.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "farm/worker.hpp"
#include "sched/scheduler.hpp"

namespace sfi::farm {

/// One line of a hosts file: `host [slots]` (comments with '#').
/// "localhost" (or "local"/"127.0.0.1") execs directly; anything else is
/// reached through `ssh host`, assuming a shared filesystem for the shard
/// stores and the sfi binary.
struct HostSlot {
  std::string host;
  u32 slots = 1;
};

[[nodiscard]] std::vector<HostSlot> parse_hosts_file(const std::string& path);

struct FarmConfig {
  /// Fork-call worker count; ignored when `hosts` is non-empty.
  u32 workers = 2;
  std::vector<HostSlot> hosts;
  /// Exec-mode worker command (binary + `worker` verb + campaign flags,
  /// without --shard-store/--worker-id, which the coordinator appends).
  /// Required when `hosts` is non-empty; built by the CLI so the worker
  /// sees exactly the flags the coordinator was invoked with.
  std::vector<std::string> worker_command;
  u32 shard_size = 64;
  /// Strikes before an injection is declared HarnessFatal.
  u32 max_strikes = 3;
  /// No committed frame for this long => the worker is wedged; kill it.
  double watchdog_seconds = 30.0;
  /// First-frame deadline after spawn (exec workers rebuild the reference
  /// plan first, which dominates startup).
  double startup_seconds = 300.0;
  double backoff_base_seconds = 0.25;
  double backoff_cap_seconds = 10.0;
  double poll_seconds = 0.02;
  /// Test hook forwarded to fork-call workers (exec workers receive theirs
  /// via worker_command flags).
  SabotageConfig sabotage;
  /// Cooperative stop (SIGINT/SIGTERM): stop dispatching, kill in-flight
  /// workers (their committed records survive), merge what exists.
  std::function<bool()> should_stop;
  std::function<void(const sched::Progress&)> on_progress;
  /// Called once per durable record — resumed records on startup, then each
  /// newly committed record as its frame is sealed in a shard store. This is
  /// the online-statistics feed (`sfi serve` computes sequential Wilson
  /// intervals from it); because it fires only on committed frames, anything
  /// counted through it is already safe on disk.
  std::function<void(const store::StoredRecord&)> on_record;
  /// Keep per-worker shard files after the merge (forensics; default off).
  bool keep_shards = false;
  /// Ask workers to serialize a cumulative metrics snapshot ('M' frame)
  /// into their shard store every N executed injections (0 = off). The
  /// coordinator folds delivered snapshots into the campaign telemetry's
  /// fleet view (CampaignTelemetry::note_worker_snapshot), which is what
  /// the serve daemon's /metrics endpoint reads. Fork-call workers receive
  /// this directly; exec workers need --metrics-every in worker_command.
  u32 metrics_every = 0;
  /// When non-empty and the global flight recorder is enabled, dump the
  /// recorder's ring here after every supervision failure (worker crash,
  /// watchdog kill, strikeout) — the postmortem trace of the last seconds
  /// before the fatality. Rewritten per failure; observability-only.
  std::string postmortem_path;
  /// Distributed span plane: workers record spans ('S' frames) into their
  /// shard stores; the coordinator tees delivered spans plus its own into
  /// the `<out>.trace.sfr` sidecar, which survives shard cleanup so
  /// `sfi trace` can stitch the fleet's timeline later. The canonical merge
  /// drops 'S' frames, so the merged store is byte-identical either way.
  /// Fork-call workers receive this directly; exec workers get
  /// --trace-spans appended to worker_command by the coordinator.
  bool trace_spans = false;
  /// Campaign-scoped trace id propagated through assignment lines to every
  /// worker (0: derive one from the campaign fingerprint and wall clock).
  u64 trace_id = 0;
};

struct FarmResult {
  store::CampaignMeta meta;
  /// Aggregation over the merged output store (resumed + new + struck).
  inject::CampaignAggregate agg;
  u64 executed = 0;  ///< records newly committed by workers this run
  u64 resumed = 0;   ///< records inherited from a prior output store
  u64 assignments = 0;  ///< dispatched assignments, retries included
  u64 workers_spawned = 0;
  u64 worker_crashes = 0;   ///< unexpected exits (not watchdog kills)
  u64 watchdog_kills = 0;
  u64 shard_retries = 0;
  u64 heartbeat_gaps = 0;
  std::vector<u32> harness_fatal;  ///< struck-out indices, ascending
  bool complete = false;
  bool stopped = false;
  double wall_seconds = 0.0;

  [[nodiscard]] double injections_per_second() const {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(executed) / wall_seconds;
  }
};

/// Run (or with `resume` continue) a farm campaign; the canonical merged
/// store lands at `out_path` (shard files live next to it while running).
FarmResult run_farm_campaign(const avp::Testcase& testcase,
                             const inject::CampaignConfig& config,
                             const std::string& out_path,
                             const FarmConfig& farm, bool resume = false);

}  // namespace sfi::farm
