// Farm worker: the process end of farm mode (`sfi worker`, or a forked
// child of `sfi campaign --workers N`).
//
// A worker owns one private simulation environment and one shard store
// file. It reads newline-delimited assignments from its control fd:
//
//   A <shard> <attempt> <count> <index>...   execute these campaign indices
//   Q                                        drain and exit 0
//
// and answers exclusively through the shard store's frame stream: an 'A'
// echo when it accepts an assignment, a 'B' heartbeat flushed *before* each
// injection runs (so a crash fingers the culprit index), then the 'R'
// record (+ optional 'P' footprint) flushed — and commit-marked — per
// injection. EOF on the control fd is equivalent to Q, so a dying
// coordinator reaps its farm rather than orphaning it.
//
// Workers never decide campaign-level questions (retry, strikes, merge);
// they only execute. Determinism does the heavy lifting: injection i is a
// pure function of (seed, i), so a retried index re-executed here is
// byte-identical to what the dead worker would have written.
#pragma once

#include <optional>
#include <string>

#include "sfi/campaign.hpp"

namespace sfi::farm {

/// Deterministic harness-failure injection for supervision tests and the
/// farm-smoke CI gate: make the worker itself die or wedge when it reaches
/// a chosen campaign index, as a stand-in for "the flip took down the
/// emulator harness".
struct SabotageConfig {
  /// SIGKILL this process before running `crash_index` — but only on
  /// attempt 0, so the supervised retry succeeds (a transient harness
  /// crash).
  std::optional<u32> crash_index;
  /// Spin forever before running `wedge_index` (every attempt unless
  /// `wedge_once`), forcing watchdog kills and, at K strikes, HarnessFatal.
  std::optional<u32> wedge_index;
  bool wedge_once = false;

  [[nodiscard]] bool any() const {
    return crash_index.has_value() || wedge_index.has_value();
  }
};

struct WorkerOptions {
  u32 worker_id = 0;
  std::string shard_path;
  /// Assignment stream (read side). Exec-mode workers pass STDIN_FILENO.
  int control_fd = 0;
  SabotageConfig sabotage;
  /// Serialize a cumulative metrics snapshot ('M' frame) into the shard
  /// store every N executed injections (0 = off). Observability-only: the
  /// coordinator folds the snapshots into its fleet view; canonical merge
  /// drops the frames, so the merged store is byte-identical either way.
  /// The default matches the farm coordinator's and daemon's cadence (32):
  /// a hand-launched `sfi worker` emits the same fleet view as a spawned
  /// one (tests/test_farm.cpp pins the three defaults together).
  u32 metrics_every = 32;
  /// Record distributed trace spans ('S' frames) into the shard store:
  /// plan-build and per-assignment shard slices, plus tail-latency exemplar
  /// phase slices per injection. The trace/parent ids arrive with each
  /// assignment line, so worker spans stitch under the coordinator's
  /// dispatch span. Observability-only, like metrics_every.
  bool trace_spans = false;
};

/// Worker main loop; returns the process exit code (0 = clean drain).
/// `plan` non-null reuses an already-built plan (fork-call mode inherits
/// the coordinator's copy-on-write); null builds one from (testcase,
/// config) — the exec-mode path.
int run_worker(const avp::Testcase& testcase,
               const inject::CampaignConfig& config,
               const WorkerOptions& opts,
               const inject::CampaignPlan* plan = nullptr);

}  // namespace sfi::farm
