// Latch metadata: the taxonomy the paper's experiments slice by.
//
// Figure 3/4 slice flips by microarchitectural *unit* (IFU..RUT, Core
// pervasive); Figure 5 slices by *latch type* (scan-only MODE/GPTR vs
// read-write REGFILE/FUNC). Every latch bit in the model carries both tags
// plus a scan-ring id, mirroring how a real design's scan chains are
// enumerated for injection.
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace sfi::netlist {

/// Microarchitectural unit owning a latch (paper Figure 3 categories).
enum class Unit : u8 {
  IFU,   ///< instruction fetch unit
  IDU,   ///< instruction decode/dispatch unit
  FXU,   ///< fixed point unit (incl. GPR file)
  FPU,   ///< floating point unit (incl. FPR file)
  LSU,   ///< load/store unit (incl. D-cache control, store queue)
  RUT,   ///< recovery unit
  Core,  ///< core pervasive logic (FIRs, hang detection, scan control)
};
inline constexpr std::size_t kNumUnits = 7;

/// Latch type (paper Figure 5 categories).
enum class LatchType : u8 {
  Func,     ///< pipeline/read-write functional latch
  RegFile,  ///< register-file latch (read-write)
  Mode,     ///< scan-only configuration latch
  Gptr,     ///< scan-only general-purpose test register latch
};
inline constexpr std::size_t kNumLatchTypes = 4;

[[nodiscard]] constexpr std::string_view to_string(Unit u) {
  constexpr std::array<std::string_view, kNumUnits> names = {
      "IFU", "IDU", "FXU", "FPU", "LSU", "RUT", "Core"};
  return names[static_cast<std::size_t>(u)];
}

[[nodiscard]] constexpr std::string_view to_string(LatchType t) {
  constexpr std::array<std::string_view, kNumLatchTypes> names = {
      "FUNC", "REGFILE", "MODE", "GPTR"};
  return names[static_cast<std::size_t>(t)];
}

/// True for latches that hold their value across the whole functional run
/// (written only through the scan interface).
[[nodiscard]] constexpr bool is_scan_only(LatchType t) {
  return t == LatchType::Mode || t == LatchType::Gptr;
}

inline constexpr std::array<Unit, kNumUnits> kAllUnits = {
    Unit::IFU, Unit::IDU, Unit::FXU, Unit::FPU,
    Unit::LSU, Unit::RUT, Unit::Core};

inline constexpr std::array<LatchType, kNumLatchTypes> kAllLatchTypes = {
    LatchType::Func, LatchType::RegFile, LatchType::Mode, LatchType::Gptr};

/// Static description of one registered latch field (a named group of
/// adjacent bits sharing unit/type/ring).
struct LatchMeta {
  std::string name;      ///< hierarchical name, e.g. "lsu.stq3.data"
  Unit unit = Unit::Core;
  LatchType type = LatchType::Func;
  u8 scan_ring = 0;      ///< scan-ring id used for ring-targeted injection
  u32 bit_offset = 0;    ///< first bit position in the StateVector
  u32 width = 0;         ///< number of bits
  u32 ordinal_start = 0; ///< first injectable-latch ordinal of this field
  bool hashable = true;  ///< participates in the golden-trace state hash
};

}  // namespace sfi::netlist
