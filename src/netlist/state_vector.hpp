// StateVector: the dense bit image of every latch in the model.
//
// This is the single source of truth for sequential state. The core's units
// read the *current* vector and write the *next* vector each cycle (see
// emu::CycleFrame), so flipping any bit here genuinely perturbs the machine —
// the property that makes arbitrary-latch fault injection meaningful.
#pragma once

#include <span>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace sfi::netlist {

class StateVector {
 public:
  StateVector() = default;
  explicit StateVector(u32 num_bits);

  [[nodiscard]] u32 num_bits() const { return num_bits_; }
  [[nodiscard]] std::span<const u64> words() const { return words_; }
  /// Mutable word access for bulk state transfer (checkpoint restore and
  /// delta reconstruction); bits past num_bits() in the last word must stay
  /// zero.
  [[nodiscard]] std::span<u64> words_mut() { return words_; }

  [[nodiscard]] bool get_bit(BitIndex i) const;
  void set_bit(BitIndex i, bool v);
  void flip_bit(BitIndex i);

  /// Read a field of `width` bits at `offset`. The field must not straddle a
  /// word (guaranteed by LatchRegistry's allocator).
  [[nodiscard]] u64 read(u32 offset, u32 width) const;
  /// Write the low `width` bits of `v` into the field at `offset`.
  void write(u32 offset, u32 width, u64 v);

  /// Fingerprint of the bits selected by `masks` (one AND-mask per word, as
  /// produced by LatchRegistry::hash_masks()).
  [[nodiscard]] u64 masked_hash(std::span<const u64> masks) const;

  /// Exact compare of the masked state against a pre-masked reference
  /// (ref[i] == words[i] & masks[i] for all i). Early-outs on the first
  /// differing word, so polling a diverged state is nearly free.
  [[nodiscard]] bool masked_equals(std::span<const u64> masks,
                                   const u64* ref) const;

  /// Number of bit positions (under `masks`) where *this differs from other.
  [[nodiscard]] u32 masked_distance(const StateVector& other,
                                    std::span<const u64> masks) const;

  /// Per-group popcount of the diff against a pre-masked reference: for each
  /// group g, out_group_bits[g] = popcount over words w of
  /// ((words[w] & masks[w]) ^ ref[w]) & group_masks[g * W + w], with
  /// W == masks.size() and group_masks holding num_groups masks group-major
  /// (LatchRegistry::unit_masks()/type_masks() layout). Returns the total
  /// diff popcount under `masks`. Infection footprints are sparse, so words
  /// with a zero diff are skipped before any group work.
  u32 masked_diff_groups(std::span<const u64> masks, const u64* ref,
                         std::span<const u64> group_masks,
                         std::size_t num_groups,
                         std::span<u32> out_group_bits) const;

  void fill_zero();

  friend bool operator==(const StateVector&, const StateVector&) = default;

 private:
  std::vector<u64> words_;
  u32 num_bits_ = 0;
};

}  // namespace sfi::netlist
