// StateVector: the dense bit image of every latch in the model.
//
// This is the single source of truth for sequential state. The core's units
// read the *current* vector and write the *next* vector each cycle (see
// emu::CycleFrame), so flipping any bit here genuinely perturbs the machine —
// the property that makes arbitrary-latch fault injection meaningful.
#pragma once

#include <span>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace sfi::netlist {

/// Exact per-cycle read/write bit-set recorder for a StateVector.
///
/// When armed on a vector (StateVector::set_recorder), every access through
/// the bit/field API ORs the touched bits into per-word masks. The lane
/// engine arms this on its reference cursor's frame vectors: a cycle whose
/// read set is disjoint from a lane's diff is provably identical to the
/// reference cycle, and the reference's write set erases diff bits that were
/// overwritten without being read. Reads may be over-approximated safely
/// (more lane trips, never wrong results); writes are exact because the
/// field API writes exactly the field's bits.
///
/// Touched word indices are kept as dense lists so per-cycle reset is
/// O(touched), not O(words).
class AccessRecorder {
 public:
  /// Size the masks for a vector of `num_words` words and clear them.
  void bind(std::size_t num_words) {
    reads_.assign(num_words, 0);
    writes_.assign(num_words, 0);
    read_words_.clear();
    write_words_.clear();
  }

  /// Clear only the words touched since the last call (cheap).
  void begin_cycle() {
    for (const u32 w : read_words_) reads_[w] = 0;
    for (const u32 w : write_words_) writes_[w] = 0;
    read_words_.clear();
    write_words_.clear();
  }

  [[nodiscard]] std::span<const u64> reads() const { return reads_; }
  [[nodiscard]] std::span<const u64> writes() const { return writes_; }
  [[nodiscard]] std::span<const u32> read_words() const { return read_words_; }
  [[nodiscard]] std::span<const u32> write_words() const {
    return write_words_;
  }

  void on_read(u32 word, u64 mask) {
    if (reads_[word] == 0) read_words_.push_back(word);
    reads_[word] |= mask;
  }
  void on_write(u32 word, u64 mask) {
    if (writes_[word] == 0) write_words_.push_back(word);
    writes_[word] |= mask;
  }

 private:
  std::vector<u64> reads_;
  std::vector<u64> writes_;
  std::vector<u32> read_words_;
  std::vector<u32> write_words_;
};

class StateVector {
 public:
  StateVector() = default;
  explicit StateVector(u32 num_bits);

  // A recorder is a property of the vector *instance* (the cursor's live
  // frame), never of its value: copies and moves of the value — checkpoint
  // saves, golden-trace snapshots, nxt = cur frame seeding — must not
  // propagate the recorder, and assignment into an armed vector must not
  // disarm it.
  StateVector(const StateVector& other)
      : words_(other.words_), num_bits_(other.num_bits_) {}
  StateVector(StateVector&& other) noexcept
      : words_(std::move(other.words_)), num_bits_(other.num_bits_) {}
  StateVector& operator=(const StateVector& other) {
    words_ = other.words_;
    num_bits_ = other.num_bits_;
    return *this;
  }
  StateVector& operator=(StateVector&& other) noexcept {
    words_ = std::move(other.words_);
    num_bits_ = other.num_bits_;
    return *this;
  }

  /// Arm (or with nullptr, disarm) access recording on this vector.
  void set_recorder(AccessRecorder* rec) { recorder_ = rec; }

  [[nodiscard]] u32 num_bits() const { return num_bits_; }
  [[nodiscard]] std::span<const u64> words() const { return words_; }
  /// Mutable word access for bulk state transfer (checkpoint restore and
  /// delta reconstruction); bits past num_bits() in the last word must stay
  /// zero.
  [[nodiscard]] std::span<u64> words_mut() { return words_; }

  [[nodiscard]] bool get_bit(BitIndex i) const;
  void set_bit(BitIndex i, bool v);
  void flip_bit(BitIndex i);

  /// Read a field of `width` bits at `offset`. The field must not straddle a
  /// word (guaranteed by LatchRegistry's allocator).
  [[nodiscard]] u64 read(u32 offset, u32 width) const;
  /// Write the low `width` bits of `v` into the field at `offset`.
  void write(u32 offset, u32 width, u64 v);

  /// Fingerprint of the bits selected by `masks` (one AND-mask per word, as
  /// produced by LatchRegistry::hash_masks()).
  [[nodiscard]] u64 masked_hash(std::span<const u64> masks) const;

  /// Exact compare of the masked state against a pre-masked reference
  /// (ref[i] == words[i] & masks[i] for all i). Early-outs on the first
  /// differing word, so polling a diverged state is nearly free.
  [[nodiscard]] bool masked_equals(std::span<const u64> masks,
                                   const u64* ref) const;

  /// Number of bit positions (under `masks`) where *this differs from other.
  [[nodiscard]] u32 masked_distance(const StateVector& other,
                                    std::span<const u64> masks) const;

  /// Per-group popcount of the diff against a pre-masked reference: for each
  /// group g, out_group_bits[g] = popcount over words w of
  /// ((words[w] & masks[w]) ^ ref[w]) & group_masks[g * W + w], with
  /// W == masks.size() and group_masks holding num_groups masks group-major
  /// (LatchRegistry::unit_masks()/type_masks() layout). Returns the total
  /// diff popcount under `masks`. Infection footprints are sparse, so words
  /// with a zero diff are skipped before any group work.
  u32 masked_diff_groups(std::span<const u64> masks, const u64* ref,
                         std::span<const u64> group_masks,
                         std::size_t num_groups,
                         std::span<u32> out_group_bits) const;

  void fill_zero();

  /// Value equality: words and size only (a recorder is not part of the
  /// value, see the copy semantics above).
  friend bool operator==(const StateVector& a, const StateVector& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

 private:
  std::vector<u64> words_;
  u32 num_bits_ = 0;
  AccessRecorder* recorder_ = nullptr;
};

}  // namespace sfi::netlist
