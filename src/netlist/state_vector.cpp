#include "netlist/state_vector.hpp"

#include <algorithm>
#include <bit>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace sfi::netlist {

StateVector::StateVector(u32 num_bits)
    : words_(words_for_bits(num_bits), 0), num_bits_(num_bits) {}

bool StateVector::get_bit(BitIndex i) const {
  require(i < num_bits_, "StateVector::get_bit out of range");
  return (words_[i / 64] >> (i % 64)) & 1;
}

void StateVector::set_bit(BitIndex i, bool v) {
  require(i < num_bits_, "StateVector::set_bit out of range");
  const u64 m = u64{1} << (i % 64);
  if (v) {
    words_[i / 64] |= m;
  } else {
    words_[i / 64] &= ~m;
  }
}

void StateVector::flip_bit(BitIndex i) {
  require(i < num_bits_, "StateVector::flip_bit out of range");
  words_[i / 64] ^= u64{1} << (i % 64);
}

u64 StateVector::read(u32 offset, u32 width) const {
  ensure(offset + width <= num_bits_, "StateVector::read out of range");
  const u32 lsb = offset % 64;
  ensure(lsb + width <= 64, "StateVector::read straddles a word");
  return (words_[offset / 64] >> lsb) & mask_low(width);
}

void StateVector::write(u32 offset, u32 width, u64 v) {
  ensure(offset + width <= num_bits_, "StateVector::write out of range");
  const u32 lsb = offset % 64;
  ensure(lsb + width <= 64, "StateVector::write straddles a word");
  u64& w = words_[offset / 64];
  w = insert(w, lsb, width, v);
}

u64 StateVector::masked_hash(std::span<const u64> masks) const {
  ensure(masks.size() == words_.size(), "mask/word size mismatch");
  u64 h = mix64(0x533F1B05CA11ED01ULL);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    h = mix64(h ^ mix64((words_[i] & masks[i]) +
                        (i + 1) * 0x9E3779B97F4A7C15ULL));
  }
  return h;
}

u32 StateVector::masked_distance(const StateVector& other,
                                 std::span<const u64> masks) const {
  ensure(words_.size() == other.words_.size(), "StateVector size mismatch");
  ensure(masks.size() == words_.size(), "mask/word size mismatch");
  u32 d = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    d += static_cast<u32>(
        std::popcount((words_[i] ^ other.words_[i]) & masks[i]));
  }
  return d;
}

void StateVector::fill_zero() { std::fill(words_.begin(), words_.end(), 0); }

}  // namespace sfi::netlist
