#include "netlist/state_vector.hpp"

#include <algorithm>
#include <bit>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace sfi::netlist {

StateVector::StateVector(u32 num_bits)
    : words_(words_for_bits(num_bits), 0), num_bits_(num_bits) {}

bool StateVector::get_bit(BitIndex i) const {
  require(i < num_bits_, "StateVector::get_bit out of range");
  if (recorder_ != nullptr) [[unlikely]] {
    recorder_->on_read(i / 64, u64{1} << (i % 64));
  }
  return (words_[i / 64] >> (i % 64)) & 1;
}

void StateVector::set_bit(BitIndex i, bool v) {
  require(i < num_bits_, "StateVector::set_bit out of range");
  if (recorder_ != nullptr) [[unlikely]] {
    recorder_->on_write(i / 64, u64{1} << (i % 64));
  }
  const u64 m = u64{1} << (i % 64);
  if (v) {
    words_[i / 64] |= m;
  } else {
    words_[i / 64] &= ~m;
  }
}

void StateVector::flip_bit(BitIndex i) {
  require(i < num_bits_, "StateVector::flip_bit out of range");
  if (recorder_ != nullptr) [[unlikely]] {
    // A flip is a read-modify-write of the bit.
    recorder_->on_read(i / 64, u64{1} << (i % 64));
    recorder_->on_write(i / 64, u64{1} << (i % 64));
  }
  words_[i / 64] ^= u64{1} << (i % 64);
}

u64 StateVector::read(u32 offset, u32 width) const {
  ensure(offset + width <= num_bits_, "StateVector::read out of range");
  const u32 lsb = offset % 64;
  ensure(lsb + width <= 64, "StateVector::read straddles a word");
  if (recorder_ != nullptr) [[unlikely]] {
    recorder_->on_read(offset / 64, mask_low(width) << lsb);
  }
  return (words_[offset / 64] >> lsb) & mask_low(width);
}

void StateVector::write(u32 offset, u32 width, u64 v) {
  ensure(offset + width <= num_bits_, "StateVector::write out of range");
  const u32 lsb = offset % 64;
  ensure(lsb + width <= 64, "StateVector::write straddles a word");
  if (recorder_ != nullptr) [[unlikely]] {
    // Only the field's own bits count as written: insert() preserves the
    // rest of the word, which is a carry, not a write.
    recorder_->on_write(offset / 64, mask_low(width) << lsb);
  }
  u64& w = words_[offset / 64];
  w = insert(w, lsb, width, v);
}

u64 StateVector::masked_hash(std::span<const u64> masks) const {
  ensure(masks.size() == words_.size(), "mask/word size mismatch");
  // The injection runner polls this hash every simulated cycle to detect
  // convergence onto the golden trace, so it must not be latency-bound: a
  // single h = mix64(h ^ ...) chain serializes ~6 cycles of multiply
  // latency per word and ends up costing more than evaluating the model
  // itself. Four independent multiply–rotate lanes keep the pipeline full;
  // each lane stays order-sensitive within its stride and the lanes are
  // folded through mix64 at the end.
  constexpr u64 kM0 = 0x9E3779B97F4A7C15ULL;
  constexpr u64 kM1 = 0xC2B2AE3D27D4EB4FULL;
  u64 h0 = 0x533F1B05CA11ED01ULL;
  u64 h1 = 0x8EBC6AF09C88C6E3ULL;
  u64 h2 = 0x589965CC75374CC3ULL;
  u64 h3 = 0x1D8E4E27C47D124FULL;
  const std::size_t n = words_.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    h0 = std::rotl((h0 ^ (words_[i] & masks[i])) * kM0, 29);
    h1 = std::rotl((h1 ^ (words_[i + 1] & masks[i + 1])) * kM1, 29);
    h2 = std::rotl((h2 ^ (words_[i + 2] & masks[i + 2])) * kM0, 29);
    h3 = std::rotl((h3 ^ (words_[i + 3] & masks[i + 3])) * kM1, 29);
  }
  for (; i < n; ++i) {
    h0 = std::rotl((h0 ^ (words_[i] & masks[i])) * kM0, 29);
  }
  return mix64(h0 ^ mix64(h1 ^ mix64(h2 ^ mix64(h3 ^ (n * kM1)))));
}

bool StateVector::masked_equals(std::span<const u64> masks,
                                const u64* ref) const {
  ensure(masks.size() == words_.size(), "mask/word size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & masks[i]) != ref[i]) return false;
  }
  return true;
}

u32 StateVector::masked_distance(const StateVector& other,
                                 std::span<const u64> masks) const {
  ensure(words_.size() == other.words_.size(), "StateVector size mismatch");
  ensure(masks.size() == words_.size(), "mask/word size mismatch");
  u32 d = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    d += static_cast<u32>(
        std::popcount((words_[i] ^ other.words_[i]) & masks[i]));
  }
  return d;
}

u32 StateVector::masked_diff_groups(std::span<const u64> masks, const u64* ref,
                                    std::span<const u64> group_masks,
                                    std::size_t num_groups,
                                    std::span<u32> out_group_bits) const {
  ensure(masks.size() == words_.size(), "mask/word size mismatch");
  ensure(group_masks.size() == num_groups * words_.size(),
         "group mask size mismatch");
  ensure(out_group_bits.size() >= num_groups, "group output too small");
  std::fill(out_group_bits.begin(), out_group_bits.begin() + num_groups, 0);
  u32 total = 0;
  const std::size_t n = words_.size();
  for (std::size_t w = 0; w < n; ++w) {
    const u64 diff = (words_[w] & masks[w]) ^ ref[w];
    if (diff == 0) continue;
    total += static_cast<u32>(std::popcount(diff));
    for (std::size_t g = 0; g < num_groups; ++g) {
      const u64 gm = group_masks[g * n + w];
      if (gm == 0) continue;
      out_group_bits[g] += static_cast<u32>(std::popcount(diff & gm));
    }
  }
  return total;
}

void StateVector::fill_zero() { std::fill(words_.begin(), words_.end(), 0); }

}  // namespace sfi::netlist
