// Protected SRAM-like arrays.
//
// The paper distinguishes latches from arrays: arrays (register-file
// checkpoints in the RUT, cache data) are parity- or ECC-protected, so beam
// strikes on them are overwhelmingly *corrected* events, and latch-mode SFI
// (what the paper injects) does not target them. We model them explicitly so
// that (a) the beam simulator can strike them and (b) the recovery paths that
// read them exercise real encode/decode logic.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/aux_sig.hpp"
#include "common/types.hpp"
#include "netlist/ecc.hpp"
#include "netlist/latch.hpp"

namespace sfi::netlist {

enum class ArrayProtection : u8 {
  Parity,  ///< 1 check bit per entry: detects, cannot correct
  SecDed,  ///< Hamming(72,64)+parity: corrects 1 bit, detects 2
};

/// Outcome of reading one protected entry.
enum class ArrayReadStatus : u8 {
  Clean,      ///< no error
  Corrected,  ///< single-bit error corrected in-line (ECC arrays only)
  Detected,   ///< error detected but not correctable in-line
};

class ProtectedArray {
 public:
  ProtectedArray(std::string name, Unit unit, ArrayProtection prot,
                 u32 num_entries, u32 data_width);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Unit unit() const { return unit_; }
  [[nodiscard]] ArrayProtection protection() const { return prot_; }
  [[nodiscard]] u32 num_entries() const { return num_entries_; }
  [[nodiscard]] u32 data_width() const { return data_width_; }
  [[nodiscard]] u32 check_width() const { return check_width_; }

  /// Total raw storage bits (data + check), the beam's target space.
  [[nodiscard]] u64 storage_bits() const {
    return static_cast<u64>(num_entries_) * (data_width_ + check_width_);
  }

  /// Store a value, regenerating check bits.
  void write(u32 entry, u64 value);

  struct ReadResult {
    u64 value = 0;
    ArrayReadStatus status = ArrayReadStatus::Clean;
  };

  /// Read and verify/correct an entry. Corrections are written back
  /// (hardware scrub-on-read), so repeated reads of a corrected entry are
  /// Clean.
  ReadResult read(u32 entry);

  /// Verify/correct an entry *without* writing back (no scrub side effect).
  /// For out-of-band state extraction; the cycle loop uses read().
  [[nodiscard]] ReadResult peek_decoded(u32 entry) const;

  /// Raw entry inspection without verification (diagnostics/tests).
  [[nodiscard]] u64 raw_data(u32 entry) const;
  [[nodiscard]] u8 raw_check(u32 entry) const;

  /// Flip one raw storage bit (beam injection). `bit` indexes the array's
  /// storage as entry-major: [entry][data bits..., check bits...].
  void flip_storage_bit(u64 bit);

  void fill_zero();

  /// Snapshot support (checkpoint/reload).
  void save(std::vector<u8>& out) const;
  void load(std::span<const u8>& in);

  /// Attach a mutation signature (common/aux_sig.hpp). Every content change
  /// made through the access API (write, scrub-on-read, flips) folds into
  /// it; snapshot load/save and fill_zero do not (they are machine
  /// lifecycle, not cycle behaviour). `salt` distinguishes instances.
  void set_aux_sig(AuxSig* sig, u64 salt) {
    aux_sig_ = sig;
    aux_salt_ = salt;
  }

 private:
  std::string name_;
  Unit unit_;
  ArrayProtection prot_;
  u32 num_entries_;
  u32 data_width_;
  u32 check_width_;
  std::vector<u64> data_;
  std::vector<u8> check_;
  AuxSig* aux_sig_ = nullptr;
  u64 aux_salt_ = 0;
};

/// Inventory of all protected arrays in a model; the beam simulator draws
/// strike targets from (latch bits ∪ array storage bits) through this.
class ArrayRegistry {
 public:
  void add(ProtectedArray& arr);
  [[nodiscard]] std::size_t num_arrays() const { return arrays_.size(); }
  [[nodiscard]] u64 total_storage_bits() const { return total_bits_; }
  [[nodiscard]] std::span<ProtectedArray* const> arrays() const {
    return arrays_;
  }

  /// Map a global storage-bit index to (array, local bit).
  struct Target {
    ProtectedArray* array = nullptr;
    u64 local_bit = 0;
  };
  [[nodiscard]] Target locate(u64 global_bit) const;

 private:
  std::vector<ProtectedArray*> arrays_;
  std::vector<u64> cumulative_bits_;
  u64 total_bits_ = 0;
};

}  // namespace sfi::netlist
