// Typed latch-field accessors and the per-cycle read/write frame.
//
// Latch semantics: during evaluation of cycle N the model reads the state
// the latches held at the start of the cycle (`cur`) and writes the values
// they will capture at the next clock edge (`nxt`). The emulator seeds `nxt`
// as a copy of `cur`, so unwritten fields hold their value — exactly a latch.
#pragma once

#include "common/check.hpp"
#include "netlist/registry.hpp"
#include "netlist/state_vector.hpp"

namespace sfi::netlist {

/// One cycle's evaluation context.
struct CycleFrame {
  const StateVector& cur;  ///< latch outputs (start-of-cycle state)
  StateVector& nxt;        ///< latch inputs (state captured at cycle end)
};

/// Handle to a latch field of up to 64 bits.
class Field {
 public:
  Field() = default;
  explicit Field(FieldRef ref) : ref_(ref) {}

  [[nodiscard]] u32 width() const { return ref_.width; }
  [[nodiscard]] u32 bit_offset() const { return ref_.bit_offset; }

  /// Start-of-cycle value.
  [[nodiscard]] u64 get(const CycleFrame& f) const {
    return f.cur.read(ref_.bit_offset, ref_.width);
  }
  /// Value already staged for the next cycle (use sparingly: only for
  /// priority-ordered writes within one unit's evaluation).
  [[nodiscard]] u64 staged(const CycleFrame& f) const {
    return f.nxt.read(ref_.bit_offset, ref_.width);
  }
  /// Stage a new value for the next cycle.
  void set(const CycleFrame& f, u64 v) const {
    f.nxt.write(ref_.bit_offset, ref_.width, v);
  }

  /// Direct access outside the cycle loop (reset / scan load / inspection).
  [[nodiscard]] u64 peek(const StateVector& sv) const {
    return sv.read(ref_.bit_offset, ref_.width);
  }
  void poke(StateVector& sv, u64 v) const {
    sv.write(ref_.bit_offset, ref_.width, v);
  }

 private:
  FieldRef ref_{};
};

/// Convenience wrapper for 1-bit latches.
class Flag {
 public:
  Flag() = default;
  explicit Flag(FieldRef ref) : field_(ref) {
    require(ref.width == 1, "Flag must be 1 bit wide");
  }

  [[nodiscard]] bool get(const CycleFrame& f) const {
    return field_.get(f) != 0;
  }
  [[nodiscard]] bool staged(const CycleFrame& f) const {
    return field_.staged(f) != 0;
  }
  void set(const CycleFrame& f, bool v) const { field_.set(f, v ? 1 : 0); }
  [[nodiscard]] bool peek(const StateVector& sv) const {
    return field_.peek(sv) != 0;
  }
  void poke(StateVector& sv, bool v) const { field_.poke(sv, v ? 1 : 0); }
  [[nodiscard]] u32 bit_offset() const { return field_.bit_offset(); }

 private:
  Field field_;
};

}  // namespace sfi::netlist
