// SEC-DED error-correcting code over 64-bit words (Hamming(72,64) with an
// overall parity bit, Hsiao-style behaviour).
//
// Used by the "protected arrays" of the model: the RUT's architected-state
// checkpoint and the cache data arrays. The paper notes that a large portion
// of the RUT consists of arrays which are protected — single-bit strikes in
// those arrays are *corrected* events, and a double-bit pattern is an
// uncorrectable error that escalates to checkstop.
#pragma once

#include "common/types.hpp"

namespace sfi::netlist {

/// Decode result for one protected word.
enum class EccStatus : u8 {
  Clean,          ///< syndrome 0: data as stored
  CorrectedData,  ///< single data-bit error corrected
  CorrectedCheck, ///< single check-bit error (data unaffected)
  Uncorrectable,  ///< double-bit (or worse) error detected
};

/// 8 check bits: 7 Hamming syndrome bits + 1 overall parity bit.
inline constexpr unsigned kEccCheckBits = 8;

/// Compute check bits for a 64-bit data word.
[[nodiscard]] u8 ecc_encode(u64 data);

/// Decoded word: possibly corrected data plus the decode status.
struct EccDecode {
  u64 data = 0;
  EccStatus status = EccStatus::Clean;
};

/// Decode a stored (data, check) pair, correcting a single-bit error in
/// either data or check bits.
[[nodiscard]] EccDecode ecc_decode(u64 data, u8 check);

}  // namespace sfi::netlist
