#include "netlist/ecc.hpp"

#include <array>
#include <bit>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace sfi::netlist {
namespace {

// Extended Hamming(72,64): code positions 1..72; positions that are powers
// of two hold the 7 syndrome check bits; the remaining 65 positions hold
// data (we use the first 64). Check bit 7 is the overall parity bit.

constexpr bool is_pow2(unsigned x) { return x != 0 && (x & (x - 1)) == 0; }

/// data_position[i] = code position of data bit i.
constexpr std::array<u8, 64> make_data_positions() {
  std::array<u8, 64> pos{};
  unsigned idx = 0;
  for (unsigned p = 1; idx < 64; ++p) {
    if (!is_pow2(p)) pos[idx++] = static_cast<u8>(p);
  }
  return pos;
}
constexpr std::array<u8, 64> kDataPos = make_data_positions();

/// For syndrome bit k (k in 0..6), the mask of data bits covered.
constexpr std::array<u64, 7> make_coverage() {
  std::array<u64, 7> cov{};
  for (unsigned k = 0; k < 7; ++k) {
    u64 m = 0;
    for (unsigned i = 0; i < 64; ++i) {
      if (kDataPos[i] & (1u << k)) m |= u64{1} << i;
    }
    cov[k] = m;
  }
  return cov;
}
constexpr std::array<u64, 7> kCoverage = make_coverage();

/// Map a code position back to the data bit index, or -1 for check bits.
constexpr std::array<i8, 73> make_pos_to_data() {
  std::array<i8, 73> map{};
  for (auto& v : map) v = -1;
  for (unsigned i = 0; i < 64; ++i) map[kDataPos[i]] = static_cast<i8>(i);
  return map;
}
constexpr std::array<i8, 73> kPosToData = make_pos_to_data();

u8 syndrome_bits(u64 data) {
  u8 s = 0;
  for (unsigned k = 0; k < 7; ++k) {
    s |= static_cast<u8>(parity(data & kCoverage[k]) << k);
  }
  return s;
}

}  // namespace

u8 ecc_encode(u64 data) {
  const u8 synd = syndrome_bits(data);
  // Overall parity over data bits and the 7 syndrome check bits.
  const u32 overall = parity(data) ^ parity(synd, 7);
  return static_cast<u8>(synd | (overall << 7));
}

EccDecode ecc_decode(u64 data, u8 check) {
  const u8 stored_synd = check & 0x7F;
  const u8 stored_overall = (check >> 7) & 1;
  const u8 synd = static_cast<u8>(syndrome_bits(data) ^ stored_synd);
  const u8 overall_now =
      static_cast<u8>(parity(data) ^ parity(stored_synd, 7) ^ stored_overall);

  EccDecode d;
  d.data = data;
  if (synd == 0 && overall_now == 0) {
    d.status = EccStatus::Clean;
    return d;
  }
  if (overall_now == 0) {
    // Non-zero syndrome but overall parity consistent: even error count.
    d.status = EccStatus::Uncorrectable;
    return d;
  }
  // Odd number of errored bits with overall parity flagged: single-bit case.
  if (synd == 0) {
    // The overall parity bit itself flipped.
    d.status = EccStatus::CorrectedCheck;
    return d;
  }
  if (synd <= 72 && kPosToData[synd] >= 0) {
    d.data = data ^ (u64{1} << static_cast<unsigned>(kPosToData[synd]));
    d.status = EccStatus::CorrectedData;
    return d;
  }
  if (is_pow2(synd)) {
    // A syndrome check bit flipped; data is intact.
    d.status = EccStatus::CorrectedCheck;
    return d;
  }
  // Syndrome points outside the code word: multi-bit error.
  d.status = EccStatus::Uncorrectable;
  return d;
}

}  // namespace sfi::netlist
