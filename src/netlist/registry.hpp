// LatchRegistry: the model's latch inventory.
//
// During model construction every unit registers its latch fields here; the
// registry assigns each field a bit range in the StateVector and an
// *injectable ordinal* range. Ordinals number real latch bits densely
// (0..num_latches-1) with no padding, so "choose k random latches from all
// latches in the design" (paper Figure 1, step 2) is a uniform draw over
// ordinals.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "netlist/latch.hpp"

namespace sfi::netlist {

/// Lightweight handle to a registered field; used by Field accessors.
struct FieldRef {
  u32 bit_offset = 0;
  u32 width = 0;
};

class LatchRegistry {
 public:
  LatchRegistry() = default;

  /// Register a latch field of `width` bits (1..64). Fields never straddle a
  /// 64-bit word: the allocator pads to the next word when needed (padding
  /// bits are not injectable and not hashed). `hashable` is authoritative:
  /// pass false ONLY for state a flip provably cannot feed back into
  /// execution (free-running counters, engineering spares, benign scan-only
  /// configuration) — the golden-trace early exit's soundness rests on it.
  FieldRef add(std::string name, Unit unit, LatchType type, u8 scan_ring,
               u32 width, bool hashable = true);

  /// Freeze the registry: computes per-word hash masks and ordinal lookup
  /// structures. No further add() calls are allowed.
  void finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  /// Total bits allocated in the StateVector (including padding).
  [[nodiscard]] u32 total_bits() const { return next_bit_; }
  /// Number of injectable latch bits (excludes padding).
  [[nodiscard]] u32 num_latches() const { return next_ordinal_; }
  [[nodiscard]] std::size_t num_fields() const { return fields_.size(); }

  [[nodiscard]] const std::vector<LatchMeta>& fields() const { return fields_; }

  /// Map an injectable ordinal to its StateVector bit index.
  [[nodiscard]] BitIndex bit_of_ordinal(u32 ordinal) const;
  /// Metadata of the field containing an injectable ordinal.
  [[nodiscard]] const LatchMeta& meta_of_ordinal(u32 ordinal) const;
  /// Fully-qualified bit name, e.g. "lsu.stq3.data[17]".
  [[nodiscard]] std::string name_of_ordinal(u32 ordinal) const;

  /// All ordinals whose metadata satisfies `pred`. Used for targeted
  /// injection (per-unit, per-latch-type, per-scan-ring campaigns).
  [[nodiscard]] std::vector<u32> collect_ordinals(
      const std::function<bool(const LatchMeta&)>& pred) const;

  /// Latch-bit counts per unit / per latch type (paper Figure 4 weighting).
  [[nodiscard]] std::array<u32, kNumUnits> latch_count_by_unit() const;
  [[nodiscard]] std::array<u32, kNumLatchTypes> latch_count_by_type() const;

  /// Per-word AND-masks selecting hashable bits; size == words_for_bits
  /// (total_bits). Valid after finalize().
  [[nodiscard]] const std::vector<u64>& hash_masks() const;

  /// Per-unit word masks selecting each unit's *hashable* bits, flattened
  /// group-major: unit_masks()[u * W + w] is unit u's mask for state word w,
  /// with W == hash_masks().size(). The infection tracker's per-unit diff
  /// kernel (StateVector::masked_diff_groups) consumes this layout directly.
  /// Valid after finalize().
  [[nodiscard]] const std::vector<u64>& unit_masks() const;

  /// Same layout per latch type: type_masks()[t * W + w]. Used to decide
  /// whether corruption reached architected (REGFILE) state.
  [[nodiscard]] const std::vector<u64>& type_masks() const;

 private:
  [[nodiscard]] std::size_t field_index_of_ordinal(u32 ordinal) const;

  std::vector<LatchMeta> fields_;
  std::vector<u64> hash_masks_;
  std::vector<u64> unit_masks_;
  std::vector<u64> type_masks_;
  u32 next_bit_ = 0;
  u32 next_ordinal_ = 0;
  bool finalized_ = false;
};

}  // namespace sfi::netlist
