#include "netlist/array.hpp"

#include <algorithm>
#include <cstring>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace sfi::netlist {

ProtectedArray::ProtectedArray(std::string name, Unit unit,
                               ArrayProtection prot, u32 num_entries,
                               u32 data_width)
    : name_(std::move(name)),
      unit_(unit),
      prot_(prot),
      num_entries_(num_entries),
      data_width_(data_width),
      check_width_(prot == ArrayProtection::Parity ? 1 : kEccCheckBits),
      data_(num_entries, 0),
      check_(num_entries, 0) {
  require(num_entries >= 1, "array needs entries");
  require(data_width >= 1 && data_width <= 64, "array data width in [1,64]");
  require(prot != ArrayProtection::SecDed || data_width == 64,
          "SEC-DED arrays are 64 bits wide");
  // Initialize check bits consistently with all-zero data.
  for (u32 i = 0; i < num_entries; ++i) write(i, 0);
}

void ProtectedArray::write(u32 entry, u64 value) {
  require(entry < num_entries_, "array write out of range");
  value &= mask_low(data_width_);
  if (aux_sig_ != nullptr) [[unlikely]] aux_sig_->mix(aux_salt_, entry, value);
  data_[entry] = value;
  check_[entry] = prot_ == ArrayProtection::Parity
                      ? static_cast<u8>(parity(value, data_width_))
                      : ecc_encode(value);
}

ProtectedArray::ReadResult ProtectedArray::read(u32 entry) {
  require(entry < num_entries_, "array read out of range");
  ReadResult r;
  if (prot_ == ArrayProtection::Parity) {
    r.value = data_[entry];
    r.status = parity(data_[entry], data_width_) == (check_[entry] & 1)
                   ? ArrayReadStatus::Clean
                   : ArrayReadStatus::Detected;
    return r;
  }
  const EccDecode d = ecc_decode(data_[entry], check_[entry]);
  r.value = d.data;
  switch (d.status) {
    case EccStatus::Clean:
      r.status = ArrayReadStatus::Clean;
      break;
    case EccStatus::CorrectedData:
    case EccStatus::CorrectedCheck:
      r.status = ArrayReadStatus::Corrected;
      // Scrub on read: restore a clean code word.
      write(entry, d.data);
      break;
    case EccStatus::Uncorrectable:
      r.status = ArrayReadStatus::Detected;
      break;
  }
  return r;
}

ProtectedArray::ReadResult ProtectedArray::peek_decoded(u32 entry) const {
  require(entry < num_entries_, "peek_decoded out of range");
  ReadResult r;
  if (prot_ == ArrayProtection::Parity) {
    r.value = data_[entry];
    r.status = parity(data_[entry], data_width_) == (check_[entry] & 1)
                   ? ArrayReadStatus::Clean
                   : ArrayReadStatus::Detected;
    return r;
  }
  const EccDecode d = ecc_decode(data_[entry], check_[entry]);
  r.value = d.data;
  r.status = d.status == EccStatus::Clean ? ArrayReadStatus::Clean
             : d.status == EccStatus::Uncorrectable
                 ? ArrayReadStatus::Detected
                 : ArrayReadStatus::Corrected;
  return r;
}

u64 ProtectedArray::raw_data(u32 entry) const {
  require(entry < num_entries_, "raw_data out of range");
  return data_[entry];
}

u8 ProtectedArray::raw_check(u32 entry) const {
  require(entry < num_entries_, "raw_check out of range");
  return check_[entry];
}

void ProtectedArray::flip_storage_bit(u64 bit) {
  require(bit < storage_bits(), "flip_storage_bit out of range");
  if (aux_sig_ != nullptr) [[unlikely]] aux_sig_->mix(aux_salt_, ~u64{0}, bit);
  const u64 per_entry = data_width_ + check_width_;
  const auto entry = static_cast<u32>(bit / per_entry);
  const auto local = static_cast<u32>(bit % per_entry);
  if (local < data_width_) {
    data_[entry] ^= u64{1} << local;
  } else {
    check_[entry] ^= static_cast<u8>(1u << (local - data_width_));
  }
}

void ProtectedArray::fill_zero() {
  for (u32 i = 0; i < num_entries_; ++i) write(i, 0);
}

void ProtectedArray::save(std::vector<u8>& out) const {
  const std::size_t base = out.size();
  out.resize(base + data_.size() * sizeof(u64) + check_.size());
  std::memcpy(out.data() + base, data_.data(), data_.size() * sizeof(u64));
  std::memcpy(out.data() + base + data_.size() * sizeof(u64), check_.data(),
              check_.size());
}

void ProtectedArray::load(std::span<const u8>& in) {
  const std::size_t need = data_.size() * sizeof(u64) + check_.size();
  require(in.size() >= need, "array snapshot underrun");
  std::memcpy(data_.data(), in.data(), data_.size() * sizeof(u64));
  std::memcpy(check_.data(), in.data() + data_.size() * sizeof(u64),
              check_.size());
  in = in.subspan(need);
}

void ArrayRegistry::add(ProtectedArray& arr) {
  arrays_.push_back(&arr);
  total_bits_ += arr.storage_bits();
  cumulative_bits_.push_back(total_bits_);
}

ArrayRegistry::Target ArrayRegistry::locate(u64 global_bit) const {
  require(global_bit < total_bits_, "ArrayRegistry::locate out of range");
  const auto it = std::upper_bound(cumulative_bits_.begin(),
                                   cumulative_bits_.end(), global_bit);
  const auto idx =
      static_cast<std::size_t>(std::distance(cumulative_bits_.begin(), it));
  const u64 base = idx == 0 ? 0 : cumulative_bits_[idx - 1];
  return Target{arrays_[idx], global_bit - base};
}

}  // namespace sfi::netlist
