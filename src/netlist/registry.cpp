#include "netlist/registry.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace sfi::netlist {

FieldRef LatchRegistry::add(std::string name, Unit unit, LatchType type,
                            u8 scan_ring, u32 width, bool hashable) {
  require(!finalized_, "LatchRegistry::add after finalize");
  require(width >= 1 && width <= 64, "field width in [1,64]");

  // Keep every field inside one 64-bit word for single-load access.
  const u32 word_remainder = 64 - (next_bit_ % 64);
  if (width > word_remainder) next_bit_ += word_remainder;

  LatchMeta meta;
  meta.name = std::move(name);
  meta.unit = unit;
  meta.type = type;
  meta.scan_ring = scan_ring;
  meta.bit_offset = next_bit_;
  meta.width = width;
  meta.ordinal_start = next_ordinal_;
  // `hashable` is authoritative. Callers exclude free-running counters and
  // *benign* scan-only latches (their flips provably cannot alter
  // execution, so golden-trace convergence stays sound); scan-only bits
  // with functional reach (clock stops, error forcing, scan enables) MUST
  // stay hashable — a flip there never re-converges and therefore never
  // takes the early exit.
  meta.hashable = hashable;

  next_bit_ += width;
  next_ordinal_ += width;
  fields_.push_back(std::move(meta));
  return FieldRef{fields_.back().bit_offset, width};
}

void LatchRegistry::finalize() {
  require(!finalized_, "LatchRegistry::finalize called twice");
  require(!fields_.empty(), "LatchRegistry::finalize with no fields");
  finalized_ = true;

  const std::size_t words = words_for_bits(next_bit_);
  hash_masks_.assign(words, 0);
  unit_masks_.assign(words * kNumUnits, 0);
  type_masks_.assign(words * kNumLatchTypes, 0);
  for (const LatchMeta& f : fields_) {
    if (!f.hashable) continue;
    const u32 word = f.bit_offset / 64;
    const u32 lsb = f.bit_offset % 64;
    ensure(lsb + f.width <= 64, "field straddles a word");
    const u64 m = mask_low(f.width) << lsb;
    hash_masks_[word] |= m;
    unit_masks_[static_cast<std::size_t>(f.unit) * words + word] |= m;
    type_masks_[static_cast<std::size_t>(f.type) * words + word] |= m;
  }
}

std::size_t LatchRegistry::field_index_of_ordinal(u32 ordinal) const {
  require(ordinal < next_ordinal_, "ordinal out of range");
  // Binary search for the last field with ordinal_start <= ordinal.
  auto it = std::upper_bound(
      fields_.begin(), fields_.end(), ordinal,
      [](u32 ord, const LatchMeta& m) { return ord < m.ordinal_start; });
  ensure(it != fields_.begin(), "ordinal before first field");
  return static_cast<std::size_t>(std::distance(fields_.begin(), it)) - 1;
}

BitIndex LatchRegistry::bit_of_ordinal(u32 ordinal) const {
  const LatchMeta& m = fields_[field_index_of_ordinal(ordinal)];
  return m.bit_offset + (ordinal - m.ordinal_start);
}

const LatchMeta& LatchRegistry::meta_of_ordinal(u32 ordinal) const {
  return fields_[field_index_of_ordinal(ordinal)];
}

std::string LatchRegistry::name_of_ordinal(u32 ordinal) const {
  const LatchMeta& m = meta_of_ordinal(ordinal);
  const u32 bit = ordinal - m.ordinal_start;
  if (m.width == 1) return m.name;
  return m.name + "[" + std::to_string(bit) + "]";
}

std::vector<u32> LatchRegistry::collect_ordinals(
    const std::function<bool(const LatchMeta&)>& pred) const {
  std::vector<u32> out;
  for (const LatchMeta& m : fields_) {
    if (!pred(m)) continue;
    for (u32 i = 0; i < m.width; ++i) out.push_back(m.ordinal_start + i);
  }
  return out;
}

std::array<u32, kNumUnits> LatchRegistry::latch_count_by_unit() const {
  std::array<u32, kNumUnits> counts{};
  for (const LatchMeta& m : fields_) {
    counts[static_cast<std::size_t>(m.unit)] += m.width;
  }
  return counts;
}

std::array<u32, kNumLatchTypes> LatchRegistry::latch_count_by_type() const {
  std::array<u32, kNumLatchTypes> counts{};
  for (const LatchMeta& m : fields_) {
    counts[static_cast<std::size_t>(m.type)] += m.width;
  }
  return counts;
}

const std::vector<u64>& LatchRegistry::hash_masks() const {
  require(finalized_, "hash_masks before finalize");
  return hash_masks_;
}

const std::vector<u64>& LatchRegistry::unit_masks() const {
  require(finalized_, "unit_masks before finalize");
  return unit_masks_;
}

const std::vector<u64>& LatchRegistry::type_masks() const {
  require(finalized_, "type_masks before finalize");
  return type_masks_;
}

}  // namespace sfi::netlist
