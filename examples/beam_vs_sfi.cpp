// Calibration workflow (the paper's §2.2): validate controlled SFI against
// an uncontrolled beam exposure of the same machine and workload, then use
// SFI's controllability for what the beam cannot do — attribute every
// severe beam-class outcome to its originating structure.
//
// Usage: ./build/examples/beam_vs_sfi [events]
#include <cstdlib>
#include <iostream>
#include <map>

#include "avp/testgen.hpp"
#include "beam/beam.hpp"
#include "report/table.hpp"
#include "sfi/campaign.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const u32 n = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 500;

  avp::TestcaseConfig tcfg;
  tcfg.seed = 33;
  tcfg.num_instructions = 150;
  const avp::Testcase tc = avp::generate_testcase(tcfg);

  // 1. The beam run: uncontrolled strikes, beam-grade observability.
  beam::BeamConfig bcfg;
  bcfg.seed = 9;
  bcfg.num_events = n;
  const beam::BeamResult beam_res = beam::run_beam_experiment(tc, bcfg);

  // 2. The SFI run: controlled latch flips, same machine and workload.
  inject::CampaignConfig scfg;
  scfg.seed = 10;
  scfg.num_injections = n;
  const inject::CampaignResult sfi_res = inject::run_campaign(tc, scfg);

  std::cout << report::section("beam vs SFI calibration");
  report::Table t({"experiment", "vanished", "corrected", "hang", "chkstop",
                   "SDC"});
  const auto row = [](const char* name, const inject::OutcomeCounts& c) {
    return std::vector<std::string>{
        name, report::Table::pct(c.fraction(inject::Outcome::Vanished)),
        report::Table::pct(c.fraction(inject::Outcome::Corrected)),
        report::Table::pct(c.fraction(inject::Outcome::Hang)),
        report::Table::pct(c.fraction(inject::Outcome::Checkstop)),
        report::Table::pct(c.fraction(inject::Outcome::BadArchState))};
  };
  t.add_row(row("proton beam", beam_res.counts()));
  t.add_row(row("SFI", sfi_res.counts()));
  std::cout << t.to_string();

  // 3. What only SFI can answer: which structures produced the severe
  //    outcomes? (The beam cannot be focused; SFI records every cause.)
  std::cout << report::section("severe outcomes by originating unit (SFI only)");
  report::Table t2({"unit", "severe outcomes"});
  for (const auto unit : netlist::kAllUnits) {
    const auto& c = sfi_res.agg.by_unit[static_cast<std::size_t>(unit)];
    const u64 severe = c.of(inject::Outcome::Checkstop) +
                       c.of(inject::Outcome::Hang) +
                       c.of(inject::Outcome::BadArchState);
    if (severe == 0) continue;
    t2.add_row({std::string(to_string(unit)), report::Table::count(severe)});
  }
  std::cout << t2.to_string();
  std::cout << "\nthe close proportions above are the paper's validation "
               "argument; the attribution table is why SFI exists\n";
  return 0;
}
