// Checker-effectiveness what-if (the paper's §3.3 use case): how much
// detection coverage does each checker family buy? Masks one checker group
// at a time and measures the change in silent corruption and recovery
// coverage — the experiment a RAS architect runs before committing checker
// hardware.
//
// Usage: ./build/examples/checker_whatif [flips]
#include <cstdlib>
#include <iostream>

#include "avp/testgen.hpp"
#include "report/table.hpp"
#include "sfi/campaign.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const u32 n = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 400;

  avp::TestcaseConfig tc_cfg;
  tc_cfg.seed = 15;
  tc_cfg.num_instructions = 150;
  const avp::Testcase tc = avp::generate_testcase(tc_cfg);

  struct Scenario {
    const char* name;
    u64 masked_bits;  // checker_mask bits to CLEAR
  };
  const auto bit = [](core::CheckerId id) {
    return u64{1} << static_cast<unsigned>(id);
  };
  const Scenario scenarios[] = {
      {"all checkers on", 0},
      {"no register-file parity", bit(core::CheckerId::FxuGprParity) |
                                      bit(core::CheckerId::FpuFprParity)},
      {"no residue/result codes", bit(core::CheckerId::FxuResidue) |
                                      bit(core::CheckerId::FxuOperandParity) |
                                      bit(core::CheckerId::FpuResultParity)},
      {"no cache parity", bit(core::CheckerId::IfuIcacheTagParity) |
                              bit(core::CheckerId::IfuIcacheDataParity) |
                              bit(core::CheckerId::LsuDcacheTagParity) |
                              bit(core::CheckerId::LsuDcacheDataParity)},
      {"no control parity", bit(core::CheckerId::IduDecodeParity) |
                                bit(core::CheckerId::IduControlParity) |
                                bit(core::CheckerId::IfuIbufParity)},
      {"no watchdog", bit(core::CheckerId::CoreWatchdog)},
      {"all checkers off", ~u64{0}},
  };

  std::cout << report::section(
      "checker what-if: masking one checker family at a time");
  report::Table t({"configuration", "vanished", "corrected", "hang", "chkstop",
                   "SDC"});
  for (const Scenario& s : scenarios) {
    inject::CampaignConfig cfg;
    cfg.seed = 55;  // identical fault list across scenarios
    cfg.num_injections = n;
    cfg.core.checker_mask = ~s.masked_bits;
    if (s.masked_bits == ~u64{0}) cfg.core.checkers_enabled = false;
    const inject::CampaignResult r = inject::run_campaign(tc, cfg);
    t.add_row({s.name,
               report::Table::pct(r.counts().fraction(inject::Outcome::Vanished)),
               report::Table::pct(r.counts().fraction(inject::Outcome::Corrected)),
               report::Table::pct(r.counts().fraction(inject::Outcome::Hang)),
               report::Table::pct(r.counts().fraction(inject::Outcome::Checkstop)),
               report::Table::pct(
                   r.counts().fraction(inject::Outcome::BadArchState))});
  }
  std::cout << t.to_string();
  std::cout << "\nreading: each masked family moves its share of Corrected "
               "back into Vanished (undetected-but-lucky) and SDC "
               "(undetected-and-fatal)\n";
  return 0;
}
