// Quickstart: the 60-second tour of the SFI framework.
//
//   1. generate an AVP-style pseudo-random testcase,
//   2. run a small statistical fault-injection campaign on the Pearl6 core,
//   3. print the outcome distribution with confidence intervals,
//   4. trace one detected fault from bit flip to machine response.
//
// Build & run:  ./build/examples/quickstart [num_injections]
#include <cstdlib>
#include <iostream>

#include "avp/testgen.hpp"
#include "report/table.hpp"
#include "sfi/campaign.hpp"
#include "sfi/tracer.hpp"

int main(int argc, char** argv) {
  using namespace sfi;

  const u32 n = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 400;

  // 1. Workload: a seeded pseudo-random testcase (the AVP of the paper).
  avp::TestcaseConfig tc_cfg;
  tc_cfg.seed = 2026;
  tc_cfg.num_instructions = 150;
  const avp::Testcase tc = avp::generate_testcase(tc_cfg);

  // 2. Campaign: n random latch flips at random cycles.
  inject::CampaignConfig cfg;
  cfg.seed = 1;
  cfg.num_injections = n;
  const inject::CampaignResult res = inject::run_campaign(tc, cfg);

  std::cout << report::section("SFI quickstart");
  std::cout << "workload: " << res.workload_instructions << " instructions, "
            << res.workload_cycles << " cycles (CPI "
            << report::Table::num(
                   static_cast<double>(res.workload_cycles) /
                   static_cast<double>(res.workload_instructions))
            << ")\n";
  std::cout << "population: " << res.population_size
            << " injectable latch bits; " << res.records.size()
            << " injections at "
            << report::Table::num(res.injections_per_second(), 0)
            << " injections/s\n\n";

  report::Table table({"outcome", "count", "fraction", "95% CI"});
  for (const auto o : inject::kAllOutcomes) {
    const auto iv = res.counts().interval(o);
    table.add_row({std::string(to_string(o)),
                   report::Table::count(res.counts().of(o)),
                   report::Table::pct(res.counts().fraction(o)),
                   "[" + report::Table::pct(iv.low) + ", " +
                       report::Table::pct(iv.high) + "]"});
  }
  std::cout << table.to_string();

  // 3. Cause→effect trace of the first corrected fault in the campaign.
  for (const auto& rec : res.records) {
    if (rec.outcome != inject::Outcome::Corrected ||
        rec.fault.target != inject::FaultTarget::Latch) {
      continue;
    }
    std::cout << report::section("cause -> effect trace of one corrected fault");
    const avp::GoldenResult golden = avp::run_golden(tc);
    core::Pearl6Model model;
    emu::Emulator emu(model);
    const emu::GoldenTrace trace = avp::run_reference(model, emu, tc);
    emu.reset();
    const emu::Checkpoint cp = emu.save_checkpoint();
    const auto t =
        inject::trace_injection(model, emu, cp, trace, golden, rec.fault);
    std::cout << inject::format_trace(t);
    break;
  }
  return 0;
}
