// Targeted what-if study (the paper's §3.1 use case): how resilient is each
// micro-architectural unit, and which unit should get hardening effort
// first? Runs a per-unit targeted campaign and ranks units by their silent
// data corruption and checkstop exposure, weighted by latch population.
//
// Usage: ./build/examples/unit_resilience [flips_per_unit]
#include <cstdlib>
#include <iostream>

#include "avp/testgen.hpp"
#include "report/table.hpp"
#include "sfi/campaign.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const u32 per_unit = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 250;

  avp::TestcaseConfig tc_cfg;
  tc_cfg.seed = 7;
  tc_cfg.num_instructions = 150;
  const avp::Testcase tc = avp::generate_testcase(tc_cfg);

  core::Pearl6Model model;
  const auto latch_counts = model.registry().latch_count_by_unit();
  u64 total_latches = 0;
  for (const u32 c : latch_counts) total_latches += c;

  std::cout << report::section("per-unit SER resilience (targeted SFI)");
  report::Table t({"unit", "latches", "vanished", "corrected", "hang+chk",
                   "SDC", "weighted exposure"});

  double worst_score = -1.0;
  netlist::Unit worst = netlist::Unit::IFU;
  for (const auto unit : netlist::kAllUnits) {
    inject::CampaignConfig cfg;
    cfg.seed = 100 + static_cast<u64>(unit);
    cfg.num_injections = per_unit;
    cfg.filter = [unit](const netlist::LatchMeta& m) {
      return m.unit == unit;
    };
    const inject::CampaignResult r = inject::run_campaign(tc, cfg);

    const auto idx = static_cast<std::size_t>(unit);
    const double weight = static_cast<double>(latch_counts[idx]) /
                          static_cast<double>(total_latches);
    // Exposure: probability a uniform core flip lands here AND ends badly.
    const double bad = r.counts().fraction(inject::Outcome::Checkstop) +
                       r.counts().fraction(inject::Outcome::Hang) +
                       r.counts().fraction(inject::Outcome::BadArchState);
    const double exposure = bad * weight;
    if (exposure > worst_score) {
      worst_score = exposure;
      worst = unit;
    }
    t.add_row({std::string(to_string(unit)),
               report::Table::count(latch_counts[idx]),
               report::Table::pct(r.counts().fraction(inject::Outcome::Vanished)),
               report::Table::pct(r.counts().fraction(inject::Outcome::Corrected)),
               report::Table::pct(r.counts().fraction(inject::Outcome::Hang) +
                                  r.counts().fraction(inject::Outcome::Checkstop)),
               report::Table::pct(
                   r.counts().fraction(inject::Outcome::BadArchState)),
               report::Table::pct(exposure, 3)});
  }
  std::cout << t.to_string();
  std::cout << "\nhardening priority: " << to_string(worst)
            << " (largest population-weighted unrecoverable exposure)\n";
  return 0;
}
