// Latch-hardening study (the paper's §3.2 use case): which latch *types*
// deserve hardened cells? Compares outcome severity per latch type and
// estimates the benefit of hardening the scan-only latches — the paper's
// concrete recommendation ("the results motivate the hardening of scan-only
// latches in the core").
//
// Usage: ./build/examples/latch_hardening [flips_per_type]
#include <cstdlib>
#include <iostream>

#include "avp/testgen.hpp"
#include "report/table.hpp"
#include "sfi/campaign.hpp"

int main(int argc, char** argv) {
  using namespace sfi;
  const u32 per_type = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 300;

  avp::TestcaseConfig tcfg;
  tcfg.seed = 21;
  tcfg.num_instructions = 150;
  const avp::Testcase tc = avp::generate_testcase(tcfg);

  core::Pearl6Model model;
  const auto counts_by_type = model.registry().latch_count_by_type();
  u64 total_latches = 0;
  for (const u32 c : counts_by_type) total_latches += c;

  std::cout << report::section("latch-type hardening study");
  report::Table t({"latch type", "latches", "vanished", "severe",
                   "severe contribution"});

  std::array<double, netlist::kNumLatchTypes> severe_rate{};
  for (const auto type : netlist::kAllLatchTypes) {
    inject::CampaignConfig cfg;
    cfg.seed = 77 + static_cast<u64>(type);
    cfg.num_injections = per_type;
    cfg.filter = [type](const netlist::LatchMeta& m) {
      return m.type == type;
    };
    const inject::CampaignResult r = inject::run_campaign(tc, cfg);
    const auto idx = static_cast<std::size_t>(type);
    severe_rate[idx] = r.counts().fraction(inject::Outcome::Checkstop) +
                       r.counts().fraction(inject::Outcome::Hang) +
                       r.counts().fraction(inject::Outcome::BadArchState);
    const double weight = static_cast<double>(counts_by_type[idx]) /
                          static_cast<double>(total_latches);
    t.add_row({std::string(to_string(type)),
               report::Table::count(counts_by_type[idx]),
               report::Table::pct(r.counts().fraction(inject::Outcome::Vanished)),
               report::Table::pct(severe_rate[idx]),
               report::Table::pct(severe_rate[idx] * weight, 3)});
  }
  std::cout << t.to_string();

  // Hardening estimate: a hardened cell reduces its upset cross-section by
  // ~10x. What does hardening only the scan-only latches buy at chip level?
  double severe_total = 0.0;
  double severe_after = 0.0;
  for (const auto type : netlist::kAllLatchTypes) {
    const auto idx = static_cast<std::size_t>(type);
    const double weight = static_cast<double>(counts_by_type[idx]) /
                          static_cast<double>(total_latches);
    severe_total += severe_rate[idx] * weight;
    severe_after += severe_rate[idx] * weight *
                    (netlist::is_scan_only(type) ? 0.1 : 1.0);
  }
  std::cout << "\nchip-level severe-outcome rate per uniform flip: "
            << report::Table::pct(severe_total, 3) << " -> "
            << report::Table::pct(severe_after, 3)
            << " if scan-only latches are hardened (10x cell)\n"
            << "scan-only latches are "
            << report::Table::pct(
                   static_cast<double>(
                       counts_by_type[static_cast<std::size_t>(
                           netlist::LatchType::Mode)] +
                       counts_by_type[static_cast<std::size_t>(
                           netlist::LatchType::Gptr)]) /
                   static_cast<double>(total_latches))
            << " of the latch population — a cheap hardening target\n";
  return 0;
}
