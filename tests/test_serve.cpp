// Serve mode (src/serve/): the multi-tenant campaign daemon with adaptive
// early stop.
//
// The load-bearing assertions mirror the module's contract: the sequential
// stop decision counts only durable (committed) records; a daemon-run
// campaign stopped at k records is byte-identical (after canonical merge)
// to a direct single-threaded `--max-new k` run; a restarted daemon
// re-adopts its state dir, and an early-stopped campaign resumes to the
// SAME stop point — zero new injections — rather than re-inflating to the
// fixed-N ceiling; admission is fair-share across tenants; a watcher that
// disconnects never takes a campaign down with it.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "avp/testgen.hpp"
#include "farm/worker.hpp"
#include "sched/scheduler.hpp"
#include "serve/daemon.hpp"
#include "serve/stop.hpp"
#include "serve/wire.hpp"
#include "store/merge.hpp"
#include "store/reader.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prometheus.hpp"

namespace sfi::serve {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((fs::temp_directory_path() / ("sfi_serve_test_" + name))
                  .string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (fs::path(path_) / name).string();
  }

 private:
  std::string path_;
};

std::vector<u8> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// --- wire ----------------------------------------------------------------

TEST(Wire, ParsesProtocolShapes) {
  const Json v = Json::parse(
      R"({"op":"submit","n":600,"half_width":0.05,"by_unit":true,)"
      R"("tenant":"a\"b","nested":{"x":[1,2,3]},"none":null})");
  EXPECT_TRUE(v.is_object());
  EXPECT_EQ(v.get_str("op", ""), "submit");
  EXPECT_EQ(v.get_u64("n", 0), 600u);
  EXPECT_NEAR(v.get_num("half_width", 0.0), 0.05, 1e-12);
  EXPECT_TRUE(v.get_bool("by_unit", false));
  EXPECT_EQ(v.get_str("tenant", ""), "a\"b");
  ASSERT_NE(v.find("nested"), nullptr);
  const Json* xs = v.find("nested")->find("x");
  ASSERT_NE(xs, nullptr);
  ASSERT_EQ(xs->items().size(), 3u);
  EXPECT_EQ(xs->items()[1].num(), 2.0);
  // Lenient accessors: absent / mistyped -> default.
  EXPECT_EQ(v.get_u64("missing", 7), 7u);
  EXPECT_EQ(v.get_str("n", "dflt"), "dflt");
}

TEST(Wire, RejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse(""), WireError);
  EXPECT_THROW((void)Json::parse("{"), WireError);
  EXPECT_THROW((void)Json::parse("{\"a\":1} trailing"), WireError);
  EXPECT_THROW((void)Json::parse("{'a':1}"), WireError);
}

TEST(Wire, AddressGrammar) {
  const Address u = parse_address("unix:/tmp/x.sock");
  EXPECT_FALSE(u.tcp);
  EXPECT_EQ(u.path, "/tmp/x.sock");
  const Address bare = parse_address("/tmp/y.sock");
  EXPECT_FALSE(bare.tcp);
  EXPECT_EQ(bare.path, "/tmp/y.sock");
  const Address t = parse_address("tcp:127.0.0.1:9001");
  EXPECT_TRUE(t.tcp);
  EXPECT_EQ(t.host, "127.0.0.1");
  EXPECT_EQ(t.port, 9001);
  const Address lp = parse_address("tcp:9002");
  EXPECT_TRUE(lp.tcp);
  EXPECT_EQ(lp.port, 9002);
  // Port 0 is a legal listener spec: the OS assigns an ephemeral port.
  const Address eph = parse_address("tcp:127.0.0.1:0");
  EXPECT_TRUE(eph.tcp);
  EXPECT_EQ(eph.port, 0);
  EXPECT_THROW((void)parse_address("tcp:host:70000"), WireError);
  EXPECT_THROW((void)parse_address(""), WireError);
  EXPECT_THROW((void)parse_address("tcp:"), WireError);
  EXPECT_THROW((void)parse_address("tcp:host:notaport"), WireError);
}

// --- prometheus exposition -------------------------------------------------

TEST(Prometheus, NameSanitizationIsPureAndTotal) {
  using telemetry::prometheus_name;
  EXPECT_EQ(prometheus_name("farm.worker_crashes"), "sfi_farm_worker_crashes");
  EXPECT_EQ(prometheus_name("outcome.Vanished"), "sfi_outcome_Vanished");
  EXPECT_EQ(prometheus_name("weird name-#1"), "sfi_weird_name__1");
  EXPECT_EQ(prometheus_name(""), "sfi_");
}

TEST(Prometheus, EscapeRoundTripAgreesWithJsonWriter) {
  // S3: a tenant name must render identically through both escapers — the
  // Prometheus label escaping in /metrics and the JSONL escaping in the
  // event log / wire protocol. Fuzz both round trips against each other
  // with a deterministic byte soup rich in the characters that matter.
  std::mt19937 rng(20260808);
  const std::string alphabet =
      "abcXYZ012 \"\\\n\t\r{}=,\x01\x7f\xc3\xa9";  // quotes, ctrl, utf-8
  std::uniform_int_distribution<std::size_t> pick(0, alphabet.size() - 1);
  std::uniform_int_distribution<std::size_t> len(0, 24);

  for (int iter = 0; iter < 2000; ++iter) {
    std::string s;
    const std::size_t n = len(rng);
    for (std::size_t i = 0; i < n; ++i) s += alphabet[pick(rng)];

    // Prometheus: escape is injective and unescape inverts it.
    EXPECT_EQ(telemetry::prometheus_unescape(telemetry::prometheus_escape(s)),
              s)
        << "iter " << iter;

    // JSON: JsonWriter's escaping parses back to the same string through
    // the wire parser (skip raw control bytes the parser — correctly, per
    // RFC 8259 — refuses inside strings when unescaped... JsonWriter
    // escapes them, so every string must survive).
    telemetry::JsonWriter w;
    w.begin_object().field("s", s).end_object();
    const Json back = Json::parse(w.str());
    EXPECT_EQ(back.get_str("s", "<parse-miss>"), s) << "iter " << iter;
  }
}

TEST(Prometheus, WriterGroupsFamiliesAndRendersHistograms) {
  telemetry::PrometheusWriter pw;
  const std::vector<telemetry::PromLabel> a = {{"campaign", "1"},
                                               {"tenant", "a\"b\\c\nd"}};
  const std::vector<telemetry::PromLabel> b = {{"campaign", "2"}};
  pw.add_gauge("campaign.done", a, 5);
  pw.add_counter("injections", a, 40);
  pw.add_gauge("campaign.done", b, 7);  // same family, later call

  telemetry::MetricsSnapshot::Hist h;
  h.name = "lat";
  h.bounds = {1.0, 2.0};
  h.buckets = {3, 1, 1};
  h.count = 5;
  h.sum = 7.5;
  pw.add_histogram("lat", b, h);

  const std::string text = pw.str();
  // Families are contiguous: both campaign.done samples follow one TYPE.
  const auto type_pos = text.find("# TYPE sfi_campaign_done gauge\n");
  ASSERT_NE(type_pos, std::string::npos);
  EXPECT_EQ(text.find("# TYPE sfi_campaign_done", type_pos + 1),
            std::string::npos);
  // The escaped tenant value appears escaped, once per labelled sample.
  EXPECT_NE(text.find("tenant=\"a\\\"b\\\\c\\nd\""), std::string::npos);
  // Histogram renders cumulative buckets, +Inf, sum and count.
  EXPECT_NE(text.find("sfi_lat_bucket{campaign=\"2\",le=\"1\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("sfi_lat_bucket{campaign=\"2\",le=\"2\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("sfi_lat_bucket{campaign=\"2\",le=\"+Inf\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("sfi_lat_sum{campaign=\"2\"} 7.5"), std::string::npos);
  EXPECT_NE(text.find("sfi_lat_count{campaign=\"2\"} 5"), std::string::npos);
}

// --- stop decision -------------------------------------------------------

inject::InjectionRecord rec_of(inject::Outcome o, netlist::Unit u) {
  inject::InjectionRecord r;
  r.outcome = o;
  r.unit = u;
  return r;
}

TEST(Stop, NeverMetBeforeFirstRecord) {
  inject::CampaignAggregate agg;
  StopTarget loose;
  loose.half_width = 0.49;
  EXPECT_FALSE(target_met(agg, loose));
  EXPECT_LT(widest_half_width(agg, loose), 0.0);
  EXPECT_TRUE(stratum_intervals(agg, loose).empty());
}

TEST(Stop, MetOnceEveryStratumNarrowEnough) {
  inject::CampaignAggregate agg;
  StopTarget target;
  target.half_width = 0.05;
  for (int i = 0; i < 10; ++i) {
    agg.add(rec_of(inject::Outcome::Vanished, netlist::Unit::IFU));
  }
  // 10 records: a Wilson 95% half-width is far above 0.05 on every stratum.
  EXPECT_FALSE(target_met(agg, target));
  for (int i = 0; i < 2000; ++i) {
    agg.add(rec_of(i % 10 == 0 ? inject::Outcome::Corrected
                               : inject::Outcome::Vanished,
                   netlist::Unit::IFU));
  }
  EXPECT_TRUE(target_met(agg, target));
  const double widest = widest_half_width(agg, target);
  EXPECT_GT(widest, 0.0);
  EXPECT_LE(widest, target.half_width);
}

TEST(Stop, ByUnitStrataTightenTheTarget) {
  inject::CampaignAggregate agg;
  // 2000 overall records, but only 20 in the LSU stratum: overall strata
  // meet a 0.05 target, the LSU per-unit strata cannot.
  for (int i = 0; i < 1980; ++i) {
    agg.add(rec_of(inject::Outcome::Vanished, netlist::Unit::IFU));
  }
  for (int i = 0; i < 20; ++i) {
    agg.add(rec_of(inject::Outcome::Vanished, netlist::Unit::LSU));
  }
  StopTarget overall;
  overall.half_width = 0.05;
  EXPECT_TRUE(target_met(agg, overall));
  StopTarget by_unit = overall;
  by_unit.by_unit = true;
  EXPECT_FALSE(target_met(agg, by_unit));
  // Unit-labelled strata only exist in by-unit mode.
  bool unit_stratum = false;
  for (const StratumInterval& s : stratum_intervals(agg, by_unit)) {
    if (s.stratum.rfind("LSU/", 0) == 0) unit_stratum = true;
  }
  EXPECT_TRUE(unit_stratum);
}

TEST(Stop, TighterConfidenceNeedsMoreRecords) {
  inject::CampaignAggregate agg;
  for (int i = 0; i < 500; ++i) {
    agg.add(rec_of(i % 5 == 0 ? inject::Outcome::Corrected
                              : inject::Outcome::Vanished,
                   netlist::Unit::IFU));
  }
  StopTarget c95;
  c95.half_width = 0.036;
  StopTarget c99 = c95;
  c99.confidence = 0.99;
  EXPECT_TRUE(target_met(agg, c95));
  EXPECT_FALSE(target_met(agg, c99));
}

TEST(Stop, MonitorCountsOnlyCommittedRecords) {
  // Run a real scheduler campaign; the monitor tailing the same store must
  // see exactly the committed record set, and re-polling must not double
  // count.
  TempDir dir("monitor");
  avp::TestcaseConfig tcfg;
  tcfg.seed = 11;
  tcfg.num_instructions = 80;
  const avp::Testcase tc = avp::generate_testcase(tcfg);
  inject::CampaignConfig cfg;
  cfg.seed = 7;
  cfg.num_injections = 64;
  sched::SchedulerConfig sc;
  sc.threads = 1;
  sc.shard_size = 16;
  sc.flush_records = 8;
  const std::string store = dir.file("mon.sfr");
  const auto r = sched::run_campaign_to_store(tc, cfg, store, sc);
  ASSERT_TRUE(r.complete);

  StopTarget loose;
  loose.half_width = 0.49;
  StopMonitor mon(store, cfg.num_injections, loose);
  EXPECT_EQ(mon.poll(), 64u);
  EXPECT_EQ(mon.committed(), 64u);
  EXPECT_TRUE(mon.met());
  EXPECT_EQ(mon.poll(), 0u);  // no new frames, no re-count
  EXPECT_EQ(mon.agg().total(), 64u);

  // Observe-mode dedupe: replaying an already-tailed index is a no-op.
  store::StoredRecord dup;
  dup.index = 3;
  StopMonitor obs(cfg.num_injections, loose);
  obs.observe(dup);
  obs.observe(dup);
  EXPECT_EQ(obs.committed(), 1u);
}

// --- daemon --------------------------------------------------------------

/// A daemon running on its own thread in a private state dir, plus the
/// client plumbing the tests share.
class DaemonHarness {
 public:
  explicit DaemonHarness(const std::string& state_dir, u32 max_active = 2,
                         const std::string& http = "") {
    ServeConfig cfg;
    cfg.state_dir = state_dir;
    cfg.max_active = max_active;
    cfg.poll_seconds = 0.002;
    cfg.http = http;  // "tcp:127.0.0.1:0" binds an ephemeral port
    daemon_ = std::make_unique<Daemon>(cfg);
    thread_ = std::thread([this] { rc_ = daemon_->run(); });
    wait_ready();
  }
  ~DaemonHarness() { stop(); }

  void stop() {
    if (!thread_.joinable()) return;
    daemon_->request_stop();
    thread_.join();
  }

  [[nodiscard]] const Address& addr() const { return daemon_->address(); }
  [[nodiscard]] const Address& http_addr() const {
    return daemon_->http_address();
  }
  [[nodiscard]] int rc() const { return rc_; }

  /// One blocking HTTP request; returns the raw response (status line,
  /// headers, body). Empty string on connect/send failure.
  std::string http(const std::string& request_line) {
    int fd = -1;
    try {
      fd = connect_to(daemon_->http_address());
    } catch (const WireError&) {
      return "";
    }
    const std::string req =
        request_line + "\r\nHost: test\r\nConnection: close\r\n\r\n";
    std::size_t off = 0;
    while (off < req.size()) {
      const auto n = ::send(fd, req.data() + off, req.size() - off, 0);
      if (n <= 0) {
        ::close(fd);
        return "";
      }
      off += static_cast<std::size_t>(n);
    }
    std::string resp;
    char buf[4096];
    while (true) {
      const auto n = ::recv(fd, buf, sizeof buf, 0);
      if (n <= 0) break;
      resp.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return resp;
  }

  /// GET `path`, expecting 200; returns the body alone.
  std::string http_get(const std::string& path) {
    const std::string resp = http("GET " + path + " HTTP/1.1");
    EXPECT_EQ(resp.rfind("HTTP/1.1 200", 0), 0u)
        << "GET " << path << " -> " << resp.substr(0, 80);
    const auto sep = resp.find("\r\n\r\n");
    return sep == std::string::npos ? std::string{} : resp.substr(sep + 4);
  }

  /// One request, one reply.
  Json request(const std::string& line) {
    LineChannel ch(connect_to(addr()));
    if (!ch.send_line(line)) ADD_FAILURE() << "send failed";
    std::string reply;
    if (!ch.recv_line(reply)) ADD_FAILURE() << "no reply";
    return Json::parse(reply);
  }

  u64 submit(const std::string& body) {
    const Json r = request(R"({"op":"submit",)" + body + "}");
    EXPECT_TRUE(r.get_bool("ok", false));
    return r.get_u64("id", 0);
  }

  /// Stream a campaign's full event list (blocks until it finishes).
  std::vector<Json> watch(u64 id) {
    LineChannel ch(connect_to(addr()));
    EXPECT_TRUE(ch.send_line(R"({"op":"watch","id":)" + std::to_string(id) +
                             "}"));
    std::vector<Json> events;
    std::string line;
    while (ch.recv_line(line)) events.push_back(Json::parse(line));
    return events;
  }

  Json status_of(u64 id) {
    const Json r = request(R"({"op":"status"})");
    if (const Json* cs = r.find("campaigns")) {
      for (const Json& c : cs->items()) {
        if (c.get_u64("id", 0) == id) return c;
      }
    }
    return {};
  }

 private:
  void wait_ready() {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      try {
        LineChannel ch(connect_to(daemon_->address()));
        if (ch.send_line(R"({"op":"ping"})")) {
          std::string reply;
          if (ch.recv_line(reply)) return;
        }
      } catch (const WireError&) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    FAIL() << "daemon never became ready";
  }

  std::unique_ptr<Daemon> daemon_;
  std::thread thread_;
  int rc_ = -1;
};

/// The small campaign every daemon test submits (fast: 80-instruction
/// workload). A 0.12 half-width target stops a ~90%-Vanished campaign after
/// a few dozen records, far short of n.
constexpr const char* kSmallSpec =
    R"("tenant":"t","seed":7,"testcase_seed":11,"instructions":80,)"
    R"("n":600,"half_width":0.12)";

const Json* find_event(const std::vector<Json>& events, const std::string& ev) {
  for (const Json& e : events) {
    if (e.get_str("ev", "") == ev) return &e;
  }
  for (const Json& e : events) {  // make "no such event" failures debuggable
    ADD_FAILURE() << "event: " << e.get_str("ev", "?") << " error='"
                  << e.get_str("error", "") << "'";
  }
  return nullptr;
}

TEST(Daemon, EarlyStopsAndReportsDurableRecords) {
  TempDir dir("early_stop");
  DaemonHarness h(dir.path());
  const u64 id = h.submit(kSmallSpec);
  ASSERT_NE(id, 0u);
  const std::vector<Json> events = h.watch(id);

  const Json* stop = find_event(events, "early_stop");
  ASSERT_NE(stop, nullptr) << "campaign never early-stopped";
  const Json* finish = find_event(events, "finish");
  ASSERT_NE(finish, nullptr);
  EXPECT_TRUE(finish->get_bool("early_stop", false));
  const u64 stop_point = finish->get_u64("stop_point", 0);
  EXPECT_GT(stop_point, 0u);
  EXPECT_LT(stop_point, 600u);

  // The finish event is computed from the durable store: offline
  // aggregation agrees exactly.
  const auto [meta, agg] =
      store::aggregate_store(dir.file("campaign-1.sfr"));
  EXPECT_EQ(agg.total(), finish->get_u64("records", 0));
  EXPECT_EQ(agg.counts.of(inject::Outcome::Vanished),
            finish->find("counts")->get_u64("Vanished", ~u64{0}));

  // Every stratum met the submitted target at the stop point.
  StopTarget target;
  target.half_width = 0.12;
  EXPECT_TRUE(target_met(agg, target));
}

TEST(Daemon, StoppedStoreIsByteIdenticalToMaxNewRun) {
  TempDir dir("byte_identity");
  u64 stop_point = 0;
  {
    DaemonHarness h(dir.path());
    const u64 id = h.submit(kSmallSpec);
    const std::vector<Json> events = h.watch(id);
    const Json* finish = find_event(events, "finish");
    ASSERT_NE(finish, nullptr);
    ASSERT_TRUE(finish->get_bool("early_stop", false));
    stop_point = finish->get_u64("stop_point", 0);
  }

  // Direct run of the same plan, same engine defaults (threads 1, shard 16,
  // flush 8), capped at the daemon's stop point.
  avp::TestcaseConfig tcfg;
  tcfg.seed = 11;
  tcfg.num_instructions = 80;
  const avp::Testcase tc = avp::generate_testcase(tcfg);
  inject::CampaignConfig cfg;
  cfg.seed = 7;
  cfg.num_injections = 600;
  sched::SchedulerConfig sc;
  sc.threads = 1;
  sc.shard_size = 16;
  sc.flush_records = 8;
  sc.max_new_injections = stop_point;
  const std::string direct = dir.file("direct.sfr");
  const auto r = sched::run_campaign_to_store(tc, cfg, direct, sc);
  EXPECT_EQ(r.executed, stop_point);

  const std::string canon_daemon = dir.file("daemon.canon.sfr");
  const std::string canon_direct = dir.file("direct.canon.sfr");
  (void)store::merge_stores({dir.file("campaign-1.sfr")}, canon_daemon);
  (void)store::merge_stores({direct}, canon_direct);
  EXPECT_EQ(slurp(canon_daemon), slurp(canon_direct));
}

TEST(Daemon, ResumeHonorsEarlyStopPoint) {
  TempDir dir("resume_stop");
  u64 stop_point = 0;
  {
    DaemonHarness h(dir.path());
    const u64 id = h.submit(kSmallSpec);
    const std::vector<Json> events = h.watch(id);
    const Json* finish = find_event(events, "finish");
    ASSERT_NE(finish, nullptr);
    ASSERT_TRUE(finish->get_bool("early_stop", false));
    stop_point = finish->get_u64("stop_point", 0);
  }
  const std::vector<u8> before = slurp(dir.file("campaign-1.sfr"));

  // Simulate a crash after the store was durable but before the manifest
  // recorded "done": the next daemon must requeue it, and the monitor's
  // re-count of committed records must stop it again at the SAME point —
  // zero new injections, not a re-inflation to the fixed-N ceiling.
  {
    std::string manifest = [&] {
      std::ifstream in(dir.file("campaign-1.json"));
      return std::string{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
    }();
    const auto pos = manifest.find("\"state\":\"done\"");
    ASSERT_NE(pos, std::string::npos);
    manifest.replace(pos, 14, "\"state\":\"running\"");
    std::ofstream out(dir.file("campaign-1.json"), std::ios::trunc);
    out << manifest;
  }

  {
    DaemonHarness h(dir.path());
    const std::vector<Json> events = h.watch(1);
    const Json* finish = find_event(events, "finish");
    ASSERT_NE(finish, nullptr);
    EXPECT_TRUE(finish->get_bool("early_stop", false));
    EXPECT_EQ(finish->get_u64("stop_point", 0), stop_point);
    EXPECT_EQ(finish->get_u64("records", 0), stop_point);
  }
  // Byte-for-byte: the resumed run appended nothing.
  EXPECT_EQ(slurp(dir.file("campaign-1.sfr")), before);
}

TEST(Daemon, AdoptsFinishedCampaignsAcrossRestart) {
  TempDir dir("adopt");
  u64 records = 0;
  {
    DaemonHarness h(dir.path());
    const u64 id = h.submit(kSmallSpec);
    const std::vector<Json> events = h.watch(id);
    const Json* finish = find_event(events, "finish");
    ASSERT_NE(finish, nullptr);
    records = finish->get_u64("records", 0);
  }
  {
    DaemonHarness h(dir.path());
    const Json c = h.status_of(1);
    EXPECT_EQ(c.get_str("state", ""), "done");
    EXPECT_EQ(c.get_u64("done", 0), records);
    // Watching an adopted campaign still ends with a full finish report.
    const std::vector<Json> events = h.watch(1);
    const Json* finish = find_event(events, "finish");
    ASSERT_NE(finish, nullptr);
    EXPECT_EQ(finish->get_u64("records", 0), records);
  }
}

TEST(Daemon, FairShareAdmissionAcrossTenants) {
  TempDir dir("fair_share");
  // One slot; alice submits two campaigns back to back, then bob one. The
  // second slot must go to bob (zero spend) before alice's second
  // submission, despite FIFO order.
  DaemonHarness h(dir.path(), /*max_active=*/1);
  const char* spec =
      R"("seed":7,"testcase_seed":11,"instructions":80,"n":200,)"
      R"("half_width":0.2,"tenant":)";
  const u64 a1 = h.submit(std::string(spec) + "\"alice\"");
  const u64 a2 = h.submit(std::string(spec) + "\"alice\"");
  const u64 b1 = h.submit(std::string(spec) + "\"bob\"");
  ASSERT_NE(a1, 0u);
  ASSERT_NE(a2, 0u);
  ASSERT_NE(b1, 0u);

  const std::vector<Json> events_a2 = h.watch(a2);
  const std::vector<Json> events_b1 = h.watch(b1);
  const Json* adm_a2 = find_event(events_a2, "admitted");
  const Json* adm_b1 = find_event(events_b1, "admitted");
  ASSERT_NE(adm_a2, nullptr);
  ASSERT_NE(adm_b1, nullptr);
  EXPECT_LT(adm_b1->get_num("t_us", 0), adm_a2->get_num("t_us", 0))
      << "bob (fresh tenant) should get the slot before alice's backlog";
}

TEST(Daemon, WatcherDisconnectDoesNotKillCampaign) {
  TempDir dir("watcher_gone");
  DaemonHarness h(dir.path());
  const u64 id = h.submit(kSmallSpec);
  {
    // Connect a watcher and hang up immediately: the daemon writes into the
    // dead socket (EPIPE territory) and must shrug it off.
    LineChannel ch(connect_to(h.addr()));
    ASSERT_TRUE(ch.send_line(R"({"op":"watch","id":)" + std::to_string(id) +
                             "}"));
    ch.close();
  }
  const std::vector<Json> events = h.watch(id);
  const Json* finish = find_event(events, "finish");
  ASSERT_NE(finish, nullptr);
  EXPECT_EQ(finish->get_str("state", "done"), "done");
}

TEST(Daemon, LaneEngineCampaignMatchesScalarAndPersistsInManifest) {
  // The serve dispatch path honours the submitted injection engine: a lanes
  // campaign produces the same outcome aggregate as the scalar one for the
  // same (seed, workload), and the manifest records the engine so a
  // restarted daemon resumes under it.
  TempDir dir("lanes_ab");
  DaemonHarness h(dir.path());
  constexpr const char* kBase =
      R"("tenant":"t","seed":7,"testcase_seed":11,"instructions":80,)"
      R"("n":200,"half_width":0.0001)";  // target never met: full fixed-N run
  const u64 scalar_id = h.submit(std::string(kBase) + R"(,"inj_engine":"scalar")");
  (void)h.watch(scalar_id);
  const u64 lanes_id =
      h.submit(std::string(kBase) + R"(,"inj_engine":"lanes","lanes":32)");
  (void)h.watch(lanes_id);

  const inject::CampaignAggregate agg_scalar =
      store::aggregate_store(
          dir.file("campaign-" + std::to_string(scalar_id) + ".sfr"))
          .second;
  const inject::CampaignAggregate agg_lanes =
      store::aggregate_store(
          dir.file("campaign-" + std::to_string(lanes_id) + ".sfr"))
          .second;
  EXPECT_EQ(agg_scalar.total(), 200u);
  EXPECT_EQ(agg_lanes.total(), 200u);
  for (const auto o : inject::kAllOutcomes) {
    EXPECT_EQ(agg_scalar.counts.of(o), agg_lanes.counts.of(o))
        << "outcome mix diverged at " << to_string(o);
  }

  const std::vector<u8> raw =
      slurp(dir.file("campaign-" + std::to_string(lanes_id) + ".json"));
  const Json manifest = Json::parse(std::string(raw.begin(), raw.end()));
  EXPECT_EQ(manifest.get_str("inj_engine", ""), "lanes");
  EXPECT_EQ(manifest.get_u64("lanes", 0), 32u);
}

TEST(Daemon, RejectsBadSubmissionsAndUnknownOps) {
  TempDir dir("rejects");
  DaemonHarness h(dir.path());
  const Json bad_hw =
      h.request(R"({"op":"submit","n":10,"half_width":0.0})");
  EXPECT_FALSE(bad_hw.get_bool("ok", true));
  const Json bad_conf =
      h.request(R"({"op":"submit","n":10,"confidence":1.5})");
  EXPECT_FALSE(bad_conf.get_bool("ok", true));
  const Json bad_engine =
      h.request(R"({"op":"submit","n":10,"inj_engine":"warp"})");
  EXPECT_FALSE(bad_engine.get_bool("ok", true));
  const Json unknown = h.request(R"({"op":"frobnicate"})");
  EXPECT_FALSE(unknown.get_bool("ok", true));
  const Json bad_watch = h.request(R"({"op":"watch","id":999})");
  EXPECT_FALSE(bad_watch.get_bool("ok", true));
  // The daemon survives all of the above.
  const Json ping = h.request(R"({"op":"ping"})");
  EXPECT_TRUE(ping.get_bool("ok", false));
}

// --- HTTP observability plane ----------------------------------------------

TEST(DaemonHttp, ServesHealthCampaignsAndMetrics) {
  TempDir dir("http_basics");
  DaemonHarness h(dir.path(), 2, "tcp:127.0.0.1:0");
  ASSERT_TRUE(h.http_addr().tcp);
  ASSERT_NE(h.http_addr().port, 0)
      << "ephemeral port must be resolved at bind time";

  const Json health = Json::parse(h.http_get("/healthz"));
  EXPECT_TRUE(health.get_bool("ok", false));
  EXPECT_EQ(health.get_u64("campaigns", ~u64{0}), 0u);

  const u64 id = h.submit(kSmallSpec);
  ASSERT_NE(id, 0u);
  (void)h.watch(id);

  // /campaigns is the status op's JSON on an HTTP carrier.
  const Json cs = Json::parse(h.http_get("/campaigns"));
  ASSERT_NE(cs.find("campaigns"), nullptr);
  ASSERT_EQ(cs.find("campaigns")->items().size(), 1u);
  const Json& c = cs.find("campaigns")->items()[0];
  EXPECT_EQ(c.get_u64("id", 0), id);
  EXPECT_EQ(c.get_str("state", ""), "done");
  EXPECT_EQ(c.get_str("engine", ""), "sched");
  EXPECT_TRUE(c.get_bool("early_stop", false));
  ASSERT_NE(c.find("counts"), nullptr);

  // /metrics exposes the campaign series with its labels, the live
  // early-stop gauges, and the fleet snapshot (histogram quantiles
  // included).
  const std::string metrics = h.http_get("/metrics");
  EXPECT_NE(metrics.find("# TYPE sfi_serve_campaigns gauge"),
            std::string::npos);
  EXPECT_NE(metrics.find("sfi_campaign_done{campaign=\"1\",tenant=\"t\","
                         "engine=\"sched\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("sfi_campaign_early_stop{campaign=\"1\""),
            std::string::npos);
  EXPECT_NE(metrics.find("sfi_stratum_half_width{campaign=\"1\""),
            std::string::npos);
  EXPECT_NE(metrics.find("sfi_injections{campaign=\"1\""), std::string::npos);
  EXPECT_NE(metrics.find("sfi_injection_seconds_p95{campaign=\"1\""),
            std::string::npos);

  // Unknown paths 404, non-GET 405; the daemon survives both and the wire
  // protocol socket is unaffected.
  EXPECT_EQ(h.http("GET /nope HTTP/1.1").rfind("HTTP/1.1 404", 0), 0u);
  EXPECT_EQ(h.http("POST /metrics HTTP/1.1").rfind("HTTP/1.1 405", 0), 0u);
  EXPECT_TRUE(h.request(R"({"op":"ping"})").get_bool("ok", false));
}

TEST(DaemonHttp, ScrapeDuringRunIsReadOnlyByteIdentical) {
  // S4: hammer /metrics and /campaigns WHILE a campaign runs; the stopped
  // store must still be byte-identical (canonical merge) to a direct
  // single-threaded --max-new run — the whole plane is read-only.
  TempDir dir("http_scrape");
  u64 stop_point = 0;
  u64 scrapes_ok = 0;
  {
    DaemonHarness h(dir.path(), 2, "tcp:127.0.0.1:0");
    const u64 id = h.submit(kSmallSpec);
    ASSERT_NE(id, 0u);

    std::atomic<bool> running{true};
    std::thread scraper([&] {
      while (running.load()) {
        const std::string m = h.http("GET /metrics HTTP/1.1");
        const std::string c = h.http("GET /campaigns HTTP/1.1");
        if (m.rfind("HTTP/1.1 200", 0) == 0 &&
            c.rfind("HTTP/1.1 200", 0) == 0) {
          ++scrapes_ok;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    const std::vector<Json> events = h.watch(id);
    running.store(false);
    scraper.join();

    const Json* finish = find_event(events, "finish");
    ASSERT_NE(finish, nullptr);
    ASSERT_TRUE(finish->get_bool("early_stop", false));
    stop_point = finish->get_u64("stop_point", 0);
    EXPECT_GT(scrapes_ok, 0u) << "scraper never got a 200 pair";

    // A post-finish scrape agrees with the finish event.
    const Json cs = Json::parse(h.http_get("/campaigns"));
    const Json& c = cs.find("campaigns")->items()[0];
    EXPECT_EQ(c.get_u64("done", 0), stop_point);
  }

  avp::TestcaseConfig tcfg;
  tcfg.seed = 11;
  tcfg.num_instructions = 80;
  const avp::Testcase tc = avp::generate_testcase(tcfg);
  inject::CampaignConfig cfg;
  cfg.seed = 7;
  cfg.num_injections = 600;
  sched::SchedulerConfig sc;
  sc.threads = 1;
  sc.shard_size = 16;
  sc.flush_records = 8;
  sc.max_new_injections = stop_point;
  const std::string direct = dir.file("direct.sfr");
  const auto r = sched::run_campaign_to_store(tc, cfg, direct, sc);
  EXPECT_EQ(r.executed, stop_point);

  const std::string canon_daemon = dir.file("daemon.canon.sfr");
  const std::string canon_direct = dir.file("direct.canon.sfr");
  (void)store::merge_stores({dir.file("campaign-1.sfr")}, canon_daemon);
  (void)store::merge_stores({direct}, canon_direct);
  EXPECT_EQ(slurp(canon_daemon), slurp(canon_direct));
}

TEST(DaemonHttp, DisabledPlaneLeavesNoListener) {
  TempDir dir("http_off");
  DaemonHarness h(dir.path());
  // Without --http the daemon must not open any HTTP socket; the wire
  // protocol works as before.
  EXPECT_FALSE(h.http_addr().tcp);
  EXPECT_TRUE(h.request(R"({"op":"ping"})").get_bool("ok", false));
}

TEST(Serve, MetricsCadenceMatchesWorkerDefault) {
  // One fleet cadence everywhere: daemon-spawned and hand-launched workers
  // snapshot at the same rate (see test_farm's regression pin).
  EXPECT_EQ(ServeConfig{}.metrics_every, farm::WorkerOptions{}.metrics_every);
}

}  // namespace
}  // namespace sfi::serve
