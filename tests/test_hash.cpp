#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace sfi {
namespace {

TEST(Hash, Mix64IsInjectiveish) {
  EXPECT_NE(mix64(0), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(mix64(0), 0u);
}

TEST(Hash, WordsOrderSensitive) {
  const std::array<u64, 2> a = {1, 2};
  const std::array<u64, 2> b = {2, 1};
  EXPECT_NE(hash_words(a), hash_words(b));
}

TEST(Hash, WordsLengthSensitive) {
  const std::array<u64, 2> a = {1, 0};
  const std::array<u64, 1> b = {1};
  EXPECT_NE(hash_words(a), hash_words(b));
}

TEST(Hash, WordsSeedSensitive) {
  const std::array<u64, 2> a = {1, 2};
  EXPECT_NE(hash_words(a, 0), hash_words(a, 1));
}

TEST(Hash, WordsSingleBitAvalanche) {
  std::vector<u64> words(16, 0x5555555555555555ull);
  const u64 base = hash_words(words);
  for (std::size_t w = 0; w < words.size(); ++w) {
    for (unsigned b = 0; b < 64; b += 13) {
      auto copy = words;
      copy[w] ^= u64{1} << b;
      EXPECT_NE(hash_words(copy), base) << "word " << w << " bit " << b;
    }
  }
}

TEST(Hash, BytesMatchesContent) {
  const std::vector<u8> a = {1, 2, 3, 4, 5};
  const std::vector<u8> b = {1, 2, 3, 4, 6};
  EXPECT_EQ(hash_bytes(a), hash_bytes(a));
  EXPECT_NE(hash_bytes(a), hash_bytes(b));
}

TEST(Hash, BytesTailSensitive) {
  // Non-multiple-of-8 lengths exercise the partial-accumulator path.
  std::vector<u8> a(9, 0);
  std::vector<u8> b(9, 0);
  b[8] = 1;
  EXPECT_NE(hash_bytes(a), hash_bytes(b));
}

TEST(Hash, EmptyInputsDiffer) {
  EXPECT_NE(hash_bytes({}), hash_words({}));
}

}  // namespace
}  // namespace sfi
