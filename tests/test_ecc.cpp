#include <gtest/gtest.h>

#include "netlist/ecc.hpp"
#include "stats/rng.hpp"

namespace sfi::netlist {
namespace {

TEST(Ecc, CleanRoundTrip) {
  for (const u64 v : {0ull, 1ull, ~0ull, 0xDEADBEEFCAFEF00Dull}) {
    const u8 c = ecc_encode(v);
    const EccDecode d = ecc_decode(v, c);
    EXPECT_EQ(d.status, EccStatus::Clean);
    EXPECT_EQ(d.data, v);
  }
}

TEST(Ecc, CorrectsEverySingleDataBit) {
  const u64 v = 0x123456789ABCDEF0ull;
  const u8 c = ecc_encode(v);
  for (unsigned b = 0; b < 64; ++b) {
    const EccDecode d = ecc_decode(v ^ (u64{1} << b), c);
    EXPECT_EQ(d.status, EccStatus::CorrectedData) << "bit " << b;
    EXPECT_EQ(d.data, v) << "bit " << b;
  }
}

TEST(Ecc, CorrectsEverySingleCheckBit) {
  const u64 v = 0xFEDCBA9876543210ull;
  const u8 c = ecc_encode(v);
  for (unsigned b = 0; b < kEccCheckBits; ++b) {
    const EccDecode d = ecc_decode(v, static_cast<u8>(c ^ (1u << b)));
    EXPECT_EQ(d.status, EccStatus::CorrectedCheck) << "check bit " << b;
    EXPECT_EQ(d.data, v) << "check bit " << b;
  }
}

TEST(Ecc, DetectsEveryDoubleDataBit) {
  stats::Xoshiro256 rng(7);
  const u64 v = 0x0F0F0F0F0F0F0F0Full;
  const u8 c = ecc_encode(v);
  for (int t = 0; t < 500; ++t) {
    const unsigned b1 = static_cast<unsigned>(rng.below(64));
    unsigned b2 = static_cast<unsigned>(rng.below(64));
    while (b2 == b1) b2 = static_cast<unsigned>(rng.below(64));
    const u64 bad = v ^ (u64{1} << b1) ^ (u64{1} << b2);
    const EccDecode d = ecc_decode(bad, c);
    EXPECT_EQ(d.status, EccStatus::Uncorrectable)
        << "bits " << b1 << "," << b2;
  }
}

TEST(Ecc, DetectsDataPlusCheckDouble) {
  const u64 v = 0xAAAAAAAAAAAAAAAAull;
  const u8 c = ecc_encode(v);
  for (unsigned db = 0; db < 64; db += 7) {
    for (unsigned cb = 0; cb < kEccCheckBits; ++cb) {
      const EccDecode d =
          ecc_decode(v ^ (u64{1} << db), static_cast<u8>(c ^ (1u << cb)));
      EXPECT_NE(d.status, EccStatus::Clean);
      // A double error must never be silently "corrected" into wrong data
      // that passes as CorrectedData with bad content.
      if (d.status == EccStatus::CorrectedData) {
        ADD_FAILURE() << "double error decoded as single at " << db << ","
                      << cb;
      }
    }
  }
}

TEST(Ecc, CheckBitsDifferAcrossData) {
  EXPECT_NE(ecc_encode(0), ecc_encode(1));
  EXPECT_NE(ecc_encode(1), ecc_encode(2));
}

}  // namespace
}  // namespace sfi::netlist
