// Report rendering: RFC-4180 CSV emission from report::Table.
#include <gtest/gtest.h>

#include "report/table.hpp"

namespace sfi::report {
namespace {

TEST(TableCsv, PlainCellsPassThroughUnquoted) {
  Table t({"unit", "count"});
  t.add_row({"FXU", "42"});
  t.add_row({"LSU", "7"});
  EXPECT_EQ(t.to_csv(), "unit,count\nFXU,42\nLSU,7\n");
}

TEST(TableCsv, CommaCellIsQuoted) {
  Table t({"label", "ci"});
  t.add_row({"Vanished", "[1.2%, 3.4%]"});
  EXPECT_EQ(t.to_csv(), "label,ci\nVanished,\"[1.2%, 3.4%]\"\n");
}

TEST(TableCsv, EmbeddedQuoteIsDoubledAndQuoted) {
  Table t({"what"});
  t.add_row({"say \"hi\""});
  EXPECT_EQ(t.to_csv(), "what\n\"say \"\"hi\"\"\"\n");
}

TEST(TableCsv, NewlineAndCarriageReturnCellsAreQuoted) {
  Table t({"a", "b"});
  t.add_row({"line1\nline2", "cr\rhere"});
  EXPECT_EQ(t.to_csv(), "a,b\n\"line1\nline2\",\"cr\rhere\"\n");
}

TEST(TableCsv, EmptyCellsStayEmpty) {
  Table t({"x", "y", "z"});
  t.add_row({"", "mid", ""});
  EXPECT_EQ(t.to_csv(), "x,y,z\n,mid,\n");
}

TEST(TableCsv, CsvCellHelperMatchesRfc4180) {
  EXPECT_EQ(Table::csv_cell("plain"), "plain");
  EXPECT_EQ(Table::csv_cell("a,b"), "\"a,b\"");
  EXPECT_EQ(Table::csv_cell("\""), "\"\"\"\"");
  EXPECT_EQ(Table::csv_cell(""), "");
}

TEST(TableCsv, HeaderOnlyTableRendersHeaderRow) {
  Table t({"just", "headers"});
  EXPECT_EQ(t.to_csv(), "just,headers\n");
}

}  // namespace
}  // namespace sfi::report
